// Command quickstart runs the paper's combined dynamic MIS algorithm
// (Corollary 1.3) on a churning random graph and verifies, round by
// round, that the output is a T-dynamic solution: independence on the
// T-intersection graph, domination on the T-union graph, and no ⊥ among
// nodes that have been awake for T rounds.
//
// Usage:
//
//	go run ./examples/quickstart [-n 512] [-rounds 120] [-churn 8] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dynlocal"
)

func main() {
	n := flag.Int("n", 512, "number of nodes")
	rounds := flag.Int("rounds", 120, "rounds to simulate")
	churn := flag.Int("churn", 8, "edge insertions and deletions per round")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	avgDeg := 8.0
	base := dynlocal.GNP(*n, avgDeg/float64(*n), *seed)
	algo := dynlocal.NewMIS(*n)
	adv := dynlocal.NewChurn(base, *churn, *churn, *seed+1)
	eng := dynlocal.NewEngine(dynlocal.EngineConfig{N: *n, Seed: *seed}, adv, algo)
	check := dynlocal.NewTDynamicChecker(dynlocal.MISProblem(), algo.T1, *n)

	fmt.Printf("dynamic MIS on %d nodes, window T=%d, churn %d+%d edges/round\n\n",
		*n, algo.T1, *churn, *churn)
	fmt.Printf("%6s %8s %8s %8s %10s %8s\n",
		"round", "|M|", "|D|", "⊥core", "∩edges", "valid")

	invalid := 0
	eng.OnRound(func(info *dynlocal.RoundInfo) {
		rep := check.Feed(info.Delta())
		if !rep.Valid() {
			invalid++
		}
		if info.Round%10 != 0 && info.Round != 1 {
			return
		}
		var m, d int
		for _, out := range info.Outputs {
			switch out {
			case dynlocal.InMIS:
				m++
			case dynlocal.Dominated:
				d++
			}
		}
		st := check.Window().Stats()
		fmt.Printf("%6d %8d %8d %8d %10d %8v\n",
			info.Round, m, d, rep.BotCore, st.IntersectionEdges, rep.Valid())
	})
	eng.Run(*rounds)

	fmt.Println()
	if invalid != 0 {
		log.Printf("FAILED: %d of %d rounds violated the T-dynamic condition", invalid, *rounds)
		os.Exit(1)
	}
	fmt.Printf("OK: all %d rounds produced valid T-dynamic MIS solutions under constant churn\n", *rounds)
}
