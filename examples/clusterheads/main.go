// Command clusterheads demonstrates MIS-based cluster-head election in a
// dynamic peer-to-peer overlay (the monitoring/management-node selection
// scenario the paper cites, [CCP+13]): an MIS of the overlay gives every
// peer a cluster head within one hop, with no two heads adjacent.
//
// The overlay churns constantly — links flap with an edge-Markov process
// — and the run compares the paper's combined algorithm (Corollary 1.3)
// against the greedy-repair baseline on two axes:
//
//   - validity: rounds in which some peer has no head in its T-round
//     union neighborhood (combined) / current neighborhood (baseline);
//   - head stability: how often the head set changes — re-clustering is
//     expensive, so fewer changes are better.
//
// Usage:
//
//	go run ./examples/clusterheads [-n 512] [-rounds 300] [-flap 0.02]
package main

import (
	"flag"
	"fmt"

	"dynlocal"
)

func main() {
	n := flag.Int("n", 512, "number of peers")
	rounds := flag.Int("rounds", 300, "rounds to simulate")
	flap := flag.Float64("flap", 0.02, "per-round link flap probability")
	seed := flag.Uint64("seed", 11, "random seed")
	flag.Parse()

	footprint := dynlocal.GNP(*n, 10.0/float64(*n), *seed)

	type result struct {
		name         string
		invalidRound int
		headChanges  int
		avgHeads     float64
	}
	var results []result

	run := func(name string, algo dynlocal.Algorithm, window int) {
		adv := dynlocal.NewEdgeMarkov(footprint, *flap, *flap, *seed+1)
		eng := dynlocal.NewEngine(dynlocal.EngineConfig{N: *n, Seed: *seed}, adv, algo)
		check := dynlocal.NewTDynamicChecker(dynlocal.MISProblem(), window, *n)
		res := result{name: name}
		prevHead := make([]bool, *n)
		headSum := 0
		eng.OnRound(func(info *dynlocal.RoundInfo) {
			if rep := check.Feed(info.Delta()); !rep.Valid() {
				res.invalidRound++
			}
			heads := 0
			for v, out := range info.Outputs {
				isHead := out == dynlocal.InMIS
				if isHead {
					heads++
				}
				if info.Round > 2*window && isHead != prevHead[v] {
					res.headChanges++
				}
				prevHead[v] = isHead
			}
			headSum += heads
		})
		eng.Run(*rounds)
		res.avgHeads = float64(headSum) / float64(*rounds)
		results = append(results, res)
	}

	combined := dynlocal.NewMIS(*n)
	run("combined (paper)", combined, combined.T1)
	run("greedy-repair", dynlocal.NewGreedyRepairMIS(*n), combined.T1)

	fmt.Printf("cluster-head election: %d peers, link flap %.1f%%/round, %d rounds, window T=%d\n\n",
		*n, *flap*100, *rounds, combined.T1)
	fmt.Printf("%-18s %14s %14s %10s\n", "algorithm", "invalidRounds", "headChanges", "avgHeads")
	for _, r := range results {
		fmt.Printf("%-18s %14d %14d %10.1f\n", r.name, r.invalidRound, r.headChanges, r.avgHeads)
	}
	fmt.Println()
	fmt.Println("the combined algorithm keeps every round valid under constant churn, while")
	fmt.Println("the repair baseline violates the windowed guarantee whenever changes outpace")
	fmt.Println("its recovery; head stability is guaranteed only where the overlay is locally")
	fmt.Println("static (run with -flap 0 to watch the head set freeze completely)")
}
