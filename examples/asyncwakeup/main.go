// Command asyncwakeup demonstrates the asynchronous wake-up model of
// Section 2: nodes join the network over time (V_0 = ∅ ⊆ V_1 ⊆ …), no
// node knows the global round number, and every round of the paper's
// algorithms is structurally identical — which is exactly what makes
// asynchronous wake-up possible (Section 7.2 discusses why two-phase
// algorithms like textbook Luby do not survive this model).
//
// The run wakes nodes in batches, tracks the growth of the core V^∩T
// (nodes awake long enough for the guarantees to apply) and verifies
// the T-dynamic coloring condition in every round.
//
// Usage:
//
//	go run ./examples/asyncwakeup [-n 400] [-batch 10] [-rounds 150]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dynlocal"
)

func main() {
	n := flag.Int("n", 400, "number of nodes")
	batch := flag.Int("batch", 10, "nodes waking per round")
	rounds := flag.Int("rounds", 150, "rounds to simulate")
	seed := flag.Uint64("seed", 5, "random seed")
	flag.Parse()

	base := dynlocal.GNP(*n, 8.0/float64(*n), *seed)
	algo := dynlocal.NewColoring(*n)
	adv := &dynlocal.WakeupAdversary{
		Inner:    dynlocal.StaticAdversary{G: base},
		Schedule: dynlocal.StaggeredSchedule(*n, *batch),
	}
	eng := dynlocal.NewEngine(dynlocal.EngineConfig{N: *n, Seed: *seed}, adv, algo)
	check := dynlocal.NewTDynamicChecker(dynlocal.ColoringProblem(), algo.T1, *n)

	fmt.Printf("asynchronous wake-up: %d nodes waking %d/round, window T=%d\n\n",
		*n, *batch, algo.T1)
	fmt.Printf("%6s %8s %8s %10s %8s\n", "round", "awake", "core", "colored", "valid")

	invalid := 0
	awake := 0
	eng.OnRound(func(info *dynlocal.RoundInfo) {
		awake += len(info.Wake)
		rep := check.Feed(info.Delta())
		if !rep.Valid() {
			invalid++
		}
		if info.Round%10 != 0 && info.Round != 1 {
			return
		}
		colored := 0
		for _, out := range info.Outputs {
			if out != dynlocal.Bot {
				colored++
			}
		}
		fmt.Printf("%6d %8d %8d %10d %8v\n",
			info.Round, awake, rep.CoreNodes, colored, rep.Valid())
	})
	eng.Run(*rounds)

	fmt.Println()
	if invalid != 0 {
		log.Printf("FAILED: %d rounds violated the T-dynamic condition", invalid)
		os.Exit(1)
	}
	fmt.Println("OK: guarantees held for every node from the moment it had been awake")
	fmt.Println("    for T rounds — no global clock, no synchronized start required")
}
