// Command frequency demonstrates the paper's canonical coloring
// application (Section 1.2): assigning frequencies (time slots) to mobile
// wireless nodes so that interfering nodes — those within radio range —
// use different slots.
//
// Nodes move through the unit square with a random-waypoint mobility
// model; every round the communication graph is the unit-disk graph of
// the current positions, so edges appear and disappear constantly. The
// combined coloring algorithm (Corollary 1.2) maintains a
// (degree+1)-coloring where "degree" counts the distinct neighbors seen
// during the window: interference with nodes that were in range
// throughout the window is zero, fresh conflicts are resolved within T
// rounds, and parked (locally static) regions keep their assignment
// frozen.
//
// Usage:
//
//	go run ./examples/frequency [-n 256] [-rounds 200] [-speed 0.004]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dynlocal"
)

// waypointMobility drives nodes toward random waypoints; a fraction of
// the nodes is parked (never moves), giving the locally-static regions
// the stability guarantee applies to.
type waypointMobility struct {
	pts      []dynlocal.Point
	dst      []dynlocal.Point
	parked   []bool
	speed    float64
	radius   float64
	seed     uint64
	rngState uint64
}

func (m *waypointMobility) rand() float64 {
	// xorshift*: good enough for waypoint selection, kept internal to the
	// example so the library's PRF streams stay untouched.
	m.rngState ^= m.rngState >> 12
	m.rngState ^= m.rngState << 25
	m.rngState ^= m.rngState >> 27
	return float64(m.rngState*0x2545F4914F6CDD1D>>11) / (1 << 53)
}

func (m *waypointMobility) Step(v dynlocal.AdversaryView) dynlocal.AdversaryStep {
	if v.Round() > 1 {
		for i := range m.pts {
			if m.parked[i] {
				continue
			}
			dx := m.dst[i].X - m.pts[i].X
			dy := m.dst[i].Y - m.pts[i].Y
			dist := dx*dx + dy*dy
			if dist < m.speed*m.speed {
				m.dst[i] = dynlocal.Point{X: m.rand(), Y: m.rand()}
				continue
			}
			norm := m.speed / sqrt(dist)
			m.pts[i].X += dx * norm
			m.pts[i].Y += dy * norm
		}
	}
	st := dynlocal.AdversaryStep{G: dynlocal.Geometric(m.pts, m.radius)}
	if v.Round() == 1 {
		st.Wake = dynlocal.AllNodes(len(m.pts))
	}
	return st
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 24; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func main() {
	n := flag.Int("n", 256, "number of radios")
	rounds := flag.Int("rounds", 200, "rounds to simulate")
	speed := flag.Float64("speed", 0.004, "movement per round (unit square)")
	radius := flag.Float64("radius", 0.08, "interference radius")
	parkedFrac := flag.Float64("parked", 0.3, "fraction of parked radios")
	seed := flag.Uint64("seed", 7, "random seed")
	flag.Parse()

	mob := &waypointMobility{
		pts:      dynlocal.RandomPoints(*n, *seed),
		dst:      dynlocal.RandomPoints(*n, *seed+1),
		parked:   make([]bool, *n),
		speed:    *speed,
		radius:   *radius,
		rngState: *seed*0x9E3779B9 + 1,
	}
	for i := 0; i < int(float64(*n)**parkedFrac); i++ {
		mob.parked[i] = true
	}

	algo := dynlocal.NewColoring(*n)
	eng := dynlocal.NewEngine(dynlocal.EngineConfig{N: *n, Seed: *seed}, mob, algo)
	check := dynlocal.NewTDynamicChecker(dynlocal.ColoringProblem(), algo.T1, *n)

	fmt.Printf("frequency assignment: %d radios, range %.2f, %.0f%% parked, window T=%d\n\n",
		*n, *radius, *parkedFrac*100, algo.T1)
	fmt.Printf("%6s %8s %10s %12s %12s\n",
		"round", "slots", "assigned", "staleConf", "freshConf")

	invalid := 0
	var maxSlot dynlocal.Value
	eng.OnRound(func(info *dynlocal.RoundInfo) {
		rep := check.Feed(info.Delta())
		if !rep.Valid() {
			invalid++
		}
		if info.Round%20 != 0 {
			return
		}
		// Conflicts on current graph, split by edge age: conflicts on
		// intersection edges ("stale", must be zero) vs fresh edges
		// (transient, resolved within T rounds).
		stale, fresh := 0, 0
		w := check.Window()
		assigned := 0
		maxSlot = 0
		for v, out := range info.Outputs {
			if out == dynlocal.Bot {
				continue
			}
			assigned++
			if out > maxSlot {
				maxSlot = out
			}
			for _, u := range info.Graph().Neighbors(dynlocal.NodeID(v)) {
				if dynlocal.NodeID(v) < u && info.Outputs[u] == out {
					if w.InIntersection(dynlocal.NodeID(v), u) {
						stale++
					} else {
						fresh++
					}
				}
			}
		}
		fmt.Printf("%6d %8d %10d %12d %12d\n", info.Round, maxSlot, assigned, stale, fresh)
	})
	eng.Run(*rounds)

	fmt.Println()
	if invalid != 0 {
		log.Printf("FAILED: %d rounds violated the windowed interference guarantee", invalid)
		os.Exit(1)
	}
	fmt.Println("OK: zero interference among stable (windowed) links in every round;")
	fmt.Println("    fresh conflicts only on links younger than the window, resolved within T rounds")
}
