//go:build dynlint_xtools

package dynlocal

// Pins golang.org/x/tools for the optional x/tools passes behind
// `go run -tags dynlint_xtools ./scripts/dynlint -xtools`. The build tag
// keeps the dependency out of the default build graph so the module
// builds offline; populate the module cache (go mod download
// golang.org/x/tools) before enabling the tag. See docs/linting.md.
import (
	_ "golang.org/x/tools/go/analysis/multichecker"
	_ "golang.org/x/tools/go/analysis/passes/copylocks"
	_ "golang.org/x/tools/go/analysis/passes/nilness"
	_ "golang.org/x/tools/go/analysis/passes/unusedwrite"
)
