// Package dynlocal is a library for local distributed graph algorithms in
// highly dynamic networks, reproducing the framework and algorithms of
//
//	Philipp Bamberger, Fabian Kuhn, Yannic Maus:
//	"Local Distributed Algorithms in Highly Dynamic Networks",
//	IPDPS 2019 (arXiv:1802.10199).
//
// A dynamic network is a round-synchronous system in which a worst-case
// adversary rewires the communication graph G_r in every round and nodes
// may wake up asynchronously. The paper generalizes static graph problems
// that decompose into a packing property (preserved under edge removal)
// and a covering property (preserved under edge addition) to this
// setting: a T-dynamic solution at round r satisfies the packing property
// on the intersection graph G^∩T_r (edges present throughout the last T
// rounds) and the covering property on the union graph G^∪T_r (edges
// present at least once in the last T rounds).
//
// The library provides:
//
//   - the framework of Section 3: T-dynamic algorithms, (T, α)-network-
//     static algorithms, and the Concat combiner of Theorem 1.1 that
//     welds them into an algorithm emitting a T-dynamic solution every
//     round while keeping outputs locally frozen wherever the graph is
//     locally static;
//   - the paper's instantiations for (degree+1)-vertex-coloring
//     (Corollary 1.2: DColor + SColor) and maximal independent set
//     (Corollary 1.3: DMis, a pipelined Luby variant, + SMis, a modified
//     Ghaffari variant);
//   - a deterministic round-synchronous simulator with a local-broadcast
//     message model, asynchronous wake-up and parallel execution over
//     goroutine-sharded nodes;
//   - an adversary suite (churn, edge-Markov, conflict injection,
//     locally-static freezing, wake-up schedules, trace replay, and the
//     clairvoyant adaptive-offline adversary of the remark after
//     Lemma 5.2);
//   - machine checkers that verify every guarantee round by round, and
//     baseline algorithms (greedy local repair, pipelined restart) for
//     the comparative experiments.
//
// # Quick start
//
//	n := 1024
//	algo := dynlocal.NewMIS(n) // Corollary 1.3 combined algorithm
//	adv := dynlocal.NewChurn(dynlocal.GNP(n, 8.0/float64(n), 1), 16, 16, 2)
//	eng := dynlocal.NewEngine(dynlocal.EngineConfig{N: n, Seed: 42}, adv, algo)
//	check := dynlocal.NewTDynamicChecker(dynlocal.MISProblem(), algo.T1, n)
//	eng.OnRound(func(info *dynlocal.RoundInfo) {
//		rep := check.Feed(info.Delta())
//		if !rep.Valid() {
//			log.Fatalf("round %d: guarantee violated", info.Round)
//		}
//	})
//	eng.Run(200)
//
// See the examples directory for runnable scenarios (frequency
// assignment under mobility, cluster-head election under churn,
// asynchronous wake-up), the Example functions run by go test, and the
// internal/experiments package for the reproduction of every
// quantitative claim in the paper (rendered by cmd/experiments).
// ARCHITECTURE.md maps the code to the paper.
package dynlocal
