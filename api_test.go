package dynlocal

import (
	"testing"
)

// TestQuickstartMIS is the doc.go quick-start, as a test: the combined
// MIS algorithm under churn must produce a valid T-dynamic solution in
// every round.
func TestQuickstartMIS(t *testing.T) {
	const n = 256
	algo := NewMIS(n)
	adv := NewChurn(GNP(n, 8.0/float64(n), 1), 8, 8, 2)
	eng := NewEngine(EngineConfig{N: n, Seed: 42}, adv, algo)
	check := NewTDynamicChecker(MISProblem(), algo.T1, n)
	invalid := 0
	eng.OnRound(func(info *RoundInfo) {
		if rep := check.Observe(info.Graph(), info.Wake, info.Outputs); !rep.Valid() {
			invalid++
		}
	})
	eng.Run(2 * algo.T1)
	if invalid != 0 {
		t.Fatalf("%d invalid rounds", invalid)
	}
}

func TestQuickstartColoring(t *testing.T) {
	const n = 256
	algo := NewColoring(n)
	adv := NewEdgeMarkov(GNP(n, 10.0/float64(n), 3), 0.05, 0.05, 4)
	eng := NewEngine(EngineConfig{N: n, Seed: 7}, adv, algo)
	check := NewTDynamicChecker(ColoringProblem(), algo.T1, n)
	invalid := 0
	eng.OnRound(func(info *RoundInfo) {
		if rep := check.Observe(info.Graph(), info.Wake, info.Outputs); !rep.Valid() {
			invalid++
		}
	})
	eng.Run(2 * algo.T1)
	if invalid != 0 {
		t.Fatalf("%d invalid rounds", invalid)
	}
}

func TestFacadeConstructorsExist(t *testing.T) {
	const n = 32
	for _, algo := range []Algorithm{
		NewDMis(n), NewSMis(n), NewLuby(n),
		NewDColor(n), NewSColor(n), NewBasicColoring(n),
		NewGreedyRepairMIS(n), NewGreedyRepairColoring(n),
		NewMIS(n), NewColoring(n), NewRestartMIS(n),
		NewChainedMIS(n, 8),
	} {
		if algo.Name() == "" {
			t.Fatal("unnamed algorithm")
		}
		eng := NewEngine(EngineConfig{N: n, Seed: 1}, StaticAdversary{G: Cycle(n)}, algo)
		eng.Run(3)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if g := GNP(50, 0.1, 1); g.N() != 50 {
		t.Fatal("GNP wrong")
	}
	if g := RandomGeometric(50, 0.2, 2); g.N() != 50 {
		t.Fatal("geometric wrong")
	}
	if g := Grid(3, 5); g.N() != 15 {
		t.Fatal("grid wrong")
	}
	if g := Complete(5); g.M() != 10 {
		t.Fatal("complete wrong")
	}
	pts := RandomPoints(10, 3)
	if len(pts) != 10 {
		t.Fatal("points wrong")
	}
	if g := Geometric(pts, 2.0); g.M() != 45 {
		t.Fatal("full geometric wrong")
	}
	b := NewGraphBuilder(4)
	b.AddEdge(0, 1)
	if b.Graph().M() != 1 {
		t.Fatal("builder wrong")
	}
	if len(AllNodes(7)) != 7 {
		t.Fatal("AllNodes wrong")
	}
	if len(StaggeredSchedule(10, 3)) != 10 {
		t.Fatal("schedule wrong")
	}
	if s := UniformRandomSchedule(10, 5, 1); len(s) != 10 {
		t.Fatal("random schedule wrong")
	}
}

func TestFacadeWindows(t *testing.T) {
	w := NewSlidingWindow(3, 8)
	w.Observe(Cycle(8), AllNodes(8))
	if w.Round() != 1 {
		t.Fatal("window observe failed")
	}
	fw := NewFracWindow(4, 8)
	fw.Observe(Cycle(8), AllNodes(8))
	if fw.Graph(0.25).M() != 8 {
		t.Fatal("frac window wrong")
	}
}
