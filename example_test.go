package dynlocal_test

import (
	"fmt"

	"dynlocal"
)

// Example runs the combined MIS algorithm of Corollary 1.3 against a
// churn adversary and verifies the T-dynamic guarantee in every round
// using the engine's round-delta feed (RoundInfo.Changed). Everything is
// seeded, so the run — and this output — is reproducible bit for bit.
func Example() {
	const n = 128
	base := dynlocal.GNP(n, 6.0/float64(n), 1) // workload seed 1
	adv := dynlocal.NewChurn(base, 4, 4, 2)    // 4 edges in, 4 out per round
	algo := dynlocal.NewMIS(n)

	eng := dynlocal.NewEngine(dynlocal.EngineConfig{N: n, Seed: 3}, adv, algo)
	check := dynlocal.NewTDynamicChecker(dynlocal.MISProblem(), algo.T1, n)

	invalid := 0
	eng.OnRound(func(info *dynlocal.RoundInfo) {
		rep := check.Feed(info.Delta())
		if !rep.Valid() {
			invalid++
		}
	})
	last := eng.Run(3 * algo.T1)

	fmt.Println("rounds:", last.Round)
	fmt.Println("invalid rounds:", invalid)
	// Output:
	// rounds: 102
	// invalid rounds: 0
}
