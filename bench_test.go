package dynlocal

// The bench harness regenerates every experiment of the evaluation
// (E01–E15, see ARCHITECTURE.md for the mapping to the paper's claims)
// under testing.B, and adds the ablation benches for the design choices
// the paper singles out: the incremental sliding-window maintenance, the
// desire-level floor of footnote 11, SMis's self-healing un-decide rule
// and the serial-vs-sharded engine phases.
//
// The experiment benches report headline numbers via b.ReportMetric so
// `go test -bench` output doubles as a compact evaluation summary.

import (
	"bytes"
	"fmt"
	"io"
	"slices"
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/algos/mis"
	"dynlocal/internal/ckpt"
	"dynlocal/internal/core"
	"dynlocal/internal/dyngraph"
	"dynlocal/internal/engine"
	"dynlocal/internal/experiments"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
	"dynlocal/internal/stats"
	"dynlocal/internal/verify"
)

func benchParams(i int) experiments.Params {
	return experiments.Params{Quick: true, Seed: uint64(i + 1)}
}

func BenchmarkE01DColorConvergence(b *testing.B) {
	var lastSlope float64
	for i := 0; i < b.N; i++ {
		res := experiments.E01DColorConvergence(benchParams(i))
		lastSlope = res.Fit.Slope
	}
	b.ReportMetric(lastSlope, "slope-log2n")
}

func BenchmarkE02ConflictResolution(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		res := experiments.E02ConflictResolution(benchParams(i))
		mean = res.ResolutionRounds.Mean
	}
	b.ReportMetric(mean, "resolve-rounds")
}

func BenchmarkE03LocalStability(b *testing.B) {
	var changes float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.E03LocalStability(benchParams(i)) {
			changes += float64(r.ProtectedChanges)
		}
	}
	b.ReportMetric(changes, "protected-changes")
}

func BenchmarkE04ColoringProgress(b *testing.B) {
	var prob float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.E04ColoringProgress(benchParams(i)) {
			prob = r.EmpiricalProb
		}
	}
	b.ReportMetric(prob, "P-colored-slow")
}

func BenchmarkE05MISEdgeDecay(b *testing.B) {
	var decay float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.E05MISEdgeDecay(benchParams(i)) {
			decay = r.MeanDecay
		}
	}
	b.ReportMetric(decay, "decay-2r")
}

func BenchmarkE06DMisConvergence(b *testing.B) {
	b.Run("quick", func(b *testing.B) {
		var lastSlope float64
		for i := 0; i < b.N; i++ {
			res := experiments.E06DMisConvergence(benchParams(i))
			lastSlope = res.Fit.Slope
		}
		b.ReportMetric(lastSlope, "slope-log2n")
	})
	// Large-N end-to-end cell: one trial at N=4096 across the adversary
	// suite — the hot-path yardstick for graph-build and engine work.
	b.Run("N4096", func(b *testing.B) {
		var mean float64
		for i := 0; i < b.N; i++ {
			p := experiments.Params{Quick: true, Seed: uint64(i + 1), NSweep: []int{4096}, Trials: 1}
			res := experiments.E06DMisConvergence(p)
			mean = res.Points[len(res.Points)-1].Rounds.Mean
		}
		b.ReportMetric(mean, "rounds")
	})
}

func BenchmarkE07SMisStaticBall(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		rs := experiments.E07SMisStaticBall(benchParams(i))
		mean = rs[len(rs)-1].DecideRounds.Mean
	}
	b.ReportMetric(mean, "decide-rounds")
}

func BenchmarkE08ConcatEndToEnd(b *testing.B) {
	b.Run("quick", func(b *testing.B) {
		var invalid float64
		for i := 0; i < b.N; i++ {
			for _, r := range experiments.E08ConcatEndToEnd(benchParams(i)) {
				invalid += float64(r.InvalidRounds)
			}
		}
		b.ReportMetric(invalid, "invalid-rounds")
	})
	// Large-N end-to-end: combined algorithms + T-dynamic checker at
	// N=4096 under all four adversaries.
	b.Run("N4096", func(b *testing.B) {
		var invalid float64
		for i := 0; i < b.N; i++ {
			p := experiments.Params{Quick: true, Seed: uint64(i + 1), N: 4096}
			for _, r := range experiments.E08ConcatEndToEnd(p) {
				invalid += float64(r.InvalidRounds)
			}
		}
		b.ReportMetric(invalid, "invalid-rounds")
	})
}

func BenchmarkE09Baselines(b *testing.B) {
	var worstBaseline float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.E09Baselines(benchParams(i)) {
			if r.Algorithm == "greedy-repair" && r.InvalidFrac > worstBaseline {
				worstBaseline = r.InvalidFrac
			}
		}
	}
	b.ReportMetric(worstBaseline, "greedy-invalid-frac")
}

func BenchmarkE10WindowSweep(b *testing.B) {
	var smallT float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.E10WindowSweep(benchParams(i)) {
			if r.Window == 4 {
				smallT = r.InvalidFrac
			}
		}
	}
	b.ReportMetric(smallT, "T4-invalid-frac")
}

func BenchmarkE11DeltaWindows(b *testing.B) {
	var unionEdges, interEdges float64
	for i := 0; i < b.N; i++ {
		rs := experiments.E11DeltaWindows(benchParams(i))
		unionEdges = rs[0].MeanEdges
		interEdges = rs[len(rs)-1].MeanEdges
	}
	b.ReportMetric(unionEdges, "union-edges")
	b.ReportMetric(interEdges, "inter-edges")
}

func BenchmarkE12MessageBits(b *testing.B) {
	var maxBits float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.E12MessageBits(benchParams(i)) {
			if r.BitsPerMsg > maxBits {
				maxBits = r.BitsPerMsg
			}
		}
	}
	b.ReportMetric(maxBits, "max-bits/msg")
}

func BenchmarkE13Clairvoyant(b *testing.B) {
	var dominated float64
	for i := 0; i < b.N; i++ {
		res := experiments.E13Clairvoyant(benchParams(i))
		dominated = float64(res.ClairvoyantDominated)
	}
	b.ReportMetric(dominated, "clairvoyant-dominated")
}

func BenchmarkE14AsyncWakeup(b *testing.B) {
	var invalid float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.E14AsyncWakeup(benchParams(i)) {
			invalid += float64(r.InvalidRounds)
		}
	}
	b.ReportMetric(invalid, "invalid-rounds")
}

func BenchmarkE15EngineScaling(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.E15EngineScaling(benchParams(i)) {
			if r.NodeRoundsSec > best {
				best = r.NodeRoundsSec
			}
		}
	}
	b.ReportMetric(best, "node-rounds/s")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationWindowIncremental measures the incremental sliding
// window against recomputing IntersectAll/UnionAll from the raw history
// each round (see ARCHITECTURE.md, "Sliding windows").
func BenchmarkAblationWindowIncremental(b *testing.B) {
	const n = 2048
	const T = 12
	s := prf.NewStream(1, 0, 0, prf.PurposeWorkload)
	graphs := make([]*graph.Graph, 32)
	for i := range graphs {
		graphs[i] = graph.GNP(n, 6.0/n, s)
	}
	b.Run("incremental", func(b *testing.B) {
		w := dyngraph.NewWindow(T, n)
		w.Observe(graphs[0], adversary.AllNodes(n))
		for i := 0; i < b.N; i++ {
			w.Observe(graphs[i%len(graphs)], nil)
			_ = w.IntersectionGraph()
			_ = w.UnionGraph()
		}
	})
	b.Run("recompute", func(b *testing.B) {
		var hist []*graph.Graph
		for i := 0; i < b.N; i++ {
			hist = append(hist, graphs[i%len(graphs)])
			lo := len(hist) - T
			if lo < 0 {
				lo = 0
			}
			win := hist[lo:]
			_ = graph.IntersectAll(win)
			_ = graph.UnionAll(win)
		}
	})
}

// BenchmarkAblationDesireFloor reproduces footnote 11 ("in the dynamic
// setting, we need to avoid that desire-levels can become arbitrarily
// small"). A pump adversary parades a fresh group of five high-desire
// nodes past the target every round for W rounds: the target's effective
// degree stays at 2.5 ≥ 2, so its desire level halves every round —
// down to 1/(5n) with the paper's floor, down to 2^-W without it. After
// the pump stops the target is isolated and must self-elect: recovery is
// O(log n) rounds of desire doubling with the floor, but Θ(W) without —
// the unfloored recovery time scales with the length of the dense phase.
func BenchmarkAblationDesireFloor(b *testing.B) {
	const groups = 80
	const n = 1 + 5*groups
	run := func(disable bool) float64 {
		f := &mis.SMisFactory{N: n, DisableDesireFloor: disable}
		algo := core.Single{Label: "smis", Factory: func(v graph.NodeID) core.NodeInstance {
			return f.NewNode(v)
		}}
		e := engine.New(engine.Config{N: n, Seed: 7}, &pumpAdversary{groups: groups}, algo)
		e.Run(groups)
		recovered, _ := e.RunUntil(4*groups, func(info *engine.RoundInfo) bool {
			return info.Outputs[0] != problems.Bot
		})
		return float64(recovered - groups)
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(false)
		without = run(true)
	}
	b.ReportMetric(with, "recovery-floored")
	b.ReportMetric(without, "recovery-unfloored")
}

// pumpAdversary starves node 0's desire level: round r wakes the five
// nodes of group r as a K5 attached to node 0 for exactly one round; old
// groups keep their internal edges (they decide among themselves) but
// lose contact with the target. After `groups` rounds the target is
// isolated.
type pumpAdversary struct {
	groups int
}

func (p *pumpAdversary) Step(v adversary.View) adversary.Step {
	n := 1 + 5*p.groups
	b := graph.NewBuilder(n)
	r := v.Round()
	// Internal K5 edges of every group woken so far.
	limit := r
	if limit > p.groups {
		limit = p.groups
	}
	for g := 1; g <= limit; g++ {
		base := graph.NodeID(1 + 5*(g-1))
		for i := graph.NodeID(0); i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
	}
	st := adversary.Step{}
	if r == 1 {
		st.Wake = append(st.Wake, 0)
	}
	if r <= p.groups {
		base := graph.NodeID(1 + 5*(r-1))
		for i := graph.NodeID(0); i < 5; i++ {
			st.Wake = append(st.Wake, base+i)
			b.AddEdge(0, base+i)
		}
	}
	st.G = b.Graph()
	return st
}

// BenchmarkAblationSMisSelfHealing compares SMis (which un-decides on
// violation) against a frozen variant mimicking plain Ghaffari: the
// violation count under churn shows why network-static algorithms need
// the un-decide rule.
func BenchmarkAblationSMisSelfHealing(b *testing.B) {
	const n = 256
	base := GNP(n, 6.0/float64(n), 3)
	var healViol, frozenViol float64
	for i := 0; i < b.N; i++ {
		healViol = benchViolations(b, NewSMis(n), base, uint64(i))
		frozenViol = benchViolations(b, NewLuby(n), base, uint64(i))
	}
	b.ReportMetric(healViol, "selfheal-viol")
	b.ReportMetric(frozenViol, "frozen-viol")
}

func benchViolations(b *testing.B, algo Algorithm, base *Graph, seed uint64) float64 {
	b.Helper()
	n := base.N()
	adv := NewChurn(base, 8, 8, seed+1)
	e := NewEngine(EngineConfig{N: n, Seed: seed + 2}, adv, algo)
	viol := 0
	e.OnRound(func(info *RoundInfo) {
		if info.Round <= 30 {
			return
		}
		viol += len(problems.MIS().P.CheckPartial(info.Graph(), info.Outputs))
		viol += len(problems.MIS().C.CheckPartial(info.Graph(), info.Outputs))
	})
	e.Run(100)
	return float64(viol)
}

// BenchmarkEngineWorkers measures the engine's two-phase round under 1
// worker vs GOMAXPROCS workers at a size where sharding engages.
func BenchmarkEngineWorkers(b *testing.B) {
	const n = 8192
	s := prf.NewStream(1, 0, 0, prf.PurposeWorkload)
	g := graph.GNP(n, 8.0/n, s)
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "sharded"
		}
		b.Run(name, func(b *testing.B) {
			e := engine.New(engine.Config{N: n, Seed: 2, Workers: workers},
				adversary.Static{G: g}, mis.NewMIS(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// BenchmarkWorkerScaling is the worker-scaling matrix (recorded as
// BENCH_<date>-scaling.json via `BENCH=BenchmarkWorkerScaling
// LABEL=-scaling scripts/bench.sh`): Workers ∈ {1, 2, 4, 8} crossed with
// three workloads — uniform (static G(n,p)), star-skew (a star unioned
// with a sparse G(n,p): the degree skew that edge-balanced sharding
// exists for) and churn — at N=8192 running the combined MIS algorithm
// in steady state. On small CI boxes the higher worker counts just
// measure oversubscription; the matrix is meant for occasional manual
// runs on real multi-core hardware (see docs/benchmarking.md).
func BenchmarkWorkerScaling(b *testing.B) {
	const n = 8192
	workloads := []struct {
		name string
		mk   func() adversary.Adversary
	}{
		{"uniform", func() adversary.Adversary {
			return adversary.Static{G: GNP(n, 8.0/float64(n), 5)}
		}},
		{"star-skew", func() adversary.Adversary {
			return adversary.Static{G: graph.Union(graph.Star(n), GNP(n, 4.0/float64(n), 5))}
		}},
		{"churn", func() adversary.Adversary {
			return NewChurn(GNP(n, 8.0/float64(n), 5), 32, 32, 6)
		}},
	}
	for _, wl := range workloads {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", wl.name, workers), func(b *testing.B) {
				e := NewEngine(EngineConfig{N: n, Seed: 7, Workers: workers}, wl.mk(), NewMIS(n))
				e.Run(16) // reach steady state
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
			})
		}
	}
}

// BenchmarkCombinedMISRound measures the steady-state cost of one full
// combined-algorithm round (T1-1 live instances) per node.
func BenchmarkCombinedMISRound(b *testing.B) {
	const n = 4096
	base := GNP(n, 8.0/float64(n), 5)
	adv := NewChurn(base, 32, 32, 6)
	e := NewEngine(EngineConfig{N: n, Seed: 7}, adv, NewMIS(n))
	e.Run(64) // reach steady state
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.ReportMetric(float64(n), "nodes")
}

// BenchmarkTDynamicChecker measures the verification overhead per round at
// N=4096 under steady churn, in four modes: the self-diffing incremental
// checker (O(n) output scan per round), the changed-feed checker driven by
// a precomputed round-delta list as the engine supplies via
// RoundInfo.Changed (graph-fed window, no output scan), the delta-feed
// checker driven by the full round-delta plane — topology diff plus
// changed list, no graph at all (ObserveDeltas, O(changes) per round) —
// and the materializing oracle (per-round G^∩T/G^∪T CSR rebuild + full
// CheckFull rescans). incremental-vs-oracle is the headline of the PR 2
// incremental pipeline; delta-feed-vs-changed-feed isolates the O(|E_r|)
// window merge the delta-native topology plane removed.
func BenchmarkTDynamicChecker(b *testing.B) {
	const n = 4096
	const T = 16
	const cycle = 48
	base := GNP(n, 8.0/float64(n), 5)
	// Pre-generate a churned graph cycle (toggle 32 random node pairs per
	// round) and a drifting output schedule so both checkers process real
	// topology and output deltas every round without generator cost inside
	// the timed loop.
	s := prf.NewStream(17, 0, 0, prf.PurposeWorkload)
	graphs := make([]*graph.Graph, cycle)
	outs := make([][]problems.Value, cycle)
	bld := graph.NewBuilder(n)
	base.EachEdge(func(u, v graph.NodeID) { bld.AddEdge(u, v) })
	for i := range graphs {
		for j := 0; j < 32; j++ {
			u := graph.NodeID(s.Intn(n))
			v := graph.NodeID(s.Intn(n))
			if u == v {
				continue
			}
			if bld.HasEdge(u, v) {
				bld.RemoveEdge(u, v)
			} else {
				bld.AddEdge(u, v)
			}
		}
		graphs[i] = bld.Graph()
	}
	// Output schedule: a greedy coloring of the footprint (union of all
	// cycle graphs), churned by properly recoloring 32 random nodes per
	// round. Properness w.r.t. the footprint implies properness on every
	// window intersection graph, so — like a converged run of the real
	// algorithms — rounds are (near-)violation-free and the benchmark
	// measures checking cost, not violation-report formatting.
	foot := graphs[0]
	for _, g := range graphs[1:] {
		foot = graph.Union(foot, g)
	}
	recolor := func(out []problems.Value, v graph.NodeID) {
		used := make(map[problems.Value]bool)
		for _, u := range foot.Neighbors(v) {
			used[out[u]] = true
		}
		for c := problems.Value(1); ; c++ {
			if !used[c] {
				out[v] = c
				return
			}
		}
	}
	out := make([]problems.Value, n)
	for v := 0; v < n; v++ {
		recolor(out, graph.NodeID(v))
	}
	for i := range outs {
		for j := 0; j < 32; j++ {
			recolor(out, graph.NodeID(s.Intn(n)))
		}
		outs[i] = append([]problems.Value(nil), out...)
	}
	// Ping-pong through the cycle so every step — including the wrap — is
	// exactly one 32-toggle/32-recolor delta; a plain modulo wrap from
	// graphs[cycle-1] back to graphs[0] would inject one ~47×-churn round
	// per cycle and skew the incremental path's steady-state numbers.
	order := make([]int, 0, 2*cycle-2)
	for i := 0; i < cycle; i++ {
		order = append(order, i)
	}
	for i := cycle - 2; i >= 1; i-- {
		order = append(order, i)
	}
	// changedInto[k] is the output diff over the transition into position
	// k of the ping-pong order (from position (k-1+L)%L) — what the
	// engine's RoundInfo.Changed feed would carry. The first observation
	// of a run diffs against the all-⊥ initial state instead.
	diffOuts := func(a, b []problems.Value) []graph.NodeID {
		var d []graph.NodeID
		for i := range b {
			if a[i] != b[i] {
				d = append(d, graph.NodeID(i))
			}
		}
		return d
	}
	changedInto := make([][]graph.NodeID, len(order))
	for k := range order {
		prev := order[(k-1+len(order))%len(order)]
		changedInto[k] = diffOuts(outs[prev], outs[order[k]])
	}
	firstChanged := diffOuts(make([]problems.Value, n), outs[0])
	// addsInto/removesInto mirror changedInto on the topology side: the
	// edge diff over the transition into each ping-pong position, i.e.
	// what RoundInfo.EdgeAdds/EdgeRemoves would carry.
	addsInto := make([][]graph.EdgeKey, len(order))
	removesInto := make([][]graph.EdgeKey, len(order))
	for k := range order {
		prev := order[(k-1+len(order))%len(order)]
		addsInto[k], removesInto[k] = graph.DiffSortedKeys(
			graphs[prev].EdgeKeys(), graphs[order[k]].EdgeKeys(), nil, nil)
	}
	wake := AllNodes(n)
	for _, mode := range []struct {
		name  string
		mk    func() *verify.TDynamic
		first func(chk *verify.TDynamic)
		obs   func(chk *verify.TDynamic, k int)
	}{
		{
			// Self-diffing path: the checker finds the output changes with
			// its own O(n) scan.
			name: "incremental",
			mk:   func() *verify.TDynamic { return verify.NewTDynamic(problems.Coloring(), T, n) },
			first: func(chk *verify.TDynamic) {
				chk.Observe(graphs[0], wake, outs[0])
			},
			obs: func(chk *verify.TDynamic, k int) {
				chk.Observe(graphs[order[k]], nil, outs[order[k]])
			},
		},
		{
			// Round-delta plane: the caller supplies the changed-node list
			// (as the engine does via RoundInfo.Changed) — no scan at all.
			name: "changed-feed",
			mk:   func() *verify.TDynamic { return verify.NewTDynamic(problems.Coloring(), T, n) },
			first: func(chk *verify.TDynamic) {
				chk.ObserveChanged(graphs[0], wake, outs[0], firstChanged)
			},
			obs: func(chk *verify.TDynamic, k int) {
				chk.ObserveChanged(graphs[order[k]], nil, outs[order[k]], changedInto[k])
			},
		},
		{
			// Full round-delta plane: topology and output diffs both
			// caller-supplied (as the engine does via RoundInfo) — no
			// graph, no edge merge, no output scan.
			name: "delta-feed",
			mk:   func() *verify.TDynamic { return verify.NewTDynamic(problems.Coloring(), T, n) },
			first: func(chk *verify.TDynamic) {
				chk.ObserveDeltas(graphs[0].EdgeKeys(), nil, wake, outs[0], firstChanged)
			},
			obs: func(chk *verify.TDynamic, k int) {
				chk.ObserveDeltas(addsInto[k], removesInto[k], nil, outs[order[k]], changedInto[k])
			},
		},
		{
			name: "oracle",
			mk:   func() *verify.TDynamic { return verify.NewTDynamicOracle(problems.Coloring(), T, n) },
			first: func(chk *verify.TDynamic) {
				chk.Observe(graphs[0], wake, outs[0])
			},
			obs: func(chk *verify.TDynamic, k int) {
				chk.Observe(graphs[order[k]], nil, outs[order[k]])
			},
		},
	} {
		b.Run(mode.name, func(b *testing.B) {
			chk := mode.mk()
			mode.first(chk)
			for k := 1; k < len(order); k++ { // fill the window before timing
				mode.obs(chk, k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mode.obs(chk, i%len(order))
			}
		})
	}
}

// BenchmarkTopologyDelta is the scan-vs-delta matrix of the topology
// plane (recorded as BENCH_<date>-topo.json via `BENCH=BenchmarkTopologyDelta
// LABEL=-topo scripts/bench.sh`): N ∈ {4096, 65536} × churn ∈ {low, high}
// toggled edges per round, feeding the same schedule into a T-dynamic
// sliding window two ways. "scan" is the pre-delta pipeline's per-round
// topology cost — materialize the round's CSR graph from its edge list,
// then let the window recover the diff by merging consecutive edge lists
// (Window.Observe) — while "delta" hands the window the sorted diff
// directly (Window.ObserveEdgeDelta), the feed the engine's
// RoundInfo.EdgeAdds/EdgeRemoves supplies. The delta feed's cost scales
// with churn volume only, so the gap widens with n at fixed churn: the
// headline cell is N=65536/low, where per-round work drops from one
// ~260k-edge build+merge to ~64 map updates.
func BenchmarkTopologyDelta(b *testing.B) {
	const T = 16
	const cycle = 8
	for _, n := range []int{4096, 65536} {
		for _, churn := range []struct {
			name string
			rate int
		}{
			{"low", 32},
			{"high", n / 16},
		} {
			// Pre-generate a ping-pong schedule of consistent rounds:
			// edge-list snapshots for the scan feed, sorted diffs for the
			// delta feed. The ping-pong makes every transition — including
			// the wrap — exactly one churn-rate delta.
			s := prf.NewStream(uint64(n+churn.rate), 0, 0, prf.PurposeWorkload)
			present := make(map[graph.EdgeKey]bool)
			base := GNP(n, 8.0/float64(n), uint64(n))
			for _, k := range base.EdgeKeys() {
				present[k] = true
			}
			snapshot := func() []graph.EdgeKey {
				keys := make([]graph.EdgeKey, 0, len(present))
				for k := range present {
					keys = append(keys, k)
				}
				slices.Sort(keys)
				return keys
			}
			type round struct {
				keys          []graph.EdgeKey
				adds, removes []graph.EdgeKey
			}
			// Forward transitions s0→s1→…→s_c, then the exact reverses
			// back down to s0, so position i%len always continues from
			// position (i-1)%len — including across the wrap.
			startKeys := snapshot()
			rounds := make([]round, 0, 2*cycle)
			prevKeys := startKeys
			for i := 0; i < cycle; i++ {
				for j := 0; j < churn.rate; j++ {
					u := graph.NodeID(s.Intn(n))
					v := graph.NodeID(s.Intn(n))
					if u == v {
						continue
					}
					k := graph.MakeEdgeKey(u, v)
					if present[k] {
						delete(present, k)
					} else {
						present[k] = true
					}
				}
				keys := snapshot()
				adds, removes := graph.DiffSortedKeys(prevKeys, keys, nil, nil)
				rounds = append(rounds, round{keys: keys, adds: adds, removes: removes})
				prevKeys = keys
			}
			for i := cycle - 1; i >= 0; i-- {
				keys := startKeys
				if i > 0 {
					keys = rounds[i-1].keys
				}
				rounds = append(rounds, round{
					keys:    keys,
					adds:    rounds[i].removes,
					removes: rounds[i].adds,
				})
			}
			all := adversary.AllNodes(n)
			b.Run(fmt.Sprintf("N=%d/churn=%s/scan", n, churn.name), func(b *testing.B) {
				w := dyngraph.NewWindow(T, n)
				w.Observe(graph.FromSortedEdges(n, startKeys), all)
				for k := 0; k < len(rounds); k++ { // fill the window before timing
					w.Observe(graph.FromSortedEdges(n, rounds[k].keys), nil)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r := &rounds[i%len(rounds)]
					w.Observe(graph.FromSortedEdges(n, r.keys), nil)
				}
			})
			b.Run(fmt.Sprintf("N=%d/churn=%s/delta", n, churn.name), func(b *testing.B) {
				w := dyngraph.NewWindow(T, n)
				w.ObserveEdgeDelta(startKeys, nil, all)
				for k := 0; k < len(rounds); k++ {
					w.ObserveEdgeDelta(rounds[k].adds, rounds[k].removes, nil)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r := &rounds[i%len(rounds)]
					w.ObserveEdgeDelta(r.adds, r.removes, nil)
				}
			})
		}
	}
}

// BenchmarkSparseRound measures full engine rounds in the paper's highly
// dynamic P2P regime — active ≪ n — crossing universe size, active
// fraction and churn rate, with the sparse activity plane (the default)
// against the Config{Dense: true} reference walk. The workload is
// standalone DMis (the one algorithm with a Quiescer: its Dominated
// majority leaves the active set) over a churned G(k, 8/k) on the first
// k = N/frac nodes of an N-node universe; sparse and dense produce
// bit-identical outputs (pinned by TestSparseMatchesDense), so the
// timings compare equal work. Steady state is reached before timing:
// wake, convergence and quiescent drops all happen during warm-up.
// Recorded as BENCH_*-sparse.json via
// `BENCH=BenchmarkSparseRound LABEL=-sparse scripts/bench.sh`.
func BenchmarkSparseRound(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 20} {
		for _, frac := range []int{1024, 64, 8} {
			k := n / frac
			if k < 512 {
				// Fewer than 512 participants is not the sparse regime,
				// it is a small graph; skip (affects N=65536/1of1024).
				continue
			}
			// Churn is per-capita — a fraction of the participant count
			// per round, the standard P2P session-churn framing — so the
			// low/high cells mean the same thing at every k: ~0.8%/round
			// of edges resampled vs ~6%/round.
			for _, churn := range []struct {
				name string
				rate int
			}{
				{"low", k / 128},
				{"high", k / 16},
			} {
				for _, mode := range []struct {
					name  string
					dense bool
				}{
					{"sparse", false},
					{"dense", true},
				} {
					name := fmt.Sprintf("N=%d/active=1of%d/churn=%s/%s", n, frac, churn.name, mode.name)
					b.Run(name, func(b *testing.B) {
						base := GNP(k, 8.0/float64(k), uint64(n+k))
						adv := NewChurn(base, churn.rate, churn.rate, uint64(k+churn.rate))
						e := engine.New(engine.Config{N: n, Seed: 7, Dense: mode.dense}, adv, mis.NewDynamic(n))
						for r := 0; r < 48; r++ {
							e.Step()
						}
						b.ReportAllocs()
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							e.Step()
						}
					})
				}
			}
		}
	}
}

// BenchmarkStatsFit keeps the reporting path honest.
// buildTraceWire encodes a deterministic churn trace — a GNP base graph
// at round 1, then `rate` random edge toggles per round — through the
// streaming encoder, returning the wire bytes.
func buildTraceWire(b *testing.B, n, rounds, rate int) []byte {
	b.Helper()
	var buf bytes.Buffer
	enc, err := dyngraph.NewStreamEncoder(&buf, n, rounds)
	if err != nil {
		b.Fatal(err)
	}
	base := GNP(n, 8.0/float64(n), uint64(n))
	present := make(map[graph.EdgeKey]bool)
	for _, k := range base.EdgeKeys() {
		present[k] = true
	}
	if err := enc.WriteRound(adversary.AllNodes(n), base.EdgeKeys(), nil); err != nil {
		b.Fatal(err)
	}
	s := prf.NewStream(uint64(n+rate), 0, 0, prf.PurposeWorkload)
	var adds, removes []graph.EdgeKey
	for r := 2; r <= rounds; r++ {
		adds, removes = adds[:0], removes[:0]
		for j := 0; j < rate; j++ {
			u := graph.NodeID(s.Intn(n))
			v := graph.NodeID(s.Intn(n))
			if u == v {
				continue
			}
			k := graph.MakeEdgeKey(u, v)
			// A key toggled twice in one round cancels to a net no-op —
			// the diff must be an exact set difference.
			if present[k] {
				present[k] = false
				if i := slices.Index(adds, k); i >= 0 {
					adds = slices.Delete(adds, i, i+1)
				} else {
					removes = append(removes, k)
				}
			} else {
				present[k] = true
				if i := slices.Index(removes, k); i >= 0 {
					removes = slices.Delete(removes, i, i+1)
				} else {
					adds = append(adds, k)
				}
			}
		}
		slices.Sort(adds)
		slices.Sort(removes)
		if err := enc.WriteRound(nil, adds, removes); err != nil {
			b.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkTraceReplay compares the two trace replay paths on long
// recorded schedules: DecodeTrace + ReplayDeltas materializes the whole
// trace in memory (allocations scale with trace length), while
// StreamDecoder pulls one validated round at a time from reused buffers
// (allocations independent of trace length — compare rounds=512 against
// rounds=4096 at N=4096). allocs/op is the headline; ns/round the
// throughput view.
func BenchmarkTraceReplay(b *testing.B) {
	const rate = 48
	configs := []struct{ n, rounds int }{
		{4096, 512},
		{4096, 4096},
		{65536, 512},
	}
	for _, cfg := range configs {
		wire := buildTraceWire(b, cfg.n, cfg.rounds, rate)
		tag := fmt.Sprintf("N=%d/rounds=%d", cfg.n, cfg.rounds)
		b.Run(tag+"/inmemory", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(wire)))
			edges := 0
			for i := 0; i < b.N; i++ {
				tr, err := dyngraph.DecodeTrace(bytes.NewReader(wire))
				if err != nil {
					b.Fatal(err)
				}
				tr.ReplayDeltas(func(_ int, adds, _ []graph.EdgeKey, _ []graph.NodeID) {
					edges += len(adds)
				})
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*cfg.rounds), "ns/round")
			_ = edges
		})
		b.Run(tag+"/streaming", func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(wire)))
			edges := 0
			for i := 0; i < b.N; i++ {
				d, err := dyngraph.NewStreamDecoder(bytes.NewReader(wire))
				if err != nil {
					b.Fatal(err)
				}
				for {
					tr, err := d.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					edges += len(tr.Adds)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*cfg.rounds), "ns/round")
			_ = edges
		})
	}
}

// BenchmarkCheckpoint measures the cost of the checkpoint/resume plane
// as the universe grows: snapshotting a mid-run engine+checker pair to a
// byte stream, restoring a fresh pair from it (heap and arena-pooled),
// writing one incremental delta record, and replaying a base+delta
// chain. Full snapshot and restore scale with live state (nodes, window
// edges, adversary footprint); the delta modes scale with the activity
// between records — hence the two churn levels — and bytes/op sizes the
// serialized form itself.
func BenchmarkCheckpoint(b *testing.B) {
	const rounds = 32
	// interval is the rounds between chain records: each delta covers
	// interval rounds of churn and algorithm reaction.
	const interval = 4

	// Full-state modes: the combined MIS pipeline mid-run, the heaviest
	// state the plane serializes (snapshot ring, window, beacon levels).
	// These keep the historical names and configuration so runs compare
	// across recorded baselines.
	for _, n := range []int{1024, 4096, 16384} {
		mkAdv := func() adversary.Adversary {
			base := graph.GNP(n, 8.0/float64(n), prf.NewStream(7, 0, 0, prf.PurposeWorkload))
			return &adversary.Churn{Base: base, Add: 16, Del: 16, Seed: 3}
		}
		cfg := engine.Config{N: n, Seed: 1, Workers: 4}
		algo := mis.NewMIS(n)
		e := engine.New(cfg, mkAdv(), algo)
		chk := verify.NewTDynamic(problems.MIS(), algo.T1, n)
		e.OnRound(func(info *engine.RoundInfo) { chk.Feed(info.Delta()) })
		e.Run(rounds)
		var ck bytes.Buffer
		if err := WriteCheckpoint(&ck, e, chk); err != nil {
			b.Fatal(err)
		}

		b.Run(fmt.Sprintf("snapshot/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(ck.Len()))
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				buf.Grow(ck.Len())
				if err := WriteCheckpoint(&buf, e, chk); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("restore/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(ck.Len()))
			for i := 0; i < b.N; i++ {
				algo2 := mis.NewMIS(n)
				e2 := engine.New(cfg, mkAdv(), algo2)
				chk2 := verify.NewTDynamic(problems.MIS(), algo2.T1, n)
				if err := ReadCheckpoint(bytes.NewReader(ck.Bytes()), e2, chk2); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("arena-restore/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(ck.Len()))
			arena := NewRestoreArena()
			for i := 0; i < b.N; i++ {
				// The previous iteration's restored run is dead; its
				// arena memory is reusable.
				arena.Reset()
				algo2 := mis.NewMIS(n)
				e2 := engine.New(cfg, mkAdv(), algo2)
				chk2 := verify.NewTDynamic(problems.MIS(), algo2.T1, n)
				if err := ReadCheckpointArena(bytes.NewReader(ck.Bytes()), e2, chk2, arena); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Delta modes: standalone dynamic MIS warmed past its convergence
	// window, where most of the universe is quiescent and a delta record
	// pays only for the nodes churn actually disturbs. (The combined
	// pipeline is the wrong scenario here by construction: Concat nodes
	// never quiesce — beacons re-broadcast and the simulation pipeline
	// rotates every round — so its deltas degenerate to near-full size,
	// as docs/checkpointing.md spells out.) The two churn levels show
	// delta cost tracking per-interval activity, not N.
	for _, cl := range []struct {
		tag      string
		add, del int
	}{{"churn=32", 16, 16}, {"churn=4", 2, 2}} {
		for _, n := range []int{1024, 4096, 16384} {
			mkAdv := func() adversary.Adversary {
				base := graph.GNP(n, 8.0/float64(n), prf.NewStream(7, 0, 0, prf.PurposeWorkload))
				return &adversary.Churn{Base: base, Add: cl.add, Del: cl.del, Seed: 3}
			}
			cfg := engine.Config{N: n, Seed: 1, Workers: 4}
			t1 := mis.DefaultMISWindow(n)
			e := engine.New(cfg, mkAdv(), mis.NewDynamic(n))
			chk := verify.NewTDynamic(problems.MIS(), t1, n)
			e.OnRound(func(info *engine.RoundInfo) { chk.Feed(info.Delta()) })
			e.Run(2*t1 + 16)
			if cl.add == 16 {
				// The delta acceptance ratio compares against a full
				// snapshot of the same engine, not the combined one.
				var full bytes.Buffer
				if err := WriteCheckpoint(&full, e, chk); err != nil {
					b.Fatal(err)
				}
				b.Run(fmt.Sprintf("snapshot-dmis/N=%d", n), func(b *testing.B) {
					b.ReportAllocs()
					b.SetBytes(int64(full.Len()))
					for i := 0; i < b.N; i++ {
						var buf bytes.Buffer
						buf.Grow(full.Len())
						if err := WriteCheckpoint(&buf, e, chk); err != nil {
							b.Fatal(err)
						}
					}
				})
			}

			// Build the incremental chain: base at the warmed round, then
			// one delta record per interval of live rounds.
			var chain bytes.Buffer
			if err := WriteCheckpointChain(&chain, e, chk); err != nil {
				b.Fatal(err)
			}
			for rec := 0; rec < 3; rec++ {
				for i := 0; i < interval; i++ {
					e.Step()
				}
				if err := AppendCheckpointDelta(&chain, e, chk); err != nil {
					b.Fatal(err)
				}
			}
			// One more interval of activity backs the delta-write mode.
			for i := 0; i < interval; i++ {
				e.Step()
			}

			b.Run(fmt.Sprintf("delta/%s/N=%d", cl.tag, n), func(b *testing.B) {
				b.ReportAllocs()
				var probe bytes.Buffer
				if err := appendDeltaRecord(&probe, e, chk); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(probe.Len()))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var buf bytes.Buffer
					buf.Grow(probe.Len())
					if err := appendDeltaRecord(&buf, e, chk); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("chain-restore/%s/N=%d", cl.tag, n), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(chain.Len()))
				arena := NewRestoreArena()
				for i := 0; i < b.N; i++ {
					arena.Reset()
					e2 := engine.New(cfg, mkAdv(), mis.NewDynamic(n))
					chk2 := verify.NewTDynamic(problems.MIS(), t1, n)
					if err := ReadCheckpointChain(bytes.NewReader(chain.Bytes()), e2, chk2, arena); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// appendDeltaRecord serializes one delta record without noting it, so a
// benchmark can write the same delta repeatedly against a live run.
func appendDeltaRecord(buf *bytes.Buffer, e *engine.Engine, chk *verify.TDynamic) error {
	w := ckpt.NewWriter(buf)
	e.CheckpointDeltaTo(w)
	chk.SaveDelta(w)
	return w.Close()
}

func BenchmarkStatsFit(b *testing.B) {
	ns := []int{128, 256, 512, 1024, 2048, 4096}
	y := []float64{10, 12, 14, 16, 18, 20}
	for i := 0; i < b.N; i++ {
		_ = stats.FitLogN(ns, y)
	}
}
