package detcheck_test

import (
	"testing"

	"dynlocal/internal/analysis/detcheck"
	"dynlocal/internal/analysis/framework/analysistest"
)

func TestDetcheck(t *testing.T) {
	analysistest.Run(t, "../testdata/src", detcheck.Analyzer, "./det/...")
}
