// Package detcheck enforces the engine's determinism contract in the
// determinism-critical packages (engine, adversary, algos, dyngraph,
// core, problems): a round's output must be a function of the adversary
// schedule and the PRF draws alone, bit-identical for every worker count
// and every process execution. Three things break that silently and are
// flagged here:
//
//   - ranging over a map where the body's effects depend on iteration
//     order. Order-insensitive bodies are allowed: per-key map writes and
//     deletes, commutative integer accumulation, and the collect-then-sort
//     idiom (appending keys to a slice that is subsequently passed to
//     slices.Sort/sort.* or to a canonicalizing constructor like
//     graph.FromEdges in the same function);
//   - math/rand (any import): all randomness must come from internal/prf
//     streams keyed by (seed, node, round, purpose);
//   - wall-clock and scheduling leaks: time.Now/Since and select with a
//     default clause, whose outcome depends on goroutine timing.
//
// Test files are exempt (they may time things and use helper maps); the
// experiment timers live in internal/experiments, which is not a
// determinism-critical package.
package detcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dynlocal/internal/analysis/framework"
)

// Critical lists the import-path prefixes of determinism-critical
// packages. A package is checked when its path starts with any entry.
// "fix/det" covers the analysistest fixtures.
var Critical = []string{
	"dynlocal/internal/engine",
	"dynlocal/internal/adversary",
	"dynlocal/internal/algos",
	"dynlocal/internal/dyngraph",
	"dynlocal/internal/core",
	"dynlocal/internal/problems",
	"dynlocal/internal/graph",
	"fix/det",
}

// Exempt lists path prefixes excluded even when matched by Critical
// (internal/prf is the sanctioned randomness source).
var Exempt = []string{"dynlocal/internal/prf"}

// Analyzer is the detcheck framework.Analyzer.
var Analyzer = &framework.Analyzer{
	Name:     "detcheck",
	Doc:      "flags map-iteration-order, math/rand, wall-clock and select-default nondeterminism in determinism-critical packages",
	Contract: "engine determinism: outputs depend only on the adversary schedule and PRF draws",
	Run:      run,
}

func critical(path string) bool {
	for _, p := range Exempt {
		if strings.HasPrefix(path, p) {
			return false
		}
	}
	for _, p := range Critical {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if !critical(strings.TrimSuffix(pass.PkgPath, "_test")) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.TestFile(file.Pos()) {
			continue
		}
		checkImports(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.RangeStmt:
				checkMapRange(pass, st, enclosingFunc(file, st))
			case *ast.SelectStmt:
				checkSelectDefault(pass, st)
			case *ast.CallExpr:
				checkClock(pass, st)
			}
			return true
		})
	}
	return nil
}

func checkImports(pass *framework.Pass, file *ast.File) {
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path == "math/rand" || path == "math/rand/v2" {
			pass.Reportf(imp.Pos(), "math/rand in a determinism-critical package: draw from internal/prf streams keyed by (seed, node, round, purpose) instead")
		}
	}
}

func checkClock(pass *framework.Pass, call *ast.CallExpr) {
	if framework.PkgFunc(pass.TypesInfo, call, "time", "Now") ||
		framework.PkgFunc(pass.TypesInfo, call, "time", "Since") {
		pass.Reportf(call.Pos(), "wall-clock read in a determinism-critical package: round results must not depend on real time")
	}
}

func checkSelectDefault(pass *framework.Pass, sel *ast.SelectStmt) {
	for _, cl := range sel.Body.List {
		if c, ok := cl.(*ast.CommClause); ok && c.Comm == nil {
			pass.Reportf(sel.Pos(), "select with default in a determinism-critical package: the taken branch depends on goroutine scheduling")
			return
		}
	}
}

// enclosingFunc returns the innermost function body containing n, used to
// scope the was-it-sorted-later search.
func enclosingFunc(file *ast.File, n ast.Node) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if m.Pos() > n.Pos() || m.End() < n.End() {
			return m.Pos() <= n.Pos() && n.End() <= m.End()
		}
		switch f := m.(type) {
		case *ast.FuncDecl:
			if f.Body != nil && f.Body.Pos() <= n.Pos() && n.End() <= f.Body.End() {
				body = f.Body
			}
		case *ast.FuncLit:
			if f.Body.Pos() <= n.Pos() && n.End() <= f.Body.End() {
				body = f.Body
			}
		}
		return true
	})
	return body
}

// checkMapRange classifies the body of a range-over-map loop. The loop is
// reported unless every statement is order-insensitive.
func checkMapRange(pass *framework.Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	c := &rangeChecker{pass: pass, rng: rng, fnBody: fnBody}
	c.loopVars(rng.Key)
	c.loopVars(rng.Value)
	for _, st := range rng.Body.List {
		if bad, why := c.unsafeStmt(st); bad {
			pass.Reportf(rng.Pos(), "map iteration order reaches %s; iterate a sorted key slice, or make the body order-insensitive", why)
			return
		}
	}
	// Appends recorded provisionally are fine only if the destination is
	// sorted (or canonicalized) later in the same function.
	for obj, pos := range c.appends {
		if !c.sortedLater(obj) {
			pass.Reportf(pos, "slice %s is built from map iteration order and never sorted; call slices.Sort (or build it from a sorted source)", obj.Name())
		}
	}
}

type rangeChecker struct {
	pass    *framework.Pass
	rng     *ast.RangeStmt
	fnBody  *ast.BlockStmt
	locals  map[types.Object]bool      // loop key/value vars and body-local vars
	appends map[types.Object]token.Pos // slices appended to from the loop
}

func (c *rangeChecker) loopVars(e ast.Expr) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if c.locals == nil {
		c.locals = make(map[types.Object]bool)
	}
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		c.locals[obj] = true
	}
}

// unsafeStmt reports whether st makes the loop order-sensitive, with a
// short reason.
func (c *rangeChecker) unsafeStmt(st ast.Stmt) (bool, string) {
	switch s := st.(type) {
	case *ast.AssignStmt:
		return c.unsafeAssign(s)
	case *ast.IncDecStmt:
		if c.commutativeTarget(s.X) {
			return false, ""
		}
		return true, "a non-commutative update"
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			return true, "an order-sensitive expression"
		}
		if framework.IsBuiltinCall(c.pass.TypesInfo, call, "delete") {
			return false, "" // per-key delete
		}
		return true, "a call to " + callLabel(c.pass.TypesInfo, call)
	case *ast.IfStmt:
		if s.Init != nil {
			if bad, why := c.unsafeStmt(s.Init); bad {
				return bad, why
			}
		}
		for _, sub := range s.Body.List {
			if bad, why := c.unsafeStmt(sub); bad {
				return bad, why
			}
		}
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				for _, sub := range e.List {
					if bad, why := c.unsafeStmt(sub); bad {
						return bad, why
					}
				}
			case *ast.IfStmt:
				return c.unsafeStmt(e)
			}
		}
		return false, ""
	case *ast.BlockStmt:
		for _, sub := range s.List {
			if bad, why := c.unsafeStmt(sub); bad {
				return bad, why
			}
		}
		return false, ""
	case *ast.RangeStmt:
		// Nested range over a slice with a safe body is fine; a nested
		// map range is checked on its own.
		for _, sub := range s.Body.List {
			if bad, why := c.unsafeStmt(sub); bad {
				return bad, why
			}
		}
		return false, ""
	case *ast.ForStmt:
		for _, sub := range s.Body.List {
			if bad, why := c.unsafeStmt(sub); bad {
				return bad, why
			}
		}
		return false, ""
	case *ast.BranchStmt:
		return false, "" // break/continue
	case *ast.DeclStmt:
		return false, "" // local declarations
	case *ast.ReturnStmt:
		return true, "an early return whose value depends on which key comes first"
	default:
		return true, "an order-sensitive statement"
	}
}

func (c *rangeChecker) unsafeAssign(s *ast.AssignStmt) (bool, string) {
	// Op-assigns (+=, |=, ...) on commutative targets are safe.
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		if len(s.Lhs) == 1 && c.commutativeTarget(s.Lhs[0]) {
			switch s.Tok {
			case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
				return false, ""
			}
		}
		return true, "a non-commutative compound assignment"
	}
	for i, lhs := range s.Lhs {
		lhs = ast.Unparen(lhs)
		var rhs ast.Expr
		if i < len(s.Rhs) {
			rhs = s.Rhs[i]
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			if s.Tok == token.DEFINE {
				c.loopVars(l)
				continue
			}
			obj := c.pass.TypesInfo.Uses[l]
			if c.locals[obj] {
				continue // rewriting a loop-local
			}
			// x = append(x, k): provisional, must be sorted later.
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok &&
				framework.IsBuiltinCall(c.pass.TypesInfo, call, "append") {
				if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && c.pass.TypesInfo.Uses[base] == obj && obj != nil {
					if c.appends == nil {
						c.appends = make(map[types.Object]token.Pos)
					}
					if _, seen := c.appends[obj]; !seen {
						c.appends[obj] = s.Pos()
					}
					continue
				}
			}
			return true, "an assignment to " + l.Name + " outside the loop"
		case *ast.IndexExpr:
			// Per-key writes into maps, or into slices indexed by a
			// loop-derived key, are order-insensitive.
			if c.perKeyIndex(l) {
				continue
			}
			return true, "an indexed write not keyed by the iteration variable"
		default:
			return true, "an order-sensitive store"
		}
	}
	return false, ""
}

// perKeyIndex reports whether ix writes one element per iterated key:
// a map index, or a slice index derived from the loop variables.
func (c *rangeChecker) perKeyIndex(ix *ast.IndexExpr) bool {
	if tv, ok := c.pass.TypesInfo.Types[ix.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return true
		}
	}
	usesLoopVar := false
	ast.Inspect(ix.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.locals[c.pass.TypesInfo.Uses[id]] {
			usesLoopVar = true
		}
		return true
	})
	return usesLoopVar
}

// commutativeTarget reports whether the lvalue is an integer (or
// integer-field) accumulator, whose += / ++ folds commute.
func (c *rangeChecker) commutativeTarget(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sortedLater reports whether obj is passed to a sorting or canonicalizing
// call anywhere in the enclosing function after being filled from the map.
func (c *rangeChecker) sortedLater(obj types.Object) bool {
	if c.fnBody == nil {
		return false
	}
	sorted := false
	ast.Inspect(c.fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted {
			return !sorted
		}
		if !sortingCall(c.pass.TypesInfo, call) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == obj {
					sorted = true
				}
				return !sorted
			})
		}
		return !sorted
	})
	return sorted
}

// sortingCall recognizes order-establishing (slices.Sort*, sort.*) and
// order-canonicalizing (graph.FromEdges, which sorts internally) calls.
func sortingCall(info *types.Info, call *ast.CallExpr) bool {
	obj := framework.CalleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Name() {
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	case "sort":
		return true
	case "graph":
		return fn.Name() == "FromEdges"
	}
	return false
}

func callLabel(info *types.Info, call *ast.CallExpr) string {
	if name := framework.CalleeName(info, call); name != "" {
		return name
	}
	return "a function"
}
