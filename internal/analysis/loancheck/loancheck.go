// Package loancheck enforces the buffer-ownership contract of the
// ARCHITECTURE.md "Buffer ownership" rules at compile time: values marked
// //dynlint:loan (pooled RoundInfo rounds and their slices, Patcher
// graphs, Window delta slices, EdgeKeys views, ...) are only on loan from
// an engine-owned pool and may not be stored anywhere that outlives the
// observer callback — a struct field, a package variable, or a variable
// captured from an enclosing scope — unless laundered through
// Retain/Clone/slices.Clone first. It also flags element writes through
// //dynlint:view read-only aliases.
//
// The analysis is an intraprocedural taint pass per function: loan
// sources are loan-annotated types, fields, function results and
// parameters; taint propagates through local assignments, slicing,
// composite literals and loan-preserving appends, and is severed by the
// sanctioned copy idioms (Retain, Clone, slices.Clone, copy, spread
// append) and by extracting non-reference-like elements (an EdgeKey
// copied out of a loaned slice is just a value).
package loancheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"dynlocal/internal/analysis/framework"
)

// Analyzer is the loancheck framework.Analyzer.
var Analyzer = &framework.Analyzer{
	Name:     "loancheck",
	Doc:      "flags pooled //dynlint:loan values escaping their round without Retain/Clone, and writes through //dynlint:view aliases",
	Contract: "ARCHITECTURE.md buffer ownership: pooled round buffers are on loan — Retain/Clone to keep, never write through views",
	Run:      run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// checker carries the per-function taint state. Taint is computed
// flow-insensitively to a fixpoint: a local that is ever assigned a loan
// (or view) expression is treated as loaned (viewed) everywhere.
type checker struct {
	pass  *framework.Pass
	fn    *ast.FuncDecl
	loan  map[types.Object]bool // locals aliasing pooled loan storage
	view  map[types.Object]bool // locals aliasing read-only views
	dirty bool
}

func checkFunc(pass *framework.Pass, fn *ast.FuncDecl) {
	c := &checker{
		pass: pass,
		fn:   fn,
		loan: make(map[types.Object]bool),
		view: make(map[types.Object]bool),
	}
	// Parameters annotated on the function itself are loans/views inside
	// the body.
	if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
		if a := pass.Annotations.Of(obj); a != nil {
			for _, field := range fn.Type.Params.List {
				for _, name := range field.Names {
					if a.ParamIs(name.Name, framework.KindLoan) {
						c.loan[pass.TypesInfo.Defs[name]] = true
					}
					if a.ParamIs(name.Name, framework.KindView) {
						c.view[pass.TypesInfo.Defs[name]] = true
					}
				}
			}
		}
	}
	// Propagate taint through local assignments to a fixpoint.
	for {
		c.dirty = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				c.propagate(st)
			case *ast.ValueSpec:
				for i, name := range st.Names {
					if len(st.Values) == len(st.Names) && c.taints(st.Values[i], framework.KindLoan) {
						c.mark(c.pass.TypesInfo.Defs[name], c.loan)
					}
					if len(st.Values) == len(st.Names) && c.taints(st.Values[i], framework.KindView) {
						c.mark(c.pass.TypesInfo.Defs[name], c.view)
					}
				}
			}
			return true
		})
		if !c.dirty {
			break
		}
	}
	c.report()
}

func (c *checker) mark(obj types.Object, set map[types.Object]bool) {
	if obj == nil || set[obj] {
		return
	}
	set[obj] = true
	c.dirty = true
}

// propagate marks LHS locals of an assignment whose RHS carries taint.
func (c *checker) propagate(st *ast.AssignStmt) {
	if len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := c.lhsObj(id)
			if c.taints(st.Rhs[i], framework.KindLoan) {
				c.mark(obj, c.loan)
			}
			if c.taints(st.Rhs[i], framework.KindView) {
				c.mark(obj, c.view)
			}
		}
		return
	}
	// Tuple assignment from a single call: taint every LHS if the callee
	// is annotated.
	if len(st.Rhs) == 1 {
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		obj := framework.CalleeObj(c.pass.TypesInfo, call)
		for _, lhs := range st.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			lo := c.lhsObj(id)
			if c.pass.Annotations.Is(obj, framework.KindLoan) {
				c.mark(lo, c.loan)
			}
			if c.pass.Annotations.Is(obj, framework.KindView) {
				c.mark(lo, c.view)
			}
		}
	}
}

func (c *checker) lhsObj(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// taints reports whether evaluating e yields a value carrying the given
// taint kind (KindLoan or KindView).
func (c *checker) taints(e ast.Expr, kind string) bool {
	e = ast.Unparen(e)
	info := c.pass.TypesInfo
	ann := c.pass.Annotations

	// Calls are classified first: the sanctioned launderers (Retain,
	// Clone) return owned values even when their result type is itself
	// loan-annotated — Retain() yields an owned *RoundInfo.
	if call, ok := e.(*ast.CallExpr); ok {
		return c.callTaints(call, kind)
	}

	// A value of a loan-annotated named type is a loan wherever it
	// appears.
	if tv, ok := info.Types[e]; ok && ann.TypeIs(tv.Type, kind) {
		return true
	}

	switch x := e.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if kind == framework.KindLoan && c.loan[obj] {
			return true
		}
		if kind == framework.KindView && c.view[obj] {
			return true
		}
		return false
	case *ast.SelectorExpr:
		// Field annotated directly, or any selection through a tainted
		// base whose result still aliases it.
		if obj := selectedObj(info, x); obj != nil && ann.Is(obj, kind) {
			return true
		}
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal &&
			framework.RefLike(sel.Type()) && c.taints(x.X, kind) {
			return true
		}
		return false
	case *ast.SliceExpr:
		return c.taints(x.X, kind)
	case *ast.IndexExpr:
		// Extracting an element: only reference-like elements keep the
		// alias alive.
		if tv, ok := info.Types[e]; ok && !framework.RefLike(tv.Type) {
			return false
		}
		return c.taints(x.X, kind)
	case *ast.StarExpr:
		return c.taints(x.X, kind)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return c.taints(x.X, kind)
		}
		return false
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if c.taints(v, kind) {
				return true
			}
		}
		return false
	case *ast.TypeAssertExpr:
		return c.taints(x.X, kind)
	}
	return false
}

// callTaints classifies a call result: annotated callees produce taint,
// the sanctioned copy idioms sever it, and append/conversions preserve it
// structurally.
func (c *checker) callTaints(call *ast.CallExpr, kind string) bool {
	info := c.pass.TypesInfo

	// Sanctioned launderers: deep or element copies that own their
	// storage.
	switch framework.CalleeName(info, call) {
	case "Retain", "Clone":
		return false
	}
	if framework.PkgFunc(info, call, "slices", "Clone") ||
		framework.IsBuiltinCall(info, call, "copy") {
		return false
	}

	if framework.IsBuiltinCall(info, call, "append") {
		// append(loan, ...) still aliases the loan's backing array;
		// append(x, loan) stores a reference-like loan element; spread
		// append(x, loan...) copies plain elements and is clean.
		if c.taints(call.Args[0], kind) {
			return true
		}
		for _, arg := range call.Args[1:] {
			if c.taints(arg, kind) {
				if call.Ellipsis != token.NoPos {
					tv := info.Types[arg]
					if tv.Type != nil {
						if sl, ok := tv.Type.Underlying().(*types.Slice); ok && !framework.RefLike(sl.Elem()) {
							continue
						}
					}
				}
				return true
			}
		}
		return false
	}

	// Conversions preserve aliasing: T(loan) is still the loan.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return c.taints(call.Args[0], kind)
	}

	obj := framework.CalleeObj(info, call)
	if c.pass.Annotations.Is(obj, kind) {
		return true
	}
	// An unannotated call whose result type is loan-annotated still yields
	// a loan (only the launderers above sever that).
	if tv, ok := info.Types[call]; ok && tv.Type != nil && c.pass.Annotations.TypeIs(tv.Type, kind) {
		return true
	}
	// Calling a method on a tainted receiver whose result aliases it is
	// covered by annotating the method itself; unannotated calls are
	// clean.
	return false
}

// selectedObj resolves the object a selector denotes (field or method).
func selectedObj(info *types.Info, sel *ast.SelectorExpr) types.Object {
	if s, ok := info.Selections[sel]; ok {
		return s.Obj()
	}
	return info.Uses[sel.Sel]
}

// report walks the function again and emits diagnostics for loan escapes
// and view writes.
func (c *checker) report() {
	info := c.pass.TypesInfo
	var lits []*ast.FuncLit // enclosing closure stack

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, st)
			ast.Inspect(st.Body, walk)
			lits = lits[:len(lits)-1]
			return false
		case *ast.AssignStmt:
			c.checkAssign(st, lits)
		case *ast.IncDecStmt:
			c.checkViewWrite(st.X, st.Pos())
		case *ast.CallExpr:
			if framework.IsBuiltinCall(info, st, "copy") && len(st.Args) == 2 {
				if c.taints(st.Args[0], framework.KindView) {
					c.pass.Reportf(st.Pos(), "write through read-only //dynlint:view alias (copy into view)")
				}
			}
		}
		return true
	}
	ast.Inspect(c.fn.Body, walk)
}

// checkAssign reports loan escapes (stores into fields, package vars, or
// captured variables) and view element writes.
func (c *checker) checkAssign(st *ast.AssignStmt, lits []*ast.FuncLit) {
	info := c.pass.TypesInfo
	for i, lhs := range st.Lhs {
		var rhs ast.Expr
		switch {
		case len(st.Lhs) == len(st.Rhs):
			rhs = st.Rhs[i]
		case len(st.Rhs) == 1:
			rhs = st.Rhs[0]
		default:
			continue
		}
		lhs = ast.Unparen(lhs)

		// View (and loaned-slice) element writes: v[i] = x.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			c.checkViewWrite(ix, st.Pos())
			continue
		}

		loaned := c.assignTaints(st, rhs)
		if !loaned {
			continue
		}
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			c.checkFieldStore(st, l)
		case *ast.Ident:
			obj := c.lhsObj(l)
			if obj == nil || st.Tok == token.DEFINE && info.Defs[l] != nil {
				// A fresh local: aliasing locally is fine.
				continue
			}
			v, ok := obj.(*types.Var)
			if !ok {
				continue
			}
			if v.Parent() == c.pass.Pkg.Scope() {
				c.pass.Reportf(st.Pos(), "pooled //dynlint:loan value stored in package variable %s; it is reused by the engine — Retain/Clone it", v.Name())
				continue
			}
			// Captured from an enclosing scope inside a closure: the
			// closure's writes outlive the observer call.
			if len(lits) > 0 && v.Pos().IsValid() {
				lit := lits[len(lits)-1]
				if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
					c.pass.Reportf(st.Pos(), "pooled //dynlint:loan value escapes the callback into captured variable %s; it is valid only for this round — Retain/Clone it", v.Name())
				}
			}
		}
	}
}

// assignTaints reports whether rhs carries loan taint for escape checking.
func (c *checker) assignTaints(st *ast.AssignStmt, rhs ast.Expr) bool {
	if len(st.Lhs) == len(st.Rhs) || len(st.Rhs) != 1 {
		return c.taints(rhs, framework.KindLoan)
	}
	// Tuple call: tainted when the callee is loan-annotated.
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	return c.pass.Annotations.Is(framework.CalleeObj(c.pass.TypesInfo, call), framework.KindLoan)
}

// checkFieldStore reports a loan stored into a struct field, unless the
// destination field (or its owning type) is itself loan-annotated — a
// handoff that re-exports the pooled lifetime rather than hiding it.
func (c *checker) checkFieldStore(st *ast.AssignStmt, sel *ast.SelectorExpr) {
	info := c.pass.TypesInfo
	obj := selectedObj(info, sel)
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if !v.IsField() {
		// Package-qualified variable pkg.Var.
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			c.pass.Reportf(st.Pos(), "pooled //dynlint:loan value stored in package variable %s.%s; it is reused by the engine — Retain/Clone it", v.Pkg().Name(), v.Name())
		}
		return
	}
	if c.pass.Annotations.Is(v, framework.KindLoan) {
		return // loan-to-loan handoff
	}
	if tv, ok := info.Types[sel.X]; ok && c.pass.Annotations.TypeIs(tv.Type, framework.KindLoan) {
		return // field of a loan-annotated struct re-exports the lifetime
	}
	c.pass.Reportf(st.Pos(), "pooled //dynlint:loan value stored in field %s outlives its round; Retain/Clone it (or annotate the field //dynlint:loan)", v.Name())
}

// checkViewWrite reports element writes through view-annotated aliases.
func (c *checker) checkViewWrite(lhs ast.Expr, pos token.Pos) {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if c.taints(ix.X, framework.KindView) {
		c.pass.Reportf(pos, "write through read-only //dynlint:view alias; it aliases owner storage — Clone it to mutate")
	}
}
