package loancheck_test

import (
	"testing"

	"dynlocal/internal/analysis/framework/analysistest"
	"dynlocal/internal/analysis/loancheck"
)

func TestLoancheck(t *testing.T) {
	analysistest.Run(t, "../testdata/src", loancheck.Analyzer, "./loan/...", "./retain/...")
}
