package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Annotation names. The grammar (docs/linting.md) is a directive comment
//
//	//dynlint:<kind> [name ...]
//
// attached to a struct field, a type declaration, or a function
// declaration. On a field or type the name list must be empty: the
// annotation describes the field's value, or every value of the type. On
// a function an empty list annotates the results; names scope the
// annotation to the named parameters (the special name "return" selects
// the results explicitly, so parameters and results can be mixed).
const (
	KindLoan   = "loan"   // pooled/aliased value: may not outlive its round without Retain/Clone
	KindView   = "view"   // read-only alias: element writes through it are forbidden
	KindSorted = "sorted" // strictly ascending slice: producers must establish order
)

// ObjAnn is the annotation set of one declared object (struct field,
// named type, or function).
type ObjAnn struct {
	// Loan, View, Sorted apply to the object's value — for functions, to
	// all results.
	Loan, View, Sorted bool
	// Params maps a parameter name to the kinds annotating it
	// (functions only).
	Params map[string]map[string]bool
}

// ParamIs reports whether the named parameter carries kind.
func (a *ObjAnn) ParamIs(name, kind string) bool {
	if a == nil || a.Params == nil {
		return false
	}
	return a.Params[name][kind]
}

// Annotations is the whole-program //dynlint:* table, keyed by
// types.Object. Because test-augmented package variants are type-checked
// separately, the same source declaration may appear under several object
// identities; the table is populated per variant so lookups work from any
// of them.
type Annotations struct {
	objs map[types.Object]*ObjAnn
}

// NewAnnotations returns an empty table.
func NewAnnotations() *Annotations {
	return &Annotations{objs: make(map[types.Object]*ObjAnn)}
}

// Of returns the annotation set of obj, or nil.
func (t *Annotations) Of(obj types.Object) *ObjAnn {
	if obj == nil {
		return nil
	}
	return t.objs[obj]
}

// Is reports whether obj carries kind (on itself / its results).
func (t *Annotations) Is(obj types.Object, kind string) bool {
	a := t.Of(obj)
	if a == nil {
		return false
	}
	switch kind {
	case KindLoan:
		return a.Loan
	case KindView:
		return a.View
	case KindSorted:
		return a.Sorted
	}
	return false
}

// TypeIs reports whether typ's named type (through pointers) carries
// kind, so a //dynlint:loan type declaration taints every value of the
// type.
func (t *Annotations) TypeIs(typ types.Type, kind string) bool {
	for {
		switch u := typ.(type) {
		case *types.Pointer:
			typ = u.Elem()
			continue
		case *types.Named:
			return t.Is(u.Obj(), kind)
		case *types.Alias:
			typ = types.Unalias(typ)
			continue
		default:
			return false
		}
	}
}

var directiveRe = regexp.MustCompile(`^//dynlint:(\w+)(?:\s+(.*))?$`)

// parseDirectives extracts dynlint directives from a comment group.
func parseDirectives(doc ...*ast.CommentGroup) [][2]string {
	var out [][2]string
	for _, g := range doc {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			m := directiveRe.FindStringSubmatch(strings.TrimRight(c.Text, " \t"))
			if m == nil || m[1] == "ignore" {
				continue
			}
			out = append(out, [2]string{m[1], strings.TrimSpace(m[2])})
		}
	}
	return out
}

func (t *Annotations) ann(obj types.Object) *ObjAnn {
	a := t.objs[obj]
	if a == nil {
		a = &ObjAnn{}
		t.objs[obj] = a
	}
	return a
}

func (a *ObjAnn) set(kind string) {
	switch kind {
	case KindLoan:
		a.Loan = true
	case KindView:
		a.View = true
	case KindSorted:
		a.Sorted = true
	}
}

func (a *ObjAnn) setParam(name, kind string) {
	if a.Params == nil {
		a.Params = make(map[string]map[string]bool)
	}
	if a.Params[name] == nil {
		a.Params[name] = make(map[string]bool)
	}
	a.Params[name][kind] = true
}

// Scan collects the //dynlint:* directives of one type-checked package
// variant into the table. It must be called for every variant before any
// analyzer that consults the table runs.
func (t *Annotations) Scan(files []*ast.File, info *types.Info) {
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				t.scanFunc(d, info)
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					t.scanType(d, ts, info)
				}
			}
		}
	}
}

func (t *Annotations) scanType(d *ast.GenDecl, ts *ast.TypeSpec, info *types.Info) {
	obj := info.Defs[ts.Name]
	for _, dir := range parseDirectives(d.Doc, ts.Doc, ts.Comment) {
		if obj != nil && dir[1] == "" {
			t.ann(obj).set(dir[0])
		}
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		dirs := parseDirectives(field.Doc, field.Comment)
		if len(dirs) == 0 {
			continue
		}
		for _, name := range field.Names {
			fobj := info.Defs[name]
			if fobj == nil {
				continue
			}
			for _, dir := range dirs {
				t.ann(fobj).set(dir[0])
			}
		}
	}
}

func (t *Annotations) scanFunc(d *ast.FuncDecl, info *types.Info) {
	dirs := parseDirectives(d.Doc)
	if len(dirs) == 0 {
		return
	}
	obj := info.Defs[d.Name]
	if obj == nil {
		return
	}
	a := t.ann(obj)
	for _, dir := range dirs {
		if dir[1] == "" {
			a.set(dir[0])
			continue
		}
		for _, name := range strings.Fields(dir[1]) {
			if name == "return" {
				a.set(dir[0])
			} else {
				a.setParam(name, dir[0])
			}
		}
	}
}

var ignoreRe = regexp.MustCompile(`^//dynlint:ignore\s+(\S+)\s+(.+)$`)

// FilterIgnored drops diagnostics suppressed by a
//
//	//dynlint:ignore <check>[,<check>...] <reason>
//
// comment on the diagnostic's line or the line directly above it. The
// reason is mandatory — an ignore without one suppresses nothing. The
// check list may be "all".
func FilterIgnored(fset *token.FileSet, files []*ast.File, name string, diags []Diagnostic) []Diagnostic {
	// ignored[file][line] = true for lines covered by a matching ignore.
	ignored := make(map[string]map[int]bool)
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				m := ignoreRe.FindStringSubmatch(strings.TrimRight(c.Text, " \t"))
				if m == nil {
					continue
				}
				match := false
				for _, chk := range strings.Split(m[1], ",") {
					if chk == "all" || chk == name {
						match = true
					}
				}
				if !match {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := ignored[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					ignored[pos.Filename] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if ignored[pos.Filename][pos.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}
