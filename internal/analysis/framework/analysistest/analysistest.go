// Package analysistest runs a framework.Analyzer over a fixture module
// and compares its diagnostics against // want "regex" comments, in the
// style of golang.org/x/tools/go/analysis/analysistest. A want comment
// expects one diagnostic on its own line whose message matches the quoted
// regular expression; several quoted patterns on one comment expect
// several diagnostics. Every diagnostic must be wanted and every want must
// be matched, so fixtures pin both positives and negatives.
package analysistest

import (
	"regexp"
	"strconv"
	"testing"

	"dynlocal/internal/analysis/framework"
)

var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

type want struct {
	raw     string
	re      *regexp.Regexp
	matched bool
}

// Run loads patterns from the fixture module rooted at dir (with tests),
// runs the analyzer, and reports mismatches against the fixtures' want
// comments as test errors.
func Run(t *testing.T, dir string, a *framework.Analyzer, patterns ...string) {
	t.Helper()
	loader := framework.NewLoader(dir)
	prog, err := loader.Load(patterns, true)
	if err != nil {
		t.Fatalf("loading fixtures from %s: %v", dir, err)
	}
	findings, err := framework.RunAnalyzers(prog, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	// Collect want comments, once per file (a file can appear in only one
	// target variant, but be defensive about duplicates).
	wants := make(map[string]map[int][]*want)
	seen := make(map[string]bool)
	for _, pkg := range prog.Targets {
		for _, f := range pkg.Files {
			fname := prog.Fset.Position(f.Pos()).Filename
			if seen[fname] {
				continue
			}
			seen[fname] = true
			for _, g := range f.Comments {
				for _, c := range g.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, q := range quotedRe.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", fname, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", fname, pos.Line, pat, err)
						}
						if wants[fname] == nil {
							wants[fname] = make(map[int][]*want)
						}
						wants[fname][pos.Line] = append(wants[fname][pos.Line], &want{raw: pat, re: re})
					}
				}
			}
		}
	}

	for _, f := range findings {
		ok := false
		for _, w := range wants[f.Pos.Filename][f.Pos.Line] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic:\n  %s", f)
		}
	}
	for fname, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: no %s diagnostic matching %q", fname, line, a.Name, w.raw)
				}
			}
		}
	}
}
