package framework_test

import (
	"testing"

	"dynlocal/internal/analysis/framework"
)

// TestLoadNarrowPatternWithExternalTests is a regression test for the
// narrowed-pattern load: `go list -deps -test ./internal/engine/` lists
// some packages (test-only imports of the named package) exclusively as
// recompiled "p [q.test]" variants, which the loader must adopt as plain
// entries so the external-test re-type-check closure can find them.
// Before the fix this failed with a type-identity error ("*core.Concat
// does not implement engine.Algorithm").
func TestLoadNarrowPatternWithExternalTests(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the engine test closure")
	}
	l := framework.NewLoader("../../..")
	prog, err := l.Load([]string{"./internal/engine/"}, true)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var aug, xtest bool
	for _, p := range prog.Targets {
		switch p.PkgPath {
		case "dynlocal/internal/engine":
			aug = aug || p.Test
		case "dynlocal/internal/engine_test":
			xtest = true
		}
	}
	if !aug {
		t.Error("missing test-augmented engine variant in targets")
	}
	if !xtest {
		t.Error("missing external engine_test package in targets")
	}
}

// TestLoadWithoutTests checks the plain, test-free load path: only
// non-test variants become targets and no _test.go file is parsed.
func TestLoadWithoutTests(t *testing.T) {
	l := framework.NewLoader("../../..")
	prog, err := l.Load([]string{"./internal/graph/"}, false)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(prog.Targets) != 1 {
		t.Fatalf("targets = %d, want 1", len(prog.Targets))
	}
	p := prog.Targets[0]
	if p.PkgPath != "dynlocal/internal/graph" || p.Test {
		t.Fatalf("target = %s (test=%v), want plain dynlocal/internal/graph", p.PkgPath, p.Test)
	}
	for _, f := range p.Files {
		if p.TestFile(prog.Fset, f.Pos()) {
			t.Fatalf("plain load parsed a _test.go file: %s", prog.Fset.Position(f.Pos()).Filename)
		}
	}
}
