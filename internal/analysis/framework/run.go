package framework

import (
	"fmt"
	"go/token"
	"slices"
	"strings"
)

// Finding is one resolved diagnostic: an analyzer name plus a concrete
// file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional path:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// RunAnalyzers runs every analyzer over every target package of the
// program, applies //dynlint:ignore suppression, and returns the findings
// sorted by position. An analyzer error aborts the run.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range prog.Targets {
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:    a,
				Fset:        prog.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				PkgPath:     pkg.PkgPath,
				TypesInfo:   pkg.Info,
				Annotations: prog.Annotations,
				TestFile: func(pos token.Pos) bool {
					return pkg.TestFile(prog.Fset, pos)
				},
				Report: func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
			diags = FilterIgnored(prog.Fset, pkg.Files, a.Name, diags)
			for _, d := range diags {
				out = append(out, Finding{Analyzer: a.Name, Pos: prog.Fset.Position(d.Pos), Message: d.Message})
			}
		}
	}
	slices.SortFunc(out, func(a, b Finding) int {
		if c := strings.Compare(a.Pos.Filename, b.Pos.Filename); c != 0 {
			return c
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line - b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column - b.Pos.Column
		}
		return strings.Compare(a.Analyzer, b.Analyzer)
	})
	return out, nil
}
