// Package framework is a minimal, dependency-free substitute for the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer is a named check
// with a Run function, a Pass hands it one type-checked package, and
// diagnostics are (position, message) pairs. It exists because the repo
// must build from a clean checkout without network access — the real
// x/tools module cannot be assumed present — so the dynlint analyzers
// (loancheck, detcheck, sortedcheck) are written against this shim
// instead. The shapes mirror go/analysis on purpose: if x/tools becomes
// available (see the dynlint_xtools build tag in tools.go), porting an
// analyzer is a mechanical rename.
//
// Beyond the x/tools shapes, the framework adds the one thing the dynlint
// suite needs that go/analysis provides via Facts: a whole-program
// Annotations table (annotations.go) collected from //dynlint:* directive
// comments before any analyzer runs, so an analyzer inspecting package
// verify can ask about a field declared in package engine.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dynlint:ignore directives.
	Name string
	// Doc is a one-paragraph description, shown by scripts/dynlint -help.
	Doc string
	// Contract names the prose contract the analyzer enforces, appended
	// to every diagnostic so a build break points back at the rule it
	// defends (e.g. "ARCHITECTURE.md buffer-ownership").
	Contract string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package into an Analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees, including _test.go files when
	// the package was loaded with tests.
	Files []*ast.File
	// Pkg and TypesInfo are the package's type information. PkgPath is
	// the import path the package was loaded under.
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info
	// Annotations is the whole-program //dynlint:* directive table.
	Annotations *Annotations
	// TestFile reports whether the file containing pos is a _test.go
	// file (detcheck exempts those).
	TestFile func(pos token.Pos) bool
	// Report records one diagnostic.
	Report func(Diagnostic)
}

// Reportf formats and records one diagnostic, appending the analyzer's
// contract tag.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if c := p.Analyzer.Contract; c != "" {
		msg += " [contract: " + c + "]"
	}
	p.Report(Diagnostic{Pos: pos, Message: msg})
}

// IsTestFilename reports whether name is a Go test file name.
func IsTestFilename(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}
