package framework

import (
	"go/ast"
	"go/types"
)

// CalleeObj resolves the object a call expression invokes: a *types.Func
// for static calls and method calls, nil for builtins, function-typed
// variables and indirect calls.
func CalleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // qualified identifier pkg.Fn
	}
	return nil
}

// CalleeName returns the bare name of the called function or method ("" if
// unresolvable): "Clone" for g.Clone(...), "Sort" for slices.Sort(...).
func CalleeName(info *types.Info, call *ast.CallExpr) string {
	if obj := CalleeObj(info, call); obj != nil {
		return obj.Name()
	}
	// Builtins (append, copy, delete, ...) have no use entry through
	// CalleeObj for the universe scope — fall back to the syntax.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// IsBuiltinCall reports whether call invokes the named universe builtin.
func IsBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// PkgFunc reports whether call is pkg.name(...) for a package-level
// function, e.g. PkgFunc(info, call, "slices", "Clone").
func PkgFunc(info *types.Info, call *ast.CallExpr, pkg, name string) bool {
	obj := CalleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Name() == pkg
}

// RefLike reports whether values of typ can alias memory: pointers,
// slices, maps, channels, funcs, interfaces, or structs/arrays containing
// any of those. Plain value types (ints, strings, graph.EdgeKey, ...) are
// not reference-like: copying them severs any tie to pooled storage.
func RefLike(typ types.Type) bool {
	seen := make(map[types.Type]bool)
	var rec func(types.Type) bool
	rec = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		switch u := t.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
			return true
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if rec(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return rec(u.Elem())
		}
		return false
	}
	return rec(typ)
}
