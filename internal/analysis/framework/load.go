package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"slices"
	"strings"
)

// Package is one type-checked package variant.
type Package struct {
	// PkgPath is the import path the variant was loaded under. A
	// test-augmented variant shares its path with the plain variant.
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// Standard marks GOROOT packages (never analyzed, only imported).
	Standard bool
	// Test marks test-augmented and external-test (_test) variants.
	Test bool
	// testFiles holds the absolute filenames of _test.go files in this
	// variant.
	testFiles map[string]bool
}

// TestFile reports whether pos lies in a _test.go file of the package.
func (p *Package) TestFile(fset *token.FileSet, pos token.Pos) bool {
	return p.testFiles[fset.Position(pos).Filename]
}

// Program is a loaded, fully type-checked program: the analysis targets
// plus the whole-program annotation table.
type Program struct {
	Fset *token.FileSet
	// Targets are the packages analyzers run over: the test-augmented
	// variant of every matched module package (plain when it has no test
	// files), followed by external _test packages.
	Targets []*Package
	// Annotations is the program-wide //dynlint:* table, scanned from
	// every module package variant.
	Annotations *Annotations
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	// TestGoFiles are _test.go files in the package itself;
	// XTestGoFiles form the external <pkg>_test package.
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Error        *struct{ Err string }
}

// Loader loads and type-checks packages through `go list` plus go/parser
// and go/types — a dependency-free stand-in for go/packages that works
// offline. One Loader owns one token.FileSet and memoizes every package
// it checks, so stdlib dependencies are type-checked at most once per
// Loader (with function bodies skipped — only their exported shape is
// needed to analyze module code).
type Loader struct {
	// Dir is the directory go list runs in (the module root).
	Dir  string
	Fset *token.FileSet

	entries  map[string]*listPkg
	plain    map[string]*Package // memoized non-test variants by import path
	checking map[string]bool     // import cycle guard
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:      dir,
		Fset:     token.NewFileSet(),
		entries:  make(map[string]*listPkg),
		plain:    make(map[string]*Package),
		checking: make(map[string]bool),
	}
}

// goList runs `go list -e -json -deps` with the given extra arguments and
// folds the resulting package entries into the loader's table.
func (l *Loader) goList(args ...string) error {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json", "-deps"}, args...)...)
	cmd.Dir = l.Dir
	// CGO off: keeps every listed file pure Go, so go/types can check
	// everything from source.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	dec := json.NewDecoder(out)
	for {
		var e listPkg
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("go list: decoding output: %v", err)
		}
		if strings.HasSuffix(e.ImportPath, ".test") {
			continue // synthesized test-main packages
		}
		if e.ForTest != "" {
			// A recompiled test variant ("p [q.test]"). The loader builds
			// its own variants, but when a narrow pattern lists a package
			// ONLY through the test closure (e.g. a test-import of the
			// named package), this is the one entry carrying its file
			// list — adopt it as the plain entry. Only intermediate
			// variants qualify: the tested package's own variant (ForTest
			// == itself) merges _test.go files into GoFiles and must not
			// shadow the plain entry.
			ip := trimTestVariant(e.ImportPath)
			if ip == e.ForTest {
				continue
			}
			if _, ok := l.entries[ip]; !ok {
				ec := e
				ec.ImportPath = ip
				ec.Imports = trimTestVariants(ec.Imports)
				l.entries[ip] = &ec
			}
			continue
		}
		if _, ok := l.entries[e.ImportPath]; !ok {
			ec := e
			l.entries[e.ImportPath] = &ec
		}
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return nil
}

// Load lists patterns (with their full dependency and test-dependency
// closure), type-checks everything, scans annotations and returns the
// program. withTests selects test-augmented variants and external _test
// packages as targets.
func (l *Loader) Load(patterns []string, withTests bool) (*Program, error) {
	args := []string{}
	if withTests {
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	if err := l.goList(args...); err != nil {
		return nil, err
	}

	var targets []*listPkg
	for _, e := range l.entries {
		if !e.Standard && !e.DepOnly {
			if e.Error != nil {
				return nil, fmt.Errorf("go list: %s: %s", e.ImportPath, e.Error.Err)
			}
			targets = append(targets, e)
		}
	}
	// Deterministic analysis order.
	slices.SortFunc(targets, func(a, b *listPkg) int {
		return strings.Compare(a.ImportPath, b.ImportPath)
	})

	prog := &Program{Fset: l.Fset, Annotations: NewAnnotations()}
	scan := func(p *Package) {
		prog.Annotations.Scan(p.Files, p.Info)
	}

	// Plain variants of all module packages first: they are both import
	// targets and annotation sources.
	for _, e := range l.entries {
		if e.Standard {
			continue
		}
		p, err := l.Import(e.ImportPath)
		if err != nil {
			return nil, err
		}
		scan(p)
	}

	for _, e := range targets {
		tgt := l.plain[e.ImportPath]
		if withTests && len(e.TestGoFiles) > 0 {
			aug, err := l.check(e, append(append([]string{}, e.GoFiles...), e.TestGoFiles...), e.ImportPath, l.Import)
			if err != nil {
				return nil, err
			}
			aug.Test = true
			scan(aug)
			tgt = aug
		}
		prog.Targets = append(prog.Targets, tgt)
		if withTests && len(e.XTestGoFiles) > 0 {
			// The external test package sees the tested package's
			// augmented variant, so identifiers declared in its in-package
			// test files resolve. Exactly like `go test`, every module
			// package between the two is re-type-checked against the
			// augmented variant, so named types stay identical along both
			// import paths.
			rev := l.importersOf(e.ImportPath)
			cache := make(map[string]*Package)
			var impFor func(path string) (*Package, error)
			impFor = func(path string) (*Package, error) {
				if path == e.ImportPath {
					return tgt, nil
				}
				if p, ok := cache[path]; ok {
					return p, nil
				}
				if !rev[path] {
					return l.Import(path)
				}
				ee := l.entries[path]
				p, err := l.check(ee, ee.GoFiles, path, impFor)
				if err != nil {
					return nil, err
				}
				cache[path] = p
				scan(p)
				return p, nil
			}
			xt, err := l.check(e, e.XTestGoFiles, e.ImportPath+"_test", impFor)
			if err != nil {
				return nil, err
			}
			xt.Test = true
			scan(xt)
			prog.Targets = append(prog.Targets, xt)
		}
	}
	return prog, nil
}

// Import returns the memoized plain variant of path, type-checking it
// (and, recursively, its imports) on first use.
func (l *Loader) Import(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{PkgPath: path, Types: types.Unsafe, Standard: true}, nil
	}
	if p, ok := l.plain[path]; ok {
		return p, nil
	}
	e, ok := l.entries[path]
	if !ok {
		// A package outside the already-listed closure (the fixture
		// harness imports stdlib on demand): list it now.
		if err := l.goList("--", path); err != nil {
			return nil, err
		}
		if e, ok = l.entries[path]; !ok {
			return nil, fmt.Errorf("load: cannot resolve import %q", path)
		}
	}
	if l.checking[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)
	p, err := l.check(e, e.GoFiles, path, l.Import)
	if err != nil {
		return nil, err
	}
	l.plain[path] = p
	return p, nil
}

// importersOf returns the set of module import paths that transitively
// import path (through regular imports).
func (l *Loader) importersOf(path string) map[string]bool {
	rev := make(map[string][]string)
	for _, e := range l.entries {
		if e.Standard {
			continue
		}
		for _, imp := range e.Imports {
			rev[imp] = append(rev[imp], e.ImportPath)
		}
	}
	seen := make(map[string]bool)
	queue := []string{path}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, importer := range rev[p] {
			if !seen[importer] {
				seen[importer] = true
				queue = append(queue, importer)
			}
		}
	}
	return seen
}

// check parses and type-checks one package variant from the given file
// names (relative to the entry's directory). imp resolves imports,
// letting test variants redirect paths to re-checked packages.
func (l *Loader) check(e *listPkg, names []string, asPath string, imp func(string) (*Package, error)) (*Package, error) {
	if e.Error != nil {
		return nil, fmt.Errorf("load: %s: %s", e.ImportPath, e.Error.Err)
	}
	p := &Package{PkgPath: asPath, Dir: e.Dir, Standard: e.Standard, testFiles: make(map[string]bool)}
	for _, name := range names {
		fn := filepath.Join(e.Dir, name)
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %v", asPath, err)
		}
		p.Files = append(p.Files, f)
		if IsTestFilename(name) {
			p.testFiles[fn] = true
		}
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var errs []error
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			ip, err := imp(path)
			if err != nil {
				return nil, err
			}
			return ip.Types, nil
		}),
		Error: func(err error) { errs = append(errs, err) },
		Sizes: types.SizesFor("gc", runtime.GOARCH),
		// Stdlib packages are import targets only; skipping their bodies
		// keeps whole-program loading fast.
		IgnoreFuncBodies: e.Standard,
	}
	p.Types, _ = conf.Check(asPath, l.Fset, p.Files, p.Info)
	if len(errs) > 0 && !e.Standard {
		return nil, fmt.Errorf("load: %s: type errors: %v", asPath, errs[0])
	}
	return p, nil
}

// trimTestVariant strips the " [q.test]" suffix go list puts on
// recompiled test-variant import paths.
func trimTestVariant(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

func trimTestVariants(paths []string) []string {
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = trimTestVariant(p)
	}
	return out
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
