// Package analysis hosts dynlint, the repo's static-analysis suite. Three
// analyzers turn the prose contracts of ARCHITECTURE.md into build
// breaks:
//
//   - loancheck — pooled //dynlint:loan buffers may not escape their
//     round without Retain/Clone; //dynlint:view aliases are read-only;
//   - detcheck — determinism-critical packages may not depend on map
//     iteration order, math/rand, wall clocks, or select-with-default;
//   - sortedcheck — //dynlint:sorted slices must be produced and passed
//     in strictly ascending order.
//
// The analyzers run over packages loaded by the dependency-free
// framework loader (see internal/analysis/framework); scripts/dynlint is
// the command-line driver and `make lint` / CI invoke it on the whole
// tree. docs/linting.md documents the annotation grammar and the
// //dynlint:ignore escape hatch.
package analysis

import (
	"dynlocal/internal/analysis/detcheck"
	"dynlocal/internal/analysis/framework"
	"dynlocal/internal/analysis/loancheck"
	"dynlocal/internal/analysis/sortedcheck"
)

// Suite returns the dynlint analyzers in their canonical order.
func Suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		loancheck.Analyzer,
		detcheck.Analyzer,
		sortedcheck.Analyzer,
	}
}
