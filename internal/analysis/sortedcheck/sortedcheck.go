// Package sortedcheck enforces //dynlint:sorted slice contracts. Much of
// the repo's O(changes)-per-round machinery (CSR patching, delta merging,
// window feeds) relies on edge and node slices being strictly ascending;
// an unsorted input silently corrupts binary searches and linear merges.
//
// The check has a producer side and a consumer side:
//
//   - a function whose results are annotated sorted must establish order
//     on every return path: returned slices must come from a sorting call
//     (slices.Sort* / sort.*), from another sorted-annotated source, or
//     be trivially sorted (nil, empty, single element). Returning a slice
//     that was only ever built by raw appends is flagged;
//   - a call argument bound to a sorted-annotated parameter must not be a
//     provably-unsorted constant composite literal.
//
// Merge routines that maintain order structurally (DiffSortedKeys-style
// two-pointer merges) cannot be proven by this pass; they carry a
// //dynlint:ignore sortedcheck comment with the proof sketch as reason.
package sortedcheck

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"

	"dynlocal/internal/analysis/framework"
)

// Analyzer is the sortedcheck framework.Analyzer.
var Analyzer = &framework.Analyzer{
	Name:     "sortedcheck",
	Doc:      "checks that //dynlint:sorted slices are produced in (and passed in) strictly ascending order",
	Contract: "sorted-slice inputs: delta and edge-key slices must be strictly ascending",
	Run:      run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkProducer(pass, fd)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkConsumer(pass, call)
			}
			return true
		})
	}
	return nil
}

// ---- producer side ----

// checkProducer verifies each return path of a function whose results are
// annotated sorted.
func checkProducer(pass *framework.Pass, fd *ast.FuncDecl) {
	obj := pass.TypesInfo.Defs[fd.Name]
	if obj == nil || !pass.Annotations.Is(obj, framework.KindSorted) {
		return
	}
	sig := obj.Type().(*types.Signature)
	c := &producer{pass: pass, fd: fd}
	c.collectAppendOnly(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested closures have their own contracts
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, res := range ret.Results {
			if i >= sig.Results().Len() {
				break
			}
			if _, isSlice := sig.Results().At(i).Type().Underlying().(*types.Slice); !isSlice {
				continue
			}
			if !c.establishesOrder(res) {
				pass.Reportf(res.Pos(), "%s returns a //dynlint:sorted slice that is never sorted on this path; call slices.Sort before returning or build it from a sorted source", fd.Name.Name)
			}
		}
		return true
	})
}

type producer struct {
	pass *framework.Pass
	fd   *ast.FuncDecl
	// appendOnly holds locals that are only ever assigned raw appends or
	// empty/nil values — i.e. nothing in the function sorts them.
	appendOnly map[types.Object]bool
}

// collectAppendOnly finds local slice variables that accumulate via append
// and are never passed to a sorting call.
func (c *producer) collectAppendOnly(body *ast.BlockStmt) {
	c.appendOnly = make(map[types.Object]bool)
	appended := make(map[types.Object]bool)
	sorted := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = c.pass.TypesInfo.Uses[id]
				}
				if obj == nil || i >= len(s.Rhs) && len(s.Rhs) != 1 {
					continue
				}
				var rhs ast.Expr
				if i < len(s.Rhs) {
					rhs = s.Rhs[i]
				} else {
					rhs = s.Rhs[0]
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok &&
					framework.IsBuiltinCall(c.pass.TypesInfo, call, "append") {
					appended[obj] = true
				} else if rhs != nil && !trivialSortedExpr(c.pass, rhs) {
					// Assigned from something nontrivial (a call, another
					// slice): can't claim it is append-only-unsorted.
					sorted[obj] = true
				}
			}
		case *ast.CallExpr:
			if sortingCall(c.pass.TypesInfo, s) {
				for _, arg := range s.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
								sorted[obj] = true
							}
						}
						return true
					})
				}
			}
		}
		return true
	})
	for obj := range appended {
		if !sorted[obj] {
			c.appendOnly[obj] = true
		}
	}
}

// establishesOrder reports whether the returned expression is known (or
// at least not known-unsorted) to be ascending.
func (c *producer) establishesOrder(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if x.Name == "nil" {
			return true
		}
		obj := c.pass.TypesInfo.Uses[x]
		if obj == nil {
			return true
		}
		if c.appendOnly[obj] {
			return false // built by raw appends, never sorted
		}
		return true
	case *ast.CallExpr:
		if sortingCall(c.pass.TypesInfo, x) {
			return true
		}
		// A call to another sorted-annotated producer, or to append on a
		// sorted base, keeps the contract; any other call is trusted (it
		// has its own producer check if annotated).
		return true
	case *ast.CompositeLit:
		ok, _ := literalSorted(c.pass, x)
		return ok
	case *ast.SliceExpr:
		return c.establishesOrder(x.X) // a subslice of sorted is sorted
	default:
		return true
	}
}

// ---- consumer side ----

// checkConsumer flags provably-unsorted constant composite literals passed
// to //dynlint:sorted parameters.
func checkConsumer(pass *framework.Pass, call *ast.CallExpr) {
	obj := framework.CalleeObj(pass.TypesInfo, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	ann := pass.Annotations.Of(fn)
	if ann == nil || ann.Params == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Recv() == nil && len(call.Args) == params.Len()+1 {
			// method expression T.M(recv, ...): shift one.
			pi = i - 1
		}
		if pi < 0 || pi >= params.Len() {
			continue
		}
		p := params.At(pi)
		if !ann.ParamIs(p.Name(), framework.KindSorted) {
			continue
		}
		lit, ok := ast.Unparen(arg).(*ast.CompositeLit)
		if !ok {
			continue
		}
		if ok, witness := literalSorted(pass, lit); !ok {
			pass.Reportf(arg.Pos(), "unsorted literal passed to //dynlint:sorted parameter %s of %s (%s); list elements in ascending order", p.Name(), fn.Name(), witness)
		}
	}
}

// literalSorted decides whether a composite literal is strictly ascending.
// It understands integer-constant elements and struct elements whose first
// constant fields are comparable (EdgeKey{U, V} style). Non-constant
// elements make the literal unknown (treated as sorted). The witness names
// the offending adjacent pair.
func literalSorted(pass *framework.Pass, lit *ast.CompositeLit) (bool, string) {
	keys := make([][]int64, 0, len(lit.Elts))
	for _, el := range lit.Elts {
		k, ok := elemKey(pass, el)
		if !ok {
			return true, "" // non-constant element: cannot judge
		}
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		if !lessKey(keys[i-1], keys[i]) {
			return false, "element " + strconv.Itoa(i-1) + " is not below element " + strconv.Itoa(i)
		}
	}
	return true, ""
}

// elemKey extracts a comparison key from a literal element: a single
// integer, or the leading integer fields of a struct literal.
func elemKey(pass *framework.Pass, el ast.Expr) ([]int64, bool) {
	el = ast.Unparen(el)
	if inner, ok := el.(*ast.CompositeLit); ok {
		var key []int64
		for _, f := range inner.Elts {
			v := f
			if kv, ok := f.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			n, ok := constInt(pass, v)
			if !ok {
				break
			}
			key = append(key, n)
		}
		if len(key) == 0 {
			return nil, false
		}
		return key, true
	}
	if n, ok := constInt(pass, el); ok {
		return []int64{n}, true
	}
	return nil, false
}

func constInt(pass *framework.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

func lessKey(a, b []int64) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// trivialSortedExpr reports whether e is vacuously sorted: nil or a
// composite literal of at most one element. Assigning one of these does
// not launder an append-built slice into "sorted" status.
func trivialSortedExpr(pass *framework.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		return id.Name == "nil"
	}
	if lit, ok := e.(*ast.CompositeLit); ok {
		return len(lit.Elts) <= 1
	}
	return false
}

func sortingCall(info *types.Info, call *ast.CallExpr) bool {
	obj := framework.CalleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Name() {
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort") || fn.Name() == "Compact" || fn.Name() == "CompactFunc"
	case "sort":
		return true
	}
	return false
}
