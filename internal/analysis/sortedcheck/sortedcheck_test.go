package sortedcheck_test

import (
	"testing"

	"dynlocal/internal/analysis/framework/analysistest"
	"dynlocal/internal/analysis/sortedcheck"
)

func TestSortedcheck(t *testing.T) {
	analysistest.Run(t, "../testdata/src", sortedcheck.Analyzer, "./sorted/...")
}
