// Package loan exercises loancheck: escapes of pooled //dynlint:loan
// values and writes through //dynlint:view aliases.
package loan

// Round is a pooled per-round record, recycled by its owner.
//
//dynlint:loan
type Round struct {
	// Outputs is pooled storage.
	//dynlint:loan
	Outputs []int
	name    string
}

// Keeper is long-lived state that must not absorb pooled values.
type Keeper struct {
	got   []int
	round *Round
}

var global []int

// Emit returns a pooled slice valid only until the next round.
//
//dynlint:loan
func Emit() []int { return nil }

// Keys returns a read-only alias of owner storage.
//
//dynlint:view
func Keys() []int { return nil }

func escapes(k *Keeper, r *Round) {
	k.got = r.Outputs // want "stored in field"
	global = Emit()   // want "package variable"
	k.round = r       // want "stored in field"
}

func escapesCapture() func() {
	var save []int
	return func() {
		save = Emit() // want "escapes the callback"
		_ = save
	}
}

func writesView() {
	v := Keys()
	v[0] = 1          // want "read-only"
	v[0]++            // want "read-only"
	copy(v, []int{1}) // want "copy into view"
}

func clean(k *Keeper, r *Round) {
	k.got = append([]int(nil), r.Outputs...) // spread append copies value elements
	k.got = Clone(r.Outputs)                 // sanctioned launder
	local := r.Outputs                       // local alias inside the call is fine
	_ = local
	x := Emit()
	x = x[:0]
	_ = x
	sum := 0
	for _, o := range r.Outputs {
		sum += o
	}
	_ = sum
}

func suppressed(k *Keeper, r *Round) {
	//dynlint:ignore loancheck test fixture for the suppression grammar
	k.got = r.Outputs
}

// Decoder mimics a streaming-decoder iterator: every Next hands out the
// same pooled record, overwritten by the following call.
type Decoder struct {
	cur Round
}

// Next returns a loaned round valid only until the next call.
//
//dynlint:loan
func (d *Decoder) Next() *Round { return &d.cur }

func escapesIterator(k *Keeper, d *Decoder) {
	k.round = d.Next() // want "stored in field"
}

func escapesIteratorField(k *Keeper, d *Decoder) {
	r := d.Next()
	k.got = r.Outputs // want "stored in field"
}

func drainsIteratorCleanly(k *Keeper, d *Decoder) {
	sum := 0
	for i := 0; i < 3; i++ {
		r := d.Next()
		for _, o := range r.Outputs {
			sum += o // consuming within the pull is fine
		}
		k.got = append([]int(nil), r.Outputs...) // copying to retain is fine
	}
	_ = sum
}

// Clone returns an owned copy of xs.
func Clone(xs []int) []int { return append([]int(nil), xs...) }

// Saver mimics a checkpoint writer: SaveState-style methods serialize
// state handed to them, sometimes deferring the actual flush.
type Saver struct {
	pending []int
	held    *Round
}

// saveEager serializes the loaned round within the call — the
// sanctioned checkpoint-writer shape: snapshots are encoded at the
// round barrier, before the pool recycles the buffers.
func (s *Saver) saveEager(r *Round) int {
	sum := 0
	for _, o := range r.Outputs {
		sum += o
	}
	return sum
}

// saveDeferred stages pooled storage for a later flush: by flush time
// the pool has recycled the round and the checkpoint serializes some
// other round's bytes.
func (s *Saver) saveDeferred(r *Round) {
	s.pending = r.Outputs // want "stored in field"
	s.held = r            // want "stored in field"
}

// saveCopied is the fix: a writer that must stage bytes for a later
// flush owns a copy.
func (s *Saver) saveCopied(r *Round) {
	s.pending = append([]int(nil), r.Outputs...)
}

// Arena mimics ckpt.RestoreArena: a pooled bump allocator whose carved
// memory is recycled wholesale by Reset, so everything drawn from it —
// and the arena handle itself — shares one loaned lifetime.
//
//dynlint:loan
type Arena struct{ buf []int }

// Carve returns arena storage valid only until the next Reset.
//
//dynlint:loan
func (a *Arena) Carve(n int) []int { return a.buf[:n] }

// Reset recycles every previously carved slice.
func (a *Arena) Reset() { a.buf = a.buf[:0] }

// Restorer mimics ckpt.Reader: holding the attached arena is the
// sanctioned loan-to-loan handoff — the annotated field re-exports the
// pooled lifetime instead of hiding it.
type Restorer struct {
	//dynlint:loan
	arena *Arena
}

// SetArena attaches an arena; legal because the destination field is
// itself loan-annotated.
func (r *Restorer) SetArena(a *Arena) { r.arena = a }

// absorbsArena is the violation the handoff rule exists to catch: a
// long-lived holder that hides the arena (or its carvings) in plain
// fields keeps using the memory after Reset hands it to the next run.
func absorbsArena(k *Keeper, a *Arena) {
	k.got = a.Carve(4) // want "stored in field"
}

var globalArena *Arena

func escapesArenaGlobally(a *Arena) {
	globalArena = a // want "package variable"
}

// restoresThenCopies is the fix when restored state must outlive the
// arena: copy out before the owner resets.
func restoresThenCopies(k *Keeper, a *Arena) {
	k.got = append([]int(nil), a.Carve(4)...)
}
