// Package retain mirrors the engine's observer/Retain pattern
// (internal/engine/config_test.go): a pooled *Info is handed to a
// callback, Retain() launders it into an owned copy, and keeping the raw
// pointer past the callback is an escape. Deleting the .Retain() call
// below must make loancheck fail — that is the acceptance regression for
// the whole suite.
package retain

// Info is the pooled round record handed to observers.
//
//dynlint:loan
type Info struct {
	Round   int
	Outputs []int
}

// Retain returns an owned deep copy of the record, safe to keep.
func (in *Info) Retain() *Info {
	out := &Info{Round: in.Round}
	out.Outputs = append([]int(nil), in.Outputs...)
	return out
}

type sim struct {
	obs func(*Info)
}

func observerRetains() (*Info, *Info) {
	var retained *Info
	var live *Info
	s := &sim{}
	s.obs = func(in *Info) {
		retained = in.Retain() // owned: Retain severs the loan
		live = in              // want "escapes the callback"
	}
	return retained, live
}
