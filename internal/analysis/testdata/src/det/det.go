// Package det exercises detcheck. Its import path (fix/det) is listed in
// detcheck.Critical, so everything here is held to the determinism
// contract.
package det

import (
	"slices"
	"time"
)

func ordersLeak(m map[int]bool, sink func(int)) {
	for k := range m { // want "map iteration order"
		sink(k)
	}
}

func appendNeverSorted(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want "never sorted"
	}
	return keys
}

func earlyReturn(m map[int]int) int {
	for _, v := range m { // want "map iteration order"
		if v > 0 {
			return v
		}
	}
	return 0
}

func wallClock() int64 {
	return time.Now().UnixNano() // want "wall-clock"
}

func racySelect(ch chan int) int {
	select { // want "select with default"
	case v := <-ch:
		return v
	default:
		return 0
	}
}

func sortedKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func counter(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func perKey(m map[int]int, dst map[int]int, marks []bool) {
	for k, v := range m {
		dst[k] = v + 1
		if v == 0 {
			delete(dst, k)
			continue
		}
		marks[k] = true
	}
}

func suppressed(m map[int]bool, sink func(int)) {
	//dynlint:ignore detcheck fixture for the suppression grammar
	for k := range m {
		sink(k)
	}
}
