// Package sorted exercises sortedcheck's producer and consumer sides.
package sorted

import "slices"

// Edge mirrors graph.EdgeKey: compared lexicographically by (U, V).
type Edge struct{ U, V int }

// Apply consumes a strictly ascending slice.
//
//dynlint:sorted adds
func Apply(adds []int) {}

// ApplyEdges consumes strictly ascending (U, V) pairs.
//
//dynlint:sorted adds
func ApplyEdges(adds []Edge) {}

// DoubledUnsorted promises sorted results but never establishes order.
//
//dynlint:sorted
func DoubledUnsorted(xs []int) []int {
	var out []int
	for _, v := range xs {
		out = append(out, v*2)
	}
	return out // want "never sorted"
}

// DoubledSorted establishes order before returning.
//
//dynlint:sorted
func DoubledSorted(xs []int) []int {
	var out []int
	for _, v := range xs {
		out = append(out, v*2)
	}
	slices.Sort(out)
	return out
}

// Merged is a structural two-pointer merge: order is maintained by
// construction, which this pass cannot prove.
//
//dynlint:sorted
func Merged(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	//dynlint:ignore sortedcheck two-pointer merge emits ascending output by construction
	return out
}

func callers() {
	Apply([]int{3, 1, 2}) // want "unsorted literal"
	Apply([]int{1, 2, 3})
	Apply(nil)
	ApplyEdges([]Edge{{2, 1}, {1, 2}}) // want "unsorted literal"
	ApplyEdges([]Edge{{1, 2}, {2, 1}})
}
