package analysis_test

import (
	"testing"

	"dynlocal/internal/analysis"
	"dynlocal/internal/analysis/framework"
)

// TestTreeIsClean runs the full dynlint suite over the whole module —
// exactly what `go run ./scripts/dynlint ./...` does — and requires zero
// findings. This pins the annotation state of the tree: a new loan
// escape, map-range leak, or unsorted feed fails here before it fails in
// CI's lint job.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module with tests")
	}
	l := framework.NewLoader("../..")
	prog, err := l.Load([]string{"./..."}, true)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	findings, err := framework.RunAnalyzers(prog, analysis.Suite())
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
