// Package verify contains the round-by-round checkers that turn the
// paper's guarantees into machine-checked assertions:
//
//   - TDynamic verifies that an output vector is a T-dynamic solution in
//     every round (packing on G^∩T, covering on G^∪T, no ⊥ on V^∩T) —
//     the property required of the combined algorithm by Theorem 1.1(1).
//   - Partial verifies property B.1 of network-static algorithms: the
//     output is a partial solution for the current graph G_r every round.
//   - Stability verifies the locally-static properties (B.2 and
//     Theorem 1.1(2)): whenever the α-ball of a node has been static for
//     `Wait` rounds, its output must not change.
//
// TDynamic is delta-driven end to end. Its primary feed, Feed, consumes
// the engine's consolidated round-delta view (engine.RoundDelta, from
// RoundInfo.Delta) whole: the sorted topology diff goes into a delta-fed
// sliding window (dyngraph.Window.ObserveEdgeDelta) and the changed-node
// feed into the problems.Tracker violation maintainers, so a verified
// round costs O((diff+changes)·Δ) — nothing scales with n or |E_r|, no
// CSR graph is ever materialized and no edge or output scan runs.
// ObserveDeltas is the same path with the delta unpacked positionally
// (deprecated), ObserveChanged is the graph-fed variant (the window
// recovers the diff with one O(|E_r|) merge) and Observe additionally
// self-computes the output diff with an O(n) scan — the fallbacks for
// callers without one or both feeds. NewTDynamicOracle retains the
// materializing CheckFull path; all feeds are property-tested —
// including against a real engine run — to produce bit-identical
// TDynamicReports, and the oracle doubles as the benchmark baseline.
//
// Input-buffer rules follow the producers' pooling contracts: every
// slice argument (graph, diff, wake, outputs, changed) is only read
// during the call, so the engine's pooled RoundInfo buffers can be
// passed straight through.
//
// The checkers are part of the library (not the tests) so that every data
// point produced by the experiment harness (internal/experiments) is a
// verified guarantee.
package verify

import (
	"dynlocal/internal/dyngraph"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
)

// TDynamicReport summarizes one round of T-dynamic checking.
type TDynamicReport struct {
	Round             int
	CoreNodes         int
	BotCore           int                  // core nodes without output
	PackingViolations []problems.Violation // on G^∩T
	CoverViolations   []problems.Violation // on G^∪T
}

// Valid reports whether the round satisfied the T-dynamic condition.
func (r TDynamicReport) Valid() bool {
	return r.BotCore == 0 && len(r.PackingViolations) == 0 && len(r.CoverViolations) == 0
}

// TDynamic verifies T-dynamic solutions (Section 1.1 / Section 3): after
// each round r the output must satisfy the packing property on G^∩T_r and
// the covering property on G^∪T_r, with every node of V^∩T_r decided.
type TDynamic struct {
	pc     problems.PC
	window *dyngraph.Window
	oracle bool

	// Incremental state: trackers mirror the packing condition on G^∩T
	// and the covering condition on G^∪T; prevOut is last round's output
	// snapshot for diffing; coreCount/botCore mirror |V^∩T| and its
	// undecided subset.
	pt        problems.Tracker
	ct        problems.Tracker
	prevOut   []problems.Value
	diff      []graph.NodeID // scratch for Observe's self-computed diff
	coreCount int
	botCore   int

	rounds        int
	invalidRounds int
	totalPacking  int
	totalCover    int
	totalBotCore  int

	// Delta-checkpoint tracking (see checkpoint.go), enabled by the first
	// NoteCheckpoint call: which prevOut entries moved since the last
	// noted chain record. Checkers outside a chain never pay for it.
	track        bool
	outDirty     []bool
	outDirtyList []graph.NodeID
}

// NewTDynamic creates an incremental checker with window size t over n
// nodes. Violation state is maintained from window deltas and output
// diffs; reports are bit-identical to NewTDynamicOracle's.
func NewTDynamic(pc problems.PC, t, n int) *TDynamic {
	return &TDynamic{
		pc:      pc,
		window:  dyngraph.NewWindow(t, n),
		pt:      pc.P.NewTracker(n),
		ct:      pc.C.NewTracker(n),
		prevOut: make([]problems.Value, n),
	}
}

// NewTDynamicOracle creates the materializing reference checker: every
// round it rebuilds G^∩T/G^∪T and re-runs the full CheckFull scans. It is
// the oracle the incremental checker is property-tested against and the
// baseline of the verification benchmark.
func NewTDynamicOracle(pc problems.PC, t, n int) *TDynamic {
	return &TDynamic{pc: pc, window: dyngraph.NewWindow(t, n), oracle: true}
}

// Window exposes the underlying sliding window (shared, read-only use).
func (c *TDynamic) Window() *dyngraph.Window { return c.window }

// Observe ingests round r's graph, wake set and output snapshot and
// checks the T-dynamic condition. out must cover the full node universe.
//
// Observe computes the round-over-round output diff itself with an O(n)
// scan; callers driven by the engine should use Feed instead, which
// needs neither a scan nor a graph.
func (c *TDynamic) Observe(g *graph.Graph, wake []graph.NodeID, out []problems.Value) TDynamicReport {
	if c.oracle {
		return c.observeOracle(g, wake, out)
	}
	diff := c.diff[:0]
	for i := range c.prevOut {
		if out[i] != c.prevOut[i] {
			diff = append(diff, graph.NodeID(i))
		}
	}
	c.diff = diff
	return c.ObserveChanged(g, wake, out, diff)
}

// ObserveChanged is Observe with the output diff supplied by the caller:
// changed must cover every node whose entry in out differs from the out of
// the previous Observe/ObserveChanged call (all non-⊥ nodes on the first
// call) — exactly the contract of the engine's RoundInfo.Changed feed when
// the checker observes every round from round 1. Entries whose output is
// in fact unchanged, and duplicates, are tolerated and skipped. The round
// then costs one O(|E_r|) window update plus O((deltas+|changed|)·Δ)
// tracker work — no O(n) output scan.
func (c *TDynamic) ObserveChanged(g *graph.Graph, wake []graph.NodeID, out []problems.Value, changed []graph.NodeID) TDynamicReport {
	if c.oracle {
		return c.observeOracle(g, wake, out)
	}
	return c.applyRound(c.window.ObserveDelta(g, wake), out, changed)
}

// Feed is the fully delta-fed checking path and the one engine-driven
// callers should use: it ingests one round's consolidated delta view —
// exactly engine.RoundInfo.Delta() — whose topology arrives as the
// sorted edge diff against the previous round and whose output diff is
// the changed-node list, under the same tolerance as ObserveChanged. No
// graph is needed — the sliding window is maintained from the diff alone
// (dyngraph.Window.ObserveEdgeDelta) — so the round costs
// O((|adds|+|removes|+|changed|)·Δ), independent of n and |E_r|. The
// delta's slices are only read during the call, so the engine's pooled
// buffers pass straight through. A checker must stay on one topology
// feed for its lifetime: mixing Feed with Observe/ObserveChanged panics
// (the window's scan feed state is not maintained by the delta feed).
// Not available on the oracle checker, which needs full graphs.
func (c *TDynamic) Feed(d engine.RoundDelta) TDynamicReport {
	if c.oracle {
		panic("verify: Feed on the materializing oracle checker — use Observe")
	}
	return c.applyRound(c.window.ObserveEdgeDelta(d.EdgeAdds, d.EdgeRemoves, d.Wake), d.Outputs, d.Changed)
}

// ObserveDeltas is Feed with the round delta unpacked into positional
// arguments.
//
// Deprecated: use Feed with engine.RoundInfo.Delta(), which carries the
// same five fields as one value.
func (c *TDynamic) ObserveDeltas(adds, removes []graph.EdgeKey, wake []graph.NodeID, out []problems.Value, changed []graph.NodeID) TDynamicReport {
	return c.Feed(engine.RoundDelta{
		EdgeAdds: adds, EdgeRemoves: removes,
		Wake: wake, Outputs: out, Changed: changed,
	})
}

// applyRound folds one round's window delta and output diff into the
// violation trackers and assembles the report.
func (c *TDynamic) applyRound(d *dyngraph.Delta, out []problems.Value, changed []graph.NodeID) TDynamicReport {
	for _, k := range d.InterAdded {
		u, v := k.Nodes()
		c.pt.EdgeAdded(u, v)
	}
	for _, k := range d.InterRemoved {
		u, v := k.Nodes()
		c.pt.EdgeRemoved(u, v)
	}
	for _, k := range d.UnionAdded {
		u, v := k.Nodes()
		c.ct.EdgeAdded(u, v)
	}
	for _, k := range d.UnionRemoved {
		u, v := k.Nodes()
		c.ct.EdgeRemoved(u, v)
	}
	// Core arrivals are evaluated against last round's outputs first; the
	// output diff below re-evaluates any node that also changed output
	// this round, so the final state reflects the current snapshot.
	for _, v := range d.CoreEntered {
		c.coreCount++
		if c.prevOut[v] == problems.Bot {
			c.botCore++
		}
		c.pt.Activate(v)
		c.ct.Activate(v)
	}
	for _, v := range changed {
		val := out[v]
		if val == c.prevOut[v] {
			continue
		}
		c.pt.OutputChanged(v, val)
		c.ct.OutputChanged(v, val)
		if c.window.InCore(v) {
			if c.prevOut[v] == problems.Bot {
				c.botCore--
			} else if val == problems.Bot {
				c.botCore++
			}
		}
		c.prevOut[v] = val
		if c.track && !c.outDirty[v] {
			c.outDirty[v] = true
			c.outDirtyList = append(c.outDirtyList, v)
		}
	}
	rep := TDynamicReport{Round: d.Round, CoreNodes: c.coreCount, BotCore: c.botCore}
	if c.coreCount > 0 {
		rep.PackingViolations = c.pt.Violations()
		rep.CoverViolations = c.ct.Violations()
	}
	c.tally(&rep)
	return rep
}

// observeOracle is the pre-incremental checking path: materialize both
// window graphs and rescan them with CheckFull.
func (c *TDynamic) observeOracle(g *graph.Graph, wake []graph.NodeID, out []problems.Value) TDynamicReport {
	c.window.Observe(g, wake)
	rep := TDynamicReport{Round: c.window.Round()}
	core := c.window.CoreNodes()
	rep.CoreNodes = len(core)
	for _, v := range core {
		if out[v] == problems.Bot {
			rep.BotCore++
		}
	}
	if len(core) > 0 {
		inter := c.window.IntersectionGraph()
		union := c.window.UnionGraph()
		rep.PackingViolations = c.pc.P.CheckFull(inter, out, core)
		rep.CoverViolations = c.pc.C.CheckFull(union, out, core)
		// CheckFull re-reports ⊥ nodes; keep only genuine property
		// violations here, ⊥ is accounted by BotCore.
		rep.PackingViolations = dropBotReports(rep.PackingViolations, out)
		rep.CoverViolations = dropBotReports(rep.CoverViolations, out)
	}
	c.tally(&rep)
	return rep
}

func (c *TDynamic) tally(rep *TDynamicReport) {
	c.rounds++
	if !rep.Valid() {
		c.invalidRounds++
	}
	c.totalPacking += len(rep.PackingViolations)
	c.totalCover += len(rep.CoverViolations)
	c.totalBotCore += rep.BotCore
}

func dropBotReports(vs []problems.Violation, out []problems.Value) []problems.Violation {
	var kept []problems.Violation
	for _, v := range vs {
		if out[v.Node] != problems.Bot {
			kept = append(kept, v)
		}
	}
	return kept
}

// Totals reports aggregate counts over all observed rounds.
func (c *TDynamic) Totals() (rounds, invalidRounds, packing, cover, botCore int) {
	return c.rounds, c.invalidRounds, c.totalPacking, c.totalCover, c.totalBotCore
}

// PartialReport summarizes one round of partial-solution checking.
type PartialReport struct {
	Round      int
	Violations []problems.Violation
}

// Valid reports whether the output was a partial solution.
func (r PartialReport) Valid() bool { return len(r.Violations) == 0 }

// Partial verifies property B.1: the output is a partial solution for
// (P, C) in the current graph G_r at the end of every round.
type Partial struct {
	pc            problems.PC
	round         int
	rounds        int
	invalidRounds int
	total         int
}

// NewPartial creates a B.1 checker.
func NewPartial(pc problems.PC) *Partial { return &Partial{pc: pc} }

// Observe checks round r's output against the current graph.
func (c *Partial) Observe(g *graph.Graph, out []problems.Value) PartialReport {
	c.round++
	rep := PartialReport{Round: c.round}
	rep.Violations = append(rep.Violations, c.pc.P.CheckPartial(g, out)...)
	rep.Violations = append(rep.Violations, c.pc.C.CheckPartial(g, out)...)
	c.rounds++
	if !rep.Valid() {
		c.invalidRounds++
	}
	c.total += len(rep.Violations)
	return rep
}

// Totals reports aggregate counts over all observed rounds.
func (c *Partial) Totals() (rounds, invalidRounds, violations int) {
	return c.rounds, c.invalidRounds, c.total
}

// StabilityViolation reports an output change inside a frozen zone.
type StabilityViolation struct {
	Node        graph.NodeID
	Round       int // round of the offending change
	StaticSince int // first round of the current static streak of the ball
	Old, New    problems.Value
}

// Stability verifies locally-static guarantees: if the α-ball of node v
// (the induced subgraph on N^α(v), tracked via topology fingerprints) has
// been static in rounds [s, r] and r > s + Wait, the output of v must not
// change in round r. With Wait = T1 + T2 this is Theorem 1.1(2); with
// Wait = T it is property B.2 of a network-static algorithm.
//
// A node's streak also starts at its wake round (a sleeping node has no
// topology to be static with respect to).
type Stability struct {
	Alpha int
	Wait  int

	n           int
	round       int
	prevFP      []uint64
	staticSince []int // first round of current static streak; -1 before wake
	prevOut     []problems.Value
	awake       []bool
	seen        []bool // node has been processed at least once since waking

	changes    int // total output changes observed (stability metric)
	violations []StabilityViolation
}

// NewStability creates a stability checker for α-balls and the given wait.
func NewStability(n, alpha, wait int) *Stability {
	s := &Stability{Alpha: alpha, Wait: wait, n: n,
		prevFP:      make([]uint64, n),
		staticSince: make([]int, n),
		prevOut:     make([]problems.Value, n),
		awake:       make([]bool, n),
		seen:        make([]bool, n),
	}
	for i := range s.staticSince {
		s.staticSince[i] = -1
	}
	return s
}

// Observe ingests one round. wake lists newly awake nodes.
func (s *Stability) Observe(g *graph.Graph, wake []graph.NodeID, out []problems.Value) []StabilityViolation {
	s.round++
	r := s.round
	for _, v := range wake {
		if !s.awake[v] {
			s.awake[v] = true
			s.staticSince[v] = r
			s.prevFP[v] = 0
		}
	}
	var roundViolations []StabilityViolation
	for v := 0; v < s.n; v++ {
		if !s.awake[v] {
			continue
		}
		fp := graph.BallFingerprint(g, graph.NodeID(v), s.Alpha)
		firstRound := false
		if !s.seen[v] {
			// First awake round: start the streak with this topology and
			// adopt the initial output without counting it as a change.
			s.seen[v] = true
			s.prevFP[v] = fp
			firstRound = true
		} else if fp != s.prevFP[v] {
			s.prevFP[v] = fp
			s.staticSince[v] = r
		}
		if !firstRound && out[v] != s.prevOut[v] {
			s.changes++
			if r > s.staticSince[v]+s.Wait {
				viol := StabilityViolation{
					Node: graph.NodeID(v), Round: r,
					StaticSince: s.staticSince[v],
					Old:         s.prevOut[v], New: out[v],
				}
				roundViolations = append(roundViolations, viol)
				s.violations = append(s.violations, viol)
			}
		}
		s.prevOut[v] = out[v]
	}
	return roundViolations
}

// Changes returns the total number of output-change events observed, a
// stability metric used to compare Concat against the pipelined-restart
// baseline (experiment E9).
func (s *Stability) Changes() int { return s.changes }

// Violations returns all recorded stability violations.
func (s *Stability) Violations() []StabilityViolation { return s.violations }

// ConflictEdges returns the edges of g whose endpoints share a non-Bot
// output — used by experiment E2 to track conflicts caused by fresh edges.
func ConflictEdges(g *graph.Graph, out []problems.Value) []graph.EdgeKey {
	var bad []graph.EdgeKey
	g.EachEdge(func(u, v graph.NodeID) {
		if out[u] != problems.Bot && out[u] == out[v] {
			bad = append(bad, graph.MakeEdgeKey(u, v))
		}
	})
	return bad
}
