package verify_test

import (
	"fmt"

	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
	"dynlocal/internal/verify"
)

// ExampleNewTDynamic checks a fixed coloring of the 4-path under a
// transient extra edge. The conflict edge {0,2} (both endpoints colored
// 1) appears in round 4 only: it immediately enters the union graph
// G^∪T but never survives T consecutive rounds, so it never reaches the
// intersection graph G^∩T — and the packing (properness) condition is
// judged on G^∩T, so the T-dynamic guarantee holds every round. Held
// for T rounds instead, the edge enters G^∩T and the checker flags it.
func ExampleNewTDynamic() {
	const n = 4
	const T = 3
	base := graph.Path(n) // 0-1-2-3
	conflict := graph.Union(base, graph.FromEdges(n, []graph.EdgeKey{graph.MakeEdgeKey(0, 2)}))
	out := []problems.Value{1, 2, 1, 2} // proper on the path, 0 and 2 share color 1
	wake := []graph.NodeID{0, 1, 2, 3}

	check := verify.NewTDynamic(problems.Coloring(), T, n)
	rounds := []*graph.Graph{base, base, base, conflict, base, base}
	for i, g := range rounds {
		var w []graph.NodeID
		if i == 0 {
			w = wake // everyone wakes in round 1
		}
		rep := check.Observe(g, w, out)
		fmt.Printf("round %d: core=%d valid=%v\n", rep.Round, rep.CoreNodes, rep.Valid())
	}

	// Keep the conflict edge for T consecutive rounds: it enters G^∩T.
	var rep verify.TDynamicReport
	for i := 0; i < T; i++ {
		rep = check.Observe(conflict, nil, out)
	}
	fmt.Printf("after %d conflict rounds: valid=%v packing violations=%d\n",
		T, rep.Valid(), len(rep.PackingViolations))
	// Output:
	// round 1: core=0 valid=true
	// round 2: core=0 valid=true
	// round 3: core=4 valid=true
	// round 4: core=4 valid=true
	// round 5: core=4 valid=true
	// round 6: core=4 valid=true
	// after 3 conflict rounds: valid=false packing violations=1
}
