package verify

import (
	"reflect"
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/algos/coloring"
	"dynlocal/internal/algos/mis"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// TestTDynamicEngineChangedFeedMatchesOracle closes the round-delta plane
// end to end: a real engine run (combined algorithms, real wake-ups and
// pooled buffers) feeds RoundInfo.Changed into the incremental checker
// and the full RoundInfo delta plane — EdgeAdds/EdgeRemoves + Changed —
// into the graph-free delta checker, while the materializing oracle
// re-derives everything from the full output snapshot; the per-round
// TDynamicReports must be bit-identical three ways. Unlike
// TestTDynamicIncrementalMatchesOracle this exercises the engine's own
// diffs (per-worker fold, snapshot-ring baseline, wake-round ⊥ handling,
// patched/synthesized topology deltas over pooled graphs) rather than
// test-maintained ones. n is above the engine's serial threshold (512)
// and Workers is 4, so the sharded phase path and the per-worker
// changed-shard fold really run — and are raced in CI's -race job.
func TestTDynamicEngineChangedFeedMatchesOracle(t *testing.T) {
	const n = 640
	mkBase := func(seed uint64) *graph.Graph {
		return graph.GNP(n, 6.0/float64(n), prf.NewStream(seed, 0, 0, prf.PurposeWorkload))
	}
	schedules := []struct {
		name string
		mk   func(seed uint64) adversary.Adversary
	}{
		{"churn", func(seed uint64) adversary.Adversary {
			return &adversary.Churn{Base: mkBase(seed), Add: 6, Del: 6, Seed: seed + 1}
		}},
		{"edge-markov", func(seed uint64) adversary.Adversary {
			return &adversary.EdgeMarkov{Footprint: mkBase(seed), POn: 0.3, POff: 0.3, Seed: seed + 1}
		}},
		{"local-static", func(seed uint64) adversary.Adversary {
			base := mkBase(seed)
			return &adversary.LocalStatic{
				Inner:     &adversary.Churn{Base: base, Add: 8, Del: 8, Seed: seed + 1},
				Base:      base,
				Protected: []graph.NodeID{3, n / 2},
				Alpha:     2,
			}
		}},
		{"staggered-wake", func(seed uint64) adversary.Adversary {
			return &adversary.Wakeup{
				Inner:    &adversary.Churn{Base: mkBase(seed), Add: 6, Del: 6, Seed: seed + 1},
				Schedule: adversary.StaggeredSchedule(n, 8),
			}
		}},
	}
	algos := []struct {
		name string
		pc   problems.PC
		mk   func() (engine.Algorithm, int)
	}{
		{"mis", problems.MIS(), func() (engine.Algorithm, int) {
			a := mis.NewMIS(n)
			return a, a.T1
		}},
		{"coloring", problems.Coloring(), func() (engine.Algorithm, int) {
			a := coloring.NewColoring(n)
			return a, a.T1
		}},
	}
	for si, sc := range schedules {
		for ai, ac := range algos {
			t.Run(sc.name+"/"+ac.name, func(t *testing.T) {
				seed := uint64(23 + 7*si + ai)
				algo, T1 := ac.mk()
				e := engine.New(engine.Config{N: n, Seed: seed + 99, Workers: 4}, sc.mk(seed), algo)
				inc := NewTDynamic(ac.pc, T1, n)
				dlt := NewTDynamic(ac.pc, T1, n)
				orc := NewTDynamicOracle(ac.pc, T1, n)
				e.OnRound(func(info *engine.RoundInfo) {
					repInc := inc.ObserveChanged(info.Graph(), info.Wake, info.Outputs, info.Changed)
					repDlt := dlt.Feed(info.Delta())
					repOrc := orc.Observe(info.Graph(), info.Wake, info.Outputs)
					if !reflect.DeepEqual(repInc, repOrc) {
						t.Fatalf("round %d: reports diverge\nengine-feed %+v\noracle      %+v",
							info.Round, repInc, repOrc)
					}
					if !reflect.DeepEqual(repDlt, repOrc) {
						t.Fatalf("round %d: reports diverge\ndelta-feed %+v\noracle     %+v",
							info.Round, repDlt, repOrc)
					}
				})
				// Enough rounds for the slowest wake schedule (n/8 staggered
				// rounds) plus a full window fill and a post-core margin.
				e.Run(2*T1 + n/8 + 8)
			})
		}
	}
}
