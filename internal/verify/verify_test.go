package verify

import (
	"reflect"
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

func allNodes(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

func TestTDynamicAcceptsValidColoring(t *testing.T) {
	// Static P4 with a fixed proper coloring: valid every round.
	const T = 3
	g := graph.Path(4)
	out := []problems.Value{1, 2, 1, 2}
	c := NewTDynamic(problems.Coloring(), T, 4)
	for r := 1; r <= 8; r++ {
		var wake []graph.NodeID
		if r == 1 {
			wake = allNodes(4)
		}
		rep := c.Observe(g, wake, out)
		if !rep.Valid() {
			t.Fatalf("round %d flagged: %+v", r, rep)
		}
		if r < T && rep.CoreNodes != 0 {
			t.Fatalf("round %d: core before window fills: %d", r, rep.CoreNodes)
		}
		if r >= T && rep.CoreNodes != 4 {
			t.Fatalf("round %d: core = %d, want 4", r, rep.CoreNodes)
		}
	}
	rounds, invalid, packing, cover, bot := c.Totals()
	if rounds != 8 || invalid != 0 || packing != 0 || cover != 0 || bot != 0 {
		t.Fatalf("totals wrong: %d %d %d %d %d", rounds, invalid, packing, cover, bot)
	}
}

func TestTDynamicPackingOnIntersectionOnly(t *testing.T) {
	// Conflict edge present only occasionally stays out of G^∩T: no
	// packing violation; but it enters G^∪T, which matters for covering
	// (range) only, not properness.
	const T = 3
	base := graph.Path(4)
	conflictG := graph.Union(base, graph.FromEdges(4, []graph.EdgeKey{graph.MakeEdgeKey(0, 2)}))
	out := []problems.Value{1, 2, 1, 2} // 0 and 2 share color 1
	c := NewTDynamic(problems.Coloring(), T, 4)
	seq := []*graph.Graph{base, base, base, conflictG, base, base}
	for r, g := range seq {
		var wake []graph.NodeID
		if r == 0 {
			wake = allNodes(4)
		}
		rep := c.Observe(g, wake, out)
		if len(rep.PackingViolations) != 0 {
			t.Fatalf("round %d: transient edge caused packing violation: %v", r+1, rep.PackingViolations)
		}
	}
	// Now keep the conflict edge for T rounds: packing must fire.
	var lastRep TDynamicReport
	for i := 0; i < T; i++ {
		lastRep = c.Observe(conflictG, nil, out)
	}
	if len(lastRep.PackingViolations) == 0 {
		t.Fatal("persistent conflict edge not flagged on intersection graph")
	}
}

func TestTDynamicCoveringOnUnion(t *testing.T) {
	// A color too large for the union degree must be flagged even if the
	// current degree would allow... the opposite: color valid for current
	// graph but exceeding nothing. Construct: node 0 colored 2 with degree
	// 1 in every round: limit = 2 -> fine. Then isolate node 0: current
	// degree 0, but union still has the edge for T rounds -> fine; after
	// the edge expires from the union, limit = 1 -> violation.
	const T = 3
	withEdge := graph.FromEdges(2, []graph.EdgeKey{graph.MakeEdgeKey(0, 1)})
	empty := graph.Empty(2)
	out := []problems.Value{2, 1}
	c := NewTDynamic(problems.Coloring(), T, 2)
	c.Observe(withEdge, allNodes(2), out)
	c.Observe(withEdge, nil, out)
	c.Observe(withEdge, nil, out)
	rep := c.Observe(empty, nil, out) // union still has the edge
	if len(rep.CoverViolations) != 0 {
		t.Fatalf("covering flagged while edge in union: %v", rep.CoverViolations)
	}
	c.Observe(empty, nil, out)
	rep = c.Observe(empty, nil, out) // edge expired: d∪ = 0, limit 1 < 2
	if len(rep.CoverViolations) == 0 {
		t.Fatal("covering violation missed after union expiry")
	}
}

func TestTDynamicBotCoreCounted(t *testing.T) {
	const T = 2
	g := graph.Empty(3)
	out := []problems.Value{problems.Bot, 1, 1}
	c := NewTDynamic(problems.Coloring(), T, 3)
	c.Observe(g, allNodes(3), out)
	rep := c.Observe(g, nil, out)
	if rep.BotCore != 1 || rep.Valid() {
		t.Fatalf("BotCore = %d, valid = %v", rep.BotCore, rep.Valid())
	}
	// Bot nodes are not double-reported as packing/covering violations.
	if len(rep.PackingViolations) != 0 || len(rep.CoverViolations) != 0 {
		t.Fatalf("Bot double-reported: %+v", rep)
	}
}

func TestTDynamicMIS(t *testing.T) {
	const T = 2
	g := graph.Cycle(4)
	good := []problems.Value{problems.InMIS, problems.Dominated, problems.InMIS, problems.Dominated}
	c := NewTDynamic(problems.MIS(), T, 4)
	c.Observe(g, allNodes(4), good)
	rep := c.Observe(g, nil, good)
	if !rep.Valid() {
		t.Fatalf("valid MIS flagged: %+v", rep)
	}
	bad := []problems.Value{problems.InMIS, problems.InMIS, problems.Dominated, problems.Dominated}
	c2 := NewTDynamic(problems.MIS(), T, 4)
	c2.Observe(g, allNodes(4), bad)
	rep = c2.Observe(g, nil, bad)
	if len(rep.PackingViolations) == 0 {
		t.Fatal("adjacent MIS nodes not flagged")
	}
}

// advView is a minimal adversary.View for driving adversaries without the
// engine: it tracks the round, the previous graph and the awake set.
type advView struct {
	round int
	n     int
	// prev may alias a pooled resolver arena, exactly like Resolver.prev.
	//dynlint:loan
	prev  *graph.Graph
	awake []bool
}

func (v *advView) Round() int                       { return v.round }
func (v *advView) N() int                           { return v.n }
func (v *advView) PrevGraph() *graph.Graph          { return v.prev }
func (v *advView) Awake(id graph.NodeID) bool       { return v.awake[id] }
func (v *advView) DelayedOutputs() []problems.Value { return nil }

// TestTDynamicIncrementalMatchesOracle drives the incremental checker
// (both the self-diffing Observe path and the caller-supplied-diff
// ObserveChanged path) and the materializing oracle through identical
// adversarial schedules with violation-heavy random outputs (⊥ flips,
// invalid values, conflicts) and asserts the per-round TDynamicReports
// are bit-identical, including violation order and reason strings. The
// changed list handed to ObserveChanged is the raw mutation log —
// duplicates and no-op rewrites included — pinning the documented
// tolerance for over-approximate feeds.
func TestTDynamicIncrementalMatchesOracle(t *testing.T) {
	const n = 64
	const T = 5
	const rounds = 4*T + 30
	mkBase := func(seed uint64) *graph.Graph {
		return graph.GNP(n, 6.0/float64(n), prf.NewStream(seed, 0, 0, prf.PurposeWorkload))
	}
	schedules := []struct {
		name string
		mk   func(seed uint64) adversary.Adversary
	}{
		{"churn", func(seed uint64) adversary.Adversary {
			return &adversary.Churn{Base: mkBase(seed), Add: 6, Del: 6, Seed: seed + 1}
		}},
		{"edge-markov", func(seed uint64) adversary.Adversary {
			return &adversary.EdgeMarkov{Footprint: mkBase(seed), POn: 0.3, POff: 0.3, Seed: seed + 1}
		}},
		{"local-static", func(seed uint64) adversary.Adversary {
			base := mkBase(seed)
			return &adversary.LocalStatic{
				Inner:     &adversary.Churn{Base: base, Add: 8, Del: 8, Seed: seed + 1},
				Base:      base,
				Protected: []graph.NodeID{3, n / 2},
				Alpha:     2,
			}
		}},
		{"staggered-wake", func(seed uint64) adversary.Adversary {
			return &adversary.Wakeup{
				Inner:    &adversary.Churn{Base: mkBase(seed), Add: 6, Del: 6, Seed: seed + 1},
				Schedule: adversary.StaggeredSchedule(n, 4),
			}
		}},
	}
	cases := []struct {
		name string
		pc   problems.PC
		vals []problems.Value
	}{
		{"coloring", problems.Coloring(), []problems.Value{problems.Bot, 1, 2, 3, 9, -2}},
		{"mis", problems.MIS(), []problems.Value{problems.Bot, problems.InMIS, problems.Dominated, 7}},
	}
	for _, sc := range schedules {
		for ci, pcase := range cases {
			t.Run(sc.name+"/"+pcase.name, func(t *testing.T) {
				seed := uint64(17 + ci)
				adv := sc.mk(seed)
				res := adversary.NewResolver(n)
				inc := NewTDynamic(pcase.pc, T, n)
				fed := NewTDynamic(pcase.pc, T, n)
				dlt := NewTDynamic(pcase.pc, T, n)
				fdr := NewTDynamic(pcase.pc, T, n)
				orc := NewTDynamicOracle(pcase.pc, T, n)
				view := &advView{n: n, prev: graph.Empty(n), awake: make([]bool, n)}
				out := make([]problems.Value, n)
				outStream := prf.NewStream(seed+99, 0, 0, prf.PurposeWorkload)
				for r := 1; r <= rounds; r++ {
					view.round = r
					st := adv.Step(view)
					g, adds, removes := res.Resolve(&st)
					for _, v := range st.Wake {
						view.awake[v] = true
					}
					// Mutate a random batch of outputs, only on awake nodes
					// (sleeping nodes have no output to change). The mutation
					// log is the changed feed — over-approximate on purpose.
					var changed []graph.NodeID
					for i := 0; i < n/6; i++ {
						v := outStream.Intn(n)
						if view.awake[v] {
							out[v] = pcase.vals[outStream.Intn(len(pcase.vals))]
							changed = append(changed, graph.NodeID(v))
						}
					}
					repInc := inc.Observe(g, st.Wake, out)
					repFed := fed.ObserveChanged(g, st.Wake, out, changed)
					repDlt := dlt.ObserveDeltas(adds, removes, st.Wake, out, changed)
					repFdr := fdr.Feed(engine.RoundDelta{
						Round: r, EdgeAdds: adds, EdgeRemoves: removes,
						Wake: st.Wake, Outputs: out, Changed: changed,
					})
					repOrc := orc.Observe(g.Clone(), st.Wake, out)
					if !reflect.DeepEqual(repInc, repOrc) {
						t.Fatalf("round %d: reports diverge\nincremental %+v\noracle      %+v",
							r, repInc, repOrc)
					}
					if !reflect.DeepEqual(repFed, repOrc) {
						t.Fatalf("round %d: reports diverge\nchanged-feed %+v\noracle       %+v",
							r, repFed, repOrc)
					}
					if !reflect.DeepEqual(repDlt, repOrc) {
						t.Fatalf("round %d: reports diverge\ndelta-feed %+v\noracle     %+v",
							r, repDlt, repOrc)
					}
					if !reflect.DeepEqual(repFdr, repOrc) {
						t.Fatalf("round %d: reports diverge\nFeed   %+v\noracle %+v",
							r, repFdr, repOrc)
					}
					view.prev = g
				}
				ri, ii, pi, ci2, bi := inc.Totals()
				rf, ifd, pf, cf, bf := fed.Totals()
				rd, id, pd, cd, bd := dlt.Totals()
				ro, io, po, co, bo := orc.Totals()
				if ri != ro || ii != io || pi != po || ci2 != co || bi != bo {
					t.Fatalf("totals diverge: incremental (%d %d %d %d %d) oracle (%d %d %d %d %d)",
						ri, ii, pi, ci2, bi, ro, io, po, co, bo)
				}
				if rf != ro || ifd != io || pf != po || cf != co || bf != bo {
					t.Fatalf("totals diverge: changed-feed (%d %d %d %d %d) oracle (%d %d %d %d %d)",
						rf, ifd, pf, cf, bf, ro, io, po, co, bo)
				}
				if rd != ro || id != io || pd != po || cd != co || bd != bo {
					t.Fatalf("totals diverge: delta-feed (%d %d %d %d %d) oracle (%d %d %d %d %d)",
						rd, id, pd, cd, bd, ro, io, po, co, bo)
				}
				rr, ir, pr, cr, br := fdr.Totals()
				if rr != ro || ir != io || pr != po || cr != co || br != bo {
					t.Fatalf("totals diverge: Feed (%d %d %d %d %d) oracle (%d %d %d %d %d)",
						rr, ir, pr, cr, br, ro, io, po, co, bo)
				}
			})
		}
	}
}

func TestPartialChecker(t *testing.T) {
	g := graph.Path(3)
	c := NewPartial(problems.Coloring())
	rep := c.Observe(g, []problems.Value{1, problems.Bot, 1})
	if !rep.Valid() {
		t.Fatalf("valid partial flagged: %+v", rep)
	}
	rep = c.Observe(g, []problems.Value{1, 1, problems.Bot})
	if rep.Valid() {
		t.Fatal("conflicting partial accepted")
	}
	rep = c.Observe(g, []problems.Value{3, problems.Bot, problems.Bot}) // color 3 > deg+1 = 2
	if rep.Valid() {
		t.Fatal("range-violating partial accepted")
	}
	rounds, invalid, total := c.Totals()
	if rounds != 3 || invalid != 2 || total != 2 {
		t.Fatalf("totals = %d %d %d", rounds, invalid, total)
	}
}

func TestStabilityViolationDetected(t *testing.T) {
	// Static graph throughout; a node changing output after Wait rounds
	// must be flagged.
	g := graph.Path(3)
	s := NewStability(3, 2, 2)
	out := []problems.Value{1, 2, 1}
	s.Observe(g, allNodes(3), out) // round 1: streak starts
	s.Observe(g, nil, out)         // round 2
	s.Observe(g, nil, out)         // round 3 = streak(1)+Wait(2): boundary, change still allowed
	changed := []problems.Value{1, 3, 1}
	v := s.Observe(g, nil, changed) // round 4 > 1+2: violation
	if len(v) != 1 || v[0].Node != 1 || v[0].Round != 4 {
		t.Fatalf("violations = %+v", v)
	}
	if s.Changes() != 1 {
		t.Fatalf("changes = %d", s.Changes())
	}
}

func TestStabilityChangeAllowedAtBoundary(t *testing.T) {
	g := graph.Path(3)
	s := NewStability(3, 2, 2)
	out := []problems.Value{1, 2, 1}
	s.Observe(g, allNodes(3), out)
	s.Observe(g, nil, out)
	// Round 3 == staticSince(1) + Wait(2): the last allowed change.
	v := s.Observe(g, nil, []problems.Value{1, 3, 1})
	if len(v) != 0 {
		t.Fatalf("boundary change flagged: %+v", v)
	}
}

func TestStabilityStreakResetByTopologyChange(t *testing.T) {
	a := graph.Path(3)
	b := graph.Cycle(3) // changes every node's 1-ball
	s := NewStability(3, 1, 1)
	out := []problems.Value{1, 2, 3}
	s.Observe(a, allNodes(3), out) // round 1
	s.Observe(a, nil, out)         // round 2
	s.Observe(b, nil, out)         // round 3: topology change resets streaks
	// Round 4: change at streak(3)+1 = allowed boundary.
	v := s.Observe(b, nil, []problems.Value{2, 2, 3})
	if len(v) != 0 {
		t.Fatalf("change right after topology change flagged: %+v", v)
	}
	// Round 5 > 3+1: further change must be flagged.
	v = s.Observe(b, nil, []problems.Value{3, 2, 3})
	if len(v) != 1 {
		t.Fatalf("late change not flagged: %+v", v)
	}
}

func TestStabilityOutsideBallChangeDoesNotReset(t *testing.T) {
	// α = 1: edge changes at distance 2 must not reset node 0's streak.
	base := graph.Path(4) // 0-1-2-3
	mod := graph.FromEdges(4, []graph.EdgeKey{
		graph.MakeEdgeKey(0, 1), graph.MakeEdgeKey(1, 2),
	}) // remove {2,3}: outside 1-ball of node 0
	s := NewStability(4, 1, 1)
	out := []problems.Value{1, 2, 1, 2}
	s.Observe(base, allNodes(4), out) // round 1
	s.Observe(mod, nil, out)          // round 2: node 0's 1-ball unchanged
	// Round 3: node 0 changes output; streak began round 1, 3 > 1+1:
	// must be flagged (its ball was static the whole time).
	v := s.Observe(mod, nil, []problems.Value{3, 2, 1, 2})
	if len(v) != 1 || v[0].Node != 0 {
		t.Fatalf("violation for out-of-ball-stable node missed: %+v", v)
	}
}

func TestStabilityWakeStartsStreak(t *testing.T) {
	g := graph.Empty(2)
	s := NewStability(2, 1, 3)
	out := []problems.Value{problems.Bot, problems.Bot}
	s.Observe(g, []graph.NodeID{0}, out) // round 1: only node 0 awake
	s.Observe(g, nil, out)
	s.Observe(g, []graph.NodeID{1}, out) // round 3: node 1 wakes
	s.Observe(g, nil, out)
	s.Observe(g, nil, out)
	// Round 6: node 1's streak started at 3; 6 == 3+3 boundary -> allowed.
	v := s.Observe(g, nil, []problems.Value{problems.Bot, 1})
	if len(v) != 0 {
		t.Fatalf("change at wake+Wait boundary flagged: %+v", v)
	}
	// Round 7 > boundary: flagged.
	v = s.Observe(g, nil, []problems.Value{problems.Bot, 2})
	if len(v) != 1 || v[0].Node != 1 {
		t.Fatalf("late change after wake not flagged: %+v", v)
	}
}

func TestConflictEdges(t *testing.T) {
	g := graph.Path(4)
	out := []problems.Value{1, 1, problems.Bot, problems.Bot}
	ce := ConflictEdges(g, out)
	if len(ce) != 1 {
		t.Fatalf("conflict edges = %v", ce)
	}
	u, v := ce[0].Nodes()
	if u != 0 || v != 1 {
		t.Fatalf("conflict edge = {%d,%d}", u, v)
	}
	if len(ConflictEdges(g, []problems.Value{1, 2, 1, 2})) != 0 {
		t.Fatal("proper coloring reported conflicts")
	}
}
