package verify

import (
	"fmt"

	"dynlocal/internal/ckpt"
	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
)

// Checkpoint support: a TDynamic checker serializes its window, output
// snapshot and aggregate tallies; the violation trackers are NOT
// serialized — their state is a pure function of (outputs, core nodes,
// window graphs), all of which the checkpoint already carries, so
// LoadState rebuilds them by replaying Activate/OutputChanged/EdgeAdded
// against the restored window. That keeps the wire format free of
// tracker internals (flag arrays, conflict maps) and immune to their
// refactoring.

// tagTDynamic guards the checker section of a checkpoint stream.
const tagTDynamic uint64 = 0x91

// SaveState implements ckpt.Stater.
func (c *TDynamic) SaveState(w *ckpt.Writer) {
	w.Section(tagTDynamic)
	w.Bool(c.oracle)
	c.window.SaveState(w)
	w.Int(c.rounds)
	w.Int(c.invalidRounds)
	w.Int(c.totalPacking)
	w.Int(c.totalCover)
	w.Int(c.totalBotCore)
	if c.oracle {
		return
	}
	w.Int(c.coreCount)
	w.Int(c.botCore)
	for _, val := range c.prevOut {
		w.Varint(int64(val))
	}
}

// LoadState implements ckpt.Stater. It must run on a freshly constructed
// checker of the same kind (NewTDynamic or NewTDynamicOracle) with the
// same problem pair, window size and universe.
func (c *TDynamic) LoadState(r *ckpt.Reader) {
	r.Section(tagTDynamic)
	if c.rounds != 0 || c.window.Round() != 0 {
		r.Fail(fmt.Errorf("verify: LoadState requires a fresh checker, this one has observed %d rounds", c.window.Round()))
		return
	}
	oracle := r.Bool()
	if r.Err() != nil {
		return
	}
	if oracle != c.oracle {
		r.Fail(fmt.Errorf("verify: checkpoint oracle=%v, checker oracle=%v", oracle, c.oracle))
		return
	}
	c.window.LoadState(r)
	c.rounds = r.Int()
	c.invalidRounds = r.Int()
	c.totalPacking = r.Int()
	c.totalCover = r.Int()
	c.totalBotCore = r.Int()
	if r.Err() != nil {
		return
	}
	if c.rounds != c.window.Round() {
		r.Fail(fmt.Errorf("verify: checkpoint has %d checked rounds but window round %d", c.rounds, c.window.Round()))
		return
	}
	if c.oracle {
		return
	}
	c.coreCount = r.Int()
	c.botCore = r.Int()
	for i := range c.prevOut {
		c.prevOut[i] = problems.Value(r.Varint())
	}
	if r.Err() != nil {
		return
	}

	// Rebuild the violation trackers from the restored window and output
	// snapshot: outputs first (vals), then the window graphs' edges, then
	// core activation — each tracker maintains its invariant under any
	// incremental order, so the result equals the uninterrupted state.
	for i, val := range c.prevOut {
		if val != problems.Bot {
			c.pt.OutputChanged(graph.NodeID(i), val)
			c.ct.OutputChanged(graph.NodeID(i), val)
		}
	}
	for _, k := range c.window.IntersectionGraph().EdgeKeys() {
		u, v := k.Nodes()
		c.pt.EdgeAdded(u, v)
	}
	for _, k := range c.window.UnionGraph().EdgeKeys() {
		u, v := k.Nodes()
		c.ct.EdgeAdded(u, v)
	}
	core := c.window.CoreNodes()
	for _, v := range core {
		c.pt.Activate(v)
		c.ct.Activate(v)
	}
	if len(core) != c.coreCount {
		r.Fail(fmt.Errorf("verify: checkpoint core count %d, window has %d", c.coreCount, len(core)))
	}
}

var _ ckpt.Stater = (*TDynamic)(nil)
