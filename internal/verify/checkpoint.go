package verify

import (
	"fmt"
	"sort"

	"dynlocal/internal/ckpt"
	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
)

// Checkpoint support: a TDynamic checker serializes its window, output
// snapshot and aggregate tallies; the violation trackers are NOT
// serialized — their state is a pure function of (outputs, core nodes,
// window graphs), all of which the checkpoint already carries, so
// LoadState rebuilds them by replaying Activate/OutputChanged/EdgeAdded
// against the restored window. That keeps the wire format free of
// tracker internals (flag arrays, conflict maps) and immune to their
// refactoring.

// tagTDynamic guards the checker section of a checkpoint stream;
// tagTDynamicDelta guards the incremental variant used by chain records.
const (
	tagTDynamic      uint64 = 0x91
	tagTDynamicDelta uint64 = 0x92
)

// SaveState implements ckpt.Stater.
func (c *TDynamic) SaveState(w *ckpt.Writer) {
	w.Section(tagTDynamic)
	w.Bool(c.oracle)
	c.window.SaveState(w)
	w.Int(c.rounds)
	w.Int(c.invalidRounds)
	w.Int(c.totalPacking)
	w.Int(c.totalCover)
	w.Int(c.totalBotCore)
	if c.oracle {
		return
	}
	w.Int(c.coreCount)
	w.Int(c.botCore)
	for _, val := range c.prevOut {
		w.Varint(int64(val))
	}
}

// LoadState implements ckpt.Stater. It must run on a freshly constructed
// checker of the same kind (NewTDynamic or NewTDynamicOracle) with the
// same problem pair, window size and universe.
func (c *TDynamic) LoadState(r *ckpt.Reader) {
	r.Section(tagTDynamic)
	if c.rounds != 0 || c.window.Round() != 0 {
		r.Fail(fmt.Errorf("verify: LoadState requires a fresh checker, this one has observed %d rounds", c.window.Round()))
		return
	}
	oracle := r.Bool()
	if r.Err() != nil {
		return
	}
	if oracle != c.oracle {
		r.Fail(fmt.Errorf("verify: checkpoint oracle=%v, checker oracle=%v", oracle, c.oracle))
		return
	}
	c.window.LoadState(r)
	c.rounds = r.Int()
	c.invalidRounds = r.Int()
	c.totalPacking = r.Int()
	c.totalCover = r.Int()
	c.totalBotCore = r.Int()
	if r.Err() != nil {
		return
	}
	if c.rounds != c.window.Round() {
		r.Fail(fmt.Errorf("verify: checkpoint has %d checked rounds but window round %d", c.rounds, c.window.Round()))
		return
	}
	if c.oracle {
		return
	}
	c.coreCount = r.Int()
	c.botCore = r.Int()
	for i := range c.prevOut {
		c.prevOut[i] = problems.Value(r.Varint())
	}
	if r.Err() != nil {
		return
	}
	if err := c.rebuildTrackers(); err != nil {
		r.Fail(err)
	}
}

// rebuildTrackers replays the restored window and output snapshot into
// fresh violation trackers: outputs first (vals), then the window
// graphs' edges, then core activation — each tracker maintains its
// invariant under any incremental order, so the result equals the
// uninterrupted state. The trackers must be empty when this runs.
func (c *TDynamic) rebuildTrackers() error {
	for i, val := range c.prevOut {
		if val != problems.Bot {
			c.pt.OutputChanged(graph.NodeID(i), val)
			c.ct.OutputChanged(graph.NodeID(i), val)
		}
	}
	for _, k := range c.window.IntersectionGraph().EdgeKeys() {
		u, v := k.Nodes()
		c.pt.EdgeAdded(u, v)
	}
	for _, k := range c.window.UnionGraph().EdgeKeys() {
		u, v := k.Nodes()
		c.ct.EdgeAdded(u, v)
	}
	core := c.window.CoreNodes()
	for _, v := range core {
		c.pt.Activate(v)
		c.ct.Activate(v)
	}
	if len(core) != c.coreCount {
		return fmt.Errorf("verify: checkpoint core count %d, window has %d", c.coreCount, len(core))
	}
	return nil
}

// NoteCheckpoint records that a chain record capturing the checker's
// current state was durably persisted, resetting the dirty tracking so
// the next SaveDelta diffs against exactly that record. The first call
// enables tracking. Like the engine's NoteCheckpoint, it must be called
// for every persisted record — on both the write and the restore side —
// and never for a record whose write failed.
func (c *TDynamic) NoteCheckpoint() {
	c.window.NoteCheckpoint()
	if !c.track {
		c.track = true
		if !c.oracle {
			c.outDirty = make([]bool, len(c.prevOut))
		}
		return
	}
	for _, v := range c.outDirtyList {
		c.outDirty[v] = false
	}
	c.outDirtyList = c.outDirtyList[:0]
}

// SaveDelta writes the checker's state difference against the last
// record passed to NoteCheckpoint: the window delta, the aggregate
// tallies (absolute — a handful of scalars), and only the output-snapshot
// entries that moved. Violation-tracker state is never serialized, full
// or delta — FinishChain rebuilds it after the last record.
func (c *TDynamic) SaveDelta(w *ckpt.Writer) {
	w.Section(tagTDynamicDelta)
	if !c.track {
		w.Fail(fmt.Errorf("verify: SaveDelta without a noted base checkpoint"))
		return
	}
	w.Bool(c.oracle)
	c.window.SaveDelta(w)
	w.Int(c.rounds)
	w.Int(c.invalidRounds)
	w.Int(c.totalPacking)
	w.Int(c.totalCover)
	w.Int(c.totalBotCore)
	if c.oracle {
		return
	}
	w.Int(c.coreCount)
	w.Int(c.botCore)
	sort.Slice(c.outDirtyList, func(i, j int) bool { return c.outDirtyList[i] < c.outDirtyList[j] })
	w.Int(len(c.outDirtyList))
	for _, v := range c.outDirtyList {
		w.Varint(int64(v))
		w.Varint(int64(c.prevOut[v]))
	}
}

// LoadDelta applies one delta record to a checker positioned at the
// record's parent state (base LoadState + NoteCheckpoint, then every
// earlier delta). The violation trackers are NOT maintained during chain
// application — call FinishChain once after the final record.
func (c *TDynamic) LoadDelta(r *ckpt.Reader) {
	r.Section(tagTDynamicDelta)
	if !c.track {
		r.Fail(fmt.Errorf("verify: LoadDelta without a restored base checkpoint"))
		return
	}
	oracle := r.Bool()
	if r.Err() != nil {
		return
	}
	if oracle != c.oracle {
		r.Fail(fmt.Errorf("verify: delta oracle=%v, checker oracle=%v", oracle, c.oracle))
		return
	}
	c.window.LoadDelta(r)
	rounds := r.Int()
	invalidRounds := r.Int()
	totalPacking := r.Int()
	totalCover := r.Int()
	totalBotCore := r.Int()
	if r.Err() != nil {
		return
	}
	if rounds != c.window.Round() {
		r.Fail(fmt.Errorf("verify: delta has %d checked rounds but window round %d", rounds, c.window.Round()))
		return
	}
	c.rounds = rounds
	c.invalidRounds = invalidRounds
	c.totalPacking = totalPacking
	c.totalCover = totalCover
	c.totalBotCore = totalBotCore
	if c.oracle {
		return
	}
	c.coreCount = r.Int()
	c.botCore = r.Int()
	n := r.Count(len(c.prevOut))
	if r.Err() != nil {
		return
	}
	last := int64(-1)
	for i := 0; i < n; i++ {
		v := r.Varint()
		val := problems.Value(r.Varint())
		if r.Err() != nil {
			return
		}
		if v <= last || v >= int64(len(c.prevOut)) {
			r.Fail(fmt.Errorf("verify: delta output entry %d out of order or range", v))
			return
		}
		last = v
		c.prevOut[v] = val
	}
}

// FinishChain completes a chain restore: deltas update the window and
// output snapshot but not the violation trackers (their state is a pure
// function of the restored data), so after the final record the trackers
// are recreated and rebuilt from scratch. Call it exactly once, after
// the last record has been applied; the restored checker then both
// verifies further rounds and keeps appending deltas to the same chain.
func (c *TDynamic) FinishChain() error {
	if c.oracle {
		return nil
	}
	n := c.window.N()
	c.pt = c.pc.P.NewTracker(n)
	c.ct = c.pc.C.NewTracker(n)
	return c.rebuildTrackers()
}

var _ ckpt.Stater = (*TDynamic)(nil)
