package verify

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/algos/mis"
	"dynlocal/internal/ckpt"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// TestTDynamicCheckpointRoundTrip composes engine and checker state in
// one checkpoint stream — exactly the workflow cmd/dynsim and the
// fault-injection harness use — and requires the resumed pair to emit
// bit-identical TDynamicReports and Totals for the remaining rounds.
// The checker's violation trackers are rebuilt, not serialized, so this
// pins the rebuild-from-window equivalence.
func TestTDynamicCheckpointRoundTrip(t *testing.T) {
	const n = 256
	const rounds = 40
	mkAdv := func() adversary.Adversary {
		base := graph.GNP(n, 6.0/float64(n), prf.NewStream(31, 0, 0, prf.PurposeWorkload))
		return &adversary.Churn{Base: base, Add: 8, Del: 8, Seed: 77}
	}
	for _, k := range []int{3, 17, rounds / 2} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			algo := mis.NewMIS(n)
			T1 := algo.T1
			cfg := engine.Config{N: n, Seed: 5, Workers: 2}

			// Reference: uninterrupted run, checkpoint composed at round k.
			e := engine.New(cfg, mkAdv(), algo)
			chk := NewTDynamic(problems.MIS(), T1, n)
			var refReports []TDynamicReport
			var ck []byte
			e.OnRound(func(info *engine.RoundInfo) {
				rep := chk.Feed(info.Delta())
				if info.Round > k {
					refReports = append(refReports, deepCopyReport(rep))
				}
			})
			for r := 1; r <= rounds; r++ {
				e.Step()
				if r == k {
					var buf bytes.Buffer
					w := ckpt.NewWriter(&buf)
					e.CheckpointTo(w)
					chk.SaveState(w)
					if err := w.Close(); err != nil {
						t.Fatalf("checkpoint: %v", err)
					}
					ck = buf.Bytes()
				}
			}

			// Resumed: fresh engine + checker restored from the stream,
			// with a different worker count.
			cfg.Workers = 4
			algo2 := mis.NewMIS(n)
			e2 := engine.New(cfg, mkAdv(), algo2)
			chk2 := NewTDynamic(problems.MIS(), T1, n)
			r := ckpt.NewReader(bytes.NewReader(ck))
			e2.RestoreFrom(r)
			chk2.LoadState(r)
			if err := r.Err(); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if err := r.Close(); err != nil {
				t.Fatalf("restore close: %v", err)
			}
			var resReports []TDynamicReport
			e2.OnRound(func(info *engine.RoundInfo) {
				resReports = append(resReports, deepCopyReport(chk2.Feed(info.Delta())))
			})
			for e2.Round() < rounds {
				e2.Step()
			}

			if len(resReports) != len(refReports) {
				t.Fatalf("resumed %d reports, want %d", len(resReports), len(refReports))
			}
			for i := range refReports {
				if !reflect.DeepEqual(refReports[i], resReports[i]) {
					t.Fatalf("round %d: reports diverge\nref %+v\nres %+v",
						k+1+i, refReports[i], resReports[i])
				}
			}
			assertTotalsEqual(t, chk, chk2)
		})
	}
}

// TestTDynamicOracleCheckpointRoundTrip covers the oracle checker, whose
// checkpoint carries only window and tallies.
func TestTDynamicOracleCheckpointRoundTrip(t *testing.T) {
	const n = 96
	const rounds = 24
	const k = 9
	mkAdv := func() adversary.Adversary {
		base := graph.GNP(n, 5.0/float64(n), prf.NewStream(13, 0, 0, prf.PurposeWorkload))
		return &adversary.Churn{Base: base, Add: 4, Del: 4, Seed: 3}
	}
	algo := mis.NewMIS(n)
	cfg := engine.Config{N: n, Seed: 9, Workers: 1}
	e := engine.New(cfg, mkAdv(), algo)
	chk := NewTDynamicOracle(problems.MIS(), algo.T1, n)
	var refReports []TDynamicReport
	var ck []byte
	e.OnRound(func(info *engine.RoundInfo) {
		rep := chk.Observe(info.Graph(), info.Wake, info.Outputs)
		if info.Round > k {
			refReports = append(refReports, deepCopyReport(rep))
		}
	})
	for r := 1; r <= rounds; r++ {
		e.Step()
		if r == k {
			var buf bytes.Buffer
			w := ckpt.NewWriter(&buf)
			e.CheckpointTo(w)
			chk.SaveState(w)
			if err := w.Close(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			ck = buf.Bytes()
		}
	}

	algo2 := mis.NewMIS(n)
	e2 := engine.New(cfg, mkAdv(), algo2)
	chk2 := NewTDynamicOracle(problems.MIS(), algo2.T1, n)
	r := ckpt.NewReader(bytes.NewReader(ck))
	e2.RestoreFrom(r)
	chk2.LoadState(r)
	if err := r.Err(); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("restore close: %v", err)
	}
	i := 0
	e2.OnRound(func(info *engine.RoundInfo) {
		rep := deepCopyReport(chk2.Observe(info.Graph(), info.Wake, info.Outputs))
		if !reflect.DeepEqual(refReports[i], rep) {
			t.Fatalf("round %d: reports diverge\nref %+v\nres %+v", info.Round, refReports[i], rep)
		}
		i++
	})
	for e2.Round() < rounds {
		e2.Step()
	}
	assertTotalsEqual(t, chk, chk2)
}

// TestTDynamicLoadStateRejects pins checker restore validation: kind and
// geometry mismatches and torn streams error out.
func TestTDynamicLoadStateRejects(t *testing.T) {
	const n = 48
	algo := mis.NewMIS(n)
	e := engine.New(engine.Config{N: n, Seed: 2, Workers: 1}, &adversary.Churn{
		Base: graph.GNP(n, 5.0/float64(n), prf.NewStream(3, 0, 0, prf.PurposeWorkload)),
		Add:  3, Del: 3, Seed: 8,
	}, algo)
	chk := NewTDynamic(problems.MIS(), algo.T1, n)
	e.OnRound(func(info *engine.RoundInfo) { chk.Feed(info.Delta()) })
	e.Run(8)
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	chk.SaveState(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ck := buf.Bytes()

	load := func(dst *TDynamic, b []byte) error {
		r := ckpt.NewReader(bytes.NewReader(b))
		dst.LoadState(r)
		if err := r.Err(); err != nil {
			return err
		}
		return r.Close()
	}
	if err := load(NewTDynamicOracle(problems.MIS(), algo.T1, n), ck); err == nil {
		t.Fatal("restore of incremental checkpoint into oracle checker succeeded")
	}
	if err := load(NewTDynamic(problems.MIS(), algo.T1+1, n), ck); err == nil {
		t.Fatal("restore into different window size succeeded")
	}
	used := NewTDynamic(problems.MIS(), algo.T1, n)
	used.Feed(engine.RoundDelta{Round: 1})
	if err := load(used, ck); err == nil {
		t.Fatal("restore into used checker succeeded")
	}
	for cut := 0; cut < len(ck); cut += 19 {
		if err := load(NewTDynamic(problems.MIS(), algo.T1, n), ck[:cut]); err == nil {
			t.Fatalf("restore of %d-byte prefix succeeded", cut)
		}
	}
}

func deepCopyReport(r TDynamicReport) TDynamicReport {
	r.PackingViolations = append([]problems.Violation(nil), r.PackingViolations...)
	r.CoverViolations = append([]problems.Violation(nil), r.CoverViolations...)
	return r
}

func assertTotalsEqual(t *testing.T, a, b *TDynamic) {
	t.Helper()
	ar, ai, ap, ac, ab := a.Totals()
	br, bi, bp, bc, bb := b.Totals()
	if ar != br || ai != bi || ap != bp || ac != bc || ab != bb {
		t.Fatalf("totals diverge: (%d %d %d %d %d) vs (%d %d %d %d %d)",
			ar, ai, ap, ac, ab, br, bi, bp, bc, bb)
	}
}
