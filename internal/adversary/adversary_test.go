package adversary

import (
	"slices"
	"testing"

	"dynlocal/internal/dyngraph"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// fakeView is a scriptable View for adversary unit tests. Its play helper
// resolves delta-native steps through a Resolver, so tests can assert on
// materialized graphs regardless of which step kind an adversary emits.
// Resolved graphs are pooled (valid for the current and next play); tests
// that retain one longer Clone it.
type fakeView struct {
	round int
	n     int
	// prev may alias a pooled resolver arena, exactly like Resolver.prev.
	//dynlint:loan
	prev    *graph.Graph
	awake   []bool
	delayed []problems.Value
	res     *Resolver
}

func (f *fakeView) Round() int              { return f.round }
func (f *fakeView) N() int                  { return f.n }
func (f *fakeView) PrevGraph() *graph.Graph { return f.prev }
func (f *fakeView) Awake(v graph.NodeID) bool {
	if f.awake == nil {
		return true
	}
	return f.awake[v]
}
func (f *fakeView) DelayedOutputs() []problems.Value { return f.delayed }

func newFakeView(n int) *fakeView {
	return &fakeView{round: 0, n: n, prev: graph.Empty(n), res: NewResolver(n)}
}

// play advances the adversary one round and returns the step with its
// graph materialized (delta steps are folded through the resolver).
func (f *fakeView) play(a Adversary) Step {
	f.round++
	st := a.Step(f)
	g, _, _ := f.res.Resolve(&st)
	st.G = g
	f.prev = g
	return st
}

func TestStaticAdversary(t *testing.T) {
	g := graph.Cycle(5)
	adv := Static{G: g}
	v := newFakeView(5)
	st := v.play(adv)
	if len(st.Wake) != 5 {
		t.Fatalf("round 1 wake = %v", st.Wake)
	}
	if !st.G.Equal(g) {
		t.Fatal("round 1 graph differs")
	}
	st = v.play(adv)
	if len(st.Wake) != 0 || !st.G.Equal(g) {
		t.Fatal("round 2 step wrong")
	}
}

func TestAlternator(t *testing.T) {
	a, b := graph.Path(4), graph.Cycle(4)
	adv := Alternator{A: a, B: b, Period: 2}
	v := newFakeView(4)
	want := []*graph.Graph{a, a, b, b, a, a, b}
	for i, wg := range want {
		st := v.play(adv)
		if !st.G.Equal(wg) {
			t.Fatalf("round %d: wrong phase graph", i+1)
		}
	}
	// Period 0 behaves as 1.
	adv0 := Alternator{A: a, B: b}
	v0 := newFakeView(4)
	if st := v0.play(adv0); !st.G.Equal(a) {
		t.Fatal("period-0 round 1 should play A")
	}
	if st := v0.play(adv0); !st.G.Equal(b) {
		t.Fatal("period-0 round 2 should play B")
	}
}

func TestScriptedReplaysTrace(t *testing.T) {
	const n = 10
	s := prf.NewStream(3, 0, 0, prf.PurposeWorkload)
	tr := dyngraph.NewTrace(n)
	var prev *graph.Graph
	var graphs []*graph.Graph
	for r := 1; r <= 5; r++ {
		g := graph.GNP(n, 0.3, s)
		var wake []graph.NodeID
		if r == 1 {
			wake = AllNodes(n)
		}
		tr.Append(prev, g, wake)
		graphs = append(graphs, g)
		prev = g
	}
	adv := NewScripted(tr)
	v := newFakeView(n)
	for r := 1; r <= 5; r++ {
		st := v.play(adv)
		if !st.G.Equal(graphs[r-1]) {
			t.Fatalf("round %d replay mismatch", r)
		}
	}
	// Past the end: keeps playing the last graph.
	st := v.play(adv)
	if !st.G.Equal(graphs[4]) {
		t.Fatal("post-trace round should repeat last graph")
	}
}

func TestChurnMaintainsEdgeBudget(t *testing.T) {
	base := graph.GNP(40, 0.2, prf.NewStream(1, 0, 0, prf.PurposeWorkload))
	adv := &Churn{Base: base, Add: 3, Del: 3, Seed: 42}
	v := newFakeView(40)
	st := v.play(adv)
	if st.G.M() != base.M() {
		t.Fatalf("round 1 should play the base graph: %d vs %d", st.G.M(), base.M())
	}
	prevEdges := st.G.M()
	for r := 2; r <= 20; r++ {
		st = v.play(adv)
		diff := st.G.M() - prevEdges
		// Del removes up to 3, Add inserts up to 3 (collisions allowed).
		if diff < -3 || diff > 3 {
			t.Fatalf("round %d: edge count jumped by %d", r, diff)
		}
		prevEdges = st.G.M()
	}
}

func TestChurnActuallyChurns(t *testing.T) {
	base := graph.GNP(30, 0.2, prf.NewStream(2, 0, 0, prf.PurposeWorkload))
	adv := &Churn{Base: base, Add: 5, Del: 5, Seed: 7}
	v := newFakeView(30)
	first := v.play(adv).G.Clone() // retained past the resolver's pooling window
	tenth := first
	for r := 2; r <= 10; r++ {
		tenth = v.play(adv).G
	}
	if first.Equal(tenth) {
		t.Fatal("graph did not change after 9 churn rounds")
	}
}

func TestEdgeMarkovConfinedToFootprint(t *testing.T) {
	foot := graph.Cycle(12)
	adv := &EdgeMarkov{Footprint: foot, POn: 0.5, POff: 0.5, Seed: 9}
	v := newFakeView(12)
	for r := 1; r <= 25; r++ {
		st := v.play(adv)
		st.G.EachEdge(func(x, y graph.NodeID) {
			if !foot.HasEdge(x, y) {
				t.Fatalf("round %d: edge {%d,%d} outside footprint", r, x, y)
			}
		})
	}
}

func TestEdgeMarkovFlips(t *testing.T) {
	foot := graph.Complete(8)
	adv := &EdgeMarkov{Footprint: foot, POn: 0.3, POff: 0.3, Seed: 11}
	v := newFakeView(8)
	g1 := v.play(adv).G
	if g1.M() != foot.M() {
		t.Fatal("round 1 should start with footprint on")
	}
	g2 := v.play(adv).G
	if g1.Equal(g2) {
		t.Fatal("no flips at p=0.3 over 28 edges (astronomically unlikely)")
	}
}

func TestLocalStaticFreezesBall(t *testing.T) {
	s := prf.NewStream(5, 0, 0, prf.PurposeWorkload)
	base := graph.GNP(40, 0.15, s)
	const protectedNode = 7
	const alpha = 2
	adv := &LocalStatic{
		Inner:     &Churn{Base: base, Add: 8, Del: 8, Seed: 13},
		Base:      base,
		Protected: []graph.NodeID{protectedNode},
		Alpha:     alpha,
	}
	v := newFakeView(40)
	first := v.play(adv).G
	if !graph.BallStatic(base, first, protectedNode, alpha) {
		t.Fatal("round 1 ball differs from base")
	}
	changedElsewhere := false
	prev := first
	for r := 2; r <= 30; r++ {
		g := v.play(adv).G
		if !graph.BallStatic(prev, g, protectedNode, alpha) {
			t.Fatalf("round %d: protected %d-ball changed", r, alpha)
		}
		if !g.Equal(prev) {
			changedElsewhere = true
		}
		prev = g
	}
	if !changedElsewhere {
		t.Fatal("inner churn had no effect at all (freeze too broad?)")
	}
}

func TestLocalStaticWakesFrozenZoneFirst(t *testing.T) {
	base := graph.Path(6)
	adv := &LocalStatic{
		Inner:     Static{G: base},
		Base:      base,
		Protected: []graph.NodeID{0},
		Alpha:     1,
	}
	v := newFakeView(6)
	st := v.play(adv)
	wakeSet := make(map[graph.NodeID]bool)
	for _, w := range st.Wake {
		wakeSet[w] = true
	}
	if !wakeSet[0] || !wakeSet[1] {
		t.Fatalf("frozen zone not woken in round 1: %v", st.Wake)
	}
}

func TestConflictInjectorTargetsEqualOutputs(t *testing.T) {
	base := graph.Empty(6)
	adv := &ConflictInjector{Inner: Static{G: base}, Rate: 4, MinRound: 2, Seed: 3}
	v := newFakeView(6)
	v.play(adv) // round 1: no delayed outputs yet
	// Outputs: nodes 0,1,2 share color 5; nodes 3,4 share color 9.
	v.delayed = []problems.Value{5, 5, 5, 9, 9, problems.Bot}
	st := v.play(adv)
	if st.G.M() == 0 {
		t.Fatal("no conflict edges injected")
	}
	st.G.EachEdge(func(x, y graph.NodeID) {
		if v.delayed[x] != v.delayed[y] || v.delayed[x] == problems.Bot {
			t.Fatalf("injected edge {%d,%d} between different outputs", x, y)
		}
	})
	if len(adv.Injections) != st.G.M() {
		t.Fatalf("injection log has %d entries for %d edges", len(adv.Injections), st.G.M())
	}
	// Injected edges persist.
	prevM := st.G.M()
	v.delayed = []problems.Value{1, 2, 3, 4, 6, 7} // no duplicates now
	st = v.play(adv)
	if st.G.M() != prevM {
		t.Fatalf("injected edges did not persist: %d -> %d", prevM, st.G.M())
	}
}

// TestConflictInjectorDeterministic pins the fix for a real same-seed
// nondeterminism bug: candidate groups used to be collected by ranging
// over a map, so the PRF draws indexed a differently-ordered slice on
// every run. Two fresh injectors with the same seed and view sequence
// must log identical injections. Several duplicate-output groups per
// round keep the (now sorted) candidate ordering load-bearing.
func TestConflictInjectorDeterministic(t *testing.T) {
	run := func() []Injection {
		adv := &ConflictInjector{Inner: Static{G: graph.Empty(12)}, Rate: 6, MinRound: 1, Seed: 11}
		v := newFakeView(12)
		for r := 0; r < 4; r++ {
			v.delayed = []problems.Value{5, 5, 5, 9, 9, 9, 2, 2, 7, 7, 7, problems.Bot}
			if r%2 == 1 {
				v.delayed = []problems.Value{1, 1, 4, 4, 4, 4, 8, 8, 8, 3, 3, 3}
			}
			v.play(adv)
		}
		return adv.Injections
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no injections logged; test exercises nothing")
	}
	if !slices.Equal(a, b) {
		t.Fatalf("same-seed runs diverged:\n  %v\nvs\n  %v", a, b)
	}
}

func TestConflictInjectorSkipsSleepingNodes(t *testing.T) {
	base := graph.Empty(4)
	adv := &ConflictInjector{Inner: Static{G: base}, Rate: 8, MinRound: 1, Seed: 5}
	v := newFakeView(4)
	v.awake = []bool{true, false, true, false}
	v.delayed = []problems.Value{5, 5, 5, 5}
	st := v.play(adv)
	st.G.EachEdge(func(x, y graph.NodeID) {
		if !v.awake[x] || !v.awake[y] {
			t.Fatalf("edge {%d,%d} touches sleeping node", x, y)
		}
	})
}

func TestWakeupSchedule(t *testing.T) {
	inner := Static{G: graph.Complete(6)}
	sched := StaggeredSchedule(6, 2) // wake {0,1} r1, {2,3} r2, {4,5} r3
	adv := &Wakeup{Inner: inner, Schedule: sched}
	v := newFakeView(6)
	st := v.play(adv)
	if len(st.Wake) != 2 || st.Wake[0] != 0 || st.Wake[1] != 1 {
		t.Fatalf("round 1 wake = %v", st.Wake)
	}
	if st.G.M() != 1 { // only {0,1} possible
		t.Fatalf("round 1 edges = %d, want 1", st.G.M())
	}
	st = v.play(adv)
	if st.G.M() != 6 { // K4 among {0,1,2,3}
		t.Fatalf("round 2 edges = %d, want 6", st.G.M())
	}
	st = v.play(adv)
	if st.G.M() != 15 { // K6
		t.Fatalf("round 3 edges = %d, want 15", st.G.M())
	}
}

func TestUniformRandomScheduleBounds(t *testing.T) {
	sched := UniformRandomSchedule(100, 7, 3)
	for v, r := range sched {
		if r < 1 || r > 7 {
			t.Fatalf("node %d scheduled at %d", v, r)
		}
	}
	// Not all in the same round (overwhelmingly likely).
	same := true
	for _, r := range sched[1:] {
		if r != sched[0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("all nodes scheduled in one round")
	}
}

func TestLubyStallerDeletesWinnerEdges(t *testing.T) {
	const seed = 99
	base := graph.Complete(6)
	adv := &LubyStaller{Base: base, Seed: seed, Purpose: prf.PurposeLubyAlpha}
	v := newFakeView(6)
	st := v.play(adv)
	// Round 1: all nodes undecided. The α-minimum over all nodes is a
	// winner; in K6 the fixpoint deletes edges until no undecided node
	// has an undecided neighbor over which it is minimal. In a clique the
	// global minimum is the only winner each iteration, so iterations
	// peel minima one by one: all edges end up deleted.
	if st.G.M() != 0 {
		t.Fatalf("round 1 on K6: %d edges survive, want 0 (cascading minima)", st.G.M())
	}
	if adv.Deleted != base.M() {
		t.Fatalf("Deleted = %d, want %d", adv.Deleted, base.M())
	}
}

func TestLubyStallerLeavesDecidedAlone(t *testing.T) {
	base := graph.Path(4)
	adv := &LubyStaller{Base: base, Seed: 1, Purpose: prf.PurposeLubyAlpha}
	v := newFakeView(4)
	// All nodes decided: no undecided-undecided edges, nothing to delete.
	v.round = 1
	v.delayed = []problems.Value{problems.InMIS, problems.Dominated, problems.InMIS, problems.Dominated}
	st := adv.Step(v)
	if st.G.M() != base.M() {
		t.Fatalf("edges deleted despite all nodes decided: %d vs %d", st.G.M(), base.M())
	}
}

func TestAllNodes(t *testing.T) {
	all := AllNodes(4)
	if len(all) != 4 || all[0] != 0 || all[3] != 3 {
		t.Fatalf("AllNodes = %v", all)
	}
}

// TestDeltaStepsAreExactDiffs drives every delta-capable adversary (plus
// wrappers over delta-native inners) and checks the Step contract: emitted
// diffs are strictly ascending, adds are absent from and removes present
// in the previous topology, and folding them reproduces exactly the
// resolved graph sequence.
func TestDeltaStepsAreExactDiffs(t *testing.T) {
	const n = 28
	mkBase := func(seed uint64) *graph.Graph {
		return graph.GNP(n, 0.2, prf.NewStream(seed, 0, 0, prf.PurposeWorkload))
	}
	advs := map[string]func() Adversary{
		"churn": func() Adversary {
			return &Churn{Base: mkBase(1), Add: 4, Del: 4, Seed: 5}
		},
		"edge-markov": func() Adversary {
			return &EdgeMarkov{Footprint: mkBase(2), POn: 0.3, POff: 0.3, Seed: 6}
		},
		"local-static": func() Adversary {
			base := mkBase(3)
			return &LocalStatic{
				Inner:     &Churn{Base: base, Add: 6, Del: 6, Seed: 7},
				Base:      base,
				Protected: []graph.NodeID{2, 20},
				Alpha:     2,
			}
		},
		"local-static-over-materialized": func() Adversary {
			base := mkBase(4)
			return &LocalStatic{
				Inner:     &LubyStaller{Base: base, Seed: 8, Purpose: prf.PurposeLubyAlpha},
				Base:      base,
				Protected: []graph.NodeID{1},
				Alpha:     1,
			}
		},
		"scripted": func() Adversary {
			tr := dyngraph.NewTrace(n)
			s := prf.NewStream(9, 0, 0, prf.PurposeWorkload)
			var prev *graph.Graph
			for r := 1; r <= 6; r++ {
				g := graph.GNP(n, 0.2, s)
				var wake []graph.NodeID
				if r == 1 {
					wake = AllNodes(n)
				}
				tr.Append(prev, g, wake)
				prev = g
			}
			return NewScripted(tr)
		},
	}
	for name, mk := range advs {
		t.Run(name, func(t *testing.T) {
			adv := mk()
			v := newFakeView(n)
			present := make(map[graph.EdgeKey]bool)
			sawDeltaStep := false
			for r := 1; r <= 12; r++ {
				v.round = r
				st := adv.Step(v)
				if st.G != nil {
					t.Fatalf("round %d: expected a delta-native step", r)
				}
				sawDeltaStep = true
				for i, k := range st.EdgeAdds {
					if i > 0 && st.EdgeAdds[i-1] >= k {
						t.Fatalf("round %d: adds not strictly ascending", r)
					}
					if present[k] {
						t.Fatalf("round %d: add of present edge %v", r, k)
					}
					present[k] = true
				}
				for i, k := range st.EdgeRemoves {
					if i > 0 && st.EdgeRemoves[i-1] >= k {
						t.Fatalf("round %d: removes not strictly ascending", r)
					}
					if !present[k] {
						t.Fatalf("round %d: remove of absent edge %v", r, k)
					}
					delete(present, k)
				}
				g, _, _ := v.res.Resolve(&st)
				v.prev = g
				if g.M() != len(present) {
					t.Fatalf("round %d: folded %d edges, resolved graph has %d", r, len(present), g.M())
				}
				for k := range present {
					if !g.HasEdge(k.Nodes()) {
						t.Fatalf("round %d: folded edge %v missing from resolved graph", r, k)
					}
				}
			}
			if !sawDeltaStep {
				t.Fatal("adversary emitted no delta steps")
			}
		})
	}
}

// switchingInner flips between delta-native and materialized steps —
// the step pattern a ConflictInjector-style wrapper produces — to pin
// that LocalStatic's diff tracking survives mid-run switches.
type switchingInner struct {
	inner        Adversary
	res          *Resolver
	materialized func(round int) bool
}

func (s *switchingInner) Step(v View) Step {
	st := s.inner.Step(v)
	if s.res == nil {
		s.res = NewResolver(v.N())
	}
	g, _, _ := s.res.Resolve(&st)
	if s.materialized(v.Round()) {
		return Step{G: g, Wake: st.Wake}
	}
	return st
}

// TestLocalStaticOverSwitchingInner drives LocalStatic over an inner
// that alternates step kinds and checks the emitted diffs stay exact
// (folding them through a Resolver must not panic and the frozen ball
// must stay static) — the composition that a stale inner mirror broke.
func TestLocalStaticOverSwitchingInner(t *testing.T) {
	s := prf.NewStream(6, 0, 0, prf.PurposeWorkload)
	base := graph.GNP(36, 0.18, s)
	const protectedNode = 5
	adv := &LocalStatic{
		Inner: &switchingInner{
			inner: &Churn{Base: base, Add: 6, Del: 6, Seed: 11},
			// Delta rounds 1-4, materialized 5-8, delta again, then
			// every third round materialized.
			materialized: func(r int) bool { return (r >= 5 && r <= 8) || r%3 == 0 },
		},
		Base:      base,
		Protected: []graph.NodeID{protectedNode},
		Alpha:     2,
	}
	v := newFakeView(36)
	prev := (*graph.Graph)(nil)
	for r := 1; r <= 24; r++ {
		st := v.play(adv) // play resolves: panics here on an inexact diff
		if prev != nil && !graph.BallStatic(prev, st.G, protectedNode, 2) {
			t.Fatalf("round %d: protected ball changed", r)
		}
		prev = st.G
	}
}

// TestResolverSynthesizesDiffsForMaterializedSteps pins the legacy path:
// graph-valued steps yield exactly the edge diff of consecutive graphs,
// with an O(1) empty diff when the same graph object is replayed.
func TestResolverSynthesizesDiffsForMaterializedSteps(t *testing.T) {
	a, b := graph.Path(6), graph.Cycle(6)
	res := NewResolver(6)
	st := Step{G: a}
	_, adds, removes := res.Resolve(&st)
	if len(adds) != a.M() || len(removes) != 0 {
		t.Fatalf("first resolve: %d adds %d removes, want %d/0", len(adds), len(removes), a.M())
	}
	// Same pointer: empty diff.
	st = Step{G: a}
	_, adds, removes = res.Resolve(&st)
	if len(adds) != 0 || len(removes) != 0 {
		t.Fatalf("same-graph resolve: %d adds %d removes", len(adds), len(removes))
	}
	// Path -> Cycle: one edge appears ({0,5}), none disappear.
	st = Step{G: b}
	_, adds, removes = res.Resolve(&st)
	if len(adds) != 1 || adds[0] != graph.MakeEdgeKey(0, 5) || len(removes) != 0 {
		t.Fatalf("path->cycle diff: adds %v removes %v", adds, removes)
	}
	// Mixed: a delta step after materialized steps patches from the last
	// graph.
	st = Step{EdgeRemoves: []graph.EdgeKey{graph.MakeEdgeKey(0, 5)}}
	g, _, _ := res.Resolve(&st)
	if !g.Equal(a) {
		t.Fatalf("delta-after-materialized resolve: got %s, want path", g)
	}
}

// TestScriptedDeltaNativePersistsFinalTopology pins the post-trace
// behavior of delta-native scripts: empty diffs keep the last graph.
func TestScriptedDeltaNativePersistsFinalTopology(t *testing.T) {
	const n = 8
	tr := dyngraph.NewTrace(n)
	g1 := graph.Path(n)
	tr.Append(nil, g1, AllNodes(n))
	adv := NewScripted(tr)
	v := newFakeView(n)
	if st := v.play(adv); !st.G.Equal(g1) {
		t.Fatal("round 1 mismatch")
	}
	for r := 2; r <= 4; r++ {
		st := v.play(adv)
		if st.G == nil || !st.G.Equal(g1) {
			t.Fatalf("round %d: final topology not persisted", r)
		}
		if len(st.EdgeAdds) != 0 || len(st.EdgeRemoves) != 0 {
			t.Fatalf("round %d: post-trace diffs not empty", r)
		}
	}
}
