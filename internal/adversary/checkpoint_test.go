package adversary

import (
	"bytes"
	"testing"

	"dynlocal/internal/ckpt"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
)

// stateBytes serializes a Checkpointer's full state, the canonical
// fingerprint for comparing two adversaries bit for bit.
func stateBytes(t *testing.T, c Checkpointer) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	c.SaveState(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func loadState(t *testing.T, c Checkpointer, b []byte) {
	t.Helper()
	r := ckpt.NewReader(bytes.NewReader(b))
	c.LoadState(r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// deltaRoundTrip writes src's (from, to] delta and applies it to dst.
func deltaRoundTrip(t *testing.T, src, dst DeltaCheckpointer, from, to int) error {
	t.Helper()
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	src.SaveDelta(w, from, to)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := ckpt.NewReader(bytes.NewReader(buf.Bytes()))
	dst.LoadDelta(r, from, to)
	if err := r.Err(); err != nil {
		return err
	}
	return r.Close()
}

// TestDeltaFastForwardEquivalence pins the DeltaCheckpointer contract
// for both implementers: an adversary restored from a full checkpoint
// at round k1 and fast-forwarded by a (k1, k2] delta must be bit-
// identical — state bytes and every future step — to the live adversary
// that actually played those rounds.
func TestDeltaFastForwardEquivalence(t *testing.T) {
	const n = 40
	const k1, k2, tail = 6, 17, 8
	base := graph.GNP(n, 6.0/float64(n), prf.NewStream(5, 0, 0, prf.PurposeWorkload))
	type deltaAdversary interface {
		Adversary
		DeltaCheckpointer
	}
	cases := map[string]func() deltaAdversary{
		"churn": func() deltaAdversary {
			return &Churn{Base: base, Add: 4, Del: 4, Seed: 9}
		},
		"edgemarkov": func() deltaAdversary {
			return &EdgeMarkov{Footprint: base, POn: 0.6, POff: 0.3, Seed: 13}
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			live := mk()
			v := newFakeView(n)
			for r := 1; r <= k1; r++ {
				v.play(live)
			}
			resumed := mk()
			loadState(t, resumed, stateBytes(t, live))
			for r := k1 + 1; r <= k2; r++ {
				v.play(live)
			}
			if err := deltaRoundTrip(t, live, resumed, k1, k2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(stateBytes(t, live), stateBytes(t, resumed)) {
				t.Fatal("state bytes diverge after delta fast-forward")
			}
			// Future steps must coincide too: play both from k2.
			vLive, vRes := v, newFakeView(n)
			vRes.round = v.round
			vRes.prev = v.prev
			vRes.res.Resolve(&Step{EdgeAdds: v.prev.EdgeKeys()})
			for r := 0; r < tail; r++ {
				a := vLive.play(live)
				b := vRes.play(resumed)
				if !bytes.Equal(graphFingerprint(a.G), graphFingerprint(b.G)) {
					t.Fatalf("round %d after resume: topologies diverge", k2+r+1)
				}
			}
		})
	}
}

func graphFingerprint(g *graph.Graph) []byte {
	var buf bytes.Buffer
	for _, k := range g.EdgeKeys() {
		buf.WriteByte(byte(k))
		buf.WriteByte(byte(k >> 8))
		buf.WriteByte(byte(k >> 16))
		buf.WriteByte(byte(k >> 24))
	}
	return buf.Bytes()
}

// TestDeltaFromFreshBase covers the chain-base-before-round-1 corner:
// a delta whose span starts at round 0 must initialize the adversary
// (round 1 emits the base set without drawing) and still match live.
func TestDeltaFromFreshBase(t *testing.T) {
	const n = 24
	base := graph.GNP(n, 5.0/float64(n), prf.NewStream(3, 0, 0, prf.PurposeWorkload))
	mk := func() *Churn { return &Churn{Base: base, Add: 3, Del: 3, Seed: 7} }
	live := mk()
	v := newFakeView(n)
	for r := 1; r <= 5; r++ {
		v.play(live)
	}
	resumed := mk()
	if err := deltaRoundTrip(t, live, resumed, 0, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stateBytes(t, live), stateBytes(t, resumed)) {
		t.Fatal("fresh-base fast-forward diverges from live run")
	}
}

// TestDeltaRejectsBadSpan: hostile or corrupt round ranges must fail
// instead of looping.
func TestDeltaRejectsBadSpan(t *testing.T) {
	base := graph.GNP(16, 0.3, prf.NewStream(3, 0, 0, prf.PurposeWorkload))
	for _, span := range [][2]int{{5, 4}, {-1, 3}, {0, maxDeltaSpan + 1}} {
		c := &Churn{Base: base, Add: 1, Del: 1, Seed: 1}
		if err := deltaRoundTrip(t, c, c, span[0], span[1]); err == nil {
			t.Errorf("span (%d, %d] accepted", span[0], span[1])
		}
	}
}

// TestDeltaRejectsWrongAdversary: a churn delta applied to an
// edge-Markov adversary must fail on the section tag, not misparse.
func TestDeltaRejectsWrongAdversary(t *testing.T) {
	base := graph.GNP(16, 0.3, prf.NewStream(3, 0, 0, prf.PurposeWorkload))
	c := &Churn{Base: base, Add: 1, Del: 1, Seed: 1}
	m := &EdgeMarkov{Footprint: base, POn: 0.5, POff: 0.5, Seed: 2}
	if err := deltaRoundTrip(t, c, m, 2, 4); err == nil {
		t.Fatal("churn delta restored into an edge-Markov adversary")
	}
}
