// Package adversary implements the round-based adversaries of the paper's
// dynamic-network model (Section 2): at the start of each round the
// adversary provides the communication graph G_r and may wake additional
// nodes (V_{r-1} ⊆ V_r).
//
// Obliviousness is modeled through the View interface: the engine hands a
// ρ-oblivious adversary the algorithm outputs only up to round r-ρ, which
// is exactly the information whose randomness the adversary may know
// ("a 2-oblivious adversary does not know the random bits of round r and
// r−1 when determining graph G_r"). The adaptive-offline adversary of the
// remark after Lemma 5.2 is realized by LubyStaller, which is additionally
// given the PRF seed and therefore knows every future random bit.
//
// Invariants all adversaries maintain:
//
//   - Determinism: graph sequences are functions of (parameters, seed)
//     only. Randomized adversaries draw from prf streams over sorted
//     edge-key slices — never from Go map iteration order — so a (kind,
//     seed) pair names one reproducible execution.
//   - Model validity: returned graphs live on the engine's fixed n-node
//     universe and edges only touch awake nodes (the engine asserts
//     this); wake-ups are monotone, V_{r-1} ⊆ V_r.
//   - Graphs are built once per round as immutable graph.Graph values
//     (internal/graph) and may be retained by observers; adversaries
//     never mutate a graph they have handed out.
//
// Downstream, the per-round graphs feed the engine's two communication
// phases (internal/engine) and the sliding windows G^∩T/G^∪T that define
// the feasibility guarantees (internal/dyngraph, internal/verify).
package adversary

import (
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// Step is the adversary's move for one round.
type Step struct {
	G    *graph.Graph   // communication graph G_r
	Wake []graph.NodeID // nodes waking up at the start of round r
}

// View is the information the model grants the adversary when it
// constructs G_r. Implemented by the engine.
type View interface {
	// Round is the 1-based round being constructed.
	Round() int
	// N is the size of the potential-node universe.
	N() int
	// PrevGraph returns G_{r-1} (the empty graph before round 1).
	PrevGraph() *graph.Graph
	// Awake reports whether v is awake entering this round.
	Awake(v graph.NodeID) bool
	// DelayedOutputs returns the output snapshot at the end of round
	// Round()-ρ for the engine's obliviousness lag ρ, or nil if that
	// round predates the execution. The returned slice must not be
	// modified.
	DelayedOutputs() []problems.Value
}

// Adversary produces the graph sequence.
type Adversary interface {
	// Step returns round view.Round()'s graph and wake set. The returned
	// graph must only contain edges between nodes awake after the wake
	// set is applied.
	Step(view View) Step
}

// AllNodes returns the full wake set 0..n-1.
func AllNodes(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

// Static plays a fixed graph every round and wakes all nodes at round 1.
// With this adversary the simulation reduces to the classic static
// synchronous model (Section 6).
type Static struct {
	G *graph.Graph
}

// Step implements Adversary.
func (s Static) Step(v View) Step {
	st := Step{G: s.G}
	if v.Round() == 1 {
		st.Wake = AllNodes(s.G.N())
	}
	return st
}

// Alternator switches between two graphs A and B, playing A for Period
// rounds, then B for Period rounds, and so on. Period <= 0 behaves as 1
// (strict alternation — the high-frequency worst case discussed in the
// introduction, under which the window graphs become weak).
type Alternator struct {
	A, B   *graph.Graph
	Period int
}

// Step implements Adversary.
func (a Alternator) Step(v View) Step {
	p := a.Period
	if p <= 0 {
		p = 1
	}
	st := Step{}
	if ((v.Round()-1)/p)%2 == 0 {
		st.G = a.A
	} else {
		st.G = a.B
	}
	if v.Round() == 1 {
		st.Wake = AllNodes(a.A.N())
	}
	return st
}

// Scripted replays a recorded trace; after the trace is exhausted it keeps
// playing the final graph.
type Scripted struct {
	steps []Step
}

// NewScripted materializes a trace into an adversary.
func NewScripted(tr TraceSource) *Scripted {
	s := &Scripted{}
	tr.Replay(func(round int, g *graph.Graph, wake []graph.NodeID) {
		s.steps = append(s.steps, Step{G: g, Wake: append([]graph.NodeID(nil), wake...)})
	})
	return s
}

// TraceSource is the replay surface of dyngraph.Trace, declared locally to
// keep the package dependency-light.
type TraceSource interface {
	Replay(fn func(round int, g *graph.Graph, wake []graph.NodeID))
}

// Step implements Adversary.
func (s *Scripted) Step(v View) Step {
	r := v.Round()
	if r <= len(s.steps) {
		return s.steps[r-1]
	}
	if len(s.steps) == 0 {
		return Step{G: graph.Empty(v.N())}
	}
	last := s.steps[len(s.steps)-1]
	return Step{G: last.G}
}

// advStream returns the adversary-owned random stream for a round.
// Adversary randomness is keyed with node id -1 so it never collides with
// node streams.
func advStream(seed uint64, round int) prf.Stream {
	return prf.Make(seed, -1, round, prf.PurposeAdversary)
}
