// Package adversary implements the round-based adversaries of the paper's
// dynamic-network model (Section 2): at the start of each round the
// adversary provides the communication graph G_r and may wake additional
// nodes (V_{r-1} ⊆ V_r).
//
// Obliviousness is modeled through the View interface: the engine hands a
// ρ-oblivious adversary the algorithm outputs only up to round r-ρ, which
// is exactly the information whose randomness the adversary may know
// ("a 2-oblivious adversary does not know the random bits of round r and
// r−1 when determining graph G_r"). The adaptive-offline adversary of the
// remark after Lemma 5.2 is realized by LubyStaller, which is additionally
// given the PRF seed and therefore knows every future random bit.
//
// # Delta-native steps
//
// A highly dynamic network is naturally described by what changed, not by
// a fresh graph: a Step may carry the round's topology as a sorted edge
// diff (EdgeAdds/EdgeRemoves, with G == nil) instead of a materialized
// graph. EdgeMarkov, Churn, LocalStatic and Scripted emit such delta
// steps natively — their own state transitions are the diff — so a round
// costs O(changes) end to end: the engine folds the diff into its pooled
// CSR patcher (graph.Patcher) and the windows/checkers consume it
// directly. Adversaries that materialize (Static, Alternator,
// LubyStaller, the wrappers) keep returning full graphs; Resolver turns
// either kind of step into a (graph, adds, removes) triple, synthesizing
// the diff by a linear edge-key merge when only a graph was given.
//
// Invariants all adversaries maintain:
//
//   - Determinism: graph sequences are functions of (parameters, seed)
//     only. Randomized adversaries draw from prf streams over sorted
//     edge-key slices — never from Go map iteration order — so a (kind,
//     seed) pair names one reproducible execution.
//   - Model validity: returned topologies live on the engine's fixed
//     n-node universe and edges only touch awake nodes (the engine
//     asserts this on every added edge); wake-ups are monotone,
//     V_{r-1} ⊆ V_r.
//   - Delta steps describe the diff against the adversary's previous
//     round exactly (strictly ascending keys, adds absent before, removes
//     present before); the engine's patcher panics on any divergence.
//   - Materialized graphs are immutable graph.Graph values and may be
//     retained by observers; adversaries never mutate a graph they have
//     handed out. Delta steps may alias adversary-owned buffers that are
//     reused on the next Step — consumers must finish with them within
//     the round.
//
// Downstream, the per-round topologies feed the engine's two
// communication phases (internal/engine) and the sliding windows
// G^∩T/G^∪T that define the feasibility guarantees (internal/dyngraph,
// internal/verify).
package adversary

import (
	"io"
	"slices"

	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// Step is the adversary's move for one round: either a materialized
// communication graph G_r, or — when G is nil — a delta-native step whose
// EdgeAdds/EdgeRemoves describe G_r as a sorted diff against the
// adversary's previous round (round 1 diffs against the empty graph G_0).
type Step struct {
	// G is the communication graph G_r; nil for a delta step. It may
	// alias pooled resolver/patcher arenas valid for the round.
	//dynlint:loan
	G    *graph.Graph
	Wake []graph.NodeID // nodes waking up at the start of round r
	// EdgeAdds and EdgeRemoves are the sorted edge diff of a delta step:
	// strictly ascending canonical keys, every added edge absent from and
	// every removed edge present in the previous round's topology. Ignored
	// when G is non-nil (the graph is authoritative; Resolver synthesizes
	// the diff). The slices may alias adversary-owned buffers reused on
	// the next Step.
	//dynlint:loan
	//dynlint:sorted
	EdgeAdds, EdgeRemoves []graph.EdgeKey
}

// View is the information the model grants the adversary when it
// constructs G_r. Implemented by the engine.
type View interface {
	// Round is the 1-based round being constructed.
	Round() int
	// N is the size of the potential-node universe.
	N() int
	// PrevGraph returns G_{r-1} (the empty graph before round 1).
	PrevGraph() *graph.Graph
	// Awake reports whether v is awake entering this round.
	Awake(v graph.NodeID) bool
	// DelayedOutputs returns the output snapshot at the end of round
	// Round()-ρ for the engine's obliviousness lag ρ, or nil if that
	// round predates the execution. The returned slice must not be
	// modified.
	DelayedOutputs() []problems.Value
}

// Adversary produces the graph sequence.
type Adversary interface {
	// Step returns round view.Round()'s topology (materialized or as a
	// delta, see Step) and wake set. The topology must only contain edges
	// between nodes awake after the wake set is applied.
	Step(view View) Step
}

// Resolver materializes the topology stream of a possibly delta-native
// adversary and reports every round's sorted edge diff, so consumers —
// the engine, wrapper adversaries, tests — can handle both step kinds
// uniformly. Delta steps are folded into a pooled graph.Patcher (one
// block-copy merge, no counting rebuild); materialized steps are adopted
// as-is and their diff synthesized with one linear merge over the
// EdgeKeys views of consecutive rounds.
//
// Lifetimes follow the patcher's double buffering: a resolved graph stays
// valid through the next Resolve call and may be recycled by the one
// after that; the returned diff slices are valid until the next Resolve.
// Clone anything retained longer.
//
// Resolver has two mutually exclusive feeds. Resolve is the eager one:
// every round yields a materialized graph (wrapper adversaries and tests
// use it). Observe/Materialize is the lazy one the engine's sparse round
// plane uses: Observe only reports each round's diff — folding it into a
// pending net-diff — and a CSR graph is built just when Materialize is
// called, so delta-native rounds never pay the patcher's O(n + m) merge.
// The pending net-diff is bounded by the symmetric difference against the
// last materialized graph, i.e. O(m) however many rounds pass between
// materializations.
type Resolver struct {
	p *graph.Patcher
	// prev holds the previous round's graph, which may alias a pooled
	// patcher arena: a sanctioned loan-to-loan handoff — the patcher's
	// double buffering keeps it valid exactly as long as the resolver
	// needs it.
	//dynlint:loan
	prev   *graph.Graph
	addBuf []graph.EdgeKey
	remBuf []graph.EdgeKey

	// Lazy plane (Observe/Materialize): the net edge diff accumulated
	// since prev was last materialized, with exact add/remove
	// cancellation, plus sort scratch for Materialize. Kept separate from
	// addBuf/remBuf so a mid-round Materialize cannot clobber diff slices
	// an Observe caller is still holding.
	pendAdd, pendRem map[graph.EdgeKey]struct{}
	matAdd, matRem   []graph.EdgeKey
}

// NewResolver creates a resolver over an n-node universe; the previous
// topology starts as the empty graph G_0.
func NewResolver(n int) *Resolver {
	p := graph.NewPatcher(n)
	return &Resolver{
		p: p, prev: p.Current(),
		pendAdd: make(map[graph.EdgeKey]struct{}),
		pendRem: make(map[graph.EdgeKey]struct{}),
	}
}

// Resolve turns st into a (graph, adds, removes) triple. For a delta step
// the graph is patched from the previous round and the given diff is
// passed through; for a materialized step the diff is synthesized. The
// same-graph fast path (adversaries like Static replay one immutable
// graph) costs O(1).
//
//dynlint:loan
func (r *Resolver) Resolve(st *Step) (g *graph.Graph, adds, removes []graph.EdgeKey) {
	if st.G == nil {
		r.p.Reset(r.prev)
		g = r.p.Apply(st.EdgeAdds, st.EdgeRemoves)
		r.prev = g
		return g, st.EdgeAdds, st.EdgeRemoves
	}
	g = st.G
	if g == r.prev {
		return g, nil, nil
	}
	adds, removes = graph.DiffSortedKeys(r.prev.EdgeKeys(), g.EdgeKeys(), r.addBuf[:0], r.remBuf[:0])
	r.addBuf, r.remBuf = adds, removes
	r.prev = g
	return g, adds, removes
}

// Observe is the lazy sibling of Resolve: it reports the round's sorted
// edge diff without materializing a graph. Delta steps pass their diff
// through and fold it into the resolver's pending net-diff (with exact
// add/remove cancellation), so a delta-native round costs O(changes) and
// allocates nothing; materialized steps are adopted as-is (after catching
// the pending diff up) and their diff synthesized as in Resolve. The
// current graph is produced on demand by Materialize. The returned
// slices follow the same lifetime as Resolve's: valid until the next
// Observe. Observe and Resolve must not be mixed on one Resolver.
//
//dynlint:loan
func (r *Resolver) Observe(st *Step) (adds, removes []graph.EdgeKey) {
	if st.G == nil {
		for _, k := range st.EdgeAdds {
			if _, ok := r.pendRem[k]; ok {
				delete(r.pendRem, k)
			} else {
				r.pendAdd[k] = struct{}{}
			}
		}
		for _, k := range st.EdgeRemoves {
			if _, ok := r.pendAdd[k]; ok {
				delete(r.pendAdd, k)
			} else {
				r.pendRem[k] = struct{}{}
			}
		}
		return st.EdgeAdds, st.EdgeRemoves
	}
	prev := r.Materialize()
	g := st.G
	if g == prev {
		return nil, nil
	}
	adds, removes = graph.DiffSortedKeys(prev.EdgeKeys(), g.EdgeKeys(), r.addBuf[:0], r.remBuf[:0])
	r.addBuf, r.remBuf = adds, removes
	r.prev = g
	return adds, removes
}

// Materialize returns the current graph of the Observe feed, folding any
// pending net diff into the pooled patcher first. With no pending changes
// it is O(1) (the previously materialized graph is returned unchanged);
// otherwise it costs one O(n + m) patcher merge — which is why the engine
// only calls it on demand, never per round. The returned graph follows
// the patcher lifetime: valid until the second-next materialization that
// actually patches; Clone to retain longer.
func (r *Resolver) Materialize() *graph.Graph {
	if len(r.pendAdd) == 0 && len(r.pendRem) == 0 {
		return r.prev
	}
	r.matAdd = sortedKeys(r.pendAdd, r.matAdd[:0])
	r.matRem = sortedKeys(r.pendRem, r.matRem[:0])
	clear(r.pendAdd)
	clear(r.pendRem)
	r.p.Reset(r.prev)
	r.prev = r.p.Apply(r.matAdd, r.matRem)
	return r.prev
}

// sortedKeys appends a key set to dst in ascending order.
func sortedKeys(set map[graph.EdgeKey]struct{}, dst []graph.EdgeKey) []graph.EdgeKey {
	for k := range set {
		dst = append(dst, k)
	}
	slices.Sort(dst)
	return dst
}

// AllNodes returns the full wake set 0..n-1.
func AllNodes(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

// Static plays a fixed graph every round and wakes all nodes at round 1.
// With this adversary the simulation reduces to the classic static
// synchronous model (Section 6). It hands out the same immutable graph
// each round, which the Resolver recognizes as an O(1) empty diff.
type Static struct {
	G *graph.Graph
}

// Step implements Adversary.
func (s Static) Step(v View) Step {
	st := Step{G: s.G}
	if v.Round() == 1 {
		st.Wake = AllNodes(s.G.N())
	}
	return st
}

// Alternator switches between two graphs A and B, playing A for Period
// rounds, then B for Period rounds, and so on. Period <= 0 behaves as 1
// (strict alternation — the high-frequency worst case discussed in the
// introduction, under which the window graphs become weak).
type Alternator struct {
	A, B   *graph.Graph
	Period int
}

// Step implements Adversary.
func (a Alternator) Step(v View) Step {
	p := a.Period
	if p <= 0 {
		p = 1
	}
	st := Step{}
	if ((v.Round()-1)/p)%2 == 0 {
		st.G = a.A
	} else {
		st.G = a.B
	}
	if v.Round() == 1 {
		st.Wake = AllNodes(a.A.N())
	}
	return st
}

// Scripted replays a recorded trace. Traces that expose their deltas
// (dyngraph.Trace via DeltaSource) are replayed delta-natively — no graph
// is ever materialized, each round is its recorded edge diff — and after
// the trace is exhausted the final topology persists as empty diffs.
// Plain TraceSources fall back to materialized steps.
type Scripted struct {
	steps []Step
}

// TraceSource is the replay surface of dyngraph.Trace, declared locally to
// keep the package dependency-light.
type TraceSource interface {
	Replay(fn func(round int, g *graph.Graph, wake []graph.NodeID))
}

// DeltaSource is the delta-native replay surface of dyngraph.Trace.
// Sources that implement it are scripted as edge diffs.
type DeltaSource interface {
	ReplayDeltas(fn func(round int, adds, removes []graph.EdgeKey, wake []graph.NodeID))
}

// NewScripted materializes a trace into an adversary, preferring the
// delta-native replay surface when the source offers one.
func NewScripted(tr TraceSource) *Scripted {
	s := &Scripted{}
	if ds, ok := tr.(DeltaSource); ok {
		ds.ReplayDeltas(func(round int, adds, removes []graph.EdgeKey, wake []graph.NodeID) {
			s.steps = append(s.steps, Step{
				Wake:        append([]graph.NodeID(nil), wake...),
				EdgeAdds:    append([]graph.EdgeKey(nil), adds...),
				EdgeRemoves: append([]graph.EdgeKey(nil), removes...),
			})
		})
		return s
	}
	tr.Replay(func(round int, g *graph.Graph, wake []graph.NodeID) {
		s.steps = append(s.steps, Step{G: g, Wake: append([]graph.NodeID(nil), wake...)})
	})
	return s
}

// Step implements Adversary.
func (s *Scripted) Step(v View) Step {
	r := v.Round()
	if r <= len(s.steps) {
		return s.steps[r-1]
	}
	if len(s.steps) == 0 || s.steps[0].G == nil {
		// Delta-native script (or empty trace): an empty diff keeps the
		// final topology playing.
		return Step{}
	}
	last := s.steps[len(s.steps)-1]
	return Step{G: last.G}
}

// DeltaStreamSource is the streaming replay surface of
// dyngraph.StreamDecoder (its NextDeltas method), declared locally to
// keep the package dependency-light: one validated round of deltas per
// call, io.EOF after the last. The returned slices may alias source-owned
// buffers reused on the next call.
type DeltaStreamSource interface {
	NextDeltas() (wake []graph.NodeID, adds, removes []graph.EdgeKey, err error)
}

// ScriptedStream replays a trace straight from a streaming decoder, one
// round per engine step, without ever holding more than the current round
// in memory — the constant-memory sibling of Scripted for traces too
// large to materialize. The decoder's loaned slices pass through Step
// unchanged (a sanctioned loan-to-loan handoff: the engine consumes a
// step's slices within the round, and the source reuses them only on the
// next pull). After the source reports io.EOF the final topology persists
// as empty diffs, matching Scripted.
//
// A decode error mid-run cannot be reported through the Adversary
// interface; the stream freezes the topology (empty diffs from then on)
// and exposes the error via Err, which callers replaying untrusted traces
// must check after the run.
type ScriptedStream struct {
	src DeltaStreamSource
	// consumed counts successful pulls from the source — the stream's
	// replay position, which is all the state a checkpoint needs (see
	// Checkpointer in checkpoint.go).
	consumed int
	done     bool
	err      error
}

// NewScriptedStream wraps a streaming delta source as an adversary.
func NewScriptedStream(src DeltaStreamSource) *ScriptedStream {
	return &ScriptedStream{src: src}
}

// Step implements Adversary. The returned slices alias decoder-owned
// buffers valid for the round only.
func (s *ScriptedStream) Step(v View) Step {
	if s.done {
		return Step{}
	}
	wake, adds, removes, err := s.src.NextDeltas()
	if err != nil {
		s.done = true
		if err != io.EOF {
			s.err = err
		}
		return Step{}
	}
	s.consumed++
	return Step{Wake: wake, EdgeAdds: adds, EdgeRemoves: removes}
}

// Err returns the first decode error the source reported, or nil if the
// stream ended cleanly (or has not ended yet).
func (s *ScriptedStream) Err() error { return s.err }

// advStream returns the adversary-owned random stream for a round.
// Adversary randomness is keyed with node id -1 so it never collides with
// node streams.
func advStream(seed uint64, round int) prf.Stream {
	return prf.Make(seed, -1, round, prf.PurposeAdversary)
}
