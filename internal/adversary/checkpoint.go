package adversary

import (
	"fmt"
	"slices"

	"dynlocal/internal/ckpt"
	"dynlocal/internal/graph"
)

// Checkpointer is implemented by adversaries whose position in the
// topology sequence can be serialized into a checkpoint stream and
// restored onto a freshly constructed adversary with the same
// configuration, after which the restored adversary emits exactly the
// steps the original would have. Stateless adversaries (Static,
// Alternator, Scripted — their Step is a pure function of the round)
// need no Checkpointer: the engine restores them by round number alone.
//
// The randomized adversaries draw from per-round PRF streams
// (advStream), so their "position" is exactly their mutable state —
// no RNG cursor needs saving beyond what prf.Stream.Cursor offers to
// adversaries that hold streams across rounds (none here do).
type Checkpointer interface {
	SaveState(w *ckpt.Writer)
	LoadState(r *ckpt.Reader)
}

// DeltaCheckpointer is optionally implemented by Checkpointers whose
// state change between two checkpoint records can be encoded — or
// re-derived — far more compactly than a full SaveState rewrite. The
// engine's delta records call SaveDelta instead of SaveState when the
// adversary implements it, passing the parent record's round and the
// current round; LoadDelta must advance an adversary holding the exact
// parent state to the exact `to` state, bit-identically to having
// stepped through those rounds live.
//
// The randomized adversaries here draw every round from the stateless
// per-round PRF (advStream), so their evolution over (from, to] is a
// pure function of configuration and parent state: their delta carries
// no edge data at all and LoadDelta fast-forwards by replaying the
// draws — the same idiom ScriptedStream.LoadState uses for traces.
// Record integrity (that the delta really was built on this parent) is
// the chain's job: the engine validates sequence, parent fingerprint
// and parent round before the adversary section is reached.
type DeltaCheckpointer interface {
	Checkpointer
	SaveDelta(w *ckpt.Writer, from, to int)
	LoadDelta(r *ckpt.Reader, from, to int)
}

// Section tags guarding the adversary section of a checkpoint stream.
const (
	tagChurn           uint64 = 0x71
	tagEdgeMarkov      uint64 = 0x72
	tagP2PChurn        uint64 = 0x73
	tagScriptedStream  uint64 = 0x74
	tagLocalStatic     uint64 = 0x75
	tagWakeup          uint64 = 0x76
	tagChurnDelta      uint64 = 0x77
	tagEdgeMarkovDelta uint64 = 0x78
)

// stateCap bounds per-collection element counts a checkpoint may
// declare for adversary state.
const stateCap = 1 << 26

// maxDeltaSpan bounds the round distance a single delta record may
// fast-forward, so a corrupt or hostile header cannot turn LoadDelta
// into an unbounded replay loop.
const maxDeltaSpan = 1 << 20

// checkDeltaSpan validates a fast-forward range handed to LoadDelta.
func checkDeltaSpan(r *ckpt.Reader, from, to int) bool {
	if from < 0 || to < from || to-from > maxDeltaSpan {
		r.Fail(fmt.Errorf("adversary: delta fast-forward span (%d, %d] invalid", from, to))
		return false
	}
	return true
}

// SaveState implements Checkpointer. The live edge-key list is written
// verbatim: its swap-delete order feeds removeRandom's Intn indexing,
// so preserving it exactly is what makes the resumed draw sequence
// bit-identical.
func (c *Churn) SaveState(w *ckpt.Writer) {
	w.Section(tagChurn)
	w.Bool(c.started)
	if !c.started {
		return
	}
	w.Int(len(c.keys))
	for _, k := range c.keys {
		w.Uvarint(uint64(k))
	}
}

// LoadState implements Checkpointer.
func (c *Churn) LoadState(r *ckpt.Reader) {
	r.Section(tagChurn)
	if !r.Bool() {
		return
	}
	if !c.started {
		c.init()
	}
	n := r.Count(stateCap)
	if r.Err() != nil {
		return
	}
	c.keys = make([]graph.EdgeKey, n)
	c.keyIdx = make(map[graph.EdgeKey]int, n)
	for i := range c.keys {
		k := graph.EdgeKey(r.Uvarint())
		c.keys[i] = k
		c.keyIdx[k] = i
	}
}

// SaveDelta implements DeltaCheckpointer. Churn's per-round mutations
// are drawn from advStream(Seed, round) against the live key list, so
// the state at `to` is fully determined by the state at `from`: the
// delta carries only its section tag and LoadDelta re-derives the rest.
func (c *Churn) SaveDelta(w *ckpt.Writer, from, to int) {
	w.Section(tagChurnDelta)
}

// LoadDelta implements DeltaCheckpointer: replay the (from, to] draw
// sequence against the parent state. The replay mutates keys/keyIdx
// through the same removeRandom/addRandom calls Step makes, so the
// swap-delete order — which feeds every future Intn index — comes out
// bit-identical to a live run.
func (c *Churn) LoadDelta(r *ckpt.Reader, from, to int) {
	r.Section(tagChurnDelta)
	if r.Err() != nil || !checkDeltaSpan(r, from, to) {
		return
	}
	for rd := from + 1; rd <= to; rd++ {
		if !c.started {
			c.init()
		}
		if rd == 1 {
			// Round 1 emits the base edge set without drawing.
			continue
		}
		s := advStream(c.Seed, rd)
		for i := 0; i < c.Del; i++ {
			c.removeRandom(&s)
		}
		for i := 0; i < c.Add; i++ {
			c.addRandom(&s)
		}
	}
}

// SaveState implements Checkpointer. The footprint key list is
// reconstructed from the immutable footprint graph; only the on/off
// mirror is state.
func (m *EdgeMarkov) SaveState(w *ckpt.Writer) {
	w.Section(tagEdgeMarkov)
	w.Bool(m.started)
	if !m.started {
		return
	}
	w.Int(len(m.on))
	for _, b := range m.on {
		w.Bool(b)
	}
}

// LoadState implements Checkpointer.
func (m *EdgeMarkov) LoadState(r *ckpt.Reader) {
	r.Section(tagEdgeMarkov)
	if !r.Bool() {
		return
	}
	if !m.started {
		m.init()
	}
	n := r.Count(stateCap)
	if r.Err() != nil {
		return
	}
	if n != len(m.on) {
		r.Fail(fmt.Errorf("adversary: checkpoint has %d footprint edges, adversary has %d", n, len(m.on)))
		return
	}
	for i := range m.on {
		m.on[i] = r.Bool()
	}
}

// SaveDelta implements DeltaCheckpointer. Like Churn, the edge-Markov
// flips over (from, to] are a pure function of (Seed, round) and the
// parent on/off mirror — the delta body is empty.
func (m *EdgeMarkov) SaveDelta(w *ckpt.Writer, from, to int) {
	w.Section(tagEdgeMarkovDelta)
}

// LoadDelta implements DeltaCheckpointer: replay the coin flips for the
// skipped rounds. Each round draws exactly one Bernoulli per footprint
// edge in slice order, matching Step's draw sequence.
func (m *EdgeMarkov) LoadDelta(r *ckpt.Reader, from, to int) {
	r.Section(tagEdgeMarkovDelta)
	if r.Err() != nil || !checkDeltaSpan(r, from, to) {
		return
	}
	for rd := from + 1; rd <= to; rd++ {
		if !m.started {
			m.init()
		}
		if rd == 1 {
			continue
		}
		s := advStream(m.Seed, rd)
		for i, isOn := range m.on {
			if isOn {
				if s.Bernoulli(m.POff) {
					m.on[i] = false
				}
			} else if s.Bernoulli(m.POn) {
				m.on[i] = true
			}
		}
	}
}

// SaveState implements Checkpointer. Order-bearing slices (live list,
// per-node adjacency) are written verbatim — the live list's
// swap-delete order feeds Intn peer selection — while the round-keyed
// maps are written with sorted keys for deterministic bytes.
func (p *P2PChurn) SaveState(w *ckpt.Writer) {
	w.Section(tagP2PChurn)
	w.Bool(p.started)
	if !p.started {
		return
	}
	w.Varint(int64(p.nextID))
	w.Int(len(p.live))
	for _, v := range p.live {
		w.Varint(int64(v))
	}
	// Adjacency in live order: every nbrs key is a live node.
	for _, v := range p.live {
		row := p.nbrs[v]
		w.Int(len(row))
		for _, u := range row {
			w.Varint(int64(u))
		}
	}
	saveRoundBuckets(w, p.sessEnd)
	saveRoundCounts(w, p.rejoins)
}

// LoadState implements Checkpointer.
func (p *P2PChurn) LoadState(r *ckpt.Reader) {
	r.Section(tagP2PChurn)
	if !r.Bool() {
		return
	}
	if !p.started {
		p.init()
	}
	p.nextID = graph.NodeID(r.Varint())
	n := r.Count(stateCap)
	if r.Err() != nil {
		return
	}
	p.live = make([]graph.NodeID, n)
	p.liveIdx = make(map[graph.NodeID]int, n)
	for i := range p.live {
		v := graph.NodeID(r.Varint())
		p.live[i] = v
		p.liveIdx[v] = i
	}
	p.nbrs = make(map[graph.NodeID][]graph.NodeID, n)
	for _, v := range p.live {
		deg := r.Count(stateCap)
		if r.Err() != nil {
			return
		}
		row := make([]graph.NodeID, deg)
		for i := range row {
			row[i] = graph.NodeID(r.Varint())
		}
		p.nbrs[v] = row
	}
	p.sessEnd = loadRoundBuckets(r)
	p.rejoins = loadRoundCounts(r)
}

// saveRoundBuckets serializes a round-keyed id-bucket map with sorted
// round keys (bucket contents verbatim — their order is append order
// and feeds departure processing).
func saveRoundBuckets(w *ckpt.Writer, m map[int][]graph.NodeID) {
	rounds := make([]int, 0, len(m))
	for r := range m {
		rounds = append(rounds, r)
	}
	slices.Sort(rounds)
	w.Int(len(rounds))
	for _, rd := range rounds {
		w.Int(rd)
		ids := m[rd]
		w.Int(len(ids))
		for _, v := range ids {
			w.Varint(int64(v))
		}
	}
}

func loadRoundBuckets(r *ckpt.Reader) map[int][]graph.NodeID {
	n := r.Count(stateCap)
	if r.Err() != nil {
		return nil
	}
	m := make(map[int][]graph.NodeID, n)
	for i := 0; i < n; i++ {
		rd := r.Int()
		cnt := r.Count(stateCap)
		if r.Err() != nil {
			return nil
		}
		ids := make([]graph.NodeID, cnt)
		for j := range ids {
			ids[j] = graph.NodeID(r.Varint())
		}
		m[rd] = ids
	}
	return m
}

// saveRoundCounts serializes a round-keyed counter map with sorted
// round keys.
func saveRoundCounts(w *ckpt.Writer, m map[int]int) {
	rounds := make([]int, 0, len(m))
	for r := range m {
		rounds = append(rounds, r)
	}
	slices.Sort(rounds)
	w.Int(len(rounds))
	for _, rd := range rounds {
		w.Int(rd)
		w.Int(m[rd])
	}
}

func loadRoundCounts(r *ckpt.Reader) map[int]int {
	n := r.Count(stateCap)
	if r.Err() != nil {
		return nil
	}
	m := make(map[int]int, n)
	for i := 0; i < n; i++ {
		rd := r.Int()
		m[rd] = r.Int()
	}
	return m
}

// SaveState implements Checkpointer. Only the consumed-round count is
// state; LoadState fast-forwards a freshly opened source by that many
// rounds, re-validating the prefix and rebuilding the decoder's
// present-set as a side effect. A stream that has already surfaced a
// decode error refuses to checkpoint — resuming a failed replay would
// silently freeze the topology.
func (s *ScriptedStream) SaveState(w *ckpt.Writer) {
	w.Section(tagScriptedStream)
	if s.err != nil {
		w.Fail(fmt.Errorf("adversary: cannot checkpoint errored trace replay: %w", s.err))
		return
	}
	w.Int(s.consumed)
	w.Bool(s.done)
}

// LoadState implements Checkpointer. The receiver must wrap a freshly
// opened source positioned at its first round, or — when applying a
// checkpoint chain, whose delta records each carry the adversary section
// — be the same receiver an earlier record already restored: the
// fast-forward is incremental from the rounds already consumed, so
// repeated loads advance the source monotonically instead of
// compounding.
func (s *ScriptedStream) LoadState(r *ckpt.Reader) {
	r.Section(tagScriptedStream)
	consumed := r.Count(stateCap)
	done := r.Bool()
	if r.Err() != nil {
		return
	}
	if consumed < s.consumed {
		r.Fail(fmt.Errorf("adversary: checkpoint has %d consumed trace rounds, replay already at %d — cannot rewind a stream", consumed, s.consumed))
		return
	}
	for i := s.consumed; i < consumed; i++ {
		if _, _, _, err := s.src.NextDeltas(); err != nil {
			r.Fail(fmt.Errorf("adversary: trace ended at round %d/%d while resuming: %w", i, consumed, err))
			return
		}
	}
	s.consumed = consumed
	s.done = done
}

// saveInner delegates the wrapped adversary's state with a presence
// flag, so a restore onto a differently-wrapped adversary fails cleanly.
func saveInner(w *ckpt.Writer, inner Adversary) {
	ck, ok := inner.(Checkpointer)
	w.Bool(ok)
	if ok {
		ck.SaveState(w)
	}
}

// loadInner restores the wrapped adversary's state saved by saveInner.
func loadInner(r *ckpt.Reader, inner Adversary) {
	has := r.Bool()
	if r.Err() != nil {
		return
	}
	ck, ok := inner.(Checkpointer)
	if has != ok {
		r.Fail(fmt.Errorf("adversary: checkpoint inner-state presence %v, wrapped adversary %T checkpointer %v", has, inner, ok))
		return
	}
	if has {
		ck.LoadState(r)
	}
}

// SaveState implements Checkpointer. The frozen zone and its base edges
// are derived from configuration (Base, Protected, Alpha) and rebuilt by
// init() on restore; the only serialized wrapper state is the inner-
// topology mirror, written with sorted keys for deterministic bytes
// (it is a set — order never feeds behavior). The inner adversary's
// state is delegated.
func (l *LocalStatic) SaveState(w *ckpt.Writer) {
	w.Section(tagLocalStatic)
	w.Bool(l.started)
	if l.started {
		keys := make([]graph.EdgeKey, 0, len(l.innerSet))
		for k := range l.innerSet {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		w.Int(len(keys))
		for _, k := range keys {
			w.Uvarint(uint64(k))
		}
	}
	saveInner(w, l.Inner)
}

// LoadState implements Checkpointer. Safe for the repeated loads of a
// chain restore: derived caches are built once, the mirror is replaced
// wholesale each time.
func (l *LocalStatic) LoadState(r *ckpt.Reader) {
	r.Section(tagLocalStatic)
	started := r.Bool()
	if r.Err() != nil {
		return
	}
	if started {
		if !l.started {
			l.init()
		}
		n := r.Count(stateCap)
		if r.Err() != nil {
			return
		}
		clear(l.innerSet)
		for i := 0; i < n; i++ {
			l.innerSet[graph.EdgeKey(r.Uvarint())] = struct{}{}
		}
		if r.Err() != nil {
			return
		}
	}
	loadInner(r, l.Inner)
}

// SaveState implements Checkpointer. The awake set is a pure function of
// (Schedule, lastRound) and is rebuilt on restore; the resolver's
// previous inner topology — which the next materialized-step diff runs
// against — is written as its sorted edge-key list. The inner
// adversary's state is delegated.
func (w *Wakeup) SaveState(cw *ckpt.Writer) {
	cw.Section(tagWakeup)
	cw.Bool(w.awake != nil)
	if w.awake != nil {
		cw.Int(w.lastRound)
		keys := w.res.prev.EdgeKeys()
		cw.Int(len(keys))
		for _, k := range keys {
			cw.Uvarint(uint64(k))
		}
	}
	saveInner(cw, w.Inner)
}

// LoadState implements Checkpointer. Safe for the repeated loads of a
// chain restore: awake set and resolver are rebuilt from scratch each
// time.
func (w *Wakeup) LoadState(r *ckpt.Reader) {
	r.Section(tagWakeup)
	started := r.Bool()
	if r.Err() != nil {
		return
	}
	if started {
		n := len(w.Schedule)
		lastRound := r.Int()
		nKeys := r.Count(stateCap)
		if r.Err() != nil {
			return
		}
		keys := make([]graph.EdgeKey, nKeys)
		var prev graph.EdgeKey
		for i := range keys {
			k := graph.EdgeKey(r.Uvarint())
			if r.Err() != nil {
				return
			}
			if i > 0 && k <= prev {
				r.Fail(fmt.Errorf("adversary: checkpoint wakeup edge keys not strictly ascending"))
				return
			}
			if x, y := k.Nodes(); x < 0 || x >= y || int(y) >= n {
				r.Fail(fmt.Errorf("adversary: checkpoint wakeup edge %v outside universe [0,%d)", k, n))
				return
			}
			keys[i] = k
			prev = k
		}
		w.lastRound = lastRound
		w.awake = make([]bool, n)
		for id, wr := range w.Schedule {
			if wr >= 1 && wr <= lastRound {
				w.awake[id] = true
			}
		}
		w.res = NewResolver(n)
		w.res.Resolve(&Step{EdgeAdds: keys})
	}
	loadInner(r, w.Inner)
}

// Interface conformance. P2PChurn, ScriptedStream and the wrappers stay
// full-rewrite Checkpointers: P2P session state is O(live nodes) anyway,
// trace replay already fast-forwards incrementally inside LoadState, and
// the wrappers' inner-topology mirrors are what dominates their records.
var (
	_ Checkpointer      = (*Churn)(nil)
	_ Checkpointer      = (*EdgeMarkov)(nil)
	_ Checkpointer      = (*P2PChurn)(nil)
	_ Checkpointer      = (*ScriptedStream)(nil)
	_ Checkpointer      = (*LocalStatic)(nil)
	_ Checkpointer      = (*Wakeup)(nil)
	_ DeltaCheckpointer = (*Churn)(nil)
	_ DeltaCheckpointer = (*EdgeMarkov)(nil)
)
