package adversary

import (
	"fmt"
	"slices"

	"dynlocal/internal/ckpt"
	"dynlocal/internal/graph"
)

// Checkpointer is implemented by adversaries whose position in the
// topology sequence can be serialized into a checkpoint stream and
// restored onto a freshly constructed adversary with the same
// configuration, after which the restored adversary emits exactly the
// steps the original would have. Stateless adversaries (Static,
// Alternator, Scripted — their Step is a pure function of the round)
// need no Checkpointer: the engine restores them by round number alone.
//
// The randomized adversaries draw from per-round PRF streams
// (advStream), so their "position" is exactly their mutable state —
// no RNG cursor needs saving beyond what prf.Stream.Cursor offers to
// adversaries that hold streams across rounds (none here do).
type Checkpointer interface {
	SaveState(w *ckpt.Writer)
	LoadState(r *ckpt.Reader)
}

// Section tags guarding the adversary section of a checkpoint stream.
const (
	tagChurn          uint64 = 0x71
	tagEdgeMarkov     uint64 = 0x72
	tagP2PChurn       uint64 = 0x73
	tagScriptedStream uint64 = 0x74
)

// stateCap bounds per-collection element counts a checkpoint may
// declare for adversary state.
const stateCap = 1 << 26

// SaveState implements Checkpointer. The live edge-key list is written
// verbatim: its swap-delete order feeds removeRandom's Intn indexing,
// so preserving it exactly is what makes the resumed draw sequence
// bit-identical.
func (c *Churn) SaveState(w *ckpt.Writer) {
	w.Section(tagChurn)
	w.Bool(c.started)
	if !c.started {
		return
	}
	w.Int(len(c.keys))
	for _, k := range c.keys {
		w.Uvarint(uint64(k))
	}
}

// LoadState implements Checkpointer.
func (c *Churn) LoadState(r *ckpt.Reader) {
	r.Section(tagChurn)
	if !r.Bool() {
		return
	}
	if !c.started {
		c.init()
	}
	n := r.Count(stateCap)
	if r.Err() != nil {
		return
	}
	c.keys = make([]graph.EdgeKey, n)
	c.keyIdx = make(map[graph.EdgeKey]int, n)
	for i := range c.keys {
		k := graph.EdgeKey(r.Uvarint())
		c.keys[i] = k
		c.keyIdx[k] = i
	}
}

// SaveState implements Checkpointer. The footprint key list is
// reconstructed from the immutable footprint graph; only the on/off
// mirror is state.
func (m *EdgeMarkov) SaveState(w *ckpt.Writer) {
	w.Section(tagEdgeMarkov)
	w.Bool(m.started)
	if !m.started {
		return
	}
	w.Int(len(m.on))
	for _, b := range m.on {
		w.Bool(b)
	}
}

// LoadState implements Checkpointer.
func (m *EdgeMarkov) LoadState(r *ckpt.Reader) {
	r.Section(tagEdgeMarkov)
	if !r.Bool() {
		return
	}
	if !m.started {
		m.init()
	}
	n := r.Count(stateCap)
	if r.Err() != nil {
		return
	}
	if n != len(m.on) {
		r.Fail(fmt.Errorf("adversary: checkpoint has %d footprint edges, adversary has %d", n, len(m.on)))
		return
	}
	for i := range m.on {
		m.on[i] = r.Bool()
	}
}

// SaveState implements Checkpointer. Order-bearing slices (live list,
// per-node adjacency) are written verbatim — the live list's
// swap-delete order feeds Intn peer selection — while the round-keyed
// maps are written with sorted keys for deterministic bytes.
func (p *P2PChurn) SaveState(w *ckpt.Writer) {
	w.Section(tagP2PChurn)
	w.Bool(p.started)
	if !p.started {
		return
	}
	w.Varint(int64(p.nextID))
	w.Int(len(p.live))
	for _, v := range p.live {
		w.Varint(int64(v))
	}
	// Adjacency in live order: every nbrs key is a live node.
	for _, v := range p.live {
		row := p.nbrs[v]
		w.Int(len(row))
		for _, u := range row {
			w.Varint(int64(u))
		}
	}
	saveRoundBuckets(w, p.sessEnd)
	saveRoundCounts(w, p.rejoins)
}

// LoadState implements Checkpointer.
func (p *P2PChurn) LoadState(r *ckpt.Reader) {
	r.Section(tagP2PChurn)
	if !r.Bool() {
		return
	}
	if !p.started {
		p.init()
	}
	p.nextID = graph.NodeID(r.Varint())
	n := r.Count(stateCap)
	if r.Err() != nil {
		return
	}
	p.live = make([]graph.NodeID, n)
	p.liveIdx = make(map[graph.NodeID]int, n)
	for i := range p.live {
		v := graph.NodeID(r.Varint())
		p.live[i] = v
		p.liveIdx[v] = i
	}
	p.nbrs = make(map[graph.NodeID][]graph.NodeID, n)
	for _, v := range p.live {
		deg := r.Count(stateCap)
		if r.Err() != nil {
			return
		}
		row := make([]graph.NodeID, deg)
		for i := range row {
			row[i] = graph.NodeID(r.Varint())
		}
		p.nbrs[v] = row
	}
	p.sessEnd = loadRoundBuckets(r)
	p.rejoins = loadRoundCounts(r)
}

// saveRoundBuckets serializes a round-keyed id-bucket map with sorted
// round keys (bucket contents verbatim — their order is append order
// and feeds departure processing).
func saveRoundBuckets(w *ckpt.Writer, m map[int][]graph.NodeID) {
	rounds := make([]int, 0, len(m))
	for r := range m {
		rounds = append(rounds, r)
	}
	slices.Sort(rounds)
	w.Int(len(rounds))
	for _, rd := range rounds {
		w.Int(rd)
		ids := m[rd]
		w.Int(len(ids))
		for _, v := range ids {
			w.Varint(int64(v))
		}
	}
}

func loadRoundBuckets(r *ckpt.Reader) map[int][]graph.NodeID {
	n := r.Count(stateCap)
	if r.Err() != nil {
		return nil
	}
	m := make(map[int][]graph.NodeID, n)
	for i := 0; i < n; i++ {
		rd := r.Int()
		cnt := r.Count(stateCap)
		if r.Err() != nil {
			return nil
		}
		ids := make([]graph.NodeID, cnt)
		for j := range ids {
			ids[j] = graph.NodeID(r.Varint())
		}
		m[rd] = ids
	}
	return m
}

// saveRoundCounts serializes a round-keyed counter map with sorted
// round keys.
func saveRoundCounts(w *ckpt.Writer, m map[int]int) {
	rounds := make([]int, 0, len(m))
	for r := range m {
		rounds = append(rounds, r)
	}
	slices.Sort(rounds)
	w.Int(len(rounds))
	for _, rd := range rounds {
		w.Int(rd)
		w.Int(m[rd])
	}
}

func loadRoundCounts(r *ckpt.Reader) map[int]int {
	n := r.Count(stateCap)
	if r.Err() != nil {
		return nil
	}
	m := make(map[int]int, n)
	for i := 0; i < n; i++ {
		rd := r.Int()
		m[rd] = r.Int()
	}
	return m
}

// SaveState implements Checkpointer. Only the consumed-round count is
// state; LoadState fast-forwards a freshly opened source by that many
// rounds, re-validating the prefix and rebuilding the decoder's
// present-set as a side effect. A stream that has already surfaced a
// decode error refuses to checkpoint — resuming a failed replay would
// silently freeze the topology.
func (s *ScriptedStream) SaveState(w *ckpt.Writer) {
	w.Section(tagScriptedStream)
	if s.err != nil {
		w.Fail(fmt.Errorf("adversary: cannot checkpoint errored trace replay: %w", s.err))
		return
	}
	w.Int(s.consumed)
	w.Bool(s.done)
}

// LoadState implements Checkpointer. The receiver must wrap a freshly
// opened source positioned at its first round.
func (s *ScriptedStream) LoadState(r *ckpt.Reader) {
	r.Section(tagScriptedStream)
	consumed := r.Count(stateCap)
	done := r.Bool()
	if r.Err() != nil {
		return
	}
	for i := 0; i < consumed; i++ {
		if _, _, _, err := s.src.NextDeltas(); err != nil {
			r.Fail(fmt.Errorf("adversary: trace ended at round %d/%d while resuming: %w", i, consumed, err))
			return
		}
	}
	s.consumed = consumed
	s.done = done
}

// Interface conformance.
var (
	_ Checkpointer = (*Churn)(nil)
	_ Checkpointer = (*EdgeMarkov)(nil)
	_ Checkpointer = (*P2PChurn)(nil)
	_ Checkpointer = (*ScriptedStream)(nil)
)
