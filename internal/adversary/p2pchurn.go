package adversary

import (
	"slices"

	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
)

// MassDeparture schedules a targeted churn event: at the given round the
// Frac·|live| highest-degree live nodes (ties broken by id) depart
// together — the adversarial "take out the hubs" attack from the P2P
// churn literature.
type MassDeparture struct {
	Round int
	Frac  float64
}

// P2PChurn models a peer-to-peer overlay under session churn, after
// Augustine et al.'s dynamic P2P network model (PAPERS.md): nodes join
// over time, connect to a few random live peers, stay for a heavy-tailed
// (Pareto) session length, then depart — taking all their edges with
// them — and later rejoin as a fresh identity. Scheduled MassDeparture
// events additionally remove the highest-degree peers at once.
//
// Departures cannot "sleep" a node — the model's wake-ups are monotone —
// so a departed node simply keeps its (frozen) state with no edges,
// forever, and the rejoining peer is a brand-new node id. Fresh ids come
// from a bump allocator over the N-id universe; once it is exhausted,
// joins stop silently, so N bounds the total number of sessions across
// the run, not the concurrent population (size the universe accordingly,
// e.g. N ≥ Init + rounds·JoinPerRound).
//
// P2PChurn is delta-native and deterministic for any worker count: every
// round is emitted as a sorted edge diff from reused buffers, all
// randomness comes from per-round PRF streams keyed by Seed, and the only
// maps are used for keyed access (never ranged).
type P2PChurn struct {
	// N is the id-universe size (must match the engine's).
	N int
	// Init nodes are live at round 1 (default min(N, 64)).
	Init int
	// JoinPerRound fresh nodes join every round (besides rejoins).
	JoinPerRound int
	// Degree is how many random live peers a joining node connects to
	// (default 3; capped by the live population).
	Degree int
	// SessionAlpha is the Pareto tail exponent of session lengths
	// (default 1.5 — heavy-tailed, infinite variance).
	SessionAlpha float64
	// SessionMin is the minimum session length in rounds (default 8);
	// sessions last max(SessionMin, ⌊SessionMin·Pareto(SessionAlpha)⌋).
	SessionMin int
	// RejoinDelay is how many rounds after a departure the peer behind it
	// rejoins with a fresh id (default 4; <0 disables rejoining).
	RejoinDelay int
	// Events are scheduled targeted mass departures.
	Events []MassDeparture
	Seed   uint64

	started bool
	nextID  graph.NodeID
	// live lists the live node ids in deterministic (insertion/swap)
	// order; liveIdx maps id → position for O(1) membership and removal.
	live    []graph.NodeID
	liveIdx map[graph.NodeID]int
	// nbrs is the adjacency of live nodes (slices in deterministic
	// insertion order; the map is only ever accessed by key).
	nbrs map[graph.NodeID][]graph.NodeID
	// sessEnd buckets node ids by their scheduled departure round;
	// rejoins counts fresh joins owed at a round. Both are keyed by
	// round and consumed (deleted) as rounds pass.
	sessEnd map[int][]graph.NodeID
	rejoins map[int]int
	// eventAt is Events re-indexed by round.
	eventAt map[int]float64

	wakeBuf []graph.NodeID
	addBuf  []graph.EdgeKey
	remBuf  []graph.EdgeKey
	topBuf  []graph.NodeID // scratch for mass-departure target selection
}

func (p *P2PChurn) defaults() (init, degree, sessMin, rejoin int, alpha float64) {
	init = p.Init
	if init <= 0 {
		init = 64
	}
	if init > p.N {
		init = p.N
	}
	degree = p.Degree
	if degree <= 0 {
		degree = 3
	}
	sessMin = p.SessionMin
	if sessMin <= 0 {
		sessMin = 8
	}
	rejoin = p.RejoinDelay
	if rejoin == 0 {
		rejoin = 4
	}
	alpha = p.SessionAlpha
	if alpha <= 0 {
		alpha = 1.5
	}
	return init, degree, sessMin, rejoin, alpha
}

func (p *P2PChurn) init() {
	p.liveIdx = make(map[graph.NodeID]int)
	p.nbrs = make(map[graph.NodeID][]graph.NodeID)
	p.sessEnd = make(map[int][]graph.NodeID)
	p.rejoins = make(map[int]int)
	p.eventAt = make(map[int]float64)
	for _, ev := range p.Events {
		p.eventAt[ev.Round] = ev.Frac
	}
	p.started = true
}

// sessionLen draws a heavy-tailed session length in rounds.
func (p *P2PChurn) sessionLen(s *prf.Stream, sessMin int, alpha float64) int {
	l := int(float64(sessMin) * s.Pareto(alpha))
	if l < sessMin {
		l = sessMin
	}
	return l
}

// join brings one fresh node up: allocates the next id, wakes it,
// connects it to up to degree distinct random live peers and schedules
// its departure. Returns false when the id universe is exhausted.
func (p *P2PChurn) join(s *prf.Stream, round, degree, sessMin int, alpha float64, wake []graph.NodeID, adds []graph.EdgeKey) ([]graph.NodeID, []graph.EdgeKey, bool) {
	if int(p.nextID) >= p.N {
		return wake, adds, false
	}
	v := p.nextID
	p.nextID++
	wake = append(wake, v)
	want := degree
	if want > len(p.live) {
		want = len(p.live)
	}
	for picked := 0; picked < want; {
		u := p.live[s.Intn(len(p.live))]
		if slices.Contains(p.nbrs[v], u) {
			continue // already a neighbor; live peers are distinct from v by construction
		}
		p.nbrs[v] = append(p.nbrs[v], u)
		p.nbrs[u] = append(p.nbrs[u], v)
		adds = append(adds, graph.MakeEdgeKey(u, v))
		picked++
	}
	p.liveIdx[v] = len(p.live)
	p.live = append(p.live, v)
	end := round + p.sessionLen(s, sessMin, alpha)
	p.sessEnd[end] = append(p.sessEnd[end], v)
	return wake, adds, true
}

// departID removes live node v: emits removals for all its edges, drops
// it from the neighbors' adjacency and from the live list, and schedules
// a fresh-id rejoin. Callers must have verified liveIdx membership.
func (p *P2PChurn) departID(v graph.NodeID, round, rejoin int, removes []graph.EdgeKey) []graph.EdgeKey {
	for _, u := range p.nbrs[v] {
		removes = append(removes, graph.MakeEdgeKey(u, v))
		// Swap-delete v from u's adjacency; if u departs later this
		// round its list no longer holds v, so no edge is emitted twice.
		nu := p.nbrs[u]
		i := slices.Index(nu, v)
		nu[i] = nu[len(nu)-1]
		p.nbrs[u] = nu[:len(nu)-1]
	}
	delete(p.nbrs, v)
	i := p.liveIdx[v]
	last := len(p.live) - 1
	p.live[i] = p.live[last]
	p.liveIdx[p.live[i]] = i
	p.live = p.live[:last]
	delete(p.liveIdx, v)
	if rejoin >= 0 {
		p.rejoins[round+rejoin]++
	}
	return removes
}

// massTargets selects the ⌈frac·|live|⌉ highest-degree live nodes,
// ties broken by smaller id first.
func (p *P2PChurn) massTargets(frac float64) []graph.NodeID {
	k := int(frac*float64(len(p.live)) + 0.999999)
	if k <= 0 {
		return nil
	}
	if k > len(p.live) {
		k = len(p.live)
	}
	p.topBuf = append(p.topBuf[:0], p.live...)
	slices.SortFunc(p.topBuf, func(a, b graph.NodeID) int {
		da, db := len(p.nbrs[a]), len(p.nbrs[b])
		if da != db {
			return db - da
		}
		return int(a) - int(b)
	})
	return p.topBuf[:k]
}

// Step implements Adversary. Every round is a delta step whose wake and
// diff buffers are reused on the next call.
func (p *P2PChurn) Step(view View) Step {
	if !p.started {
		p.init()
	}
	init, degree, sessMin, rejoin, alpha := p.defaults()
	round := view.Round()
	s := advStream(p.Seed, round)
	wake := p.wakeBuf[:0]
	adds := p.addBuf[:0]
	removes := p.remBuf[:0]

	if round == 1 {
		// The initial population joins all at once: node i connects to
		// random peers among nodes 0..i-1, the standard random-attachment
		// bootstrap.
		for i := 0; i < init; i++ {
			var ok bool
			if wake, adds, ok = p.join(&s, round, degree, sessMin, alpha, wake, adds); !ok {
				break
			}
		}
	} else {
		// Departures first (session expiries, then the scheduled mass
		// event), then joins — a rejoining peer can connect to survivors
		// of the same round's churn.
		for _, v := range p.sessEnd[round] {
			if _, ok := p.liveIdx[v]; !ok {
				continue // already taken out by a mass event
			}
			removes = p.departID(v, round, rejoin, removes)
		}
		delete(p.sessEnd, round)
		if frac, ok := p.eventAt[round]; ok {
			for _, v := range p.massTargets(frac) {
				removes = p.departID(v, round, rejoin, removes)
			}
		}
		joins := p.JoinPerRound + p.rejoins[round]
		delete(p.rejoins, round)
		for i := 0; i < joins; i++ {
			var ok bool
			if wake, adds, ok = p.join(&s, round, degree, sessMin, alpha, wake, adds); !ok {
				break
			}
		}
	}

	slices.Sort(adds)
	slices.Sort(removes)
	p.wakeBuf, p.addBuf, p.remBuf = wake, adds, removes
	return Step{Wake: wake, EdgeAdds: adds, EdgeRemoves: removes}
}
