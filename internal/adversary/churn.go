package adversary

import (
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
)

// Churn is the constant-turnover adversary motivating the paper: starting
// from a base graph it deletes Del random existing edges and inserts Add
// random fresh edges in every round, forever. There is no recovery period —
// algorithms must give guarantees while this is happening.
type Churn struct {
	Base *graph.Graph
	Add  int
	Del  int
	Seed uint64

	n       int
	keys    []graph.EdgeKey
	keyIdx  map[graph.EdgeKey]int
	started bool
}

func (c *Churn) init() {
	c.n = c.Base.N()
	c.keyIdx = make(map[graph.EdgeKey]int)
	c.Base.EachEdge(func(u, v graph.NodeID) {
		k := graph.MakeEdgeKey(u, v)
		c.keyIdx[k] = len(c.keys)
		c.keys = append(c.keys, k)
	})
	c.started = true
}

func (c *Churn) removeRandom(s *prf.Stream) {
	if len(c.keys) == 0 {
		return
	}
	i := s.Intn(len(c.keys))
	k := c.keys[i]
	last := len(c.keys) - 1
	c.keys[i] = c.keys[last]
	c.keyIdx[c.keys[i]] = i
	c.keys = c.keys[:last]
	delete(c.keyIdx, k)
}

func (c *Churn) addRandom(s *prf.Stream) {
	for attempt := 0; attempt < 64; attempt++ {
		u := graph.NodeID(s.Intn(c.n))
		v := graph.NodeID(s.Intn(c.n))
		if u == v {
			continue
		}
		k := graph.MakeEdgeKey(u, v)
		if _, ok := c.keyIdx[k]; ok {
			continue
		}
		c.keyIdx[k] = len(c.keys)
		c.keys = append(c.keys, k)
		return
	}
}

// Step implements Adversary.
func (c *Churn) Step(v View) Step {
	if !c.started {
		c.init()
	}
	st := Step{}
	if v.Round() == 1 {
		st.Wake = AllNodes(c.n)
	} else {
		s := advStream(c.Seed, v.Round())
		for i := 0; i < c.Del; i++ {
			c.removeRandom(&s)
		}
		for i := 0; i < c.Add; i++ {
			c.addRandom(&s)
		}
	}
	// keys is duplicate-free by construction; FromEdges sorts a copy and
	// assembles the CSR graph without touching the working set.
	st.G = graph.FromEdges(c.n, c.keys)
	return st
}

// EdgeMarkov flips the edges of a footprint graph independently each round:
// a present edge disappears with probability POff, an absent footprint edge
// appears with probability POn. This is the standard edge-Markov
// dynamic-graph process restricted to a footprint, an oblivious adversary
// by construction (it never reads the view's outputs).
type EdgeMarkov struct {
	Footprint *graph.Graph
	POn       float64
	POff      float64
	Seed      uint64

	// on[i] mirrors footprint edge keys[i]; iterating the slice (not a
	// map) keeps the per-round coin order deterministic and allocation-free.
	keys    []graph.EdgeKey
	on      []bool
	scratch []graph.EdgeKey
	started bool
}

func (m *EdgeMarkov) init() {
	m.keys = m.Footprint.Edges()
	m.on = make([]bool, len(m.keys))
	for i := range m.on {
		m.on[i] = true
	}
	m.started = true
}

// Step implements Adversary.
func (m *EdgeMarkov) Step(v View) Step {
	if !m.started {
		m.init()
	}
	st := Step{}
	if v.Round() == 1 {
		st.Wake = AllNodes(m.Footprint.N())
	} else {
		s := advStream(m.Seed, v.Round())
		for i, isOn := range m.on {
			if isOn {
				if s.Bernoulli(m.POff) {
					m.on[i] = false
				}
			} else if s.Bernoulli(m.POn) {
				m.on[i] = true
			}
		}
	}
	live := m.scratch[:0]
	for i, isOn := range m.on {
		if isOn {
			live = append(live, m.keys[i])
		}
	}
	m.scratch = live
	// keys is sorted (Edges order), so the live subsequence is too.
	st.G = graph.FromSortedEdges(m.Footprint.N(), live)
	return st
}
