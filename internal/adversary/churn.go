package adversary

import (
	"slices"

	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
)

// Churn is the constant-turnover adversary motivating the paper: starting
// from a base graph it deletes Del random existing edges and inserts Add
// random fresh edges in every round, forever. There is no recovery period —
// algorithms must give guarantees while this is happening.
//
// Churn is delta-native: each round's random insertions and deletions are
// the emitted edge diff (round 1 emits the base edge set), so no per-round
// graph is materialized and downstream cost scales with Add+Del, not with
// the graph size.
type Churn struct {
	Base *graph.Graph
	Add  int
	Del  int
	Seed uint64

	n       int
	keys    []graph.EdgeKey
	keyIdx  map[graph.EdgeKey]int
	addBuf  []graph.EdgeKey
	remBuf  []graph.EdgeKey
	started bool
}

func (c *Churn) init() {
	c.n = c.Base.N()
	c.keyIdx = make(map[graph.EdgeKey]int)
	for _, k := range c.Base.EdgeKeys() {
		c.keyIdx[k] = len(c.keys)
		c.keys = append(c.keys, k)
	}
	c.started = true
}

func (c *Churn) removeRandom(s *prf.Stream) (graph.EdgeKey, bool) {
	if len(c.keys) == 0 {
		return 0, false
	}
	i := s.Intn(len(c.keys))
	k := c.keys[i]
	last := len(c.keys) - 1
	c.keys[i] = c.keys[last]
	c.keyIdx[c.keys[i]] = i
	c.keys = c.keys[:last]
	delete(c.keyIdx, k)
	return k, true
}

func (c *Churn) addRandom(s *prf.Stream) (graph.EdgeKey, bool) {
	for attempt := 0; attempt < 64; attempt++ {
		u := graph.NodeID(s.Intn(c.n))
		v := graph.NodeID(s.Intn(c.n))
		if u == v {
			continue
		}
		k := graph.MakeEdgeKey(u, v)
		if _, ok := c.keyIdx[k]; ok {
			continue
		}
		c.keyIdx[k] = len(c.keys)
		c.keys = append(c.keys, k)
		return k, true
	}
	return 0, false
}

// Step implements Adversary. Rounds after the first return delta steps
// whose add/remove buffers are reused on the next call.
func (c *Churn) Step(v View) Step {
	if !c.started {
		c.init()
	}
	if v.Round() == 1 {
		// The base edge set is round 1's diff from the empty G_0; the
		// immutable base graph's key view needs no copy.
		return Step{Wake: AllNodes(c.n), EdgeAdds: c.Base.EdgeKeys()}
	}
	s := advStream(c.Seed, v.Round())
	removes := c.remBuf[:0]
	adds := c.addBuf[:0]
	for i := 0; i < c.Del; i++ {
		if k, ok := c.removeRandom(&s); ok {
			removes = append(removes, k)
		}
	}
	for i := 0; i < c.Add; i++ {
		if k, ok := c.addRandom(&s); ok {
			adds = append(adds, k)
		}
	}
	slices.Sort(adds)
	slices.Sort(removes)
	// An edge deleted and re-inserted in the same round is a net no-op:
	// cancel the pair so the diff is an exact set difference.
	adds, removes = cancelCommon(adds, removes)
	c.addBuf, c.remBuf = adds, removes
	return Step{EdgeAdds: adds, EdgeRemoves: removes}
}

// cancelCommon removes keys present in both sorted lists, in place.
func cancelCommon(a, b []graph.EdgeKey) ([]graph.EdgeKey, []graph.EdgeKey) {
	i, j := 0, 0
	wa, wb := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			a[wa] = a[i]
			wa++
			i++
		case a[i] > b[j]:
			b[wb] = b[j]
			wb++
			j++
		default:
			i++
			j++
		}
	}
	wa += copy(a[wa:], a[i:])
	wb += copy(b[wb:], b[j:])
	return a[:wa], b[:wb]
}

// EdgeMarkov flips the edges of a footprint graph independently each round:
// a present edge disappears with probability POff, an absent footprint edge
// appears with probability POn. This is the standard edge-Markov
// dynamic-graph process restricted to a footprint, an oblivious adversary
// by construction (it never reads the view's outputs).
//
// EdgeMarkov is the canonical delta-native adversary: the coin flips are
// the topology diff. Each round emits exactly the edges that flipped on
// and off (in footprint order, which is canonical key order), so a round
// costs O(|footprint|) coin draws and O(flips) downstream.
type EdgeMarkov struct {
	Footprint *graph.Graph
	POn       float64
	POff      float64
	Seed      uint64

	// on[i] mirrors footprint edge keys[i]; iterating the slice (not a
	// map) keeps the per-round coin order deterministic and allocation-free.
	keys    []graph.EdgeKey
	on      []bool
	addBuf  []graph.EdgeKey
	remBuf  []graph.EdgeKey
	started bool
}

func (m *EdgeMarkov) init() {
	m.keys = m.Footprint.Edges()
	m.on = make([]bool, len(m.keys))
	for i := range m.on {
		m.on[i] = true
	}
	m.started = true
}

// Step implements Adversary. Rounds after the first return delta steps
// whose add/remove buffers are reused on the next call.
func (m *EdgeMarkov) Step(v View) Step {
	if !m.started {
		m.init()
	}
	if v.Round() == 1 {
		return Step{Wake: AllNodes(m.Footprint.N()), EdgeAdds: m.keys}
	}
	s := advStream(m.Seed, v.Round())
	adds := m.addBuf[:0]
	removes := m.remBuf[:0]
	for i, isOn := range m.on {
		if isOn {
			if s.Bernoulli(m.POff) {
				m.on[i] = false
				removes = append(removes, m.keys[i])
			}
		} else if s.Bernoulli(m.POn) {
			m.on[i] = true
			adds = append(adds, m.keys[i])
		}
	}
	m.addBuf, m.remBuf = adds, removes
	// keys is sorted (Edges order), so the flip subsequences are too.
	return Step{EdgeAdds: adds, EdgeRemoves: removes}
}
