package adversary

import (
	"slices"

	"dynlocal/internal/graph"
)

// LocalStatic wraps an inner adversary and freezes the topology around a
// set of protected nodes so that the locally-static guarantees (property
// B.2 and Theorem 1.1(2)) become testable: for each protected node v, the
// induced subgraph on its α-neighborhood G_l[N^α(v)] is identical in every
// round, while the inner adversary churns the rest of the graph freely.
//
// The freeze is implemented conservatively: let B = ∪_v Ball(Base, v, α).
// Every round, edges of the inner topology incident to B are discarded and
// replaced by the Base edges incident to B. Then (a) all paths of length
// ≤ α from a protected node run through frozen nodes, so N^α(v) is the
// Base ball every round, and (b) all edges induced on it are Base edges.
//
// LocalStatic is delta-native and composes with either step kind from the
// inner adversary: the frozen zone never changes after round 1, so the
// wrapper's diff is simply the inner diff filtered to edges with no frozen
// endpoint (inner diffs are taken as given from delta steps, or recovered
// by a linear merge for materialized inner steps), plus the frozen base
// edges once in round 1.
type LocalStatic struct {
	Inner     Adversary
	Base      *graph.Graph
	Protected []graph.NodeID
	Alpha     int

	frozen   []bool // node in B
	baseEdge []graph.EdgeKey
	// innerSet mirrors the inner adversary's topology after its last
	// step, so diffs stay exact even when the inner switches between
	// delta and materialized steps mid-run (ConflictInjector does).
	innerSet map[graph.EdgeKey]struct{}
	addBuf   []graph.EdgeKey
	remBuf   []graph.EdgeKey
	diffAdd  []graph.EdgeKey
	diffRem  []graph.EdgeKey
	started  bool
}

func (l *LocalStatic) init() {
	l.frozen = make([]bool, l.Base.N())
	for _, v := range l.Protected {
		for _, u := range graph.Ball(l.Base, v, l.Alpha) {
			l.frozen[u] = true
		}
	}
	for _, k := range l.Base.EdgeKeys() {
		u, v := k.Nodes()
		if l.frozen[u] || l.frozen[v] {
			l.baseEdge = append(l.baseEdge, k)
		}
	}
	l.innerSet = make(map[graph.EdgeKey]struct{})
	l.started = true
}

// FrozenZone returns the node set whose incident edges are frozen.
func (l *LocalStatic) FrozenZone() []graph.NodeID {
	if !l.started {
		l.init()
	}
	var out []graph.NodeID
	for v, f := range l.frozen {
		if f {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// innerDeltas returns the inner step's edge diff — passed through for
// delta steps, synthesized for materialized steps — while keeping
// innerSet an exact mirror of the inner topology, so the two step kinds
// may alternate freely. Delta steps cost O(changes); materialized steps
// cost O(|E_r|), which is what a materializing inner costs anyway.
func (l *LocalStatic) innerDeltas(inner *Step) (adds, removes []graph.EdgeKey) {
	if inner.G == nil {
		for _, k := range inner.EdgeAdds {
			l.innerSet[k] = struct{}{}
		}
		for _, k := range inner.EdgeRemoves {
			delete(l.innerSet, k)
		}
		return inner.EdgeAdds, inner.EdgeRemoves
	}
	// Adds: edges of the graph missing from the mirror (sorted, being a
	// subsequence of the sorted key view). Removes: mirror entries not
	// consumed by the scan — deleted as cur edges match, what remains in
	// the mirror afterwards is exactly the removed set.
	adds = l.diffAdd[:0]
	cur := inner.G.EdgeKeys()
	for _, k := range cur {
		if _, ok := l.innerSet[k]; ok {
			delete(l.innerSet, k)
		} else {
			adds = append(adds, k)
		}
	}
	removes = l.diffRem[:0]
	for k := range l.innerSet {
		removes = append(removes, k)
	}
	slices.Sort(removes)
	l.diffAdd, l.diffRem = adds, removes
	// Rebuild the mirror to the new topology.
	clear(l.innerSet)
	for _, k := range cur {
		l.innerSet[k] = struct{}{}
	}
	return adds, removes
}

// Step implements Adversary.
func (l *LocalStatic) Step(v View) Step {
	if !l.started {
		l.init()
	}
	inner := l.Inner.Step(v)
	innerAdds, innerRemoves := l.innerDeltas(&inner)
	// Surviving inner diff entries (no frozen endpoint); a delta step's
	// inner additions within the frozen zone are dropped exactly as the
	// materialized filter dropped the edges themselves.
	adds := l.addBuf[:0]
	for _, k := range innerAdds {
		u, w := k.Nodes()
		if !l.frozen[u] && !l.frozen[w] {
			adds = append(adds, k)
		}
	}
	removes := l.remBuf[:0]
	for _, k := range innerRemoves {
		u, w := k.Nodes()
		if !l.frozen[u] && !l.frozen[w] {
			removes = append(removes, k)
		}
	}
	st := Step{Wake: inner.Wake}
	if v.Round() == 1 {
		// The frozen base edges appear once; they are disjoint from the
		// filtered inner edges (≥ 1 frozen endpoint vs none), so a sorted
		// merge of the two lists is the round-1 diff. The frozen zone must
		// be awake from the start: its topology is pinned from round 1.
		adds = mergeSortedKeys(adds, l.baseEdge)
		st.Wake = mergeWake(st.Wake, l.FrozenZone())
	}
	l.addBuf, l.remBuf = adds, removes
	st.EdgeAdds, st.EdgeRemoves = adds, removes
	return st
}

// mergeSortedKeys merges two sorted, disjoint key lists into one sorted
// list; a fresh slice is allocated whenever b is non-empty (only hit in
// round 1, merging the frozen base edges).
func mergeSortedKeys(a, b []graph.EdgeKey) []graph.EdgeKey {
	if len(b) == 0 {
		return a
	}
	out := make([]graph.EdgeKey, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func mergeWake(a, b []graph.NodeID) []graph.NodeID {
	seen := make(map[graph.NodeID]bool, len(a)+len(b))
	var out []graph.NodeID
	for _, v := range a {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range b {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// ConflictInjector wraps an inner adversary and, from round MinRound on,
// repeatedly inserts edges between pairs of nodes that currently share the
// same output — the targeted attack of experiment E2 ("any conflict between
// two nodes caused by a newly inserted edge is resolved within T rounds").
// It is ρ-oblivious for the engine's configured lag: pair selection uses
// only View.DelayedOutputs.
//
// Injected edges persist, so an unresolved conflict would eventually enter
// the intersection graph and be flagged by the T-dynamic checker. The
// wrapper resolves delta-native inner steps through a Resolver (it needs
// the materialized inner graph for duplicate checks); before the first
// injection it passes inner steps through unchanged.
type ConflictInjector struct {
	Inner    Adversary
	Rate     int // injection attempts per round
	MinRound int
	Seed     uint64

	res      *Resolver
	injected []graph.EdgeKey
	have     map[graph.EdgeKey]bool
	scratch  []graph.EdgeKey
	// Injections records (round, edge) for experiment bookkeeping.
	Injections []Injection
}

// Injection records one injected conflict edge.
type Injection struct {
	Round int
	Edge  graph.EdgeKey
}

// Step implements Adversary.
func (ci *ConflictInjector) Step(v View) Step {
	if ci.have == nil {
		ci.have = make(map[graph.EdgeKey]bool)
		ci.res = NewResolver(v.N())
	}
	inner := ci.Inner.Step(v)
	innerG, _, _ := ci.res.Resolve(&inner)
	r := v.Round()
	out := v.DelayedOutputs()
	if r >= ci.MinRound && out != nil {
		s := advStream(ci.Seed, r)
		// Group nodes by output value.
		groups := make(map[int64][]graph.NodeID)
		for id, val := range out {
			if val != 0 && v.Awake(graph.NodeID(id)) {
				groups[int64(val)] = append(groups[int64(val)], graph.NodeID(id))
			}
		}
		// Collect the conflictable group values in sorted order: candidates
		// is indexed by PRF draws below, so its order must not depend on
		// map iteration (this was a real same-seed nondeterminism bug).
		vals := make([]int64, 0, len(groups))
		for val, g := range groups {
			if len(g) >= 2 {
				vals = append(vals, val)
			}
		}
		slices.Sort(vals)
		candidates := make([][]graph.NodeID, 0, len(vals))
		for _, val := range vals {
			candidates = append(candidates, groups[val])
		}
		for i := 0; i < ci.Rate && len(candidates) > 0; i++ {
			g := candidates[s.Intn(len(candidates))]
			a := g[s.Intn(len(g))]
			b := g[s.Intn(len(g))]
			if a == b {
				continue
			}
			k := graph.MakeEdgeKey(a, b)
			if ci.have[k] || innerG.HasEdge(a, b) {
				continue
			}
			ci.have[k] = true
			ci.injected = append(ci.injected, k)
			ci.Injections = append(ci.Injections, Injection{Round: r, Edge: k})
		}
	}
	if len(ci.injected) == 0 {
		return inner
	}
	keys := innerG.AppendEdges(ci.scratch[:0])
	keys = append(keys, ci.injected...)
	ci.scratch = keys
	return Step{G: graph.FromEdges(innerG.N(), keys), Wake: inner.Wake}
}
