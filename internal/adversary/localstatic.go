package adversary

import (
	"dynlocal/internal/graph"
)

// LocalStatic wraps an inner adversary and freezes the topology around a
// set of protected nodes so that the locally-static guarantees (property
// B.2 and Theorem 1.1(2)) become testable: for each protected node v, the
// induced subgraph on its α-neighborhood G_l[N^α(v)] is identical in every
// round, while the inner adversary churns the rest of the graph freely.
//
// The freeze is implemented conservatively: let B = ∪_v Ball(Base, v, α).
// Every round, edges of the inner graph incident to B are discarded and
// replaced by the Base edges incident to B. Then (a) all paths of length
// ≤ α from a protected node run through frozen nodes, so N^α(v) is the
// Base ball every round, and (b) all edges induced on it are Base edges.
type LocalStatic struct {
	Inner     Adversary
	Base      *graph.Graph
	Protected []graph.NodeID
	Alpha     int

	frozen   []bool // node in B
	baseEdge []graph.EdgeKey
	scratch  []graph.EdgeKey
	started  bool
}

func (l *LocalStatic) init() {
	l.frozen = make([]bool, l.Base.N())
	for _, v := range l.Protected {
		for _, u := range graph.Ball(l.Base, v, l.Alpha) {
			l.frozen[u] = true
		}
	}
	l.Base.EachEdge(func(u, v graph.NodeID) {
		if l.frozen[u] || l.frozen[v] {
			l.baseEdge = append(l.baseEdge, graph.MakeEdgeKey(u, v))
		}
	})
	l.started = true
}

// FrozenZone returns the node set whose incident edges are frozen.
func (l *LocalStatic) FrozenZone() []graph.NodeID {
	if !l.started {
		l.init()
	}
	var out []graph.NodeID
	for v, f := range l.frozen {
		if f {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// Step implements Adversary.
func (l *LocalStatic) Step(v View) Step {
	if !l.started {
		l.init()
	}
	inner := l.Inner.Step(v)
	// Surviving inner edges (no frozen endpoint) and frozen base edges
	// (>= 1 frozen endpoint) are disjoint by construction; FromEdges
	// sorts and dedups anyway.
	keys := l.scratch[:0]
	inner.G.EachEdge(func(x, y graph.NodeID) {
		if !l.frozen[x] && !l.frozen[y] {
			keys = append(keys, graph.MakeEdgeKey(x, y))
		}
	})
	keys = append(keys, l.baseEdge...)
	l.scratch = keys
	st := Step{G: graph.FromEdges(l.Base.N(), keys), Wake: inner.Wake}
	if v.Round() == 1 {
		// The frozen zone must be awake from the start: its topology is
		// pinned from round 1.
		st.Wake = mergeWake(st.Wake, l.FrozenZone())
	}
	return st
}

func mergeWake(a, b []graph.NodeID) []graph.NodeID {
	seen := make(map[graph.NodeID]bool, len(a)+len(b))
	var out []graph.NodeID
	for _, v := range a {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range b {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// ConflictInjector wraps an inner adversary and, from round MinRound on,
// repeatedly inserts edges between pairs of nodes that currently share the
// same output — the targeted attack of experiment E2 ("any conflict between
// two nodes caused by a newly inserted edge is resolved within T rounds").
// It is ρ-oblivious for the engine's configured lag: pair selection uses
// only View.DelayedOutputs.
//
// Injected edges persist, so an unresolved conflict would eventually enter
// the intersection graph and be flagged by the T-dynamic checker.
type ConflictInjector struct {
	Inner    Adversary
	Rate     int // injection attempts per round
	MinRound int
	Seed     uint64

	injected []graph.EdgeKey
	have     map[graph.EdgeKey]bool
	scratch  []graph.EdgeKey
	// Injections records (round, edge) for experiment bookkeeping.
	Injections []Injection
}

// Injection records one injected conflict edge.
type Injection struct {
	Round int
	Edge  graph.EdgeKey
}

// Step implements Adversary.
func (ci *ConflictInjector) Step(v View) Step {
	if ci.have == nil {
		ci.have = make(map[graph.EdgeKey]bool)
	}
	inner := ci.Inner.Step(v)
	r := v.Round()
	out := v.DelayedOutputs()
	if r >= ci.MinRound && out != nil {
		s := advStream(ci.Seed, r)
		// Group nodes by output value.
		groups := make(map[int64][]graph.NodeID)
		for id, val := range out {
			if val != 0 && v.Awake(graph.NodeID(id)) {
				groups[int64(val)] = append(groups[int64(val)], graph.NodeID(id))
			}
		}
		var candidates [][]graph.NodeID
		for _, g := range groups {
			if len(g) >= 2 {
				candidates = append(candidates, g)
			}
		}
		for i := 0; i < ci.Rate && len(candidates) > 0; i++ {
			g := candidates[s.Intn(len(candidates))]
			a := g[s.Intn(len(g))]
			b := g[s.Intn(len(g))]
			if a == b {
				continue
			}
			k := graph.MakeEdgeKey(a, b)
			if ci.have[k] || inner.G.HasEdge(a, b) {
				continue
			}
			ci.have[k] = true
			ci.injected = append(ci.injected, k)
			ci.Injections = append(ci.Injections, Injection{Round: r, Edge: k})
		}
	}
	if len(ci.injected) == 0 {
		return inner
	}
	keys := inner.G.AppendEdges(ci.scratch[:0])
	keys = append(keys, ci.injected...)
	ci.scratch = keys
	return Step{G: graph.FromEdges(inner.G.N(), keys), Wake: inner.Wake}
}
