package adversary

import (
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
)

// Wakeup wraps an inner adversary with an asynchronous wake-up schedule
// (Section 2: V_0 = ∅ ⊆ V_1 ⊆ V_2 ⊆ …). Node v wakes in round
// Schedule[v] (1-based); edges of the inner topology incident to
// still-asleep nodes are suppressed. The inner adversary's own wake sets
// are ignored — the schedule is authoritative.
//
// Wakeup materializes its filtered graph each round (a suppressed edge
// must reappear when its second endpoint wakes, which is not a function
// of the inner diff alone), resolving delta-native inner steps through a
// Resolver. It is the package's reference "legacy" wrapper: the engine
// synthesizes its topology diff by edge-list merge.
type Wakeup struct {
	Inner    Adversary
	Schedule []int

	res     *Resolver
	awake   []bool
	scratch []graph.EdgeKey
	// lastRound is the last round stepped — with Schedule it determines
	// the awake set, which is how a checkpoint restore rebuilds it.
	lastRound int
}

// Step implements Adversary.
func (w *Wakeup) Step(v View) Step {
	if w.awake == nil {
		w.awake = make([]bool, len(w.Schedule))
		w.res = NewResolver(v.N())
	}
	r := v.Round()
	w.lastRound = r
	var wake []graph.NodeID
	for id, wr := range w.Schedule {
		if wr == r {
			w.awake[id] = true
			wake = append(wake, graph.NodeID(id))
		}
	}
	inner := w.Inner.Step(v)
	innerG, _, _ := w.res.Resolve(&inner)
	keys := w.scratch[:0]
	for _, k := range innerG.EdgeKeys() {
		x, y := k.Nodes()
		if w.awake[x] && w.awake[y] {
			keys = append(keys, k)
		}
	}
	w.scratch = keys
	// EdgeKeys is sorted, so the filtered subsequence is too.
	return Step{G: graph.FromSortedEdges(innerG.N(), keys), Wake: wake}
}

// StaggeredSchedule wakes perRound nodes per round in id order.
func StaggeredSchedule(n, perRound int) []int {
	if perRound < 1 {
		perRound = 1
	}
	sched := make([]int, n)
	for v := 0; v < n; v++ {
		sched[v] = v/perRound + 1
	}
	return sched
}

// UniformRandomSchedule wakes each node in a uniformly random round of
// [1, maxRound].
func UniformRandomSchedule(n, maxRound int, seed uint64) []int {
	if maxRound < 1 {
		maxRound = 1
	}
	s := prf.Make(seed, -2, 0, prf.PurposeAdversary)
	sched := make([]int, n)
	for v := range sched {
		sched[v] = 1 + s.Intn(maxRound)
	}
	return sched
}
