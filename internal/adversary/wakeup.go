package adversary

import (
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
)

// Wakeup wraps an inner adversary with an asynchronous wake-up schedule
// (Section 2: V_0 = ∅ ⊆ V_1 ⊆ V_2 ⊆ …). Node v wakes in round
// Schedule[v] (1-based); edges of the inner graph incident to still-asleep
// nodes are suppressed. The inner adversary's own wake sets are ignored —
// the schedule is authoritative.
type Wakeup struct {
	Inner    Adversary
	Schedule []int

	awake   []bool
	scratch []graph.EdgeKey
}

// Step implements Adversary.
func (w *Wakeup) Step(v View) Step {
	if w.awake == nil {
		w.awake = make([]bool, len(w.Schedule))
	}
	r := v.Round()
	var wake []graph.NodeID
	for id, wr := range w.Schedule {
		if wr == r {
			w.awake[id] = true
			wake = append(wake, graph.NodeID(id))
		}
	}
	inner := w.Inner.Step(v)
	keys := w.scratch[:0]
	inner.G.EachEdge(func(x, y graph.NodeID) {
		if w.awake[x] && w.awake[y] {
			keys = append(keys, graph.MakeEdgeKey(x, y))
		}
	})
	w.scratch = keys
	// EachEdge visits edges in canonical order, so keys is sorted.
	return Step{G: graph.FromSortedEdges(inner.G.N(), keys), Wake: wake}
}

// StaggeredSchedule wakes perRound nodes per round in id order.
func StaggeredSchedule(n, perRound int) []int {
	if perRound < 1 {
		perRound = 1
	}
	sched := make([]int, n)
	for v := 0; v < n; v++ {
		sched[v] = v/perRound + 1
	}
	return sched
}

// UniformRandomSchedule wakes each node in a uniformly random round of
// [1, maxRound].
func UniformRandomSchedule(n, maxRound int, seed uint64) []int {
	if maxRound < 1 {
		maxRound = 1
	}
	s := prf.Make(seed, -2, 0, prf.PurposeAdversary)
	sched := make([]int, n)
	for v := range sched {
		sched[v] = 1 + s.Intn(maxRound)
	}
	return sched
}
