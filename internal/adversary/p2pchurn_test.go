package adversary

import (
	"bytes"
	"errors"
	"slices"
	"testing"

	"dynlocal/internal/dyngraph"
	"dynlocal/internal/graph"
)

func testP2P(n int) *P2PChurn {
	return &P2PChurn{
		N:            n,
		Init:         n / 8,
		JoinPerRound: 2,
		Degree:       3,
		SessionAlpha: 1.5,
		SessionMin:   4,
		RejoinDelay:  2,
		Events:       []MassDeparture{{Round: 12, Frac: 0.4}},
		Seed:         23,
	}
}

// rawSteps drives an adversary through raw (unresolved) steps, deep
// copying each one, using a minimal view that only advances the round.
func rawSteps(a Adversary, n, rounds int) []Step {
	v := newFakeView(n)
	var out []Step
	for r := 1; r <= rounds; r++ {
		v.round = r
		st := a.Step(v)
		out = append(out, Step{
			Wake:        append([]graph.NodeID(nil), st.Wake...),
			EdgeAdds:    append([]graph.EdgeKey(nil), st.EdgeAdds...),
			EdgeRemoves: append([]graph.EdgeKey(nil), st.EdgeRemoves...),
		})
	}
	return out
}

func stepsEqual(a, b []Step) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !slices.Equal(a[i].Wake, b[i].Wake) ||
			!slices.Equal(a[i].EdgeAdds, b[i].EdgeAdds) ||
			!slices.Equal(a[i].EdgeRemoves, b[i].EdgeRemoves) {
			return false
		}
	}
	return true
}

// TestP2PChurnSameSeedDeterminism pins that a (parameters, seed) pair
// names exactly one step sequence, and that the seed actually matters.
func TestP2PChurnSameSeedDeterminism(t *testing.T) {
	const n, rounds = 256, 40
	a := rawSteps(testP2P(n), n, rounds)
	b := rawSteps(testP2P(n), n, rounds)
	if !stepsEqual(a, b) {
		t.Fatal("same-seed P2PChurn runs diverged")
	}
	other := testP2P(n)
	other.Seed = 99
	if stepsEqual(a, rawSteps(other, n, rounds)) {
		t.Fatal("different seeds produced identical step sequences")
	}
}

// TestP2PChurnDeltaContract folds every emitted step and verifies the
// full delta-native contract: strictly ascending keys, adds absent
// before, removes present before, edges only between woken nodes, and —
// the rejoin-with-fresh-id model — wake ids that are never reused.
func TestP2PChurnDeltaContract(t *testing.T) {
	const n, rounds = 256, 60
	adv := testP2P(n)
	v := newFakeView(n)
	present := make(map[graph.EdgeKey]bool)
	woken := make(map[graph.NodeID]bool)
	maxWake := graph.NodeID(-1)
	joins, departs := 0, 0
	for r := 1; r <= rounds; r++ {
		v.round = r
		st := adv.Step(v)
		if st.G != nil {
			t.Fatalf("round %d: P2PChurn emitted a materialized graph", r)
		}
		for _, id := range st.Wake {
			if id < 0 || int(id) >= n {
				t.Fatalf("round %d: wake id %d outside [0,%d)", r, id, n)
			}
			if woken[id] {
				t.Fatalf("round %d: node id %d woken twice — rejoin must use a fresh id", r, id)
			}
			if id <= maxWake {
				t.Fatalf("round %d: wake id %d not fresh (allocator high-water %d)", r, id, maxWake)
			}
			woken[id] = true
			maxWake = id
			joins++
		}
		for i, k := range st.EdgeAdds {
			if i > 0 && st.EdgeAdds[i-1] >= k {
				t.Fatalf("round %d: adds not strictly ascending", r)
			}
			if present[k] {
				t.Fatalf("round %d: add of present edge %v", r, k)
			}
			u, w := k.Nodes()
			if !woken[u] || !woken[w] {
				t.Fatalf("round %d: edge %v touches a node that never woke", r, k)
			}
			present[k] = true
		}
		for i, k := range st.EdgeRemoves {
			if i > 0 && st.EdgeRemoves[i-1] >= k {
				t.Fatalf("round %d: removes not strictly ascending", r)
			}
			if !present[k] {
				t.Fatalf("round %d: remove of absent edge %v", r, k)
			}
			delete(present, k)
		}
		departs += len(st.EdgeRemoves)
	}
	if joins <= adv.Init {
		t.Fatalf("no churn joins happened beyond the initial population (%d)", joins)
	}
	if departs == 0 {
		t.Fatal("no departures happened in 60 rounds")
	}
}

// TestP2PChurnMassDeparture pins the targeted event: at the scheduled
// round the then-highest-degree node loses all its edges and, being
// departed, never appears in a later add.
func TestP2PChurnMassDeparture(t *testing.T) {
	const n, rounds, eventRound = 512, 30, 15
	adv := testP2P(n)
	adv.Events = []MassDeparture{{Round: eventRound, Frac: 0.5}}
	v := newFakeView(n)
	deg := make(map[graph.NodeID]int)
	fold := func(st *Step) {
		for _, k := range st.EdgeAdds {
			u, w := k.Nodes()
			deg[u]++
			deg[w]++
		}
		for _, k := range st.EdgeRemoves {
			u, w := k.Nodes()
			deg[u]--
			deg[w]--
		}
	}
	var hub graph.NodeID
	for r := 1; r < eventRound; r++ {
		v.round = r
		st := adv.Step(v)
		fold(&st)
	}
	// The pre-event hub: highest degree, smallest id on ties — exactly the
	// node the event must take out first.
	best := -1
	for id := graph.NodeID(0); int(id) < n; id++ {
		if d := deg[id]; d > best {
			best, hub = d, id
		}
	}
	if best <= 0 {
		t.Fatal("no edges before the event round")
	}
	v.round = eventRound
	st := adv.Step(v)
	fold(&st)
	if len(st.EdgeRemoves) == 0 {
		t.Fatal("mass-departure round removed no edges")
	}
	if deg[hub] != 0 {
		t.Fatalf("hub %d still has degree %d after the mass departure", hub, deg[hub])
	}
	for r := eventRound + 1; r <= rounds; r++ {
		v.round = r
		st := adv.Step(v)
		for _, k := range st.EdgeAdds {
			u, w := k.Nodes()
			if u == hub || w == hub {
				t.Fatalf("round %d: departed hub %d got a new edge %v", r, hub, k)
			}
		}
		fold(&st)
	}
}

// TestScriptedStreamReplaysRecording round-trips P2PChurn's step sequence
// through the streaming trace plane: record every raw step with a
// StreamEncoder, replay with ScriptedStream over a StreamDecoder, and
// require the identical sequence — then empty steps (frozen topology)
// after the stream ends, with no error.
func TestScriptedStreamReplaysRecording(t *testing.T) {
	const n, rounds = 128, 25
	orig := rawSteps(testP2P(n), n, rounds)
	var buf bytes.Buffer
	enc, err := dyngraph.NewStreamEncoder(&buf, n, rounds)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range orig {
		if err := enc.WriteRound(st.Wake, st.EdgeAdds, st.EdgeRemoves); err != nil {
			t.Fatalf("recording round %d: %v", i+1, err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}

	dec, err := dyngraph.NewStreamDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ss := NewScriptedStream(dec)
	replayed := rawSteps(ss, n, rounds)
	if !stepsEqual(orig, replayed) {
		t.Fatal("streamed replay diverged from the recorded steps")
	}
	v := newFakeView(n)
	for r := rounds + 1; r <= rounds+4; r++ {
		v.round = r
		st := ss.Step(v)
		if st.G != nil || len(st.Wake) != 0 || len(st.EdgeAdds) != 0 || len(st.EdgeRemoves) != 0 {
			t.Fatalf("round %d past stream end: expected empty step, got %+v", r, st)
		}
	}
	if err := ss.Err(); err != nil {
		t.Fatalf("clean replay reported error: %v", err)
	}
}

// TestScriptedStreamSurfacesDecodeError pins the untrusted-input story:
// a stream that goes corrupt mid-replay freezes the topology (empty
// steps) and reports the decode error via Err.
func TestScriptedStreamSurfacesDecodeError(t *testing.T) {
	const n, rounds = 64, 10
	orig := rawSteps(testP2P(n), n, rounds)
	var buf bytes.Buffer
	enc, err := dyngraph.NewStreamEncoder(&buf, n, rounds)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range orig {
		if err := enc.WriteRound(st.Wake, st.EdgeAdds, st.EdgeRemoves); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	dec, err := dyngraph.NewStreamDecoder(bytes.NewReader(wire[:len(wire)-3]))
	if err != nil {
		t.Fatal(err)
	}
	ss := NewScriptedStream(dec)
	v := newFakeView(n)
	sawError := false
	for r := 1; r <= rounds+2; r++ {
		v.round = r
		st := ss.Step(v)
		if ss.Err() != nil {
			sawError = true
			if st.G != nil || len(st.Wake)+len(st.EdgeAdds)+len(st.EdgeRemoves) != 0 {
				t.Fatalf("round %d: non-empty step after decode error", r)
			}
		}
	}
	if !sawError {
		t.Fatal("truncated stream replayed without error")
	}
	if err := ss.Err(); err == nil || errors.Is(err, nil) {
		t.Fatal("Err() lost the decode error")
	}
}
