package adversary

import (
	"slices"

	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// LubyStaller is the adaptive-offline adversary of the remark after
// Lemma 5.2: "If the adversary knew the random values of round r, it
// could, e.g., delete all edges between nodes for which (v → w)_r holds."
//
// It is constructed with the engine's PRF seed, so — unlike every
// ρ-oblivious adversary — it can compute the exact random number α_v each
// undecided node will draw in the coming round (prf.Alpha is the same
// function DMis evaluates). Each round it finds the nodes that would join
// the MIS (local α-minima among undecided nodes, iterated to a fixpoint as
// deletions create new minima) and deletes all their edges to undecided
// neighbors before the round is played. Winners still join M, but can
// never inform — and therefore never dominate — a neighbor, so the
// undecided-undecided edge set H_r shrinks only by the adversary's own
// deletions instead of by the 1/3 expected fraction of Lemma 5.2.
// Experiment E13 measures the resulting stall.
type LubyStaller struct {
	Base *graph.Graph
	// Seed must equal the engine seed; Purpose must equal the purpose tag
	// under which the attacked DMis instance draws its α values
	// (prf.PurposeLubyAlpha for a standalone DMis).
	Seed    uint64
	Purpose prf.Purpose

	removed map[graph.EdgeKey]bool
	// Deleted counts the edges burned so far (experiment metric).
	Deleted int
}

// Step implements Adversary.
func (a *LubyStaller) Step(v View) Step {
	if a.removed == nil {
		a.removed = make(map[graph.EdgeKey]bool)
	}
	n := a.Base.N()
	st := Step{}
	if v.Round() == 1 {
		st.Wake = AllNodes(n)
	}
	out := v.DelayedOutputs()
	undecided := make([]bool, n)
	for id := 0; id < n; id++ {
		if out == nil {
			undecided[id] = true // round 1: everything is undecided
		} else {
			undecided[id] = out[id] == problems.Bot
		}
	}

	// Adjacency among undecided nodes in the surviving graph. The alpha
	// words and the (word, id) tie-break replicate DMis's comparison
	// bit-exactly.
	alpha := make([]uint64, n)
	for id := int32(0); id < int32(n); id++ {
		alpha[id] = prf.AlphaWord(a.Seed, id, v.Round(), a.Purpose)
	}
	adj := make(map[graph.NodeID][]graph.NodeID)
	a.Base.EachEdge(func(x, y graph.NodeID) {
		if a.removed[graph.MakeEdgeKey(x, y)] {
			return
		}
		if undecided[x] && undecided[y] {
			adj[x] = append(adj[x], y)
			adj[y] = append(adj[y], x)
		}
	})

	// Fixpoint: delete the undecided-incident edges of every would-be
	// winner; deletions can create new winners within the same round.
	for {
		var winners []graph.NodeID
		for x, nbrs := range adj {
			if len(nbrs) == 0 {
				continue
			}
			isMin := true
			for _, y := range nbrs {
				if alpha[y] < alpha[x] || (alpha[y] == alpha[x] && y < x) {
					isMin = false
					break
				}
			}
			if isMin {
				winners = append(winners, x)
			}
		}
		if len(winners) == 0 {
			break
		}
		// winners was collected in map order; sort so edge deletions and
		// the Deleted counter replay identically on every execution.
		slices.Sort(winners)
		for _, x := range winners {
			for _, y := range adj[x] {
				k := graph.MakeEdgeKey(x, y)
				if !a.removed[k] {
					a.removed[k] = true
					a.Deleted++
				}
				// Remove x from y's list.
				lst := adj[y]
				for i, z := range lst {
					if z == x {
						lst[i] = lst[len(lst)-1]
						adj[y] = lst[:len(lst)-1]
						break
					}
				}
			}
			delete(adj, x)
		}
	}

	var keys []graph.EdgeKey
	a.Base.EachEdge(func(x, y graph.NodeID) {
		if !a.removed[graph.MakeEdgeKey(x, y)] {
			keys = append(keys, graph.MakeEdgeKey(x, y))
		}
	})
	// EachEdge visits edges in canonical order, so keys is sorted.
	st.G = graph.FromSortedEdges(n, keys)
	return st
}
