package engine

import (
	"fmt"
	"runtime"
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// The engine's determinism contract (package doc): outputs and accounting
// are bit-identical for every worker count, because per-node work is keyed
// by (seed, node, round, purpose) prf streams and per-worker accounting
// folds with exact integer sums. These tests pin the contract across the
// serial-threshold boundary, across worker counts, and under the churn and
// local-static adversaries used by the experiments.

// runTrace plays rounds and records every round's outputs, deltas,
// messages and bits (all copied — the engine pools its RoundInfo buffers).
type roundTrace struct {
	outputs  [][]problems.Value
	changed  [][]graph.NodeID
	adds     [][]graph.EdgeKey
	removes  [][]graph.EdgeKey
	messages []int
	bits     []int64
}

func collectTrace(n, workers, rounds int, mkAdv func() adversary.Adversary, algo Algorithm) roundTrace {
	e := New(Config{N: n, Seed: 42, Workers: workers}, mkAdv(), algo)
	var tr roundTrace
	e.OnRound(func(info *RoundInfo) {
		tr.outputs = append(tr.outputs, append([]problems.Value(nil), info.Outputs...))
		tr.changed = append(tr.changed, append([]graph.NodeID(nil), info.Changed...))
		tr.adds = append(tr.adds, append([]graph.EdgeKey(nil), info.EdgeAdds...))
		tr.removes = append(tr.removes, append([]graph.EdgeKey(nil), info.EdgeRemoves...))
		tr.messages = append(tr.messages, info.Messages)
		tr.bits = append(tr.bits, info.Bits)
	})
	e.Run(rounds)
	return tr
}

func diffTraces(t *testing.T, label string, a, b roundTrace) {
	t.Helper()
	for r := range a.outputs {
		if a.messages[r] != b.messages[r] {
			t.Fatalf("%s: round %d messages %d vs %d", label, r+1, a.messages[r], b.messages[r])
		}
		if a.bits[r] != b.bits[r] {
			t.Fatalf("%s: round %d bits %d vs %d", label, r+1, a.bits[r], b.bits[r])
		}
		for v := range a.outputs[r] {
			if a.outputs[r][v] != b.outputs[r][v] {
				t.Fatalf("%s: round %d node %d output %d vs %d",
					label, r+1, v, a.outputs[r][v], b.outputs[r][v])
			}
		}
		if len(a.changed[r]) != len(b.changed[r]) {
			t.Fatalf("%s: round %d changed %v vs %v", label, r+1, a.changed[r], b.changed[r])
		}
		for i := range a.changed[r] {
			if a.changed[r][i] != b.changed[r][i] {
				t.Fatalf("%s: round %d changed %v vs %v", label, r+1, a.changed[r], b.changed[r])
			}
		}
		if len(a.adds[r]) != len(b.adds[r]) || len(a.removes[r]) != len(b.removes[r]) {
			t.Fatalf("%s: round %d topology delta sizes diverge", label, r+1)
		}
		for i := range a.adds[r] {
			if a.adds[r][i] != b.adds[r][i] {
				t.Fatalf("%s: round %d adds %v vs %v", label, r+1, a.adds[r], b.adds[r])
			}
		}
		for i := range a.removes[r] {
			if a.removes[r][i] != b.removes[r][i] {
				t.Fatalf("%s: round %d removes %v vs %v", label, r+1, a.removes[r], b.removes[r])
			}
		}
	}
}

func churnAdv(n int) func() adversary.Adversary {
	return func() adversary.Adversary {
		s := prf.NewStream(9, 0, 0, prf.PurposeWorkload)
		base := graph.GNP(n, 6.0/float64(n), s)
		return &adversary.Churn{Base: base, Add: n / 24, Del: n / 24, Seed: 17}
	}
}

func localStaticAdv(n int) func() adversary.Adversary {
	return func() adversary.Adversary {
		s := prf.NewStream(9, 0, 0, prf.PurposeWorkload)
		base := graph.GNP(n, 6.0/float64(n), s)
		return &adversary.LocalStatic{
			Inner:     &adversary.Churn{Base: base, Add: n / 24, Del: n / 24, Seed: 17},
			Base:      base,
			Protected: []graph.NodeID{graph.NodeID(n / 3), graph.NodeID(2 * n / 3)},
			Alpha:     2,
		}
	}
}

// TestDeterminismAcrossWorkerCounts runs the sized bit-accounting
// algorithm at N above the serial threshold under churn and local-static
// adversaries, for Workers ∈ {1, 4, GOMAXPROCS}, and requires identical
// per-round outputs, message counts and bit counts.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	const n = serialThreshold * 2
	const rounds = 20
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	advs := map[string]func() adversary.Adversary{
		"churn":        churnAdv(n),
		"local-static": localStaticAdv(n),
	}
	for name, mk := range advs {
		ref := collectTrace(n, workerCounts[0], rounds, mk, sizedAlgo{})
		for _, w := range workerCounts[1:] {
			got := collectTrace(n, w, rounds, mk, sizedAlgo{})
			diffTraces(t, fmt.Sprintf("%s workers=%d", name, w), ref, got)
		}
	}
}

// TestDeterminismAcrossSerialThreshold pins outputs across the
// serial/sharded boundary: N just below the threshold always runs serial,
// N just above runs sharded when Workers > 1 — both must agree with the
// Workers=1 run at the same N.
func TestDeterminismAcrossSerialThreshold(t *testing.T) {
	const rounds = 12
	for _, n := range []int{serialThreshold - 1, serialThreshold, serialThreshold + 1} {
		for name, mk := range map[string]func() adversary.Adversary{
			"churn":        churnAdv(n),
			"local-static": localStaticAdv(n),
		} {
			ref := collectTrace(n, 1, rounds, mk, sizedAlgo{})
			got := collectTrace(n, 4, rounds, mk, sizedAlgo{})
			diffTraces(t, fmt.Sprintf("%s n=%d", name, n), ref, got)
		}
	}
}

// TestEdgeBalancedShardsOnSkewedDegrees runs a star graph — the
// worst-case degree skew for index sharding — plus churn, and checks both
// the determinism contract and that shard bounds cover [0, n) exactly.
func TestEdgeBalancedShardsOnSkewedDegrees(t *testing.T) {
	const n = serialThreshold * 2
	mk := func() adversary.Adversary {
		return adversary.Static{G: graph.Star(n)}
	}
	ref := collectTrace(n, 1, 6, mk, sizedAlgo{})
	got := collectTrace(n, 4, 6, mk, sizedAlgo{})
	diffTraces(t, "star", ref, got)
}

func TestShardBoundsPartitionNodeSpace(t *testing.T) {
	for _, workers := range []int{2, 3, 8} {
		for _, g := range []*graph.Graph{
			graph.Star(1000),
			graph.Empty(1000),
			graph.Complete(60),
		} {
			e := New(Config{N: g.N(), Seed: 1, Workers: workers},
				adversary.Static{G: g}, degreeAlgo{})
			bounds := e.shardBounds(g)
			if len(bounds) != workers+1 || bounds[0] != 0 || bounds[len(bounds)-1] != g.N() {
				t.Fatalf("workers=%d g=%v: bad bounds %v", workers, g, bounds)
			}
			for i := 1; i < len(bounds); i++ {
				if bounds[i] < bounds[i-1] {
					t.Fatalf("workers=%d g=%v: non-monotone bounds %v", workers, g, bounds)
				}
			}
		}
	}
}

// TestSnapshotPoolingKeepsLagWindowIntact verifies the pooled snapshot
// ring: the adversary's delayed view and the last OutputLag round infos
// must remain untouched while newer rounds are played.
func TestSnapshotPoolingKeepsLagWindowIntact(t *testing.T) {
	const n = 8
	var infos []*RoundInfo
	e := New(Config{N: n, Seed: 3, OutputLag: 2}, adversary.Static{G: graph.Cycle(n)}, roundAlgo{})
	//dynlint:ignore loancheck deliberately retains raw pooled pointers to assert the OutputLag+1 ring keeps lag-window rounds intact
	e.OnRound(func(info *RoundInfo) { infos = append(infos, info) })
	e.Run(10)
	// roundAlgo outputs its age: round r snapshot is all r. The two most
	// recent snapshots before the current one must still be readable.
	for r := 8; r <= 10; r++ {
		for v := 0; v < n; v++ {
			if got := infos[r-1].Outputs[v]; got != problems.Value(r) {
				t.Fatalf("round %d node %d: pooled snapshot = %d, want %d", r, v, got, r)
			}
		}
	}
}
