package engine

import (
	"bytes"
	"fmt"
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/ckpt"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// ckAlgo is a checkpointable flood-max with quiescence: a node goes
// quiet after its output has been stable for two rounds, so runs
// exercise the sparse drop/grace machinery that a checkpoint must
// round-trip (quiet counters, shrunken active list, re-touch on churn).
type ckAlgo struct{}

func (ckAlgo) Name() string                    { return "ck-flood" }
func (ckAlgo) NewNode(v graph.NodeID) NodeProc { return &ckNode{best: int64(v)} }

type ckNode struct {
	best   int64
	stable int32
}

func (p *ckNode) Start(ctx *Ctx, input problems.Value) {
	if input != problems.Bot {
		p.best = int64(input)
	}
}

func (p *ckNode) Broadcast(_ *Ctx, buf []SubMsg) []SubMsg {
	if p.stable >= 2 {
		return buf
	}
	return append(buf, SubMsg{Kind: 1, A: p.best})
}

func (p *ckNode) Process(_ *Ctx, in []Incoming, _ int) {
	improved := false
	for _, m := range in {
		if m.M.A > p.best {
			p.best, improved = m.M.A, true
		}
	}
	if improved {
		p.stable = 0
	} else {
		p.stable++
	}
}

func (p *ckNode) Output() problems.Value { return problems.Value(p.best) }
func (p *ckNode) Quiescent() bool        { return p.stable >= 2 }

func (p *ckNode) SaveState(w *ckpt.Writer) {
	w.Section(0x7f)
	w.Varint(p.best)
	w.Varint(int64(p.stable))
}

func (p *ckNode) LoadState(r *ckpt.Reader) {
	r.Section(0x7f)
	p.best = r.Varint()
	p.stable = int32(r.Varint())
}

// checkpointAdversaries builds the matrix of adversary constructors for
// the resume tests: churn and p2p carry mutable state (Checkpointer),
// alternator is stateless-by-round and restores by round number alone.
func checkpointAdversaries(n int) map[string]func() adversary.Adversary {
	return map[string]func() adversary.Adversary{
		"churn": churnAdv(n),
		"alternator": func() adversary.Adversary {
			s := prf.NewStream(9, 0, 0, prf.PurposeWorkload)
			a := graph.GNP(n, 5.0/float64(n), s)
			b := graph.GNP(n, 2.0/float64(n), s)
			return adversary.Alternator{A: a, B: b, Period: 3}
		},
		"p2p": func() adversary.Adversary {
			return &adversary.P2PChurn{
				N: n, Init: n / 4, JoinPerRound: 2, Degree: 3,
				SessionMin: 6, RejoinDelay: 3, Seed: 23,
				Events: []adversary.MassDeparture{{Round: 9, Frac: 0.2}},
			}
		},
	}
}

// runWithCheckpoint plays rounds like collectTrace but snapshots the
// engine into a buffer right after round k completes, and keeps going.
func runWithCheckpoint(t *testing.T, cfg Config, adv adversary.Adversary, algo Algorithm, rounds, k int) (roundTrace, []byte) {
	t.Helper()
	e := New(cfg, adv, algo)
	var tr roundTrace
	e.OnRound(func(info *RoundInfo) {
		tr.outputs = append(tr.outputs, append([]problems.Value(nil), info.Outputs...))
		tr.changed = append(tr.changed, append([]graph.NodeID(nil), info.Changed...))
		tr.adds = append(tr.adds, append([]graph.EdgeKey(nil), info.EdgeAdds...))
		tr.removes = append(tr.removes, append([]graph.EdgeKey(nil), info.EdgeRemoves...))
		tr.messages = append(tr.messages, info.Messages)
		tr.bits = append(tr.bits, info.Bits)
	})
	var buf bytes.Buffer
	if k == 0 {
		if err := e.Checkpoint(&buf); err != nil {
			t.Fatalf("checkpoint at round 0: %v", err)
		}
	}
	for r := 1; r <= rounds; r++ {
		e.Step()
		if r == k {
			if err := e.Checkpoint(&buf); err != nil {
				t.Fatalf("checkpoint at round %d: %v", k, err)
			}
		}
	}
	return tr, buf.Bytes()
}

// resumeTrace restores the checkpoint into a fresh engine and plays the
// remaining rounds, recording their trace.
func resumeTrace(t *testing.T, cfg Config, adv adversary.Adversary, algo Algorithm, ck []byte, rounds int) roundTrace {
	t.Helper()
	e := New(cfg, adv, algo)
	if err := e.Restore(bytes.NewReader(ck)); err != nil {
		t.Fatalf("restore: %v", err)
	}
	var tr roundTrace
	e.OnRound(func(info *RoundInfo) {
		tr.outputs = append(tr.outputs, append([]problems.Value(nil), info.Outputs...))
		tr.changed = append(tr.changed, append([]graph.NodeID(nil), info.Changed...))
		tr.adds = append(tr.adds, append([]graph.EdgeKey(nil), info.EdgeAdds...))
		tr.removes = append(tr.removes, append([]graph.EdgeKey(nil), info.EdgeRemoves...))
		tr.messages = append(tr.messages, info.Messages)
		tr.bits = append(tr.bits, info.Bits)
	})
	for e.Round() < rounds {
		e.Step()
	}
	return tr
}

// tail slices a trace to the rounds after k (0-indexed entry k onward).
func (tr roundTrace) tail(k int) roundTrace {
	return roundTrace{
		outputs: tr.outputs[k:], changed: tr.changed[k:],
		adds: tr.adds[k:], removes: tr.removes[k:],
		messages: tr.messages[k:], bits: tr.bits[k:],
	}
}

// TestCheckpointResumeEquivalence checkpoints a running engine at round
// k, restores into a fresh engine — possibly with a different worker
// count — and requires the resumed rounds k+1..R to be bit-identical to
// the uninterrupted run: outputs, changed lists, topology deltas and
// message/bit accounting.
func TestCheckpointResumeEquivalence(t *testing.T) {
	const n = 96
	const rounds = 24
	for name, mk := range checkpointAdversaries(n) {
		for _, k := range []int{0, 1, 7, rounds - 1} {
			for _, w := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/k=%d/w=%d", name, k, w), func(t *testing.T) {
					cfg := Config{N: n, Seed: 42, Workers: 3}
					ref, ck := runWithCheckpoint(t, cfg, mk(), ckAlgo{}, rounds, k)
					cfg.Workers = w
					res := resumeTrace(t, cfg, mk(), ckAlgo{}, ck, rounds)
					if len(res.outputs) != rounds-k {
						t.Fatalf("resumed %d rounds, want %d", len(res.outputs), rounds-k)
					}
					diffTraces(t, "resumed", ref.tail(k), res)
				})
			}
		}
	}
}

// TestCheckpointResumeDense runs the equivalence check on the dense
// reference walk.
func TestCheckpointResumeDense(t *testing.T) {
	const n = 64
	const rounds = 16
	const k = 6
	cfg := Config{N: n, Seed: 7, Workers: 2, Dense: true}
	ref, ck := runWithCheckpoint(t, cfg, churnAdv(n)(), ckAlgo{}, rounds, k)
	res := resumeTrace(t, cfg, churnAdv(n)(), ckAlgo{}, ck, rounds)
	diffTraces(t, "dense resumed", ref.tail(k), res)
}

// TestCheckpointResumeWithInput pins the input-vector round trip: inputs
// affect only future wake-ups, and the header validates them.
func TestCheckpointResumeWithInput(t *testing.T) {
	const n = 48
	const rounds = 12
	const k = 5
	input := make([]problems.Value, n)
	for i := range input {
		input[i] = problems.Value(i % 5)
	}
	cfg := Config{N: n, Seed: 3, Workers: 2, Input: input}
	ref, ck := runWithCheckpoint(t, cfg, churnAdv(n)(), ckAlgo{}, rounds, k)
	res := resumeTrace(t, cfg, churnAdv(n)(), ckAlgo{}, ck, rounds)
	diffTraces(t, "input resumed", ref.tail(k), res)
}

// TestCheckpointDeterministicBytes requires two checkpoints of identical
// runs to be byte-identical — checkpoint artifacts are comparable.
func TestCheckpointDeterministicBytes(t *testing.T) {
	const n = 64
	mk := checkpointAdversaries(n)["p2p"]
	cfg := Config{N: n, Seed: 11, Workers: 2}
	_, a := runWithCheckpoint(t, cfg, mk(), ckAlgo{}, 10, 10)
	_, b := runWithCheckpoint(t, cfg, mk(), ckAlgo{}, 10, 10)
	if !bytes.Equal(a, b) {
		t.Fatalf("checkpoints of identical runs differ: %d vs %d bytes", len(a), len(b))
	}
}

// TestRestoreRejects pins the restore-side validation: configuration
// mismatches, corruption and truncation all surface as errors instead of
// silently divergent runs.
func TestRestoreRejects(t *testing.T) {
	const n = 48
	cfg := Config{N: n, Seed: 5, Workers: 1}
	_, ck := runWithCheckpoint(t, cfg, churnAdv(n)(), ckAlgo{}, 8, 6)

	fresh := func(c Config) *Engine { return New(c, churnAdv(n)(), ckAlgo{}) }

	t.Run("used-engine", func(t *testing.T) {
		e := fresh(cfg)
		e.Step()
		if err := e.Restore(bytes.NewReader(ck)); err == nil {
			t.Fatal("restore onto stepped engine succeeded")
		}
	})
	t.Run("wrong-algo", func(t *testing.T) {
		e := New(cfg, churnAdv(n)(), floodAlgo{})
		if err := e.Restore(bytes.NewReader(ck)); err == nil {
			t.Fatal("restore under different algorithm succeeded")
		}
	})
	t.Run("wrong-seed", func(t *testing.T) {
		c := cfg
		c.Seed = 6
		if err := fresh(c).Restore(bytes.NewReader(ck)); err == nil {
			t.Fatal("restore under different seed succeeded")
		}
	})
	t.Run("wrong-n", func(t *testing.T) {
		c := cfg
		c.N = n + 1
		e := New(c, churnAdv(n+1)(), ckAlgo{})
		if err := e.Restore(bytes.NewReader(ck)); err == nil {
			t.Fatal("restore under different N succeeded")
		}
	})
	t.Run("wrong-lag", func(t *testing.T) {
		c := cfg
		c.OutputLag = 3
		if err := fresh(c).Restore(bytes.NewReader(ck)); err == nil {
			t.Fatal("restore under different OutputLag succeeded")
		}
	})
	t.Run("stateless-adversary-mismatch", func(t *testing.T) {
		s := prf.NewStream(9, 0, 0, prf.PurposeWorkload)
		g := graph.GNP(n, 4.0/float64(n), s)
		e := New(cfg, adversary.Static{G: g}, ckAlgo{})
		if err := e.Restore(bytes.NewReader(ck)); err == nil {
			t.Fatal("restore of churn checkpoint onto stateless adversary succeeded")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(ck); cut += 17 {
			if err := fresh(cfg).Restore(bytes.NewReader(ck[:cut])); err == nil {
				t.Fatalf("restore of %d-byte prefix succeeded", cut)
			}
		}
	})
	t.Run("corrupted", func(t *testing.T) {
		for off := 0; off < len(ck); off += 11 {
			bad := append([]byte(nil), ck...)
			bad[off] ^= 0x20
			if err := fresh(cfg).Restore(bytes.NewReader(bad)); err == nil {
				t.Fatalf("restore with byte %d flipped succeeded", off)
			}
		}
	})
	t.Run("garbage", func(t *testing.T) {
		if err := fresh(cfg).Restore(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
			t.Fatal("restore of garbage succeeded")
		}
	})
}
