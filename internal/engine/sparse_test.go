package engine_test

// Sparse ≡ dense equivalence: the sparse activity plane (the default) must
// be observably indistinguishable from the Config{Dense: true} reference
// walk — bit-identical outputs, changed feeds, topology deltas and
// message/bit accounting, every round, for every worker count. The matrix
// crosses the four adversary schedules used across the repo's tests with
// the two combined framework algorithms (never quiescent: exercises the
// pure active-set walk) and standalone DMis (terminally quiescent
// Dominated nodes: exercises the drop/grace/revival machinery). The -race
// CI job runs this file, so the sharded sparse phases are raced too.

import (
	"fmt"
	"runtime"
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/algos/coloring"
	"dynlocal/internal/algos/mis"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

type fullTrace struct {
	outputs  [][]problems.Value
	changed  [][]graph.NodeID
	adds     [][]graph.EdgeKey
	removes  [][]graph.EdgeKey
	messages []int
	bits     []int64
}

func runTrace(n, workers, rounds int, dense bool, adv adversary.Adversary, algo engine.Algorithm) fullTrace {
	e := engine.New(engine.Config{N: n, Seed: 77, Workers: workers, Dense: dense}, adv, algo)
	var tr fullTrace
	e.OnRound(func(info *engine.RoundInfo) {
		tr.outputs = append(tr.outputs, append([]problems.Value(nil), info.Outputs...))
		tr.changed = append(tr.changed, append([]graph.NodeID(nil), info.Changed...))
		tr.adds = append(tr.adds, append([]graph.EdgeKey(nil), info.EdgeAdds...))
		tr.removes = append(tr.removes, append([]graph.EdgeKey(nil), info.EdgeRemoves...))
		tr.messages = append(tr.messages, info.Messages)
		tr.bits = append(tr.bits, info.Bits)
	})
	e.Run(rounds)
	return tr
}

func diffFullTraces(t *testing.T, label string, dense, sparse fullTrace) {
	t.Helper()
	for r := range dense.outputs {
		if dense.messages[r] != sparse.messages[r] {
			t.Fatalf("%s: round %d messages dense=%d sparse=%d", label, r+1, dense.messages[r], sparse.messages[r])
		}
		if dense.bits[r] != sparse.bits[r] {
			t.Fatalf("%s: round %d bits dense=%d sparse=%d", label, r+1, dense.bits[r], sparse.bits[r])
		}
		for v := range dense.outputs[r] {
			if dense.outputs[r][v] != sparse.outputs[r][v] {
				t.Fatalf("%s: round %d node %d output dense=%d sparse=%d",
					label, r+1, v, dense.outputs[r][v], sparse.outputs[r][v])
			}
		}
		for name, pair := range map[string][2][]graph.NodeID{
			"changed": {dense.changed[r], sparse.changed[r]},
		} {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("%s: round %d %s dense=%v sparse=%v", label, r+1, name, pair[0], pair[1])
			}
			for i := range pair[0] {
				if pair[0][i] != pair[1][i] {
					t.Fatalf("%s: round %d %s dense=%v sparse=%v", label, r+1, name, pair[0], pair[1])
				}
			}
		}
		for name, pair := range map[string][2][]graph.EdgeKey{
			"adds":    {dense.adds[r], sparse.adds[r]},
			"removes": {dense.removes[r], sparse.removes[r]},
		} {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("%s: round %d %s sizes diverge", label, r+1, name)
			}
			for i := range pair[0] {
				if pair[0][i] != pair[1][i] {
					t.Fatalf("%s: round %d %s diverge", label, r+1, name)
				}
			}
		}
	}
}

func TestSparseMatchesDense(t *testing.T) {
	const n = 1024 // above the serial threshold: Workers=4 really shards
	const rounds = 20
	mkBase := func(seed uint64) *graph.Graph {
		return graph.GNP(n, 6.0/float64(n), prf.NewStream(seed, 0, 0, prf.PurposeWorkload))
	}
	schedules := []struct {
		name string
		mk   func(seed uint64) adversary.Adversary
	}{
		{"churn", func(seed uint64) adversary.Adversary {
			return &adversary.Churn{Base: mkBase(seed), Add: n / 24, Del: n / 24, Seed: seed + 1}
		}},
		{"edge-markov", func(seed uint64) adversary.Adversary {
			return &adversary.EdgeMarkov{Footprint: mkBase(seed), POn: 0.3, POff: 0.3, Seed: seed + 1}
		}},
		{"local-static", func(seed uint64) adversary.Adversary {
			base := mkBase(seed)
			return &adversary.LocalStatic{
				Inner:     &adversary.Churn{Base: base, Add: n / 24, Del: n / 24, Seed: seed + 1},
				Base:      base,
				Protected: []graph.NodeID{3, n / 2},
				Alpha:     2,
			}
		}},
		{"staggered-wake", func(seed uint64) adversary.Adversary {
			return &adversary.Wakeup{
				Inner:    &adversary.Churn{Base: mkBase(seed), Add: n / 24, Del: n / 24, Seed: seed + 1},
				Schedule: adversary.StaggeredSchedule(n, n/8),
			}
		}},
	}
	algos := []struct {
		name string
		mk   func() engine.Algorithm
	}{
		{"mis", func() engine.Algorithm { return mis.NewMIS(n) }},
		{"coloring", func() engine.Algorithm { return coloring.NewColoring(n) }},
		// Standalone DMis is the one algorithm with an engine.Quiescer:
		// confirmed Dominated nodes leave the active set, so this arm
		// proves dropped and revived nodes stay unobservable.
		{"dmis", func() engine.Algorithm { return mis.NewDynamic(n) }},
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for si, sc := range schedules {
		for _, ac := range algos {
			t.Run(sc.name+"/"+ac.name, func(t *testing.T) {
				seed := uint64(31 + si)
				dense := runTrace(n, 1, rounds, true, sc.mk(seed), ac.mk())
				for _, w := range workerCounts {
					sparse := runTrace(n, w, rounds, false, sc.mk(seed), ac.mk())
					diffFullTraces(t, fmt.Sprintf("workers=%d", w), dense, sparse)
				}
			})
		}
	}
}

// qcAlgo decides instantly and is quiescent from its first output: each
// node's first Process sets output 1, then Broadcast stays empty and the
// output never changes. Per-node callback counters (node-owned, so safe
// under sharding) make the engine's drop behavior directly observable.
type qcAlgo struct{ calls []int32 }

func (a *qcAlgo) Name() string { return "qc" }
func (a *qcAlgo) NewNode(v graph.NodeID) engine.NodeProc {
	return &qcNode{calls: &a.calls[v]}
}

type qcNode struct {
	calls *int32
	out   problems.Value
}

func (p *qcNode) Start(*engine.Ctx, problems.Value) {}
func (p *qcNode) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	return buf
}
func (p *qcNode) Process(ctx *engine.Ctx, in []engine.Incoming, deg int) {
	*p.calls++
	p.out = 1
}
func (p *qcNode) Output() problems.Value { return p.out }
func (p *qcNode) Quiescent() bool        { return p.out != problems.Bot }

// TestSparseQuiescentDropsAreFree pins the tentpole's point directly: on
// a static topology a terminally quiescent node stops getting callbacks
// the moment quiescence is detected — exactly 2 Process calls per node
// however long the run (the deciding round and the detection round; the
// grace rounds that fill the snapshot ring only copy its frozen value) —
// while its output stays exact in every later round.
func TestSparseQuiescentDropsAreFree(t *testing.T) {
	const n = 512
	const lag = 2
	g := graph.GNP(n, 8.0/float64(n), prf.NewStream(5, 0, 0, prf.PurposeWorkload))
	algo := &qcAlgo{calls: make([]int32, n)}
	e := engine.New(engine.Config{N: n, Seed: 9, OutputLag: lag}, adversary.Static{G: g}, algo)
	var last *engine.RoundInfo
	//dynlint:ignore loancheck only the final round's header is read, after Run stops playing rounds, so its pooled ring slot is never recycled
	e.OnRound(func(info *engine.RoundInfo) { last = info })
	e.Run(40)
	for v := 0; v < n; v++ {
		// Round 1 decides (output change), round 2 detects quiescence;
		// the grace rounds filling the snapshot ring skip Process
		// entirely, then the node drops.
		if got, want := algo.calls[v], int32(2); got != want {
			t.Fatalf("node %d processed %d rounds, want %d (drop after grace)", v, got, want)
		}
		if last.Outputs[v] != 1 {
			t.Fatalf("node %d output %d after drop, want 1", v, last.Outputs[v])
		}
	}
	if last.Messages != 0 {
		t.Fatalf("steady-state round delivers %d messages, want 0", last.Messages)
	}
}
