package engine

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"slices"

	"dynlocal/internal/adversary"
	"dynlocal/internal/ckpt"
	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
)

// Incremental checkpoint plane: a chain is a full base checkpoint
// followed by delta records, each encoding — against the previous record
// in the chain — only what moved: the net topology diff, the nodes whose
// serialized state changed (tracked from the active set, so quiescent
// and untouched nodes are free), the active list only when it moved, the
// snapshot ring as per-changed-node columns, and the adversary section
// (rewritten whole: randomized adversaries mutate every round and their
// state is O(edges), far below a full snapshot). Records are linked by
// the parent record's CRC-32 fingerprint plus a sequence number, so a
// delta applied to the wrong base, out of order, or over a torn parent
// fails validation before touching any state.
//
// The tracking that feeds deltas is enabled by the first NoteCheckpoint
// call and costs O(active + changes) marks per round; runs that never
// write chains never pay it. NoteCheckpoint must only be called for
// records that were durably persisted — after a failed write the marks
// keep accumulating and the next delta diffs against the last record
// that actually survived, which is exactly what a crashed-then-resumed
// appender needs.
const deltaMagic = "DLCKD1"

// Delta section tags (the adversary section reuses tagAdversary).
const (
	tagDeltaHeader   uint64 = 0x47
	tagDeltaTopology uint64 = 0x48
	tagDeltaNodes    uint64 = 0x49
	tagDeltaActive   uint64 = 0x4A
	tagDeltaSnaps    uint64 = 0x4B
)

// ArenaAlgorithm is optionally implemented by algorithms whose node
// states can be carved from the restore arena attached to the checkpoint
// reader (ckpt.AllocStruct/AllocSlice). Restores check for it and fall
// back to NewNode; implementations must return a node in the same state
// NewNode would (LoadState is called right after either way).
type ArenaAlgorithm interface {
	NewNodeArena(v graph.NodeID, r *ckpt.Reader) NodeProc
}

// newRestoredNode constructs the node state for a restore, through the
// arena when the algorithm supports it.
func (e *Engine) newRestoredNode(r *ckpt.Reader, v graph.NodeID) NodeProc {
	if aa, ok := e.algo.(ArenaAlgorithm); ok {
		return aa.NewNodeArena(v, r)
	}
	return e.algo.NewNode(v)
}

// NoteCheckpoint records that a checkpoint record capturing the engine's
// current state was durably persisted, with sum the record's CRC-32
// fingerprint (ckpt.Writer.Sum32 after writing, ckpt.Reader.Sum32 after
// restoring). It resets the dirty tracking so the next CheckpointDeltaTo
// diffs against exactly this record, enabling the tracking on first
// call. Never note a record whose write failed: the chain's tail is then
// still the previous record, and the accumulated marks keep diffing
// against it.
func (e *Engine) NoteCheckpoint(sum uint32) {
	if !e.ckptTrack {
		e.ckptTrack = true
		e.dirtyNode = make([]bool, e.cfg.N)
		e.dirtyOut = make([]bool, e.cfg.N)
		e.topDirty = make(map[graph.EdgeKey]bool)
	} else {
		for _, v := range e.dirtyList {
			e.dirtyNode[v] = false
		}
		for _, v := range e.dirtyOutList {
			e.dirtyOut[v] = false
		}
		clear(e.topDirty)
	}
	e.dirtyList = e.dirtyList[:0]
	e.dirtyOutList = e.dirtyOutList[:0]
	e.activeDirty = false
	e.ckptSeq++
	e.ckptSum = sum
	e.ckptRound = e.round
}

// NoteCheckpointBase is NoteCheckpoint for a full base record: it
// restarts the chain sequence, so a rebase onto a fresh chain begins at
// record 1 again. Use it whenever the persisted record is a full
// checkpoint heading a (new) chain.
func (e *Engine) NoteCheckpointBase(sum uint32) {
	e.ckptSeq = 0
	e.NoteCheckpoint(sum)
}

// ChainSeq returns the number of records noted in the current chain (0
// when no chain is active). cmd/dynsim uses it to decide when to rebase.
func (e *Engine) ChainSeq() uint64 { return e.ckptSeq }

// writeEdgeList delta-encodes a sorted edge-key list.
func writeEdgeList(w *ckpt.Writer, keys []graph.EdgeKey) {
	w.Int(len(keys))
	var prev graph.EdgeKey
	for i, k := range keys {
		if i == 0 {
			w.Uvarint(uint64(k))
		} else {
			w.Uvarint(uint64(k - prev))
		}
		prev = k
	}
}

// readEdgeList reads a delta-encoded edge-key list, validating strict
// ascent and range. The slice is carved from the reader's arena.
func readEdgeList(r *ckpt.Reader, n int, what string) []graph.EdgeKey {
	nKeys := r.Count(n * (n - 1) / 2)
	if r.Err() != nil {
		return nil
	}
	keys := ckpt.AllocSlice[graph.EdgeKey](r, nKeys)
	var prev graph.EdgeKey
	for i := 0; i < nKeys; i++ {
		d := r.Uvarint()
		if r.Err() != nil {
			return nil
		}
		k := graph.EdgeKey(d)
		if i > 0 {
			if d == 0 {
				r.Fail(fmt.Errorf("engine: checkpoint %s edge keys not strictly ascending", what))
				return nil
			}
			k = prev + graph.EdgeKey(d)
		}
		if u, v := k.Nodes(); int(u) >= n || int(v) >= n || u >= v {
			r.Fail(fmt.Errorf("engine: checkpoint %s edge %v out of range for N=%d", what, k, n))
			return nil
		}
		keys[i] = k
		prev = k
	}
	return keys
}

// CheckpointDeltaTo writes a delta record's engine sections into an
// already-open checkpoint stream: the state difference against the last
// record passed to NoteCheckpoint. It fails if no record has been noted
// (write a full checkpoint first — a chain starts with a base). The
// engine is left untouched; tracking is only reset when the caller notes
// the record as persisted.
func (e *Engine) CheckpointDeltaTo(w *ckpt.Writer) {
	if !e.ckptTrack {
		w.Fail(fmt.Errorf("engine: CheckpointDelta without a base — write a full checkpoint and NoteCheckpoint it first"))
		return
	}
	w.String(deltaMagic)

	w.Section(tagDeltaHeader)
	w.Uvarint(e.ckptSeq + 1)
	w.Uvarint(uint64(e.ckptSum))
	w.Int(e.ckptRound)
	w.Int(e.round)

	w.Section(tagDeltaTopology)
	adds := make([]graph.EdgeKey, 0, len(e.topDirty))
	rems := make([]graph.EdgeKey, 0, len(e.topDirty))
	for k, added := range e.topDirty {
		if added {
			adds = append(adds, k)
		} else {
			rems = append(rems, k)
		}
	}
	slices.Sort(adds)
	slices.Sort(rems)
	writeEdgeList(w, adds)
	writeEdgeList(w, rems)

	w.Section(tagDeltaNodes)
	slices.Sort(e.dirtyList)
	w.Int(len(e.dirtyList))
	for _, v := range e.dirtyList {
		w.Varint(int64(v))
		w.Int(e.wakeRnd[v])
		if !e.cfg.Dense {
			w.Varint(int64(e.quiet[v]))
		}
		st, ok := e.states[v].(ckpt.Stater)
		if !ok {
			w.Fail(fmt.Errorf("engine: algorithm %q node state %T does not support checkpointing", e.algo.Name(), e.states[v]))
			return
		}
		st.SaveState(w)
	}

	w.Section(tagDeltaActive)
	w.Bool(e.activeDirty)
	if e.activeDirty {
		w.Int(len(e.activeList))
		var prevV graph.NodeID
		for i, v := range e.activeList {
			if i == 0 {
				w.Uvarint(uint64(v))
			} else {
				w.Uvarint(uint64(v - prevV))
			}
			prevV = v
		}
	}

	// Snapshot ring: per new slot, only the columns of nodes whose output
	// changed since the parent record — every other node's entry equals
	// the parent's latest slot, which the restore stages and copies.
	w.Section(tagDeltaSnaps)
	slices.Sort(e.dirtyOutList)
	w.Int(len(e.dirtyOutList))
	var prevO graph.NodeID
	for i, v := range e.dirtyOutList {
		if i == 0 {
			w.Uvarint(uint64(v))
		} else {
			w.Uvarint(uint64(v - prevO))
		}
		prevO = v
	}
	lo := e.round - e.lag
	if lo < 1 {
		lo = 1
	}
	first := e.ckptRound + 1
	if first < lo {
		first = lo
	}
	nSlots := e.round - first + 1
	if nSlots < 0 {
		nSlots = 0
	}
	w.Int(nSlots)
	for rr := first; rr <= e.round; rr++ {
		snap := e.snaps[rr%len(e.snaps)]
		if snap == nil {
			w.Fail(fmt.Errorf("engine: snapshot ring slot for round %d missing", rr))
			return
		}
		for _, v := range e.dirtyOutList {
			w.Varint(int64(snap[v]))
		}
	}

	// Adversary state: delta-capable adversaries (Churn, EdgeMarkov)
	// encode only their (ckptRound, round] evolution; the rest fall back
	// to a full SaveState rewrite. The discriminator bit makes a restore
	// onto a differently-capable reconstruction fail loudly instead of
	// misparsing the section.
	w.Section(tagAdversary)
	ck, ok := e.adv.(adversary.Checkpointer)
	w.Bool(ok)
	if ok {
		dc, isDelta := ck.(adversary.DeltaCheckpointer)
		w.Bool(isDelta)
		if isDelta {
			dc.SaveDelta(w, e.ckptRound, e.round)
		} else {
			ck.SaveState(w)
		}
	}
}

// RestoreDeltaFrom applies a delta record's engine sections to an engine
// positioned at the record's parent — either freshly restored from the
// chain prefix (RestoreFrom + NoteCheckpoint per record) or the live
// engine that wrote the chain. The header's sequence number, parent
// fingerprint and parent round are validated against the last noted
// record before any state is touched, so a wrong-base, reordered or
// stale delta fails cleanly.
func (e *Engine) RestoreDeltaFrom(r *ckpt.Reader) {
	if !e.ckptTrack {
		r.Fail(fmt.Errorf("engine: delta restore without a restored base record"))
		return
	}
	if magic := r.String(); magic != deltaMagic {
		if r.Err() == nil {
			r.Fail(fmt.Errorf("engine: not a delta checkpoint stream (magic %q)", magic))
		}
		return
	}

	r.Section(tagDeltaHeader)
	seq := r.Uvarint()
	psumRaw := r.Uvarint()
	pround := r.Int()
	round := r.Int()
	if r.Err() != nil {
		return
	}
	switch {
	case psumRaw > math.MaxUint32:
		r.Fail(fmt.Errorf("engine: delta parent fingerprint %#x overflows CRC-32", psumRaw))
	case seq != e.ckptSeq+1:
		r.Fail(fmt.Errorf("engine: delta sequence %d, chain is at %d — record reordered or missing", seq, e.ckptSeq))
	case uint32(psumRaw) != e.ckptSum:
		r.Fail(fmt.Errorf("engine: delta parent fingerprint %#x does not match chain tail %#x — wrong base", psumRaw, e.ckptSum))
	case pround != e.round || pround != e.ckptRound:
		r.Fail(fmt.Errorf("engine: delta parent round %d, engine at %d (chain tail %d)", pround, e.round, e.ckptRound))
	case round < pround:
		r.Fail(fmt.Errorf("engine: delta round %d precedes parent round %d", round, pround))
	}
	if r.Err() != nil {
		return
	}
	n := e.cfg.N
	dense := e.cfg.Dense

	r.Section(tagDeltaTopology)
	adds := readEdgeList(r, n, "delta add")
	rems := readEdgeList(r, n, "delta remove")
	if r.Err() != nil {
		return
	}

	r.Section(tagDeltaNodes)
	nDirty := r.Count(n)
	if r.Err() != nil {
		return
	}
	last := -1
	for i := 0; i < nDirty; i++ {
		v := int(r.Varint())
		if r.Err() != nil {
			return
		}
		if v <= last || v >= n {
			r.Fail(fmt.Errorf("engine: delta node %d out of order or range", v))
			return
		}
		last = v
		wr := r.Int()
		if r.Err() != nil {
			return
		}
		if e.awake[v] {
			if wr != e.wakeRnd[v] {
				r.Fail(fmt.Errorf("engine: delta wake round %d for node %d, engine has %d", wr, v, e.wakeRnd[v]))
				return
			}
		} else {
			if wr <= pround || wr > round {
				r.Fail(fmt.Errorf("engine: delta wake round %d for new node %d outside (%d, %d]", wr, v, pround, round))
				return
			}
			e.awake[v] = true
			e.wakeRnd[v] = wr
		}
		if !dense {
			e.quiet[v] = int32(r.Varint())
		}
		if r.Err() != nil {
			return
		}
		np := e.newRestoredNode(r, graph.NodeID(v))
		e.states[v] = np
		if !dense {
			if q, ok := np.(Quiescer); ok {
				e.quiescer[v] = q
			} else {
				e.quiescer[v] = nil
			}
		}
		st, ok := np.(ckpt.Stater)
		if !ok {
			r.Fail(fmt.Errorf("engine: algorithm %q node state %T does not support checkpointing", e.algo.Name(), np))
			return
		}
		st.LoadState(r)
		if r.Err() != nil {
			return
		}
	}

	r.Section(tagDeltaActive)
	activeMoved := r.Bool()
	if r.Err() != nil {
		return
	}
	if activeMoved {
		if dense {
			r.Fail(fmt.Errorf("engine: dense delta declares an active-list change"))
			return
		}
		for _, v := range e.activeList {
			e.active[v] = false
		}
		e.activeList = e.activeList[:0]
		nActive := r.Count(n)
		if r.Err() != nil {
			return
		}
		var prevV graph.NodeID
		for i := 0; i < nActive; i++ {
			d := graph.NodeID(r.Uvarint())
			if r.Err() != nil {
				return
			}
			v := d
			if i > 0 {
				if d == 0 {
					r.Fail(fmt.Errorf("engine: delta active list not strictly ascending"))
					return
				}
				v = prevV + d
			}
			if int(v) >= n || !e.awake[v] {
				r.Fail(fmt.Errorf("engine: delta active node %d out of range or asleep", v))
				return
			}
			e.active[v] = true
			e.activeList = append(e.activeList, v)
			prevV = v
		}
	}

	r.Section(tagDeltaSnaps)
	nOut := r.Count(n)
	if r.Err() != nil {
		return
	}
	outs := ckpt.AllocSlice[graph.NodeID](r, nOut)
	var prevO graph.NodeID
	for i := 0; i < nOut; i++ {
		d := graph.NodeID(r.Uvarint())
		if r.Err() != nil {
			return
		}
		v := d
		if i > 0 {
			if d == 0 {
				r.Fail(fmt.Errorf("engine: delta changed-output list not strictly ascending"))
				return
			}
			v = prevO + d
		}
		if int(v) >= n || !e.awake[v] {
			r.Fail(fmt.Errorf("engine: delta changed-output node %d out of range or asleep", v))
			return
		}
		outs[i] = v
		prevO = v
	}
	nSlots := r.Count(e.lag + 1)
	if r.Err() != nil {
		return
	}
	lo := round - e.lag
	if lo < 1 {
		lo = 1
	}
	first := pround + 1
	if first < lo {
		first = lo
	}
	want := round - first + 1
	if want < 0 {
		want = 0
	}
	if nSlots != want {
		r.Fail(fmt.Errorf("engine: delta has %d snapshot slots for rounds (%d, %d], want %d", nSlots, pround, round, want))
		return
	}
	if nSlots > 0 {
		// Stage the parent's latest snapshot: unchanged nodes hold its
		// value in every new slot, and one new slot index may collide with
		// the buffer it lives in (rr = pround + lag + 1).
		scratch := ckpt.AllocSlice[problems.Value](r, n)
		if pround > 0 {
			psnap := e.snaps[pround%len(e.snaps)]
			if psnap == nil {
				r.Fail(fmt.Errorf("engine: snapshot ring slot for parent round %d missing", pround))
				return
			}
			copy(scratch, psnap)
		}
		for rr := first; rr <= round; rr++ {
			slot := e.snaps[rr%len(e.snaps)]
			if slot == nil {
				slot = ckpt.AllocSlice[problems.Value](r, n)
				e.snaps[rr%len(e.snaps)] = slot
			}
			copy(slot, scratch)
			for _, v := range outs {
				slot[v] = problems.Value(r.Varint())
			}
			if r.Err() != nil {
				return
			}
		}
	}

	r.Section(tagAdversary)
	hasAdv := r.Bool()
	if r.Err() != nil {
		return
	}
	ck, isCk := e.adv.(adversary.Checkpointer)
	if hasAdv != isCk {
		r.Fail(fmt.Errorf("engine: delta adversary state presence %v, engine adversary %T checkpointer %v", hasAdv, e.adv, isCk))
		return
	}
	if hasAdv {
		isDelta := r.Bool()
		if r.Err() != nil {
			return
		}
		dc, canDelta := ck.(adversary.DeltaCheckpointer)
		if isDelta != canDelta {
			r.Fail(fmt.Errorf("engine: delta adversary encoding delta=%v, engine adversary %T delta-capable=%v", isDelta, e.adv, canDelta))
			return
		}
		if isDelta {
			dc.LoadDelta(r, pround, round)
		} else {
			ck.LoadState(r)
		}
		if r.Err() != nil {
			return
		}
	}

	// Sections validated — apply the topology diff. Model invariant as in
	// the full restore: every edge entering must connect awake nodes.
	for _, k := range adds {
		u, v := k.Nodes()
		if !e.awake[u] || !e.awake[v] {
			r.Fail(fmt.Errorf("engine: delta edge %v touches a sleeping node", k))
			return
		}
	}
	if !dense {
		e.adj.Apply(adds, rems)
	}
	e.resolver.Observe(&adversary.Step{EdgeAdds: adds, EdgeRemoves: rems})
	e.round = round
}

// CheckpointChain starts a checkpoint chain on w: the chain magic plus a
// full base record, noted as the chain's head so subsequent
// CheckpointDelta calls diff against it. Engine-only variant — composed
// chains (engine + checker in one record) go through the dynlocal
// package's chain functions.
func (e *Engine) CheckpointChain(w io.Writer) error {
	if err := ckpt.WriteChainMagic(w); err != nil {
		return err
	}
	var buf bytes.Buffer
	cw := ckpt.NewWriter(&buf)
	e.CheckpointTo(cw)
	if err := cw.Close(); err != nil {
		return err
	}
	if err := ckpt.AppendChainRecord(w, buf.Bytes()); err != nil {
		return err
	}
	e.NoteCheckpointBase(cw.Sum32())
	return nil
}

// CheckpointDelta appends one delta record to a chain started with
// CheckpointChain, noting it on success. On error the chain tail and the
// dirty tracking are unchanged — retry later and the next delta still
// diffs against the last surviving record.
func (e *Engine) CheckpointDelta(w io.Writer) error {
	var buf bytes.Buffer
	cw := ckpt.NewWriter(&buf)
	e.CheckpointDeltaTo(cw)
	if err := cw.Close(); err != nil {
		return err
	}
	if err := ckpt.AppendChainRecord(w, buf.Bytes()); err != nil {
		return err
	}
	e.NoteCheckpoint(cw.Sum32())
	return nil
}

// RestoreChain restores an engine-only chain (CheckpointChain +
// CheckpointDelta records): the base record into a fresh engine, then
// every delta in order. Validation is per record — a torn tail or a
// record that fails linkage never applies, and the error reports what
// broke. After a successful restore the engine can both continue
// stepping and keep appending deltas to the same chain.
func (e *Engine) RestoreChain(r io.Reader) error {
	cr := ckpt.NewChainReader(r)
	first := true
	for {
		rec, err := cr.Next()
		if err == io.EOF {
			if first {
				return fmt.Errorf("engine: empty checkpoint chain")
			}
			return nil
		}
		if err != nil {
			return err
		}
		rr := ckpt.NewReader(bytes.NewReader(rec))
		if first {
			e.RestoreFrom(rr)
		} else {
			e.RestoreDeltaFrom(rr)
		}
		if err := rr.Err(); err != nil {
			return err
		}
		if err := rr.Close(); err != nil {
			return err
		}
		if first {
			e.NoteCheckpointBase(rr.Sum32())
		} else {
			e.NoteCheckpoint(rr.Sum32())
		}
		first = false
	}
}
