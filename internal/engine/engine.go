// Package engine is the round-synchronous dynamic-network simulator
// implementing the model of Section 2. Each round:
//
//  1. the adversary provides the communication graph G_r and may wake
//     additional nodes (V_{r-1} ⊆ V_r);
//  2. every awake node broadcasts one batch of sub-messages to all of its
//     current neighbors ("local broadcast"), then processes its inbox and
//     performs local computation — a node learns its round degree only
//     together with its inbox, matching "a node does not know its degree
//     in G_r at the beginning of round r";
//  3. every node's output is collected and handed to observers (checkers,
//     metrics) and — subject to the configured obliviousness lag — to the
//     adversary.
//
// The two communication phases are parallelized over edge-balanced node
// shards (cut by cumulative degree from the graph's CSR offsets, see
// internal/graph) with a barrier between them. Message delivery is
// batched per sender: each neighbor's outbox lands in the receiver's
// exactly-sized inbox as one contiguous run.
//
// # Determinism contract
//
// Outputs, message/bit accounting and the changed-node feed are
// bit-identical for every worker count: all randomness is drawn from prf
// streams keyed by (seed, node, round, purpose) — never from goroutine
// scheduling — per-worker accounting is folded at the phase barrier with
// exact integer sums, and the per-worker changed-output shards cover
// contiguous ascending node ranges, so their concatenation in worker
// order is the same sorted list regardless of sharding. CI enforces the
// contract under the race detector.
//
// # Round-delta plane
//
// Both sides of a round are exposed as deltas. On the output side,
// RoundInfo.Changed is the sorted list of nodes whose output differs from
// the previous round, folded from the per-worker shards at the phase-2
// barrier. On the topology side, RoundInfo.EdgeAdds/EdgeRemoves are the
// sorted edge diff of Graph against the previous round: taken verbatim
// from delta-native adversaries (whose Step carries the diff instead of a
// graph — the engine then maintains its current graph through a pooled
// CSR patcher, one block-copy merge per round instead of a full rebuild),
// or synthesized by a linear edge-key merge for adversaries that
// materialize. Observers that maintain per-round state (the checkers in
// internal/verify, violation trackers in internal/problems, the sliding
// windows in internal/dyngraph) consume both feeds to do
// O(|changed| + |diff|) work per round instead of rescanning all n
// outputs or all |E_r| edges. The model invariant that edges only touch
// awake nodes is asserted on the delta too: each added edge is checked as
// it enters — O(|adds|) per round, with persisting edges covered by
// induction since wake-ups are monotone.
//
// # Buffer ownership
//
// The engine pools aggressively; observers own nothing they are handed:
// RoundInfo.Outputs is a snapshot ring slot reused OutputLag+1 rounds
// later; RoundInfo.Changed, EdgeAdds and EdgeRemoves are reused on the
// next Step — copy any of them to retain. RoundInfo.Graph is immutable,
// but under a delta-native adversary it aliases a patcher arena that is
// recycled two Steps later: it may be read freely during its round and
// the next, and must be Cloned to be retained longer. Inside algorithm
// callbacks, Broadcast's buf and Process's inbox are likewise
// engine-owned scratch, valid only for the duration of the call.
//
// The per-round topologies come from an adversary (internal/adversary).
package engine

import (
	"fmt"
	"runtime"

	"dynlocal/internal/adversary"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// SubMsg is one sub-message of a node's per-round broadcast. Chan is a
// logical channel id used by the combiner to multiplex concurrently
// running algorithm instances (0 for standalone algorithms); Kind and the
// two payload words are algorithm-defined.
type SubMsg struct {
	Chan int32
	Kind uint8
	A, B int64
}

// Incoming is a received sub-message together with its sender.
type Incoming struct {
	From graph.NodeID
	M    SubMsg
}

// Ctx carries per-(node, round) context into algorithm callbacks.
// Algorithms must treat Round as opaque randomness-derivation state — the
// model gives nodes no common round counter; local age must be tracked by
// the algorithm itself.
type Ctx struct {
	Node        graph.NodeID
	Round       int
	Seed        uint64
	PurposeBase prf.Purpose
}

// Stream returns the node's random stream for this round and purpose.
func (c *Ctx) Stream(p prf.Purpose) prf.Stream {
	return prf.Make(c.Seed, c.Node, c.Round, c.PurposeBase+p)
}

// NodeProc is the per-node state machine of a distributed algorithm.
type NodeProc interface {
	// Start is invoked once, in the node's wake-up round, before its
	// first Broadcast, with the node's input value (Bot if none).
	Start(ctx *Ctx, input problems.Value)
	// Broadcast appends the node's sub-messages for this round to buf and
	// returns it. Returning an empty slice means the node stays silent.
	Broadcast(ctx *Ctx, buf []SubMsg) []SubMsg
	// Process handles the inbox (all sub-messages broadcast by current
	// neighbors this round) and the node's degree in G_r.
	Process(ctx *Ctx, in []Incoming, deg int)
	// Output returns the node's current output (Bot for ⊥).
	Output() problems.Value
}

// Algorithm creates per-node processes.
type Algorithm interface {
	Name() string
	NewNode(v graph.NodeID) NodeProc
}

// BitSizer is optionally implemented by algorithms that declare the
// encoded size of their messages; the engine then accounts message bits
// per round (experiment E12, the poly log n message-size remark).
type BitSizer interface {
	MessageBits(m SubMsg) int
}

// Config parameterizes a simulation.
type Config struct {
	// N is the size of the potential-node universe (the paper's n, known
	// to all nodes).
	N int
	// Seed keys all randomness.
	Seed uint64
	// Workers is the parallelism degree; 0 means GOMAXPROCS.
	Workers int
	// OutputLag is the adversary's obliviousness lag ρ: when constructing
	// G_r the adversary sees outputs through round r-ρ. 0 means the
	// default of 2 (the 2-oblivious adversary DMis needs); 1 is a fully
	// adaptive online adversary.
	OutputLag int
	// Input provides per-node input values (nil = all Bot).
	Input []problems.Value
}

// RoundInfo is the observer view of a completed round.
type RoundInfo struct {
	Round int
	Graph *graph.Graph
	Wake  []graph.NodeID
	// Outputs is the end-of-round snapshot. The engine pools snapshot
	// buffers: the slice is reused OutputLag+1 rounds later, so observers
	// that retain outputs across rounds must copy it. Do not modify.
	Outputs []problems.Value
	// Changed lists, in ascending node order and without duplicates, the
	// nodes whose Outputs entry differs from the previous round's snapshot
	// (round 1 diffs against the all-⊥ initial state). It is folded from
	// the per-worker shards at the phase barrier, so its contents are
	// bit-identical for every worker count. This is the output side of the
	// round-delta plane: checkers consume it to update violation state in
	// O(|Changed|) instead of re-scanning all n outputs (see
	// verify.(*TDynamic).ObserveChanged). The slice is pooled and reused on
	// the next Step — copy to retain. Do not modify.
	Changed []graph.NodeID
	// EdgeAdds and EdgeRemoves are the topology side of the round-delta
	// plane: the sorted edge diff of Graph against the previous round's
	// graph (round 1 diffs against the empty G_0) — emitted natively by
	// delta adversaries, synthesized by edge-list merge otherwise.
	// Checkers pair them with Changed via
	// verify.(*TDynamic).ObserveDeltas, making a verified round cost
	// O(changes) instead of O(|E_r|). Both slices are pooled and reused
	// on the next Step — copy to retain. Do not modify.
	EdgeAdds, EdgeRemoves []graph.EdgeKey
	Messages              int   // sub-messages delivered
	Bits                  int64 // declared encoded bits (0 if no BitSizer)
}

// Engine drives one simulation.
type Engine struct {
	cfg   Config
	adv   adversary.Adversary
	algo  Algorithm
	sizer BitSizer

	round    int
	curGraph *graph.Graph
	resolver *adversary.Resolver // folds delta steps, synthesizes legacy diffs
	states   []NodeProc
	awake    []bool
	wakeRnd  []int
	outbox   [][]SubMsg
	inbox    [][]Incoming
	snaps    [][]problems.Value // ring of pooled output snapshots
	lag      int
	workers  int
	acc      []workerAcc      // per-worker accounting cells
	chg      [][]graph.NodeID // per-worker changed-output shards
	changed  []graph.NodeID   // folded changed-node list (pooled)
	bounds   []int            // shard-boundary scratch

	observers []func(*RoundInfo)
}

// New creates an engine. It panics on invalid configuration.
func New(cfg Config, adv adversary.Adversary, algo Algorithm) *Engine {
	if cfg.N <= 0 {
		panic("engine: N must be positive")
	}
	if cfg.Input != nil && len(cfg.Input) != cfg.N {
		panic("engine: input length does not match N")
	}
	lag := cfg.OutputLag
	if lag == 0 {
		lag = 2
	}
	if lag < 1 {
		panic("engine: OutputLag must be >= 1 (1 = fully adaptive online)")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		cfg:      cfg,
		adv:      adv,
		algo:     algo,
		round:    0,
		curGraph: graph.Empty(cfg.N),
		resolver: adversary.NewResolver(cfg.N),
		states:   make([]NodeProc, cfg.N),
		awake:    make([]bool, cfg.N),
		wakeRnd:  make([]int, cfg.N),
		outbox:   make([][]SubMsg, cfg.N),
		inbox:    make([][]Incoming, cfg.N),
		snaps:    make([][]problems.Value, lag+1),
		lag:      lag,
		workers:  workers,
		acc:      make([]workerAcc, workers),
		chg:      make([][]graph.NodeID, workers),
		bounds:   make([]int, 0, workers+1),
	}
	if s, ok := algo.(BitSizer); ok {
		e.sizer = s
	}
	return e
}

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// N returns the node-universe size.
func (e *Engine) N() int { return e.cfg.N }

// Seed returns the PRF seed (used to construct clairvoyant adversaries).
func (e *Engine) Seed() uint64 { return e.cfg.Seed }

// Awake reports whether v has woken up.
func (e *Engine) Awake(v graph.NodeID) bool { return e.awake[v] }

// OnRound registers an observer invoked after every completed round.
func (e *Engine) OnRound(fn func(*RoundInfo)) { e.observers = append(e.observers, fn) }

// view adapts the engine to adversary.View for the round being built.
type view struct {
	e *Engine
	r int
}

func (v view) Round() int                 { return v.r }
func (v view) N() int                     { return v.e.cfg.N }
func (v view) PrevGraph() *graph.Graph    { return v.e.curGraph }
func (v view) Awake(id graph.NodeID) bool { return v.e.awake[id] }
func (v view) DelayedOutputs() []problems.Value {
	seen := v.r - v.e.lag
	if seen < 1 {
		return nil
	}
	return v.e.snaps[seen%len(v.e.snaps)]
}

// Step plays one round and returns its info. The returned info's buffers
// are pooled — see RoundInfo for what may be retained and for how long.
func (e *Engine) Step() *RoundInfo {
	r := e.round + 1
	st := e.adv.Step(view{e: e, r: r})
	if st.G != nil && st.G.N() != e.cfg.N {
		panic("engine: adversary returned graph with wrong node space")
	}
	// Materialize the round topology and its diff: delta steps fold into
	// the pooled patcher (no counting rebuild), materialized steps have
	// their diff synthesized by one linear merge.
	g, adds, removes := e.resolver.Resolve(&st)

	// Wake phase.
	for _, v := range st.Wake {
		if e.awake[v] {
			continue
		}
		e.awake[v] = true
		e.wakeRnd[v] = r
		e.states[v] = e.algo.NewNode(v)
		ctx := Ctx{Node: v, Round: r, Seed: e.cfg.Seed}
		input := problems.Bot
		if e.cfg.Input != nil {
			input = e.cfg.Input[v]
		}
		e.states[v].Start(&ctx, input)
	}
	// Model invariant: edges only between awake nodes. Edges enter the
	// topology only through the diff and wake-ups are monotone, so
	// checking each added edge — O(|adds|), not O(n) — covers every edge
	// by induction over rounds.
	for _, k := range adds {
		u, v := k.Nodes()
		if !e.awake[u] || !e.awake[v] {
			panicSleepingEdge(r, u, v, e.awake[u])
		}
	}

	// Phase 1: broadcast.
	e.parallelNodes(g, func(ctx *Ctx, _ int, v graph.NodeID) (int, int64) {
		*ctx = Ctx{Node: v, Round: r, Seed: e.cfg.Seed}
		e.outbox[v] = e.states[v].Broadcast(ctx, e.outbox[v][:0])
		return 0, 0
	})

	// Phase 2: deliver, process, snapshot and account — fused per node so
	// no serial post-pass remains. The snapshot buffer comes from the
	// ring: the slot being overwritten is OutputLag+1 rounds old, and a
	// still-sleeping node was sleeping then too (wakefulness is
	// monotone), so its entry is already Bot.
	snap := e.snaps[r%len(e.snaps)]
	if snap == nil {
		snap = make([]problems.Value, e.cfg.N)
		e.snaps[r%len(e.snaps)] = snap
	}
	// prev is last round's snapshot (a different ring slot, since the ring
	// holds OutputLag+1 >= 2 slots); nil in round 1, which diffs against
	// the all-⊥ initial state.
	prev := e.snaps[(r-1)%len(e.snaps)]
	for w := range e.chg {
		e.chg[w] = e.chg[w][:0]
	}
	totalMsgs, totalBits := e.parallelNodes(g, func(ctx *Ctx, w int, v graph.NodeID) (int, int64) {
		// Size the inbox exactly before filling it: one O(deg) counting
		// pass replaces the append growth chain with at most one
		// allocation, and the buffer is reused across rounds. Delivery is
		// then batched per sender: each neighbor's outbox lands as one
		// contiguous run written through a pre-sliced window, so the inner
		// loop carries no append bookkeeping and the From tag is hoisted
		// per run. (Pre-wrapping sender outboxes into []Incoming was
		// measured slower: it inflates the scatter-phase source from 24 to
		// 32 bytes per message, and this phase is bandwidth-bound.)
		need := 0
		for _, u := range g.Neighbors(v) {
			need += len(e.outbox[u])
		}
		in := e.inbox[v]
		if cap(in) < need {
			in = make([]Incoming, need)
		} else {
			in = in[:need]
		}
		pos := 0
		for _, u := range g.Neighbors(v) {
			run := e.outbox[u]
			dst := in[pos : pos+len(run) : pos+len(run)]
			for i := range run {
				dst[i] = Incoming{From: u, M: run[i]}
			}
			pos += len(run)
		}
		e.inbox[v] = in
		*ctx = Ctx{Node: v, Round: r, Seed: e.cfg.Seed}
		e.states[v].Process(ctx, in, g.Degree(v))
		val := e.states[v].Output()
		snap[v] = val
		old := problems.Bot
		if prev != nil {
			old = prev[v]
		}
		if val != old {
			e.chg[w] = append(e.chg[w], v)
		}
		var bits int64
		if e.sizer != nil {
			for i := range in {
				bits += int64(e.sizer.MessageBits(in[i].M))
			}
		}
		return len(in), bits
	})

	// Fold the per-worker changed shards. Shards are contiguous ascending
	// node ranges, so concatenation in worker order yields the same sorted
	// list for every worker count.
	changed := e.changed[:0]
	for w := range e.chg {
		changed = append(changed, e.chg[w]...)
	}
	e.changed = changed

	e.curGraph = g
	e.round = r

	info := &RoundInfo{
		Round: r, Graph: g, Wake: st.Wake, Outputs: snap, Changed: changed,
		EdgeAdds: adds, EdgeRemoves: removes,
		Messages: totalMsgs, Bits: totalBits,
	}
	for _, fn := range e.observers {
		fn(info)
	}
	return info
}

// panicSleepingEdge is the cold path for model violations, kept out of
// the O(|adds|) validation loop.
func panicSleepingEdge(r int, u, v graph.NodeID, uAwake bool) {
	s := u
	if uAwake {
		s = v
	}
	o := u + v - s
	panic(fmt.Sprintf("engine: round %d edge {%d,%d} touches sleeping node", r, s, o))
}

// Run plays the given number of rounds and returns the last round's info
// (nil if rounds <= 0).
func (e *Engine) Run(rounds int) *RoundInfo {
	var last *RoundInfo
	for i := 0; i < rounds; i++ {
		last = e.Step()
	}
	return last
}

// RunUntil plays rounds until pred returns true or maxRounds is reached.
// It returns the round at which pred first held and true, or maxRounds
// and false.
func (e *Engine) RunUntil(maxRounds int, pred func(*RoundInfo) bool) (int, bool) {
	for i := 0; i < maxRounds; i++ {
		info := e.Step()
		if pred(info) {
			return info.Round, true
		}
	}
	return maxRounds, false
}

// Outputs returns the latest output snapshot (nil before round 1). The
// slice is pooled like RoundInfo.Outputs: it stays valid until the engine
// plays OutputLag+1 further rounds; copy to retain beyond that.
func (e *Engine) Outputs() []problems.Value {
	if e.round == 0 {
		return nil
	}
	return e.snaps[e.round%len(e.snaps)]
}
