// Package engine is the round-synchronous dynamic-network simulator
// implementing the model of Section 2. Each round:
//
//  1. the adversary provides the communication graph G_r and may wake
//     additional nodes (V_{r-1} ⊆ V_r);
//  2. every awake node broadcasts one batch of sub-messages to all of its
//     current neighbors ("local broadcast"), then processes its inbox and
//     performs local computation — a node learns its round degree only
//     together with its inbox, matching "a node does not know its degree
//     in G_r at the beginning of round r";
//  3. every node's output is collected and handed to observers (checkers,
//     metrics) and — subject to the configured obliviousness lag — to the
//     adversary.
//
// The two communication phases are parallelized over edge-balanced node
// shards (cut by cumulative degree, see parallel.go) with a barrier
// between them. Message delivery is batched per sender: each neighbor's
// outbox lands in the receiver's exactly-sized inbox as one contiguous
// run.
//
// # Determinism contract
//
// Outputs, message/bit accounting and the changed-node feed are
// bit-identical for every worker count: all randomness is drawn from prf
// streams keyed by (seed, node, round, purpose) — never from goroutine
// scheduling — per-worker accounting is folded at the phase barrier with
// exact integer sums, and the per-worker changed-output shards cover
// contiguous ascending node ranges, so their concatenation in worker
// order is the same sorted list regardless of sharding. Because the prf
// streams are stateless per (node, round), the sparse activity plane
// below can skip a node's callbacks entirely without desynchronizing
// anyone's randomness. CI enforces the contract under the race detector.
//
// # Sparse activity plane
//
// Rounds cost O(active + changes), not O(n): the engine maintains an
// explicit active set and drives both phases over it. A node enters the
// set when it wakes and re-enters whenever it touches an edge of the
// round's topology diff. It leaves only by consent: algorithms whose
// nodes reach a terminal silent state implement Quiescer, and a node
// reporting Quiescent — with unchanged output — for OutputLag+1
// consecutive rounds is dropped from the set (the grace period guarantees
// every snapshot-ring slot holds its final output first). Nodes of
// algorithms without Quiescer stay active while awake, so for them a
// round costs O(awake) — still independent of the universe size n, which
// is the regime of the paper's highly dynamic P2P workloads (awake ≪ n).
// The current topology lives in an incrementally patched adjacency
// (graph.DynAdj, O(changes·Δ) per round); a CSR graph is only
// materialized when an observer asks RoundInfo.Graph() or a wrapper
// adversary asks View.PrevGraph(). Worker shards are cut by walking the
// active list's degrees — O(active + workers), no per-round O(n) prefix
// rebuild. Config.Dense selects the pre-sparse reference walk over the
// full node space (the equivalence baseline; bit-identical by
// construction and pinned by tests).
//
// # Round-delta plane
//
// Both sides of a round are exposed as deltas, consolidated in the
// RoundDelta view (RoundInfo.Delta()). On the output side,
// RoundInfo.Changed is the sorted list of nodes whose output differs from
// the previous round, folded from the per-worker shards at the phase-2
// barrier. On the topology side, RoundInfo.EdgeAdds/EdgeRemoves are the
// sorted edge diff against the previous round: taken verbatim from
// delta-native adversaries, or synthesized by a linear edge-key merge for
// adversaries that materialize. Observers that maintain per-round state
// (the checkers in internal/verify, violation trackers in
// internal/problems, the sliding windows in internal/dyngraph) consume
// the delta plane whole (verify.(*TDynamic).Feed) to do
// O(|changed| + |diff|) work per round instead of rescanning all n
// outputs or all |E_r| edges. The model invariant that edges only touch
// awake nodes is asserted on the delta too: each added edge is checked as
// it enters — O(|adds|) per round, with persisting edges covered by
// induction since wake-ups are monotone.
//
// # Buffer ownership
//
// The engine pools aggressively; observers own nothing they are handed:
// RoundInfo.Outputs is a snapshot ring slot reused OutputLag+1 rounds
// later; RoundInfo.Wake, Changed, EdgeAdds and EdgeRemoves are reused on
// the next Step. RoundInfo.Graph() returns an immutable graph that may
// alias a pooled patcher arena recycled two materializations later: it
// may be read freely during its round and the next, and must be Cloned to
// be retained longer. RoundInfo.Retain is the one sanctioned way to hold
// a whole round past those lifetimes. Inside algorithm callbacks,
// Broadcast's buf and Process's inbox are likewise engine-owned scratch,
// valid only for the duration of the call.
//
// The per-round topologies come from an adversary (internal/adversary).
package engine

import (
	"fmt"
	"runtime"
	"slices"

	"dynlocal/internal/adversary"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// SubMsg is one sub-message of a node's per-round broadcast. Chan is a
// logical channel id used by the combiner to multiplex concurrently
// running algorithm instances (0 for standalone algorithms); Kind and the
// two payload words are algorithm-defined.
type SubMsg struct {
	Chan int32
	Kind uint8
	A, B int64
}

// Incoming is a received sub-message together with its sender.
type Incoming struct {
	From graph.NodeID
	M    SubMsg
}

// Ctx carries per-(node, round) context into algorithm callbacks.
// Algorithms must treat Round as opaque randomness-derivation state — the
// model gives nodes no common round counter; local age must be tracked by
// the algorithm itself.
type Ctx struct {
	Node        graph.NodeID
	Round       int
	Seed        uint64
	PurposeBase prf.Purpose
}

// Stream returns the node's random stream for this round and purpose.
func (c *Ctx) Stream(p prf.Purpose) prf.Stream {
	return prf.Make(c.Seed, c.Node, c.Round, c.PurposeBase+p)
}

// NodeProc is the per-node state machine of a distributed algorithm.
type NodeProc interface {
	// Start is invoked once, in the node's wake-up round, before its
	// first Broadcast, with the node's input value (Bot if none).
	Start(ctx *Ctx, input problems.Value)
	// Broadcast appends the node's sub-messages for this round to buf and
	// returns it. Returning an empty slice means the node stays silent.
	Broadcast(ctx *Ctx, buf []SubMsg) []SubMsg
	// Process handles the inbox (all sub-messages broadcast by current
	// neighbors this round) and the node's degree in G_r.
	Process(ctx *Ctx, in []Incoming, deg int)
	// Output returns the node's current output (Bot for ⊥).
	Output() problems.Value
}

// Quiescer is optionally implemented by NodeProcs whose nodes can reach a
// terminal silent state. Quiescent must only report true once the node
// has permanently decided: from this round on, regardless of any future
// inbox contents, degrees or topology changes, its Broadcast always
// returns buf unchanged and its Output never changes. The engine then
// drops the node from the active set (after the snapshot-ring grace
// period) and stops invoking its callbacks — a dropped node is literally
// free — re-running them only if one of its edges churns, so skipped
// rounds must be unobservable. Internal bookkeeping (ages, streaks) may
// freeze while dropped; the contract only constrains Broadcast and
// Output. Nodes that can revert, or that beacon indefinitely, must never
// report quiescent.
type Quiescer interface {
	Quiescent() bool
}

// Algorithm creates per-node processes.
type Algorithm interface {
	Name() string
	NewNode(v graph.NodeID) NodeProc
}

// BitSizer is optionally implemented by algorithms that declare the
// encoded size of their messages; the engine then accounts message bits
// per round (experiment E12, the poly log n message-size remark).
type BitSizer interface {
	MessageBits(m SubMsg) int
}

// DefaultOutputLag is the adversary obliviousness lag used when
// Config.OutputLag is left zero: the 2-oblivious adversary that DMis
// (Lemma 5.1) requires.
const DefaultOutputLag = 2

// Config parameterizes a simulation.
type Config struct {
	// N is the size of the potential-node universe (the paper's n, known
	// to all nodes).
	N int
	// Seed keys all randomness.
	Seed uint64
	// Workers is the parallelism degree; 0 means GOMAXPROCS.
	Workers int
	// OutputLag is the adversary's obliviousness lag ρ: when constructing
	// G_r the adversary sees outputs through round r-ρ. The zero value
	// selects DefaultOutputLag (= 2, the 2-oblivious adversary DMis
	// needs); 1 is a fully adaptive online adversary; negative values
	// panic in New.
	OutputLag int
	// Input provides per-node input values (nil = all Bot).
	Input []problems.Value
	// Dense selects the reference dense round walk: both phases iterate
	// the full node space, the round graph is materialized eagerly and no
	// node ever quiesces. Outputs and RoundInfo deltas are bit-identical
	// to the default sparse activity plane (pinned by the equivalence
	// tests); rounds cost O(n + m) instead of O(active + changes). Meant
	// for differential tests and as the benchmark baseline.
	Dense bool
}

// RoundDelta is the consolidated view of one round's delta plane: the
// topology diff, the wake set, the end-of-round output snapshot and the
// output diff. It is the single argument of verify.(*TDynamic).Feed and
// is obtained from RoundInfo.Delta. The slices alias the RoundInfo they
// came from and follow its pooling lifetimes.
//
//dynlint:loan
type RoundDelta struct {
	// Round is the 1-based round the delta describes.
	Round int
	// EdgeAdds and EdgeRemoves are the sorted edge diff against the
	// previous round's graph.
	EdgeAdds, EdgeRemoves []graph.EdgeKey
	// Wake lists the nodes that woke this round.
	Wake []graph.NodeID
	// Changed lists, ascending, the nodes whose output changed this round.
	Changed []graph.NodeID
	// Outputs is the full end-of-round output snapshot.
	Outputs []problems.Value
}

// RoundInfo is the observer view of a completed round. The struct itself
// is pooled on the same ring as its Outputs snapshot — reused
// OutputLag+1 rounds later — so it shares its buffers' lifetime exactly;
// use Retain to hold a round longer.
//
//dynlint:loan
type RoundInfo struct {
	Round int
	// Wake lists the nodes that woke this round. Pooled and reused on the
	// next Step — copy to retain. Do not modify.
	//dynlint:loan
	Wake []graph.NodeID
	// Outputs is the end-of-round snapshot. The engine pools snapshot
	// buffers: the slice is reused OutputLag+1 rounds later, so observers
	// that retain outputs across rounds must copy it (or Retain the
	// round). Do not modify.
	//dynlint:loan
	Outputs []problems.Value
	// Changed lists, in ascending node order and without duplicates, the
	// nodes whose Outputs entry differs from the previous round's snapshot
	// (round 1 diffs against the all-⊥ initial state). It is folded from
	// the per-worker shards at the phase barrier, so its contents are
	// bit-identical for every worker count. This is the output side of the
	// round-delta plane: checkers consume it (via Delta and
	// verify.(*TDynamic).Feed) to update violation state in O(|Changed|)
	// instead of re-scanning all n outputs. The slice is pooled and reused
	// on the next Step — copy to retain. Do not modify.
	//dynlint:loan
	//dynlint:sorted
	Changed []graph.NodeID
	// EdgeAdds and EdgeRemoves are the topology side of the round-delta
	// plane: the sorted edge diff of this round's graph against the
	// previous round's (round 1 diffs against the empty G_0) — emitted
	// natively by delta adversaries, synthesized by edge-list merge
	// otherwise. Both slices are pooled and reused on the next Step — copy
	// to retain. Do not modify.
	//dynlint:loan
	//dynlint:sorted
	EdgeAdds, EdgeRemoves []graph.EdgeKey
	Messages              int   // sub-messages delivered
	Bits                  int64 // declared encoded bits (0 if no BitSizer)

	eng *Engine      // source engine for lazy graph materialization
	g   *graph.Graph // materialized graph (dense rounds, retained copies)
}

// Graph returns the round's communication graph G_r, materializing it on
// demand: under the sparse activity plane no CSR graph exists unless an
// observer asks for one, so rounds whose observers never call Graph never
// pay the O(n + m) materialization. The returned graph is immutable but
// may alias a pooled arena — it may be read during this round and the
// next, and must be Cloned (or the round Retained) to be held longer.
// For a live (non-retained) RoundInfo of a sparse engine, Graph must be
// called before the next Step; afterwards it panics, since the engine's
// topology has moved past this round.
//
//dynlint:loan
func (ri *RoundInfo) Graph() *graph.Graph {
	if ri.g != nil {
		return ri.g
	}
	if ri.eng == nil || ri.eng.round != ri.Round {
		panic(fmt.Sprintf("engine: RoundInfo.Graph for round %d called after the engine moved on — call it during the round, or use Retain", ri.Round))
	}
	return ri.eng.resolver.Materialize()
}

// Delta returns the round's consolidated delta-plane view. The slices
// alias this RoundInfo and follow its pooling lifetimes, so a RoundDelta
// is meant to be consumed within the observer callback (exactly what
// verify.(*TDynamic).Feed does).
func (ri *RoundInfo) Delta() RoundDelta {
	return RoundDelta{
		Round:    ri.Round,
		EdgeAdds: ri.EdgeAdds, EdgeRemoves: ri.EdgeRemoves,
		Wake: ri.Wake, Changed: ri.Changed, Outputs: ri.Outputs,
	}
}

// Retain returns a deep copy of the round that owns all of its storage —
// the one sanctioned way to hold a round past the pooled-buffer
// lifetimes. The graph is materialized and cloned too, so Retain costs
// O(n + m); call it only for rounds actually kept. Like Graph, Retain
// must be called before the engine plays the next Step.
func (ri *RoundInfo) Retain() *RoundInfo {
	cp := *ri
	cp.g = ri.Graph().Clone()
	cp.eng = nil
	cp.Wake = slices.Clone(ri.Wake)
	cp.Outputs = slices.Clone(ri.Outputs)
	cp.Changed = slices.Clone(ri.Changed)
	cp.EdgeAdds = slices.Clone(ri.EdgeAdds)
	cp.EdgeRemoves = slices.Clone(ri.EdgeRemoves)
	return &cp
}

// Engine drives one simulation.
type Engine struct {
	cfg   Config
	adv   adversary.Adversary
	algo  Algorithm
	sizer BitSizer

	round    int
	resolver *adversary.Resolver // lazy topology feed: per-round diffs, on-demand CSR
	states   []NodeProc
	awake    []bool
	wakeRnd  []int
	outbox   [][]SubMsg
	inbox    [][]Incoming
	snaps    [][]problems.Value // ring of pooled output snapshots
	infos    []RoundInfo        // ring of pooled RoundInfo headers, same lifetime
	lag      int
	workers  int
	acc      []workerAcc      // per-worker accounting cells
	chg      [][]graph.NodeID // per-worker changed-output shards
	changed  []graph.NodeID   // folded changed-node list (pooled)
	bounds   []int            // dense-mode shard-boundary scratch

	// Sparse activity plane (nil/unused when cfg.Dense).
	adj        *graph.DynAdj    // incrementally patched round topology
	active     []bool           // membership bitmap of activeList
	activeList []graph.NodeID   // sorted active set, both phases walk this
	listBuf    []graph.NodeID   // ping-pong scratch for merge/compaction
	newAct     []graph.NodeID   // this round's activations (wake + edge touch)
	quiet      []int32          // consecutive quiescent rounds, for the drop grace
	quiescer   []Quiescer       // cached Quiescer view of states[v], nil if none
	drops      [][]graph.NodeID // per-worker drop shards
	cuts       []int            // active-list shard-cut scratch
	pool       *phasePool       // persistent phase workers (lazy)

	// Per-Step state read by the prebuilt sparse phase callbacks. The
	// callbacks are built once in New — a closure literal inside Step
	// would allocate every round.
	stepRound          int
	snapCur, snapPrev  []problems.Value
	phase1Fn, phase2Fn phaseFunc
	sctx               Ctx  // serial-path scratch; a stack Ctx would escape
	vw                 view // adversary View scratch; boxing a value would allocate

	// Incremental-checkpoint dirty tracking, disabled (and nil) until the
	// first NoteCheckpoint — runs that never write checkpoint chains pay
	// nothing. While enabled, each round marks the nodes whose serialized
	// state may have changed (the phase-time active list under the sparse
	// plane; all awake nodes under Dense), the nodes whose output changed,
	// the net topology diff and whether the active list moved, all since
	// the last persisted record. CheckpointDeltaTo serializes exactly
	// these marks; NoteCheckpoint resets them once a record survives.
	ckptTrack    bool
	ckptSeq      uint64                 // records persisted in the current chain
	ckptSum      uint32                 // CRC-32 fingerprint of the last record
	ckptRound    int                    // round the last record captured
	dirtyNode    []bool                 // node state touched since last record
	dirtyList    []graph.NodeID         // set bits of dirtyNode, unsorted
	dirtyOut     []bool                 // output changed since last record
	dirtyOutList []graph.NodeID         // set bits of dirtyOut, unsorted
	topDirty     map[graph.EdgeKey]bool // net edge diff: true=added, false=removed
	activeDirty  bool                   // active list changed since last record

	observers []func(*RoundInfo)
}

// New creates an engine. It panics on invalid configuration.
func New(cfg Config, adv adversary.Adversary, algo Algorithm) *Engine {
	if cfg.N <= 0 {
		panic("engine: N must be positive")
	}
	if cfg.Input != nil && len(cfg.Input) != cfg.N {
		panic("engine: input length does not match N")
	}
	lag := cfg.OutputLag
	if lag == 0 {
		lag = DefaultOutputLag
	}
	if lag < 1 {
		panic("engine: OutputLag must be >= 1 (1 = fully adaptive online)")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		cfg:      cfg,
		adv:      adv,
		algo:     algo,
		round:    0,
		resolver: adversary.NewResolver(cfg.N),
		states:   make([]NodeProc, cfg.N),
		awake:    make([]bool, cfg.N),
		wakeRnd:  make([]int, cfg.N),
		outbox:   make([][]SubMsg, cfg.N),
		inbox:    make([][]Incoming, cfg.N),
		snaps:    make([][]problems.Value, lag+1),
		infos:    make([]RoundInfo, lag+1),
		lag:      lag,
		workers:  workers,
		acc:      make([]workerAcc, workers),
		chg:      make([][]graph.NodeID, workers),
		bounds:   make([]int, 0, workers+1),
	}
	if !cfg.Dense {
		e.adj = graph.NewDynAdj(cfg.N)
		e.active = make([]bool, cfg.N)
		e.quiet = make([]int32, cfg.N)
		e.quiescer = make([]Quiescer, cfg.N)
		e.drops = make([][]graph.NodeID, workers)
		e.cuts = make([]int, 0, workers+1)
		e.phase1Fn = e.sparseBroadcast
		e.phase2Fn = e.sparseProcess
	}
	e.vw.e = e
	if s, ok := algo.(BitSizer); ok {
		e.sizer = s
	}
	return e
}

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// N returns the node-universe size.
func (e *Engine) N() int { return e.cfg.N }

// Seed returns the PRF seed (used to construct clairvoyant adversaries).
func (e *Engine) Seed() uint64 { return e.cfg.Seed }

// Awake reports whether v has woken up.
func (e *Engine) Awake(v graph.NodeID) bool { return e.awake[v] }

// OnRound registers an observer invoked after every completed round.
func (e *Engine) OnRound(fn func(*RoundInfo)) { e.observers = append(e.observers, fn) }

// view adapts the engine to adversary.View for the round being built. It
// lives on the Engine and is handed out by pointer: boxing a fresh value
// into the interface would allocate on every Step.
type view struct {
	e *Engine
	r int
}

func (v *view) Round() int { return v.r }
func (v *view) N() int     { return v.e.cfg.N }

// PrevGraph materializes G_{r-1} on demand. Delta-native adversaries
// never call it, keeping their rounds free of the O(n + m) CSR build.
func (v *view) PrevGraph() *graph.Graph    { return v.e.resolver.Materialize() }
func (v *view) Awake(id graph.NodeID) bool { return v.e.awake[id] }
func (v *view) DelayedOutputs() []problems.Value {
	seen := v.r - v.e.lag
	if seen < 1 {
		return nil
	}
	return v.e.snaps[seen%len(v.e.snaps)]
}

// Step plays one round and returns its info. The returned info's buffers
// are pooled — see RoundInfo for what may be retained and for how long.
func (e *Engine) Step() *RoundInfo {
	r := e.round + 1
	e.vw.r = r
	st := e.adv.Step(&e.vw)
	if st.G != nil && st.G.N() != e.cfg.N {
		panic("engine: adversary returned graph with wrong node space")
	}
	// The round's topology as a sorted diff: passed through for delta
	// steps, synthesized by one linear merge for materialized steps. No
	// CSR graph is built here.
	adds, removes := e.resolver.Observe(&st)
	if e.ckptTrack {
		for _, k := range adds {
			e.markEdgeDirty(k, true)
		}
		for _, k := range removes {
			e.markEdgeDirty(k, false)
		}
	}

	// Wake phase.
	e.newAct = e.newAct[:0]
	for _, v := range st.Wake {
		if e.awake[v] {
			continue
		}
		e.awake[v] = true
		e.wakeRnd[v] = r
		e.states[v] = e.algo.NewNode(v)
		if e.adj != nil {
			if q, ok := e.states[v].(Quiescer); ok {
				e.quiescer[v] = q
			}
			e.active[v] = true
			e.newAct = append(e.newAct, v)
		}
		ctx := Ctx{Node: v, Round: r, Seed: e.cfg.Seed}
		input := problems.Bot
		if e.cfg.Input != nil {
			input = e.cfg.Input[v]
		}
		e.states[v].Start(&ctx, input)
	}
	// Model invariant: edges only between awake nodes. Edges enter the
	// topology only through the diff and wake-ups are monotone, so
	// checking each added edge — O(|adds|), not O(n) — covers every edge
	// by induction over rounds.
	for _, k := range adds {
		u, v := k.Nodes()
		if !e.awake[u] || !e.awake[v] {
			panicSleepingEdge(r, u, v, e.awake[u])
		}
	}

	var info *RoundInfo
	if e.adj != nil {
		info = e.stepSparse(r, &st, adds, removes)
	} else {
		info = e.stepDense(r, &st, adds, removes)
	}
	for _, fn := range e.observers {
		fn(info)
	}
	return info
}

// ringSlots returns this round's snapshot buffer and the previous
// round's (nil in round 1, which diffs against the all-⊥ initial state).
// The slot being overwritten is OutputLag+1 rounds old; a still-sleeping
// node was sleeping then too (wakefulness is monotone), so its entry is
// already Bot, and a node dropped from the active set wrote its final
// output into every slot during the drop grace period.
func (e *Engine) ringSlots(r int) (snap, prev []problems.Value) {
	snap = e.snaps[r%len(e.snaps)]
	if snap == nil {
		snap = make([]problems.Value, e.cfg.N)
		e.snaps[r%len(e.snaps)] = snap
	}
	if r > 1 {
		prev = e.snaps[(r-1)%len(e.snaps)]
	}
	return snap, prev
}

// markNodeDirty records that v's serialized per-node state (wake round,
// quiescence counter or Stater payload) may differ from the last
// persisted checkpoint record.
func (e *Engine) markNodeDirty(v graph.NodeID) {
	if !e.dirtyNode[v] {
		e.dirtyNode[v] = true
		e.dirtyList = append(e.dirtyList, v)
	}
}

// markOutDirty records that v's output changed since the last persisted
// checkpoint record (fed from the round's folded Changed list).
func (e *Engine) markOutDirty(v graph.NodeID) {
	if !e.dirtyOut[v] {
		e.dirtyOut[v] = true
		e.dirtyOutList = append(e.dirtyOutList, v)
	}
}

// markEdgeDirty folds one edge of the round diff into the net diff since
// the last record, with exact cancellation: an edge added and then
// removed (or vice versa) between two records vanishes from the delta.
func (e *Engine) markEdgeDirty(k graph.EdgeKey, added bool) {
	if prev, ok := e.topDirty[k]; ok && prev != added {
		delete(e.topDirty, k)
		return
	}
	e.topDirty[k] = added
}

// touch marks a node hit by the round's topology diff: it re-enters the
// active set if dropped and restarts its quiescence grace either way.
// Diff endpoints are awake (the model invariant was just asserted), so no
// wakefulness check is needed.
func (e *Engine) touch(v graph.NodeID) {
	e.quiet[v] = 0
	if !e.active[v] {
		e.active[v] = true
		e.newAct = append(e.newAct, v)
	}
}

// mergeActive folds the round's sorted activations into the sorted
// active list, ping-ponging between two pooled buffers. newAct is
// disjoint from the current list (guarded by the active bitmap), so the
// merge never sees equal keys.
func (e *Engine) mergeActive() {
	slices.Sort(e.newAct)
	old := e.activeList
	dst := e.listBuf[:0]
	i, j := 0, 0
	for i < len(old) && j < len(e.newAct) {
		if old[i] < e.newAct[j] {
			dst = append(dst, old[i])
			i++
		} else {
			dst = append(dst, e.newAct[j])
			j++
		}
	}
	dst = append(dst, old[i:]...)
	dst = append(dst, e.newAct[j:]...)
	e.activeList, e.listBuf = dst, old[:0]
}

// applyDrops removes this round's quiesced nodes from the active set and
// compacts the list. A dropped node's outbox is emptied once here — by
// the Quiescer contract it would stay empty anyway — so senders' inbox
// assembly needs no activity check.
func (e *Engine) applyDrops() {
	total := 0
	for w := range e.drops {
		total += len(e.drops[w])
	}
	if total == 0 {
		return
	}
	if e.ckptTrack {
		e.activeDirty = true
	}
	for w := range e.drops {
		for _, v := range e.drops[w] {
			e.active[v] = false
			e.outbox[v] = e.outbox[v][:0]
		}
	}
	old := e.activeList
	dst := e.listBuf[:0]
	for _, v := range old {
		if e.active[v] {
			dst = append(dst, v)
		}
	}
	e.activeList, e.listBuf = dst, old[:0]
}

// stepSparse plays the round over the active set: O(active + changes)
// total, with accounting summed per sender so skipped quiescent receivers
// cost nothing while Messages/Bits stay bit-identical to the dense walk.
func (e *Engine) stepSparse(r int, st *adversary.Step, adds, removes []graph.EdgeKey) *RoundInfo {
	e.adj.Apply(adds, removes)
	for _, k := range adds {
		u, v := k.Nodes()
		e.touch(u)
		e.touch(v)
	}
	for _, k := range removes {
		u, v := k.Nodes()
		e.touch(u)
		e.touch(v)
	}
	if len(e.newAct) > 0 {
		e.mergeActive()
		if e.ckptTrack {
			e.activeDirty = true
		}
	}
	list := e.activeList

	// Phase 1: broadcast (sparseBroadcast over the active list).
	e.stepRound = r
	msgs, bits := e.runPhase(list, e.phase1Fn)

	// Phase 2: deliver, process, snapshot, diff and quiesce
	// (sparseProcess), fused per node.
	e.snapCur, e.snapPrev = e.ringSlots(r)
	for w := range e.chg {
		e.chg[w] = e.chg[w][:0]
		e.drops[w] = e.drops[w][:0]
	}
	e.runPhase(list, e.phase2Fn)

	// Fold the per-worker changed shards. Shards are contiguous ascending
	// ranges of the active list, so concatenation in worker order yields
	// the same sorted list for every worker count; quiescent-dropped
	// nodes never change output, so the list matches the dense walk's.
	changed := e.changed[:0]
	for w := range e.chg {
		changed = append(changed, e.chg[w]...)
	}
	e.changed = changed
	if e.ckptTrack {
		// Every node whose serialized state could move this round is on
		// the phase-time list: wake-ups and diff endpoints were merged in
		// above, and grace-path quiet increments happen on the list too.
		for _, v := range list {
			e.markNodeDirty(v)
		}
		for _, v := range changed {
			e.markOutDirty(v)
		}
	}
	e.applyDrops()

	snap := e.snapCur
	e.round = r
	info := &e.infos[r%len(e.infos)]
	*info = RoundInfo{
		Round: r, Wake: st.Wake, Outputs: snap, Changed: changed,
		EdgeAdds: adds, EdgeRemoves: removes,
		Messages: msgs, Bits: bits,
		eng: e,
	}
	return info
}

// sparseBroadcast is the sparse phase-1 callback: broadcast plus
// per-sender accounting. len(outbox)·deg sums to exactly the
// per-receiver delivery count, since every neighbor of a sender is awake
// and receives the batch (whether or not it is active enough to act on
// it) — which is what lets phase 2 skip quiescent receivers without
// perturbing Messages/Bits.
func (e *Engine) sparseBroadcast(ctx *Ctx, _ int, v graph.NodeID) (int, int64) {
	if e.quiet[v] > 0 {
		// Grace fast path: v reported Quiescent with an unchanged output,
		// so by the terminal contract its Broadcast is forever empty —
		// skip the call. The outbox may still hold the batch from the
		// round quiescence was detected and must be emptied.
		e.outbox[v] = e.outbox[v][:0]
		return 0, 0
	}
	*ctx = Ctx{Node: v, Round: e.stepRound, Seed: e.cfg.Seed}
	out := e.states[v].Broadcast(ctx, e.outbox[v][:0])
	e.outbox[v] = out
	deg := e.adj.Degree(v)
	var b int64
	if e.sizer != nil && len(out) > 0 {
		for i := range out {
			b += int64(e.sizer.MessageBits(out[i]))
		}
		b *= int64(deg)
	}
	return len(out) * deg, b
}

// sparseProcess is the sparse phase-2 callback: deliver, process,
// snapshot, diff and quiesce, fused per node. Delivery is one pass of
// appends — each neighbor's outbox header is a random read into a
// node-indexed array, so a separate sizing pass would double the cache
// misses; the inbox keeps its high-water capacity across rounds, so the
// appends stop allocating once the round mix is steady. (Dropped
// neighbors' outboxes are empty by contract and by applyDrops.)
func (e *Engine) sparseProcess(ctx *Ctx, w int, v graph.NodeID) (int, int64) {
	if e.quiet[v] > 0 {
		// Grace fast path: a quiescent node's output is frozen regardless
		// of inputs, so delivery and Process are skipped; the node only
		// propagates its terminal value through the snapshot ring until
		// every slot holds it and applyDrops retires it. Any edge touch
		// resets quiet and routes it back through the full path.
		e.snapCur[v] = e.snapPrev[v]
		if e.quiet[v]++; int(e.quiet[v]) > e.lag {
			e.drops[w] = append(e.drops[w], v)
		}
		return 0, 0
	}
	nbrs := e.adj.Neighbors(v)
	in := e.inbox[v][:0]
	for _, u := range nbrs {
		run := e.outbox[u]
		for i := range run {
			in = append(in, Incoming{From: u, M: run[i]})
		}
	}
	e.inbox[v] = in
	*ctx = Ctx{Node: v, Round: e.stepRound, Seed: e.cfg.Seed}
	e.states[v].Process(ctx, in, len(nbrs))
	val := e.states[v].Output()
	e.snapCur[v] = val
	old := problems.Bot
	if e.snapPrev != nil {
		old = e.snapPrev[v]
	}
	if val != old {
		e.chg[w] = append(e.chg[w], v)
		e.quiet[v] = 0
	} else if q := e.quiescer[v]; q != nil && q.Quiescent() {
		// Drop only after the output has been stable for OutputLag+1
		// consecutive quiescent rounds, so every snapshot-ring slot — and
		// therefore Outputs and DelayedOutputs for all future rounds —
		// already holds the terminal value.
		if e.quiet[v]++; int(e.quiet[v]) > e.lag {
			e.drops[w] = append(e.drops[w], v)
		}
	} else {
		e.quiet[v] = 0
	}
	return 0, 0
}

// stepDense plays the round as the pre-sparse reference walk: the graph
// is materialized eagerly and both phases iterate the full node space,
// gated on the awake bitmap. It is the differential baseline the sparse
// plane is tested against, and the honest O(n + m) comparator of the
// sparse-round benchmarks.
func (e *Engine) stepDense(r int, st *adversary.Step, adds, removes []graph.EdgeKey) *RoundInfo {
	g := e.resolver.Materialize()

	// Phase 1: broadcast, with the same per-sender accounting as the
	// sparse walk.
	msgs, bits := e.parallelNodes(g, func(ctx *Ctx, _ int, v graph.NodeID) (int, int64) {
		*ctx = Ctx{Node: v, Round: r, Seed: e.cfg.Seed}
		out := e.states[v].Broadcast(ctx, e.outbox[v][:0])
		e.outbox[v] = out
		deg := g.Degree(v)
		var b int64
		if e.sizer != nil && len(out) > 0 {
			for i := range out {
				b += int64(e.sizer.MessageBits(out[i]))
			}
			b *= int64(deg)
		}
		return len(out) * deg, b
	})

	// Phase 2: deliver, process, snapshot and diff — fused per node so no
	// serial post-pass remains. Inboxes are sized exactly before filling
	// (one O(deg) counting pass), then delivery is batched per sender:
	// each neighbor's outbox lands as one contiguous run written through
	// a pre-sliced window.
	snap, prev := e.ringSlots(r)
	for w := range e.chg {
		e.chg[w] = e.chg[w][:0]
	}
	e.parallelNodes(g, func(ctx *Ctx, w int, v graph.NodeID) (int, int64) {
		need := 0
		for _, u := range g.Neighbors(v) {
			need += len(e.outbox[u])
		}
		in := e.inbox[v]
		if cap(in) < need {
			in = make([]Incoming, need)
		} else {
			in = in[:need]
		}
		pos := 0
		for _, u := range g.Neighbors(v) {
			run := e.outbox[u]
			if len(run) == 0 {
				continue
			}
			dst := in[pos : pos+len(run) : pos+len(run)]
			for i := range run {
				dst[i] = Incoming{From: u, M: run[i]}
			}
			pos += len(run)
		}
		e.inbox[v] = in
		*ctx = Ctx{Node: v, Round: r, Seed: e.cfg.Seed}
		e.states[v].Process(ctx, in, g.Degree(v))
		val := e.states[v].Output()
		snap[v] = val
		old := problems.Bot
		if prev != nil {
			old = prev[v]
		}
		if val != old {
			e.chg[w] = append(e.chg[w], v)
		}
		return 0, 0
	})

	changed := e.changed[:0]
	for w := range e.chg {
		changed = append(changed, e.chg[w]...)
	}
	e.changed = changed
	if e.ckptTrack {
		// The dense walk runs Process on every awake node, so they are
		// all dirty — deltas of Dense runs degenerate to full node
		// sections by construction.
		for v := 0; v < e.cfg.N; v++ {
			if e.awake[v] {
				e.markNodeDirty(graph.NodeID(v))
			}
		}
		for _, v := range changed {
			e.markOutDirty(v)
		}
	}

	e.round = r
	info := &e.infos[r%len(e.infos)]
	*info = RoundInfo{
		Round: r, Wake: st.Wake, Outputs: snap, Changed: changed,
		EdgeAdds: adds, EdgeRemoves: removes,
		Messages: msgs, Bits: bits,
		eng: e, g: g,
	}
	return info
}

// panicSleepingEdge is the cold path for model violations, kept out of
// the O(|adds|) validation loop.
func panicSleepingEdge(r int, u, v graph.NodeID, uAwake bool) {
	s := u
	if uAwake {
		s = v
	}
	o := u + v - s
	panic(fmt.Sprintf("engine: round %d edge {%d,%d} touches sleeping node", r, s, o))
}

// Run plays the given number of rounds and returns the last round's info
// (nil if rounds <= 0).
func (e *Engine) Run(rounds int) *RoundInfo {
	var last *RoundInfo
	for i := 0; i < rounds; i++ {
		last = e.Step()
	}
	return last
}

// RunUntil plays rounds until pred returns true or maxRounds is reached.
// It returns the round at which pred first held and true, or maxRounds
// and false.
func (e *Engine) RunUntil(maxRounds int, pred func(*RoundInfo) bool) (int, bool) {
	for i := 0; i < maxRounds; i++ {
		info := e.Step()
		if pred(info) {
			return info.Round, true
		}
	}
	return maxRounds, false
}

// Outputs returns the latest output snapshot (nil before round 1). The
// slice is pooled like RoundInfo.Outputs: it stays valid until the engine
// plays OutputLag+1 further rounds; copy to retain beyond that.
//
//dynlint:loan
func (e *Engine) Outputs() []problems.Value {
	if e.round == 0 {
		return nil
	}
	return e.snaps[e.round%len(e.snaps)]
}
