package engine

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/dyngraph"
)

// The streaming trace plane's engine-facing contract: a run recorded
// through dyngraph.StreamEncoder and replayed through
// adversary.ScriptedStream is indistinguishable — outputs, accounting,
// Changed sets, round diffs — from both the live run and an in-memory
// adversary.Scripted replay, for every worker count. These tests are the
// streaming-vs-materialized equivalence leg of the PR 8 conformance
// suite; run them under -race.

func p2pAdv(n int) func() adversary.Adversary {
	return func() adversary.Adversary {
		return &adversary.P2PChurn{
			N:            n,
			Init:         n / 8,
			JoinPerRound: 3,
			Degree:       3,
			SessionMin:   4,
			RejoinDelay:  2,
			Events:       []adversary.MassDeparture{{Round: 10, Frac: 0.4}},
			Seed:         23,
		}
	}
}

// recordWire runs the adversary on a single-worker reference engine and
// records every round's wake set and topology diff into the trace wire
// format.
func recordWire(t *testing.T, n, rounds int, mkAdv func() adversary.Adversary) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc, err := dyngraph.NewStreamEncoder(&buf, n, rounds)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{N: n, Seed: 42, Workers: 1}, mkAdv(), sizedAlgo{})
	e.OnRound(func(info *RoundInfo) {
		if err := enc.WriteRound(info.Wake, info.EdgeAdds, info.EdgeRemoves); err != nil {
			t.Fatalf("recording round %d: %v", info.Round, err)
		}
	})
	e.Run(rounds)
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamingVsMaterializedReplay records a P2PChurn run, then replays
// it three ways — live adversary, in-memory Scripted over DecodeTrace,
// and ScriptedStream straight off the wire bytes — across worker counts,
// requiring bit-identical round traces. The replays run a few rounds past
// the recording's end, pinning that both script kinds persist the final
// topology as empty diffs.
func TestStreamingVsMaterializedReplay(t *testing.T) {
	const n = 256
	const recorded = 24
	const rounds = recorded + 4
	wire := recordWire(t, n, recorded, p2pAdv(n))

	tr, err := dyngraph.DecodeTrace(bytes.NewReader(wire))
	if err != nil {
		t.Fatalf("decoding recorded wire: %v", err)
	}
	// The in-memory scripted replay is the reference for all rounds
	// (including the frozen tail past the recording); the live run pins
	// the recorded prefix — past it the live adversary keeps churning.
	ref := collectTrace(n, 1, rounds, func() adversary.Adversary {
		return adversary.NewScripted(tr)
	}, sizedAlgo{})
	live := collectTrace(n, 1, recorded, p2pAdv(n), sizedAlgo{})
	diffTraces(t, "live-vs-scripted", live, ref)

	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, w := range workerCounts {
		got := collectTrace(n, w, rounds, func() adversary.Adversary {
			return adversary.NewScripted(tr)
		}, sizedAlgo{})
		diffTraces(t, fmt.Sprintf("scripted/workers=%d", w), ref, got)

		var ss *adversary.ScriptedStream
		got = collectTrace(n, w, rounds, func() adversary.Adversary {
			dec, err := dyngraph.NewStreamDecoder(bytes.NewReader(wire))
			if err != nil {
				t.Fatalf("stream header: %v", err)
			}
			ss = adversary.NewScriptedStream(dec)
			return ss
		}, sizedAlgo{})
		if err := ss.Err(); err != nil {
			t.Fatalf("workers=%d: streamed replay error: %v", w, err)
		}
		diffTraces(t, fmt.Sprintf("streamed/workers=%d", w), ref, got)
	}
}

// TestP2PChurnDeterminismAcrossWorkerCounts runs the live P2PChurn
// adversary for Workers ∈ {1, 4, GOMAXPROCS} and requires identical
// per-round outputs, deltas and accounting — the engine-level
// same-seed determinism leg for the new adversary.
func TestP2PChurnDeterminismAcrossWorkerCounts(t *testing.T) {
	const n = serialThreshold * 2
	const rounds = 24
	ref := collectTrace(n, 1, rounds, p2pAdv(n), sizedAlgo{})
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		got := collectTrace(n, w, rounds, p2pAdv(n), sizedAlgo{})
		diffTraces(t, fmt.Sprintf("p2p/workers=%d", w), ref, got)
	}
}
