package engine

import (
	"bytes"
	"fmt"
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// recordChainTrace attaches the standard trace observer used by the
// chain tests.
func recordChainTrace(e *Engine, tr *roundTrace) {
	e.OnRound(func(info *RoundInfo) {
		tr.outputs = append(tr.outputs, append([]problems.Value(nil), info.Outputs...))
		tr.changed = append(tr.changed, append([]graph.NodeID(nil), info.Changed...))
		tr.adds = append(tr.adds, append([]graph.EdgeKey(nil), info.EdgeAdds...))
		tr.removes = append(tr.removes, append([]graph.EdgeKey(nil), info.EdgeRemoves...))
		tr.messages = append(tr.messages, info.Messages)
		tr.bits = append(tr.bits, info.Bits)
	})
}

// buildChain runs an engine for rounds rounds, starting a checkpoint
// chain at round base and appending one delta record every stride rounds
// after it. It returns the reference trace, the chain bytes, the byte
// offset of every chain prefix (prefixes[i] ends after record i) and the
// round each record captured.
func buildChain(t *testing.T, cfg Config, adv adversary.Adversary, algo Algorithm, rounds, base, stride int) (roundTrace, []byte, []int, []int) {
	t.Helper()
	e := New(cfg, adv, algo)
	var tr roundTrace
	recordChainTrace(e, &tr)
	var buf bytes.Buffer
	var offsets, recRounds []int
	for r := 1; r <= rounds; r++ {
		e.Step()
		switch {
		case r == base:
			if err := e.CheckpointChain(&buf); err != nil {
				t.Fatalf("chain base at round %d: %v", r, err)
			}
			offsets = append(offsets, buf.Len())
			recRounds = append(recRounds, r)
		case r > base && (r-base)%stride == 0:
			if err := e.CheckpointDelta(&buf); err != nil {
				t.Fatalf("chain delta at round %d: %v", r, err)
			}
			offsets = append(offsets, buf.Len())
			recRounds = append(recRounds, r)
		}
	}
	return tr, buf.Bytes(), offsets, recRounds
}

// resumeChainTrace restores a chain prefix into a fresh engine and plays
// the remaining rounds, recording their trace.
func resumeChainTrace(t *testing.T, cfg Config, adv adversary.Adversary, algo Algorithm, chain []byte, rounds int) roundTrace {
	t.Helper()
	e := New(cfg, adv, algo)
	if err := e.RestoreChain(bytes.NewReader(chain)); err != nil {
		t.Fatalf("restore chain: %v", err)
	}
	var tr roundTrace
	recordChainTrace(e, &tr)
	for e.Round() < rounds {
		e.Step()
	}
	return tr
}

// TestCheckpointChainResumeFromEveryPrefix restores every prefix of an
// incremental chain — base only, base+1 delta, … — into a fresh engine
// and requires the resumed rounds to be bit-identical to the
// uninterrupted run, under different worker counts.
func TestCheckpointChainResumeFromEveryPrefix(t *testing.T) {
	const n = 96
	const rounds = 24
	for name, mk := range checkpointAdversaries(n) {
		t.Run(name, func(t *testing.T) {
			cfg := Config{N: n, Seed: 42, Workers: 3}
			ref, chain, offsets, recRounds := buildChain(t, cfg, mk(), ckAlgo{}, rounds, 4, 3)
			for i, off := range offsets {
				for _, w := range []int{1, 4} {
					t.Run(fmt.Sprintf("prefix=%d/w=%d", i, w), func(t *testing.T) {
						c := cfg
						c.Workers = w
						res := resumeChainTrace(t, c, mk(), ckAlgo{}, chain[:off], rounds)
						if len(res.outputs) != rounds-recRounds[i] {
							t.Fatalf("resumed %d rounds, want %d", len(res.outputs), rounds-recRounds[i])
						}
						diffTraces(t, fmt.Sprintf("chain prefix %d", i), ref.tail(recRounds[i]), res)
					})
				}
			}
		})
	}
}

// TestCheckpointChainDense runs the every-prefix equivalence check on
// the dense reference walk (dense deltas degenerate to full node
// sections but must still link and restore correctly).
func TestCheckpointChainDense(t *testing.T) {
	const n = 64
	const rounds = 16
	mk := churnAdv(n)
	cfg := Config{N: n, Seed: 7, Workers: 2, Dense: true}
	ref, chain, offsets, recRounds := buildChain(t, cfg, mk(), ckAlgo{}, rounds, 3, 4)
	for i, off := range offsets {
		res := resumeChainTrace(t, cfg, mk(), ckAlgo{}, chain[:off], rounds)
		diffTraces(t, fmt.Sprintf("dense chain prefix %d", i), ref.tail(recRounds[i]), res)
	}
}

// TestCheckpointChainAppendAfterRestore requires a restored engine to
// keep extending the same chain: restore a prefix, step on, append a
// delta, and the extended chain must restore bit-identically again.
func TestCheckpointChainAppendAfterRestore(t *testing.T) {
	const n = 64
	const rounds = 16
	mk := churnAdv(n)
	cfg := Config{N: n, Seed: 42, Workers: 2}
	ref, chain, offsets, recRounds := buildChain(t, cfg, mk(), ckAlgo{}, rounds, 3, 4)
	i := len(offsets) / 2
	e := New(cfg, mk(), ckAlgo{})
	if err := e.RestoreChain(bytes.NewReader(chain[:offsets[i]])); err != nil {
		t.Fatalf("restore: %v", err)
	}
	extBuf := bytes.NewBuffer(append([]byte(nil), chain[:offsets[i]]...))
	e.Step()
	e.Step()
	if err := e.CheckpointDelta(extBuf); err != nil {
		t.Fatalf("append after restore: %v", err)
	}
	wantRound := recRounds[i] + 2
	res := resumeChainTrace(t, cfg, mk(), ckAlgo{}, extBuf.Bytes(), rounds)
	diffTraces(t, "extended chain", ref.tail(wantRound), res)
}

// TestCheckpointChainRejects pins the chain-abuse matrix: a delta over
// the wrong base, reordered, skipped or duplicated records, truncation
// at every offset, bit corruption, and a bare (non-chain) stream all
// fail without producing a silently divergent engine.
func TestCheckpointChainRejects(t *testing.T) {
	const n = 48
	const rounds = 12
	mk := churnAdv(n)
	cfg := Config{N: n, Seed: 5, Workers: 1}
	_, chain, offsets, _ := buildChain(t, cfg, mk(), ckAlgo{}, rounds, 3, 2)
	if len(offsets) < 4 {
		t.Fatalf("chain too short for abuse matrix: %d records", len(offsets))
	}
	fresh := func() *Engine { return New(cfg, mk(), ckAlgo{}) }
	record := func(i int) []byte { return chain[offsets[i-1]:offsets[i]] }

	t.Run("wrong-base", func(t *testing.T) {
		// A structurally identical chain from a different seed: its deltas
		// must not apply over this chain's base.
		c2 := cfg
		c2.Seed = 6
		_, chainB, offB, _ := buildChain(t, c2, mk(), ckAlgo{}, rounds, 3, 2)
		mixed := append([]byte(nil), chain[:offsets[0]]...)
		mixed = append(mixed, chainB[offB[0]:offB[1]]...)
		if err := fresh().RestoreChain(bytes.NewReader(mixed)); err == nil {
			t.Fatal("delta from a different chain applied over foreign base")
		}
	})
	t.Run("skipped-record", func(t *testing.T) {
		mixed := append([]byte(nil), chain[:offsets[0]]...)
		mixed = append(mixed, record(2)...) // skip record 1
		if err := fresh().RestoreChain(bytes.NewReader(mixed)); err == nil {
			t.Fatal("chain with a skipped delta restored")
		}
	})
	t.Run("reordered-records", func(t *testing.T) {
		mixed := append([]byte(nil), chain[:offsets[0]]...)
		mixed = append(mixed, record(2)...)
		mixed = append(mixed, record(1)...)
		if err := fresh().RestoreChain(bytes.NewReader(mixed)); err == nil {
			t.Fatal("chain with reordered deltas restored")
		}
	})
	t.Run("duplicated-record", func(t *testing.T) {
		mixed := append([]byte(nil), chain[:offsets[1]]...)
		mixed = append(mixed, record(1)...)
		if err := fresh().RestoreChain(bytes.NewReader(mixed)); err == nil {
			t.Fatal("chain with a duplicated delta restored")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		// Every truncation point must either restore a valid shorter prefix
		// (exactly at a record boundary) or fail — never a half-applied tail.
		boundary := make(map[int]bool, len(offsets))
		for _, off := range offsets {
			boundary[off] = true
		}
		for cut := 0; cut < len(chain); cut++ {
			err := fresh().RestoreChain(bytes.NewReader(chain[:cut]))
			if boundary[cut] {
				if err != nil {
					t.Fatalf("restore at record boundary %d failed: %v", cut, err)
				}
			} else if err == nil {
				t.Fatalf("restore of torn %d-byte prefix succeeded", cut)
			}
		}
	})
	t.Run("corrupted", func(t *testing.T) {
		for off := 0; off < len(chain); off += 13 {
			bad := append([]byte(nil), chain...)
			bad[off] ^= 0x40
			if err := fresh().RestoreChain(bytes.NewReader(bad)); err == nil {
				t.Fatalf("restore with byte %d flipped succeeded", off)
			}
		}
	})
	t.Run("bare-stream", func(t *testing.T) {
		var buf bytes.Buffer
		e := New(cfg, mk(), ckAlgo{})
		for r := 0; r < 5; r++ {
			e.Step()
		}
		if err := e.Checkpoint(&buf); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		if err := fresh().RestoreChain(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatal("RestoreChain accepted a bare checkpoint stream")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if err := fresh().RestoreChain(bytes.NewReader(nil)); err == nil {
			t.Fatal("RestoreChain accepted an empty stream")
		}
	})
	t.Run("delta-without-base", func(t *testing.T) {
		e := New(cfg, mk(), ckAlgo{})
		e.Step()
		var buf bytes.Buffer
		if err := e.CheckpointDelta(&buf); err == nil {
			t.Fatal("CheckpointDelta without a chain base succeeded")
		}
	})
}

// TestCheckpointChainRebase pins the rebase workflow dynsim's
// -checkpoint-full-every knob uses: a fresh CheckpointChain on a new
// buffer restarts the sequence, and the rebased chain restores to a run
// bit-identical to the uninterrupted one.
func TestCheckpointChainRebase(t *testing.T) {
	const n = 64
	const rounds = 20
	mk := churnAdv(n)
	cfg := Config{N: n, Seed: 11, Workers: 2}
	e := New(cfg, mk(), ckAlgo{})
	var ref roundTrace
	recordChainTrace(e, &ref)
	var old bytes.Buffer
	for r := 1; r <= 8; r++ {
		e.Step()
		switch r {
		case 2:
			if err := e.CheckpointChain(&old); err != nil {
				t.Fatalf("chain base: %v", err)
			}
		case 4, 6, 8:
			if err := e.CheckpointDelta(&old); err != nil {
				t.Fatalf("chain delta: %v", err)
			}
		}
	}
	if got := e.ChainSeq(); got != 4 {
		t.Fatalf("ChainSeq after 4 records = %d", got)
	}
	// Rebase: fresh base capturing the current state on a new buffer.
	var rebased bytes.Buffer
	if err := e.CheckpointChain(&rebased); err != nil {
		t.Fatalf("rebase: %v", err)
	}
	if got := e.ChainSeq(); got != 1 {
		t.Fatalf("ChainSeq after rebase = %d", got)
	}
	lastDelta := 8
	for r := 9; r <= rounds; r++ {
		e.Step()
		if r%3 == 0 {
			if err := e.CheckpointDelta(&rebased); err != nil {
				t.Fatalf("post-rebase delta: %v", err)
			}
			lastDelta = r
		}
	}
	res := resumeChainTrace(t, cfg, mk(), ckAlgo{}, rebased.Bytes(), rounds)
	diffTraces(t, "rebased chain", ref.tail(lastDelta), res)
}

// checkpointAdversariesWrapped extends the adversary matrix with the
// newly checkpointable wrappers: Wakeup (staggered schedule over churn)
// and LocalStatic (frozen zone over churn).
func checkpointAdversariesWrapped(n int) map[string]func() adversary.Adversary {
	return map[string]func() adversary.Adversary{
		"wakeup": func() adversary.Adversary {
			return &adversary.Wakeup{
				Inner:    churnAdv(n)(),
				Schedule: adversary.StaggeredSchedule(n, n/6),
			}
		},
		"localstatic": func() adversary.Adversary {
			s := prf.NewStream(9, 0, 0, prf.PurposeWorkload)
			base := graph.GNP(n, 6.0/float64(n), s)
			return &adversary.LocalStatic{
				Inner:     &adversary.Churn{Base: base, Add: n / 24, Del: n / 24, Seed: 17},
				Base:      base,
				Protected: []graph.NodeID{1, 5, 9},
				Alpha:     2,
			}
		},
	}
}

// TestCheckpointWrapperAdversaries runs both full-checkpoint and chain
// resume equivalence for the wrapper adversaries that gained
// Checkpointer support: LocalStatic and Wakeup.
func TestCheckpointWrapperAdversaries(t *testing.T) {
	const n = 96
	const rounds = 20
	for name, mk := range checkpointAdversariesWrapped(n) {
		t.Run(name+"/full", func(t *testing.T) {
			cfg := Config{N: n, Seed: 42, Workers: 2}
			ref, ck := runWithCheckpoint(t, cfg, mk(), ckAlgo{}, rounds, 7)
			res := resumeTrace(t, cfg, mk(), ckAlgo{}, ck, rounds)
			diffTraces(t, name+" resumed", ref.tail(7), res)
		})
		t.Run(name+"/chain", func(t *testing.T) {
			cfg := Config{N: n, Seed: 42, Workers: 2}
			ref, chain, offsets, recRounds := buildChain(t, cfg, mk(), ckAlgo{}, rounds, 3, 3)
			for i, off := range offsets {
				res := resumeChainTrace(t, cfg, mk(), ckAlgo{}, chain[:off], rounds)
				diffTraces(t, fmt.Sprintf("%s chain prefix %d", name, i), ref.tail(recRounds[i]), res)
			}
		})
	}
}
