package engine

import (
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// floodAlgo outputs the maximum node id heard so far (including its own),
// exercising multi-round state propagation.
type floodAlgo struct{}

func (floodAlgo) Name() string { return "flood-max" }

func (floodAlgo) NewNode(v graph.NodeID) NodeProc { return &floodNode{id: v, best: int64(v)} }

type floodNode struct {
	id   graph.NodeID
	best int64
}

func (f *floodNode) Start(ctx *Ctx, input problems.Value) {
	if input != problems.Bot {
		f.best = int64(input)
	}
}

func (f *floodNode) Broadcast(ctx *Ctx, buf []SubMsg) []SubMsg {
	return append(buf, SubMsg{Kind: 1, A: f.best})
}

func (f *floodNode) Process(ctx *Ctx, in []Incoming, deg int) {
	for _, m := range in {
		if m.M.A > f.best {
			f.best = m.M.A
		}
	}
}

func (f *floodNode) Output() problems.Value { return problems.Value(f.best) }

// degreeAlgo outputs 1 + its round degree, exercising deg delivery.
type degreeAlgo struct{}

func (degreeAlgo) Name() string                  { return "degree" }
func (degreeAlgo) NewNode(graph.NodeID) NodeProc { return &degreeNode{} }

type degreeNode struct{ out problems.Value }

func (d *degreeNode) Start(*Ctx, problems.Value)            {}
func (d *degreeNode) Broadcast(_ *Ctx, b []SubMsg) []SubMsg { return append(b, SubMsg{Kind: 2}) }
func (d *degreeNode) Process(_ *Ctx, in []Incoming, deg int) {
	if len(in) != deg {
		panic("inbox size != degree for all-broadcast algorithm")
	}
	d.out = problems.Value(deg + 1)
}
func (d *degreeNode) Output() problems.Value { return d.out }

// sizedAlgo declares 7 bits per message.
type sizedAlgo struct{ degreeAlgo }

func (sizedAlgo) MessageBits(SubMsg) int { return 7 }

// roundAlgo outputs the number of rounds it has been awake.
type roundAlgo struct{}

func (roundAlgo) Name() string                  { return "age" }
func (roundAlgo) NewNode(graph.NodeID) NodeProc { return &roundNode{} }

type roundNode struct{ age int64 }

func (a *roundNode) Start(*Ctx, problems.Value)            {}
func (a *roundNode) Broadcast(_ *Ctx, b []SubMsg) []SubMsg { return b }
func (a *roundNode) Process(*Ctx, []Incoming, int)         { a.age++ }
func (a *roundNode) Output() problems.Value                { return problems.Value(a.age) }

func TestFloodConvergesToMaxID(t *testing.T) {
	const n = 16
	e := New(Config{N: n, Seed: 1}, adversary.Static{G: graph.Path(n)}, floodAlgo{})
	// Path diameter n-1: after n rounds everyone knows the max.
	e.Run(n)
	for v, out := range e.Outputs() {
		if out != problems.Value(n-1) {
			t.Fatalf("node %d output %d, want %d", v, out, n-1)
		}
	}
}

func TestDegreeDelivery(t *testing.T) {
	g := graph.Star(5)
	e := New(Config{N: 5, Seed: 2}, adversary.Static{G: g}, degreeAlgo{})
	info := e.Step()
	if info.Outputs[0] != 5 { // center degree 4 + 1
		t.Fatalf("center output %d", info.Outputs[0])
	}
	for v := 1; v < 5; v++ {
		if info.Outputs[v] != 2 {
			t.Fatalf("leaf %d output %d", v, info.Outputs[v])
		}
	}
	if info.Messages != 2*g.M() {
		t.Fatalf("messages = %d, want %d", info.Messages, 2*g.M())
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 2048 // above serialThreshold so sharding actually engages
	run := func(workers int) []problems.Value {
		s := prf.NewStream(7, 0, 0, prf.PurposeWorkload)
		base := graph.GNP(n, 4.0/n, s)
		adv := &adversary.Churn{Base: base, Add: 16, Del: 16, Seed: 3}
		e := New(Config{N: n, Seed: 99, Workers: workers}, adv, floodAlgo{})
		e.Run(12)
		return e.Outputs()
	}
	a := run(1)
	b := run(4)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d: workers=1 -> %d, workers=4 -> %d", v, a[v], b[v])
		}
	}
}

func TestWakeupAndInputs(t *testing.T) {
	const n = 6
	sched := adversary.StaggeredSchedule(n, 2)
	adv := &adversary.Wakeup{Inner: adversary.Static{G: graph.Complete(n)}, Schedule: sched}
	input := make([]problems.Value, n)
	for v := range input {
		input[v] = problems.Value(100 + v)
	}
	e := New(Config{N: n, Seed: 5, Input: input}, adv, floodAlgo{})
	info := e.Step() // round 1: nodes 0,1 awake
	if e.Awake(2) || !e.Awake(0) {
		t.Fatal("wake state wrong after round 1")
	}
	// Sleeping nodes output Bot.
	if info.Outputs[4] != problems.Bot {
		t.Fatalf("sleeping node output %d", info.Outputs[4])
	}
	// Awake nodes flooded their inputs: max(100, 101) = 101.
	if info.Outputs[0] != 101 || info.Outputs[1] != 101 {
		t.Fatalf("awake outputs = %d, %d", info.Outputs[0], info.Outputs[1])
	}
	e.Run(5)
	for v, out := range e.Outputs() {
		if out != 105 {
			t.Fatalf("node %d final output %d, want 105", v, out)
		}
	}
}

func TestAdversaryViewLag(t *testing.T) {
	const n = 4
	var lagSeen []problems.Value
	probe := adversaryFunc(func(v adversary.View) adversary.Step {
		st := adversary.Step{G: graph.Empty(n)}
		if v.Round() == 1 {
			st.Wake = adversary.AllNodes(n)
		}
		if d := v.DelayedOutputs(); d != nil {
			lagSeen = append(lagSeen, d[0])
		} else {
			lagSeen = append(lagSeen, -1)
		}
		return st
	})
	e := New(Config{N: n, Seed: 8, OutputLag: 2}, probe, roundAlgo{})
	e.Run(5)
	// roundAlgo outputs its age; at view of round r the adversary must see
	// the snapshot of round r-2: rounds 1,2 -> nil; round 3 -> age 1; ...
	want := []problems.Value{-1, -1, 1, 2, 3}
	for i, w := range want {
		if lagSeen[i] != w {
			t.Fatalf("round %d: delayed view %v, want %v (all: %v)", i+1, lagSeen[i], w, lagSeen)
		}
	}
}

func TestFullyAdaptiveLag(t *testing.T) {
	const n = 2
	var lagSeen []problems.Value
	probe := adversaryFunc(func(v adversary.View) adversary.Step {
		st := adversary.Step{G: graph.Empty(n)}
		if v.Round() == 1 {
			st.Wake = adversary.AllNodes(n)
		}
		if d := v.DelayedOutputs(); d != nil {
			lagSeen = append(lagSeen, d[0])
		} else {
			lagSeen = append(lagSeen, -1)
		}
		return st
	})
	e := New(Config{N: n, Seed: 8, OutputLag: 1}, probe, roundAlgo{})
	e.Run(3)
	want := []problems.Value{-1, 1, 2}
	for i, w := range want {
		if lagSeen[i] != w {
			t.Fatalf("adaptive round %d: saw %v want %v", i+1, lagSeen[i], w)
		}
	}
}

func TestBitAccounting(t *testing.T) {
	g := graph.Cycle(6)
	e := New(Config{N: 6, Seed: 3}, adversary.Static{G: g}, sizedAlgo{})
	info := e.Step()
	if info.Bits != int64(7*info.Messages) {
		t.Fatalf("bits = %d for %d messages", info.Bits, info.Messages)
	}
	// Without a BitSizer, bits stay 0.
	e2 := New(Config{N: 6, Seed: 3}, adversary.Static{G: g}, degreeAlgo{})
	if info := e2.Step(); info.Bits != 0 {
		t.Fatalf("bits = %d without sizer", info.Bits)
	}
}

func TestRunUntil(t *testing.T) {
	const n = 10
	e := New(Config{N: n, Seed: 1}, adversary.Static{G: graph.Path(n)}, floodAlgo{})
	round, ok := e.RunUntil(100, func(info *RoundInfo) bool {
		return info.Outputs[0] == problems.Value(n-1)
	})
	if !ok || round != n-1 {
		t.Fatalf("RunUntil = (%d, %v), want (%d, true)", round, ok, n-1)
	}
	// Predicate never true: returns (maxRounds, false).
	e2 := New(Config{N: n, Seed: 1}, adversary.Static{G: graph.Empty(n)}, floodAlgo{})
	round, ok = e2.RunUntil(5, func(*RoundInfo) bool { return false })
	if ok || round != 5 {
		t.Fatalf("RunUntil = (%d, %v), want (5, false)", round, ok)
	}
}

func TestObserversSeeEveryRound(t *testing.T) {
	const n = 5
	var rounds []int
	e := New(Config{N: n, Seed: 1}, adversary.Static{G: graph.Cycle(n)}, degreeAlgo{})
	e.OnRound(func(info *RoundInfo) { rounds = append(rounds, info.Round) })
	e.Run(4)
	if len(rounds) != 4 || rounds[0] != 1 || rounds[3] != 4 {
		t.Fatalf("observer rounds = %v", rounds)
	}
}

func TestEnginePanicsOnSleepingEdge(t *testing.T) {
	bad := adversaryFunc(func(v adversary.View) adversary.Step {
		// Edge between 0 and 1, but only 0 is awake.
		return adversary.Step{
			G:    graph.FromEdges(3, []graph.EdgeKey{graph.MakeEdgeKey(0, 1)}),
			Wake: []graph.NodeID{0},
		}
	})
	e := New(Config{N: 3, Seed: 1}, bad, degreeAlgo{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for edge touching sleeping node")
		}
	}()
	e.Step()
}

func TestEnginePanicsOnWrongGraphSize(t *testing.T) {
	bad := adversaryFunc(func(v adversary.View) adversary.Step {
		return adversary.Step{G: graph.Empty(7)}
	})
	e := New(Config{N: 3, Seed: 1}, bad, degreeAlgo{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong node space")
		}
	}()
	e.Step()
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{N: 0, Seed: 1},
		{N: 4, Input: make([]problems.Value, 3)},
		{N: 4, OutputLag: -1},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			New(cfg, adversary.Static{G: graph.Empty(4)}, degreeAlgo{})
		}()
	}
}

func TestCtxStreamPurposeSeparation(t *testing.T) {
	ctx := Ctx{Node: 3, Round: 5, Seed: 11, PurposeBase: 2 * prf.InstanceStride}
	s1 := ctx.Stream(prf.PurposeTentativeColor)
	base := Ctx{Node: 3, Round: 5, Seed: 11}
	s2 := base.Stream(prf.PurposeTentativeColor)
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("purpose base did not separate streams")
	}
}

// adversaryFunc adapts a function to adversary.Adversary.
type adversaryFunc func(adversary.View) adversary.Step

func (f adversaryFunc) Step(v adversary.View) adversary.Step { return f(v) }

func BenchmarkEngineRoundStatic(b *testing.B) {
	const n = 4096
	s := prf.NewStream(1, 0, 0, prf.PurposeWorkload)
	g := graph.GNP(n, 8.0/n, s)
	e := New(Config{N: n, Seed: 2}, adversary.Static{G: g}, floodAlgo{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkEngineRoundSerial(b *testing.B) {
	const n = 4096
	s := prf.NewStream(1, 0, 0, prf.PurposeWorkload)
	g := graph.GNP(n, 8.0/n, s)
	e := New(Config{N: n, Seed: 2, Workers: 1}, adversary.Static{G: g}, floodAlgo{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
