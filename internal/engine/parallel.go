package engine

import (
	"sort"
	"sync"

	"dynlocal/internal/graph"
)

// serialThreshold is the node count below which sharding overhead exceeds
// the benefit and phases run on the calling goroutine.
const serialThreshold = 512

// phaseFunc processes one node and returns its delivered message count and
// declared bits (both zero for phases without accounting). ctx is a
// per-worker scratch the callback must fully overwrite before use: a
// per-node stack Ctx would escape to the heap at every interface call. w is
// the worker index (0 on the serial path), letting callbacks append to
// per-worker buffers — e.g. the changed-output shards — without contention.
type phaseFunc func(ctx *Ctx, w int, v graph.NodeID) (msgs int, bits int64)

// workerAcc is a per-worker accounting cell, padded out to a cache line so
// concurrent workers do not false-share.
type workerAcc struct {
	msgs int
	bits int64
	_    [48]byte
}

// parallelNodes applies fn to every awake node and returns the summed
// accounting, sharded across the engine's workers with an implicit barrier
// on return. Shards are cut by cumulative degree in g (node v weighs
// deg(v)+1), so skewed-degree graphs — stars, heavy-tailed churn — do not
// pile their edge work onto one worker the way index-sharding does.
//
// fn must only touch state owned by its node (plus read-only shared
// state), which all engine phases guarantee. Accounting is summed
// per-worker and folded at the barrier; integer addition is exact and
// order-independent, so totals are bit-identical for every worker count.
func (e *Engine) parallelNodes(g *graph.Graph, fn phaseFunc) (int, int64) {
	n := e.cfg.N
	if e.workers <= 1 || n < serialThreshold {
		var ctx Ctx
		var msgs int
		var bits int64
		for v := 0; v < n; v++ {
			if e.awake[v] {
				m, b := fn(&ctx, 0, graph.NodeID(v))
				msgs += m
				bits += b
			}
		}
		return msgs, bits
	}
	bounds := e.shardBounds(g)
	var wg sync.WaitGroup
	for w := 0; w+1 < len(bounds); w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			e.acc[w] = workerAcc{}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var ctx Ctx
			var msgs int
			var bits int64
			for v := lo; v < hi; v++ {
				if e.awake[v] {
					m, b := fn(&ctx, w, graph.NodeID(v))
					msgs += m
					bits += b
				}
			}
			e.acc[w].msgs = msgs
			e.acc[w].bits = bits
		}(w, lo, hi)
	}
	wg.Wait()
	var msgs int
	var bits int64
	for w := range e.acc {
		msgs += e.acc[w].msgs
		bits += e.acc[w].bits
	}
	return msgs, bits
}

// shardBounds cuts [0, n) into one contiguous node range per worker with
// near-equal total weight, where node v weighs deg(v)+1. The graph's CSR
// offset array is exactly the degree prefix sum, so every boundary is a
// single binary search over an O(1) lookup. The bounds slice is reused
// across rounds.
func (e *Engine) shardBounds(g *graph.Graph) []int {
	n := e.cfg.N
	bounds := append(e.bounds[:0], 0)
	total := 2*g.M() + n
	for w := 1; w < e.workers; w++ {
		target := total * w / e.workers
		v := sort.Search(n, func(v int) bool { return g.CumDegree(v)+v >= target })
		if prev := bounds[len(bounds)-1]; v < prev {
			v = prev
		}
		bounds = append(bounds, v)
	}
	bounds = append(bounds, n)
	e.bounds = bounds
	return bounds
}
