package engine

import (
	"runtime"
	"sort"
	"sync"

	"dynlocal/internal/graph"
)

// serialThreshold is the node count below which sharding overhead exceeds
// the benefit and phases run on the calling goroutine.
const serialThreshold = 512

// phaseFunc processes one node and returns its delivered message count and
// declared bits (both zero for phases without accounting). ctx is a
// per-worker scratch the callback must fully overwrite before use: a
// per-node stack Ctx would escape to the heap at every interface call. w is
// the worker index (0 on the serial path), letting callbacks append to
// per-worker buffers — e.g. the changed-output shards — without contention.
type phaseFunc func(ctx *Ctx, w int, v graph.NodeID) (msgs int, bits int64)

// workerAcc is a per-worker accounting cell, padded out to a cache line so
// concurrent workers do not false-share.
type workerAcc struct {
	msgs int
	bits int64
	_    [48]byte
}

// parallelNodes applies fn to every awake node and returns the summed
// accounting, sharded across the engine's workers with an implicit barrier
// on return. Shards are cut by cumulative degree in g (node v weighs
// deg(v)+1), so skewed-degree graphs — stars, heavy-tailed churn — do not
// pile their edge work onto one worker the way index-sharding does.
//
// fn must only touch state owned by its node (plus read-only shared
// state), which all engine phases guarantee. Accounting is summed
// per-worker and folded at the barrier; integer addition is exact and
// order-independent, so totals are bit-identical for every worker count.
func (e *Engine) parallelNodes(g *graph.Graph, fn phaseFunc) (int, int64) {
	n := e.cfg.N
	if e.workers <= 1 || n < serialThreshold {
		var ctx Ctx
		var msgs int
		var bits int64
		for v := 0; v < n; v++ {
			if e.awake[v] {
				m, b := fn(&ctx, 0, graph.NodeID(v))
				msgs += m
				bits += b
			}
		}
		return msgs, bits
	}
	bounds := e.shardBounds(g)
	var wg sync.WaitGroup
	for w := 0; w+1 < len(bounds); w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			e.acc[w] = workerAcc{}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var ctx Ctx
			var msgs int
			var bits int64
			for v := lo; v < hi; v++ {
				if e.awake[v] {
					m, b := fn(&ctx, w, graph.NodeID(v))
					msgs += m
					bits += b
				}
			}
			e.acc[w].msgs = msgs
			e.acc[w].bits = bits
		}(w, lo, hi)
	}
	wg.Wait()
	var msgs int
	var bits int64
	for w := range e.acc {
		msgs += e.acc[w].msgs
		bits += e.acc[w].bits
	}
	return msgs, bits
}

// runPhase applies fn to every node of the sorted active list and returns
// the summed accounting — the sparse counterpart of parallelNodes. Nodes
// on the list are awake by construction, so there is no bitmap gate; the
// whole round does no work proportional to n. Shards are contiguous
// list ranges cut by degree weight (listCuts), run on the persistent
// phasePool workers, and accounting folds at the barrier exactly like
// parallelNodes, so outputs and totals are bit-identical for every
// worker count.
func (e *Engine) runPhase(list []graph.NodeID, fn phaseFunc) (int, int64) {
	if e.workers <= 1 || len(list) < serialThreshold {
		// The scratch Ctx lives on the Engine, not the stack: fn is a
		// dynamic func value, so a local would escape and allocate on
		// every phase of every round.
		ctx := &e.sctx
		var msgs int
		var bits int64
		for _, v := range list {
			m, b := fn(ctx, 0, v)
			msgs += m
			bits += b
		}
		return msgs, bits
	}
	p := e.ensurePool()
	p.cuts = e.listCuts(list)
	p.list = list
	p.fn = fn
	for _, c := range p.work {
		c <- struct{}{}
	}
	for range p.work {
		<-p.done
	}
	p.list, p.fn = nil, nil
	var msgs int
	var bits int64
	for w := range e.acc {
		msgs += e.acc[w].msgs
		bits += e.acc[w].bits
	}
	return msgs, bits
}

// phasePool is the persistent worker set behind runPhase: one goroutine
// per worker, parked on a channel between phases, so a sharded sparse
// phase costs only channel operations — no goroutine spawns and no
// closure allocations per round. The channel sends publish cuts/list/fn
// to the workers and the dones publish the accounting back (channel
// happens-before on both edges), preserving the determinism contract:
// sharding is identical to spawning fresh goroutines.
//
// The pool must not keep the Engine reachable while idle — fn (which
// captures the engine) and list are cleared after every phase, and the
// remaining fields alias engine-owned backing arrays without referencing
// the Engine itself — so an abandoned Engine is collectable and its
// finalizer shuts the workers down by closing the work channels.
type phasePool struct {
	acc  []workerAcc
	cuts []int
	list []graph.NodeID
	fn   phaseFunc
	work []chan struct{}
	done chan struct{}
}

func (e *Engine) ensurePool() *phasePool {
	if e.pool == nil {
		p := &phasePool{
			acc:  e.acc,
			work: make([]chan struct{}, e.workers),
			done: make(chan struct{}, e.workers),
		}
		for w := range p.work {
			p.work[w] = make(chan struct{}, 1)
			go p.worker(w)
		}
		e.pool = p
		runtime.SetFinalizer(e, func(e *Engine) { e.pool.shutdown() })
	}
	return e.pool
}

func (p *phasePool) shutdown() {
	for _, c := range p.work {
		close(c)
	}
}

func (p *phasePool) worker(w int) {
	var ctx Ctx
	for range p.work[w] {
		lo, hi := p.cuts[w], p.cuts[w+1]
		var msgs int
		var bits int64
		for _, v := range p.list[lo:hi] {
			m, b := p.fn(&ctx, w, v)
			msgs += m
			bits += b
		}
		p.acc[w].msgs = msgs
		p.acc[w].bits = bits
		p.done <- struct{}{}
	}
}

// listCuts cuts the active list into one contiguous index range per
// worker with near-equal total weight, where node v weighs deg(v)+1 in
// the current dynamic adjacency. One pass over the list — O(active +
// workers) — replaces the dense path's O(n)-prefix-backed binary
// searches; the cuts slice is reused across rounds.
func (e *Engine) listCuts(list []graph.NodeID) []int {
	total := 0
	for _, v := range list {
		total += e.adj.Degree(v) + 1
	}
	cuts := append(e.cuts[:0], 0)
	acc, i := 0, 0
	for w := 1; w < e.workers; w++ {
		target := total * w / e.workers
		for i < len(list) && acc < target {
			acc += e.adj.Degree(list[i]) + 1
			i++
		}
		cuts = append(cuts, i)
	}
	cuts = append(cuts, len(list))
	e.cuts = cuts
	return cuts
}

// shardBounds cuts [0, n) into one contiguous node range per worker with
// near-equal total weight, where node v weighs deg(v)+1. The graph's CSR
// offset array is exactly the degree prefix sum, so every boundary is a
// single binary search over an O(1) lookup. The bounds slice is reused
// across rounds.
func (e *Engine) shardBounds(g *graph.Graph) []int {
	n := e.cfg.N
	bounds := append(e.bounds[:0], 0)
	total := 2*g.M() + n
	for w := 1; w < e.workers; w++ {
		target := total * w / e.workers
		v := sort.Search(n, func(v int) bool { return g.CumDegree(v)+v >= target })
		if prev := bounds[len(bounds)-1]; v < prev {
			v = prev
		}
		bounds = append(bounds, v)
	}
	bounds = append(bounds, n)
	e.bounds = bounds
	return bounds
}
