package engine

import (
	"sync"

	"dynlocal/internal/graph"
)

// serialThreshold is the node count below which sharding overhead exceeds
// the benefit and phases run on the calling goroutine.
const serialThreshold = 512

// parallelNodes applies fn to every awake node, sharded across the
// engine's workers with an implicit barrier on return. fn must only touch
// state owned by its node (plus read-only shared state), which all engine
// phases guarantee.
func (e *Engine) parallelNodes(fn func(v graph.NodeID)) {
	n := e.cfg.N
	if e.workers <= 1 || n < serialThreshold {
		for v := 0; v < n; v++ {
			if e.awake[v] {
				fn(graph.NodeID(v))
			}
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + e.workers - 1) / e.workers
	for w := 0; w < e.workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				if e.awake[v] {
					fn(graph.NodeID(v))
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}
