package engine

import (
	"fmt"
	"io"

	"dynlocal/internal/adversary"
	"dynlocal/internal/ckpt"
	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
)

// Checkpoint plane: Checkpoint serializes the full deterministic run
// state at a round barrier; Restore rebuilds it onto a freshly
// constructed engine with the same configuration, after which the
// resumed run is bit-identical to the uninterrupted one — outputs,
// accounting, RoundInfo deltas and checker verdicts — for every worker
// count (worker count is deliberately NOT part of the checkpoint: the
// determinism contract makes it a free parameter, and the fault-injection
// suite resumes under different counts on purpose).
//
// What a checkpoint captures, and why the rest is skippable:
//
//   - header: algorithm name, N, Seed, OutputLag, Dense, the completed
//     round and the input vector — all validated on restore, since node
//     state only replays correctly under the exact same configuration;
//   - topology: the current graph's sorted edge keys, delta-encoded.
//     Restore seeds both the sparse adjacency and the resolver's pending
//     diff from it;
//   - nodes: for every awake node its wake round, quiescence counter
//     (sparse) and the algorithm state via ckpt.Stater;
//   - active set: the sorted active list (sparse);
//   - snapshot ring: the output snapshots of rounds max(1, R-lag)..R —
//     every slot a future round may still read through DelayedOutputs or
//     diff against;
//   - adversary: mutable position via adversary.Checkpointer, with a
//     presence flag so stateless-by-round adversaries (Static,
//     Alternator, Scripted) round-trip with no state at all.
//
// Not captured, by design: outboxes, inboxes, per-worker accounting
// cells, changed/drop shards and the RoundInfo ring are per-round
// scratch fully rebuilt by the next Step (the quiescence grace path
// empties a node's outbox before any cross-round read could see it);
// message/bit accounting is per-round and carries no cross-round state.
const ckptMagic = "DLCK1"

// Section tags guarding the engine-level sections of a checkpoint
// stream (core processors use 0x5x, algorithms 0x6x, adversaries 0x7x).
const (
	tagHeader    uint64 = 0x41
	tagTopology  uint64 = 0x42
	tagNodes     uint64 = 0x43
	tagActive    uint64 = 0x44
	tagSnaps     uint64 = 0x45
	tagAdversary uint64 = 0x46
)

// Checkpoint writes the engine's state to w as one self-contained
// checksummed checkpoint stream. It must be called at a round barrier
// (never from an observer or algorithm callback). The engine is left
// untouched and can keep stepping.
func (e *Engine) Checkpoint(w io.Writer) error {
	cw := ckpt.NewWriter(w)
	e.CheckpointTo(cw)
	return cw.Close()
}

// Restore reads a checkpoint stream produced by Checkpoint into e, which
// must be freshly constructed (no rounds played) with the same
// configuration, algorithm and adversary construction as the
// checkpointed engine. After a successful restore the engine's next Step
// plays round Round()+1 exactly as the original would have.
func (e *Engine) Restore(r io.Reader) error {
	cr := ckpt.NewReader(r)
	e.RestoreFrom(cr)
	if err := cr.Err(); err != nil {
		return err
	}
	return cr.Close()
}

// CheckpointTo writes the engine sections into an already-open
// checkpoint stream. Callers that compose the engine with other
// checkpointable components (checkers, recorders) in one stream use this
// and Close the writer themselves; errors accumulate on w.
func (e *Engine) CheckpointTo(w *ckpt.Writer) {
	w.String(ckptMagic)

	w.Section(tagHeader)
	w.String(e.algo.Name())
	w.Int(e.cfg.N)
	w.Uvarint(e.cfg.Seed)
	w.Int(e.lag)
	w.Bool(e.cfg.Dense)
	w.Int(e.round)
	w.Bool(e.cfg.Input != nil)
	for _, val := range e.cfg.Input {
		w.Varint(int64(val))
	}

	w.Section(tagTopology)
	keys := e.resolver.Materialize().EdgeKeys()
	w.Int(len(keys))
	var prevKey graph.EdgeKey
	for i, k := range keys {
		if i == 0 {
			w.Uvarint(uint64(k))
		} else {
			w.Uvarint(uint64(k - prevKey))
		}
		prevKey = k
	}

	w.Section(tagNodes)
	nAwake := 0
	for v := 0; v < e.cfg.N; v++ {
		if e.awake[v] {
			nAwake++
		}
	}
	w.Int(nAwake)
	for v := 0; v < e.cfg.N; v++ {
		if !e.awake[v] {
			continue
		}
		w.Varint(int64(v))
		w.Int(e.wakeRnd[v])
		if !e.cfg.Dense {
			w.Varint(int64(e.quiet[v]))
		}
		st, ok := e.states[v].(ckpt.Stater)
		if !ok {
			w.Fail(fmt.Errorf("engine: algorithm %q node state %T does not support checkpointing", e.algo.Name(), e.states[v]))
			return
		}
		st.SaveState(w)
	}

	w.Section(tagActive)
	w.Int(len(e.activeList))
	var prevV graph.NodeID
	for i, v := range e.activeList {
		if i == 0 {
			w.Uvarint(uint64(v))
		} else {
			w.Uvarint(uint64(v - prevV))
		}
		prevV = v
	}

	w.Section(tagSnaps)
	lo := e.round - e.lag
	if lo < 1 {
		lo = 1
	}
	if e.round == 0 {
		w.Int(0)
	} else {
		w.Int(e.round - lo + 1)
		for rr := lo; rr <= e.round; rr++ {
			snap := e.snaps[rr%len(e.snaps)]
			if snap == nil {
				w.Fail(fmt.Errorf("engine: snapshot ring slot for round %d missing", rr))
				return
			}
			for _, val := range snap {
				w.Varint(int64(val))
			}
		}
	}

	w.Section(tagAdversary)
	ck, ok := e.adv.(adversary.Checkpointer)
	w.Bool(ok)
	if ok {
		ck.SaveState(w)
	}
}

// RestoreFrom reads the engine sections from an already-open checkpoint
// stream, leaving the stream positioned after them. Errors — stream
// corruption as well as configuration mismatches — accumulate on r; the
// engine must be treated as unusable if r.Err() is non-nil afterwards.
func (e *Engine) RestoreFrom(r *ckpt.Reader) {
	if e.round != 0 {
		r.Fail(fmt.Errorf("engine: Restore requires a fresh engine, this one has played %d rounds", e.round))
		return
	}
	if magic := r.String(); magic != ckptMagic {
		if r.Err() == nil {
			r.Fail(fmt.Errorf("engine: not a checkpoint stream (magic %q)", magic))
		}
		return
	}

	r.Section(tagHeader)
	name := r.String()
	n := r.Int()
	seed := r.Uvarint()
	lag := r.Int()
	dense := r.Bool()
	round := r.Int()
	hasInput := r.Bool()
	if r.Err() != nil {
		return
	}
	switch {
	case name != e.algo.Name():
		r.Fail(fmt.Errorf("engine: checkpoint is for algorithm %q, engine runs %q", name, e.algo.Name()))
	case n != e.cfg.N:
		r.Fail(fmt.Errorf("engine: checkpoint has N=%d, engine has N=%d", n, e.cfg.N))
	case seed != e.cfg.Seed:
		r.Fail(fmt.Errorf("engine: checkpoint has seed %d, engine has seed %d", seed, e.cfg.Seed))
	case lag != e.lag:
		r.Fail(fmt.Errorf("engine: checkpoint has OutputLag=%d, engine has %d", lag, e.lag))
	case dense != e.cfg.Dense:
		r.Fail(fmt.Errorf("engine: checkpoint Dense=%v, engine Dense=%v", dense, e.cfg.Dense))
	case round < 0:
		r.Fail(fmt.Errorf("engine: checkpoint has negative round %d", round))
	case hasInput != (e.cfg.Input != nil):
		r.Fail(fmt.Errorf("engine: checkpoint input presence %v, engine %v", hasInput, e.cfg.Input != nil))
	}
	if r.Err() != nil {
		return
	}
	if hasInput {
		for i := 0; i < n; i++ {
			if val := problems.Value(r.Varint()); r.Err() == nil && val != e.cfg.Input[i] {
				r.Fail(fmt.Errorf("engine: checkpoint input[%d]=%d, engine has %d", i, val, e.cfg.Input[i]))
			}
			if r.Err() != nil {
				return
			}
		}
	}

	r.Section(tagTopology)
	nEdges := r.Count(n * (n - 1) / 2)
	if r.Err() != nil {
		return
	}
	keys := ckpt.AllocSlice[graph.EdgeKey](r, nEdges)
	var prevKey graph.EdgeKey
	for i := 0; i < nEdges; i++ {
		d := r.Uvarint()
		if r.Err() != nil {
			return
		}
		k := graph.EdgeKey(d)
		if i > 0 {
			if d == 0 {
				r.Fail(fmt.Errorf("engine: checkpoint edge keys not strictly ascending"))
				return
			}
			k = prevKey + graph.EdgeKey(d)
		}
		if u, v := k.Nodes(); int(u) >= n || int(v) >= n || u >= v {
			r.Fail(fmt.Errorf("engine: checkpoint edge %v out of range for N=%d", k, n))
			return
		}
		keys[i] = k
		prevKey = k
	}

	r.Section(tagNodes)
	nAwake := r.Count(n)
	if r.Err() != nil {
		return
	}
	last := -1
	for i := 0; i < nAwake; i++ {
		v := int(r.Varint())
		if r.Err() != nil {
			return
		}
		if v <= last || v >= n {
			r.Fail(fmt.Errorf("engine: checkpoint awake node %d out of order or range", v))
			return
		}
		last = v
		wr := r.Int()
		if r.Err() == nil && (wr < 1 || wr > round) {
			r.Fail(fmt.Errorf("engine: checkpoint wake round %d for node %d outside [1, %d]", wr, v, round))
		}
		if !dense {
			e.quiet[v] = int32(r.Varint())
		}
		if r.Err() != nil {
			return
		}
		e.awake[v] = true
		e.wakeRnd[v] = wr
		np := e.newRestoredNode(r, graph.NodeID(v))
		e.states[v] = np
		if !dense {
			if q, ok := np.(Quiescer); ok {
				e.quiescer[v] = q
			}
		}
		st, ok := np.(ckpt.Stater)
		if !ok {
			r.Fail(fmt.Errorf("engine: algorithm %q node state %T does not support checkpointing", e.algo.Name(), np))
			return
		}
		st.LoadState(r)
		if r.Err() != nil {
			return
		}
	}

	r.Section(tagActive)
	nActive := r.Count(n)
	if r.Err() != nil {
		return
	}
	if dense && nActive != 0 {
		r.Fail(fmt.Errorf("engine: dense checkpoint declares %d active nodes", nActive))
		return
	}
	var prevV graph.NodeID
	for i := 0; i < nActive; i++ {
		d := graph.NodeID(r.Uvarint())
		if r.Err() != nil {
			return
		}
		v := d
		if i > 0 {
			if d == 0 {
				r.Fail(fmt.Errorf("engine: checkpoint active list not strictly ascending"))
				return
			}
			v = prevV + d
		}
		if int(v) >= n || !e.awake[v] {
			r.Fail(fmt.Errorf("engine: checkpoint active node %d out of range or asleep", v))
			return
		}
		e.active[v] = true
		e.activeList = append(e.activeList, v)
		prevV = v
	}

	r.Section(tagSnaps)
	nSnaps := r.Count(e.lag + 1)
	if r.Err() != nil {
		return
	}
	lo := round - e.lag
	if lo < 1 {
		lo = 1
	}
	want := round - lo + 1
	if round == 0 {
		want = 0
	}
	if nSnaps != want {
		r.Fail(fmt.Errorf("engine: checkpoint has %d snapshot slots for round %d, want %d", nSnaps, round, want))
		return
	}
	for rr := lo; rr <= round; rr++ {
		snap := ckpt.AllocSlice[problems.Value](r, n)
		for i := range snap {
			snap[i] = problems.Value(r.Varint())
		}
		if r.Err() != nil {
			return
		}
		e.snaps[rr%len(e.snaps)] = snap
	}

	r.Section(tagAdversary)
	hasAdv := r.Bool()
	if r.Err() != nil {
		return
	}
	ck, isCk := e.adv.(adversary.Checkpointer)
	if hasAdv != isCk {
		r.Fail(fmt.Errorf("engine: checkpoint adversary state presence %v, engine adversary %T checkpointer %v", hasAdv, e.adv, isCk))
		return
	}
	if hasAdv {
		ck.LoadState(r)
		if r.Err() != nil {
			return
		}
	}

	// All sections validated — install the topology. Every restored edge
	// must connect awake nodes (the model invariant Step asserts on the
	// way in holds for persisted edges by induction).
	for _, k := range keys {
		u, v := k.Nodes()
		if !e.awake[u] || !e.awake[v] {
			r.Fail(fmt.Errorf("engine: checkpoint edge %v touches a sleeping node", k))
			return
		}
	}
	if !dense {
		e.adj.Apply(keys, nil)
	}
	e.resolver.Observe(&adversary.Step{EdgeAdds: keys})
	e.round = round
}
