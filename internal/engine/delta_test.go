package engine

import (
	"fmt"
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// The round-delta plane contract: after every Step, Changed lists exactly
// the nodes whose output differs from the previous round's snapshot, and
// EdgeAdds/EdgeRemoves exactly the edge diff of Graph against the
// previous round's graph — all sorted ascending without duplicates, for
// every worker count. These tests pin both planes against brute-force
// diffs of copied snapshots/edge lists across the serial and sharded
// paths, under full wake-up, staggered wake-up and churn, over
// delta-native and materializing adversaries.

func bruteDiff(prev, cur []problems.Value) []graph.NodeID {
	var d []graph.NodeID
	for v := range cur {
		if cur[v] != prev[v] {
			d = append(d, graph.NodeID(v))
		}
	}
	return d
}

func TestChangedFeedMatchesBruteDiff(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		workers int
	}{
		{"serial-small", serialThreshold / 4, 1},
		{"sharded-blocked-small", serialThreshold / 4, 4}, // n below threshold: serial path
		{"serial-large", serialThreshold * 2, 1},
		{"sharded-large", serialThreshold * 2, 4},
	}
	for _, tc := range cases {
		mkAdvs := map[string]func() adversary.Adversary{
			"churn": churnAdv(tc.n),
			"staggered-churn": func() adversary.Adversary {
				return &adversary.Wakeup{
					Inner:    churnAdv(tc.n)(),
					Schedule: adversary.StaggeredSchedule(tc.n, tc.n/8+1),
				}
			},
		}
		for name, mk := range mkAdvs {
			t.Run(fmt.Sprintf("%s/%s", tc.name, name), func(t *testing.T) {
				e := New(Config{N: tc.n, Seed: 42, Workers: tc.workers}, mk(), degreeAlgo{})
				prev := make([]problems.Value, tc.n)
				e.OnRound(func(info *RoundInfo) {
					want := bruteDiff(prev, info.Outputs)
					if len(want) != len(info.Changed) {
						t.Fatalf("round %d: %d changed nodes, want %d",
							info.Round, len(info.Changed), len(want))
					}
					for i := range want {
						if info.Changed[i] != want[i] {
							t.Fatalf("round %d: Changed[%d] = %d, want %d",
								info.Round, i, info.Changed[i], want[i])
						}
					}
					for i := 1; i < len(info.Changed); i++ {
						if info.Changed[i] <= info.Changed[i-1] {
							t.Fatalf("round %d: Changed not strictly ascending: %v",
								info.Round, info.Changed)
						}
					}
					copy(prev, info.Outputs)
				})
				e.Run(16)
			})
		}
	}
}

// TestTopologyDeltaFeedMatchesBruteDiff pins the topology side of the
// round-delta plane: RoundInfo.EdgeAdds/EdgeRemoves must be exactly the
// sorted edge diff of consecutive round graphs, and the graph itself —
// patched for delta-native adversaries, adopted for materializing ones —
// must equal the fold of the diffs. Covers the patcher path (churn,
// edge-markov, local-static, scripted), the synthesis path (wakeup
// wrapper, static) and the mixed path (conflict injector switching from
// pass-through to materialized mid-run).
func TestTopologyDeltaFeedMatchesBruteDiff(t *testing.T) {
	const n = 96
	base := func(seed uint64) *graph.Graph {
		return graph.GNP(n, 6.0/float64(n), prf.NewStream(seed, 0, 0, prf.PurposeWorkload))
	}
	advs := map[string]func() adversary.Adversary{
		"churn": func() adversary.Adversary {
			return &adversary.Churn{Base: base(1), Add: 5, Del: 5, Seed: 2}
		},
		"edge-markov": func() adversary.Adversary {
			return &adversary.EdgeMarkov{Footprint: base(2), POn: 0.3, POff: 0.3, Seed: 3}
		},
		"local-static": func() adversary.Adversary {
			b := base(3)
			return &adversary.LocalStatic{
				Inner:     &adversary.Churn{Base: b, Add: 6, Del: 6, Seed: 4},
				Base:      b,
				Protected: []graph.NodeID{7, n / 2},
				Alpha:     2,
			}
		},
		"staggered-churn": func() adversary.Adversary {
			return &adversary.Wakeup{
				Inner:    &adversary.Churn{Base: base(4), Add: 5, Del: 5, Seed: 5},
				Schedule: adversary.StaggeredSchedule(n, n/6+1),
			}
		},
		"static": func() adversary.Adversary {
			return adversary.Static{G: base(5)}
		},
		"conflict-injector": func() adversary.Adversary {
			return &adversary.ConflictInjector{
				Inner:    &adversary.Churn{Base: base(6), Add: 4, Del: 4, Seed: 7},
				Rate:     3,
				MinRound: 5,
				Seed:     8,
			}
		},
	}
	for name, mk := range advs {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				e := New(Config{N: n, Seed: 42, Workers: workers}, mk(), degreeAlgo{})
				present := make(map[graph.EdgeKey]bool)
				var prevG *graph.Graph = graph.Empty(n)
				e.OnRound(func(info *RoundInfo) {
					wantAdds, wantRems := graph.DiffSortedKeys(
						prevG.EdgeKeys(), info.Graph().EdgeKeys(), nil, nil)
					if fmt.Sprint(wantAdds) != fmt.Sprint(info.EdgeAdds) {
						t.Fatalf("round %d adds: got %v want %v", info.Round, info.EdgeAdds, wantAdds)
					}
					if fmt.Sprint(wantRems) != fmt.Sprint(info.EdgeRemoves) {
						t.Fatalf("round %d removes: got %v want %v", info.Round, info.EdgeRemoves, wantRems)
					}
					for _, k := range info.EdgeAdds {
						if present[k] {
							t.Fatalf("round %d: add of present edge %v", info.Round, k)
						}
						present[k] = true
					}
					for _, k := range info.EdgeRemoves {
						if !present[k] {
							t.Fatalf("round %d: remove of absent edge %v", info.Round, k)
						}
						delete(present, k)
					}
					if len(present) != info.Graph().M() {
						t.Fatalf("round %d: folded %d edges, graph has %d",
							info.Round, len(present), info.Graph().M())
					}
					//dynlint:ignore loancheck prevG is read next round only, within the pooled graph's two-round lifetime
					prevG = info.Graph()
				})
				e.Run(20)
			})
		}
	}
}

// TestChangedFeedFirstRoundDiffsAgainstBot pins the round-1 baseline: a
// node whose first output is ⊥ is not reported as changed, one with a
// non-⊥ first output is.
func TestChangedFeedFirstRoundDiffsAgainstBot(t *testing.T) {
	const n = 6
	// degreeAlgo outputs deg+1 != Bot for every awake node: all awake
	// nodes change in round 1.
	e := New(Config{N: n, Seed: 1}, adversary.Static{G: graph.Cycle(n)}, degreeAlgo{})
	info := e.Step()
	if len(info.Changed) != n {
		t.Fatalf("round 1 changed = %v, want all %d nodes", info.Changed, n)
	}
	// A second identical round changes nothing.
	info = e.Step()
	if len(info.Changed) != 0 {
		t.Fatalf("static round 2 changed = %v, want none", info.Changed)
	}
}
