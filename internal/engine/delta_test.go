package engine

import (
	"fmt"
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
)

// The round-delta plane contract (RoundInfo.Changed): after every Step,
// Changed lists exactly the nodes whose output differs from the previous
// round's snapshot, in ascending order without duplicates, for every
// worker count. These tests pin it against a brute-force diff of copied
// snapshots across the serial and sharded paths, under full wake-up,
// staggered wake-up and churn.

func bruteDiff(prev, cur []problems.Value) []graph.NodeID {
	var d []graph.NodeID
	for v := range cur {
		if cur[v] != prev[v] {
			d = append(d, graph.NodeID(v))
		}
	}
	return d
}

func TestChangedFeedMatchesBruteDiff(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		workers int
	}{
		{"serial-small", serialThreshold / 4, 1},
		{"sharded-blocked-small", serialThreshold / 4, 4}, // n below threshold: serial path
		{"serial-large", serialThreshold * 2, 1},
		{"sharded-large", serialThreshold * 2, 4},
	}
	for _, tc := range cases {
		mkAdvs := map[string]func() adversary.Adversary{
			"churn": churnAdv(tc.n),
			"staggered-churn": func() adversary.Adversary {
				return &adversary.Wakeup{
					Inner:    churnAdv(tc.n)(),
					Schedule: adversary.StaggeredSchedule(tc.n, tc.n/8+1),
				}
			},
		}
		for name, mk := range mkAdvs {
			t.Run(fmt.Sprintf("%s/%s", tc.name, name), func(t *testing.T) {
				e := New(Config{N: tc.n, Seed: 42, Workers: tc.workers}, mk(), degreeAlgo{})
				prev := make([]problems.Value, tc.n)
				e.OnRound(func(info *RoundInfo) {
					want := bruteDiff(prev, info.Outputs)
					if len(want) != len(info.Changed) {
						t.Fatalf("round %d: %d changed nodes, want %d",
							info.Round, len(info.Changed), len(want))
					}
					for i := range want {
						if info.Changed[i] != want[i] {
							t.Fatalf("round %d: Changed[%d] = %d, want %d",
								info.Round, i, info.Changed[i], want[i])
						}
					}
					for i := 1; i < len(info.Changed); i++ {
						if info.Changed[i] <= info.Changed[i-1] {
							t.Fatalf("round %d: Changed not strictly ascending: %v",
								info.Round, info.Changed)
						}
					}
					copy(prev, info.Outputs)
				})
				e.Run(16)
			})
		}
	}
}

// TestChangedFeedFirstRoundDiffsAgainstBot pins the round-1 baseline: a
// node whose first output is ⊥ is not reported as changed, one with a
// non-⊥ first output is.
func TestChangedFeedFirstRoundDiffsAgainstBot(t *testing.T) {
	const n = 6
	// degreeAlgo outputs deg+1 != Bot for every awake node: all awake
	// nodes change in round 1.
	e := New(Config{N: n, Seed: 1}, adversary.Static{G: graph.Cycle(n)}, degreeAlgo{})
	info := e.Step()
	if len(info.Changed) != n {
		t.Fatalf("round 1 changed = %v, want all %d nodes", info.Changed, n)
	}
	// A second identical round changes nothing.
	info = e.Step()
	if len(info.Changed) != 0 {
		t.Fatalf("static round 2 changed = %v, want none", info.Changed)
	}
}
