package engine

import (
	"slices"
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
)

// TestOutputLagBoundary pins the documented zero-value behavior of
// Config.OutputLag: 0 selects DefaultOutputLag, positive values are taken
// as-is, negatives panic in New.
func TestOutputLagBoundary(t *testing.T) {
	cases := []struct {
		name   string
		in     int
		want   int
		panics bool
	}{
		{"zero-selects-default", 0, DefaultOutputLag, false},
		{"one-is-adaptive-online", 1, 1, false},
		{"explicit", 5, 5, false},
		{"negative-panics", -1, 0, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if r := recover(); (r != nil) != c.panics {
					t.Fatalf("recover() = %v, want panic %v", r, c.panics)
				}
			}()
			e := New(Config{N: 8, OutputLag: c.in}, adversary.Static{G: graph.Cycle(8)}, degreeAlgo{})
			if e.lag != c.want {
				t.Fatalf("lag = %d, want %d", e.lag, c.want)
			}
			if len(e.snaps) != c.want+1 {
				t.Fatalf("snapshot ring holds %d slots, want OutputLag+1 = %d", len(e.snaps), c.want+1)
			}
		})
	}
}

// TestRetainOutlivesPooledBuffers verifies the sanctioned way to hold a
// round: a Retained copy is unaffected by ten further rounds of pool
// reuse — including its materialized graph — while the live RoundInfo of
// a sparse engine refuses to materialize once the engine has moved on.
func TestRetainOutlivesPooledBuffers(t *testing.T) {
	const n = 64
	e := New(Config{N: n, Seed: 5}, churnAdv(n)(), degreeAlgo{})
	var retained, live *RoundInfo
	var wantOut []problems.Value
	var wantChanged []graph.NodeID
	var wantAdds, wantKeys []graph.EdgeKey
	e.OnRound(func(info *RoundInfo) {
		if info.Round == 5 {
			//dynlint:ignore loancheck deliberately keeps the raw pooled round to assert Graph() panics after the engine moves on
			live = info
			retained = info.Retain()
			wantOut = slices.Clone(info.Outputs)
			wantChanged = slices.Clone(info.Changed)
			wantAdds = slices.Clone(info.EdgeAdds)
			wantKeys = slices.Clone(info.Graph().EdgeKeys())
		}
	})
	e.Run(15)
	if retained.Round != 5 {
		t.Fatalf("retained round = %d, want 5", retained.Round)
	}
	if !slices.Equal(retained.Outputs, wantOut) {
		t.Fatal("retained outputs mutated by later rounds")
	}
	if !slices.Equal(retained.Changed, wantChanged) {
		t.Fatal("retained changed feed mutated by later rounds")
	}
	if !slices.Equal(retained.EdgeAdds, wantAdds) {
		t.Fatal("retained edge adds mutated by later rounds")
	}
	if !slices.Equal(retained.Graph().EdgeKeys(), wantKeys) {
		t.Fatal("retained graph mutated by later rounds")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("live RoundInfo.Graph() after the engine moved on: expected panic")
		}
	}()
	live.Graph()
}
