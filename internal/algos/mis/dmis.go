// Package mis implements the paper's MIS algorithms:
//
//   - DMis (Algorithm 4): the O(log n)-dynamic algorithm — a pipelined
//     variant of Luby's algorithm communicating on the intersection graph
//     of all rounds since its start; decided nodes never revert. Its
//     analysis (Lemma 5.1/5.2) requires a 2-oblivious adversary.
//   - SMis (Algorithm 5): the (O(log n), 2)-network-static algorithm — a
//     modified, pipelined version of Ghaffari's algorithm whose nodes can
//     leave the MIS and become undecided again, with desire-levels
//     bounded below by 1/(5n) (the paper's crucial modification for the
//     dynamic setting, footnote 11).
//
// NewMIS composes them through the framework combiner, yielding the
// algorithm of Corollary 1.3. On a static graph DMis degenerates to
// Luby's algorithm and SMis to (modified) Ghaffari — NewLuby and
// NewGhaffari expose them under those names for the baseline experiments.
package mis

import (
	"math/bits"

	"dynlocal/internal/core"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// Message kinds of the MIS algorithms.
const (
	// KindMark is sent by MIS nodes to (intersection/current) neighbors.
	KindMark uint8 = iota + 1
	// KindAlpha carries DMis's per-round random number (A = float64 bits).
	KindAlpha
	// KindDesire carries SMis's desire level and candidate flag
	// (A = float64 bits of p(v), B = 1 if candidate).
	KindDesire
	// KindPresence is a one-time beacon sent by Dominated-input DMis
	// nodes in their instance's first round. It keeps them in their
	// neighbors' intersection-neighbor sets so that, should the input
	// sanitization return them to the competition, adjacent revived
	// nodes still see each other's random numbers (otherwise two revived
	// neighbors could both become local minima and both join M).
	KindPresence
)

// DefaultMISWindow is the practical window size T(n) for the MIS
// algorithms: above the measured all-decided time of pipelined Luby under
// churn (≈ 2·log₂ n; Lemma 5.4 gives O(log n)) with safety margin.
func DefaultMISWindow(n int) int {
	return 3*ceilLog2(n+1) + 10
}

func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// DMisFactory builds DMis instances (Algorithm 4). It implements
// core.DynamicAlgorithm: input-extending (nodes only ever move from
// undecided to InMIS/Dominated) and finalizing w.h.p. within T-1 rounds
// against 2-oblivious adversaries (Lemma 5.1). The independent-set half
// of A.2 holds deterministically; the domination half w.h.p.
type DMisFactory struct {
	// N is the universe size.
	N int
	// Window overrides the default window size T (0 = default).
	Window int
	// AlphaBits truncates the random words exchanged between undecided
	// nodes to the given width (0 = full 64 bits). The paper remarks that
	// all algorithms can run with poly log n-bit messages; 2⌈log₂n⌉+c
	// bits make per-round per-edge collisions polynomially rare, and the
	// deterministic node-id tie-break keeps the algorithm correct under
	// collisions regardless (two adjacent nodes can never both join M) —
	// collisions only cost the occasional stalled pair one extra round.
	AlphaBits int
}

// alphaMask returns the truncation mask for the configured width.
func (f *DMisFactory) alphaMask() uint64 {
	if f.AlphaBits <= 0 || f.AlphaBits >= 64 {
		return ^uint64(0)
	}
	return ^uint64(0) << uint(64-f.AlphaBits)
}

// Name implements core.DynamicAlgorithm.
func (f *DMisFactory) Name() string { return "dmis" }

// WindowSize implements core.DynamicAlgorithm.
func (f *DMisFactory) WindowSize(n int) int {
	if f.Window > 0 {
		return f.Window
	}
	return DefaultMISWindow(n)
}

// MessageBits declares encoded sizes: marks and presence beacons are 2
// bits; alpha messages carry the configured random-word width (default
// the full 64 bits, honestly accounted; set AlphaBits to 2⌈log₂n⌉+4 for
// the poly log n regime of the Section 2 remark).
func (f *DMisFactory) MessageBits(m engine.SubMsg) int {
	if m.Kind == KindMark || m.Kind == KindPresence {
		return 2
	}
	bits := f.AlphaBits
	if bits <= 0 || bits > 64 {
		bits = 64
	}
	return 2 + bits
}

// NewNode implements core.DynamicAlgorithm.
func (f *DMisFactory) NewNode(v graph.NodeID) core.NodeInstance {
	return &dmisNode{v: v, mask: f.alphaMask()}
}

type dmisNode struct {
	v graph.NodeID

	out problems.Value
	// streak(u) is the last age at which u had broadcast in every round
	// of this instance so far; u is an intersection-graph neighbor in the
	// current round iff streak(u) == age-1. Stored as parallel key/value
	// slices scanned linearly: the per-message lookup is on the hottest
	// engine path and at local-algorithm degrees a scan of a few
	// contiguous entries beats hashing. One allocation for the node's
	// lifetime — the per-round intersection needs none.
	streakK []graph.NodeID
	streakV []int32
	age     int    // rounds processed
	provD   bool   // Dominated input, not yet re-witnessed (rounds 1-2)
	alpha   uint64 // this round's random word (valid while undecided)
	mask    uint64 // alpha truncation mask (AlphaBits)
}

// Start records the input configuration (M, D); Algorithm 4 needs no
// start communication round.
func (d *dmisNode) Start(ctx *engine.Ctx, input problems.Value) {
	d.out = input
	d.provD = input == problems.Dominated
}

// Broadcast implements the send half of Algorithm 4: MIS nodes send a
// mark; undecided nodes send a fresh random number; dominated nodes are
// silent — except that provisional Dominated inputs beacon their
// presence during the two sanitization rounds (see KindPresence and the
// input-sanitization notes in Process).
func (d *dmisNode) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	switch d.out {
	case problems.InMIS:
		return append(buf, engine.SubMsg{Kind: KindMark})
	case problems.Bot:
		s := ctx.Stream(prf.PurposeLubyAlpha)
		d.alpha = s.Uint64() & d.mask
		return append(buf, engine.SubMsg{Kind: KindAlpha, A: int64(d.alpha)})
	default:
		if d.provD {
			return append(buf, engine.SubMsg{Kind: KindPresence})
		}
		return buf
	}
}

// Quiescent implements engine.Quiescer: a confirmed Dominated node is
// terminal — Process never leaves a non-⊥ output (decided nodes never
// revert in DMis) and Broadcast is forever silent once the provisional
// flag has cleared — so the engine may stop running it. InMIS nodes are
// decided too but beacon their mark every round, and provisional
// Dominated nodes still beacon presence, so neither may be skipped.
func (d *dmisNode) Quiescent() bool {
	return d.out == problems.Dominated && !d.provD
}

// less compares (alpha, id) pairs lexicographically — the id breaks the
// (probability ~2⁻⁶⁴) ties so that no two adjacent nodes can ever join M
// in the same round, making the independence half of A.2 deterministic.
func less(a uint64, av graph.NodeID, b uint64, bv graph.NodeID) bool {
	if a != b {
		return a < b
	}
	return av < bv
}

// Process implements the receive half of Algorithm 4, restricted to the
// intersection graph.
func (d *dmisNode) Process(ctx *engine.Ctx, in []engine.Incoming, deg int) {
	if d.streakK == nil {
		// First executed round: the intersection graph is the current
		// graph; senders are exactly the participating neighbors.
		// (Dominated nodes are silent, but they also never influence
		// anyone, so omitting them from the known set is harmless.)
		d.streakK = make([]graph.NodeID, 0, len(in))
		d.streakV = make([]int32, 0, len(in))
	}
	prev := int32(d.age)
	mark := false
	isMin := true
	for _, m := range in {
		// Intersection-neighbor test: the sender must have broadcast in
		// every round so far (stale streak entries never match again;
		// an absent entry reads as streak 0).
		si := -1
		for i, k := range d.streakK {
			if k == m.From {
				si = i
				break
			}
		}
		if prev > 0 && (si < 0 || d.streakV[si] != prev) {
			continue
		}
		if si < 0 {
			d.streakK = append(d.streakK, m.From)
			d.streakV = append(d.streakV, prev+1)
		} else {
			d.streakV[si] = prev + 1
		}
		switch m.M.Kind {
		case KindMark:
			mark = true
		case KindAlpha:
			if less(uint64(m.M.A), m.From, d.alpha, d.v) {
				isMin = false
			}
		}
	}
	d.age++

	// Input sanitization (reproduction note). A partial solution handed to
	// a DMis instance can be slightly invalid: the SMis race leaves
	// occasional Dominated nodes without a live dominator, and mid-
	// pipeline dynamic algorithms in the triple combiner (core.Chain)
	// produce outputs that are only valid under limited dynamics, so
	// adjacent InMIS inputs are possible too. The first two rounds
	// therefore re-witness the input:
	//
	//   - round 1: an InMIS input hearing a mark is half of an invalid
	//     adjacent pair — both demote and re-compete. From round 2 on,
	//     every node in M is permanent, so marks heard in rounds >= 2
	//     certify a permanent dominator.
	//   - rounds 1-2: Dominated inputs are provisional (they beacon their
	//     presence); they stay Dominated only if a round-2 mark proves a
	//     permanent dominator, and re-compete otherwise.
	//   - round 1: undecided nodes ignore marks (the sender might demote
	//     this very round) and, having heard one, also skip joining M.
	//
	// Valid inputs are unaffected (their InMIS nodes hear no marks; their
	// Dominated nodes keep being marked), preserving property A.1; the
	// extra round is absorbed by the window's margin.
	switch {
	case d.age == 1 && d.out == problems.InMIS && mark:
		d.out = problems.Bot
		return
	case d.provD:
		if d.age >= 2 {
			d.provD = false
			if !mark {
				d.out = problems.Bot
			}
		}
		return
	case d.out != problems.Bot:
		return // decided nodes never revert in DMis
	case d.age == 1 && mark:
		return // defer: the marker might demote this round
	}
	switch {
	case mark:
		d.out = problems.Dominated
	case isMin:
		d.out = problems.InMIS
	}
}

// Output implements core.NodeInstance.
func (d *dmisNode) Output() problems.Value { return d.out }

// ExpectedDecayBound is the 2/3 bound of Lemma 5.2, exported for the
// experiment harness.
const ExpectedDecayBound = 2.0 / 3.0
