package mis

import (
	"dynlocal/internal/core"
	"dynlocal/internal/graph"
)

// NewDynamic returns DMis as a standalone engine algorithm.
func NewDynamic(n int) core.Single {
	f := &DMisFactory{N: n}
	return core.Single{Label: f.Name(), Factory: func(v graph.NodeID) core.NodeInstance {
		return f.NewNode(v)
	}, Bits: f.MessageBits}
}

// NewNetworkStatic returns SMis as a standalone engine algorithm.
func NewNetworkStatic(n int) core.Single {
	f := &SMisFactory{N: n}
	return core.Single{Label: f.Name(), Factory: func(v graph.NodeID) core.NodeInstance {
		return f.NewNode(v)
	}, Bits: f.MessageBits}
}

// NewLuby returns the pipelined Luby algorithm for static graphs: DMis on
// a static graph is exactly Luby's algorithm with identical rounds
// (Section 5.1); used by the static baselines.
func NewLuby(n int) core.Single {
	s := NewDynamic(n)
	s.Label = "luby"
	return s
}

// NewGhaffari returns the modified Ghaffari algorithm for static graphs:
// SMis on a static graph never un-decides, so it behaves as the original
// algorithm of [Gha16] with the pipelining and desire-floor modifications.
func NewGhaffari(n int) core.Single {
	s := NewNetworkStatic(n)
	s.Label = "ghaffari"
	return s
}

// NewMIS composes DMis and SMis through the framework combiner into the
// algorithm of Corollary 1.3: w.h.p. it outputs a T-dynamic solution for
// MIS in every round, T = O(log n), and the output of any node v is
// static on [r+2T, r₂] whenever the 2-neighborhood of v is static on
// [r, r₂]. Requires a 2-oblivious adversary (engine OutputLag >= 2).
func NewMIS(n int) *core.Concat {
	return core.NewConcat(&DMisFactory{N: n}, &SMisFactory{N: n}, n)
}

// NewChainedMIS instantiates the triple combiner of the Section 3 remark
// for MIS: SMis feeds a mid pipeline of DMis instances with the smaller
// window midWindow (the "stronger guarantee under limited dynamics"),
// whose output feeds the outer DMis pipeline with the default window.
// The outer output is always a T-dynamic solution; under dynamics mild
// enough for the mid window, the effective freshness of the solution is
// midWindow. midWindow must be at least 2; values below the default
// window are the interesting regime.
func NewChainedMIS(n, midWindow int) *core.Chain {
	return core.NewChain(
		&DMisFactory{N: n},
		&DMisFactory{N: n, Window: midWindow},
		&SMisFactory{N: n},
		n,
	)
}
