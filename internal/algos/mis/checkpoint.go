package mis

import (
	"fmt"

	"dynlocal/internal/ckpt"
	"dynlocal/internal/core"
	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
)

// Checkpoint support: the MIS node types serialize their full mutable
// state so a restored run continues bit-identically. LoadState runs on
// a freshly NewNode-ed instance (configuration fields like mask and the
// factory pointer are already set; Start has not been called).

const (
	tagDMis uint64 = 0x61
	tagSMis uint64 = 0x62
)

// streakCap bounds the streak-table size a checkpoint may declare: a
// node can know at most every other node.
const streakCap = 1 << 24

// SaveState implements ckpt.Stater. The streak table is written
// verbatim (parallel key/value slices in insertion order): order does
// not change behavior, but keeping it byte-stable makes checkpoint
// artifacts of identical runs comparable bit-for-bit.
func (d *dmisNode) SaveState(w *ckpt.Writer) {
	w.Section(tagDMis)
	w.Varint(int64(d.out))
	w.Bool(d.provD)
	w.Int(d.age)
	w.Uvarint(d.alpha)
	w.Bool(d.streakK != nil)
	if d.streakK != nil {
		w.Int(len(d.streakK))
		for i, k := range d.streakK {
			w.Varint(int64(k))
			w.Varint(int64(d.streakV[i]))
		}
	}
}

// LoadState implements ckpt.Stater.
func (d *dmisNode) LoadState(r *ckpt.Reader) {
	r.Section(tagDMis)
	d.out = readValue(r)
	d.provD = r.Bool()
	d.age = r.Int()
	d.alpha = r.Uvarint()
	if r.Bool() {
		n := r.Count(streakCap)
		// The nil-ness of streakK is load-bearing (it marks the first
		// executed round), so restore a non-nil slice even when empty —
		// AllocSlice guarantees non-nil for n == 0.
		d.streakK = ckpt.AllocSlice[graph.NodeID](r, n)
		d.streakV = ckpt.AllocSlice[int32](r, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			d.streakK[i] = graph.NodeID(r.Varint())
			d.streakV[i] = int32(r.Varint())
		}
	} else {
		d.streakK, d.streakV = nil, nil
	}
}

// SaveState implements ckpt.Stater.
func (s *smisNode) SaveState(w *ckpt.Writer) {
	w.Section(tagSMis)
	w.Varint(int64(s.out))
	w.Float64(s.p)
	w.Bool(s.candidate)
}

// LoadState implements ckpt.Stater.
func (s *smisNode) LoadState(r *ckpt.Reader) {
	r.Section(tagSMis)
	s.out = readValue(r)
	s.p = r.Float64()
	s.candidate = r.Bool()
}

// NewNodeArena implements core.ArenaFactory: restored instance structs
// come from the arena instead of the heap. The result matches NewNode's
// initial state exactly; LoadState fills the rest.
func (f *DMisFactory) NewNodeArena(v graph.NodeID, r *ckpt.Reader) core.NodeInstance {
	d := ckpt.AllocStruct[dmisNode](r)
	d.v, d.mask = v, f.alphaMask()
	return d
}

// NewNodeArena implements core.ArenaFactory.
func (f *SMisFactory) NewNodeArena(v graph.NodeID, r *ckpt.Reader) core.NodeInstance {
	s := ckpt.AllocStruct[smisNode](r)
	s.f, s.v, s.p = f, v, 0.5
	return s
}

var (
	_ ckpt.Stater       = (*dmisNode)(nil)
	_ ckpt.Stater       = (*smisNode)(nil)
	_ core.ArenaFactory = (*DMisFactory)(nil)
	_ core.ArenaFactory = (*SMisFactory)(nil)
)

// readValue reads a problems.Value with a sanity bound: MIS values are
// Bot, InMIS or Dominated, anything else marks a corrupt stream that
// slipped past the section tags.
func readValue(r *ckpt.Reader) problems.Value {
	raw := problems.Value(r.Varint())
	switch raw {
	case problems.Bot, problems.InMIS, problems.Dominated:
		return raw
	default:
		r.Fail(fmt.Errorf("mis: invalid checkpointed value %d", raw))
		return problems.Bot
	}
}
