package mis

import (
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/core"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
	"dynlocal/internal/verify"
)

func workload(seed uint64) *prf.Stream {
	return prf.NewStream(seed, 0, 0, prf.PurposeWorkload)
}

func allDecided(out []problems.Value) bool {
	for _, v := range out {
		if v == problems.Bot {
			return false
		}
	}
	return true
}

func checkMIS(t *testing.T, g *graph.Graph, out []problems.Value) {
	t.Helper()
	all := adversary.AllNodes(g.N())
	if bad := (problems.IndependentSet{}).CheckFull(g, out, all); len(bad) != 0 {
		t.Fatalf("independence violated: %v", bad[0])
	}
	if bad := (problems.DominatingSet{}).CheckFull(g, out, all); len(bad) != 0 {
		t.Fatalf("domination violated: %v", bad[0])
	}
}

// --- DMis / Luby --------------------------------------------------------

func TestLubyComputesMISOnStaticGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp-sparse", graph.GNP(256, 4.0/256, workload(1))},
		{"gnp-dense", graph.GNP(128, 0.2, workload(2))},
		{"cycle", graph.Cycle(99)},
		{"complete", graph.Complete(50)},
		{"star", graph.Star(80)},
		{"grid", graph.Grid(12, 12)},
		{"empty", graph.Empty(30)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.g.N()
			e := engine.New(engine.Config{N: n, Seed: 5}, adversary.Static{G: tc.g}, NewLuby(n))
			if _, ok := e.RunUntil(300, func(info *engine.RoundInfo) bool {
				return allDecided(info.Outputs)
			}); !ok {
				t.Fatal("not all decided in 300 rounds")
			}
			checkMIS(t, tc.g, e.Outputs())
		})
	}
}

func TestLubyConvergesWithinWindow(t *testing.T) {
	// Lemma 5.4 practical check: all decided within the default window
	// across seeds.
	const n = 512
	for seed := uint64(1); seed <= 10; seed++ {
		g := graph.GNP(n, 8.0/n, workload(seed))
		e := engine.New(engine.Config{N: n, Seed: seed}, adversary.Static{G: g}, NewLuby(n))
		limit := DefaultMISWindow(n) - 1
		if _, ok := e.RunUntil(limit, func(info *engine.RoundInfo) bool {
			return allDecided(info.Outputs)
		}); !ok {
			t.Fatalf("seed %d: not decided within window %d", seed, limit)
		}
	}
}

func TestDMisDecidesUnderChurn(t *testing.T) {
	const n = 256
	base := graph.GNP(n, 8.0/n, workload(11))
	for seed := uint64(1); seed <= 5; seed++ {
		adv := &adversary.Churn{Base: base, Add: 10, Del: 10, Seed: seed}
		e := engine.New(engine.Config{N: n, Seed: seed * 3}, adv, NewDynamic(n))
		limit := DefaultMISWindow(n) - 1
		if _, ok := e.RunUntil(limit, func(info *engine.RoundInfo) bool {
			return allDecided(info.Outputs)
		}); !ok {
			t.Fatalf("seed %d: not decided within %d rounds under churn", seed, limit)
		}
	}
}

func TestDMisIndependenceOnSinceStartIntersection(t *testing.T) {
	// The independence half of A.2 holds deterministically on the
	// intersection of all graphs since start.
	const n = 200
	base := graph.GNP(n, 8.0/n, workload(13))
	adv := &adversary.Churn{Base: base, Add: 8, Del: 8, Seed: 7}
	e := engine.New(engine.Config{N: n, Seed: 19}, adv, NewDynamic(n))
	var inter *graph.Graph
	e.OnRound(func(info *engine.RoundInfo) {
		if inter == nil {
			// Clone: the round-1 graph is pooled and inter is read on
			// every later round.
			inter = info.Graph().Clone()
		} else {
			inter = graph.Intersection(inter, info.Graph())
		}
		if bad := (problems.IndependentSet{}).CheckPartial(inter, info.Outputs); len(bad) != 0 {
			t.Fatalf("round %d: adjacent MIS nodes on intersection: %v", info.Round, bad[0])
		}
	})
	e.Run(60)
}

func TestDMisInputExtending(t *testing.T) {
	// Property A.1: an input (M, D) configuration is never retracted.
	const n = 64
	g := graph.GNP(n, 6.0/n, workload(17))
	input := make([]problems.Value, n)
	// Build a small valid partial solution: node 0 in M, neighbors D.
	input[0] = problems.InMIS
	for _, u := range g.Neighbors(0) {
		input[u] = problems.Dominated
	}
	e := engine.New(engine.Config{N: n, Seed: 23, Input: input}, adversary.Static{G: g}, NewDynamic(n))
	for r := 0; r < 30; r++ {
		info := e.Step()
		for v, in := range input {
			if in != problems.Bot && info.Outputs[v] != in {
				t.Fatalf("round %d: input value of node %d changed %d -> %d",
					info.Round, v, in, info.Outputs[v])
			}
		}
	}
}

func TestDMisNeverRevertsDecisions(t *testing.T) {
	const n = 128
	base := graph.GNP(n, 8.0/n, workload(19))
	adv := &adversary.Churn{Base: base, Add: 10, Del: 10, Seed: 3}
	e := engine.New(engine.Config{N: n, Seed: 29}, adv, NewDynamic(n))
	prev := make([]problems.Value, n)
	for r := 0; r < 50; r++ {
		info := e.Step()
		for v, out := range info.Outputs {
			if prev[v] != problems.Bot && out != prev[v] {
				t.Fatalf("round %d: node %d reverted %d -> %d", info.Round, v, prev[v], out)
			}
		}
		copy(prev, info.Outputs)
	}
}

func TestDMisEdgeDecayLemma52(t *testing.T) {
	// Lemma 5.2: E[|E(H_{r+2})|] <= (2/3)|E(H_r)| against oblivious
	// adversaries. Measure the average 2-round decay on a static graph
	// over several seeds; the average decay must be below the bound as
	// long as enough edges remain to make the ratio meaningful.
	const n = 512
	g := graph.GNP(n, 16.0/n, workload(23))
	var ratios []float64
	for seed := uint64(1); seed <= 8; seed++ {
		e := engine.New(engine.Config{N: n, Seed: seed}, adversary.Static{G: g}, NewLuby(n))
		prevH := -1
		e.OnRound(func(info *engine.RoundInfo) {
			if info.Round%2 != 0 {
				return
			}
			h := undecidedEdges(info.Graph(), info.Outputs)
			if prevH >= 50 { // ratio only meaningful with enough edges
				ratios = append(ratios, float64(h)/float64(prevH))
			}
			prevH = h
		})
		e.Run(20)
	}
	if len(ratios) < 8 {
		t.Fatalf("too few decay samples: %d", len(ratios))
	}
	sum := 0.0
	for _, r := range ratios {
		sum += r
	}
	mean := sum / float64(len(ratios))
	if mean > ExpectedDecayBound {
		t.Fatalf("mean 2-round decay %.3f exceeds bound %.3f", mean, ExpectedDecayBound)
	}
}

func undecidedEdges(g *graph.Graph, out []problems.Value) int {
	count := 0
	g.EachEdge(func(u, v graph.NodeID) {
		if out[u] == problems.Bot && out[v] == problems.Bot {
			count++
		}
	})
	return count
}

// --- SMis / Ghaffari ----------------------------------------------------

func TestGhaffariComputesMISOnStaticGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNP(256, 8.0/256, workload(31))},
		{"cycle", graph.Cycle(77)},
		{"complete", graph.Complete(40)},
		{"grid", graph.Grid(10, 10)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.g.N()
			e := engine.New(engine.Config{N: n, Seed: 7}, adversary.Static{G: tc.g}, NewGhaffari(n))
			if _, ok := e.RunUntil(400, func(info *engine.RoundInfo) bool {
				return allDecided(info.Outputs)
			}); !ok {
				t.Fatal("not all decided in 400 rounds")
			}
			checkMIS(t, tc.g, e.Outputs())
		})
	}
}

func TestSMisPartialSolutionEveryRound(t *testing.T) {
	// Property B.1 under heavy churn — with the documented exception
	// (reproduction note, see dmis.go): Algorithm 5 as published has a
	// one-round race in which a Dominated node is orphaned when its
	// dominator is demoted by a freshly inserted M–M edge within the same
	// round. The node's end-of-round state cannot depend on that 2-hop
	// event in one communication round, so the orphaning is unavoidable;
	// it must (a) be the ONLY violation type — independence and premature
	// domination must hold strictly — and (b) self-heal by the next round.
	const n = 128
	base := graph.GNP(n, 8.0/n, workload(37))
	adv := &adversary.Churn{Base: base, Add: 12, Del: 12, Seed: 5}
	e := engine.New(engine.Config{N: n, Seed: 31}, adv, NewNetworkStatic(n))
	chk := verify.NewPartial(problems.MIS())
	orphans := make(map[graph.NodeID]int) // node -> round orphaned
	totalViolations := 0
	e.OnRound(func(info *engine.RoundInfo) {
		// Healing check: last round's orphans must have left Dominated.
		for v, r := range orphans {
			if r < info.Round {
				if info.Outputs[v] == problems.Dominated {
					// Still dominated: must have a live dominator now.
					ok := false
					for _, u := range info.Graph().Neighbors(v) {
						if info.Outputs[u] == problems.InMIS {
							ok = true
						}
					}
					if !ok {
						t.Fatalf("round %d: orphaned node %d did not heal", info.Round, v)
					}
				}
				delete(orphans, v)
			}
		}
		rep := chk.Observe(info.Graph(), info.Outputs)
		for _, viol := range rep.Violations {
			totalViolations++
			if viol.Reason != "dominated without MIS neighbor (partial)" {
				t.Fatalf("round %d: non-race B.1 violation: %v", info.Round, viol)
			}
			orphans[viol.Node] = info.Round
		}
	})
	e.Run(80)
	// With 12 insertions/round and an M-fraction around 1/3, roughly one
	// M–M insertion per round is expected, each orphaning ~1 node; far
	// more would indicate a second violation mechanism.
	if totalViolations > 2*80 {
		t.Fatalf("too many race violations: %d in 80 rounds", totalViolations)
	}
}

func TestSMisSelfHealsAdjacentMISNodes(t *testing.T) {
	// Two MIS nodes joined by a new edge must both leave M by the end of
	// the round.
	empty := graph.Empty(2)
	joined := graph.FromEdges(2, []graph.EdgeKey{graph.MakeEdgeKey(0, 1)})
	adv := adversary.NewScripted(seq(empty, empty, empty, joined, joined, joined, joined,
		joined, joined, joined, joined, joined, joined, joined, joined))
	e := engine.New(engine.Config{N: 2, Seed: 41}, adv, NewNetworkStatic(2))
	// Isolated undecided nodes become candidates eventually and join M.
	if _, ok := e.RunUntil(3, func(info *engine.RoundInfo) bool {
		return info.Outputs[0] == problems.InMIS && info.Outputs[1] == problems.InMIS
	}); !ok {
		t.Skip("isolated nodes did not both join M in 3 rounds (seed-dependent)")
	}
	info := e.Step() // edge appears: both receive marks, both leave M
	if info.Outputs[0] != problems.Bot || info.Outputs[1] != problems.Bot {
		t.Fatalf("adjacent MIS nodes kept state: %v", info.Outputs)
	}
	// Must eventually settle into one InMIS + one Dominated.
	if _, ok := e.RunUntil(40, func(info *engine.RoundInfo) bool {
		a, b := info.Outputs[0], info.Outputs[1]
		return (a == problems.InMIS && b == problems.Dominated) ||
			(a == problems.Dominated && b == problems.InMIS)
	}); !ok {
		t.Fatal("edge conflict never resolved to MIS+Dominated")
	}
}

func TestSMisDominationLossRecovers(t *testing.T) {
	// A dominated node whose dominator edge disappears must become
	// undecided and then re-decide.
	pair := graph.FromEdges(2, []graph.EdgeKey{graph.MakeEdgeKey(0, 1)})
	empty := graph.Empty(2)
	gs := []*graph.Graph{pair, pair, pair, pair, pair, pair, pair, pair}
	for i := 0; i < 12; i++ {
		gs = append(gs, empty)
	}
	adv := adversary.NewScripted(seq(gs...))
	e := engine.New(engine.Config{N: 2, Seed: 43}, adv, NewNetworkStatic(2))
	if _, ok := e.RunUntil(8, func(info *engine.RoundInfo) bool {
		a, b := info.Outputs[0], info.Outputs[1]
		return (a == problems.InMIS && b == problems.Dominated) ||
			(a == problems.Dominated && b == problems.InMIS)
	}); !ok {
		t.Fatal("pair did not decide within 8 rounds")
	}
	// After the edge disappears, the dominated node must become InMIS
	// (isolated nodes must dominate themselves).
	if _, ok := e.RunUntil(30, func(info *engine.RoundInfo) bool {
		return info.Outputs[0] == problems.InMIS && info.Outputs[1] == problems.InMIS
	}); !ok {
		t.Fatal("domination loss not recovered")
	}
}

func TestSMisStabilizesOnStaticGraph(t *testing.T) {
	const n = 256
	g := graph.GNP(n, 8.0/n, workload(47))
	e := engine.New(engine.Config{N: n, Seed: 53}, adversary.Static{G: g}, NewNetworkStatic(n))
	T := (&SMisFactory{N: n}).StabilizationTime(n)
	e.Run(T)
	if !allDecided(e.Outputs()) {
		t.Fatalf("not all decided after T=%d rounds on static graph", T)
	}
	frozen := append([]problems.Value(nil), e.Outputs()...)
	for r := 0; r < 20; r++ {
		info := e.Step()
		for v, out := range info.Outputs {
			if out != frozen[v] {
				t.Fatalf("round %d: node %d changed %d -> %d on static graph",
					info.Round, v, frozen[v], out)
			}
		}
	}
	checkMIS(t, g, frozen)
}

func TestSMisDesireFloor(t *testing.T) {
	// Footnote 11: desire levels never fall below 1/(5n).
	const n = 64
	g := graph.Complete(n) // max contention pushes desires down
	f := &SMisFactory{N: n}
	var minSeen float64 = 1
	f.Probe = func(ev DesireEvent) {
		if ev.Desire < minSeen {
			minSeen = ev.Desire
		}
	}
	alg := singleFrom(f)
	e := engine.New(engine.Config{N: n, Seed: 59, Workers: 1}, adversary.Static{G: g}, alg)
	e.Run(100)
	if minSeen < 1.0/(5.0*n)-1e-12 {
		t.Fatalf("desire level %v fell below floor %v", minSeen, 1.0/(5.0*n))
	}
}

// --- Combined (Corollary 1.3) -------------------------------------------

func TestMISConcatTDynamicEveryRound(t *testing.T) {
	const n = 128
	base := graph.GNP(n, 6.0/n, workload(61))
	combined := NewMIS(n)
	adv := &adversary.Churn{Base: base, Add: 4, Del: 4, Seed: 17}
	e := engine.New(engine.Config{N: n, Seed: 61}, adv, combined)
	chk := verify.NewTDynamic(problems.MIS(), combined.T1, n)
	invalid := 0
	var firstBad string
	e.OnRound(func(info *engine.RoundInfo) {
		rep := chk.Observe(info.Graph(), info.Wake, info.Outputs)
		if !rep.Valid() {
			invalid++
			if firstBad == "" {
				if len(rep.PackingViolations) > 0 {
					firstBad = rep.PackingViolations[0].String()
				} else if len(rep.CoverViolations) > 0 {
					firstBad = rep.CoverViolations[0].String()
				} else {
					firstBad = "⊥ in core"
				}
			}
		}
	})
	e.Run(3 * combined.T1)
	if invalid != 0 {
		t.Fatalf("%d invalid rounds (first: %s): Corollary 1.3 violated", invalid, firstBad)
	}
}

func TestMISConcatLocallyStatic(t *testing.T) {
	const n = 96
	base := graph.GNP(n, 6.0/n, workload(71))
	combined := NewMIS(n)
	protected := []graph.NodeID{3, 50, 90}
	adv := &adversary.LocalStatic{
		Inner:     &adversary.Churn{Base: base, Add: 8, Del: 8, Seed: 23},
		Base:      base,
		Protected: protected,
		Alpha:     combined.Alpha(),
	}
	e := engine.New(engine.Config{N: n, Seed: 67}, adv, combined)
	wait := combined.StabilityWait()
	lastOut := make([]problems.Value, n)
	var changes []int
	e.OnRound(func(info *engine.RoundInfo) {
		for _, v := range protected {
			if info.Round > wait && info.Outputs[v] != lastOut[v] {
				changes = append(changes, info.Round)
			}
			lastOut[v] = info.Outputs[v]
		}
	})
	e.Run(wait + 40)
	if len(changes) != 0 {
		t.Fatalf("protected nodes changed output after stabilization at rounds %v", changes)
	}
	for _, v := range protected {
		if lastOut[v] == problems.Bot {
			t.Fatalf("protected node %d still ⊥", v)
		}
	}
}

func TestDMisTruncatedAlphas(t *testing.T) {
	// The Section 2 remark: poly log n-bit messages suffice. With alphas
	// truncated to 2⌈log₂n⌉+4 bits the algorithm must still compute a
	// valid MIS (the id tie-break keeps adjacent simultaneous joins
	// impossible even under collisions), in essentially the same number
	// of rounds.
	const n = 256
	g := graph.GNP(n, 8.0/n, workload(97))
	bits := 2*ceilLog2(n+1) + 4
	f := &DMisFactory{N: n, AlphaBits: bits}
	alg := core.Single{Label: "dmis-trunc", Factory: func(v graph.NodeID) core.NodeInstance {
		return f.NewNode(v)
	}, Bits: f.MessageBits}
	e := engine.New(engine.Config{N: n, Seed: 83}, adversary.Static{G: g}, alg)
	var bitsSeen int64
	e.OnRound(func(info *engine.RoundInfo) { bitsSeen += info.Bits })
	round, ok := e.RunUntil(DefaultMISWindow(n), func(info *engine.RoundInfo) bool {
		return allDecided(info.Outputs)
	})
	if !ok {
		t.Fatalf("truncated-alpha DMis not decided within window (round %d)", round)
	}
	checkMIS(t, g, e.Outputs())
	if bitsSeen == 0 {
		t.Fatal("no message bits accounted")
	}
	// Degenerate truncation (1 bit): ties everywhere, id tie-break must
	// still yield a correct MIS, if more slowly.
	f1 := &DMisFactory{N: n, AlphaBits: 1}
	alg1 := core.Single{Label: "dmis-1bit", Factory: func(v graph.NodeID) core.NodeInstance {
		return f1.NewNode(v)
	}}
	e1 := engine.New(engine.Config{N: n, Seed: 89}, adversary.Static{G: g}, alg1)
	if _, ok := e1.RunUntil(500, func(info *engine.RoundInfo) bool {
		return allDecided(info.Outputs)
	}); !ok {
		t.Fatal("1-bit-alpha DMis never decided")
	}
	checkMIS(t, g, e1.Outputs())
}

// --- Chain (triple combiner, Section 3 remark) ----------------------------

func TestChainedMISTDynamicEveryRound(t *testing.T) {
	const n = 96
	base := graph.GNP(n, 6.0/n, workload(91))
	chained := NewChainedMIS(n, DefaultMISWindow(n)/2)
	adv := &adversary.Churn{Base: base, Add: 4, Del: 4, Seed: 31}
	e := engine.New(engine.Config{N: n, Seed: 71}, adv, chained)
	chk := verify.NewTDynamic(problems.MIS(), chained.T1, n)
	invalid := 0
	var first string
	e.OnRound(func(info *engine.RoundInfo) {
		rep := chk.Observe(info.Graph(), info.Wake, info.Outputs)
		if !rep.Valid() {
			invalid++
			if first == "" {
				switch {
				case len(rep.PackingViolations) > 0:
					first = rep.PackingViolations[0].String()
				case len(rep.CoverViolations) > 0:
					first = rep.CoverViolations[0].String()
				default:
					first = "⊥ in core"
				}
			}
		}
	})
	e.Run(3 * chained.T1)
	if invalid != 0 {
		t.Fatalf("%d invalid rounds (first: %s)", invalid, first)
	}
}

func TestChainedMISLocallyStatic(t *testing.T) {
	const n = 96
	base := graph.GNP(n, 6.0/n, workload(93))
	chained := NewChainedMIS(n, DefaultMISWindow(n)/2)
	protected := []graph.NodeID{10, 60}
	adv := &adversary.LocalStatic{
		Inner:     &adversary.Churn{Base: base, Add: 6, Del: 6, Seed: 37},
		Base:      base,
		Protected: protected,
		Alpha:     chained.Alpha(),
	}
	e := engine.New(engine.Config{N: n, Seed: 73}, adv, chained)
	wait := chained.StabilityWait()
	lastOut := make([]problems.Value, n)
	var changes []int
	e.OnRound(func(info *engine.RoundInfo) {
		for _, v := range protected {
			if info.Round > wait && info.Outputs[v] != lastOut[v] {
				changes = append(changes, info.Round)
			}
			lastOut[v] = info.Outputs[v]
		}
	})
	e.Run(wait + 40)
	if len(changes) != 0 {
		t.Fatalf("protected nodes changed after T1+Tm+T2 at rounds %v", changes)
	}
	for _, v := range protected {
		if lastOut[v] == problems.Bot {
			t.Fatalf("protected node %d still ⊥", v)
		}
	}
}

func TestChainedMISMidPipelineFreshness(t *testing.T) {
	// The remark's property (b) — "satisfies the stronger dynamic
	// guarantees if the topological changes are only of the required
	// limited form" — is observable at the MID layer: its output
	// satisfies the Tm-dynamic condition (a fresher window than the
	// outer T1) under mild churn. The outer layer cannot carry
	// freshness through its own T1-round latency; it contributes the
	// unconditional guarantee (tested separately).
	const n = 96
	midW := DefaultMISWindow(n) / 2
	base := graph.GNP(n, 6.0/n, workload(95))
	chained := NewChainedMIS(n, midW)
	midOut := make([]problems.Value, n)
	chained.MidProbe = func(v graph.NodeID, round int, out problems.Value) {
		midOut[v] = out
	}
	adv := &adversary.Churn{Base: base, Add: 1, Del: 1, Seed: 41} // mild
	// Workers: 1 so the probe needs no synchronization.
	e := engine.New(engine.Config{N: n, Seed: 79, Workers: 1}, adv, chained)
	chk := verify.NewTDynamic(problems.MIS(), midW, n)
	invalid, counted := 0, 0
	e.OnRound(func(info *engine.RoundInfo) {
		rep := chk.Observe(info.Graph(), info.Wake, midOut)
		if info.Round > 2*chained.T1 {
			counted++
			if !rep.Valid() {
				invalid++
			}
		}
	})
	e.Run(4 * chained.T1)
	if counted == 0 {
		t.Fatal("no rounds counted")
	}
	// Under mild churn the mid layer should satisfy the fresher window
	// in (nearly) every round; small slack for transients the smaller
	// window legitimately exposes.
	if frac := float64(invalid) / float64(counted); frac > 0.2 {
		t.Fatalf("mid-layer invalid fraction %.2f against window %d", frac, midW)
	}
}

// --- Clairvoyant adversary (remark after Lemma 5.2) ----------------------

func TestClairvoyantAdversaryVoidsDMisGuarantees(t *testing.T) {
	// The adaptive-offline adversary of the remark after Lemma 5.2
	// cannot keep nodes undecided (every graph has a local α-minimum),
	// but by burning exactly the (v→w) witness edges it makes the event
	// (v→w)_r impossible: NO node is ever dominated, the output
	// degenerates to M = V, and the result is massively dependent (w.r.t.
	// the footprint graph) — the guarantees hold only vacuously, against
	// an emptied intersection graph. Against the oblivious adversary the
	// same seed yields a proper MIS with a large dominated fraction.
	const n = 128
	const seed = 77
	g := graph.GNP(n, 10.0/n, workload(83))

	// Oblivious baseline: static graph, proper MIS.
	e1 := engine.New(engine.Config{N: n, Seed: seed}, adversary.Static{G: g}, NewLuby(n))
	if _, ok := e1.RunUntil(1000, func(info *engine.RoundInfo) bool {
		return allDecided(info.Outputs)
	}); !ok {
		t.Fatal("oblivious run did not decide")
	}
	checkMIS(t, g, e1.Outputs())
	dominated := 0
	for _, out := range e1.Outputs() {
		if out == problems.Dominated {
			dominated++
		}
	}
	if dominated == 0 {
		t.Fatal("oblivious run dominated nobody (degenerate workload)")
	}

	// Clairvoyant run: same seed, same base graph.
	staller := &adversary.LubyStaller{Base: g, Seed: seed, Purpose: prf.PurposeLubyAlpha}
	e2 := engine.New(engine.Config{N: n, Seed: seed, OutputLag: 1}, staller, NewDynamic(n))
	e2.RunUntil(1000, func(info *engine.RoundInfo) bool {
		return allDecided(info.Outputs)
	})
	for v, out := range e2.Outputs() {
		if out == problems.Dominated {
			t.Fatalf("node %d got dominated despite clairvoyant edge deletion", v)
		}
		if out != problems.InMIS {
			t.Fatalf("node %d not decided under clairvoyant adversary", v)
		}
	}
	if staller.Deleted == 0 {
		t.Fatal("adversary deleted no edges")
	}
	// The degenerate M = V output is wildly dependent on the footprint.
	if bad := (problems.IndependentSet{}).CheckFull(g, e2.Outputs(), adversary.AllNodes(n)); len(bad) == 0 {
		t.Fatal("expected massive independence violations w.r.t. the footprint graph")
	}
}

// --- helpers --------------------------------------------------------------

func singleFrom(f *SMisFactory) engine.Algorithm {
	return core.Single{Label: f.Name(), Factory: func(v graph.NodeID) core.NodeInstance {
		return f.NewNode(v)
	}}
}

func seq(gs ...*graph.Graph) traceLike { return traceLike{gs} }

type traceLike struct{ gs []*graph.Graph }

func (t traceLike) Replay(fn func(int, *graph.Graph, []graph.NodeID)) {
	for i, g := range t.gs {
		var wake []graph.NodeID
		if i == 0 {
			wake = adversary.AllNodes(g.N())
		}
		fn(i+1, g, wake)
	}
}
