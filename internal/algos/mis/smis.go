package mis

import (
	"math"

	"dynlocal/internal/core"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// SMisFactory builds SMis instances (Algorithm 5), the
// (O(log n), 2)-network-static algorithm for (M_P, M_C) derived from
// Ghaffari's algorithm with two modifications for the dynamic setting:
// nodes leave the MIS (become undecided) when a neighboring MIS node
// appears, dominated nodes become undecided when their dominator
// disappears — and desire levels are clamped below at 1/(5n) (footnote
// 11) so that they recover quickly after the topology changes.
//
// Lemma 5.5: B.1 (partial solution every round) holds deterministically;
// B.2 holds w.h.p. with α = 2 — a node whose 2-neighborhood is static is
// decided within O(log n) rounds and never changes its output while the
// 2-neighborhood stays static.
type SMisFactory struct {
	// N is the universe size (needed for the 1/(5n) desire floor).
	N int
	// Stabilization overrides the default T₂ (0 = default).
	Stabilization int
	// Probe, if set, receives one DesireEvent per undecided node per
	// round (concurrently; must be safe). Feeds the golden-round
	// experiment (E7).
	Probe func(DesireEvent)
	// DisableDesireFloor removes the 1/(5n) lower bound on desire levels,
	// reverting to the original Ghaffari update rule. The paper calls the
	// floor crucial in the dynamic setting (footnote 11): without it,
	// desire levels starved by an earlier dense neighborhood take
	// arbitrarily long to recover after the topology changes. Exposed
	// only for the ablation benchmark.
	DisableDesireFloor bool
}

// DesireEvent is SMis instrumentation: the state of one undecided node in
// one round, classifying the golden rounds of Lemma 5.6.
type DesireEvent struct {
	Node         graph.NodeID
	Desire       float64 // p_r(v) entering the round
	EffectiveDeg float64 // δ_r(v) computed this round
	Decided      bool    // node decided this round
}

// Name implements core.NetworkStaticAlgorithm.
func (f *SMisFactory) Name() string { return "smis" }

// StabilizationTime implements core.NetworkStaticAlgorithm.
func (f *SMisFactory) StabilizationTime(n int) int {
	if f.Stabilization > 0 {
		return f.Stabilization
	}
	return DefaultMISWindow(n)
}

// Alpha implements core.NetworkStaticAlgorithm: SMis is network-static
// with respect to 2-neighborhoods.
func (f *SMisFactory) Alpha() int { return 2 }

// MessageBits declares encoded sizes. Marks are 2 bits. Desire messages
// are compact: p(v) only ever takes values 2^-k (k ≤ log₂(5n)) or exactly
// 1/(5n), so an exponent of ⌈log₂ log₂ 5n⌉+1 bits plus the candidate and
// floor flags suffices.
func (f *SMisFactory) MessageBits(m engine.SubMsg) int {
	if m.Kind == KindMark {
		return 2
	}
	expBits := ceilLog2(ceilLog2(5*f.N+1) + 2)
	return 2 + expBits + 2
}

// NewNode implements core.NetworkStaticAlgorithm.
func (f *SMisFactory) NewNode(v graph.NodeID) core.NodeInstance {
	return &smisNode{f: f, v: v, p: 0.5}
}

type smisNode struct {
	f *SMisFactory
	v graph.NodeID

	out       problems.Value
	p         float64 // desire level (frozen while decided)
	candidate bool
}

// pFloor returns the desire-level lower bound 1/(5n), or 0 when the
// ablation disables it.
func (s *smisNode) pFloor() float64 {
	if s.f.DisableDesireFloor {
		return 0
	}
	return 1.0 / (5.0 * float64(s.f.N))
}

// Start accepts an input configuration; desire level starts at 1/2 per
// Algorithm 5 (no communication round needed).
func (s *smisNode) Start(ctx *engine.Ctx, input problems.Value) {
	s.out = input
}

// Broadcast implements the send half of Algorithm 5: MIS nodes send a
// mark; undecided nodes flip a p(v)-coin for candidacy and send
// (p(v), candidate); dominated nodes are silent.
func (s *smisNode) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	switch s.out {
	case problems.InMIS:
		return append(buf, engine.SubMsg{Kind: KindMark})
	case problems.Bot:
		st := ctx.Stream(prf.PurposeCandidate)
		s.candidate = st.Bernoulli(s.p)
		flag := int64(0)
		if s.candidate {
			flag = 1
		}
		return append(buf, engine.SubMsg{Kind: KindDesire, A: int64(math.Float64bits(s.p)), B: flag})
	default:
		return buf
	}
}

// Process implements the receive half of Algorithm 5.
func (s *smisNode) Process(ctx *engine.Ctx, in []engine.Incoming, deg int) {
	mark := false
	otherCandidate := false
	delta := 0.0
	for _, m := range in {
		switch m.M.Kind {
		case KindMark:
			mark = true
		case KindDesire:
			delta += math.Float64frombits(uint64(m.M.A))
			if m.M.B == 1 {
				otherCandidate = true
			}
		}
	}

	wasUndecided := s.out == problems.Bot
	if wasUndecided {
		// Update the desire level from the effective degree δ(v).
		if delta >= 2 {
			s.p = math.Max(s.p/2, s.pFloor())
		} else {
			s.p = math.Min(2*s.p, 0.5)
		}
	}

	// State transitions (lines 6-10).
	switch {
	case wasUndecided && mark:
		s.out = problems.Dominated
	case wasUndecided && !mark && s.candidate && !otherCandidate:
		s.out = problems.InMIS
	case s.out == problems.InMIS && mark:
		s.out = problems.Bot // two adjacent MIS nodes demote each other
	case s.out == problems.Dominated && !mark:
		s.out = problems.Bot // domination lost
	}

	if s.f.Probe != nil && wasUndecided {
		s.f.Probe(DesireEvent{
			Node:         s.v,
			Desire:       s.p,
			EffectiveDeg: delta,
			Decided:      s.out != problems.Bot,
		})
	}
}

// Output implements core.NodeInstance.
func (s *smisNode) Output() problems.Value { return s.out }
