package coloring

import (
	"dynlocal/internal/core"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
)

// BasicFactory builds instances of Algorithm 6, the pipelined variant of
// the classic randomized (degree+1)-coloring for static graphs: every
// round has the identical structure (no two-round phases), so the
// algorithm also works under asynchronous wake-up. Colored nodes never
// un-color. Lemmas 6.1/6.2: each round an uncolored node is colored with
// probability ≥ 1/64 or its palette shrinks by ≥ 1/4, and all nodes are
// colored within O(log n) rounds w.h.p.
//
// Basic is the common ancestor of DColor (add intersection-graph
// communication) and SColor (add palette rebuilding and un-coloring);
// having it standalone lets the test suite reproduce the static-graph
// lemmas directly and the benches compare the three variants.
type BasicFactory struct {
	// N is the universe size.
	N int
	// Probe, if set, receives one Event per node per round (concurrently;
	// must be safe). Feeds the Lemma 6.1 experiment.
	Probe func(Event)
}

// Name implements engine algorithm naming.
func (f *BasicFactory) Name() string { return "basic-coloring" }

// MessageBits declares the encoded message size (kind + color).
func (f *BasicFactory) MessageBits(m engine.SubMsg) int {
	return 2 + ceilLog2(f.N+2)
}

// NewNode creates the per-node instance.
func (f *BasicFactory) NewNode(v graph.NodeID) core.NodeInstance {
	return &basicNode{f: f, v: v}
}

type basicNode struct {
	f *BasicFactory
	v graph.NodeID

	out       problems.Value
	pal       palette
	started   bool
	tentative int64
}

// Start initializes P_v = {1}; no communication round needed.
func (b *basicNode) Start(ctx *engine.Ctx, input problems.Value) {
	b.out = input
	b.pal = newPalette(1)
}

// Broadcast implements the send half of Algorithm 6.
func (b *basicNode) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	if b.out != problems.Bot {
		return append(buf, engine.SubMsg{Kind: KindFixed, A: int64(b.out)})
	}
	if b.pal.len() == 0 {
		b.tentative = 0
		return append(buf, engine.SubMsg{Kind: KindTentative, A: 0})
	}
	st := ctx.Stream(prfTentative)
	b.tentative = b.pal.pick(&st)
	return append(buf, engine.SubMsg{Kind: KindTentative, A: b.tentative})
}

// Process implements the receive half of Algorithm 6.
func (b *basicNode) Process(ctx *engine.Ctx, in []engine.Incoming, deg int) {
	palBefore := b.pal.len()
	wasUncolored := b.out == problems.Bot
	fresh := newPalette(deg + 1)
	tentativeClash := false
	for _, m := range in {
		switch m.M.Kind {
		case KindFixed:
			fresh.remove(m.M.A)
		case KindTentative:
			if m.M.A != 0 && m.M.A == b.tentative {
				tentativeClash = true
			}
		}
	}
	removed := 0
	if b.started && wasUncolored {
		// Palette shrink accounting for Lemma 6.1 (palette only shrinks
		// on a static graph, where deg is constant).
		if d := palBefore - fresh.len(); d > 0 {
			removed = d
		}
	}
	b.started = true
	b.pal = fresh
	if wasUncolored && b.tentative != 0 && b.pal.contains(b.tentative) && !tentativeClash {
		b.out = problems.Value(b.tentative)
	}
	if b.f.Probe != nil {
		b.f.Probe(Event{
			Node:          b.v,
			PaletteBefore: palBefore,
			Removed:       removed,
			WasUncolored:  wasUncolored,
			GotColored:    wasUncolored && b.out != problems.Bot,
		})
	}
}

// Output implements core.NodeInstance.
func (b *basicNode) Output() problems.Value { return b.out }
