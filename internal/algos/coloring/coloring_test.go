package coloring

import (
	"sync"
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/core"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
	"dynlocal/internal/verify"
)

func workload(seed uint64) *prf.Stream {
	return prf.NewStream(seed, 0, 0, prf.PurposeWorkload)
}

func allColored(out []problems.Value) bool {
	for _, v := range out {
		if v == problems.Bot {
			return false
		}
	}
	return true
}

// --- palette ----------------------------------------------------------

func TestPaletteBasics(t *testing.T) {
	p := newPalette(70)
	if p.len() != 70 || !p.contains(1) || !p.contains(70) || p.contains(71) || p.contains(0) {
		t.Fatal("fresh palette wrong")
	}
	p.remove(70)
	p.remove(70) // idempotent
	if p.len() != 69 || p.contains(70) {
		t.Fatal("remove failed")
	}
	p.remove(999) // out of range: no-op
	if p.len() != 69 {
		t.Fatal("out-of-range remove changed size")
	}
}

func TestPalettePickUniform(t *testing.T) {
	p := newPalette(8)
	p.remove(3)
	p.remove(7)
	s := prf.NewStream(5, 1, 1, prf.PurposeTentativeColor)
	counts := make(map[int64]int)
	const samples = 60000
	for i := 0; i < samples; i++ {
		c := p.pick(s)
		if c == 3 || c == 7 || c < 1 || c > 8 {
			t.Fatalf("picked removed/out-of-range color %d", c)
		}
		counts[c]++
	}
	expected := samples / 6
	for c, cnt := range counts {
		if cnt < expected*8/10 || cnt > expected*12/10 {
			t.Fatalf("color %d picked %d times, expected ~%d", c, cnt, expected)
		}
	}
}

func TestPalettePickEmptyPanics(t *testing.T) {
	p := newPalette(0)
	s := prf.NewStream(1, 1, 1, prf.PurposeTentativeColor)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.pick(s)
}

func TestPaletteWordBoundaries(t *testing.T) {
	p := newPalette(64)
	if p.len() != 64 || !p.contains(64) || p.contains(65) {
		t.Fatal("64-color palette wrong")
	}
	p2 := newPalette(65)
	if p2.len() != 65 || !p2.contains(65) {
		t.Fatal("65-color palette wrong")
	}
}

// --- Basic (Algorithm 6) ---------------------------------------------

func TestBasicColorsStaticGraph(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNP(256, 8.0/256, workload(1))},
		{"cycle", graph.Cycle(101)},
		{"complete", graph.Complete(40)},
		{"star", graph.Star(64)},
		{"caterpillar", graph.Caterpillar(20, 4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.g.N()
			e := engine.New(engine.Config{N: n, Seed: 11}, adversary.Static{G: tc.g}, NewBasic(n))
			round, ok := e.RunUntil(40*1, func(info *engine.RoundInfo) bool {
				return allColored(info.Outputs)
			})
			if !ok {
				t.Fatalf("not all colored after %d rounds", round)
			}
			out := e.Outputs()
			if bad := (problems.ProperColoring{}).CheckFull(tc.g, out, adversary.AllNodes(n)); len(bad) != 0 {
				t.Fatalf("improper coloring: %v", bad[0])
			}
			if bad := (problems.DegreeRange{}).CheckFull(tc.g, out, adversary.AllNodes(n)); len(bad) != 0 {
				t.Fatalf("range violation: %v", bad[0])
			}
		})
	}
}

func TestBasicConvergesWithinWindow(t *testing.T) {
	// The default window must comfortably cover the measured all-colored
	// time on moderately dense G(n,p) across seeds (Lemma 6.2).
	const n = 512
	for seed := uint64(1); seed <= 10; seed++ {
		g := graph.GNP(n, 10.0/n, workload(seed))
		e := engine.New(engine.Config{N: n, Seed: seed}, adversary.Static{G: g}, NewBasic(n))
		limit := DefaultColoringWindow(n) - 1
		if _, ok := e.RunUntil(limit, func(info *engine.RoundInfo) bool {
			return allColored(info.Outputs)
		}); !ok {
			t.Fatalf("seed %d: not colored within window %d", seed, limit)
		}
	}
}

func TestBasicNeverUncolors(t *testing.T) {
	const n = 128
	g := graph.GNP(n, 6.0/n, workload(3))
	e := engine.New(engine.Config{N: n, Seed: 7}, adversary.Static{G: g}, NewBasic(n))
	prev := make([]problems.Value, n)
	for r := 0; r < 30; r++ {
		info := e.Step()
		for v, out := range info.Outputs {
			if prev[v] != problems.Bot && out != prev[v] {
				t.Fatalf("round %d: node %d changed %d -> %d", info.Round, v, prev[v], out)
			}
		}
		copy(prev, info.Outputs)
	}
}

func TestBasicLemma61Progress(t *testing.T) {
	// Lemma 6.1: each round, an uncolored node is colored with
	// probability >= 1/64 or its palette shrinks by >= 1/4. Measure the
	// empirical conditional frequency.
	const n = 400
	g := graph.GNP(n, 12.0/n, workload(9))
	var mu sync.Mutex
	slowRounds, slowColored := 0, 0
	f := &BasicFactory{N: n, Probe: func(ev Event) {
		if !ev.WasUncolored || ev.PaletteBefore == 0 {
			return
		}
		shrank := 4*ev.Removed >= ev.PaletteBefore
		if !shrank {
			mu.Lock()
			slowRounds++
			if ev.GotColored {
				slowColored++
			}
			mu.Unlock()
		}
	}}
	alg := core.Single{Label: f.Name(), Factory: func(v graph.NodeID) core.NodeInstance {
		return f.NewNode(v)
	}}
	e := engine.New(engine.Config{N: n, Seed: 13, Workers: 1}, adversary.Static{G: g}, alg)
	e.Run(25)
	if slowRounds == 0 {
		t.Fatal("no slow (non-shrinking) rounds observed — test ineffective")
	}
	freq := float64(slowColored) / float64(slowRounds)
	if freq < 1.0/64 {
		t.Fatalf("coloring probability in non-shrinking rounds %.4f < 1/64", freq)
	}
}

// --- DColor (Algorithm 2) ---------------------------------------------

func TestDColorColorsUnderChurn(t *testing.T) {
	// Lemma 4.4: after T-1 rounds of DColor all nodes are colored w.h.p.,
	// for ANY dynamic graph.
	const n = 256
	base := graph.GNP(n, 8.0/n, workload(21))
	for seed := uint64(1); seed <= 5; seed++ {
		adv := &adversary.Churn{Base: base, Add: 10, Del: 10, Seed: seed}
		e := engine.New(engine.Config{N: n, Seed: seed * 7}, adv, NewDynamic(n))
		limit := DefaultColoringWindow(n) - 1
		if _, ok := e.RunUntil(limit, func(info *engine.RoundInfo) bool {
			return allColored(info.Outputs)
		}); !ok {
			t.Fatalf("seed %d: not colored within %d rounds under churn", seed, limit)
		}
	}
}

func TestDColorInputExtending(t *testing.T) {
	// Property A.1: the output extends the input and never changes a
	// colored node.
	const n = 64
	g := graph.GNP(n, 6.0/n, workload(2))
	input := make([]problems.Value, n)
	// Pre-color nodes 0..9 with a valid partial solution: use distinct
	// colors within degree+1 range... color 1 for an independent set.
	mis := []graph.NodeID{}
	taken := make([]bool, n)
	for v := graph.NodeID(0); v < graph.NodeID(n) && len(mis) < 10; v++ {
		ok := true
		for _, u := range g.Neighbors(v) {
			if taken[u] {
				ok = false
				break
			}
		}
		if ok {
			taken[v] = true
			mis = append(mis, v)
			input[v] = 1
		}
	}
	e := engine.New(engine.Config{N: n, Seed: 3, Input: input}, adversary.Static{G: g}, NewDynamic(n))
	for r := 0; r < 25; r++ {
		info := e.Step()
		for _, v := range mis {
			if info.Outputs[v] != 1 {
				t.Fatalf("round %d: input color of %d changed to %d", info.Round, v, info.Outputs[v])
			}
		}
	}
}

func TestDColorRespectsIntersectionPacking(t *testing.T) {
	// A single DColor instance started in round 1 communicates on the
	// intersection of ALL graphs since its start: its output is a proper
	// coloring of that since-start intersection in every round,
	// deterministically. (The sliding-window T-dynamic guarantee is what
	// Concat's instance pipeline adds on top; tested separately.)
	const n = 200
	base := graph.GNP(n, 8.0/n, workload(31))
	adv := &adversary.Churn{Base: base, Add: 6, Del: 6, Seed: 5}
	e := engine.New(engine.Config{N: n, Seed: 9}, adv, NewDynamic(n))
	var inter *graph.Graph
	bad := 0
	e.OnRound(func(info *engine.RoundInfo) {
		if inter == nil {
			// Clone: the round-1 graph is pooled and inter is read on
			// every later round.
			inter = info.Graph().Clone()
		} else {
			inter = graph.Intersection(inter, info.Graph())
		}
		bad += len((problems.ProperColoring{}).CheckPartial(inter, info.Outputs))
	})
	e.Run(60)
	if bad != 0 {
		t.Fatalf("%d packing violations on since-start intersection graph", bad)
	}
}

func TestDColorLemma42Invariant(t *testing.T) {
	// Lemma 4.2: |P_v| >= |U(v)| + 1 in every round. We verify the weaker
	// but sufficient consequence that the palette never empties while the
	// node is uncolored (pick would panic otherwise) and that all nodes
	// color eventually even on the complete graph (max contention).
	const n = 48
	g := graph.Complete(n)
	e := engine.New(engine.Config{N: n, Seed: 17}, adversary.Static{G: g}, NewDynamic(n))
	if _, ok := e.RunUntil(200, func(info *engine.RoundInfo) bool {
		return allColored(info.Outputs)
	}); !ok {
		t.Fatal("complete graph not colored in 200 rounds")
	}
	out := e.Outputs()
	if bad := (problems.ProperColoring{}).CheckFull(g, out, adversary.AllNodes(n)); len(bad) != 0 {
		t.Fatalf("K%d coloring improper: %v", n, bad[0])
	}
}

// --- SColor (Algorithm 3) ---------------------------------------------

func TestSColorPartialSolutionEveryRound(t *testing.T) {
	// Property B.1: partial solution for (C_P, C_C) in G_r at the end of
	// EVERY round, even under heavy churn.
	const n = 128
	base := graph.GNP(n, 8.0/n, workload(41))
	adv := &adversary.Churn{Base: base, Add: 12, Del: 12, Seed: 3}
	e := engine.New(engine.Config{N: n, Seed: 23}, adv, NewNetworkStatic(n))
	chk := verify.NewPartial(problems.Coloring())
	e.OnRound(func(info *engine.RoundInfo) {
		if rep := chk.Observe(info.Graph(), info.Outputs); !rep.Valid() {
			t.Fatalf("round %d: B.1 violated: %v", info.Round, rep.Violations[0])
		}
	})
	e.Run(80)
}

func TestSColorStabilizesOnStaticGraph(t *testing.T) {
	// B.2 with a globally static graph: all nodes colored and fixed after
	// T rounds.
	const n = 256
	g := graph.GNP(n, 8.0/n, workload(51))
	e := engine.New(engine.Config{N: n, Seed: 29}, adversary.Static{G: g}, NewNetworkStatic(n))
	T := (&SColorFactory{}).StabilizationTime(n)
	e.Run(T)
	if !allColored(e.Outputs()) {
		t.Fatalf("not all colored after T=%d rounds on static graph", T)
	}
	frozen := append([]problems.Value(nil), e.Outputs()...)
	for r := 0; r < 20; r++ {
		info := e.Step()
		for v, out := range info.Outputs {
			if out != frozen[v] {
				t.Fatalf("round %d: node %d changed %d -> %d on static graph", info.Round, v, frozen[v], out)
			}
		}
	}
}

func TestSColorUncolorsOnConflict(t *testing.T) {
	// Two nodes colored identically joined by a new edge must both
	// un-color by the end of the round (B.1 self-healing).
	empty := graph.Empty(2)
	joined := graph.FromEdges(2, []graph.EdgeKey{graph.MakeEdgeKey(0, 1)})
	adv := adversary.NewScripted(scriptedSeq(empty, empty, joined, joined, joined, joined, joined, joined))
	e := engine.New(engine.Config{N: 2, Seed: 31}, adv, NewNetworkStatic(2))
	e.Run(2) // both isolated: both take color 1
	out := e.Outputs()
	if out[0] != 1 || out[1] != 1 {
		t.Fatalf("isolated nodes not colored 1: %v", out)
	}
	info := e.Step() // conflict edge appears: both must un-color
	if info.Outputs[0] != problems.Bot || info.Outputs[1] != problems.Bot {
		t.Fatalf("conflicting nodes kept colors: %v", info.Outputs)
	}
	// And they must re-color properly within a few rounds.
	if _, ok := e.RunUntil(30, func(info *engine.RoundInfo) bool {
		return info.Outputs[0] != problems.Bot && info.Outputs[1] != problems.Bot &&
			info.Outputs[0] != info.Outputs[1]
	}); !ok {
		t.Fatal("conflict not resolved")
	}
}

func TestSColorUncolorsOnRangeViolation(t *testing.T) {
	// A node colored 2 whose degree drops to 0 must un-color (covering).
	star := graph.Star(3)
	empty := graph.Empty(3)
	adv := adversary.NewScripted(scriptedSeq(star, star, star, star, star, star, star, star,
		empty, empty, empty, empty))
	e := engine.New(engine.Config{N: 3, Seed: 37}, adv, NewNetworkStatic(3))
	e.Run(8)
	out := e.Outputs()
	var big graph.NodeID = -1
	for v, o := range out {
		if o > 1 {
			big = graph.NodeID(v)
		}
	}
	if big == -1 {
		t.Skip("no node took a color > 1 (all colored 1 after conflicts); seed-dependent")
	}
	e.Run(1) // graph now empty: degree 0, palette {1}
	if e.Outputs()[big] > 1 {
		t.Fatalf("node %d kept out-of-range color %d at degree 0", big, e.Outputs()[big])
	}
}

// --- Combined (Corollary 1.2) -----------------------------------------

func TestColoringConcatTDynamicEveryRound(t *testing.T) {
	const n = 128
	base := graph.GNP(n, 6.0/n, workload(61))
	combined := NewColoring(n)
	adv := &adversary.Churn{Base: base, Add: 4, Del: 4, Seed: 11}
	e := engine.New(engine.Config{N: n, Seed: 41}, adv, combined)
	chk := verify.NewTDynamic(problems.Coloring(), combined.T1, n)
	invalid := 0
	e.OnRound(func(info *engine.RoundInfo) {
		rep := chk.Observe(info.Graph(), info.Wake, info.Outputs)
		if !rep.Valid() {
			invalid++
		}
	})
	e.Run(3 * combined.T1)
	if invalid != 0 {
		t.Fatalf("%d invalid rounds (want 0): Corollary 1.2 violated", invalid)
	}
}

func TestColoringConcatLocallyStatic(t *testing.T) {
	// Theorem 1.1(2): if the 2-ball of v is static, v's output is fixed
	// after T1+T2 rounds.
	const n = 96
	base := graph.GNP(n, 6.0/n, workload(71))
	combined := NewColoring(n)
	protected := []graph.NodeID{5, 40, 77}
	adv := &adversary.LocalStatic{
		Inner:     &adversary.Churn{Base: base, Add: 8, Del: 8, Seed: 13},
		Base:      base,
		Protected: protected,
		Alpha:     combined.Alpha(),
	}
	e := engine.New(engine.Config{N: n, Seed: 43}, adv, combined)
	wait := combined.StabilityWait()
	var changes []int
	lastOut := make([]problems.Value, n)
	e.OnRound(func(info *engine.RoundInfo) {
		for _, v := range protected {
			if info.Round > wait && info.Outputs[v] != lastOut[v] {
				changes = append(changes, info.Round)
			}
			lastOut[v] = info.Outputs[v]
		}
	})
	e.Run(wait + 40)
	if len(changes) != 0 {
		t.Fatalf("protected nodes changed output after stabilization at rounds %v", changes)
	}
	for _, v := range protected {
		if lastOut[v] == problems.Bot {
			t.Fatalf("protected node %d still ⊥ after %d rounds", v, wait+40)
		}
	}
}

// --- helpers ------------------------------------------------------------

func scriptedSeq(gs ...*graph.Graph) traceLike { return traceLike{gs} }

type traceLike struct{ gs []*graph.Graph }

func (t traceLike) Replay(fn func(int, *graph.Graph, []graph.NodeID)) {
	for i, g := range t.gs {
		var wake []graph.NodeID
		if i == 0 {
			wake = adversary.AllNodes(g.N())
		}
		fn(i+1, g, wake)
	}
}
