package coloring

import (
	"dynlocal/internal/core"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
)

// SColorFactory builds SColor instances (Algorithm 3). It implements
// core.NetworkStaticAlgorithm for (C_P, C_C) with α = 2 (Lemma 4.5):
//
//   - B.1: at the end of every round the colored nodes form a proper
//     coloring of G_r with colors within {1, …, d_r(v)+1} — any node
//     violating either condition un-colors itself (line 10).
//   - B.2: if the 2-neighborhood of v is static on [r, r₂], then v holds a
//     fixed non-⊥ color throughout [r+T, r₂], w.h.p., for T = O(log n).
//
// Unlike DColor, SColor communicates on the *current* graph and rebuilds
// its palette as [d_r(v)+1] \ F_v every round, so colors can re-enter the
// palette when neighbors un-color.
type SColorFactory struct {
	// N is the universe size.
	N int
	// Stabilization overrides the default T₂ (0 = default).
	Stabilization int
}

// Name implements core.NetworkStaticAlgorithm.
func (f *SColorFactory) Name() string { return "scolor" }

// StabilizationTime implements core.NetworkStaticAlgorithm.
func (f *SColorFactory) StabilizationTime(n int) int {
	if f.Stabilization > 0 {
		return f.Stabilization
	}
	return DefaultColoringWindow(n)
}

// Alpha implements core.NetworkStaticAlgorithm: SColor is network-static
// with respect to 2-neighborhoods.
func (f *SColorFactory) Alpha() int { return 2 }

// MessageBits declares the encoded message size (kind + color).
func (f *SColorFactory) MessageBits(m engine.SubMsg) int {
	return 2 + ceilLog2(f.N+2)
}

// NewNode implements core.NetworkStaticAlgorithm.
func (f *SColorFactory) NewNode(v graph.NodeID) core.NodeInstance {
	return &scolorNode{v: v}
}

type scolorNode struct {
	v graph.NodeID

	out       problems.Value
	pal       palette
	tentative int64
}

// Start accepts an input coloring (the Remark after Theorem 1.1 allows
// starting the framework from a pre-existing solution) and initializes
// the palette to {1} as in Algorithm 3 — no communication round needed.
func (s *scolorNode) Start(ctx *engine.Ctx, input problems.Value) {
	s.out = input
	s.pal = newPalette(1)
}

// Broadcast implements the send half of Algorithm 3.
func (s *scolorNode) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	if s.out != problems.Bot {
		return append(buf, engine.SubMsg{Kind: KindFixed, A: int64(s.out)})
	}
	if s.pal.len() == 0 {
		// Degenerate palette (e.g. a fixed neighbor owned color 1 while
		// our degree was 0): skip the tentative this round; the palette
		// is rebuilt below from the current degree.
		s.tentative = 0
		return append(buf, engine.SubMsg{Kind: KindTentative, A: 0})
	}
	st := ctx.Stream(prfTentative)
	s.tentative = s.pal.pick(&st)
	return append(buf, engine.SubMsg{Kind: KindTentative, A: s.tentative})
}

// Process implements the receive half of Algorithm 3.
func (s *scolorNode) Process(ctx *engine.Ctx, in []engine.Incoming, deg int) {
	// Rebuild the palette: P_v = [d_r(v)+1] \ F_v.
	s.pal = newPalette(deg + 1)
	tentativeClash := false
	for _, m := range in {
		switch m.M.Kind {
		case KindFixed:
			s.pal.remove(m.M.A)
		case KindTentative:
			if m.M.A != 0 && m.M.A == s.tentative {
				tentativeClash = true
			}
		}
	}
	if s.out == problems.Bot {
		if s.tentative != 0 && s.pal.contains(s.tentative) && !tentativeClash {
			s.out = problems.Value(s.tentative)
		}
	} else if !s.pal.contains(int64(s.out)) {
		// Line 10: conflict with a neighbor's fixed color, or the color
		// fell out of the degree+1 range — un-color.
		s.out = problems.Bot
	}
}

// Output implements core.NodeInstance.
func (s *scolorNode) Output() problems.Value { return s.out }
