package coloring

import (
	"math/bits"

	"dynlocal/internal/core"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
)

// Message kinds of the coloring algorithms.
const (
	// KindStart carries the input value φ_v in DColor's start round
	// (A = value, 0 for ⊥).
	KindStart uint8 = iota + 1
	// KindFixed announces a permanently chosen color (A = color).
	KindFixed
	// KindTentative announces this round's tentative color (A = color).
	KindTentative
)

// Event is the per-node per-round instrumentation record of DColor,
// feeding the Lemma 4.3 progress experiment (E4).
type Event struct {
	Node          graph.NodeID
	PaletteBefore int  // |P_v| entering the round
	Removed       int  // |Z_v|: colors deleted this round
	WasUncolored  bool // node was uncolored entering the round
	GotColored    bool // node became colored this round
}

// DColorFactory builds DColor instances (Algorithm 2). It implements
// core.DynamicAlgorithm: started in round j on a partial solution, all
// nodes are colored after T-1 rounds w.h.p. (Lemma 4.4), the output
// extends the input (A.1) and solves C_P on G^∩T and C_C on G^∪T (A.2,
// Lemma 4.1). The analysis holds even against adaptive offline
// adversaries (remark in Section 4.3).
type DColorFactory struct {
	// N is the universe size (the paper's n, known to all nodes).
	N int
	// Window overrides the default window size T (0 = default).
	Window int
	// Probe, if set, receives one Event per node per round. It is called
	// concurrently from engine workers and must be safe.
	Probe func(Event)
}

// Name implements core.DynamicAlgorithm.
func (f *DColorFactory) Name() string { return "dcolor" }

// DefaultColoringWindow is the practical window size T(n) used for the
// coloring algorithms: comfortably above the measured all-colored time of
// the basic randomized algorithm (≈ log₂ n + O(1) rounds; see experiment
// E1), while staying Θ(log n) as the theory requires.
func DefaultColoringWindow(n int) int {
	return 2*ceilLog2(n+1) + 8
}

func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// WindowSize implements core.DynamicAlgorithm.
func (f *DColorFactory) WindowSize(n int) int {
	if f.Window > 0 {
		return f.Window
	}
	return DefaultColoringWindow(n)
}

// MessageBits declares the encoded size of a message: a 2-bit kind plus a
// color of ⌈log₂(n+2)⌉ bits — O(log n) per message, matching the remark
// in Section 2.
func (f *DColorFactory) MessageBits(m engine.SubMsg) int {
	return 2 + ceilLog2(f.N+2)
}

// NewNode implements core.DynamicAlgorithm.
func (f *DColorFactory) NewNode(v graph.NodeID) core.NodeInstance {
	return &dcolorNode{f: f, v: v}
}

// dcolorNode is the per-node state of one DColor instance.
type dcolorNode struct {
	f *DColorFactory
	v graph.NodeID

	out problems.Value
	pal palette
	// streak[u] is the last age at which u had broadcast in every round
	// of this instance so far; u is an intersection-graph neighbor in the
	// current round iff streak[u] == age-1. One map for the node's
	// lifetime — the per-round intersection needs no allocation.
	streak    map[graph.NodeID]int32
	age       int32
	started   bool
	tentative int64
}

// Start records the input; the start round's communication (sending φ_v,
// initializing the palette from the neighbors' inputs) happens in the
// instance's first Broadcast/Process round, costing the one communication
// round Algorithm 2 budgets for it.
func (d *dcolorNode) Start(ctx *engine.Ctx, input problems.Value) {
	d.out = input
}

// Broadcast implements the send half of Algorithm 2.
func (d *dcolorNode) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	if !d.started {
		return append(buf, engine.SubMsg{Kind: KindStart, A: int64(d.out)})
	}
	if d.out != problems.Bot {
		return append(buf, engine.SubMsg{Kind: KindFixed, A: int64(d.out)})
	}
	s := ctx.Stream(prfTentative)
	d.tentative = d.pal.pick(&s)
	return append(buf, engine.SubMsg{Kind: KindTentative, A: d.tentative})
}

// Process implements the receive half of Algorithm 2.
func (d *dcolorNode) Process(ctx *engine.Ctx, in []engine.Incoming, deg int) {
	if !d.started {
		// Start round: initialize the palette with [d_j(v)+1] minus the
		// neighbors' input colors, and the intersection-neighbor streaks
		// with the current neighbors.
		d.started = true
		d.streak = make(map[graph.NodeID]int32, len(in))
		d.age = 1
		d.pal = newPalette(deg + 1)
		for _, m := range in {
			d.streak[m.From] = 1
			if d.out == problems.Bot && m.M.Kind == KindStart && m.M.A != 0 {
				d.pal.remove(m.M.A)
			}
		}
		return
	}

	palBefore := d.pal.len()
	removed := 0
	wasUncolored := d.out == problems.Bot

	// Restrict communication to the intersection graph: a sender counts
	// only if it has been a neighbor in every round since the start,
	// i.e. its streak reaches the previous round (stale entries never
	// match again, so no per-round set rebuild is needed).
	prev := d.age
	d.age++
	tentativeClash := false
	for _, m := range in {
		if d.streak[m.From] != prev {
			continue
		}
		d.streak[m.From] = prev + 1
		switch m.M.Kind {
		case KindFixed:
			if d.pal.contains(m.M.A) {
				d.pal.remove(m.M.A)
				removed++
			}
		case KindTentative:
			if m.M.A == d.tentative {
				tentativeClash = true
			}
		}
	}

	if wasUncolored {
		if d.pal.contains(d.tentative) && !tentativeClash {
			d.out = problems.Value(d.tentative)
		}
	}

	if d.f.Probe != nil {
		d.f.Probe(Event{
			Node:          d.v,
			PaletteBefore: palBefore,
			Removed:       removed,
			WasUncolored:  wasUncolored,
			GotColored:    wasUncolored && d.out != problems.Bot,
		})
	}
}

// Output implements core.NodeInstance.
func (d *dcolorNode) Output() problems.Value { return d.out }

// UncoloredIntersectionNeighbors exposes |U(v)| for the Lemma 4.2
// invariant test (palette never smaller than uncolored intersection
// neighbors + 1). Test-support API.
func (d *dcolorNode) PaletteLen() int { return d.pal.len() }
