package coloring

import (
	"dynlocal/internal/core"
	"dynlocal/internal/graph"
)

// NewDynamic returns DColor as a standalone engine algorithm (every node
// starts its instance at its wake round with its input value).
func NewDynamic(n int) core.Single {
	f := &DColorFactory{N: n}
	return core.Single{Label: f.Name(), Factory: func(v graph.NodeID) core.NodeInstance {
		return f.NewNode(v)
	}, Bits: f.MessageBits}
}

// NewNetworkStatic returns SColor as a standalone engine algorithm.
func NewNetworkStatic(n int) core.Single {
	f := &SColorFactory{N: n}
	return core.Single{Label: f.Name(), Factory: func(v graph.NodeID) core.NodeInstance {
		return f.NewNode(v)
	}, Bits: f.MessageBits}
}

// NewBasic returns Algorithm 6 as a standalone engine algorithm.
func NewBasic(n int) core.Single {
	f := &BasicFactory{N: n}
	return core.Single{Label: f.Name(), Factory: func(v graph.NodeID) core.NodeInstance {
		return f.NewNode(v)
	}, Bits: f.MessageBits}
}

// NewColoring composes DColor and SColor through the framework combiner
// into the algorithm of Corollary 1.2: w.h.p. it outputs a T-dynamic
// solution for (degree+1)-coloring in every round, T = O(log n), and the
// output of any node v is static on [r+2T, r₂] whenever the
// 2-neighborhood of v is static on [r, r₂].
func NewColoring(n int) *core.Concat {
	return core.NewConcat(&DColorFactory{N: n}, &SColorFactory{N: n}, n)
}
