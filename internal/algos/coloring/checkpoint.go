package coloring

import (
	"fmt"
	"sort"

	"dynlocal/internal/ckpt"
	"dynlocal/internal/core"
	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
)

// Checkpoint support: the coloring node types serialize their full
// mutable state so a restored run continues bit-identically. LoadState
// runs on a freshly NewNode-ed instance (factory pointer and node id
// already set; Start has not been called).

const (
	tagDColor uint64 = 0x63
	tagSColor uint64 = 0x64
)

// streakCap bounds the streak-table size a checkpoint may declare.
const streakCap = 1 << 24

// paletteWordCap bounds the palette bitset length (words of 64 colors);
// palettes never exceed degree+1 colors.
const paletteWordCap = 1 << 20

func savePalette(w *ckpt.Writer, p *palette) {
	w.Int(p.size)
	w.Int(len(p.words))
	for _, word := range p.words {
		w.Uvarint(word)
	}
}

func loadPalette(r *ckpt.Reader) palette {
	size := r.Int()
	n := r.Count(paletteWordCap)
	if r.Err() != nil {
		return palette{}
	}
	words := ckpt.AllocSlice[uint64](r, n)
	for i := range words {
		words[i] = r.Uvarint()
	}
	return palette{words: words, size: size}
}

// SaveState implements ckpt.Stater. The streak map is written as
// key-sorted pairs so identical runs produce bit-identical checkpoint
// artifacts; map iteration order never influences the restored state
// (lookups only).
func (d *dcolorNode) SaveState(w *ckpt.Writer) {
	w.Section(tagDColor)
	w.Varint(int64(d.out))
	w.Bool(d.started)
	w.Varint(int64(d.age))
	w.Varint(d.tentative)
	savePalette(w, &d.pal)
	w.Bool(d.streak != nil)
	if d.streak != nil {
		keys := make([]graph.NodeID, 0, len(d.streak))
		for k := range d.streak {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.Int(len(keys))
		for _, k := range keys {
			w.Varint(int64(k))
			w.Varint(int64(d.streak[k]))
		}
	}
}

// LoadState implements ckpt.Stater.
func (d *dcolorNode) LoadState(r *ckpt.Reader) {
	r.Section(tagDColor)
	d.out = problemsValue(r)
	d.started = r.Bool()
	d.age = int32(r.Varint())
	d.tentative = r.Varint()
	d.pal = loadPalette(r)
	if r.Bool() {
		n := r.Count(streakCap)
		// Non-nil even when empty: Process branches on d.started, but the
		// map must exist once the start round has run.
		d.streak = make(map[graph.NodeID]int32, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			k := graph.NodeID(r.Varint())
			d.streak[k] = int32(r.Varint())
		}
	} else {
		d.streak = nil
	}
}

// SaveState implements ckpt.Stater.
func (s *scolorNode) SaveState(w *ckpt.Writer) {
	w.Section(tagSColor)
	w.Varint(int64(s.out))
	w.Varint(s.tentative)
	savePalette(w, &s.pal)
}

// LoadState implements ckpt.Stater.
func (s *scolorNode) LoadState(r *ckpt.Reader) {
	r.Section(tagSColor)
	s.out = problemsValue(r)
	s.tentative = r.Varint()
	s.pal = loadPalette(r)
}

// NewNodeArena implements core.ArenaFactory: restored instance structs
// come from the arena instead of the heap. The result matches NewNode's
// initial state exactly; LoadState fills the rest.
func (f *DColorFactory) NewNodeArena(v graph.NodeID, r *ckpt.Reader) core.NodeInstance {
	d := ckpt.AllocStruct[dcolorNode](r)
	d.f, d.v = f, v
	return d
}

// NewNodeArena implements core.ArenaFactory.
func (f *SColorFactory) NewNodeArena(v graph.NodeID, r *ckpt.Reader) core.NodeInstance {
	s := ckpt.AllocStruct[scolorNode](r)
	s.v = v
	return s
}

var (
	_ ckpt.Stater       = (*dcolorNode)(nil)
	_ ckpt.Stater       = (*scolorNode)(nil)
	_ core.ArenaFactory = (*DColorFactory)(nil)
	_ core.ArenaFactory = (*SColorFactory)(nil)
)

// problemsValue reads a coloring output: Bot or a positive color.
func problemsValue(r *ckpt.Reader) problems.Value {
	raw := problems.Value(r.Varint())
	if raw < 0 {
		r.Fail(fmt.Errorf("coloring: invalid checkpointed value %d", raw))
		return problems.Bot
	}
	return raw
}
