// Package coloring implements the paper's coloring algorithms:
//
//   - DColor (Algorithm 2): the O(log n)-dynamic algorithm — the basic
//     randomized coloring run on the always-shrinking intersection graph,
//     never un-coloring a node (input-extending, finalizing).
//   - SColor (Algorithm 3): the (O(log n), 2)-network-static algorithm —
//     the basic randomized coloring run on the current graph, with
//     self-healing un-coloring whenever a node's color clashes with a
//     neighbor or exceeds its current degree+1 range.
//   - Basic (Algorithm 6): the pipelined single-round-type variant of the
//     classic randomized (degree+1)-coloring for static graphs, used to
//     reproduce Lemmas 6.1/6.2.
//
// NewColoring composes DColor and SColor through the framework combiner,
// yielding the algorithm of Corollary 1.2.
package coloring

import (
	"math/bits"

	"dynlocal/internal/prf"
)

// prfTentative is the purpose tag under which the coloring algorithms
// draw tentative colors.
const prfTentative = prf.PurposeTentativeColor

// palette is a bitset over colors {1, …, k} supporting removal, membership
// tests and uniform random selection. DColor palettes only shrink
// (Lemma 4.2's invariant builds on that); SColor rebuilds its palette
// every round.
type palette struct {
	words []uint64
	size  int
}

// newPalette returns the full palette {1, …, k}.
func newPalette(k int) palette {
	if k < 0 {
		k = 0
	}
	words := make([]uint64, (k+63)/64)
	for i := range words {
		words[i] = ^uint64(0)
	}
	if k%64 != 0 && len(words) > 0 {
		words[len(words)-1] = (1 << uint(k%64)) - 1
	}
	return palette{words: words, size: k}
}

// contains reports whether color c is in the palette.
func (p *palette) contains(c int64) bool {
	idx := c - 1
	if idx < 0 || idx >= int64(len(p.words)*64) {
		return false
	}
	return p.words[idx/64]&(1<<uint(idx%64)) != 0
}

// remove deletes color c if present.
func (p *palette) remove(c int64) {
	idx := c - 1
	if idx < 0 || idx >= int64(len(p.words)*64) {
		return
	}
	w := &p.words[idx/64]
	bit := uint64(1) << uint(idx%64)
	if *w&bit != 0 {
		*w &^= bit
		p.size--
	}
}

// len returns the number of colors in the palette.
func (p *palette) len() int { return p.size }

// pick returns a uniformly random member. It panics on an empty palette —
// the algorithms guarantee non-emptiness (Lemma 4.2).
func (p *palette) pick(s *prf.Stream) int64 {
	if p.size == 0 {
		panic("coloring: pick from empty palette")
	}
	target := s.Intn(p.size)
	for wi, w := range p.words {
		c := bits.OnesCount64(w)
		if target >= c {
			target -= c
			continue
		}
		// Select the (target+1)-th set bit of w.
		for b := 0; ; b++ {
			if w&(1<<uint(b)) != 0 {
				if target == 0 {
					return int64(wi*64+b) + 1
				}
				target--
			}
		}
	}
	panic("coloring: palette size out of sync")
}
