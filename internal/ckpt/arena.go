package ckpt

// RestoreArena is a reusable bump allocator for checkpoint restores.
// High-rate resume paths (a dynsimd-style service, the fault-injection
// matrix, the restore benchmarks) restore over and over into fresh
// engines; without pooling every restore re-allocates the node structs,
// streak slices, snapshot buffers and edge-key arrays it just freed. An
// arena attached to the Reader (SetArena) lets every LoadState
// allocation go through AllocSlice/AllocStruct instead: memory is carved
// out of type-segregated chunks that Reset rewinds without releasing, so
// after warmup a restore performs (amortized) no allocations at all.
//
// Ownership: everything carved from an arena belongs to exactly ONE
// restored run at a time. Reset — or a new restore into the same arena —
// recycles the memory in place, so it is only legal once every engine,
// checker and adversary previously restored from the arena has been
// dropped. The arena is not safe for concurrent use; a service restores
// through one arena per worker slot. Slices returned by AllocSlice have
// exact capacity, so growing them later falls back to the regular heap
// (ordinary append semantics) and never corrupts a neighbor.
//
//dynlint:loan
type RestoreArena struct {
	slabs map[any]any
	all   []resetter
}

// NewRestoreArena returns an empty arena.
func NewRestoreArena() *RestoreArena { return &RestoreArena{} }

// Reset rewinds every slab to empty while keeping the chunks, making the
// memory of the previously restored run available for the next restore.
// See the ownership rule in the type comment: the previous run must be
// dead first.
func (a *RestoreArena) Reset() {
	for _, s := range a.all {
		s.reset()
	}
}

type resetter interface{ reset() }

// slabKey keys the per-type slab registry; the zero struct of each
// instantiation is a distinct comparable map key.
type slabKey[T any] struct{}

// minChunkElems is the minimum chunk length (in elements) a slab
// allocates, amortizing small requests.
const minChunkElems = 1024

// slab is a per-type bump allocator: chunks are filled front to back,
// reset rewinds the cursor without freeing.
type slab[T any] struct {
	chunks  [][]T
	ci, off int
}

func (s *slab[T]) reset() { s.ci, s.off = 0, 0 }

func (s *slab[T]) alloc(n int) []T {
	for {
		if s.ci < len(s.chunks) {
			c := s.chunks[s.ci]
			if len(c)-s.off >= n {
				out := c[s.off : s.off+n : s.off+n]
				s.off += n
				// Reused chunks hold the previous run's data.
				clear(out)
				return out
			}
			s.ci++
			s.off = 0
			continue
		}
		size := n
		if size < minChunkElems {
			size = minChunkElems
		}
		s.chunks = append(s.chunks, make([]T, size))
	}
}

func arenaSlab[T any](a *RestoreArena) *slab[T] {
	key := any(slabKey[T]{})
	if s, ok := a.slabs[key]; ok {
		return s.(*slab[T])
	}
	s := &slab[T]{}
	if a.slabs == nil {
		a.slabs = make(map[any]any)
	}
	a.slabs[key] = s
	a.all = append(a.all, s)
	return s
}

// AllocSlice returns a length-n slice for restored state, drawn from the
// reader's arena when one is attached and from the heap otherwise. The
// result is zeroed, has exact capacity, and is non-nil even for n == 0
// (some Staters encode meaning in nil-ness, e.g. a streak table that
// exists but is empty).
func AllocSlice[T any](r *Reader, n int) []T {
	if r.arena == nil {
		return make([]T, n)
	}
	if n == 0 {
		return make([]T, 0) // zero-size: no real allocation, but non-nil
	}
	return arenaSlab[T](r.arena).alloc(n)
}

// AllocStruct returns a zeroed *T for restored state, drawn from the
// reader's arena when one is attached and from the heap otherwise.
func AllocStruct[T any](r *Reader) *T {
	if r.arena == nil {
		return new(T)
	}
	return &arenaSlab[T](r.arena).alloc(1)[0]
}
