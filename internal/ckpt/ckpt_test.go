package ckpt

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

// TestRoundTrip drives every primitive through a write/read cycle and
// verifies the checksum trailer closes the stream cleanly.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section(7)
	w.Uvarint(0)
	w.Uvarint(math.MaxUint64)
	w.Varint(-1)
	w.Varint(math.MaxInt64)
	w.Varint(math.MinInt64)
	w.Int(-42)
	w.Bool(true)
	w.Bool(false)
	w.Float64(3.25)
	w.Float64(math.Inf(-1))
	w.Float64(math.Copysign(0, -1))
	w.String("")
	w.String("dynlocal")
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.Section(7)
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d, want 0", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Errorf("Uvarint = %d, want MaxUint64", got)
	}
	if got := r.Varint(); got != -1 {
		t.Errorf("Varint = %d, want -1", got)
	}
	if got := r.Varint(); got != math.MaxInt64 {
		t.Errorf("Varint = %d, want MaxInt64", got)
	}
	if got := r.Varint(); got != math.MinInt64 {
		t.Errorf("Varint = %d, want MinInt64", got)
	}
	if got := r.Int(); got != -42 {
		t.Errorf("Int = %d, want -42", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.Float64(); got != 3.25 {
		t.Errorf("Float64 = %v, want 3.25", got)
	}
	if got := r.Float64(); !math.IsInf(got, -1) {
		t.Errorf("Float64 = %v, want -Inf", got)
	}
	if got := r.Float64(); got != 0 || !math.Signbit(got) {
		t.Errorf("Float64 = %v, want -0", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("String = %q, want empty", got)
	}
	if got := r.String(); got != "dynlocal" {
		t.Errorf("String = %q, want dynlocal", got)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("reader Close: %v", err)
	}
}

// TestDeterministicEncoding pins that identical field sequences
// produce identical bytes — the property checkpoint comparison tests
// build on.
func TestDeterministicEncoding(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Section(1)
		w.Int(12345)
		w.String("state")
		w.Float64(0.5)
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(emit(), emit()) {
		t.Fatal("identical field sequences produced different bytes")
	}
}

// TestChecksumDetectsCorruption flips each byte of a valid stream in
// turn and demands the reader reports an error (checksum or earlier
// wire-level failure) for every corruption.
func TestChecksumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section(3)
	w.Uvarint(300)
	w.String("abc")
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	good := buf.Bytes()

	for i := range good {
		bad := bytes.Clone(good)
		bad[i] ^= 0x40
		r := NewReader(bytes.NewReader(bad))
		r.Section(3)
		r.Uvarint()
		_ = r.String()
		if err := r.Close(); err == nil {
			t.Errorf("corruption at byte %d not detected", i)
		}
	}
}

// TestTruncationDetected cuts the stream at every prefix length and
// demands an error — a torn checkpoint must never restore cleanly.
func TestTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(1 << 40)
	w.String("payload")
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	good := buf.Bytes()

	for cut := 0; cut < len(good); cut++ {
		r := NewReader(bytes.NewReader(good[:cut]))
		r.Uvarint()
		_ = r.String()
		if err := r.Close(); err == nil {
			t.Errorf("truncation at %d/%d not detected", cut, len(good))
		}
	}
}

// TestStickyWriteError verifies the first write failure latches and
// suppresses all further output.
func TestStickyWriteError(t *testing.T) {
	fw := &failAfter{limit: 3}
	w := NewWriter(fw)
	for i := 0; i < 100; i++ {
		w.Uvarint(uint64(i) << 40)
	}
	if w.Err() == nil {
		t.Fatal("expected sticky error")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close must surface the sticky error")
	}
	if fw.writes > fw.limit+1 {
		t.Errorf("writer kept writing after error: %d writes", fw.writes)
	}
}

// failAfter accepts limit writes then fails every subsequent one.
type failAfter struct {
	limit  int
	writes int
}

func (f *failAfter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.limit {
		return 0, errors.New("injected write failure")
	}
	return len(p), nil
}

// TestSectionMismatch checks that a wrong section tag fails fast.
func TestSectionMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section(1)
	w.Close()
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.Section(2)
	if r.Err() == nil {
		t.Fatal("section mismatch not detected")
	}
}

// TestCountLimit checks hostile counts are rejected before allocation.
func TestCountLimit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Int(1 << 30)
	w.Int(-5)
	w.Int(77)
	w.Close()
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if r.Count(1024); r.Err() == nil {
		t.Fatal("oversized count not rejected")
	}
	r = NewReader(bytes.NewReader(buf.Bytes()))
	_ = r.Int()
	if r.Count(1024); r.Err() == nil {
		t.Fatal("negative count not rejected")
	}
	r = NewReader(bytes.NewReader(buf.Bytes()))
	_, _ = r.Int(), r.Int()
	if got := r.Count(1024); got != 77 || r.Err() != nil {
		t.Fatalf("valid count: got %d err %v", got, r.Err())
	}
}

// TestInvalidBool checks non-0/1 bool encodings are rejected.
func TestInvalidBool(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(2)
	w.Close()
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if r.Bool(); r.Err() == nil {
		t.Fatal("invalid bool not rejected")
	}
}

// TestVarintOverflow checks that over-long varints are rejected rather
// than silently wrapped.
func TestVarintOverflow(t *testing.T) {
	// Eleven continuation bytes: more than any uint64 needs.
	raw := bytes.Repeat([]byte{0xff}, 11)
	r := NewReader(bytes.NewReader(raw))
	if r.Uvarint(); r.Err() == nil {
		t.Fatal("overlong varint not rejected")
	}
}

// TestFail latches semantic errors on the stream.
func TestFail(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	r.Fail(errors.New("config mismatch"))
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "config mismatch") {
		t.Fatalf("Fail not latched: %v", r.Err())
	}
	// First error wins.
	r.Fail(errors.New("second"))
	if !strings.Contains(r.Err().Error(), "config mismatch") {
		t.Fatal("Fail overwrote earlier error")
	}
}

// TestPlainReader exercises the non-ByteReader path.
func TestPlainReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(999)
	w.String("x")
	w.Close()
	r := NewReader(onlyReader{bytes.NewReader(buf.Bytes())})
	if got := r.Uvarint(); got != 999 {
		t.Fatalf("Uvarint = %d, want 999", got)
	}
	if got := r.String(); got != "x" {
		t.Fatalf("String = %q, want x", got)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// onlyReader hides every interface except io.Reader.
type onlyReader struct{ r io.Reader }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }
