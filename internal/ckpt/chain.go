package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Chain container: a checkpoint chain file is the raw magic "DLCKC1"
// followed by length-prefixed records, each record a complete ckpt
// stream (own CRC-32 trailer). The first record is a full base
// checkpoint; every following record is a delta against the record
// before it, linked by the parent's CRC-32 fingerprint (Writer.Sum32 of
// the parent record, written into the delta's header by the producer and
// validated by the consumer). The container itself stays dumb on
// purpose: framing and tear detection live here, record semantics live
// with the engine/checker delta formats.
//
// Tear semantics: a crash while appending leaves a torn tail. Next
// returns a clean io.EOF only on a record boundary; an EOF inside a
// length prefix or a record body surfaces as io.ErrUnexpectedEOF, and a
// record whose trailer does not match its bytes fails VerifyRecord — in
// every case the torn record never restores, while the intact prefix
// before it does.

// ChainMagic identifies a checkpoint chain container.
const ChainMagic = "DLCKC1"

// maxChainRecord bounds a declared record length (1 GiB); real
// checkpoints are far smaller, so anything larger is corruption and must
// not drive allocation.
const maxChainRecord = 1 << 30

// ErrNotChain is returned by ChainReader when the stream does not start
// with the chain magic.
var ErrNotChain = errors.New("ckpt: not a checkpoint chain (bad magic)")

// WriteChainMagic starts a new chain container on w.
func WriteChainMagic(w io.Writer) error {
	_, err := io.WriteString(w, ChainMagic)
	return err
}

// AppendChainRecord appends one complete record (a closed ckpt stream,
// trailer included) to a chain container. The caller is responsible for
// any durability (fsync) between records.
func AppendChainRecord(w io.Writer, record []byte) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(record)))
	if _, err := w.Write(buf[:n]); err != nil {
		return err
	}
	_, err := w.Write(record)
	return err
}

// VerifyRecord checks a record's framing-level integrity: the trailing
// CRC-32 must match the payload bytes. Chain consumers call it on the
// in-memory record before parsing, so a corrupted record is rejected
// whole instead of half-applying its sections.
func VerifyRecord(record []byte) error {
	if len(record) < 4 {
		return io.ErrUnexpectedEOF
	}
	body, tr := record[:len(record)-4], record[len(record)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tr) {
		return ErrChecksum
	}
	return nil
}

// ChainReader iterates the records of a chain container.
type ChainReader struct {
	r       io.Reader
	br      io.ByteReader
	one     [1]byte
	started bool
	err     error
}

// NewChainReader returns a reader over a chain container. The magic is
// consumed and validated on the first Next call.
func NewChainReader(r io.Reader) *ChainReader {
	cr := &ChainReader{r: r}
	cr.br, _ = r.(io.ByteReader)
	return cr
}

func (cr *ChainReader) readByte() (byte, error) {
	if cr.br != nil {
		return cr.br.ReadByte()
	}
	if _, err := io.ReadFull(cr.r, cr.one[:]); err != nil {
		return 0, err
	}
	return cr.one[0], nil
}

// Next returns the next record's bytes (trailer included), CRC-verified
// via VerifyRecord. It returns io.EOF exactly on a clean record
// boundary; an EOF anywhere else means a torn tail and surfaces as
// io.ErrUnexpectedEOF. Errors are sticky.
func (cr *ChainReader) Next() ([]byte, error) {
	if cr.err != nil {
		return nil, cr.err
	}
	if !cr.started {
		magic := make([]byte, len(ChainMagic))
		if _, err := io.ReadFull(cr.r, magic); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				err = ErrNotChain
			}
			cr.err = err
			return nil, err
		}
		if string(magic) != ChainMagic {
			cr.err = ErrNotChain
			return nil, cr.err
		}
		cr.started = true
	}
	var n uint64
	var shift uint
	for i := 0; ; i++ {
		b, err := cr.readByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF // torn mid-length
			}
			cr.err = err
			return nil, err
		}
		if shift > 63 || (shift == 63 && b > 1) {
			cr.err = errors.New("ckpt: chain record length overflows uint64")
			return nil, cr.err
		}
		n |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		shift += 7
	}
	if n > maxChainRecord {
		cr.err = fmt.Errorf("ckpt: chain record length %d exceeds limit", n)
		return nil, cr.err
	}
	rec := make([]byte, n)
	if _, err := io.ReadFull(cr.r, rec); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // torn mid-record
		}
		cr.err = err
		return nil, err
	}
	if err := VerifyRecord(rec); err != nil {
		cr.err = err
		return nil, err
	}
	return rec, nil
}
