// Package ckpt provides the low-level wire primitives for checkpoint
// streams: a sticky-error varint Writer/Reader pair with section tags
// and a trailing CRC-32 so torn or corrupted checkpoints are detected
// on restore instead of silently resuming from garbage.
//
// A checkpoint stream is a flat sequence of varints (plus raw byte
// runs for strings) produced by one Writer and consumed by one Reader;
// both ends must agree on the exact field sequence, which is enforced
// loosely by interleaved section tags and strictly by the checksum.
// All encoding is deterministic: the same state always serializes to
// the same bytes, so checkpoint artifacts can be compared bit-for-bit.
//
// Both types latch the first error and turn every subsequent call into
// a no-op, so callers serialize whole structures without per-field
// error checks and inspect Err (or Close) once at the end.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// ErrChecksum is returned by Reader.Close when the stream's trailing
// CRC-32 does not match the bytes read, i.e. the checkpoint is torn or
// corrupted.
var ErrChecksum = errors.New("ckpt: checksum mismatch")

// Stater is implemented by components whose mutable state round-trips
// through a checkpoint stream. SaveState appends the state as a fixed
// field sequence; LoadState consumes the same sequence into an
// already-constructed value (same configuration, fresh mutable state).
// Errors — wire-level or semantic (via Reader.Fail) — travel on the
// stream's sticky error, checked once by the caller.
type Stater interface {
	SaveState(w *Writer)
	LoadState(r *Reader)
}

// maxBytes caps declared byte-run lengths (strings); checkpoint
// sections carry short identifiers only, so anything larger is
// corruption, not data.
const maxBytes = 1 << 20

// Writer serializes varint fields into an io.Writer while folding
// every byte into a running CRC-32. The first write error sticks and
// suppresses all further output.
type Writer struct {
	w   io.Writer
	crc uint32
	buf [binary.MaxVarintLen64]byte
	err error
}

// NewWriter returns a checkpoint writer over w. The caller owns w and
// is responsible for any buffering, syncing and closing; Close here
// only appends the checksum trailer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, crc32.IEEETable, p)
	if _, err := w.w.Write(p); err != nil {
		w.err = err
	}
}

// Uvarint appends one unsigned varint field.
func (w *Writer) Uvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// Varint appends one signed (zig-zag) varint field.
func (w *Writer) Varint(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// Int appends an int as a signed varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// Bool appends a bool as a 0/1 varint.
func (w *Writer) Bool(b bool) {
	if b {
		w.Uvarint(1)
	} else {
		w.Uvarint(0)
	}
}

// Float64 appends a float64 by its IEEE-754 bit pattern, so the exact
// value (including -0 and NaN payloads) round-trips.
func (w *Writer) Float64(f float64) { w.Uvarint(math.Float64bits(f)) }

// String appends a length-prefixed byte string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	if w.err == nil && len(s) > 0 {
		w.write([]byte(s))
	}
}

// Section appends a section tag. Tags carry no data; the matching
// Reader.Section call fails fast when writer and reader disagree about
// the field sequence, turning subtle misalignment into a crisp error.
func (w *Writer) Section(tag uint64) { w.Uvarint(tag) }

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Sum32 returns the stream's CRC-32 over every payload byte written so
// far — after Close this is exactly the trailer value. Chain writers use
// it as the parent-linkage fingerprint of a record (see chain.go).
func (w *Writer) Sum32() uint32 { return w.crc }

// Fail latches err as the stream error if none is set yet, mirroring
// Reader.Fail for semantic failures discovered while serializing (e.g.
// a component that does not support checkpointing).
func (w *Writer) Fail(err error) {
	if w.err == nil && err != nil {
		w.err = err
	}
}

// Close appends the CRC-32 trailer (4 bytes little-endian, not
// included in its own checksum) and returns the first error from the
// whole stream. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], w.crc)
	if _, err := w.w.Write(tr[:]); err != nil {
		w.err = err
	}
	return w.err
}

// Reader decodes a stream produced by Writer, folding every consumed
// byte into a CRC-32 that Close verifies against the trailer. The
// first error sticks: all subsequent reads return zero values, so
// callers deserialize whole structures and check Err (or Close) once.
//
// The Reader consumes the underlying io.Reader exactly byte by byte
// unless it implements io.ByteReader (bytes.Reader, bufio.Reader, …),
// so wrapping a file in a bufio.Reader is recommended — but note a
// buffered wrapper may read past the checksum trailer.
type Reader struct {
	r   io.Reader
	br  io.ByteReader
	crc uint32
	sum uint32
	one [1]byte
	err error
	// arena re-exports the pooled lifetime of the attached RestoreArena:
	// state restored through this reader is valid only until the arena's
	// owner calls Reset.
	//
	//dynlint:loan
	arena *RestoreArena
}

// NewReader returns a checkpoint reader over r.
func NewReader(r io.Reader) *Reader {
	cr := &Reader{r: r}
	cr.br, _ = r.(io.ByteReader)
	return cr
}

func (r *Reader) readByte() (byte, error) {
	if r.err != nil {
		return 0, r.err
	}
	var b byte
	var err error
	if r.br != nil {
		b, err = r.br.ReadByte()
	} else {
		_, err = io.ReadFull(r.r, r.one[:])
		b = r.one[0]
	}
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = err
		return 0, err
	}
	r.one[0] = b
	r.crc = crc32.Update(r.crc, crc32.IEEETable, r.one[:1])
	return b, nil
}

// Uvarint reads one unsigned varint field.
func (r *Reader) Uvarint() uint64 {
	var v uint64
	var shift uint
	for {
		b, err := r.readByte()
		if err != nil {
			return 0
		}
		if shift == 63 && b > 1 {
			r.err = errors.New("ckpt: varint overflows uint64")
			return 0
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
		if shift > 63 {
			r.err = errors.New("ckpt: varint too long")
			return 0
		}
	}
}

// Varint reads one signed (zig-zag) varint field.
func (r *Reader) Varint() int64 {
	u := r.Uvarint()
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v
}

// Int reads an int field written by Writer.Int.
func (r *Reader) Int() int { return int(r.Varint()) }

// Bool reads a bool field; any value other than 0 or 1 is an error.
func (r *Reader) Bool() bool {
	switch r.Uvarint() {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.err = errors.New("ckpt: invalid bool")
		}
		return false
	}
}

// Float64 reads a float64 field by bit pattern.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uvarint()) }

// String reads a length-prefixed byte string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxBytes {
		r.err = fmt.Errorf("ckpt: string length %d exceeds limit", n)
		return ""
	}
	buf := make([]byte, n)
	for i := range buf {
		b, err := r.readByte()
		if err != nil {
			return ""
		}
		buf[i] = b
	}
	return string(buf)
}

// Count reads an element count written with Int and validates it is
// non-negative and within limit, bounding allocations driven by corrupt
// streams.
func (r *Reader) Count(limit int) int {
	n := r.Varint()
	if r.err != nil {
		return 0
	}
	if n < 0 || limit < 0 || n > int64(limit) {
		r.err = fmt.Errorf("ckpt: count %d exceeds limit %d", n, limit)
		return 0
	}
	return int(n)
}

// Section consumes a section tag and fails the stream if it is not
// the expected one.
func (r *Reader) Section(tag uint64) {
	got := r.Uvarint()
	if r.err == nil && got != tag {
		r.err = fmt.Errorf("ckpt: section tag %d, want %d", got, tag)
	}
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Sum32 returns the stream's CRC-32 as verified by Close (zero before
// Close). Chain readers use it as the parent-linkage fingerprint when
// validating the next delta record against the one just applied.
func (r *Reader) Sum32() uint32 { return r.sum }

// SetArena attaches a RestoreArena to the reader. LoadState
// implementations that allocate through AllocSlice/AllocStruct then draw
// from the arena instead of the heap; a nil arena (the default) falls
// back to plain allocation, so Staters never branch on pooling
// themselves.
func (r *Reader) SetArena(a *RestoreArena) { r.arena = a }

// Fail latches err as the stream error if none is set yet. Callers use
// it to report semantic validation failures (bad field values) through
// the same sticky-error channel as wire-level failures.
func (r *Reader) Fail(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

// Close reads the 4-byte CRC-32 trailer and verifies it against the
// bytes consumed, returning ErrChecksum on mismatch or the stream's
// first error if one occurred earlier. It does not close the
// underlying reader.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	sum := r.crc // trailer is not part of its own checksum
	r.sum = sum
	var tr [4]byte
	for i := range tr {
		b, err := r.readByte()
		if err != nil {
			return r.err
		}
		tr[i] = b
	}
	if binary.LittleEndian.Uint32(tr[:]) != sum {
		r.err = ErrChecksum
	}
	return r.err
}
