package core

import (
	"fmt"
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// probeDyn is a scripted dynamic algorithm recording its lifecycle: each
// instance outputs Bot until it has processed `ready` rounds, then outputs
// 1000*startRound + input.
type probeDyn struct {
	window int
	log    *lifecycleLog
}

type lifecycleLog struct {
	started   []int // ctx.Round of each Start call (node 0 only)
	processed map[int]int
}

func (p *probeDyn) Name() string       { return "probe-dyn" }
func (p *probeDyn) WindowSize(int) int { return p.window }
func (p *probeDyn) NewNode(v graph.NodeID) NodeInstance {
	return &probeDynInst{p: p, v: v}
}

type probeDynInst struct {
	p     *probeDyn
	v     graph.NodeID
	start int
	input problems.Value
	age   int
}

func (i *probeDynInst) Start(ctx *engine.Ctx, input problems.Value) {
	i.start = ctx.Round
	i.input = input
	if i.v == 0 && i.p.log != nil {
		i.p.log.started = append(i.p.log.started, ctx.Round)
	}
}
func (i *probeDynInst) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	return append(buf, engine.SubMsg{Kind: 9, A: int64(i.start)})
}
func (i *probeDynInst) Process(ctx *engine.Ctx, in []engine.Incoming, deg int) {
	i.age++
	if i.v == 0 && i.p.log != nil {
		i.p.log.processed[i.start]++
	}
	// Channel isolation: every message routed here must carry our start
	// round (senders set A = their instance start round, and aligned
	// instances start in the same engine round).
	for _, m := range in {
		if m.M.A != int64(i.start) {
			panic(fmt.Sprintf("instance %d received message from instance %d", i.start, m.M.A))
		}
	}
}
func (i *probeDynInst) Output() problems.Value {
	return problems.Value(1000*int64(i.start) + int64(i.input))
}

// probeStatic is a trivial network-static algorithm: outputs its node id
// + 1 from the first round on (a valid "partial solution" for the probe).
type probeStatic struct{ alpha, stab int }

func (p *probeStatic) Name() string              { return "probe-static" }
func (p *probeStatic) StabilizationTime(int) int { return p.stab }
func (p *probeStatic) Alpha() int                { return p.alpha }
func (p *probeStatic) NewNode(v graph.NodeID) NodeInstance {
	return &probeStaticInst{v: v}
}

type probeStaticInst struct {
	v   graph.NodeID
	out problems.Value
}

func (i *probeStaticInst) Start(ctx *engine.Ctx, input problems.Value) {
	i.out = problems.Value(int64(i.v) + 1)
}
func (i *probeStaticInst) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	return append(buf, engine.SubMsg{Kind: 8})
}
func (i *probeStaticInst) Process(*engine.Ctx, []engine.Incoming, int) {}
func (i *probeStaticInst) Output() problems.Value                      { return i.out }

func TestConcatInstanceLifecycle(t *testing.T) {
	const n = 4
	const T1 = 5
	log := &lifecycleLog{processed: make(map[int]int)}
	d := &probeDyn{window: T1, log: log}
	s := &probeStatic{alpha: 1, stab: 3}
	c := NewConcat(d, s, n)
	e := engine.New(engine.Config{N: n, Seed: 1}, adversary.Static{G: graph.Cycle(n)}, c)
	e.Run(10)
	// A new instance starts every round.
	if len(log.started) != 10 {
		t.Fatalf("instances started: %d, want 10", len(log.started))
	}
	for i, r := range log.started {
		if r != i+1 {
			t.Fatalf("instance %d started at round %d", i, r)
		}
	}
	// Every retired instance processed exactly T1-1 rounds.
	for start, procs := range log.processed {
		if start <= 10-(T1-1) && procs != T1-1 {
			t.Fatalf("instance started at %d processed %d rounds, want %d", start, procs, T1-1)
		}
	}
}

func TestConcatOutputIsOldestMatureInstance(t *testing.T) {
	const n = 3
	const T1 = 4
	d := &probeDyn{window: T1}
	s := &probeStatic{alpha: 1, stab: 2}
	c := NewConcat(d, s, n)
	e := engine.New(engine.Config{N: n, Seed: 2}, adversary.Static{G: graph.Path(n)}, c)
	// Warm-up: rounds 1..T1-2 output Bot.
	for r := 1; r <= T1-2; r++ {
		info := e.Step()
		if info.Outputs[0] != problems.Bot {
			t.Fatalf("round %d: output %d during warm-up, want ⊥", r, info.Outputs[0])
		}
	}
	// From round T1-1 on, output = instance started at round r-T1+2 with
	// input = static algorithm's output (node id+1).
	for r := T1 - 1; r <= 9; r++ {
		info := e.Step()
		wantStart := int64(r - T1 + 2)
		want := problems.Value(1000*wantStart + int64(0) + 1) // input = node0 id+1 = 1
		if info.Outputs[0] != want {
			t.Fatalf("round %d: output %d, want %d", r, info.Outputs[0], want)
		}
	}
}

func TestConcatChannelIsolation(t *testing.T) {
	// The probe instances panic on cross-channel messages; running with
	// several live instances over a connected graph exercises routing.
	const n = 6
	d := &probeDyn{window: 6}
	s := &probeStatic{alpha: 1, stab: 2}
	c := NewConcat(d, s, n)
	e := engine.New(engine.Config{N: n, Seed: 3}, adversary.Static{G: graph.Complete(n)}, c)
	e.Run(15) // panics on any routing error
}

func TestConcatPurposeSeparation(t *testing.T) {
	// Two live instances of the same algorithm in the same round must
	// draw different randomness: record the first Uint64 of each
	// instance's stream in one round.
	draws := make(map[uint64]string)
	d := &randProbe{window: 5, draws: draws}
	s := &probeStatic{alpha: 1, stab: 2}
	c := NewConcat(d, s, 2)
	e := engine.New(engine.Config{N: 2, Seed: 4}, adversary.Static{G: graph.Path(2)}, c)
	e.Run(6)
	// All recorded draws must be unique (distinct purposes per live
	// instance, distinct rounds, distinct nodes).
	if len(draws) == 0 {
		t.Fatal("no draws recorded")
	}
}

type randProbe struct {
	window int
	draws  map[uint64]string
}

func (p *randProbe) Name() string       { return "rand-probe" }
func (p *randProbe) WindowSize(int) int { return p.window }
func (p *randProbe) NewNode(v graph.NodeID) NodeInstance {
	return &randProbeInst{p: p, v: v}
}

type randProbeInst struct {
	p     *randProbe
	v     graph.NodeID
	start int
}

func (i *randProbeInst) Start(ctx *engine.Ctx, input problems.Value) { i.start = ctx.Round }
func (i *randProbeInst) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	s := ctx.Stream(prf.PurposeLubyAlpha)
	draw := s.Uint64()
	key := fmt.Sprintf("n%d r%d i%d", i.v, ctx.Round, i.start)
	if prev, clash := i.p.draws[draw]; clash {
		panic(fmt.Sprintf("stream collision: %s and %s drew %x", prev, key, draw))
	}
	i.p.draws[draw] = key
	return buf
}
func (i *randProbeInst) Process(*engine.Ctx, []engine.Incoming, int) {}
func (i *randProbeInst) Output() problems.Value                      { return 1 }

func TestConcatNameAndAccessors(t *testing.T) {
	d := &probeDyn{window: 7}
	s := &probeStatic{alpha: 2, stab: 9}
	c := NewConcat(d, s, 5)
	if c.Name() != "concat(probe-dyn,probe-static)" {
		t.Fatalf("name = %q", c.Name())
	}
	if c.Alpha() != 2 || c.T1 != 7 || c.T2 != 9 || c.StabilityWait() != 16 {
		t.Fatalf("accessors wrong: α=%d T1=%d T2=%d wait=%d", c.Alpha(), c.T1, c.T2, c.StabilityWait())
	}
}

func TestConcatRejectsTinyWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for T1 < 2")
		}
	}()
	NewConcat(&probeDyn{window: 1}, &probeStatic{alpha: 1, stab: 1}, 3)
}

func TestSingleAdapter(t *testing.T) {
	s := WrapSingle("x", func(v graph.NodeID) NodeInstance {
		return &probeStaticInst{v: v}
	})
	if s.Name() != "x" {
		t.Fatal("name wrong")
	}
	proc := s.NewNode(3)
	ctx := &engine.Ctx{Node: 3, Round: 1, Seed: 1}
	proc.Start(ctx, problems.Bot)
	if proc.Output() != 4 {
		t.Fatalf("output = %d, want 4", proc.Output())
	}
	if got := proc.Broadcast(ctx, nil); len(got) != 1 || got[0].Kind != 8 {
		t.Fatal("broadcast not forwarded")
	}
	if s.MessageBits(engine.SubMsg{}) != 0 {
		t.Fatal("nil Bits should yield 0")
	}
	s.Bits = func(engine.SubMsg) int { return 5 }
	if s.MessageBits(engine.SubMsg{}) != 5 {
		t.Fatal("Bits not forwarded")
	}
}

func TestLateWakeNodeOutputsBotUntilMature(t *testing.T) {
	const n = 4
	const T1 = 5
	d := &probeDyn{window: T1}
	s := &probeStatic{alpha: 1, stab: 2}
	c := NewConcat(d, s, n)
	sched := []int{1, 1, 1, 6} // node 3 wakes at round 6
	adv := &adversary.Wakeup{Inner: adversary.Static{G: graph.Complete(n)}, Schedule: sched}
	e := engine.New(engine.Config{N: n, Seed: 5}, adv, c)
	for r := 1; r <= 6+T1-3; r++ {
		info := e.Step()
		if r >= 6 && info.Outputs[3] != problems.Bot {
			t.Fatalf("round %d: late node output %d before maturity", r, info.Outputs[3])
		}
	}
	info := e.Step() // round 6+T1-2: node 3's first instance matured
	if info.Outputs[3] == problems.Bot {
		t.Fatal("late node still ⊥ after its pipeline matured")
	}
}
