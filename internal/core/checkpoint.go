package core

import (
	"fmt"

	"dynlocal/internal/ckpt"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
)

// Checkpoint support for the framework node processors. A processor
// serializes recursively: the combiner wrappers write their pipeline
// shape (channel ids and ages) and delegate each instance's fields to
// the instance itself, which must implement ckpt.Stater. LoadState runs
// on a freshly NewNode-ed processor whose Start has NOT been called —
// every field normally initialized by Start or by the first processed
// round is restored from the stream instead.

// Section tags guarding the framework layers of a checkpoint stream.
const (
	tagSingle uint64 = 0x51
	tagConcat uint64 = 0x52
	tagChain  uint64 = 0x53
)

// saveInstance serializes one NodeInstance, failing the stream if the
// instance does not support checkpointing.
func saveInstance(w *ckpt.Writer, inst NodeInstance) {
	st, ok := inst.(ckpt.Stater)
	if !ok {
		w.Fail(fmt.Errorf("core: %T does not support checkpointing", inst))
		return
	}
	st.SaveState(w)
}

// loadInstance restores one NodeInstance in place.
func loadInstance(r *ckpt.Reader, inst NodeInstance) {
	st, ok := inst.(ckpt.Stater)
	if !ok {
		r.Fail(fmt.Errorf("core: %T does not support checkpointing", inst))
		return
	}
	st.LoadState(r)
}

// ArenaFactory is optionally implemented by algorithm factories
// (DynamicAlgorithm or NetworkStaticAlgorithm) whose instance structs
// can be carved from the restore arena attached to the checkpoint
// reader. The returned instance must be in the exact state NewNode
// leaves it in — LoadState runs right after either way.
type ArenaFactory interface {
	NewNodeArena(v graph.NodeID, r *ckpt.Reader) NodeInstance
}

// nodeFactory is the NewNode slice both algorithm-factory interfaces
// share, so restore paths can construct instances uniformly.
type nodeFactory interface {
	NewNode(v graph.NodeID) NodeInstance
}

// restoredInstance builds an instance for a restore, through the arena
// when the factory supports it.
func restoredInstance(r *ckpt.Reader, f nodeFactory, v graph.NodeID) NodeInstance {
	if af, ok := f.(ArenaFactory); ok {
		return af.NewNodeArena(v, r)
	}
	return f.NewNode(v)
}

// SaveState implements ckpt.Stater by delegating to the wrapped
// instance.
func (p singleProc) SaveState(w *ckpt.Writer) {
	w.Section(tagSingle)
	saveInstance(w, p.inst)
}

// LoadState implements ckpt.Stater.
func (p singleProc) LoadState(r *ckpt.Reader) {
	r.Section(tagSingle)
	loadInstance(r, p.inst)
}

// saveSlots serializes one instance pipeline: slot count, then each
// slot's channel, age and instance state in ring order (front = oldest).
func saveSlots(w *ckpt.Writer, slots []dSlot) {
	w.Int(len(slots))
	for i := range slots {
		s := &slots[i]
		w.Varint(int64(s.ch))
		w.Int(s.age)
		saveInstance(w, s.inst)
	}
}

// loadSlots restores an instance pipeline, building each instance via
// the factory (NewNode without Start — all instance state comes from the
// stream). The slot slice is carved from the reader's arena at the
// pipeline's capacity bound, so the restored run's appends stay within
// it.
func loadSlots(r *ckpt.Reader, maxSlots int, f nodeFactory, v graph.NodeID) []dSlot {
	n := r.Count(maxSlots)
	if r.Err() != nil {
		return nil
	}
	slots := ckpt.AllocSlice[dSlot](r, maxSlots)[:n]
	for i := 0; i < n; i++ {
		s := &slots[i]
		s.ch = int32(r.Varint())
		s.age = r.Int()
		s.inst = restoredInstance(r, f, v)
		loadInstance(r, s.inst)
		if r.Err() != nil {
			return nil
		}
	}
	return slots
}

// SaveState implements ckpt.Stater for the Concat processor.
func (p *concatProc) SaveState(w *ckpt.Writer) {
	w.Section(tagConcat)
	saveInstance(w, p.salg)
	saveSlots(w, p.dal)
}

// LoadState implements ckpt.Stater: it rebuilds the static-algorithm
// instance and the dynamic pipeline via their factories, then restores
// each instance's state. ictx and bucks are per-round scratch and need
// no restoring.
func (p *concatProc) LoadState(r *ckpt.Reader) {
	r.Section(tagConcat)
	p.salg = restoredInstance(r, p.c.S, p.v)
	loadInstance(r, p.salg)
	p.dal = loadSlots(r, p.c.T1, p.c.D, p.v)
}

// NewNodeArena implements engine.ArenaAlgorithm: on restore the
// processor struct itself comes from the arena.
func (c *Concat) NewNodeArena(v graph.NodeID, r *ckpt.Reader) engine.NodeProc {
	p := ckpt.AllocStruct[concatProc](r)
	p.c, p.v = c, v
	return p
}

// SaveState implements ckpt.Stater for the Chain processor.
func (p *chainProc) SaveState(w *ckpt.Writer) {
	w.Section(tagChain)
	saveInstance(w, p.salg)
	saveSlots(w, p.mids)
	saveSlots(w, p.outs)
}

// LoadState implements ckpt.Stater.
func (p *chainProc) LoadState(r *ckpt.Reader) {
	r.Section(tagChain)
	p.salg = restoredInstance(r, p.c.S, p.v)
	loadInstance(r, p.salg)
	p.mids = loadSlots(r, p.c.Tm, p.c.Mid, p.v)
	p.outs = loadSlots(r, p.c.T1, p.c.D, p.v)
}

// NewNodeArena implements engine.ArenaAlgorithm.
func (c *Chain) NewNodeArena(v graph.NodeID, r *ckpt.Reader) engine.NodeProc {
	p := ckpt.AllocStruct[chainProc](r)
	p.c, p.v = c, v
	return p
}

// Interface conformance: the engine checkpoints node processors through
// ckpt.Stater.
var (
	_ ckpt.Stater = singleProc{}
	_ ckpt.Stater = (*concatProc)(nil)
	_ ckpt.Stater = (*chainProc)(nil)
)
