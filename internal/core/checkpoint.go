package core

import (
	"fmt"

	"dynlocal/internal/ckpt"
)

// Checkpoint support for the framework node processors. A processor
// serializes recursively: the combiner wrappers write their pipeline
// shape (channel ids and ages) and delegate each instance's fields to
// the instance itself, which must implement ckpt.Stater. LoadState runs
// on a freshly NewNode-ed processor whose Start has NOT been called —
// every field normally initialized by Start or by the first processed
// round is restored from the stream instead.

// Section tags guarding the framework layers of a checkpoint stream.
const (
	tagSingle uint64 = 0x51
	tagConcat uint64 = 0x52
	tagChain  uint64 = 0x53
)

// saveInstance serializes one NodeInstance, failing the stream if the
// instance does not support checkpointing.
func saveInstance(w *ckpt.Writer, inst NodeInstance) {
	st, ok := inst.(ckpt.Stater)
	if !ok {
		w.Fail(fmt.Errorf("core: %T does not support checkpointing", inst))
		return
	}
	st.SaveState(w)
}

// loadInstance restores one NodeInstance in place.
func loadInstance(r *ckpt.Reader, inst NodeInstance) {
	st, ok := inst.(ckpt.Stater)
	if !ok {
		r.Fail(fmt.Errorf("core: %T does not support checkpointing", inst))
		return
	}
	st.LoadState(r)
}

// SaveState implements ckpt.Stater by delegating to the wrapped
// instance.
func (p singleProc) SaveState(w *ckpt.Writer) {
	w.Section(tagSingle)
	saveInstance(w, p.inst)
}

// LoadState implements ckpt.Stater.
func (p singleProc) LoadState(r *ckpt.Reader) {
	r.Section(tagSingle)
	loadInstance(r, p.inst)
}

// saveSlots serializes one instance pipeline: slot count, then each
// slot's channel, age and instance state in ring order (front = oldest).
func saveSlots(w *ckpt.Writer, slots []dSlot) {
	w.Int(len(slots))
	for i := range slots {
		s := &slots[i]
		w.Varint(int64(s.ch))
		w.Int(s.age)
		saveInstance(w, s.inst)
	}
}

// loadSlots restores an instance pipeline, building each instance with
// newInst (NewNode without Start — all instance state comes from the
// stream).
func loadSlots(r *ckpt.Reader, maxSlots int, newInst func() NodeInstance) []dSlot {
	n := r.Count(maxSlots)
	if r.Err() != nil {
		return nil
	}
	slots := make([]dSlot, 0, n)
	for i := 0; i < n; i++ {
		s := dSlot{ch: int32(r.Varint()), age: r.Int(), inst: newInst()}
		loadInstance(r, s.inst)
		if r.Err() != nil {
			return nil
		}
		slots = append(slots, s)
	}
	return slots
}

// SaveState implements ckpt.Stater for the Concat processor.
func (p *concatProc) SaveState(w *ckpt.Writer) {
	w.Section(tagConcat)
	saveInstance(w, p.salg)
	saveSlots(w, p.dal)
}

// LoadState implements ckpt.Stater: it rebuilds the static-algorithm
// instance and the dynamic pipeline via their factories, then restores
// each instance's state. ictx and bucks are per-round scratch and need
// no restoring.
func (p *concatProc) LoadState(r *ckpt.Reader) {
	r.Section(tagConcat)
	p.salg = p.c.S.NewNode(p.v)
	loadInstance(r, p.salg)
	p.dal = loadSlots(r, p.c.T1, func() NodeInstance { return p.c.D.NewNode(p.v) })
}

// SaveState implements ckpt.Stater for the Chain processor.
func (p *chainProc) SaveState(w *ckpt.Writer) {
	w.Section(tagChain)
	saveInstance(w, p.salg)
	saveSlots(w, p.mids)
	saveSlots(w, p.outs)
}

// LoadState implements ckpt.Stater.
func (p *chainProc) LoadState(r *ckpt.Reader) {
	r.Section(tagChain)
	p.salg = p.c.S.NewNode(p.v)
	loadInstance(r, p.salg)
	p.mids = loadSlots(r, p.c.Tm, func() NodeInstance { return p.c.Mid.NewNode(p.v) })
	p.outs = loadSlots(r, p.c.T1, func() NodeInstance { return p.c.D.NewNode(p.v) })
}

// Interface conformance: the engine checkpoints node processors through
// ckpt.Stater.
var (
	_ ckpt.Stater = singleProc{}
	_ ckpt.Stater = (*concatProc)(nil)
	_ ckpt.Stater = (*chainProc)(nil)
)
