package core

import (
	"fmt"

	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
)

// Chain is the triple combiner sketched in the remark of Section 3:
// "In principle, using the same technique, one could also combine more
// than two algorithms. One could for example imagine to also have a
// dynamic network algorithm that has stronger guarantees, but only works
// in dynamic networks with much more limited dynamic changes."
//
// The network-static algorithm S runs continuously as before. Its output
// seeds a pipeline of Mid instances — a dynamic algorithm with a smaller
// window Tm whose outputs are the stronger guarantee under limited
// dynamics — and the mid-pipeline's output in turn seeds the outer
// pipeline of D instances with the full window T1. The chained algorithm
//
//	a) converges to a locally stable solution where the graph is locally
//	   static (within T1+Tm+T2 rounds),
//	b) under limited dynamics effectively carries the mid algorithm's
//	   Tm-dynamic guarantee through (the outer pipeline extends inputs
//	   that are already complete), and
//	c) always outputs a T1-dynamic solution, for arbitrary dynamics —
//	   because the outer dynamic algorithm re-witnesses its inputs (see
//	   the input-sanitization notes in the algorithm implementations),
//	   invalid mid outputs caused by heavy dynamics cannot poison it.
//
// Channel layout: 0 = S; even channels 2r = mid instance started in
// round r; odd channels 2r+1 = outer instance started in round r.
type Chain struct {
	D   DynamicAlgorithm
	Mid DynamicAlgorithm
	S   NetworkStaticAlgorithm
	N   int

	T1 int
	Tm int
	T2 int

	// MidProbe, if set, receives each node's mid-pipeline output after
	// every round. The outer pipeline's latency (T1-1 rounds) means
	// freshness-style guarantees of the mid algorithm are observable
	// here, at the mid layer, rather than in the final output; consumers
	// that want the stronger limited-dynamics guarantee read this layer.
	// Called concurrently from engine workers; implementations must be
	// safe.
	MidProbe func(v graph.NodeID, round int, out problems.Value)
}

// NewChain builds the triple combination for a universe of n nodes.
func NewChain(d, mid DynamicAlgorithm, s NetworkStaticAlgorithm, n int) *Chain {
	t1 := d.WindowSize(n)
	tm := mid.WindowSize(n)
	if t1 < 2 || tm < 2 {
		panic(fmt.Sprintf("core: chain windows T1=%d, Tm=%d must be >= 2", t1, tm))
	}
	return &Chain{D: d, Mid: mid, S: s, N: n, T1: t1, Tm: tm, T2: s.StabilizationTime(n)}
}

// Name implements engine.Algorithm.
func (c *Chain) Name() string {
	return fmt.Sprintf("chain(%s,%s,%s)", c.D.Name(), c.Mid.Name(), c.S.Name())
}

// Alpha returns the locality radius inherited from the network-static part.
func (c *Chain) Alpha() int { return c.S.Alpha() }

// StabilityWait returns T1+Tm+T2: the analogue of Theorem 1.1(2) for the
// three-layer pipeline.
func (c *Chain) StabilityWait() int { return c.T1 + c.Tm + c.T2 }

// NewNode implements engine.Algorithm.
func (c *Chain) NewNode(v graph.NodeID) engine.NodeProc {
	return &chainProc{c: c, v: v}
}

type chainProc struct {
	c    *Chain
	v    graph.NodeID
	salg NodeInstance
	mids []dSlot
	outs []dSlot
	// ictx and bucks: see concatProc — reusable callback context (a stack
	// copy would heap-escape per instance call) and one-pass channel demux
	// buffers (slot 0 = SAlg, then mids, then outs).
	ictx  engine.Ctx
	bucks [][]engine.Incoming
}

func (p *chainProc) Start(ctx *engine.Ctx, input problems.Value) {
	p.salg = p.c.S.NewNode(p.v)
	sctx := *ctx
	sctx.PurposeBase = instancePurpose(0)
	p.salg.Start(&sctx, input)
}

// midOutput is the mid-pipeline's current output: the oldest mid instance
// that has run its full Tm-1 rounds (⊥ during warm-up).
func (p *chainProc) midOutput() problems.Value {
	if len(p.mids) == 0 {
		return problems.Bot
	}
	front := &p.mids[0]
	if front.age < p.c.Tm-1 {
		return problems.Bot
	}
	return front.inst.Output()
}

func (p *chainProc) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	// Capture the mid-pipeline output of the previous round before any
	// mutation (the outer pipeline's φ_{r-1}).
	midPrev := p.midOutput()

	// Start this round's mid instance on the static algorithm's output.
	midCh := int32(2 * ctx.Round)
	mi := p.c.Mid.NewNode(p.v)
	p.ictx = *ctx
	p.ictx.PurposeBase = dalgPurpose(midCh)
	mi.Start(&p.ictx, p.salg.Output())
	p.mids = append(p.mids, dSlot{ch: midCh, inst: mi})
	if len(p.mids) > p.c.Tm-1 {
		p.mids = p.mids[1:]
	}

	// Start this round's outer instance on the mid-pipeline output.
	outCh := int32(2*ctx.Round + 1)
	oi := p.c.D.NewNode(p.v)
	p.ictx = *ctx
	p.ictx.PurposeBase = dalgPurpose(outCh)
	oi.Start(&p.ictx, midPrev)
	p.outs = append(p.outs, dSlot{ch: outCh, inst: oi})
	if len(p.outs) > p.c.T1-1 {
		p.outs = p.outs[1:]
	}

	// Broadcast all three layers with channel tags.
	p.ictx = *ctx
	p.ictx.PurposeBase = instancePurpose(0)
	start := len(buf)
	buf = p.salg.Broadcast(&p.ictx, buf)
	for i := start; i < len(buf); i++ {
		buf[i].Chan = 0
	}
	for _, ring := range [][]dSlot{p.mids, p.outs} {
		for i := range ring {
			s := &ring[i]
			p.ictx = *ctx
			p.ictx.PurposeBase = dalgPurpose(s.ch)
			start = len(buf)
			buf = s.inst.Broadcast(&p.ictx, buf)
			for j := start; j < len(buf); j++ {
				buf[j].Chan = s.ch
			}
		}
	}
	return buf
}

func (p *chainProc) Process(ctx *engine.Ctx, in []engine.Incoming, deg int) {
	bucks := p.demux(in)
	p.ictx = *ctx
	p.ictx.PurposeBase = instancePurpose(0)
	p.salg.Process(&p.ictx, bucks[0], deg)
	slot := 1
	for _, ring := range [][]dSlot{p.mids, p.outs} {
		for i := range ring {
			s := &ring[i]
			p.ictx = *ctx
			p.ictx.PurposeBase = dalgPurpose(s.ch)
			s.inst.Process(&p.ictx, bucks[slot], deg)
			s.age++
			slot++
		}
	}
	if p.c.MidProbe != nil {
		p.c.MidProbe(p.v, ctx.Round, p.midOutput())
	}
}

// demux splits the inbox by channel into reused per-slot buffers: slot 0
// for SAlg, slots 1..len(mids) for the mid pipeline (even channels
// 2r), the rest for the outer pipeline (odd channels 2r+1). Both rings
// hold consecutive rounds, so slot lookup is an offset.
func (p *chainProc) demux(in []engine.Incoming) [][]engine.Incoming {
	nb := 1 + len(p.mids) + len(p.outs)
	for len(p.bucks) < nb {
		p.bucks = append(p.bucks, nil)
	}
	bucks := p.bucks[:nb]
	for i := range bucks {
		bucks[i] = bucks[i][:0]
	}
	var midBase, outBase int32
	if len(p.mids) > 0 {
		midBase = p.mids[0].ch
	}
	if len(p.outs) > 0 {
		outBase = p.outs[0].ch
	}
	for _, m := range in {
		ch := m.M.Chan
		switch {
		case ch == 0:
			bucks[0] = append(bucks[0], m)
		case ch&1 == 0:
			if idx := int(ch-midBase) / 2; idx >= 0 && idx < len(p.mids) && p.mids[idx].ch == ch {
				bucks[1+idx] = append(bucks[1+idx], m)
			}
		default:
			if idx := int(ch-outBase) / 2; idx >= 0 && idx < len(p.outs) && p.outs[idx].ch == ch {
				bucks[1+len(p.mids)+idx] = append(bucks[1+len(p.mids)+idx], m)
			}
		}
	}
	return bucks
}

// Output is the oldest mature outer instance, as in Algorithm 1.
func (p *chainProc) Output() problems.Value {
	if len(p.outs) == 0 {
		return problems.Bot
	}
	front := &p.outs[0]
	if front.age < p.c.T1-1 {
		return problems.Bot
	}
	return front.inst.Output()
}
