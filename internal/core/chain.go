package core

import (
	"fmt"

	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
)

// Chain is the triple combiner sketched in the remark of Section 3:
// "In principle, using the same technique, one could also combine more
// than two algorithms. One could for example imagine to also have a
// dynamic network algorithm that has stronger guarantees, but only works
// in dynamic networks with much more limited dynamic changes."
//
// The network-static algorithm S runs continuously as before. Its output
// seeds a pipeline of Mid instances — a dynamic algorithm with a smaller
// window Tm whose outputs are the stronger guarantee under limited
// dynamics — and the mid-pipeline's output in turn seeds the outer
// pipeline of D instances with the full window T1. The chained algorithm
//
//	a) converges to a locally stable solution where the graph is locally
//	   static (within T1+Tm+T2 rounds),
//	b) under limited dynamics effectively carries the mid algorithm's
//	   Tm-dynamic guarantee through (the outer pipeline extends inputs
//	   that are already complete), and
//	c) always outputs a T1-dynamic solution, for arbitrary dynamics —
//	   because the outer dynamic algorithm re-witnesses its inputs (see
//	   the input-sanitization notes in the algorithm implementations),
//	   invalid mid outputs caused by heavy dynamics cannot poison it.
//
// Channel layout: 0 = S; even channels 2r = mid instance started in
// round r; odd channels 2r+1 = outer instance started in round r.
type Chain struct {
	D   DynamicAlgorithm
	Mid DynamicAlgorithm
	S   NetworkStaticAlgorithm
	N   int

	T1 int
	Tm int
	T2 int

	// MidProbe, if set, receives each node's mid-pipeline output after
	// every round. The outer pipeline's latency (T1-1 rounds) means
	// freshness-style guarantees of the mid algorithm are observable
	// here, at the mid layer, rather than in the final output; consumers
	// that want the stronger limited-dynamics guarantee read this layer.
	// Called concurrently from engine workers; implementations must be
	// safe.
	MidProbe func(v graph.NodeID, round int, out problems.Value)
}

// NewChain builds the triple combination for a universe of n nodes.
func NewChain(d, mid DynamicAlgorithm, s NetworkStaticAlgorithm, n int) *Chain {
	t1 := d.WindowSize(n)
	tm := mid.WindowSize(n)
	if t1 < 2 || tm < 2 {
		panic(fmt.Sprintf("core: chain windows T1=%d, Tm=%d must be >= 2", t1, tm))
	}
	return &Chain{D: d, Mid: mid, S: s, N: n, T1: t1, Tm: tm, T2: s.StabilizationTime(n)}
}

// Name implements engine.Algorithm.
func (c *Chain) Name() string {
	return fmt.Sprintf("chain(%s,%s,%s)", c.D.Name(), c.Mid.Name(), c.S.Name())
}

// Alpha returns the locality radius inherited from the network-static part.
func (c *Chain) Alpha() int { return c.S.Alpha() }

// StabilityWait returns T1+Tm+T2: the analogue of Theorem 1.1(2) for the
// three-layer pipeline.
func (c *Chain) StabilityWait() int { return c.T1 + c.Tm + c.T2 }

// NewNode implements engine.Algorithm.
func (c *Chain) NewNode(v graph.NodeID) engine.NodeProc {
	return &chainProc{c: c, v: v}
}

type chainProc struct {
	c    *Chain
	v    graph.NodeID
	salg NodeInstance
	mids []dSlot
	outs []dSlot
	buck []engine.Incoming
}

func (p *chainProc) Start(ctx *engine.Ctx, input problems.Value) {
	p.salg = p.c.S.NewNode(p.v)
	sctx := *ctx
	sctx.PurposeBase = instancePurpose(0)
	p.salg.Start(&sctx, input)
}

// midOutput is the mid-pipeline's current output: the oldest mid instance
// that has run its full Tm-1 rounds (⊥ during warm-up).
func (p *chainProc) midOutput() problems.Value {
	if len(p.mids) == 0 {
		return problems.Bot
	}
	front := &p.mids[0]
	if front.age < p.c.Tm-1 {
		return problems.Bot
	}
	return front.inst.Output()
}

func (p *chainProc) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	// Capture the mid-pipeline output of the previous round before any
	// mutation (the outer pipeline's φ_{r-1}).
	midPrev := p.midOutput()

	// Start this round's mid instance on the static algorithm's output.
	midCh := int32(2 * ctx.Round)
	mi := p.c.Mid.NewNode(p.v)
	mctx := *ctx
	mctx.PurposeBase = dalgPurpose(midCh)
	mi.Start(&mctx, p.salg.Output())
	p.mids = append(p.mids, dSlot{ch: midCh, inst: mi})
	if len(p.mids) > p.c.Tm-1 {
		p.mids = p.mids[1:]
	}

	// Start this round's outer instance on the mid-pipeline output.
	outCh := int32(2*ctx.Round + 1)
	oi := p.c.D.NewNode(p.v)
	octx := *ctx
	octx.PurposeBase = dalgPurpose(outCh)
	oi.Start(&octx, midPrev)
	p.outs = append(p.outs, dSlot{ch: outCh, inst: oi})
	if len(p.outs) > p.c.T1-1 {
		p.outs = p.outs[1:]
	}

	// Broadcast all three layers with channel tags.
	sctx := *ctx
	sctx.PurposeBase = instancePurpose(0)
	start := len(buf)
	buf = p.salg.Broadcast(&sctx, buf)
	for i := start; i < len(buf); i++ {
		buf[i].Chan = 0
	}
	for _, ring := range [][]dSlot{p.mids, p.outs} {
		for i := range ring {
			s := &ring[i]
			ictx := *ctx
			ictx.PurposeBase = dalgPurpose(s.ch)
			start = len(buf)
			buf = s.inst.Broadcast(&ictx, buf)
			for j := start; j < len(buf); j++ {
				buf[j].Chan = s.ch
			}
		}
	}
	return buf
}

func (p *chainProc) Process(ctx *engine.Ctx, in []engine.Incoming, deg int) {
	sctx := *ctx
	sctx.PurposeBase = instancePurpose(0)
	p.salg.Process(&sctx, p.filter(in, 0), deg)
	for _, ring := range [][]dSlot{p.mids, p.outs} {
		for i := range ring {
			s := &ring[i]
			ictx := *ctx
			ictx.PurposeBase = dalgPurpose(s.ch)
			s.inst.Process(&ictx, p.filter(in, s.ch), deg)
			s.age++
		}
	}
	if p.c.MidProbe != nil {
		p.c.MidProbe(p.v, ctx.Round, p.midOutput())
	}
}

func (p *chainProc) filter(in []engine.Incoming, ch int32) []engine.Incoming {
	out := p.buck[:0]
	for _, m := range in {
		if m.M.Chan == ch {
			out = append(out, m)
		}
	}
	p.buck = out[:0]
	return out
}

// Output is the oldest mature outer instance, as in Algorithm 1.
func (p *chainProc) Output() problems.Value {
	if len(p.outs) == 0 {
		return problems.Bot
	}
	front := &p.outs[0]
	if front.age < p.c.T1-1 {
		return problems.Bot
	}
	return front.inst.Output()
}
