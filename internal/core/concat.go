package core

import (
	"fmt"

	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// Concat is Algorithm 1 / Theorem 1.1: it runs one instance of a
// (T2, α)-network-static algorithm SAlg from each node's wake-up round,
// and a pipeline of T1-1 concurrently live instances of a T1-dynamic
// algorithm DAlg. In every round r each node starts a fresh DAlg instance
// on its current SAlg output φ_{r-1}, discards the oldest instance, and
// outputs the oldest live instance — which by then has run for T1-1 rounds
// and (property A.2) extends a partial solution into a T1-dynamic solution.
// If the α-neighborhood of a node is static, SAlg's output freezes within
// T2 rounds (property B.2) and, because DAlg is input-extending (A.1), so
// does Concat's output: Theorem 1.1(2).
//
// Instance alignment across nodes uses the engine round as the channel id.
// The paper notes a common global round counter is not needed; operationally
// every message could carry its instance's age instead, which identifies
// the instance uniquely among the T1-1 live ones. The engine round is the
// same information precomputed.
type Concat struct {
	D DynamicAlgorithm
	S NetworkStaticAlgorithm
	N int

	T1   int
	T2   int
	Bits func(m engine.SubMsg) int
}

// NewConcat builds the combined algorithm for a universe of n nodes.
func NewConcat(d DynamicAlgorithm, s NetworkStaticAlgorithm, n int) *Concat {
	t1 := d.WindowSize(n)
	if t1 < 2 {
		panic(fmt.Sprintf("core: dynamic window T1 = %d < 2", t1))
	}
	c := &Concat{D: d, S: s, N: n, T1: t1, T2: s.StabilizationTime(n)}
	db, dOK := d.(MessageBitsFunc)
	sb, sOK := s.(MessageBitsFunc)
	if dOK && sOK {
		c.Bits = func(m engine.SubMsg) int {
			if m.Chan == 0 {
				return sb.MessageBits(m)
			}
			return db.MessageBits(m)
		}
	}
	return c
}

// Name implements engine.Algorithm.
func (c *Concat) Name() string {
	return fmt.Sprintf("concat(%s,%s)", c.D.Name(), c.S.Name())
}

// Alpha returns the locality radius inherited from the network-static part.
func (c *Concat) Alpha() int { return c.S.Alpha() }

// StabilityWait returns T1+T2: by Theorem 1.1(2) the output of a node
// whose α-ball is static from round r on is fixed from round r+T1+T2.
func (c *Concat) StabilityWait() int { return c.T1 + c.T2 }

// MessageBits implements engine.BitSizer when both parts declare sizes.
func (c *Concat) MessageBits(m engine.SubMsg) int {
	if c.Bits == nil {
		return 0
	}
	return c.Bits(m)
}

// NewNode implements engine.Algorithm.
func (c *Concat) NewNode(v graph.NodeID) engine.NodeProc {
	return &concatProc{c: c, v: v}
}

// dSlot is one live dynamic-algorithm instance at a node.
type dSlot struct {
	ch   int32
	inst NodeInstance
	age  int // rounds processed
}

type concatProc struct {
	c    *Concat
	v    graph.NodeID
	salg NodeInstance
	dal  []dSlot // front = oldest
	// ictx is the reusable context handed to instance callbacks: passing
	// a fresh stack copy through the NodeInstance interface would escape
	// to the heap on every call — one allocation per instance per round.
	// Instances must not retain the pointer beyond the call (they don't).
	ictx engine.Ctx
	// bucks demultiplexes the inbox by channel in one pass: bucks[0] is
	// SAlg's, bucks[1+i] belongs to dal[i]. Buffers are reused per round.
	bucks [][]engine.Incoming
}

// dalgPurpose derives the purpose base of a dynamic instance channel,
// avoiding slot 0 (reserved for SAlg). Collisions between live instances
// are impossible for T1-1 < purposeSlots-1.
func dalgPurpose(ch int32) prf.Purpose {
	slot := 1 + (uint32(ch)-1)%(purposeSlots-1)
	return instancePurpose(int32(slot))
}

func (p *concatProc) Start(ctx *engine.Ctx, input problems.Value) {
	p.salg = p.c.S.NewNode(p.v)
	sctx := *ctx
	sctx.PurposeBase = instancePurpose(0)
	p.salg.Start(&sctx, input)
}

func (p *concatProc) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	// Line 1 of Algorithm 1: start a new DAlg instance on the current
	// SAlg output.
	ch := int32(ctx.Round)
	inst := p.c.D.NewNode(p.v)
	p.ictx = *ctx
	p.ictx.PurposeBase = dalgPurpose(ch)
	inst.Start(&p.ictx, p.salg.Output())
	p.dal = append(p.dal, dSlot{ch: ch, inst: inst})
	// Lines 2-3: cap the pipeline at T1-1 live instances.
	if len(p.dal) > p.c.T1-1 {
		p.dal = p.dal[1:]
	}

	// SAlg sub-messages on channel 0.
	p.ictx = *ctx
	p.ictx.PurposeBase = instancePurpose(0)
	start := len(buf)
	buf = p.salg.Broadcast(&p.ictx, buf)
	for i := start; i < len(buf); i++ {
		buf[i].Chan = 0
	}
	// Each live DAlg instance on its channel.
	for i := range p.dal {
		s := &p.dal[i]
		p.ictx = *ctx
		p.ictx.PurposeBase = dalgPurpose(s.ch)
		start = len(buf)
		buf = s.inst.Broadcast(&p.ictx, buf)
		for j := start; j < len(buf); j++ {
			buf[j].Chan = s.ch
		}
	}
	return buf
}

func (p *concatProc) Process(ctx *engine.Ctx, in []engine.Incoming, deg int) {
	// One-pass demux of the inbox: live channels are the consecutive
	// engine rounds dal[0].ch … dal[0].ch+len(dal)-1, so the slot index
	// is an offset — no per-instance rescan of the inbox.
	bucks := p.demux(in)
	p.ictx = *ctx
	p.ictx.PurposeBase = instancePurpose(0)
	p.salg.Process(&p.ictx, bucks[0], deg)
	for i := range p.dal {
		s := &p.dal[i]
		p.ictx = *ctx
		p.ictx.PurposeBase = dalgPurpose(s.ch)
		s.inst.Process(&p.ictx, bucks[1+i], deg)
		s.age++
	}
}

// demux splits the inbox by channel into reused per-slot buffers:
// slot 0 for SAlg, slot 1+i for dal[i].
func (p *concatProc) demux(in []engine.Incoming) [][]engine.Incoming {
	nb := 1 + len(p.dal)
	for len(p.bucks) < nb {
		p.bucks = append(p.bucks, nil)
	}
	bucks := p.bucks[:nb]
	for i := range bucks {
		bucks[i] = bucks[i][:0]
	}
	var base int32
	if len(p.dal) > 0 {
		base = p.dal[0].ch
	}
	for _, m := range in {
		ch := m.M.Chan
		if ch == 0 {
			bucks[0] = append(bucks[0], m)
			continue
		}
		if idx := int(ch - base); idx >= 0 && idx < len(p.dal) && p.dal[idx].ch == ch {
			bucks[1+idx] = append(bucks[1+idx], m)
		}
	}
	return bucks
}

// Output implements line 7 of Algorithm 1: the output of the oldest live
// DAlg instance once it has run its full T1-1 rounds; ⊥ while the pipeline
// is still warming up after the node's wake round.
func (p *concatProc) Output() problems.Value {
	if len(p.dal) == 0 {
		return problems.Bot
	}
	front := &p.dal[0]
	if front.age < p.c.T1-1 {
		return problems.Bot
	}
	return front.inst.Output()
}
