// Package core implements the paper's framework for highly dynamic
// network algorithms (Section 3): the contracts of T-dynamic algorithms
// (Definition 3.3, properties A.1/A.2) and (T, α)-network-static
// algorithms (properties B.1/B.2), and the Concat combiner (Algorithm 1)
// realizing Theorem 1.1 — a network-static base algorithm continuously
// computes a partial solution, and a pipeline of dynamic-algorithm
// instances extends it to a full T-dynamic solution every round.
package core

import (
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// NodeInstance is the per-node state machine of an algorithm instance run
// inside the framework. It is the engine.NodeProc contract minus channel
// management: instances emit sub-messages with Chan 0 and receive only the
// sub-messages addressed to them; the combiner rewrites channels.
type NodeInstance interface {
	Start(ctx *engine.Ctx, input problems.Value)
	Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg
	Process(ctx *engine.Ctx, in []engine.Incoming, deg int)
	Output() problems.Value
}

// DynamicAlgorithm is a T-dynamic algorithm factory (Definition 3.3):
// instances must be input-extending (A.1) and finalizing (A.2) — started
// in round j on a partial solution for G_{j-1}, after T-1 rounds the
// output solves the packing problem on G^∩T and the covering problem on
// G^∪T.
type DynamicAlgorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// WindowSize returns the algorithm's T for universe size n — the
	// number of rounds (inclusive of the start round) after which A.2
	// holds w.h.p.
	WindowSize(n int) int
	// NewNode creates the per-node instance state.
	NewNode(v graph.NodeID) NodeInstance
}

// NetworkStaticAlgorithm is a (T, α)-network-static algorithm factory
// (Definition 3.3): instances must output a partial solution for the
// current graph every round (B.1) and produce a fixed non-⊥ output within
// T rounds wherever the α-neighborhood is static (B.2).
type NetworkStaticAlgorithm interface {
	Name() string
	// StabilizationTime returns the algorithm's T for universe size n.
	StabilizationTime(n int) int
	// Alpha returns the locality radius α of property B.2.
	Alpha() int
	NewNode(v graph.NodeID) NodeInstance
}

// MessageBitsFunc optionally reports the encoded size of an instance
// sub-message; implemented by algorithm factories for experiment E12.
type MessageBitsFunc interface {
	MessageBits(m engine.SubMsg) int
}

// Single adapts one framework algorithm factory into an engine.Algorithm,
// for running DColor, SColor, DMis or SMis standalone.
type Single struct {
	Label   string
	Factory func(v graph.NodeID) NodeInstance
	Bits    func(m engine.SubMsg) int
}

// Name implements engine.Algorithm.
func (s Single) Name() string { return s.Label }

// NewNode implements engine.Algorithm.
func (s Single) NewNode(v graph.NodeID) engine.NodeProc {
	inst := s.Factory(v)
	q, _ := inst.(engine.Quiescer)
	return singleProc{inst: inst, q: q}
}

// MessageBits implements engine.BitSizer when a Bits function is set.
func (s Single) MessageBits(m engine.SubMsg) int {
	if s.Bits == nil {
		return 0
	}
	return s.Bits(m)
}

type singleProc struct {
	inst NodeInstance
	q    engine.Quiescer // inst's Quiescer view, nil if it has none
}

func (p singleProc) Start(ctx *engine.Ctx, input problems.Value) { p.inst.Start(ctx, input) }
func (p singleProc) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	return p.inst.Broadcast(ctx, buf)
}
func (p singleProc) Process(ctx *engine.Ctx, in []engine.Incoming, deg int) {
	p.inst.Process(ctx, in, deg)
}
func (p singleProc) Output() problems.Value { return p.inst.Output() }

// Quiescent forwards the wrapped instance's engine.Quiescer contract; an
// instance without one never reports quiescent.
func (p singleProc) Quiescent() bool { return p.q != nil && p.q.Quiescent() }

// WrapSingle runs a dynamic algorithm standalone (all nodes start it at
// their wake round with their input).
func WrapSingle(name string, factory func(v graph.NodeID) NodeInstance) Single {
	return Single{Label: name, Factory: factory}
}

// purposeSlots bounds the purpose-space slots used to separate the PRF
// streams of concurrently live combiner instances. Live instances span at
// most T1-1 consecutive engine rounds, so slot collisions cannot occur for
// any T1 below this bound.
const purposeSlots = 4096

// instancePurpose derives the PRF purpose base for a combiner instance
// channel. Channel 0 is the network-static algorithm.
func instancePurpose(channel int32) prf.Purpose {
	return prf.InstanceStride * prf.Purpose(uint32(channel)%purposeSlots)
}
