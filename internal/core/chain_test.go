package core

import (
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/problems"
)

func TestChainAccessors(t *testing.T) {
	d := &probeDyn{window: 8}
	m := &probeDyn{window: 4}
	s := &probeStatic{alpha: 2, stab: 5}
	c := NewChain(d, m, s, 6)
	if c.T1 != 8 || c.Tm != 4 || c.T2 != 5 || c.StabilityWait() != 17 || c.Alpha() != 2 {
		t.Fatalf("accessors wrong: %+v", c)
	}
	if c.Name() != "chain(probe-dyn,probe-dyn,probe-static)" {
		t.Fatalf("name = %q", c.Name())
	}
}

func TestChainRejectsTinyWindows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewChain(&probeDyn{window: 8}, &probeDyn{window: 1}, &probeStatic{alpha: 1, stab: 1}, 3)
}

func TestChainChannelIsolation(t *testing.T) {
	// probeDyn instances panic if a message from a different instance
	// (different start round encoded in A) reaches them; with mid and
	// outer instances started every round on interleaved channels, any
	// routing bug between the layers trips it.
	d := &probeDyn{window: 6}
	m := &probeDyn{window: 4}
	s := &probeStatic{alpha: 1, stab: 2}
	c := NewChain(d, m, s, 5)
	e := engine.New(engine.Config{N: 5, Seed: 3}, adversary.Static{G: graph.Complete(5)}, c)
	e.Run(14)
}

func TestChainWarmupAndMaturity(t *testing.T) {
	const T1 = 5
	const Tm = 3
	d := &probeDyn{window: T1}
	m := &probeDyn{window: Tm}
	s := &probeStatic{alpha: 1, stab: 2}
	c := NewChain(d, m, s, 3)
	e := engine.New(engine.Config{N: 3, Seed: 4}, adversary.Static{G: graph.Path(3)}, c)
	// Output stays ⊥ until the outer pipeline matures (T1-1 rounds).
	for r := 1; r <= T1-2; r++ {
		info := e.Step()
		if info.Outputs[0] != problems.Bot {
			t.Fatalf("round %d: output %d during warm-up", r, info.Outputs[0])
		}
	}
	// Mature outer instances carry (per probeDyn) 1000*start + input,
	// where input is the mid output captured at their start: the mid
	// instance outputs 1000*itsStart + salg output (node id + 1).
	info := e.Step() // round T1-1: outer I_1 matured (started round 1)
	if info.Outputs[0] == problems.Bot {
		t.Fatal("output still ⊥ after outer pipeline matured")
	}
	// Outer instance started at round 1 captured the mid output before
	// any mid instance existed -> input ⊥ (0).
	if got, want := info.Outputs[0], problems.Value(1000); got != want {
		t.Fatalf("output %d, want %d (outer started r1 on ⊥)", got, want)
	}
	// Much later: outer instance started at round r captured the mature
	// mid output of round r-1: mid front at r-1 started at round r-Tm+1,
	// and its input was salg output (= node id+1 = 1).
	e.Run(10)
	r := e.Round() + 1 // next round's outer instance start
	_ = r
	info = e.Step()
	outerStart := info.Round - T1 + 2
	midStart := (outerStart - 1) - Tm + 2
	want := problems.Value(1000*int64(outerStart) + 1000*int64(midStart) + 1)
	if info.Outputs[0] != want {
		t.Fatalf("steady-state output %d, want %d", info.Outputs[0], want)
	}
}

func TestChainPurposeSeparationAcrossLayers(t *testing.T) {
	// Mid and outer instances of the same algorithm live on interleaved
	// channels; the randProbe panics if any two draws collide, which
	// would happen if a mid and an outer instance shared a purpose base.
	draws := make(map[uint64]string)
	d := &randProbe{window: 5, draws: draws}
	m := &randProbe{window: 4, draws: draws}
	s := &probeStatic{alpha: 1, stab: 2}
	c := NewChain(d, m, s, 2)
	e := engine.New(engine.Config{N: 2, Seed: 9}, adversary.Static{G: graph.Path(2)}, c)
	e.Run(8)
	if len(draws) == 0 {
		t.Fatal("no draws recorded")
	}
}
