package problems

import (
	"fmt"
	"slices"

	"dynlocal/internal/graph"
)

// Tracker incrementally maintains the violation set of one problem
// component over a mutating graph and output vector, so a round with k
// changes costs O(k·Δ) updates instead of a full CheckFull rescan of the
// graph. The verify package feeds it the edge deltas of the windowed
// graphs (G^∩T for packing, G^∪T for covering) and the output deltas of
// the algorithm.
//
// The contract mirrors CheckFull filtered through the T-dynamic checker's
// Bot handling: Violations returns, in exactly CheckFull's order (unary
// violations by ascending node, then pairwise violations by ascending edge
// key), the violations CheckFull(g, out, nodes) would report among the
// activated nodes, minus the reports for nodes whose output is Bot
// (undecided nodes are accounted separately by the checker).
//
// Event semantics:
//
//   - Activate(v): v joins the checked node set (V^∩T in the T-dynamic
//     problem). Nodes never deactivate — the paper's wake-ups are monotone
//     and the window start only advances.
//   - EdgeAdded/EdgeRemoved: the tracked graph gained/lost edge {u, v}.
//   - OutputChanged(v, val): node v's output is now val. Outputs start at
//     Bot. Changes may be reported in any order within a round; the state
//     converges once every changed node has been reported.
//
// All state updates are O(Δ) in the degree of the touched node;
// Violations is O(1) when the violation set is empty and
// O(V + sort(conflicts)) otherwise.
type Tracker interface {
	Activate(v graph.NodeID)
	EdgeAdded(u, v graph.NodeID)
	EdgeRemoved(u, v graph.NodeID)
	OutputChanged(v graph.NodeID, val Value)
	Violations() []Violation
}

// dynAdj mirrors a dynamically maintained graph as mutable per-node
// neighbor lists fed by edge events. Removal is a linear scan of the
// endpoint's list — O(Δ) per event, and neighbor order is not meaningful.
type dynAdj struct {
	nbr [][]graph.NodeID
}

func newDynAdj(n int) dynAdj { return dynAdj{nbr: make([][]graph.NodeID, n)} }

func (a *dynAdj) add(u, v graph.NodeID) {
	a.nbr[u] = append(a.nbr[u], v)
	a.nbr[v] = append(a.nbr[v], u)
}

func (a *dynAdj) remove(u, v graph.NodeID) {
	a.removeHalf(u, v)
	a.removeHalf(v, u)
}

func (a *dynAdj) removeHalf(u, v graph.NodeID) {
	row := a.nbr[u]
	for i, w := range row {
		if w == v {
			row[i] = row[len(row)-1]
			a.nbr[u] = row[:len(row)-1]
			return
		}
	}
	panic(fmt.Sprintf("problems: removal of untracked edge {%d,%d}", u, v))
}

// nodeFlags is a boolean-per-node violation set with a popcount, so the
// common all-clear case is a single comparison at report time.
type nodeFlags struct {
	flag  []bool
	count int
}

func newNodeFlags(n int) nodeFlags { return nodeFlags{flag: make([]bool, n)} }

func (f *nodeFlags) set(v graph.NodeID, bad bool) {
	if f.flag[v] == bad {
		return
	}
	f.flag[v] = bad
	if bad {
		f.count++
	} else {
		f.count--
	}
}

// sortedEdgeKeys returns the map's keys ascending, reusing scratch.
func sortedEdgeKeys(m map[graph.EdgeKey]struct{}, scratch []graph.EdgeKey) []graph.EdgeKey {
	keys := scratch[:0]
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// --- Independent set (packing M_P) ---------------------------------------

type independentSetTracker struct {
	vals      []Value
	active    []bool
	adj       dynAdj
	invalid   nodeFlags // active nodes with out-of-domain values
	conflicts map[graph.EdgeKey]struct{}
	scratch   []graph.EdgeKey
}

// NewTracker returns the incremental checker for M_P.
func (IndependentSet) NewTracker(n int) Tracker {
	return &independentSetTracker{
		vals:      make([]Value, n),
		active:    make([]bool, n),
		adj:       newDynAdj(n),
		invalid:   newNodeFlags(n),
		conflicts: make(map[graph.EdgeKey]struct{}),
	}
}

func (t *independentSetTracker) evalUnary(v graph.NodeID) {
	val := t.vals[v]
	t.invalid.set(v, t.active[v] && val != Bot && val != InMIS && val != Dominated)
}

func (t *independentSetTracker) evalPair(u, v graph.NodeID) {
	k := graph.MakeEdgeKey(u, v)
	if t.active[u] && t.active[v] && t.vals[u] == InMIS && t.vals[v] == InMIS {
		t.conflicts[k] = struct{}{}
	} else {
		delete(t.conflicts, k)
	}
}

func (t *independentSetTracker) Activate(v graph.NodeID) {
	t.active[v] = true
	t.evalUnary(v)
	for _, u := range t.adj.nbr[v] {
		t.evalPair(u, v)
	}
}

func (t *independentSetTracker) EdgeAdded(u, v graph.NodeID) {
	t.adj.add(u, v)
	t.evalPair(u, v)
}

func (t *independentSetTracker) EdgeRemoved(u, v graph.NodeID) {
	t.adj.remove(u, v)
	delete(t.conflicts, graph.MakeEdgeKey(u, v))
}

func (t *independentSetTracker) OutputChanged(v graph.NodeID, val Value) {
	t.vals[v] = val
	t.evalUnary(v)
	for _, u := range t.adj.nbr[v] {
		t.evalPair(u, v)
	}
}

func (t *independentSetTracker) Violations() []Violation {
	if t.invalid.count == 0 && len(t.conflicts) == 0 {
		return nil
	}
	var bad []Violation
	if t.invalid.count > 0 {
		for v, f := range t.invalid.flag {
			if f {
				bad = append(bad, Violation{Node: graph.NodeID(v), Peer: NoPeer,
					Reason: fmt.Sprintf("invalid MIS value %d", t.vals[v])})
			}
		}
	}
	t.scratch = sortedEdgeKeys(t.conflicts, t.scratch)
	for _, k := range t.scratch {
		u, v := k.Nodes()
		bad = append(bad, Violation{Node: u, Peer: v, Reason: "adjacent MIS nodes"})
	}
	return bad
}

// --- Dominating set (covering M_C) ---------------------------------------

type dominatingSetTracker struct {
	vals    []Value
	active  []bool
	adj     dynAdj
	misNbrs []int32 // neighbors with value InMIS, counted over all nodes
	flags   nodeFlags
}

// NewTracker returns the incremental checker for M_C.
func (DominatingSet) NewTracker(n int) Tracker {
	return &dominatingSetTracker{
		vals:    make([]Value, n),
		active:  make([]bool, n),
		adj:     newDynAdj(n),
		misNbrs: make([]int32, n),
		flags:   newNodeFlags(n),
	}
}

func (t *dominatingSetTracker) eval(v graph.NodeID) {
	if !t.active[v] {
		return
	}
	switch t.vals[v] {
	case Bot, InMIS:
		t.flags.set(v, false)
	case Dominated:
		t.flags.set(v, t.misNbrs[v] == 0)
	default:
		t.flags.set(v, true)
	}
}

func (t *dominatingSetTracker) Activate(v graph.NodeID) {
	t.active[v] = true
	t.eval(v)
}

func (t *dominatingSetTracker) EdgeAdded(u, v graph.NodeID) {
	t.adj.add(u, v)
	if t.vals[u] == InMIS {
		t.misNbrs[v]++
		t.eval(v)
	}
	if t.vals[v] == InMIS {
		t.misNbrs[u]++
		t.eval(u)
	}
}

func (t *dominatingSetTracker) EdgeRemoved(u, v graph.NodeID) {
	t.adj.remove(u, v)
	if t.vals[u] == InMIS {
		t.misNbrs[v]--
		t.eval(v)
	}
	if t.vals[v] == InMIS {
		t.misNbrs[u]--
		t.eval(u)
	}
}

func (t *dominatingSetTracker) OutputChanged(v graph.NodeID, val Value) {
	was, is := t.vals[v] == InMIS, val == InMIS
	t.vals[v] = val
	if was != is {
		d := int32(-1)
		if is {
			d = 1
		}
		for _, u := range t.adj.nbr[v] {
			t.misNbrs[u] += d
			t.eval(u)
		}
	}
	t.eval(v)
}

func (t *dominatingSetTracker) Violations() []Violation {
	if t.flags.count == 0 {
		return nil
	}
	var bad []Violation
	for v, f := range t.flags.flag {
		if !f {
			continue
		}
		switch t.vals[v] {
		case Dominated:
			bad = append(bad, Violation{Node: graph.NodeID(v), Peer: NoPeer,
				Reason: "dominated without MIS neighbor"})
		default:
			bad = append(bad, Violation{Node: graph.NodeID(v), Peer: NoPeer,
				Reason: fmt.Sprintf("invalid MIS value %d", t.vals[v])})
		}
	}
	return bad
}

// --- Proper coloring (packing C_P) ---------------------------------------

type properColoringTracker struct {
	vals      []Value
	active    []bool
	adj       dynAdj
	invalid   nodeFlags // active nodes with negative colors
	conflicts map[graph.EdgeKey]struct{}
	scratch   []graph.EdgeKey
}

// NewTracker returns the incremental checker for C_P.
func (ProperColoring) NewTracker(n int) Tracker {
	return &properColoringTracker{
		vals:      make([]Value, n),
		active:    make([]bool, n),
		adj:       newDynAdj(n),
		invalid:   newNodeFlags(n),
		conflicts: make(map[graph.EdgeKey]struct{}),
	}
}

func (t *properColoringTracker) evalPair(u, v graph.NodeID) {
	k := graph.MakeEdgeKey(u, v)
	if t.active[u] && t.active[v] && t.vals[u] != Bot && t.vals[u] == t.vals[v] {
		t.conflicts[k] = struct{}{}
	} else {
		delete(t.conflicts, k)
	}
}

func (t *properColoringTracker) Activate(v graph.NodeID) {
	t.active[v] = true
	t.invalid.set(v, t.vals[v] < 0)
	for _, u := range t.adj.nbr[v] {
		t.evalPair(u, v)
	}
}

func (t *properColoringTracker) EdgeAdded(u, v graph.NodeID) {
	t.adj.add(u, v)
	t.evalPair(u, v)
}

func (t *properColoringTracker) EdgeRemoved(u, v graph.NodeID) {
	t.adj.remove(u, v)
	delete(t.conflicts, graph.MakeEdgeKey(u, v))
}

func (t *properColoringTracker) OutputChanged(v graph.NodeID, val Value) {
	t.vals[v] = val
	if t.active[v] {
		t.invalid.set(v, val < 0)
	}
	for _, u := range t.adj.nbr[v] {
		t.evalPair(u, v)
	}
}

func (t *properColoringTracker) Violations() []Violation {
	if t.invalid.count == 0 && len(t.conflicts) == 0 {
		return nil
	}
	var bad []Violation
	if t.invalid.count > 0 {
		for v, f := range t.invalid.flag {
			if f {
				bad = append(bad, Violation{Node: graph.NodeID(v), Peer: NoPeer,
					Reason: fmt.Sprintf("invalid color %d", t.vals[v])})
			}
		}
	}
	t.scratch = sortedEdgeKeys(t.conflicts, t.scratch)
	for _, k := range t.scratch {
		u, v := k.Nodes()
		bad = append(bad, Violation{Node: u, Peer: v,
			Reason: fmt.Sprintf("conflict: both colored %d", t.vals[u])})
	}
	return bad
}

// --- Degree range (covering C_C) -----------------------------------------

type degreeRangeTracker struct {
	vals   []Value
	active []bool
	deg    []int32
	flags  nodeFlags
}

// NewTracker returns the incremental checker for C_C.
func (DegreeRange) NewTracker(n int) Tracker {
	return &degreeRangeTracker{
		vals:   make([]Value, n),
		active: make([]bool, n),
		deg:    make([]int32, n),
		flags:  newNodeFlags(n),
	}
}

func (t *degreeRangeTracker) eval(v graph.NodeID) {
	if !t.active[v] {
		return
	}
	c := t.vals[v]
	t.flags.set(v, c != Bot && (c < 1 || c > Value(t.deg[v]+1)))
}

func (t *degreeRangeTracker) Activate(v graph.NodeID) {
	t.active[v] = true
	t.eval(v)
}

func (t *degreeRangeTracker) EdgeAdded(u, v graph.NodeID) {
	t.deg[u]++
	t.deg[v]++
	t.eval(u)
	t.eval(v)
}

func (t *degreeRangeTracker) EdgeRemoved(u, v graph.NodeID) {
	t.deg[u]--
	t.deg[v]--
	t.eval(u)
	t.eval(v)
}

func (t *degreeRangeTracker) OutputChanged(v graph.NodeID, val Value) {
	t.vals[v] = val
	t.eval(v)
}

func (t *degreeRangeTracker) Violations() []Violation {
	if t.flags.count == 0 {
		return nil
	}
	var bad []Violation
	for v, f := range t.flags.flag {
		if f {
			bad = append(bad, Violation{Node: graph.NodeID(v), Peer: NoPeer,
				Reason: fmt.Sprintf("color %d outside {1,…,%d}", t.vals[v], t.deg[v]+1)})
		}
	}
	return bad
}
