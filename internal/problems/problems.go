// Package problems defines distributed graph problems in the form the
// paper's framework requires: a problem is decomposed into a packing
// property (preserved under edge removal) and a covering property
// (preserved under edge addition), per Definition 3.1, with locally
// checkable (LCL) feasibility per node. It also implements the
// partial-packing and partial-covering conditions of Definition 3.2 that
// network-static algorithms must maintain every round.
//
// Each component comes in two checking forms: a batch CheckFull scan of a
// materialized graph, and an incremental Tracker that maintains the same
// violation set under edge and output deltas in O(changes·Δ) per round —
// the verification hot path of the T-dynamic checker. CheckFull remains
// the oracle the trackers are property-tested against. The deltas arrive
// from upstream producers that are themselves incremental: edge events
// from the sliding windows of internal/dyngraph, output events from the
// engine's per-round changed-node feed (engine.RoundInfo.Changed), both
// routed through internal/verify. Trackers never read a graph or output
// vector wholesale; their state is exactly the event history, which is
// what makes the checkers O(changes) rather than O(n+m) per round.
//
// The two instantiations from the paper are provided:
//
//   - MIS = independent set (packing M_P) ∩ dominating set (covering M_C),
//     Section 5.
//   - (degree+1)-coloring = proper coloring (packing C_P) ∩ colors within
//     {1, …, deg(v)+1} (covering C_C), Section 4.
package problems

import (
	"fmt"

	"dynlocal/internal/graph"
)

// Value is a node output. The zero value Bot is ⊥ ("no output yet").
// Coloring outputs are colors 1, 2, …; MIS outputs are InMIS or Dominated.
type Value int64

// Bot is ⊥: the node has not produced an output.
const Bot Value = 0

// MIS output values.
const (
	InMIS     Value = 1 // the node is in the independent set M
	Dominated Value = 2 // the node is dominated by an M-neighbor
)

// Violation reports a node whose LCL condition fails, with the peer
// involved (NoPeer if the condition is unary) and a reason for test and
// experiment diagnostics.
type Violation struct {
	Node   graph.NodeID
	Peer   graph.NodeID
	Reason string
}

// NoPeer marks unary violations.
const NoPeer graph.NodeID = -1

func (v Violation) String() string {
	if v.Peer == NoPeer {
		return fmt.Sprintf("node %d: %s", v.Node, v.Reason)
	}
	return fmt.Sprintf("node %d (peer %d): %s", v.Node, v.Peer, v.Reason)
}

// Problem is the common surface of packing and covering problems.
type Problem interface {
	// Name identifies the problem in reports.
	Name() string
	// Radius is the LCL checking radius (1 for all problems in the paper).
	Radius() int
}

// Packing is a distributed graph problem whose solutions remain solutions
// when edges are removed (Definition 3.1).
type Packing interface {
	Problem
	// CheckFull returns the LCL violations of out among the given nodes on
	// g, treating out as a complete solution: Bot outputs among nodes are
	// themselves violations.
	CheckFull(g *graph.Graph, out []Value, nodes []graph.NodeID) []Violation
	// CheckPartial returns violations of the partial-packing condition of
	// Definition 3.2: there must exist an extension of out in which the
	// LCL condition holds for every node with a non-Bot output.
	CheckPartial(g *graph.Graph, out []Value) []Violation
	// NewTracker returns an incremental CheckFull maintainer over a node
	// universe of size n; see Tracker for the event contract.
	NewTracker(n int) Tracker
}

// Covering is a distributed graph problem whose solutions remain solutions
// when edges are added (Definition 3.1).
type Covering interface {
	Problem
	// CheckFull is as for Packing.CheckFull.
	CheckFull(g *graph.Graph, out []Value, nodes []graph.NodeID) []Violation
	// CheckPartial returns violations of the partial-covering condition of
	// Definition 3.2: the LCL condition must hold for every node with a
	// non-Bot output under every extension of out.
	CheckPartial(g *graph.Graph, out []Value) []Violation
	// NewTracker is as for Packing.NewTracker.
	NewTracker(n int) Tracker
}

// PC bundles the packing and covering components of one combined problem,
// e.g. MIS or (degree+1)-coloring.
type PC struct {
	Label string
	P     Packing
	C     Covering
}

// Name returns the combined problem's label.
func (pc PC) Name() string { return pc.Label }

// MIS returns the maximal-independent-set problem decomposed per Section 5:
// packing M_P (independent set) and covering M_C (dominating set).
func MIS() PC {
	return PC{Label: "mis", P: IndependentSet{}, C: DominatingSet{}}
}

// Coloring returns the (degree+1)-coloring problem decomposed per
// Section 4: packing C_P (proper coloring, unbounded colors) and covering
// C_C (color within {1, …, deg(v)+1}).
func Coloring() PC {
	return PC{Label: "degree+1-coloring", P: ProperColoring{}, C: DegreeRange{}}
}
