package problems

import (
	"fmt"

	"dynlocal/internal/graph"
)

// IndependentSet is the packing component M_P of the MIS problem: the
// nodes with output InMIS must form an independent set (Section 5).
// Removing edges preserves independence — a packing problem.
type IndependentSet struct{}

// Name implements Problem.
func (IndependentSet) Name() string { return "independent-set" }

// Radius implements Problem.
func (IndependentSet) Radius() int { return 1 }

// CheckFull reports nodes among the given set with Bot or out-of-domain
// outputs, and adjacent InMIS pairs (attributed to the lower endpoint).
func (IndependentSet) CheckFull(g *graph.Graph, out []Value, nodes []graph.NodeID) []Violation {
	var bad []Violation
	inSet := memberSet(g.N(), nodes)
	for _, v := range nodes {
		switch out[v] {
		case Bot:
			bad = append(bad, Violation{Node: v, Peer: NoPeer, Reason: "undecided (⊥) in full solution"})
		case InMIS, Dominated:
		default:
			bad = append(bad, Violation{Node: v, Peer: NoPeer,
				Reason: fmt.Sprintf("invalid MIS value %d", out[v])})
		}
	}
	for _, v := range nodes {
		if out[v] != InMIS {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if v < u && inSet[u] && out[u] == InMIS {
				bad = append(bad, Violation{Node: v, Peer: u, Reason: "adjacent MIS nodes"})
			}
		}
	}
	return bad
}

// CheckPartial implements partial packing per Section 5.2: a vector is
// partial packing for M_P if and only if no two adjacent nodes are InMIS
// (the extension setting all ⊥ nodes to Dominated then satisfies every
// decided node).
func (IndependentSet) CheckPartial(g *graph.Graph, out []Value) []Violation {
	var bad []Violation
	g.EachEdge(func(u, v graph.NodeID) {
		if out[u] == InMIS && out[v] == InMIS {
			bad = append(bad, Violation{Node: u, Peer: v, Reason: "adjacent MIS nodes (partial)"})
		}
	})
	return bad
}

// DominatingSet is the covering component M_C of the MIS problem: the
// InMIS nodes must dominate every node (Section 5). Adding edges only
// helps domination — a covering problem.
//
// In the dynamic problem this is evaluated on the union graph G^∪T: a
// dominated node must have had an MIS neighbor at some point during the
// window.
type DominatingSet struct{}

// Name implements Problem.
func (DominatingSet) Name() string { return "dominating-set" }

// Radius implements Problem.
func (DominatingSet) Radius() int { return 1 }

// CheckFull reports nodes among the given set that are Bot, out of domain,
// or Dominated without any InMIS neighbor in g. (Domination may come from
// any neighbor in g, not only from nodes of the checked subset: the
// covering property of Definition 2.1's union graph counts all edges seen
// in the window.)
func (DominatingSet) CheckFull(g *graph.Graph, out []Value, nodes []graph.NodeID) []Violation {
	var bad []Violation
	for _, v := range nodes {
		switch out[v] {
		case InMIS:
			continue
		case Dominated:
			if !hasMISNeighbor(g, out, v) {
				bad = append(bad, Violation{Node: v, Peer: NoPeer, Reason: "dominated without MIS neighbor"})
			}
		case Bot:
			bad = append(bad, Violation{Node: v, Peer: NoPeer, Reason: "undecided (⊥) in full solution"})
		default:
			bad = append(bad, Violation{Node: v, Peer: NoPeer,
				Reason: fmt.Sprintf("invalid MIS value %d", out[v])})
		}
	}
	return bad
}

// CheckPartial implements partial covering per Section 5.2: every node
// already in state Dominated must already have an InMIS neighbor, because
// the extension setting all ⊥ nodes to Dominated provides none.
func (DominatingSet) CheckPartial(g *graph.Graph, out []Value) []Violation {
	var bad []Violation
	for v := 0; v < g.N(); v++ {
		if out[v] == Dominated && !hasMISNeighbor(g, out, graph.NodeID(v)) {
			bad = append(bad, Violation{Node: graph.NodeID(v), Peer: NoPeer,
				Reason: "dominated without MIS neighbor (partial)"})
		}
	}
	return bad
}

func hasMISNeighbor(g *graph.Graph, out []Value, v graph.NodeID) bool {
	for _, u := range g.Neighbors(v) {
		if out[u] == InMIS {
			return true
		}
	}
	return false
}
