package problems

import (
	"fmt"

	"dynlocal/internal/graph"
)

// ProperColoring is the packing component C_P of the coloring problem:
// properly coloring the nodes with no bound on the number of colors
// (Section 4). Removing edges preserves properness, so this is a packing
// problem in the sense of Definition 3.1.
type ProperColoring struct{}

// Name implements Problem.
func (ProperColoring) Name() string { return "proper-coloring" }

// Radius implements Problem; properness is checkable at radius 1.
func (ProperColoring) Radius() int { return 1 }

// CheckFull reports nodes among the given set with Bot or non-positive
// outputs and conflicting (equal-colored) neighbor pairs. Each conflicting
// edge is reported once, attributed to its lower-id endpoint.
func (ProperColoring) CheckFull(g *graph.Graph, out []Value, nodes []graph.NodeID) []Violation {
	var bad []Violation
	inSet := memberSet(g.N(), nodes)
	for _, v := range nodes {
		switch {
		case out[v] == Bot:
			bad = append(bad, Violation{Node: v, Peer: NoPeer, Reason: "uncolored (⊥) in full solution"})
		case out[v] < 0:
			bad = append(bad, Violation{Node: v, Peer: NoPeer, Reason: fmt.Sprintf("invalid color %d", out[v])})
		}
	}
	for _, v := range nodes {
		if out[v] == Bot {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if v < u && inSet[u] && out[u] == out[v] {
				bad = append(bad, Violation{Node: v, Peer: u,
					Reason: fmt.Sprintf("conflict: both colored %d", out[v])})
			}
		}
	}
	return bad
}

// CheckPartial implements the partial-packing condition: as argued in
// Section 4.1, a vector is partial packing for C_P if and only if the
// colored nodes form a proper coloring (uncolored nodes can always be
// extended greedily with fresh colors).
func (ProperColoring) CheckPartial(g *graph.Graph, out []Value) []Violation {
	var bad []Violation
	g.EachEdge(func(u, v graph.NodeID) {
		if out[u] != Bot && out[u] == out[v] {
			bad = append(bad, Violation{Node: u, Peer: v,
				Reason: fmt.Sprintf("partial conflict: both colored %d", out[u])})
		}
	})
	return bad
}

// DegreeRange is the covering component C_C of the coloring problem: a
// (possibly improper) coloring where node v's color lies in
// {1, …, deg(v)+1} (Section 4). Adding edges only increases degrees, so
// feasibility is preserved under edge addition — a covering problem.
//
// In the dynamic problem this is evaluated on the union graph G^∪T, i.e.
// against the number of distinct neighbors seen during the window.
type DegreeRange struct{}

// Name implements Problem.
func (DegreeRange) Name() string { return "degree+1-range" }

// Radius implements Problem; the condition is unary given the degree.
func (DegreeRange) Radius() int { return 1 }

// CheckFull reports nodes among the given set with Bot outputs or colors
// outside {1, …, deg_g(v)+1}.
func (DegreeRange) CheckFull(g *graph.Graph, out []Value, nodes []graph.NodeID) []Violation {
	var bad []Violation
	for _, v := range nodes {
		if out[v] == Bot {
			bad = append(bad, Violation{Node: v, Peer: NoPeer, Reason: "uncolored (⊥) in full solution"})
			continue
		}
		if bad2 := checkRange(g, out, v); bad2 != nil {
			bad = append(bad, *bad2)
		}
	}
	return bad
}

// CheckPartial implements the partial-covering condition: the range
// condition depends only on v's own color and degree, never on neighbor
// outputs, so it must already hold for every colored node (Section 4.1).
func (DegreeRange) CheckPartial(g *graph.Graph, out []Value) []Violation {
	var bad []Violation
	for v := 0; v < g.N(); v++ {
		if out[v] == Bot {
			continue
		}
		if bad2 := checkRange(g, out, graph.NodeID(v)); bad2 != nil {
			bad = append(bad, *bad2)
		}
	}
	return bad
}

func checkRange(g *graph.Graph, out []Value, v graph.NodeID) *Violation {
	c := out[v]
	limit := Value(g.Degree(v) + 1)
	if c < 1 || c > limit {
		return &Violation{Node: v, Peer: NoPeer,
			Reason: fmt.Sprintf("color %d outside {1,…,%d}", c, limit)}
	}
	return nil
}

func memberSet(n int, nodes []graph.NodeID) []bool {
	in := make([]bool, n)
	for _, v := range nodes {
		in[v] = true
	}
	return in
}
