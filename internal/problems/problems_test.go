package problems

import (
	"strings"
	"testing"
	"testing/quick"

	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
)

func nodes(ids ...graph.NodeID) []graph.NodeID { return ids }

func allIDs(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

func TestProperColoringCheckFull(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	ok := []Value{1, 2, 1, 2}
	if bad := (ProperColoring{}).CheckFull(g, ok, allIDs(4)); len(bad) != 0 {
		t.Fatalf("valid coloring flagged: %v", bad)
	}
	conflict := []Value{1, 1, 2, 1}
	bad := (ProperColoring{}).CheckFull(g, conflict, allIDs(4))
	if len(bad) != 1 || bad[0].Node != 0 || bad[0].Peer != 1 {
		t.Fatalf("conflict not found once: %v", bad)
	}
	withBot := []Value{1, Bot, 1, 2}
	bad = (ProperColoring{}).CheckFull(g, withBot, allIDs(4))
	if len(bad) != 1 || !strings.Contains(bad[0].Reason, "⊥") {
		t.Fatalf("Bot not flagged in full check: %v", bad)
	}
	neg := []Value{-3, 2, 1, 2}
	if bad := (ProperColoring{}).CheckFull(g, neg, allIDs(4)); len(bad) != 1 {
		t.Fatalf("negative color not flagged: %v", bad)
	}
}

func TestProperColoringCheckFullSubset(t *testing.T) {
	g := graph.Path(4)
	out := []Value{1, 1, Bot, Bot} // conflict on {0,1}, Bot outside subset
	bad := (ProperColoring{}).CheckFull(g, out, nodes(0, 1))
	if len(bad) != 1 {
		t.Fatalf("subset check wrong: %v", bad)
	}
	// Conflict against a node outside the subset is not counted.
	out2 := []Value{1, 1, Bot, Bot}
	if bad := (ProperColoring{}).CheckFull(g, out2, nodes(0)); len(bad) != 0 {
		t.Fatalf("out-of-subset conflict counted: %v", bad)
	}
}

func TestProperColoringCheckPartial(t *testing.T) {
	g := graph.Path(4)
	partial := []Value{1, Bot, 1, Bot} // non-adjacent equal colors: fine
	if bad := (ProperColoring{}).CheckPartial(g, partial); len(bad) != 0 {
		t.Fatalf("valid partial flagged: %v", bad)
	}
	conflict := []Value{1, 1, Bot, Bot}
	if bad := (ProperColoring{}).CheckPartial(g, conflict); len(bad) != 1 {
		t.Fatalf("partial conflict missed: %v", bad)
	}
	allBot := []Value{Bot, Bot, Bot, Bot}
	if bad := (ProperColoring{}).CheckPartial(g, allBot); len(bad) != 0 {
		t.Fatalf("all-Bot flagged: %v", bad)
	}
}

func TestDegreeRangeChecks(t *testing.T) {
	g := graph.Star(4) // center 0 has degree 3, leaves degree 1
	ok := []Value{4, 1, 2, 2}
	if bad := (DegreeRange{}).CheckFull(g, ok, allIDs(4)); len(bad) != 0 {
		t.Fatalf("valid range flagged: %v", bad)
	}
	tooBig := []Value{5, 1, 2, 2} // center limit is 4
	if bad := (DegreeRange{}).CheckFull(g, tooBig, allIDs(4)); len(bad) != 1 || bad[0].Node != 0 {
		t.Fatalf("over-range color missed: %v", bad)
	}
	leafTooBig := []Value{1, 3, 1, 1} // leaf limit is 2
	if bad := (DegreeRange{}).CheckFull(g, leafTooBig, allIDs(4)); len(bad) != 1 || bad[0].Node != 1 {
		t.Fatalf("leaf over-range missed: %v", bad)
	}
	// Partial: Bot allowed, colored nodes still range-checked.
	partial := []Value{Bot, 3, Bot, Bot}
	if bad := (DegreeRange{}).CheckPartial(g, partial); len(bad) != 1 {
		t.Fatalf("partial range violation missed: %v", bad)
	}
	if bad := (DegreeRange{}).CheckPartial(g, []Value{Bot, 2, Bot, Bot}); len(bad) != 0 {
		t.Fatalf("valid partial flagged: %v", bad)
	}
	// Full: Bot flagged.
	if bad := (DegreeRange{}).CheckFull(g, partial, allIDs(4)); len(bad) != 4 {
		t.Fatalf("expected 3 Bot + 1 range violations, got %v", bad)
	}
}

func TestIndependentSetChecks(t *testing.T) {
	g := graph.Cycle(5)
	ok := []Value{InMIS, Dominated, InMIS, Dominated, Dominated}
	if bad := (IndependentSet{}).CheckFull(g, ok, allIDs(5)); len(bad) != 0 {
		t.Fatalf("valid IS flagged: %v", bad)
	}
	adj := []Value{InMIS, InMIS, Dominated, Dominated, Dominated}
	if bad := (IndependentSet{}).CheckFull(g, adj, allIDs(5)); len(bad) != 1 {
		t.Fatalf("adjacent MIS pair missed: %v", bad)
	}
	badDomain := []Value{7, Dominated, InMIS, Dominated, Dominated}
	found := false
	for _, b := range (IndependentSet{}).CheckFull(g, badDomain, allIDs(5)) {
		if strings.Contains(b.Reason, "invalid") {
			found = true
		}
	}
	if !found {
		t.Fatal("invalid domain value not flagged")
	}
	// Partial: Bot fine, adjacent InMIS not.
	partial := []Value{InMIS, Bot, Bot, InMIS, Bot}
	if bad := (IndependentSet{}).CheckPartial(g, partial); len(bad) != 0 {
		t.Fatalf("valid partial IS flagged: %v", bad)
	}
	partialBad := []Value{InMIS, InMIS, Bot, Bot, Bot}
	if bad := (IndependentSet{}).CheckPartial(g, partialBad); len(bad) != 1 {
		t.Fatalf("partial adjacent MIS missed: %v", bad)
	}
}

func TestDominatingSetChecks(t *testing.T) {
	g := graph.Cycle(5)
	ok := []Value{InMIS, Dominated, InMIS, Dominated, Dominated}
	if bad := (DominatingSet{}).CheckFull(g, ok, allIDs(5)); len(bad) != 0 {
		t.Fatalf("valid DS flagged: %v", bad)
	}
	// Nodes 2 and 3 dominated but all their neighbors dominated too.
	lonely := []Value{InMIS, Dominated, Dominated, Dominated, Dominated}
	bad := (DominatingSet{}).CheckFull(g, lonely, allIDs(5))
	if len(bad) != 2 || bad[0].Node != 2 || bad[1].Node != 3 {
		t.Fatalf("undominated nodes missed: %v", bad)
	}
	// Bot counted in full solutions (and node 3 then lacks an InMIS
	// neighbor, since its only candidates are Bot and Dominated).
	withBot := []Value{InMIS, Dominated, Bot, Dominated, Dominated}
	if bad := (DominatingSet{}).CheckFull(g, withBot, allIDs(5)); len(bad) != 2 {
		t.Fatalf("Bot missed in full DS check: %v", bad)
	}
	// Partial covering: Dominated needs an InMIS neighbor NOW.
	partialBad := []Value{Bot, Dominated, Bot, Bot, Bot}
	if bad := (DominatingSet{}).CheckPartial(g, partialBad); len(bad) != 1 {
		t.Fatalf("premature Dominated missed: %v", bad)
	}
	partialOK := []Value{InMIS, Dominated, Bot, Bot, Bot}
	if bad := (DominatingSet{}).CheckPartial(g, partialOK); len(bad) != 0 {
		t.Fatalf("valid partial DS flagged: %v", bad)
	}
}

func TestDominationFromOutsideSubsetCounts(t *testing.T) {
	g := graph.Path(3) // 0-1-2
	out := []Value{InMIS, Dominated, InMIS}
	// Checking only node 1: its domination comes from nodes outside the
	// checked subset, which must count.
	if bad := (DominatingSet{}).CheckFull(g, out, nodes(1)); len(bad) != 0 {
		t.Fatalf("outside-subset domination not counted: %v", bad)
	}
}

// Property: the defining closure properties of Definition 3.1.
// Packing solutions survive edge removal; covering solutions survive edge
// addition.
func TestPackingClosedUnderEdgeRemoval(t *testing.T) {
	s := prf.NewStream(7, 0, 0, prf.PurposeWorkload)
	f := func(seed uint16) bool {
		const n = 16
		g := graph.GNP(n, 0.3, s)
		// Greedy proper coloring of g.
		out := greedyColor(g)
		if len((ProperColoring{}).CheckFull(g, out, allIDs(n))) != 0 {
			return false
		}
		// Remove ~half the edges.
		b := graph.NewBuilder(n)
		i := 0
		g.EachEdge(func(u, v graph.NodeID) {
			if i%2 == 0 {
				b.AddEdge(u, v)
			}
			i++
		})
		sub := b.Graph()
		// Packing: still valid on the subgraph.
		return len((ProperColoring{}).CheckFull(sub, out, allIDs(n))) == 0 &&
			len((IndependentSet{}).CheckFull(sub, greedyMIS(g), allIDs(n))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCoveringClosedUnderEdgeAddition(t *testing.T) {
	s := prf.NewStream(8, 0, 0, prf.PurposeWorkload)
	f := func(seed uint16) bool {
		const n = 16
		g := graph.GNP(n, 0.25, s)
		colorOut := greedyColor(g)
		misOut := greedyMIS(g)
		if len((DegreeRange{}).CheckFull(g, colorOut, allIDs(n))) != 0 {
			return false
		}
		if len((DominatingSet{}).CheckFull(g, misOut, allIDs(n))) != 0 {
			return false
		}
		// Add edges.
		b := graph.NewBuilder(n)
		g.EachEdge(b.AddEdge)
		extra := graph.GNP(n, 0.2, s)
		extra.EachEdge(b.AddEdge)
		super := b.Graph()
		return len((DegreeRange{}).CheckFull(super, colorOut, allIDs(n))) == 0 &&
			len((DominatingSet{}).CheckFull(super, misOut, allIDs(n))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPCBundles(t *testing.T) {
	m := MIS()
	if m.Name() != "mis" || m.P.Name() != "independent-set" || m.C.Name() != "dominating-set" {
		t.Fatal("MIS bundle wrong")
	}
	c := Coloring()
	if c.Name() != "degree+1-coloring" || c.P.Radius() != 1 || c.C.Radius() != 1 {
		t.Fatal("coloring bundle wrong")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Node: 3, Peer: NoPeer, Reason: "x"}
	if !strings.Contains(v.String(), "node 3") {
		t.Fatal("unary violation string wrong")
	}
	v2 := Violation{Node: 3, Peer: 4, Reason: "y"}
	if !strings.Contains(v2.String(), "peer 4") {
		t.Fatal("binary violation string wrong")
	}
}

// greedyColor produces a valid (degree+1)-coloring sequentially.
func greedyColor(g *graph.Graph) []Value {
	out := make([]Value, g.N())
	for v := 0; v < g.N(); v++ {
		used := make(map[Value]bool)
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			used[out[u]] = true
		}
		c := Value(1)
		for used[c] {
			c++
		}
		out[v] = c
	}
	return out
}

// greedyMIS produces a valid MIS sequentially.
func greedyMIS(g *graph.Graph) []Value {
	out := make([]Value, g.N())
	for v := 0; v < g.N(); v++ {
		inMIS := true
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if out[u] == InMIS {
				inMIS = false
				break
			}
		}
		if inMIS {
			out[v] = InMIS
		} else {
			out[v] = Dominated
		}
	}
	return out
}
