package problems

import (
	"reflect"
	"testing"

	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
)

// trackerHarness drives a Tracker and, in parallel, a from-scratch
// CheckFull oracle over the same mutating graph and outputs.
type trackerHarness struct {
	n      int
	tr     Tracker
	check  func(g *graph.Graph, out []Value, nodes []graph.NodeID) []Violation
	edges  map[graph.EdgeKey]struct{}
	out    []Value
	active []graph.NodeID // ascending
	isAct  []bool
}

func newTrackerHarness(n int, tr Tracker,
	check func(*graph.Graph, []Value, []graph.NodeID) []Violation) *trackerHarness {
	return &trackerHarness{
		n: n, tr: tr, check: check,
		edges: make(map[graph.EdgeKey]struct{}),
		out:   make([]Value, n),
		isAct: make([]bool, n),
	}
}

func (h *trackerHarness) activate(v graph.NodeID) {
	if h.isAct[v] {
		return
	}
	h.isAct[v] = true
	h.active = nil
	for u := 0; u < h.n; u++ {
		if h.isAct[u] {
			h.active = append(h.active, graph.NodeID(u))
		}
	}
	h.tr.Activate(v)
}

func (h *trackerHarness) toggleEdge(u, v graph.NodeID) {
	k := graph.MakeEdgeKey(u, v)
	if _, ok := h.edges[k]; ok {
		delete(h.edges, k)
		h.tr.EdgeRemoved(u, v)
	} else {
		h.edges[k] = struct{}{}
		h.tr.EdgeAdded(u, v)
	}
}

func (h *trackerHarness) setOut(v graph.NodeID, val Value) {
	if h.out[v] == val {
		return
	}
	h.out[v] = val
	h.tr.OutputChanged(v, val)
}

// dropBot mirrors the T-dynamic checker's filtering of ⊥-node reports.
func dropBot(vs []Violation, out []Value) []Violation {
	var kept []Violation
	for _, v := range vs {
		if out[v.Node] != Bot {
			kept = append(kept, v)
		}
	}
	return kept
}

func (h *trackerHarness) verify(t *testing.T, step int) {
	t.Helper()
	keys := make([]graph.EdgeKey, 0, len(h.edges))
	for k := range h.edges {
		keys = append(keys, k)
	}
	g := graph.FromEdges(h.n, keys)
	want := dropBot(h.check(g, h.out, h.active), h.out)
	got := h.tr.Violations()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("step %d: tracker diverged from CheckFull\ngot  %v\nwant %v\ngraph %s\nout %v\nactive %v",
			step, got, want, g.DebugString(), h.out, h.active)
	}
}

// runTrackerFuzz drives random activation/edge/output events and checks
// tracker output against the CheckFull oracle after every event.
func runTrackerFuzz(t *testing.T, seed uint64, tr Tracker, vals []Value,
	check func(*graph.Graph, []Value, []graph.NodeID) []Violation) {
	t.Helper()
	const n = 14
	const steps = 600
	s := prf.NewStream(seed, 0, 0, prf.PurposeWorkload)
	h := newTrackerHarness(n, tr, check)
	for step := 0; step < steps; step++ {
		switch s.Intn(10) {
		case 0, 1:
			h.activate(graph.NodeID(s.Intn(n)))
		case 2, 3, 4, 5:
			u := graph.NodeID(s.Intn(n))
			v := graph.NodeID(s.Intn(n))
			if u == v {
				continue
			}
			h.toggleEdge(u, v)
		default:
			h.setOut(graph.NodeID(s.Intn(n)), vals[s.Intn(len(vals))])
		}
		h.verify(t, step)
	}
}

func TestIndependentSetTrackerMatchesCheckFull(t *testing.T) {
	vals := []Value{Bot, InMIS, Dominated, 7, -3}
	runTrackerFuzz(t, 11, IndependentSet{}.NewTracker(14), vals,
		IndependentSet{}.CheckFull)
}

func TestDominatingSetTrackerMatchesCheckFull(t *testing.T) {
	vals := []Value{Bot, InMIS, Dominated, 7, -3}
	runTrackerFuzz(t, 12, DominatingSet{}.NewTracker(14), vals,
		DominatingSet{}.CheckFull)
}

func TestProperColoringTrackerMatchesCheckFull(t *testing.T) {
	vals := []Value{Bot, 1, 2, 3, -2}
	runTrackerFuzz(t, 13, ProperColoring{}.NewTracker(14), vals,
		ProperColoring{}.CheckFull)
}

func TestDegreeRangeTrackerMatchesCheckFull(t *testing.T) {
	vals := []Value{Bot, 1, 2, 3, 9, -2}
	runTrackerFuzz(t, 14, DegreeRange{}.NewTracker(14), vals,
		DegreeRange{}.CheckFull)
}

// TestTrackerActivationAfterEdges pins the ordering subtlety of the
// T-dynamic round loop: edge events for a round are delivered before the
// round's core arrivals, so a conflict edge between two nodes activated in
// the same round must still surface.
func TestTrackerActivationAfterEdges(t *testing.T) {
	tr := ProperColoring{}.NewTracker(4)
	tr.OutputChanged(0, 5)
	tr.OutputChanged(1, 5)
	tr.EdgeAdded(0, 1)
	if got := tr.Violations(); got != nil {
		t.Fatalf("violations before activation: %v", got)
	}
	tr.Activate(0)
	if got := tr.Violations(); got != nil {
		t.Fatalf("violations with one active endpoint: %v", got)
	}
	tr.Activate(1)
	got := tr.Violations()
	if len(got) != 1 || got[0].Node != 0 || got[0].Peer != 1 {
		t.Fatalf("conflict after activation = %v", got)
	}
}
