package dyngraph

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"dynlocal/internal/graph"
)

// The delta feed (ObserveEdgeDelta) must be bit-identical to the scan feed
// (Observe over full graphs), which in turn is pinned against the direct
// Definition 2.1 computation by the tests in window_test.go. These tests
// drive both feeds over identical schedules — including staggered
// wake-ups, T boundary rounds and edges flapping on the expiry boundary —
// and compare every emitted Delta, the membership queries, the
// materialized graphs and the stats.

// deltaSchedule maintains a mutable edge set over awake nodes and yields
// consistent (adds, removes, graph) rounds.
type deltaSchedule struct {
	n       int
	present map[graph.EdgeKey]bool
	awake   []bool
}

func newDeltaSchedule(n int) *deltaSchedule {
	return &deltaSchedule{n: n, present: make(map[graph.EdgeKey]bool), awake: make([]bool, n)}
}

// toggle flips edge {u,v} into adds or removes.
func (s *deltaSchedule) round(toggles []graph.EdgeKey) (adds, removes []graph.EdgeKey, g *graph.Graph) {
	seen := make(map[graph.EdgeKey]bool)
	for _, k := range toggles {
		if seen[k] {
			continue
		}
		seen[k] = true
		if s.present[k] {
			delete(s.present, k)
			removes = append(removes, k)
		} else {
			u, v := k.Nodes()
			if !s.awake[u] || !s.awake[v] {
				continue
			}
			s.present[k] = true
			adds = append(adds, k)
		}
	}
	sortEdgeKeys(adds)
	sortEdgeKeys(removes)
	keys := make([]graph.EdgeKey, 0, len(s.present))
	for k := range s.present {
		keys = append(keys, k)
	}
	sortEdgeKeys(keys)
	return adds, removes, graph.FromSortedEdges(s.n, keys)
}

func sortEdgeKeys(ks []graph.EdgeKey) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}

func copyDelta(d *Delta) Delta {
	return Delta{
		Round:        d.Round,
		CoreEntered:  append([]graph.NodeID(nil), d.CoreEntered...),
		CoreLeft:     append([]graph.NodeID(nil), d.CoreLeft...),
		InterAdded:   append([]graph.EdgeKey(nil), d.InterAdded...),
		InterRemoved: append([]graph.EdgeKey(nil), d.InterRemoved...),
		UnionAdded:   append([]graph.EdgeKey(nil), d.UnionAdded...),
		UnionRemoved: append([]graph.EdgeKey(nil), d.UnionRemoved...),
	}
}

func diffWindows(t *testing.T, round int, scan, delta *Window) {
	t.Helper()
	if !scan.IntersectionGraph().Equal(delta.IntersectionGraph()) {
		t.Fatalf("round %d: intersection graphs diverge", round)
	}
	if !scan.UnionGraph().Equal(delta.UnionGraph()) {
		t.Fatalf("round %d: union graphs diverge", round)
	}
	if scan.Stats() != delta.Stats() {
		t.Fatalf("round %d: stats diverge: %+v vs %+v", round, scan.Stats(), delta.Stats())
	}
	sc, dc := scan.CoreNodes(), delta.CoreNodes()
	if !reflect.DeepEqual(sc, dc) {
		t.Fatalf("round %d: core %v vs %v", round, sc, dc)
	}
}

// TestWindowDeltaFeedMatchesScanFeed crosses window sizes (including the
// T=1 boundary where arrival and expiry collapse into the same round) with
// staggered wake-ups and churn-heavy schedules.
func TestWindowDeltaFeedMatchesScanFeed(t *testing.T) {
	for _, T := range []int{1, 2, 3, 5, 8} {
		t.Run(fmt.Sprintf("T=%d", T), func(t *testing.T) {
			const n = 20
			s := wstream(uint64(40 + T))
			sched := newDeltaSchedule(n)
			scan := NewWindow(T, n)
			delta := NewWindow(T, n)
			for round := 1; round <= 6*T+12; round++ {
				// Wake four nodes per round until all are awake — core
				// arrivals then straddle several T boundaries.
				var wake []graph.NodeID
				for i := 0; i < 4; i++ {
					v := graph.NodeID((round-1)*4 + i)
					if int(v) < n {
						wake = append(wake, v)
						sched.awake[v] = true
					}
				}
				var toggles []graph.EdgeKey
				for i := 0; i < 3+s.Intn(8); i++ {
					u := graph.NodeID(s.Intn(n))
					v := graph.NodeID(s.Intn(n))
					if u != v {
						toggles = append(toggles, graph.MakeEdgeKey(u, v))
					}
				}
				adds, removes, g := sched.round(toggles)
				ds := copyDelta(scan.ObserveDelta(g, wake))
				dd := copyDelta(delta.ObserveEdgeDelta(adds, removes, wake))
				if !reflect.DeepEqual(ds, dd) {
					t.Fatalf("round %d: deltas diverge\nscan  %+v\ndelta %+v", round, ds, dd)
				}
				diffWindows(t, round, scan, delta)
			}
		})
	}
}

// TestWindowDeltaFeedExpiryBoundary flaps a single edge so that its
// removal, re-addition and union expiry land exactly on ring-slot reuse
// rounds.
func TestWindowDeltaFeedExpiryBoundary(t *testing.T) {
	const n = 4
	const T = 3
	k := graph.MakeEdgeKey(0, 1)
	addsOf := func(on bool) ([]graph.EdgeKey, []graph.EdgeKey) {
		if on {
			return []graph.EdgeKey{k}, nil
		}
		return nil, []graph.EdgeKey{k}
	}
	// Pattern: on, off, on, off, off, off (expire), on, on, on (inter).
	pattern := []bool{true, false, true, false, false, false, true, true, true, true}
	scan := NewWindow(T, n)
	delta := NewWindow(T, n)
	prevOn := false
	for i, on := range pattern {
		wake := []graph.NodeID{}
		if i == 0 {
			wake = []graph.NodeID{0, 1, 2, 3}
		}
		var g *graph.Graph
		if on {
			g = graph.FromEdges(n, []graph.EdgeKey{k})
		} else {
			g = graph.Empty(n)
		}
		var adds, removes []graph.EdgeKey
		if on != prevOn {
			adds, removes = addsOf(on)
		}
		prevOn = on
		ds := copyDelta(scan.ObserveDelta(g, wake))
		dd := copyDelta(delta.ObserveEdgeDelta(adds, removes, wake))
		if !reflect.DeepEqual(ds, dd) {
			t.Fatalf("step %d: deltas diverge\nscan  %+v\ndelta %+v", i+1, ds, dd)
		}
		diffWindows(t, i+1, scan, delta)
	}
}

// TestWindowFeedModeMixingPanics pins the one-feed-per-window contract.
func TestWindowFeedModeMixingPanics(t *testing.T) {
	w := NewWindow(2, 4)
	w.Observe(graph.Empty(4), []graph.NodeID{0, 1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when mixing feeds")
		}
	}()
	w.ObserveEdgeDelta(nil, nil, nil)
}

// TestWindowDeltaFeedValidation pins the delta feed's input checks.
func TestWindowDeltaFeedValidation(t *testing.T) {
	mk := func() *Window {
		w := NewWindow(2, 4)
		w.ObserveEdgeDelta([]graph.EdgeKey{graph.MakeEdgeKey(0, 1)}, nil, []graph.NodeID{0, 1})
		return w
	}
	cases := []struct {
		name string
		run  func(w *Window)
	}{
		{"sleeping-endpoint", func(w *Window) {
			w.ObserveEdgeDelta([]graph.EdgeKey{graph.MakeEdgeKey(2, 3)}, nil, nil)
		}},
		{"add-present", func(w *Window) {
			w.ObserveEdgeDelta([]graph.EdgeKey{graph.MakeEdgeKey(0, 1)}, nil, nil)
		}},
		{"remove-absent", func(w *Window) {
			w.ObserveEdgeDelta(nil, []graph.EdgeKey{graph.MakeEdgeKey(0, 2)}, nil)
		}},
		{"adds-unsorted", func(w *Window) {
			w.ObserveEdgeDelta([]graph.EdgeKey{graph.MakeEdgeKey(0, 3), graph.MakeEdgeKey(0, 2)}, nil, []graph.NodeID{2, 3})
		}},
		{"key-out-of-range", func(w *Window) {
			w.ObserveEdgeDelta([]graph.EdgeKey{graph.MakeEdgeKey(1, 9)}, nil, nil)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.run(mk())
		})
	}
}

// FuzzWindowDeltaFeed interprets fuzz bytes as a toggle/wake schedule over
// a small universe and requires the delta feed to agree with the scan feed
// on every emitted Delta and on the materialized windows, for fuzzer-chosen
// window sizes.
func FuzzWindowDeltaFeed(f *testing.F) {
	f.Add(uint8(3), []byte{0x01, 0x12, 0x23, 0x05, 0x12, 0xff, 0x30})
	f.Add(uint8(1), []byte{0x10, 0x10, 0x10})
	f.Add(uint8(8), bytes.Repeat([]byte{0x21, 0x43, 0x07}, 20))
	f.Fuzz(func(t *testing.T, tRaw uint8, data []byte) {
		const n = 8
		T := int(tRaw%8) + 1
		sched := newDeltaSchedule(n)
		scan := NewWindow(T, n)
		delta := NewWindow(T, n)
		pos := 0
		for round := 1; round <= 24 && pos < len(data); round++ {
			var wake []graph.NodeID
			var toggles []graph.EdgeKey
			// Consume up to 4 bytes per round: high nibble / low nibble are
			// node ids; equal nibbles wake the node instead of toggling.
			for b := 0; b < 4 && pos < len(data); b++ {
				u := graph.NodeID(data[pos] >> 4 & 7)
				v := graph.NodeID(data[pos] & 7)
				pos++
				if u == v {
					if !sched.awake[u] {
						sched.awake[u] = true
						wake = append(wake, u)
					}
					continue
				}
				toggles = append(toggles, graph.MakeEdgeKey(u, v))
			}
			adds, removes, g := sched.round(toggles)
			ds := copyDelta(scan.ObserveDelta(g, wake))
			dd := copyDelta(delta.ObserveEdgeDelta(adds, removes, wake))
			if !reflect.DeepEqual(ds, dd) {
				t.Fatalf("round %d: deltas diverge\nscan  %+v\ndelta %+v", round, ds, dd)
			}
			if !scan.IntersectionGraph().Equal(delta.IntersectionGraph()) ||
				!scan.UnionGraph().Equal(delta.UnionGraph()) {
				t.Fatalf("round %d: materialized windows diverge", round)
			}
		}
	})
}
