// Package dyngraph maintains the sliding-window views of a dynamic graph
// that define feasibility in the paper (Definition 2.1): the T-intersection
// graph G^∩T_r (edges present throughout the last T rounds, on the node set
// V^∩T_r of nodes awake for at least T rounds) and the T-union graph G^∪T_r
// (edges present at least once in the last T rounds). It also implements the
// δ-fraction generalization sketched as future work in Section 7.2, and a
// binary trace format for recording and replaying dynamic graph sequences.
//
// Window maintenance is incremental and delta-producing: besides answering
// membership queries and materializing the window graphs, Observe reports
// the round-over-round set differences of E^∩T, E^∪T and V^∩T as a Delta.
// Per round the cost is O(|E_r| + |E_{r-1}|) map and merge work plus O(1)
// amortized per topology change — no per-round rescan of the window
// contents. Downstream checkers (internal/verify) consume the deltas to
// maintain violation state in O(changes·Δ) instead of rebuilding and
// rescanning the window graphs, which is the difference between O(#changes)
// and O(n+m) verification per round (cf. the incremental-maintenance
// framing of Censor-Hillel et al., "Fast Deterministic Algorithms for
// Highly-Dynamic Networks").
//
// Delta slices are sorted (ascending edge keys / node ids) and are
// internal buffers reused on the next Observe: observers may iterate
// them during the round but must copy anything they retain — the same
// pooling contract the engine uses for RoundInfo (internal/engine).
// Windows observe the same per-round graphs the engine plays, so a
// checker can drive one window alongside the engine and pair these edge
// deltas with the engine's changed-output feed; internal/verify does
// exactly that, pushing both into the violation trackers of
// internal/problems. The equivalence of both the materialized graphs and
// the emitted deltas with the direct Definition 2.1 computation is
// property-tested against graph.IntersectAll/UnionAll.
package dyngraph

import (
	"fmt"
	"slices"

	"dynlocal/internal/graph"
)

// edgeSpan tracks when an edge was last observed, since when it has been
// observed in every consecutive round, and whether it is currently a member
// of the intersection graph E^∩T.
type edgeSpan struct {
	lastSeen    int
	streakStart int
	inInter     bool
}

// Delta lists the round-over-round changes of the windowed sets after one
// Observe call. All slices are sorted ascending and alias buffers owned by
// the Window: they are valid until the next Observe and must be copied to
// be retained.
//
// CoreLeft is always empty in the paper's model — wake-ups are monotone
// (V_{r-1} ⊆ V_r) and the window start only advances, so V^∩T never loses
// nodes — but is part of the contract so observers need not encode that
// argument themselves.
type Delta struct {
	Round int
	// CoreEntered lists nodes that joined V^∩T_r this round.
	CoreEntered []graph.NodeID
	// CoreLeft lists nodes that left V^∩T_r this round (never in this model).
	CoreLeft []graph.NodeID
	// InterAdded and InterRemoved list edges entering/leaving E^∩T_r.
	InterAdded, InterRemoved []graph.EdgeKey
	// UnionAdded and UnionRemoved list edges entering/leaving E^∪T_r.
	UnionAdded, UnionRemoved []graph.EdgeKey
}

// Window incrementally maintains G^∩T_r and G^∪T_r over an observed round
// sequence. Rounds are 1-based: the first Observe call is round 1 and
// round 0 is the empty graph G_0 = (∅, ∅) of the model.
//
// Invariant: after every Observe, the spans map holds exactly the edges of
// E^∪T_r, and an edgeSpan's inInter flag holds exactly for E^∩T_r.
type Window struct {
	t       int
	n       int
	round   int
	spans   map[graph.EdgeKey]edgeSpan
	wake    []int           // wake[v] = round v woke up, 0 if still asleep
	scratch []graph.EdgeKey // reused by graph materialization

	// Delta machinery. prevEdges holds G_{r-1}'s sorted edge keys;
	// expiry[j%t] holds edges whose presence streak ended in round j —
	// pushed when the edge drops out of the round graph, examined exactly
	// once t rounds later when the streak's last round leaves the union
	// window. byWake buckets woken nodes by wake round; bucket r0 is
	// consumed (the nodes join V^∩T) in round r0+t-1.
	prevEdges []graph.EdgeKey
	curEdges  []graph.EdgeKey
	expiry    [][]graph.EdgeKey
	byWake    map[int][]graph.NodeID
	delta     Delta
}

// NewWindow creates a window of size t >= 1 over a node universe of size n.
func NewWindow(t, n int) *Window {
	if t < 1 {
		panic(fmt.Sprintf("dyngraph: window size %d < 1", t))
	}
	return &Window{
		t:      t,
		n:      n,
		spans:  make(map[graph.EdgeKey]edgeSpan),
		wake:   make([]int, n),
		expiry: make([][]graph.EdgeKey, t),
		byWake: make(map[int][]graph.NodeID),
	}
}

// T returns the window size.
func (w *Window) T() int { return w.t }

// N returns the node-universe size.
func (w *Window) N() int { return w.n }

// Round returns the last observed round (0 before the first Observe).
func (w *Window) Round() int { return w.round }

// windowStart returns r0 = max(0, r-T+1) as in Definition 2.1 (the paper's
// round 0 carries the empty graph G_0 = (∅, ∅); our Observe calls are rounds
// 1, 2, …). When r0 == 0 the window still contains the empty round 0, so
// the intersection graph and the core node set are empty until round T,
// exactly as in the proof of Theorem 1.1 ("If r < T1−1, the graphs G^∩T1_r
// and G^∪T1_r are both empty as no node has been awake for T1 rounds").
func (w *Window) windowStart() int {
	r0 := w.round - w.t + 1
	if r0 < 0 {
		r0 = 0
	}
	return r0
}

// Observe advances the window to the next round with communication graph g
// and the given newly awake nodes. Edges of g incident to nodes that have
// never been woken are rejected with a panic: the model only allows edges
// between awake nodes.
func (w *Window) Observe(g *graph.Graph, wakeNow []graph.NodeID) {
	w.ObserveDelta(g, wakeNow)
}

// ObserveDelta advances the window exactly as Observe and additionally
// reports the membership changes of E^∩T, E^∪T and V^∩T relative to the
// previous round. The returned Delta aliases buffers reused by the next
// Observe call; copy anything retained beyond the round.
func (w *Window) ObserveDelta(g *graph.Graph, wakeNow []graph.NodeID) *Delta {
	if g.N() != w.n {
		panic("dyngraph: graph node space does not match window")
	}
	w.round++
	r := w.round
	d := &w.delta
	d.Round = r
	d.CoreEntered = d.CoreEntered[:0]
	d.CoreLeft = d.CoreLeft[:0]
	d.InterAdded = d.InterAdded[:0]
	d.InterRemoved = d.InterRemoved[:0]
	d.UnionAdded = d.UnionAdded[:0]
	d.UnionRemoved = d.UnionRemoved[:0]

	for _, v := range wakeNow {
		if w.wake[v] == 0 {
			w.wake[v] = r
			w.byWake[r] = append(w.byWake[r], v)
		}
	}

	r0 := w.windowStart()
	// The union window of round r-1 was [max(1, r-t), r-1]: an edge whose
	// lastSeen is below prevUnionLow was not in E^∪T_{r-1}.
	prevUnionLow := r - w.t
	if prevUnionLow < 1 {
		prevUnionLow = 1
	}

	cur := w.curEdges[:0]
	g.EachEdge(func(u, v graph.NodeID) {
		if w.wake[u] == 0 || w.wake[v] == 0 {
			panic(fmt.Sprintf("dyngraph: edge {%d,%d} touches a sleeping node in round %d", u, v, r))
		}
		k := graph.MakeEdgeKey(u, v)
		cur = append(cur, k)
		sp, ok := w.spans[k]
		if !ok || sp.lastSeen != r-1 {
			sp.streakStart = r
		}
		if !ok || sp.lastSeen < prevUnionLow {
			d.UnionAdded = append(d.UnionAdded, k)
		}
		if r >= w.t && sp.streakStart <= r0 && !sp.inInter {
			sp.inInter = true
			d.InterAdded = append(d.InterAdded, k)
		}
		sp.lastSeen = r
		w.spans[k] = sp
	})

	// Edges of G_{r-1} missing from G_r: their presence streak ended in
	// round r-1, which breaks intersection membership now and schedules
	// union expiry for round r-1+t. Both lists are sorted, so a two-pointer
	// merge finds the difference without allocation.
	push := w.expiry[(r-1)%w.t]
	j := 0
	for _, k := range w.prevEdges {
		for j < len(cur) && cur[j] < k {
			j++
		}
		if j < len(cur) && cur[j] == k {
			continue
		}
		if sp := w.spans[k]; sp.inInter {
			sp.inInter = false
			w.spans[k] = sp
			d.InterRemoved = append(d.InterRemoved, k)
		}
		push = append(push, k)
	}
	w.expiry[(r-1)%w.t] = push

	// Union expiry: edges whose last streak ended in round r-t leave E^∪T
	// now. Entries whose edge was re-observed since are stale (the live
	// entry sits in a younger slot) and are skipped by the lastSeen check.
	// An edge re-observed in round r itself was updated above, so it fails
	// the check too — the scan order matters.
	slot := w.expiry[r%w.t]
	if len(slot) > 0 {
		for _, k := range slot {
			if sp, ok := w.spans[k]; ok && sp.lastSeen == r-w.t {
				delete(w.spans, k)
				d.UnionRemoved = append(d.UnionRemoved, k)
			}
		}
		w.expiry[r%w.t] = slot[:0]
	}

	// Core arrivals: nodes woken in round r0 have now been awake for t
	// rounds. r0 advances by exactly one per round once r >= t, so every
	// wake bucket is consumed exactly once.
	if r >= w.t {
		if nodes := w.byWake[r0]; len(nodes) > 0 {
			slices.Sort(nodes)
			d.CoreEntered = append(d.CoreEntered, nodes...)
			delete(w.byWake, r0)
		}
	}

	w.prevEdges, w.curEdges = cur, w.prevEdges
	return d
}

// AwakeSince reports the round node v woke up, or 0 if asleep.
func (w *Window) AwakeSince(v graph.NodeID) int { return w.wake[v] }

// CoreNodes returns V^∩T_r: the nodes awake in every round of the current
// window. Because the paper's round 0 has V_0 = ∅, the set is empty until
// round T. Sorted ascending.
func (w *Window) CoreNodes() []graph.NodeID {
	r0 := w.windowStart()
	if r0 < 1 {
		return nil
	}
	var out []graph.NodeID
	for v := 0; v < w.n; v++ {
		if w.wake[v] != 0 && w.wake[v] <= r0 {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// InCore reports whether v ∈ V^∩T_r.
func (w *Window) InCore(v graph.NodeID) bool {
	r0 := w.windowStart()
	return r0 >= 1 && w.wake[v] != 0 && w.wake[v] <= r0
}

// InIntersection reports whether {u,v} ∈ E^∩T_r. Empty until round T
// (the window still contains the paper's empty round 0 before that).
func (w *Window) InIntersection(u, v graph.NodeID) bool {
	if u == v {
		return false
	}
	return w.spans[graph.MakeEdgeKey(u, v)].inInter
}

// InUnion reports whether {u,v} ∈ E^∪T_r.
func (w *Window) InUnion(u, v graph.NodeID) bool {
	if u == v {
		return false
	}
	_, ok := w.spans[graph.MakeEdgeKey(u, v)]
	return ok
}

// IntersectionGraph materializes G^∩T_r (empty before round T). The key
// scratch buffer is reused across calls; the returned graph is fresh.
func (w *Window) IntersectionGraph() *graph.Graph {
	keys := w.scratch[:0]
	for k, sp := range w.spans {
		if sp.inInter {
			keys = append(keys, k)
		}
	}
	w.scratch = keys
	return graph.FromEdges(w.n, keys)
}

// UnionGraph materializes G^∪T_r (all edges seen within the window; the
// covering checker evaluates it on CoreNodes, matching Definition 2.1's
// vertex set V^∩T_r).
func (w *Window) UnionGraph() *graph.Graph {
	keys := w.scratch[:0]
	for k := range w.spans {
		keys = append(keys, k)
	}
	w.scratch = keys
	return graph.FromEdges(w.n, keys)
}

// Full reports whether the window spans t observed rounds, i.e. whether
// guarantees that need a full window are in force.
func (w *Window) Full() bool { return w.round >= w.t }

// Stats summarizes the current window; used by experiment reporting.
type Stats struct {
	Round             int
	CoreNodes         int
	IntersectionEdges int
	UnionEdges        int
}

// Stats computes the current summary.
func (w *Window) Stats() Stats {
	st := Stats{Round: w.round, UnionEdges: len(w.spans)}
	for _, sp := range w.spans {
		if sp.inInter {
			st.IntersectionEdges++
		}
	}
	st.CoreNodes = len(w.CoreNodes())
	return st
}
