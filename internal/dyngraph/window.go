// Package dyngraph maintains the sliding-window views of a dynamic graph
// that define feasibility in the paper (Definition 2.1): the T-intersection
// graph G^∩T_r (edges present throughout the last T rounds, on the node set
// V^∩T_r of nodes awake for at least T rounds) and the T-union graph G^∪T_r
// (edges present at least once in the last T rounds). It also implements the
// δ-fraction generalization sketched as future work in Section 7.2, and a
// binary trace format for recording and replaying dynamic graph sequences.
//
// Window maintenance is delta-native: the windowed sets are maintained from
// per-round edge add/remove events, via streak bookkeeping and two ring
// buffers (scheduled intersection arrivals and union expiries), so the cost
// of a round is O(|adds| + |removes|) — it scales with how much the
// topology changed, not with how large the round graph is. Two feeds drive
// the same core:
//
//   - ObserveEdgeDelta(adds, removes, wakeNow) consumes a sorted topology
//     diff directly — the feed used when the adversary/engine pipeline is
//     delta-native (engine.RoundInfo.EdgeAdds/EdgeRemoves) — and does no
//     per-round work proportional to |E_r| at all.
//   - Observe/ObserveDelta(g, wakeNow) accept a full round graph and
//     recover the diff with one linear merge over the sorted edge-key
//     views (graph.EdgeKeys) of consecutive rounds, O(|E_r| + |E_{r-1}|).
//     This scan feed is the oracle path the delta feed is property-tested
//     against.
//
// A window must stay on one feed style for its lifetime (mixing panics):
// the scan feed keeps the previous round's edge list for diffing, which
// the delta feed deliberately does not maintain.
//
// Besides answering membership queries and materializing the window
// graphs, both feeds report the round-over-round set differences of E^∩T,
// E^∪T and V^∩T as a Delta. Downstream checkers (internal/verify) consume
// the deltas to maintain violation state in O(changes·Δ) instead of
// rebuilding and rescanning the window graphs, which is the difference
// between O(#changes) and O(n+m) verification per round (cf. the
// incremental-maintenance framing of Censor-Hillel et al., "Fast
// Deterministic Algorithms for Highly-Dynamic Networks").
//
// Delta slices are sorted (ascending edge keys / node ids) and are
// internal buffers reused on the next Observe: observers may iterate
// them during the round but must copy anything they retain — the same
// pooling contract the engine uses for RoundInfo (internal/engine).
// Windows observe the same per-round topology the engine plays, so a
// checker can drive one window alongside the engine and pair these edge
// deltas with the engine's changed-output feed; internal/verify does
// exactly that, pushing both into the violation trackers of
// internal/problems. The equivalence of both the materialized graphs and
// the emitted deltas with the direct Definition 2.1 computation is
// property-tested against graph.IntersectAll/UnionAll, and the delta feed
// against the scan feed.
package dyngraph

import (
	"fmt"
	"slices"

	"dynlocal/internal/graph"
)

// edgeSpan tracks an edge's presence streak: whether it is in the current
// round graph, when its current/most recent streak started, when it was
// last present (maintained only while absent — for a present edge the last
// round seen is implicitly the current round), and whether it is currently
// a member of the intersection graph E^∩T.
type edgeSpan struct {
	present     bool
	lastSeen    int
	streakStart int
	inInter     bool
}

// Delta lists the round-over-round changes of the windowed sets after one
// Observe call. All slices are sorted ascending and alias buffers owned by
// the Window: they are valid until the next Observe and must be copied to
// be retained.
//
// CoreLeft is always empty in the paper's model — wake-ups are monotone
// (V_{r-1} ⊆ V_r) and the window start only advances, so V^∩T never loses
// nodes — but is part of the contract so observers need not encode that
// argument themselves.
//
//dynlint:loan
type Delta struct {
	Round int
	// CoreEntered lists nodes that joined V^∩T_r this round.
	CoreEntered []graph.NodeID
	// CoreLeft lists nodes that left V^∩T_r this round (never in this model).
	CoreLeft []graph.NodeID
	// InterAdded and InterRemoved list edges entering/leaving E^∩T_r.
	InterAdded, InterRemoved []graph.EdgeKey
	// UnionAdded and UnionRemoved list edges entering/leaving E^∪T_r.
	UnionAdded, UnionRemoved []graph.EdgeKey
}

// Feed styles a Window can be driven by; fixed at the first observation.
const (
	feedUnset = iota
	feedGraph // Observe/ObserveDelta: full graphs, diff recovered by merge
	feedDelta // ObserveEdgeDelta: caller-supplied sorted diffs
)

// Window incrementally maintains G^∩T_r and G^∪T_r over an observed round
// sequence. Rounds are 1-based: the first observation is round 1 and
// round 0 is the empty graph G_0 = (∅, ∅) of the model.
//
// Invariant: after every observation, the spans map holds exactly the
// edges of E^∪T_r (present edges are always union members), and an
// edgeSpan's inInter flag holds exactly for E^∩T_r.
type Window struct {
	t       int
	n       int
	round   int
	mode    int
	spans   map[graph.EdgeKey]edgeSpan
	wake    []int           // wake[v] = round v woke up, 0 if still asleep
	scratch []graph.EdgeKey // reused by graph materialization

	// Ring buffers, both with one slot per window offset. expiry[j%t]
	// holds edges whose presence streak ended in round j — pushed when the
	// edge drops out of the round graph, examined exactly once t rounds
	// later when the streak's last round leaves the union window.
	// pending[(a+t-1)%t] holds edges whose streak started in round a —
	// examined in round a+t-1, when an unbroken streak has covered the
	// whole window and the edge joins E^∩T. byWake buckets woken nodes by
	// wake round; bucket r0 is consumed (the nodes join V^∩T) in round
	// r0+t-1.
	expiry  [][]graph.EdgeKey
	pending [][]graph.EdgeKey
	byWake  map[int][]graph.NodeID
	delta   Delta

	// Scan-feed state: the previous round's sorted edge list and the
	// diff scratch buffers. Maintained only under feedGraph.
	prevEdges []graph.EdgeKey
	curEdges  []graph.EdgeKey
	addBuf    []graph.EdgeKey
	remBuf    []graph.EdgeKey

	// Delta-checkpoint tracking (see checkpoint.go), enabled by the first
	// NoteCheckpoint call: which spans, wake entries, ring slots and wake
	// buckets moved since the last noted checkpoint record. Windows that
	// never join a checkpoint chain pay nothing — every mark site is
	// guarded by track.
	track        bool
	dirtySpans   map[graph.EdgeKey]struct{}
	dirtyWake    []graph.NodeID
	dirtyExpiry  []bool
	dirtyPending []bool
	dirtyByWake  map[int]struct{}
}

// NewWindow creates a window of size t >= 1 over a node universe of size n.
func NewWindow(t, n int) *Window {
	if t < 1 {
		panic(fmt.Sprintf("dyngraph: window size %d < 1", t))
	}
	return &Window{
		t:       t,
		n:       n,
		spans:   make(map[graph.EdgeKey]edgeSpan),
		wake:    make([]int, n),
		expiry:  make([][]graph.EdgeKey, t),
		pending: make([][]graph.EdgeKey, t),
		byWake:  make(map[int][]graph.NodeID),
	}
}

// T returns the window size.
func (w *Window) T() int { return w.t }

// N returns the node-universe size.
func (w *Window) N() int { return w.n }

// Round returns the last observed round (0 before the first Observe).
func (w *Window) Round() int { return w.round }

// windowStart returns r0 = max(0, r-T+1) as in Definition 2.1 (the paper's
// round 0 carries the empty graph G_0 = (∅, ∅); our Observe calls are rounds
// 1, 2, …). When r0 == 0 the window still contains the empty round 0, so
// the intersection graph and the core node set are empty until round T,
// exactly as in the proof of Theorem 1.1 ("If r < T1−1, the graphs G^∩T1_r
// and G^∪T1_r are both empty as no node has been awake for T1 rounds").
func (w *Window) windowStart() int {
	r0 := w.round - w.t + 1
	if r0 < 0 {
		r0 = 0
	}
	return r0
}

// setMode pins the feed style on first use; mixing feeds panics because
// the scan feed's previous-round edge list is not maintained by the delta
// feed (keeping it current would re-introduce the O(|E_r|) merge the delta
// feed exists to avoid).
func (w *Window) setMode(mode int) {
	if w.mode == feedUnset {
		w.mode = mode
		return
	}
	if w.mode != mode {
		panic("dyngraph: a Window must be fed either graphs (Observe) or diffs (ObserveEdgeDelta), not both")
	}
}

// Observe advances the window to the next round with communication graph g
// and the given newly awake nodes. Edges of g incident to nodes that have
// never been woken are rejected with a panic: the model only allows edges
// between awake nodes.
func (w *Window) Observe(g *graph.Graph, wakeNow []graph.NodeID) {
	w.ObserveDelta(g, wakeNow)
}

// ObserveDelta advances the window exactly as Observe and additionally
// reports the membership changes of E^∩T, E^∪T and V^∩T relative to the
// previous round. The returned Delta aliases buffers reused by the next
// Observe call; copy anything retained beyond the round.
//
// This is the scan feed: the round's topology diff is recovered with one
// linear merge over the sorted edge lists of consecutive rounds. Callers
// that already hold the diff — anything driven by the engine's
// RoundInfo.EdgeAdds/EdgeRemoves — should use ObserveEdgeDelta, which
// does O(changes) work instead.
func (w *Window) ObserveDelta(g *graph.Graph, wakeNow []graph.NodeID) *Delta {
	if g.N() != w.n {
		panic("dyngraph: graph node space does not match window")
	}
	w.setMode(feedGraph)
	cur := append(w.curEdges[:0], g.EdgeKeys()...)
	adds, removes := graph.DiffSortedKeys(w.prevEdges, cur, w.addBuf[:0], w.remBuf[:0])
	w.addBuf, w.remBuf = adds, removes
	d := w.advance(adds, removes, wakeNow, false)
	w.prevEdges, w.curEdges = cur, w.prevEdges
	return d
}

// ObserveEdgeDelta advances the window by a sorted topology diff instead
// of a full graph: adds and removes must be strictly ascending edge-key
// lists describing exactly the edges entering and leaving the round graph
// relative to the previous round (for the first observation, adds is the
// entire round-1 edge set). This is the delta feed of the topology plane:
// per-round cost is O(|adds| + |removes| + |wakeNow|) — independent of
// |E_r| — and the emitted Delta is bit-identical to what the scan feed
// produces for the same round sequence. Added edges must only touch awake
// nodes (after wakeNow is applied); violations panic as in Observe.
//
//dynlint:sorted adds removes
func (w *Window) ObserveEdgeDelta(adds, removes []graph.EdgeKey, wakeNow []graph.NodeID) *Delta {
	w.setMode(feedDelta)
	return w.advance(adds, removes, wakeNow, true)
}

// advance is the shared delta core. checkSorted additionally validates
// the ordering of caller-supplied diffs (the scan feed's merge emits
// sorted lists by construction).
func (w *Window) advance(adds, removes []graph.EdgeKey, wakeNow []graph.NodeID, checkSorted bool) *Delta {
	w.round++
	r := w.round
	d := &w.delta
	d.Round = r
	d.CoreEntered = d.CoreEntered[:0]
	d.CoreLeft = d.CoreLeft[:0]
	d.InterAdded = d.InterAdded[:0]
	d.InterRemoved = d.InterRemoved[:0]
	d.UnionAdded = d.UnionAdded[:0]
	d.UnionRemoved = d.UnionRemoved[:0]

	for _, v := range wakeNow {
		if w.wake[v] == 0 {
			w.wake[v] = r
			w.byWake[r] = append(w.byWake[r], v)
			if w.track {
				w.dirtyWake = append(w.dirtyWake, v)
				w.dirtyByWake[r] = struct{}{}
			}
		}
	}

	// Edges entering G_r: fresh streak, union membership (spans holds
	// exactly E^∪T, so presence in the map is the membership test), and a
	// scheduled intersection arrival t-1 rounds out. Edges that persist
	// from G_{r-1} are never touched — that is the whole point.
	pend := w.pending[(r+w.t-1)%w.t]
	for i, k := range adds {
		if checkSorted && i > 0 && adds[i-1] >= k {
			panicUnsorted("adds")
		}
		u, v := k.Nodes()
		if u < 0 || u >= v || int(v) >= w.n {
			panic(fmt.Sprintf("dyngraph: edge key %s outside universe [0,%d)", k, w.n))
		}
		if w.wake[u] == 0 || w.wake[v] == 0 {
			panicSleepingEdge(u, v, r)
		}
		sp, ok := w.spans[k]
		if ok && sp.present {
			panic(fmt.Sprintf("dyngraph: add of already-present edge %s in round %d", k, r))
		}
		if !ok {
			d.UnionAdded = append(d.UnionAdded, k)
		}
		sp.present = true
		sp.streakStart = r
		w.spans[k] = sp
		pend = append(pend, k)
		if w.track {
			w.dirtySpans[k] = struct{}{}
		}
	}
	w.pending[(r+w.t-1)%w.t] = pend
	if w.track && len(adds) > 0 {
		w.dirtyPending[(r+w.t-1)%w.t] = true
	}

	// Edges leaving G_r: the streak ended in round r-1, which breaks
	// intersection membership now and schedules union expiry for round
	// r-1+t.
	push := w.expiry[(r-1)%w.t]
	for i, k := range removes {
		if checkSorted && i > 0 && removes[i-1] >= k {
			panicUnsorted("removes")
		}
		sp, ok := w.spans[k]
		if !ok || !sp.present {
			panic(fmt.Sprintf("dyngraph: remove of absent edge %s in round %d", k, r))
		}
		sp.present = false
		sp.lastSeen = r - 1
		if sp.inInter {
			sp.inInter = false
			d.InterRemoved = append(d.InterRemoved, k)
		}
		w.spans[k] = sp
		push = append(push, k)
		if w.track {
			w.dirtySpans[k] = struct{}{}
		}
	}
	w.expiry[(r-1)%w.t] = push
	if w.track && len(removes) > 0 {
		w.dirtyExpiry[(r-1)%w.t] = true
	}

	// Union expiry: edges whose last streak ended in round r-t leave E^∪T
	// now. Entries whose edge was re-observed since are stale (present, or
	// a younger expiry entry exists) and are skipped by the checks. Each
	// slot holds exactly one round's removals, so the emitted list is
	// sorted.
	slot := w.expiry[r%w.t]
	if len(slot) > 0 {
		for _, k := range slot {
			if sp, ok := w.spans[k]; ok && !sp.present && sp.lastSeen == r-w.t {
				delete(w.spans, k)
				d.UnionRemoved = append(d.UnionRemoved, k)
				if w.track {
					w.dirtySpans[k] = struct{}{}
				}
			}
		}
		w.expiry[r%w.t] = slot[:0]
		if w.track {
			w.dirtyExpiry[r%w.t] = true
		}
	}

	// Intersection arrivals: edges whose streak started in round r-t+1
	// have now been present in every round the window spans (including
	// the paper's empty round 0 constraint: a streak from round a enters
	// at a+t-1 >= t). Stale entries — streak broken or restarted since —
	// fail the streakStart check. One round's additions per slot, so the
	// emitted list is sorted.
	pslot := w.pending[r%w.t]
	if len(pslot) > 0 {
		a0 := r - w.t + 1
		for _, k := range pslot {
			if sp, ok := w.spans[k]; ok && sp.present && sp.streakStart == a0 && !sp.inInter {
				sp.inInter = true
				w.spans[k] = sp
				d.InterAdded = append(d.InterAdded, k)
				if w.track {
					w.dirtySpans[k] = struct{}{}
				}
			}
		}
		w.pending[r%w.t] = pslot[:0]
		if w.track {
			w.dirtyPending[r%w.t] = true
		}
	}

	// Core arrivals: nodes woken in round r0 have now been awake for t
	// rounds. r0 advances by exactly one per round once r >= t, so every
	// wake bucket is consumed exactly once.
	if r >= w.t {
		r0 := w.windowStart()
		if nodes := w.byWake[r0]; len(nodes) > 0 {
			slices.Sort(nodes)
			d.CoreEntered = append(d.CoreEntered, nodes...)
			delete(w.byWake, r0)
			if w.track {
				w.dirtyByWake[r0] = struct{}{}
			}
		}
	}
	return d
}

// panicSleepingEdge is the cold path for model violations, hoisted out of
// the add loop so the hot path carries no fmt machinery.
func panicSleepingEdge(u, v graph.NodeID, r int) {
	panic(fmt.Sprintf("dyngraph: edge {%d,%d} touches a sleeping node in round %d", u, v, r))
}

// panicUnsorted is the cold path for unordered caller-supplied diffs.
func panicUnsorted(which string) {
	panic("dyngraph: ObserveEdgeDelta " + which + " not strictly ascending")
}

// AwakeSince reports the round node v woke up, or 0 if asleep.
func (w *Window) AwakeSince(v graph.NodeID) int { return w.wake[v] }

// CoreNodes returns V^∩T_r: the nodes awake in every round of the current
// window. Because the paper's round 0 has V_0 = ∅, the set is empty until
// round T. Sorted ascending.
func (w *Window) CoreNodes() []graph.NodeID {
	r0 := w.windowStart()
	if r0 < 1 {
		return nil
	}
	var out []graph.NodeID
	for v := 0; v < w.n; v++ {
		if w.wake[v] != 0 && w.wake[v] <= r0 {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// InCore reports whether v ∈ V^∩T_r.
func (w *Window) InCore(v graph.NodeID) bool {
	r0 := w.windowStart()
	return r0 >= 1 && w.wake[v] != 0 && w.wake[v] <= r0
}

// InIntersection reports whether {u,v} ∈ E^∩T_r. Empty until round T
// (the window still contains the paper's empty round 0 before that).
func (w *Window) InIntersection(u, v graph.NodeID) bool {
	if u == v {
		return false
	}
	return w.spans[graph.MakeEdgeKey(u, v)].inInter
}

// InUnion reports whether {u,v} ∈ E^∪T_r.
func (w *Window) InUnion(u, v graph.NodeID) bool {
	if u == v {
		return false
	}
	_, ok := w.spans[graph.MakeEdgeKey(u, v)]
	return ok
}

// IntersectionGraph materializes G^∩T_r (empty before round T). The key
// scratch buffer is reused across calls; the returned graph is fresh.
func (w *Window) IntersectionGraph() *graph.Graph {
	keys := w.scratch[:0]
	for k, sp := range w.spans {
		if sp.inInter {
			keys = append(keys, k)
		}
	}
	w.scratch = keys
	return graph.FromEdges(w.n, keys)
}

// UnionGraph materializes G^∪T_r (all edges seen within the window; the
// covering checker evaluates it on CoreNodes, matching Definition 2.1's
// vertex set V^∩T_r).
func (w *Window) UnionGraph() *graph.Graph {
	keys := w.scratch[:0]
	for k := range w.spans {
		keys = append(keys, k)
	}
	w.scratch = keys
	return graph.FromEdges(w.n, keys)
}

// Full reports whether the window spans t observed rounds, i.e. whether
// guarantees that need a full window are in force.
func (w *Window) Full() bool { return w.round >= w.t }

// Stats summarizes the current window; used by experiment reporting.
type Stats struct {
	Round             int
	CoreNodes         int
	IntersectionEdges int
	UnionEdges        int
}

// Stats computes the current summary.
func (w *Window) Stats() Stats {
	st := Stats{Round: w.round, UnionEdges: len(w.spans)}
	for _, sp := range w.spans {
		if sp.inInter {
			st.IntersectionEdges++
		}
	}
	st.CoreNodes = len(w.CoreNodes())
	return st
}
