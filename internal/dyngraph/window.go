// Package dyngraph maintains the sliding-window views of a dynamic graph
// that define feasibility in the paper (Definition 2.1): the T-intersection
// graph G^∩T_r (edges present throughout the last T rounds, on the node set
// V^∩T_r of nodes awake for at least T rounds) and the T-union graph G^∪T_r
// (edges present at least once in the last T rounds). It also implements the
// δ-fraction generalization sketched as future work in Section 7.2, and a
// binary trace format for recording and replaying dynamic graph sequences.
//
// Window maintenance is incremental: per round the cost is O(|E_r|) map
// updates plus an amortized purge, rather than recomputing intersections and
// unions of T graphs. The equivalence with the direct Definition 2.1
// computation is property-tested against graph.IntersectAll/UnionAll.
package dyngraph

import (
	"fmt"

	"dynlocal/internal/graph"
)

// edgeSpan tracks when an edge was last observed and since when it has been
// observed in every consecutive round.
type edgeSpan struct {
	lastSeen    int
	streakStart int
}

// Window incrementally maintains G^∩T_r and G^∪T_r over an observed round
// sequence. Rounds are 1-based: the first Observe call is round 1 and
// round 0 is the empty graph G_0 = (∅, ∅) of the model.
type Window struct {
	t         int
	n         int
	round     int
	spans     map[graph.EdgeKey]edgeSpan
	wake      []int // wake[v] = round v woke up, 0 if still asleep
	lastPurge int
	scratch   []graph.EdgeKey // reused by graph materialization
}

// NewWindow creates a window of size t >= 1 over a node universe of size n.
func NewWindow(t, n int) *Window {
	if t < 1 {
		panic(fmt.Sprintf("dyngraph: window size %d < 1", t))
	}
	return &Window{t: t, n: n, spans: make(map[graph.EdgeKey]edgeSpan), wake: make([]int, n)}
}

// T returns the window size.
func (w *Window) T() int { return w.t }

// N returns the node-universe size.
func (w *Window) N() int { return w.n }

// Round returns the last observed round (0 before the first Observe).
func (w *Window) Round() int { return w.round }

// windowStart returns r0 = max(0, r-T+1) as in Definition 2.1 (the paper's
// round 0 carries the empty graph G_0 = (∅, ∅); our Observe calls are rounds
// 1, 2, …). When r0 == 0 the window still contains the empty round 0, so
// the intersection graph and the core node set are empty until round T,
// exactly as in the proof of Theorem 1.1 ("If r < T1−1, the graphs G^∩T1_r
// and G^∪T1_r are both empty as no node has been awake for T1 rounds").
func (w *Window) windowStart() int {
	r0 := w.round - w.t + 1
	if r0 < 0 {
		r0 = 0
	}
	return r0
}

// Observe advances the window to the next round with communication graph g
// and the given newly awake nodes. Edges of g incident to nodes that have
// never been woken are rejected with a panic: the model only allows edges
// between awake nodes.
func (w *Window) Observe(g *graph.Graph, wakeNow []graph.NodeID) {
	if g.N() != w.n {
		panic("dyngraph: graph node space does not match window")
	}
	w.round++
	r := w.round
	for _, v := range wakeNow {
		if w.wake[v] == 0 {
			w.wake[v] = r
		}
	}
	g.EachEdge(func(u, v graph.NodeID) {
		if w.wake[u] == 0 || w.wake[v] == 0 {
			panic(fmt.Sprintf("dyngraph: edge {%d,%d} touches a sleeping node in round %d", u, v, r))
		}
		k := graph.MakeEdgeKey(u, v)
		sp, ok := w.spans[k]
		if !ok || sp.lastSeen != r-1 {
			sp.streakStart = r
		}
		sp.lastSeen = r
		w.spans[k] = sp
	})
	// Amortized purge of edges that fell out of every possible window.
	if r-w.lastPurge >= w.t {
		w.purge()
		w.lastPurge = r
	}
}

func (w *Window) purge() {
	r0 := w.windowStart()
	if r0 < 1 {
		r0 = 1
	}
	for k, sp := range w.spans {
		if sp.lastSeen < r0 {
			delete(w.spans, k)
		}
	}
}

// AwakeSince reports the round node v woke up, or 0 if asleep.
func (w *Window) AwakeSince(v graph.NodeID) int { return w.wake[v] }

// CoreNodes returns V^∩T_r: the nodes awake in every round of the current
// window. Because the paper's round 0 has V_0 = ∅, the set is empty until
// round T. Sorted ascending.
func (w *Window) CoreNodes() []graph.NodeID {
	r0 := w.windowStart()
	if r0 < 1 {
		return nil
	}
	var out []graph.NodeID
	for v := 0; v < w.n; v++ {
		if w.wake[v] != 0 && w.wake[v] <= r0 {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// InCore reports whether v ∈ V^∩T_r.
func (w *Window) InCore(v graph.NodeID) bool {
	r0 := w.windowStart()
	return r0 >= 1 && w.wake[v] != 0 && w.wake[v] <= r0
}

// InIntersection reports whether {u,v} ∈ E^∩T_r. Empty until round T
// (the window still contains the paper's empty round 0 before that).
func (w *Window) InIntersection(u, v graph.NodeID) bool {
	if u == v || w.round < w.t {
		return false
	}
	sp, ok := w.spans[graph.MakeEdgeKey(u, v)]
	return ok && sp.lastSeen == w.round && sp.streakStart <= w.windowStart()
}

// InUnion reports whether {u,v} ∈ E^∪T_r.
func (w *Window) InUnion(u, v graph.NodeID) bool {
	if u == v {
		return false
	}
	sp, ok := w.spans[graph.MakeEdgeKey(u, v)]
	r0 := w.windowStart()
	if r0 < 1 {
		r0 = 1
	}
	return ok && sp.lastSeen >= r0
}

// IntersectionGraph materializes G^∩T_r (empty before round T). The key
// scratch buffer is reused across calls; the returned graph is fresh.
func (w *Window) IntersectionGraph() *graph.Graph {
	if w.round < w.t {
		return graph.Empty(w.n)
	}
	r0 := w.windowStart()
	keys := w.scratch[:0]
	for k, sp := range w.spans {
		if sp.lastSeen == w.round && sp.streakStart <= r0 {
			keys = append(keys, k)
		}
	}
	w.scratch = keys
	return graph.FromEdges(w.n, keys)
}

// UnionGraph materializes G^∪T_r (all edges seen within the window; the
// covering checker evaluates it on CoreNodes, matching Definition 2.1's
// vertex set V^∩T_r).
func (w *Window) UnionGraph() *graph.Graph {
	r0 := w.windowStart()
	if r0 < 1 {
		r0 = 1
	}
	keys := w.scratch[:0]
	for k, sp := range w.spans {
		if sp.lastSeen >= r0 {
			keys = append(keys, k)
		}
	}
	w.scratch = keys
	return graph.FromEdges(w.n, keys)
}

// Full reports whether the window spans t observed rounds, i.e. whether
// guarantees that need a full window are in force.
func (w *Window) Full() bool { return w.round >= w.t }

// Stats summarizes the current window; used by experiment reporting.
type Stats struct {
	Round             int
	CoreNodes         int
	IntersectionEdges int
	UnionEdges        int
}

// Stats computes the current summary.
func (w *Window) Stats() Stats {
	r0 := w.windowStart()
	full := w.round >= w.t
	if r0 < 1 {
		r0 = 1
	}
	st := Stats{Round: w.round}
	for _, sp := range w.spans {
		if sp.lastSeen >= r0 {
			st.UnionEdges++
			if full && sp.lastSeen == w.round && sp.streakStart <= r0 {
				st.IntersectionEdges++
			}
		}
	}
	st.CoreNodes = len(w.CoreNodes())
	return st
}
