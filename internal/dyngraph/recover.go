package dyngraph

import (
	"fmt"
	"io"
)

// RecoverTrace salvages a possibly-torn trace recording: it scans src for
// the longest decodable round prefix — a crash mid-write leaves the file
// truncated anywhere, including inside a varint — then re-encodes exactly
// those rounds to dst with a corrected header count, producing a valid
// trace a replay can consume. It returns the number of rounds recovered.
//
// The scan stops at the first decode failure of any kind; without a
// per-round checksum in the v1 wire format, truncation and corruption
// are indistinguishable, and everything before the failure is, by
// construction, a consistent delta sequence. A complete, healthy trace
// round-trips unchanged (modulo the header count already matching). Only
// the header must be readable: a file torn inside it is unrecoverable
// and returns an error. Memory use is the streaming decoder's — two
// passes over src, nothing trace-sized is materialized.
//
// Callers recovering a recording in place should write dst to a
// temporary file and rename it over the original after a successful
// return, the same atomic pattern the recorder itself uses.
func RecoverTrace(src io.ReadSeeker, dst io.Writer) (int, error) {
	if _, err := src.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	d, err := NewStreamDecoder(src)
	if err != nil {
		return 0, fmt.Errorf("dyngraph: recover: unreadable trace header: %w", err)
	}
	complete := 0
	for {
		if _, err := d.Next(); err != nil {
			// io.EOF is the clean end of a whole trace; anything else is
			// the tear (or corruption) ending the recoverable prefix.
			break
		}
		complete++
	}

	if _, err := src.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	d2, err := NewStreamDecoder(src)
	if err != nil {
		return 0, fmt.Errorf("dyngraph: recover: header unreadable on second pass: %w", err)
	}
	enc, err := NewStreamEncoder(dst, d2.N(), complete)
	if err != nil {
		return 0, err
	}
	for i := 0; i < complete; i++ {
		tr, err := d2.Next()
		if err != nil {
			return 0, fmt.Errorf("dyngraph: recover: round %d vanished on second pass: %w", i+1, err)
		}
		if err := enc.WriteRound(tr.Wake, tr.Adds, tr.Removes); err != nil {
			return 0, err
		}
	}
	if err := enc.Close(); err != nil {
		return 0, err
	}
	return complete, nil
}
