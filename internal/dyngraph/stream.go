package dyngraph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"slices"

	"dynlocal/internal/graph"
)

// This file is the streaming half of the trace plane: the wire format of
// Trace (see its doc comment) read and written one round at a time, in
// memory independent of the trace length. StreamEncoder lets a recorder
// spill an arbitrarily long run to disk as it happens; StreamDecoder
// replays a multi-gigabyte trace without ever materializing it, yielding
// each round's validated deltas from reused buffers. Trace.Encode and
// DecodeTrace are thin wrappers over the two, so there is exactly one
// implementation of the wire format.

// decodePrealloc caps the capacity handed to make()/Grow while decoding,
// so a corrupt or hostile header claiming billions of entries cannot
// allocate unbounded memory from a tiny input: beyond the cap, slices
// grow only as fast as actual input is consumed (every claimed entry
// costs at least one input byte, so truncated input fails with
// ErrUnexpectedEOF first).
const decodePrealloc = 1 << 16

// MaxDecodeNodes bounds the node universe a decoded trace may declare.
// Replaying a trace materializes O(n) graphs, so without this bound a
// 14-byte hostile header claiming n = 2³¹−1 would defer a multi-gigabyte
// allocation to the first Replay/GraphAt call. The bound is a decoder
// sanity limit for untrusted input only — traces built in memory via
// NewTrace are not restricted — and sits far above the simulator's
// largest experiment sizes.
const MaxDecodeNodes = 1 << 20

// MaxDecodeRounds bounds the round count a decoded trace header may
// declare. The count only paces iteration — no allocation scales with it
// — but consumers size progress reporting, recovery scans and resume
// fast-forwards by it, so a hostile header claiming 2⁶⁴−1 rounds should
// fail at the header, not after hours of Next calls. Far above any real
// recording; in-memory traces are not restricted.
const MaxDecodeRounds = 1 << 32

// TraceRound is one decoded round of a trace stream: the wake set and the
// round's sorted edge diff against the previous round. The slices are
// decoder-owned and reused by the next Next call — consume them within
// the round (exactly what the engine does with an adversary step) or copy
// what must be retained.
//
//dynlint:loan
type TraceRound struct {
	// Round is the 1-based round the deltas describe.
	Round int
	// Wake lists the nodes waking this round.
	//dynlint:loan
	Wake []graph.NodeID
	// Adds and Removes are the round's edge diff: strictly ascending
	// canonical keys, every added edge absent before and every removed
	// edge present before (validated on decode).
	//dynlint:loan
	//dynlint:sorted
	Adds, Removes []graph.EdgeKey
}

// StreamEncoder writes a trace in the binary wire format one round at a
// time, so a recorder can spill a run to disk as it happens instead of
// accumulating a Trace in memory. The node universe and the number of
// rounds go into the header up front; Close fails if the declared round
// count was not written, since a short stream would decode as truncated.
//
// WriteRound validates each round exactly as the decoder will — id
// bounds, strict ascending order, add-absent/remove-present against the
// replayed edge set — so an encoded stream is always decodable and
// encoder misuse surfaces at the write site, not in a later replay.
type StreamEncoder struct {
	w         io.Writer // underlying sink, for Sync's durability barrier
	bw        *bufio.Writer
	n         uint64
	rounds    int
	written   int
	syncEvery int
	present   map[graph.EdgeKey]struct{}
	closed    bool
	err       error
}

// NewStreamEncoder starts a trace stream over an n-node universe holding
// exactly rounds rounds, writing the header immediately.
func NewStreamEncoder(w io.Writer, n, rounds int) (*StreamEncoder, error) {
	if n < 0 {
		return nil, fmt.Errorf("dyngraph: negative node universe %d", n)
	}
	if rounds < 0 {
		return nil, fmt.Errorf("dyngraph: negative round count %d", rounds)
	}
	e := &StreamEncoder{
		w:       w,
		bw:      bufio.NewWriter(w),
		n:       uint64(n),
		rounds:  rounds,
		present: make(map[graph.EdgeKey]struct{}),
	}
	if _, err := e.bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	e.writeUvarint(traceVersion)
	e.writeUvarint(e.n)
	e.writeUvarint(uint64(rounds))
	if e.err != nil {
		return nil, e.err
	}
	return e, nil
}

// WriteRound appends the next round: its wake set and its sorted edge
// diff against the previous round. The slices are read, not retained.
// Validation errors and write errors are both sticky — after either, the
// stream is unusable and Close reports the first error.
func (e *StreamEncoder) WriteRound(wake []graph.NodeID, adds, removes []graph.EdgeKey) error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		return e.fail(errors.New("dyngraph: WriteRound after Close"))
	}
	if e.written >= e.rounds {
		return e.fail(fmt.Errorf("dyngraph: round %d exceeds declared count %d", e.written+1, e.rounds))
	}
	r := e.written + 1
	// Validate the full round before emitting a byte, mirroring the
	// decoder's checks, so a rejected round leaves no partial garbage in
	// the buffered output ahead of the sticky error.
	for _, v := range wake {
		if uint64(uint32(v)) >= e.n || v < 0 {
			return e.fail(fmt.Errorf("dyngraph: trace round %d: wake id %d outside [0,%d)", r, v, e.n))
		}
	}
	if err := e.validateEdgeList(r, "added", adds); err != nil {
		return e.fail(err)
	}
	if err := e.validateEdgeList(r, "removed", removes); err != nil {
		return e.fail(err)
	}
	for _, k := range adds {
		if _, ok := e.present[k]; ok {
			return e.fail(fmt.Errorf("dyngraph: trace round %d adds already-present edge %v", r, k))
		}
	}
	for _, k := range removes {
		if _, ok := e.present[k]; !ok {
			return e.fail(fmt.Errorf("dyngraph: trace round %d removes absent edge %v", r, k))
		}
	}
	for _, k := range adds {
		e.present[k] = struct{}{}
	}
	for _, k := range removes {
		delete(e.present, k)
	}
	e.writeUvarint(uint64(len(wake)))
	for _, v := range wake {
		e.writeUvarint(uint64(uint32(v)))
	}
	e.writeEdgeList(adds)
	e.writeEdgeList(removes)
	e.written++
	if e.err == nil && e.syncEvery > 0 && e.written%e.syncEvery == 0 {
		return e.Sync()
	}
	return e.err
}

// Sync is the recorder's durability barrier: it flushes all buffered
// rounds to the underlying writer and, when that writer supports it
// (an *os.File, anything with a `Sync() error` method), forces them to
// stable storage. After Sync returns nil, every round written so far
// survives a crash of the process or the machine — at worst the file is
// torn inside a later, unsynced round, which RecoverTrace truncates back
// to the last complete one. Errors are sticky like write errors.
func (e *StreamEncoder) Sync() error {
	if e.err != nil {
		return e.err
	}
	if err := e.bw.Flush(); err != nil {
		return e.fail(err)
	}
	if s, ok := e.w.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			return e.fail(err)
		}
	}
	return nil
}

// SyncEvery arranges an automatic Sync after every k written rounds —
// the periodic sync marker of a crash-safe recording. k = 0 (the
// default) disables automatic syncing; Close still flushes. Smaller k
// bounds the number of rounds a crash can lose at the price of an
// fsync's latency every k rounds.
func (e *StreamEncoder) SyncEvery(k int) {
	if k < 0 {
		k = 0
	}
	e.syncEvery = k
}

// Close flushes the stream and fails if fewer rounds than declared were
// written. It does not close the underlying writer.
func (e *StreamEncoder) Close() error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		return nil
	}
	e.closed = true
	if e.written != e.rounds {
		return e.fail(fmt.Errorf("dyngraph: trace stream closed after %d of %d declared rounds", e.written, e.rounds))
	}
	if err := e.bw.Flush(); err != nil {
		return e.fail(err)
	}
	return nil
}

func (e *StreamEncoder) fail(err error) error {
	if e.err == nil {
		e.err = err
	}
	return e.err
}

func (e *StreamEncoder) validateEdgeList(r int, kind string, keys []graph.EdgeKey) error {
	prev := graph.EdgeKey(0)
	for i, k := range keys {
		if i > 0 && k <= prev {
			return fmt.Errorf("dyngraph: trace round %d %s edges: keys not strictly ascending at %#x", r, kind, uint64(k))
		}
		u, v := uint64(k)>>32, uint64(k)&0xffffffff
		if u >= v || v >= e.n {
			return fmt.Errorf("dyngraph: trace round %d %s edges: edge key %#x invalid for %d nodes", r, kind, uint64(k), e.n)
		}
		prev = k
	}
	return nil
}

// writeEdgeList emits a strictly ascending key list delta-encoded, the
// streaming sibling of the sorting copy in Trace.Encode.
func (e *StreamEncoder) writeEdgeList(keys []graph.EdgeKey) {
	e.writeUvarint(uint64(len(keys)))
	prev := uint64(0)
	for _, k := range keys {
		e.writeUvarint(uint64(k) - prev)
		prev = uint64(k)
	}
}

func (e *StreamEncoder) writeUvarint(v uint64) {
	if e.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	if _, err := e.bw.Write(buf[:n]); err != nil {
		e.err = err
	}
}

// StreamDecoder reads a trace from the binary wire format one round at a
// time: memory use is bounded by the largest single round plus the live
// edge set, independent of how many rounds the stream holds, so traces
// far larger than memory replay fine. The input is treated as untrusted
// and every check DecodeTrace performs is applied incrementally as each
// round is pulled: element counts cannot force oversized allocations,
// node ids and edge keys are bounds-checked, the delta encoding enforces
// strict ascending order, and the add-absent/remove-present consistency
// of the diff sequence is tracked across rounds — corrupt input yields an
// error from Next, never a panic in a downstream consumer.
type StreamDecoder struct {
	br      *bufio.Reader
	n       uint64
	rounds  uint64
	next    uint64
	present map[graph.EdgeKey]struct{}
	cur     TraceRound
	err     error
}

// NewStreamDecoder reads and validates the stream header. The returned
// decoder yields the rounds via Next.
func NewStreamDecoder(r io.Reader) (*StreamDecoder, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dyngraph: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, errors.New("dyngraph: bad trace magic")
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version != traceVersion {
		return nil, fmt.Errorf("dyngraph: unsupported trace version %d", version)
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n64 > MaxDecodeNodes {
		return nil, fmt.Errorf("dyngraph: trace node universe %d exceeds decode limit %d", n64, MaxDecodeNodes)
	}
	rounds, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if rounds > MaxDecodeRounds {
		return nil, fmt.Errorf("dyngraph: trace round count %d exceeds decode limit %d", rounds, MaxDecodeRounds)
	}
	return &StreamDecoder{
		br:     br,
		n:      n64,
		rounds: rounds,
		// present tracks the replayed edge set so the deltas are validated
		// for consistency: every addition must be of an absent edge, every
		// removal of a present one. Downstream delta consumers
		// (adversary.ScriptedStream feeding the engine's graph patcher)
		// treat inconsistent diffs as programming errors and panic, so
		// hostile wire input must be rejected here with an error instead.
		// Memory is bounded by the input size — every tracked edge costs
		// at least one encoded byte.
		present: make(map[graph.EdgeKey]struct{}),
	}, nil
}

// N returns the declared node-universe size.
func (d *StreamDecoder) N() int { return int(d.n) }

// Rounds returns the declared round count. Truncated input still fails at
// the Next call that runs out of bytes.
func (d *StreamDecoder) Rounds() int { return int(d.rounds) }

// Next decodes, validates and returns the next round. It returns io.EOF
// once all declared rounds have been yielded, and a descriptive error on
// corrupt or truncated input; any error is sticky. The returned round's
// slices are decoder-owned and valid only until the next call.
//
//dynlint:loan
func (d *StreamDecoder) Next() (*TraceRound, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.next >= d.rounds {
		d.err = io.EOF
		return nil, io.EOF
	}
	r := int(d.next) + 1
	wn, err := binary.ReadUvarint(d.br)
	if err != nil {
		return nil, d.fail(noEOF(err))
	}
	wake := d.cur.Wake[:0]
	if wn < decodePrealloc {
		wake = slices.Grow(wake, int(wn))
	}
	for j := uint64(0); j < wn; j++ {
		v, err := binary.ReadUvarint(d.br)
		if err != nil {
			return nil, d.fail(noEOF(err))
		}
		if v >= d.n {
			return nil, d.fail(fmt.Errorf("dyngraph: trace round %d: wake id %d outside [0,%d)", r, v, d.n))
		}
		wake = append(wake, graph.NodeID(uint32(v)))
	}
	d.cur.Wake = wake
	if d.cur.Adds, err = d.readEdgeList(d.cur.Adds[:0]); err != nil {
		return nil, d.fail(fmt.Errorf("dyngraph: trace round %d added edges: %w", r, err))
	}
	if d.cur.Removes, err = d.readEdgeList(d.cur.Removes[:0]); err != nil {
		return nil, d.fail(fmt.Errorf("dyngraph: trace round %d removed edges: %w", r, err))
	}
	for _, k := range d.cur.Adds {
		if _, ok := d.present[k]; ok {
			return nil, d.fail(fmt.Errorf("dyngraph: trace round %d adds already-present edge %v", r, k))
		}
		d.present[k] = struct{}{}
	}
	for _, k := range d.cur.Removes {
		if _, ok := d.present[k]; !ok {
			return nil, d.fail(fmt.Errorf("dyngraph: trace round %d removes absent edge %v", r, k))
		}
		delete(d.present, k)
	}
	d.next++
	d.cur.Round = r
	return &d.cur, nil
}

// NextDeltas is the adversary-facing replay surface (the method
// adversary.DeltaStreamSource names): the next round's wake set and
// sorted edge diff, io.EOF after the last round. The slices follow the
// same decoder-owned lifetime as Next's.
//
//dynlint:loan
func (d *StreamDecoder) NextDeltas() (wake []graph.NodeID, adds, removes []graph.EdgeKey, err error) {
	tr, err := d.Next()
	if err != nil {
		return nil, nil, nil, err
	}
	return tr.Wake, tr.Adds, tr.Removes, nil
}

func (d *StreamDecoder) fail(err error) error {
	if d.err == nil {
		d.err = err
	}
	return d.err
}

// noEOF converts a clean io.EOF from a mid-round read into
// io.ErrUnexpectedEOF: once the header declared more rounds, running out
// of bytes is truncation, and io.EOF is reserved for the clean
// end-of-stream Next reports after the last declared round.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// readEdgeList appends one delta-encoded key list into dst, validating
// bounds, duplicates and overflow. The zero-delta duplicate check doubles
// as the sortedness guarantee: surviving lists are strictly ascending.
func (d *StreamDecoder) readEdgeList(dst []graph.EdgeKey) ([]graph.EdgeKey, error) {
	cnt, err := binary.ReadUvarint(d.br)
	if err != nil {
		return dst, noEOF(err)
	}
	if cnt < decodePrealloc {
		dst = slices.Grow(dst, int(cnt))
	}
	prev := uint64(0)
	for i := uint64(0); i < cnt; i++ {
		delta, err := binary.ReadUvarint(d.br)
		if err != nil {
			return dst, noEOF(err)
		}
		if i > 0 && delta == 0 {
			return dst, fmt.Errorf("dyngraph: duplicate edge key %#x in delta encoding", prev)
		}
		if delta > math.MaxUint64-prev {
			return dst, errors.New("dyngraph: edge-key delta overflows")
		}
		prev += delta
		u, v := prev>>32, prev&0xffffffff
		if u >= v || v >= d.n {
			return dst, fmt.Errorf("dyngraph: edge key %#x invalid for %d nodes", prev, d.n)
		}
		dst = append(dst, graph.EdgeKey(prev))
	}
	return dst, nil
}
