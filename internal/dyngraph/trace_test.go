package dyngraph

import (
	"bytes"
	"testing"

	"dynlocal/internal/graph"
)

func buildSampleTrace(t *testing.T, seed uint64, n, rounds int) (*Trace, []*graph.Graph) {
	t.Helper()
	s := wstream(seed)
	tr := NewTrace(n)
	var prev *graph.Graph
	var history []*graph.Graph
	for r := 1; r <= rounds; r++ {
		g := graph.GNP(n, 0.15, s)
		var wake []graph.NodeID
		if r == 1 {
			wake = allNodes(n)
		}
		tr.Append(prev, g, wake)
		history = append(history, g)
		prev = g
	}
	return tr, history
}

func TestTraceReplayReconstructsGraphs(t *testing.T) {
	tr, history := buildSampleTrace(t, 9, 18, 12)
	var replayed []*graph.Graph
	var wakeRounds []int
	tr.Replay(func(round int, g *graph.Graph, wake []graph.NodeID) {
		replayed = append(replayed, g)
		if len(wake) > 0 {
			wakeRounds = append(wakeRounds, round)
		}
	})
	if len(replayed) != len(history) {
		t.Fatalf("replayed %d rounds, want %d", len(replayed), len(history))
	}
	for i := range history {
		if !replayed[i].Equal(history[i]) {
			t.Fatalf("round %d graph mismatch", i+1)
		}
	}
	if len(wakeRounds) != 1 || wakeRounds[0] != 1 {
		t.Fatalf("wake rounds = %v", wakeRounds)
	}
}

func TestTraceGraphAt(t *testing.T) {
	tr, history := buildSampleTrace(t, 4, 10, 8)
	for r := 1; r <= 8; r++ {
		if !tr.GraphAt(r).Equal(history[r-1]) {
			t.Fatalf("GraphAt(%d) mismatch", r)
		}
	}
}

func TestTraceGraphAtOutOfRangePanics(t *testing.T) {
	tr, _ := buildSampleTrace(t, 4, 10, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.GraphAt(4)
}

func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	tr, history := buildSampleTrace(t, 31, 25, 15)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.N() != tr.N() || got.Rounds() != tr.Rounds() {
		t.Fatalf("header mismatch: n=%d rounds=%d", got.N(), got.Rounds())
	}
	i := 0
	got.Replay(func(round int, g *graph.Graph, _ []graph.NodeID) {
		if !g.Equal(history[i]) {
			t.Fatalf("decoded round %d graph mismatch", round)
		}
		i++
	})
}

func TestTraceDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeTrace(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := DecodeTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
	// Valid magic, truncated body.
	if _, err := DecodeTrace(bytes.NewReader([]byte("DYNT"))); err == nil {
		t.Fatal("expected error for truncated trace")
	}
}

func TestTraceEncodingIsCompact(t *testing.T) {
	// Delta encoding should beat 16 bytes/edge-change by a wide margin on
	// sorted keys.
	tr, history := buildSampleTrace(t, 77, 64, 30)
	changes := 0
	prev := graph.Empty(64)
	for _, g := range history {
		changes += graph.Difference(g, prev).M() + graph.Difference(prev, g).M()
		prev = g
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if changes > 0 && buf.Len() > 10*changes {
		t.Fatalf("trace encoding too large: %d bytes for %d changes", buf.Len(), changes)
	}
}
