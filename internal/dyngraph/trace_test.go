package dyngraph

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"dynlocal/internal/graph"
)

func buildSampleTrace(t testing.TB, seed uint64, n, rounds int) (*Trace, []*graph.Graph) {
	t.Helper()
	s := wstream(seed)
	tr := NewTrace(n)
	var prev *graph.Graph
	var history []*graph.Graph
	for r := 1; r <= rounds; r++ {
		g := graph.GNP(n, 0.15, s)
		var wake []graph.NodeID
		if r == 1 {
			wake = allNodes(n)
		}
		tr.Append(prev, g, wake)
		history = append(history, g)
		prev = g
	}
	return tr, history
}

func TestTraceReplayReconstructsGraphs(t *testing.T) {
	tr, history := buildSampleTrace(t, 9, 18, 12)
	var replayed []*graph.Graph
	var wakeRounds []int
	tr.Replay(func(round int, g *graph.Graph, wake []graph.NodeID) {
		replayed = append(replayed, g)
		if len(wake) > 0 {
			wakeRounds = append(wakeRounds, round)
		}
	})
	if len(replayed) != len(history) {
		t.Fatalf("replayed %d rounds, want %d", len(replayed), len(history))
	}
	for i := range history {
		if !replayed[i].Equal(history[i]) {
			t.Fatalf("round %d graph mismatch", i+1)
		}
	}
	if len(wakeRounds) != 1 || wakeRounds[0] != 1 {
		t.Fatalf("wake rounds = %v", wakeRounds)
	}
}

func TestTraceGraphAt(t *testing.T) {
	tr, history := buildSampleTrace(t, 4, 10, 8)
	for r := 1; r <= 8; r++ {
		if !tr.GraphAt(r).Equal(history[r-1]) {
			t.Fatalf("GraphAt(%d) mismatch", r)
		}
	}
}

func TestTraceGraphAtOutOfRangePanics(t *testing.T) {
	tr, _ := buildSampleTrace(t, 4, 10, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.GraphAt(4)
}

func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	tr, history := buildSampleTrace(t, 31, 25, 15)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.N() != tr.N() || got.Rounds() != tr.Rounds() {
		t.Fatalf("header mismatch: n=%d rounds=%d", got.N(), got.Rounds())
	}
	i := 0
	got.Replay(func(round int, g *graph.Graph, _ []graph.NodeID) {
		if !g.Equal(history[i]) {
			t.Fatalf("decoded round %d graph mismatch", round)
		}
		i++
	})
}

func TestTraceDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeTrace(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := DecodeTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
	// Valid magic, truncated body.
	if _, err := DecodeTrace(bytes.NewReader([]byte("DYNT"))); err == nil {
		t.Fatal("expected error for truncated trace")
	}
}

// TestTraceGraphAtMatchesReplay pins GraphAt/Replay equivalence on a
// recorded churn-style schedule (random edge toggles on a base graph, the
// kind of trace adversary.Scripted replays).
func TestTraceGraphAtMatchesReplay(t *testing.T) {
	const n = 32
	const rounds = 20
	s := wstream(55)
	base := graph.GNP(n, 0.15, s)
	tr := NewTrace(n)
	prev := (*graph.Graph)(nil)
	cur := base
	for r := 1; r <= rounds; r++ {
		var wake []graph.NodeID
		if r == 1 {
			wake = allNodes(n)
		}
		tr.Append(prev, cur, wake)
		prev = cur
		// Churn: toggle a handful of random edges for the next round.
		b := graph.NewBuilder(n)
		cur.EachEdge(func(u, v graph.NodeID) { b.AddEdge(u, v) })
		for i := 0; i < 6; i++ {
			u := graph.NodeID(s.Intn(n))
			v := graph.NodeID(s.Intn(n))
			if u == v {
				continue
			}
			if b.HasEdge(u, v) {
				b.RemoveEdge(u, v)
			} else {
				b.AddEdge(u, v)
			}
		}
		cur = b.Graph()
	}
	tr.Replay(func(r int, g *graph.Graph, _ []graph.NodeID) {
		if got := tr.GraphAt(r); !got.Equal(g) {
			t.Fatalf("GraphAt(%d) differs from Replay:\ngot  %s\nwant %s",
				r, got.DebugString(), g.DebugString())
		}
	})
}

// corruptTrace builds a syntactically valid header followed by the given
// varint fields.
func corruptTrace(fields ...uint64) []byte {
	var buf bytes.Buffer
	buf.WriteString(traceMagic)
	var tmp [binary.MaxVarintLen64]byte
	for _, f := range fields {
		buf.Write(tmp[:binary.PutUvarint(tmp[:], f)])
	}
	return buf.Bytes()
}

func TestTraceDecodeRejectsCorruptInput(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		// version 1, n too large for int32 node ids.
		{"n-overflow", corruptTrace(1, 1<<33, 0)},
		// n above the decode sanity limit: a 14-byte header must not be
		// able to schedule an O(n) allocation for the first Replay.
		{"n-over-decode-limit", corruptTrace(1, MaxDecodeNodes+1, 1, 0, 0, 0)},
		// n=4, 1 round, wake count 1, wake id 9 >= n.
		{"wake-out-of-range", corruptTrace(1, 4, 1, 1, 9)},
		// n=4, 1 round, no wakes, 1 added edge with key {2,2} (u == v).
		{"self-loop-key", corruptTrace(1, 4, 1, 0, 1, 2<<32|2)},
		// n=4, 1 round, no wakes, 1 added edge with endpoint 7 >= n.
		{"endpoint-out-of-range", corruptTrace(1, 4, 1, 0, 1, 1<<32|7)},
		// n=4, 1 round, no wakes, added list with a zero delta (duplicate).
		{"duplicate-edge", corruptTrace(1, 4, 1, 0, 2, 1<<32|2, 0)},
		// n=4, 1 round, no wakes, added deltas overflowing uint64.
		{"delta-overflow", corruptTrace(1, 4, 1, 0, 2, math.MaxUint64, 2)},
		// Huge claimed counts with no data behind them must fail on EOF,
		// not allocate. (A 20-byte file claiming 2^40 edges was a crash.)
		{"truncated-huge-edge-count", corruptTrace(1, 4, 1, 0, 1<<40)},
		{"truncated-huge-wake-count", corruptTrace(1, 4, 1, 1<<40)},
		{"truncated-huge-round-count", corruptTrace(1, 4, 1<<40)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr, err := DecodeTrace(bytes.NewReader(c.data))
			if err == nil {
				t.Fatalf("corrupt trace accepted: %+v", tr)
			}
		})
	}
}

// TestTraceDecodeValidTraceReplays pins that a decoded well-formed trace
// replays without panicking even through the validation path.
func TestTraceDecodeValidTraceReplays(t *testing.T) {
	tr, _ := buildSampleTrace(t, 8, 12, 6)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	got.Replay(func(int, *graph.Graph, []graph.NodeID) { rounds++ })
	if rounds != 6 {
		t.Fatalf("replayed %d rounds, want 6", rounds)
	}
}

// TestTraceReplayDeltasMatchesReplay pins the delta-native replay surface:
// folding ReplayDeltas' add/remove events must reconstruct exactly the
// graphs Replay materializes, with identical wake sets, and the emitted
// lists must be strictly ascending (the contract adversary.Scripted and
// the engine's patcher rely on).
func TestTraceReplayDeltasMatchesReplay(t *testing.T) {
	tr, history := buildSampleTrace(t, 21, 16, 10)
	present := make(map[graph.EdgeKey]bool)
	round := 0
	tr.ReplayDeltas(func(r int, adds, removes []graph.EdgeKey, wake []graph.NodeID) {
		round++
		if r != round {
			t.Fatalf("delta replay round %d, want %d", r, round)
		}
		for i, k := range adds {
			if i > 0 && adds[i-1] >= k {
				t.Fatalf("round %d: adds not strictly ascending", r)
			}
			if present[k] {
				t.Fatalf("round %d: add of present edge %v", r, k)
			}
			present[k] = true
		}
		for i, k := range removes {
			if i > 0 && removes[i-1] >= k {
				t.Fatalf("round %d: removes not strictly ascending", r)
			}
			if !present[k] {
				t.Fatalf("round %d: remove of absent edge %v", r, k)
			}
			delete(present, k)
		}
		want := history[r-1]
		if len(present) != want.M() {
			t.Fatalf("round %d: folded %d edges, want %d", r, len(present), want.M())
		}
		for k := range present {
			if !want.HasEdge(k.Nodes()) {
				t.Fatalf("round %d: folded edge %v not in replayed graph", r, k)
			}
		}
		if r == 1 && len(wake) != 16 {
			t.Fatalf("round 1 wake = %v", wake)
		}
	})
	if round != tr.Rounds() {
		t.Fatalf("delta-replayed %d rounds, want %d", round, tr.Rounds())
	}
}

// TestTraceDecodeRejectsInconsistentDeltas pins the decoder's delta
// consistency validation: wire input whose rounds add a present edge or
// remove an absent one must error out, since downstream delta consumers
// treat such diffs as panics.
func TestTraceDecodeRejectsInconsistentDeltas(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		// n=4, 2 rounds: round 1 adds {0,1}; round 2 adds {0,1} again.
		{"re-add-present", corruptTrace(1, 4, 2, 0, 1, 1, 0, 0, 1, 1, 0)},
		// n=4, 1 round: removes {0,1} which was never added.
		{"remove-absent", corruptTrace(1, 4, 1, 0, 0, 1, 1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if tr, err := DecodeTrace(bytes.NewReader(c.data)); err == nil {
				t.Fatalf("inconsistent trace accepted: %+v", tr)
			}
		})
	}
}

func TestTraceEncodingIsCompact(t *testing.T) {
	// Delta encoding should beat 16 bytes/edge-change by a wide margin on
	// sorted keys.
	tr, history := buildSampleTrace(t, 77, 64, 30)
	changes := 0
	prev := graph.Empty(64)
	for _, g := range history {
		changes += graph.Difference(g, prev).M() + graph.Difference(prev, g).M()
		prev = g
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if changes > 0 && buf.Len() > 10*changes {
		t.Fatalf("trace encoding too large: %d bytes for %d changes", buf.Len(), changes)
	}
}
