package dyngraph

import (
	"fmt"
	"io"
	"slices"

	"dynlocal/internal/graph"
)

// Trace records a dynamic graph sequence (one communication graph plus a
// wake set per round) in a delta-encoded binary format, so adversarial
// schedules can be persisted, shipped with bug reports and replayed
// deterministically (adversary.Scripted replays a Trace).
//
// Wire format (all integers unsigned varints):
//
//	magic "DYNT" | version | n | rounds
//	per round: |wake| wake… |added| addedEdgeKeys… |removed| removedEdgeKeys…
//
// Edge keys are delta-encoded within a round after sorting.
type Trace struct {
	n      int
	rounds []step
}

type step struct {
	wake    []graph.NodeID
	added   []graph.EdgeKey
	removed []graph.EdgeKey
}

// NewTrace creates an empty trace over a node universe of size n.
func NewTrace(n int) *Trace { return &Trace{n: n} }

// N returns the node-universe size.
func (t *Trace) N() int { return t.n }

// Rounds returns the number of recorded rounds.
func (t *Trace) Rounds() int { return len(t.rounds) }

// Append records the next round. prev is the previous round's graph (nil
// for the first round, meaning the empty graph); g the new graph. prev
// must be the graph of the previously appended round — the stored deltas
// are the diffs of the appended sequence, and ReplayDeltas hands them out
// as such.
func (t *Trace) Append(prev, g *graph.Graph, wake []graph.NodeID) {
	if g.N() != t.n {
		panic("dyngraph: trace node space mismatch")
	}
	var st step
	st.wake = append(st.wake, wake...)
	if prev == nil {
		prev = graph.Empty(t.n)
	}
	g.EachEdge(func(u, v graph.NodeID) {
		if !prev.HasEdge(u, v) {
			st.added = append(st.added, graph.MakeEdgeKey(u, v))
		}
	})
	prev.EachEdge(func(u, v graph.NodeID) {
		if !g.HasEdge(u, v) {
			st.removed = append(st.removed, graph.MakeEdgeKey(u, v))
		}
	})
	t.rounds = append(t.rounds, st)
}

// Replay reconstructs the graph sequence, invoking fn for each round with
// the round number (1-based), the graph and the wake set. The graph passed
// to fn must not be retained across calls if modified.
func (t *Trace) Replay(fn func(round int, g *graph.Graph, wake []graph.NodeID)) {
	b := graph.NewBuilder(t.n)
	for i, st := range t.rounds {
		for _, k := range st.added {
			b.AddEdgeKey(k)
		}
		for _, k := range st.removed {
			u, v := k.Nodes()
			b.RemoveEdge(u, v)
		}
		fn(i+1, b.Graph(), st.wake)
	}
}

// ReplayDeltas walks the recorded rounds without materializing any graph,
// invoking fn with each round's sorted edge additions and removals and its
// wake set — the delta-native replay surface consumed by
// adversary.Scripted, under which a replayed schedule costs O(changes) per
// round end to end. The slices alias trace-owned storage; callers must
// copy anything they retain.
func (t *Trace) ReplayDeltas(fn func(round int, adds, removes []graph.EdgeKey, wake []graph.NodeID)) {
	for i, st := range t.rounds {
		fn(i+1, st.added, st.removed, st.wake)
	}
}

// GraphAt materializes the graph of a single (1-based) round. Only the
// deltas up to that round are applied — rounds beyond it are neither
// replayed nor materialized.
func (t *Trace) GraphAt(round int) *graph.Graph {
	if round < 1 || round > len(t.rounds) {
		panic(fmt.Sprintf("dyngraph: round %d outside trace [1,%d]", round, len(t.rounds)))
	}
	b := graph.NewBuilder(t.n)
	for _, st := range t.rounds[:round] {
		for _, k := range st.added {
			b.AddEdgeKey(k)
		}
		for _, k := range st.removed {
			u, v := k.Nodes()
			b.RemoveEdge(u, v)
		}
	}
	return b.Graph()
}

const traceMagic = "DYNT"
const traceVersion = 1

// EncodeTraceTo streams the trace into w through a StreamEncoder — the
// single implementation of the wire format — one round at a time. Encode
// is the legacy name for the same operation.
func (t *Trace) EncodeTraceTo(w io.Writer) error {
	enc, err := NewStreamEncoder(w, t.n, len(t.rounds))
	if err != nil {
		return err
	}
	var addBuf, remBuf []graph.EdgeKey
	for _, st := range t.rounds {
		// Steps built by Append or DecodeTrace are already ascending, but
		// the wire format requires it, so sort scratch copies defensively.
		addBuf = append(addBuf[:0], st.added...)
		remBuf = append(remBuf[:0], st.removed...)
		slices.Sort(addBuf)
		slices.Sort(remBuf)
		if err := enc.WriteRound(st.wake, addBuf, remBuf); err != nil {
			return err
		}
	}
	return enc.Close()
}

// Encode writes the trace in the binary wire format.
func (t *Trace) Encode(w io.Writer) error { return t.EncodeTraceTo(w) }

// DecodeTrace reads a whole trace from the binary wire format into
// memory: a thin wrapper that drains a StreamDecoder, copying each
// round's loaned deltas into trace-owned storage. The input is treated as
// untrusted exactly as the decoder treats it — element counts, node ids,
// edge keys and the delta encoding are validated round by round, and
// corrupt input yields an error rather than an oversized allocation here
// or a panic in a later Replay.
func DecodeTrace(r io.Reader) (*Trace, error) {
	d, err := NewStreamDecoder(r)
	if err != nil {
		return nil, err
	}
	t := NewTrace(d.N())
	if d.rounds < decodePrealloc {
		t.rounds = make([]step, 0, d.rounds)
	}
	for {
		tr, err := d.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.rounds = append(t.rounds, step{
			wake:    append([]graph.NodeID(nil), tr.Wake...),
			added:   append([]graph.EdgeKey(nil), tr.Adds...),
			removed: append([]graph.EdgeKey(nil), tr.Removes...),
		})
	}
}
