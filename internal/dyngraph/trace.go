package dyngraph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"dynlocal/internal/graph"
)

// Trace records a dynamic graph sequence (one communication graph plus a
// wake set per round) in a delta-encoded binary format, so adversarial
// schedules can be persisted, shipped with bug reports and replayed
// deterministically (adversary.Scripted replays a Trace).
//
// Wire format (all integers unsigned varints):
//
//	magic "DYNT" | version | n | rounds
//	per round: |wake| wake… |added| addedEdgeKeys… |removed| removedEdgeKeys…
//
// Edge keys are delta-encoded within a round after sorting.
type Trace struct {
	n      int
	rounds []step
}

type step struct {
	wake    []graph.NodeID
	added   []graph.EdgeKey
	removed []graph.EdgeKey
}

// NewTrace creates an empty trace over a node universe of size n.
func NewTrace(n int) *Trace { return &Trace{n: n} }

// N returns the node-universe size.
func (t *Trace) N() int { return t.n }

// Rounds returns the number of recorded rounds.
func (t *Trace) Rounds() int { return len(t.rounds) }

// Append records the next round. prev is the previous round's graph (nil
// for the first round, meaning the empty graph); g the new graph. prev
// must be the graph of the previously appended round — the stored deltas
// are the diffs of the appended sequence, and ReplayDeltas hands them out
// as such.
func (t *Trace) Append(prev, g *graph.Graph, wake []graph.NodeID) {
	if g.N() != t.n {
		panic("dyngraph: trace node space mismatch")
	}
	var st step
	st.wake = append(st.wake, wake...)
	if prev == nil {
		prev = graph.Empty(t.n)
	}
	g.EachEdge(func(u, v graph.NodeID) {
		if !prev.HasEdge(u, v) {
			st.added = append(st.added, graph.MakeEdgeKey(u, v))
		}
	})
	prev.EachEdge(func(u, v graph.NodeID) {
		if !g.HasEdge(u, v) {
			st.removed = append(st.removed, graph.MakeEdgeKey(u, v))
		}
	})
	t.rounds = append(t.rounds, st)
}

// Replay reconstructs the graph sequence, invoking fn for each round with
// the round number (1-based), the graph and the wake set. The graph passed
// to fn must not be retained across calls if modified.
func (t *Trace) Replay(fn func(round int, g *graph.Graph, wake []graph.NodeID)) {
	b := graph.NewBuilder(t.n)
	for i, st := range t.rounds {
		for _, k := range st.added {
			b.AddEdgeKey(k)
		}
		for _, k := range st.removed {
			u, v := k.Nodes()
			b.RemoveEdge(u, v)
		}
		fn(i+1, b.Graph(), st.wake)
	}
}

// ReplayDeltas walks the recorded rounds without materializing any graph,
// invoking fn with each round's sorted edge additions and removals and its
// wake set — the delta-native replay surface consumed by
// adversary.Scripted, under which a replayed schedule costs O(changes) per
// round end to end. The slices alias trace-owned storage; callers must
// copy anything they retain.
func (t *Trace) ReplayDeltas(fn func(round int, adds, removes []graph.EdgeKey, wake []graph.NodeID)) {
	for i, st := range t.rounds {
		fn(i+1, st.added, st.removed, st.wake)
	}
}

// GraphAt materializes the graph of a single (1-based) round. Only the
// deltas up to that round are applied — rounds beyond it are neither
// replayed nor materialized.
func (t *Trace) GraphAt(round int) *graph.Graph {
	if round < 1 || round > len(t.rounds) {
		panic(fmt.Sprintf("dyngraph: round %d outside trace [1,%d]", round, len(t.rounds)))
	}
	b := graph.NewBuilder(t.n)
	for _, st := range t.rounds[:round] {
		for _, k := range st.added {
			b.AddEdgeKey(k)
		}
		for _, k := range st.removed {
			u, v := k.Nodes()
			b.RemoveEdge(u, v)
		}
	}
	return b.Graph()
}

const traceMagic = "DYNT"
const traceVersion = 1

// Encode writes the trace in the binary wire format.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	putUvarint(bw, traceVersion)
	putUvarint(bw, uint64(t.n))
	putUvarint(bw, uint64(len(t.rounds)))
	for _, st := range t.rounds {
		putUvarint(bw, uint64(len(st.wake)))
		for _, v := range st.wake {
			putUvarint(bw, uint64(uint32(v)))
		}
		writeEdgeList(bw, st.added)
		writeEdgeList(bw, st.removed)
	}
	return bw.Flush()
}

func writeEdgeList(bw *bufio.Writer, edges []graph.EdgeKey) {
	sorted := append([]graph.EdgeKey(nil), edges...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	putUvarint(bw, uint64(len(sorted)))
	prev := uint64(0)
	for _, k := range sorted {
		putUvarint(bw, uint64(k)-prev)
		prev = uint64(k)
	}
}

func putUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n]) //nolint:errcheck // bufio.Writer errors surface at Flush
}

// decodePrealloc caps the capacity handed to make() while decoding, so a
// corrupt or hostile header claiming billions of entries cannot allocate
// unbounded memory from a tiny input: beyond the cap, slices grow only as
// fast as actual input is consumed (every claimed entry costs at least one
// input byte, so truncated input fails with ErrUnexpectedEOF first).
const decodePrealloc = 1 << 16

// MaxDecodeNodes bounds the node universe a decoded trace may declare.
// Replaying a trace materializes O(n) graphs, so without this bound a
// 14-byte hostile header claiming n = 2³¹−1 would defer a multi-gigabyte
// allocation to the first Replay/GraphAt call. The bound is a decoder
// sanity limit for untrusted input only — traces built in memory via
// NewTrace are not restricted — and sits far above the simulator's
// largest experiment sizes.
const MaxDecodeNodes = 1 << 20

// DecodeTrace reads a trace from the binary wire format. The input is
// treated as untrusted: element counts, node ids, edge keys and the
// delta encoding are validated, and corrupt input yields an error rather
// than an oversized allocation here or a panic in a later Replay.
func DecodeTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dyngraph: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, errors.New("dyngraph: bad trace magic")
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version != traceVersion {
		return nil, fmt.Errorf("dyngraph: unsupported trace version %d", version)
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n64 > MaxDecodeNodes {
		return nil, fmt.Errorf("dyngraph: trace node universe %d exceeds decode limit %d", n64, MaxDecodeNodes)
	}
	rounds, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	t := NewTrace(int(n64))
	if rounds < decodePrealloc {
		t.rounds = make([]step, 0, rounds)
	}
	// present tracks the replayed edge set so the deltas are validated for
	// consistency: every addition must be of an absent edge, every removal
	// of a present one. Downstream delta consumers (adversary.Scripted
	// feeding the engine's graph patcher) treat inconsistent diffs as
	// programming errors and panic, so hostile wire input must be rejected
	// here with an error instead. Memory is bounded by the input size —
	// every tracked edge costs at least one encoded byte.
	present := make(map[graph.EdgeKey]struct{})
	for i := uint64(0); i < rounds; i++ {
		var st step
		wn, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if wn < decodePrealloc {
			st.wake = make([]graph.NodeID, 0, wn)
		}
		for j := uint64(0); j < wn; j++ {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if v >= n64 {
				return nil, fmt.Errorf("dyngraph: trace round %d: wake id %d outside [0,%d)", i+1, v, n64)
			}
			st.wake = append(st.wake, graph.NodeID(uint32(v)))
		}
		if st.added, err = readEdgeList(br, n64); err != nil {
			return nil, fmt.Errorf("dyngraph: trace round %d added edges: %w", i+1, err)
		}
		if st.removed, err = readEdgeList(br, n64); err != nil {
			return nil, fmt.Errorf("dyngraph: trace round %d removed edges: %w", i+1, err)
		}
		for _, k := range st.added {
			if _, ok := present[k]; ok {
				return nil, fmt.Errorf("dyngraph: trace round %d adds already-present edge %v", i+1, k)
			}
			present[k] = struct{}{}
		}
		for _, k := range st.removed {
			if _, ok := present[k]; !ok {
				return nil, fmt.Errorf("dyngraph: trace round %d removes absent edge %v", i+1, k)
			}
			delete(present, k)
		}
		t.rounds = append(t.rounds, st)
	}
	return t, nil
}

func readEdgeList(br *bufio.Reader, n uint64) ([]graph.EdgeKey, error) {
	cnt, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	var out []graph.EdgeKey
	if cnt < decodePrealloc {
		out = make([]graph.EdgeKey, 0, cnt)
	}
	prev := uint64(0)
	for i := uint64(0); i < cnt; i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if i > 0 && d == 0 {
			return nil, fmt.Errorf("dyngraph: duplicate edge key %#x in delta encoding", prev)
		}
		if d > math.MaxUint64-prev {
			return nil, errors.New("dyngraph: edge-key delta overflows")
		}
		prev += d
		u, v := prev>>32, prev&0xffffffff
		if u >= v || v >= n {
			return nil, fmt.Errorf("dyngraph: edge key %#x invalid for %d nodes", prev, n)
		}
		out = append(out, graph.EdgeKey(prev))
	}
	return out, nil
}
