package dyngraph

import (
	"bytes"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"dynlocal/internal/graph"
)

// goldenTraceBytes loads the checked-in golden trace (32 nodes, 16
// rounds) the wire format is pinned against.
func goldenTraceBytes(t *testing.T) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "trace_v1_n32_r16.golden"))
	if err != nil {
		t.Fatalf("%v (run TestGoldenTraceFixture with -update first)", err)
	}
	return b
}

// goldenRoundOffsets re-encodes the golden trace round by round and
// records the stream length after the header and after each round —
// the exact byte extents a truncation test needs. The re-encode is
// byte-identical to the fixture (pinned by TestGoldenTraceFixture).
func goldenRoundOffsets(t *testing.T) (offsets []int, tr *Trace) {
	t.Helper()
	tr, _ = buildSampleTrace(t, 42, 32, 16)
	var buf bytes.Buffer
	enc, err := NewStreamEncoder(&buf, 32, tr.Rounds())
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Sync(); err != nil {
		t.Fatal(err)
	}
	offsets = append(offsets, buf.Len()) // header extent
	tr.ReplayDeltas(func(r int, adds, removes []graph.EdgeKey, wake []graph.NodeID) {
		if err := enc.WriteRound(wake, adds, removes); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if err := enc.Sync(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		offsets = append(offsets, buf.Len())
	})
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if golden := goldenTraceBytes(t); !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("round-by-round re-encode differs from golden (%d vs %d bytes)", buf.Len(), len(golden))
	}
	return offsets, tr
}

// assertRecoveredPrefix decodes a recovered trace and checks it holds
// exactly the first k rounds of the reference trace.
func assertRecoveredPrefix(t *testing.T, recovered []byte, tr *Trace, k int) {
	t.Helper()
	d, err := NewStreamDecoder(bytes.NewReader(recovered))
	if err != nil {
		t.Fatalf("recovered trace has unreadable header: %v", err)
	}
	if d.N() != tr.N() || d.Rounds() != k {
		t.Fatalf("recovered header (n=%d, rounds=%d), want (n=%d, rounds=%d)", d.N(), d.Rounds(), tr.N(), k)
	}
	got := drainStream(t, d)
	if len(got) != k {
		t.Fatalf("recovered trace streams %d rounds, want %d", len(got), k)
	}
	tr.ReplayDeltas(func(r int, adds, removes []graph.EdgeKey, wake []graph.NodeID) {
		if r > k {
			return
		}
		g := got[r-1]
		if !slices.Equal(g.Wake, wake) || !slices.Equal(g.Adds, adds) || !slices.Equal(g.Removes, removes) {
			t.Fatalf("recovered round %d differs from reference", r)
		}
	})
}

// TestRecoverTraceEveryTruncationOffset is the property test of the
// recovery path: for EVERY torn prefix of the golden trace — all byte
// offsets, so every tear lands mid-varint, mid-round or on a boundary —
// RecoverTrace must salvage exactly the rounds whose encoded extent
// survived, and the salvage must decode back to those rounds verbatim.
func TestRecoverTraceEveryTruncationOffset(t *testing.T) {
	offsets, tr := goldenRoundOffsets(t)
	golden := goldenTraceBytes(t)
	headerLen := offsets[0]
	for cut := 0; cut <= len(golden); cut++ {
		var out bytes.Buffer
		n, err := RecoverTrace(bytes.NewReader(golden[:cut]), &out)
		if cut < headerLen {
			if err == nil {
				t.Fatalf("cut %d: recovery inside the header succeeded", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := 0
		for r := 1; r < len(offsets); r++ {
			if offsets[r] <= cut {
				want = r
			}
		}
		if n != want {
			t.Fatalf("cut %d: recovered %d rounds, want %d (round extents %v)", cut, n, want, offsets)
		}
		assertRecoveredPrefix(t, out.Bytes(), tr, want)
	}
}

// TestRecoverTraceEdgeCases pins the degenerate inputs: empty file,
// partial header, header-only stream, and a whole healthy trace (which
// round-trips unchanged).
func TestRecoverTraceEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var out bytes.Buffer
		if _, err := RecoverTrace(bytes.NewReader(nil), &out); err == nil {
			t.Fatal("recovering an empty file succeeded")
		}
	})
	t.Run("garbage", func(t *testing.T) {
		var out bytes.Buffer
		if _, err := RecoverTrace(bytes.NewReader([]byte("DEFINITELY NOT A TRACE")), &out); err == nil {
			t.Fatal("recovering garbage succeeded")
		}
	})
	t.Run("header-only", func(t *testing.T) {
		// A freshly started recording: header declares 16 rounds, none
		// written. Recovery yields a valid zero-round trace.
		offsets, tr := goldenRoundOffsets(t)
		golden := goldenTraceBytes(t)
		var out bytes.Buffer
		n, err := RecoverTrace(bytes.NewReader(golden[:offsets[0]]), &out)
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("recovered %d rounds from header-only stream, want 0", n)
		}
		assertRecoveredPrefix(t, out.Bytes(), tr, 0)
	})
	t.Run("whole-trace", func(t *testing.T) {
		golden := goldenTraceBytes(t)
		var out bytes.Buffer
		n, err := RecoverTrace(bytes.NewReader(golden), &out)
		if err != nil {
			t.Fatal(err)
		}
		if n != 16 {
			t.Fatalf("recovered %d rounds, want 16", n)
		}
		if !bytes.Equal(out.Bytes(), golden) {
			t.Fatal("recovering a healthy trace did not round-trip byte-identically")
		}
	})
	t.Run("corrupt-mid-stream", func(t *testing.T) {
		// Flip a byte inside round 9's extent: recovery must stop at the
		// corruption, keeping only rounds that still decode.
		offsets, tr := goldenRoundOffsets(t)
		golden := goldenTraceBytes(t)
		bad := append([]byte(nil), golden...)
		bad[offsets[9]-2] ^= 0x7f
		var out bytes.Buffer
		n, err := RecoverTrace(bytes.NewReader(bad), &out)
		if err != nil {
			t.Fatal(err)
		}
		if n >= 9 {
			t.Fatalf("recovered %d rounds past the corruption in round 9", n)
		}
		assertRecoveredPrefix(t, out.Bytes(), tr, n)
	})
}

// TestGoldenTornTraceFixture pins recovery against a checked-in torn
// recording: the golden trace cut mid-round (7 bytes short), exactly
// what a crash between syncs leaves behind. Regenerate with -update.
func TestGoldenTornTraceFixture(t *testing.T) {
	golden := goldenTraceBytes(t)
	torn := golden[:len(golden)-7]
	path := filepath.Join("testdata", "trace_v1_n32_r16.torn.golden")
	if *updateGolden {
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(torn, want) {
		t.Fatalf("torn fixture no longer matches golden[:%d]", len(golden)-7)
	}
	_, tr := goldenRoundOffsets(t)
	var out bytes.Buffer
	n, err := RecoverTrace(bytes.NewReader(want), &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Fatalf("torn fixture recovered %d rounds, want 15", n)
	}
	assertRecoveredPrefix(t, out.Bytes(), tr, 15)
}

// TestStreamEncoderSyncEvery checks the periodic durability barrier: with
// SyncEvery(k), after every k-th WriteRound the bytes so far form a
// recoverable prefix holding all written rounds.
func TestStreamEncoderSyncEvery(t *testing.T) {
	tr, _ := buildSampleTrace(t, 7, 24, 12)
	var buf bytes.Buffer
	enc, err := NewStreamEncoder(&buf, 24, tr.Rounds())
	if err != nil {
		t.Fatal(err)
	}
	enc.SyncEvery(3)
	written := 0
	tr.ReplayDeltas(func(r int, adds, removes []graph.EdgeKey, wake []graph.NodeID) {
		if err := enc.WriteRound(wake, adds, removes); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		written++
		if written%3 == 0 {
			var out bytes.Buffer
			n, err := RecoverTrace(bytes.NewReader(buf.Bytes()), &out)
			if err != nil {
				t.Fatalf("after round %d: %v", r, err)
			}
			if n != written {
				t.Fatalf("after round %d: synced prefix recovers %d rounds, want %d", r, n, written)
			}
		}
	})
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
}

// syncCounter wraps a buffer and counts Sync calls, standing in for an
// *os.File's fsync.
type syncCounter struct {
	bytes.Buffer
	syncs int
}

func (s *syncCounter) Sync() error { s.syncs++; return nil }

// TestStreamEncoderSyncReachesFile checks Sync forwards the durability
// barrier to a sink that supports it.
func TestStreamEncoderSyncReachesFile(t *testing.T) {
	var sink syncCounter
	enc, err := NewStreamEncoder(&sink, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc.SyncEvery(1)
	if err := enc.WriteRound([]graph.NodeID{0, 1}, []graph.EdgeKey{graph.MakeEdgeKey(0, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	if sink.syncs != 1 {
		t.Fatalf("after 1 round with SyncEvery(1): %d fsyncs, want 1", sink.syncs)
	}
	if err := enc.WriteRound(nil, nil, []graph.EdgeKey{graph.MakeEdgeKey(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if sink.syncs != 2 {
		t.Fatalf("after 2 rounds: %d fsyncs, want 2", sink.syncs)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
}
