package dyngraph

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"dynlocal/internal/graph"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace fixtures under testdata/")

// drainStream pulls every round out of a StreamDecoder, deep-copying the
// loaned slices.
func drainStream(t *testing.T, d *StreamDecoder) []TraceRound {
	t.Helper()
	var out []TraceRound
	for {
		tr, err := d.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("round %d: %v", len(out)+1, err)
		}
		out = append(out, TraceRound{
			Round:   tr.Round,
			Wake:    append([]graph.NodeID(nil), tr.Wake...),
			Adds:    append([]graph.EdgeKey(nil), tr.Adds...),
			Removes: append([]graph.EdgeKey(nil), tr.Removes...),
		})
	}
}

// TestStreamRoundTripMatchesDecodeTrace is the round-trip property test:
// EncodeTraceTo → StreamDecoder must yield, round for round, bit-identical
// deltas to the in-memory DecodeTrace of the same bytes, and re-encoding
// the streamed rounds through StreamEncoder must reproduce the byte
// stream exactly.
func TestStreamRoundTripMatchesDecodeTrace(t *testing.T) {
	for _, seed := range []uint64{3, 17, 92} {
		tr, _ := buildSampleTrace(t, seed, 24, 12)
		var buf bytes.Buffer
		if err := tr.EncodeTraceTo(&buf); err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		wire := append([]byte(nil), buf.Bytes()...)

		d, err := NewStreamDecoder(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("seed %d: stream header: %v", seed, err)
		}
		if d.N() != tr.N() || d.Rounds() != tr.Rounds() {
			t.Fatalf("seed %d: stream header n=%d rounds=%d, want %d/%d",
				seed, d.N(), d.Rounds(), tr.N(), tr.Rounds())
		}
		streamed := drainStream(t, d)

		mem, err := DecodeTrace(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("seed %d: DecodeTrace: %v", seed, err)
		}
		if len(streamed) != mem.Rounds() {
			t.Fatalf("seed %d: streamed %d rounds, DecodeTrace %d", seed, len(streamed), mem.Rounds())
		}
		mem.ReplayDeltas(func(r int, adds, removes []graph.EdgeKey, wake []graph.NodeID) {
			got := streamed[r-1]
			if got.Round != r {
				t.Fatalf("seed %d round %d: streamed round number %d", seed, r, got.Round)
			}
			if !slices.Equal(got.Wake, wake) || !slices.Equal(got.Adds, adds) || !slices.Equal(got.Removes, removes) {
				t.Fatalf("seed %d round %d: streamed deltas differ from DecodeTrace", seed, r)
			}
		})

		// Re-encode the streamed rounds through the StreamEncoder directly:
		// one wire-format implementation means byte-identical output.
		var re bytes.Buffer
		enc, err := NewStreamEncoder(&re, tr.N(), len(streamed))
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range streamed {
			if err := enc.WriteRound(st.Wake, st.Adds, st.Removes); err != nil {
				t.Fatalf("seed %d round %d: re-encode: %v", seed, st.Round, err)
			}
		}
		if err := enc.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re.Bytes(), wire) {
			t.Fatalf("seed %d: re-encoded stream differs from original (%d vs %d bytes)",
				seed, re.Len(), len(wire))
		}
	}
}

// TestStreamEncoderRejectsInvalidRounds pins that encoder misuse fails at
// the write site with a sticky error, mirroring every decoder check.
func TestStreamEncoderRejectsInvalidRounds(t *testing.T) {
	k := func(u, v graph.NodeID) graph.EdgeKey { return graph.MakeEdgeKey(u, v) }
	cases := []struct {
		name  string
		write func(e *StreamEncoder) error
	}{
		{"wake-out-of-range", func(e *StreamEncoder) error {
			return e.WriteRound([]graph.NodeID{9}, nil, nil)
		}},
		{"adds-unsorted", func(e *StreamEncoder) error {
			return e.WriteRound(nil, []graph.EdgeKey{k(1, 2), k(0, 1)}, nil)
		}},
		{"adds-duplicate", func(e *StreamEncoder) error {
			return e.WriteRound(nil, []graph.EdgeKey{k(0, 1), k(0, 1)}, nil)
		}},
		{"self-loop-key", func(e *StreamEncoder) error {
			return e.WriteRound(nil, []graph.EdgeKey{graph.EdgeKey(2<<32 | 2)}, nil)
		}},
		{"endpoint-out-of-range", func(e *StreamEncoder) error {
			return e.WriteRound(nil, []graph.EdgeKey{graph.EdgeKey(1<<32 | 7)}, nil)
		}},
		{"add-present", func(e *StreamEncoder) error {
			if err := e.WriteRound(nil, []graph.EdgeKey{k(0, 1)}, nil); err != nil {
				return err
			}
			return e.WriteRound(nil, []graph.EdgeKey{k(0, 1)}, nil)
		}},
		{"remove-absent", func(e *StreamEncoder) error {
			return e.WriteRound(nil, nil, []graph.EdgeKey{k(0, 1)})
		}},
		{"rounds-overrun", func(e *StreamEncoder) error {
			for i := 0; i < 3; i++ {
				if err := e.WriteRound(nil, nil, nil); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			e, err := NewStreamEncoder(&buf, 4, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.write(e); err == nil {
				t.Fatal("invalid round accepted")
			}
			// The error is sticky: Close must report it too.
			if err := e.Close(); err == nil {
				t.Fatal("Close succeeded after rejected round")
			}
		})
	}
}

func TestStreamEncoderShortCloseFails(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewStreamEncoder(&buf, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteRound(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err == nil {
		t.Fatal("Close accepted 1 of 2 declared rounds")
	}
	if err := e.WriteRound(nil, nil, nil); err == nil {
		t.Fatal("WriteRound accepted after Close")
	}
}

// TestStreamDecoderEOFAfterDeclaredRounds pins the clean-termination
// contract: io.EOF exactly after the declared rounds, and again on every
// later call.
func TestStreamDecoderEOFAfterDeclaredRounds(t *testing.T) {
	tr, _ := buildSampleTrace(t, 5, 10, 4)
	var buf bytes.Buffer
	if err := tr.EncodeTraceTo(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := NewStreamDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := d.Next(); err != nil {
			t.Fatalf("round %d: %v", i+1, err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Next(); err != io.EOF {
			t.Fatalf("call %d past end: err = %v, want io.EOF", i+1, err)
		}
	}
}

// TestStreamDecoderTruncationIsUnexpectedEOF pins that running out of
// bytes mid-stream is reported as truncation, never as the clean io.EOF
// that ends a fully-delivered stream.
func TestStreamDecoderTruncationIsUnexpectedEOF(t *testing.T) {
	tr, _ := buildSampleTrace(t, 5, 10, 4)
	var buf bytes.Buffer
	if err := tr.EncodeTraceTo(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	for cut := len(wire) - 1; cut > 6; cut /= 2 {
		d, err := NewStreamDecoder(bytes.NewReader(wire[:cut]))
		if err != nil {
			continue // header itself truncated
		}
		for {
			_, err := d.Next()
			if err == nil {
				continue
			}
			if err == io.EOF {
				t.Fatalf("cut at %d of %d bytes: decoder reported clean EOF", cut, len(wire))
			}
			break
		}
	}
}

// TestStreamDecoderConstantMemory pins the tentpole's memory contract:
// once the decoder's loaned buffers have grown to the largest round, a
// long tail of further rounds decodes without allocating — memory is
// independent of trace length.
func TestStreamDecoderConstantMemory(t *testing.T) {
	const n, rounds = 64, 512
	tr, _ := buildSampleTrace(t, 11, n, rounds)
	var buf bytes.Buffer
	if err := tr.EncodeTraceTo(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := NewStreamDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	const warmup = 32
	for i := 0; i < warmup; i++ {
		if _, err := d.Next(); err != nil {
			t.Fatal(err)
		}
	}
	decoded := 0
	allocs := testing.AllocsPerRun(1, func() {
		for {
			_, err := d.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			decoded++
		}
	})
	if decoded != rounds-warmup {
		t.Fatalf("decoded %d rounds after warmup, want %d", decoded, rounds-warmup)
	}
	// The GNP sample trace churns most edges every round, so the present
	// map and the delta buffers are fully warmed after round one; allow a
	// tiny slack for map-internal growth instead of demanding exactly 0.
	if perRound := allocs / float64(decoded); perRound > 0.05 {
		t.Fatalf("streaming decode allocates %.3f allocs/round over %d rounds, want ~0", perRound, decoded)
	}
}

// TestGoldenTraceFixture pins the wire format against checked-in bytes:
// the fixture re-encodes bit-identically from today's encoder, and
// decodes (streaming and in-memory) to the same deterministic trace it
// was built from. Regenerate with -update after an intentional format
// change (which must also bump traceVersion).
func TestGoldenTraceFixture(t *testing.T) {
	tr, _ := buildSampleTrace(t, 42, 32, 16)
	var buf bytes.Buffer
	if err := tr.EncodeTraceTo(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "trace_v1_n32_r16.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("encoded trace differs from golden fixture %s (%d vs %d bytes); "+
			"if the wire format changed intentionally, bump traceVersion and run -update",
			path, buf.Len(), len(want))
	}
	d, err := NewStreamDecoder(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	streamed := drainStream(t, d)
	if len(streamed) != tr.Rounds() {
		t.Fatalf("golden fixture streams %d rounds, want %d", len(streamed), tr.Rounds())
	}
	tr.ReplayDeltas(func(r int, adds, removes []graph.EdgeKey, wake []graph.NodeID) {
		got := streamed[r-1]
		if !slices.Equal(got.Wake, wake) || !slices.Equal(got.Adds, adds) || !slices.Equal(got.Removes, removes) {
			t.Fatalf("golden fixture round %d differs from rebuilt trace", r)
		}
	})
}

// TestTraceZeroRounds covers the degenerate trace: encodes, decodes (both
// paths), replays as nothing, and GraphAt has no valid round to ask for.
func TestTraceZeroRounds(t *testing.T) {
	tr := NewTrace(5)
	var buf bytes.Buffer
	if err := tr.EncodeTraceTo(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	got, err := DecodeTrace(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 5 || got.Rounds() != 0 {
		t.Fatalf("decoded n=%d rounds=%d, want 5/0", got.N(), got.Rounds())
	}
	got.ReplayDeltas(func(int, []graph.EdgeKey, []graph.EdgeKey, []graph.NodeID) {
		t.Fatal("ReplayDeltas visited a round of an empty trace")
	})

	d, err := NewStreamDecoder(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("Next on empty trace = %v, want io.EOF", err)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("GraphAt(1) on empty trace did not panic")
		}
	}()
	got.GraphAt(1)
}

// TestTraceTrailingEmptyDiffsPersistTopology pins that rounds recording
// no change keep the prior topology: the wire carries empty diffs, and
// GraphAt/Replay/ReplayDeltas all see the round-1 graph unchanged.
func TestTraceTrailingEmptyDiffsPersistTopology(t *testing.T) {
	const n = 12
	s := wstream(7)
	g := graph.GNP(n, 0.3, s)
	tr := NewTrace(n)
	tr.Append(nil, g, allNodes(n))
	tr.Append(g, g, nil)
	tr.Append(g, g, nil)

	var buf bytes.Buffer
	if err := tr.EncodeTraceTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds() != 3 {
		t.Fatalf("decoded %d rounds, want 3", got.Rounds())
	}
	got.ReplayDeltas(func(r int, adds, removes []graph.EdgeKey, _ []graph.NodeID) {
		if r > 1 && (len(adds) != 0 || len(removes) != 0) {
			t.Fatalf("round %d: expected empty diff, got %d adds %d removes", r, len(adds), len(removes))
		}
	})
	for r := 1; r <= 3; r++ {
		if !got.GraphAt(r).Equal(g) {
			t.Fatalf("GraphAt(%d) lost the persisted topology", r)
		}
	}
	got.Replay(func(r int, rg *graph.Graph, _ []graph.NodeID) {
		if !rg.Equal(g) {
			t.Fatalf("Replay round %d lost the persisted topology", r)
		}
	})
}

// TestDecodeNodesBoundary pins the MaxDecodeNodes limit exactly at the
// cap: n == MaxDecodeNodes decodes, n == MaxDecodeNodes+1 is rejected,
// by both the streaming and the in-memory decoder.
func TestDecodeNodesBoundary(t *testing.T) {
	at := corruptTrace(1, MaxDecodeNodes, 0)
	if d, err := NewStreamDecoder(bytes.NewReader(at)); err != nil {
		t.Fatalf("n = MaxDecodeNodes rejected by stream decoder: %v", err)
	} else if d.N() != MaxDecodeNodes {
		t.Fatalf("decoded n = %d, want %d", d.N(), MaxDecodeNodes)
	}
	if tr, err := DecodeTrace(bytes.NewReader(at)); err != nil {
		t.Fatalf("n = MaxDecodeNodes rejected by DecodeTrace: %v", err)
	} else if tr.N() != MaxDecodeNodes || tr.Rounds() != 0 {
		t.Fatalf("decoded n=%d rounds=%d, want %d/0", tr.N(), tr.Rounds(), MaxDecodeNodes)
	}

	over := corruptTrace(1, MaxDecodeNodes+1, 0)
	if _, err := NewStreamDecoder(bytes.NewReader(over)); err == nil {
		t.Fatal("n = MaxDecodeNodes+1 accepted by stream decoder")
	}
	if _, err := DecodeTrace(bytes.NewReader(over)); err == nil {
		t.Fatal("n = MaxDecodeNodes+1 accepted by DecodeTrace")
	}
}
