package dyngraph

import (
	"fmt"
	"sort"

	"dynlocal/internal/ckpt"
	"dynlocal/internal/graph"
)

// Checkpoint support: a Window serializes its full streak/ring state so
// a restored checker resumes with bit-identical window deltas. LoadState
// runs on a freshly constructed NewWindow(t, n) with the same geometry —
// t and n are configuration, validated rather than restored.

// tagWindow guards the window section of a checkpoint stream.
const tagWindow uint64 = 0x81

// SaveState implements ckpt.Stater. The spans map is written with sorted
// keys so identical runs produce byte-identical checkpoints; the ring
// slots, wake buckets and scan-feed edge list are written verbatim —
// slot order is observable (it is the emission order of expiry/arrival
// deltas), so preserving it exactly is what keeps resumed Delta output
// bit-identical.
func (w *Window) SaveState(cw *ckpt.Writer) {
	cw.Section(tagWindow)
	cw.Int(w.t)
	cw.Int(w.n)
	cw.Int(w.round)
	cw.Int(w.mode)

	keys := make([]graph.EdgeKey, 0, len(w.spans))
	for k := range w.spans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	cw.Int(len(keys))
	for _, k := range keys {
		sp := w.spans[k]
		cw.Uvarint(uint64(k))
		cw.Bool(sp.present)
		cw.Int(sp.lastSeen)
		cw.Int(sp.streakStart)
		cw.Bool(sp.inInter)
	}

	nAwake := 0
	for _, r := range w.wake {
		if r != 0 {
			nAwake++
		}
	}
	cw.Int(nAwake)
	for v, r := range w.wake {
		if r != 0 {
			cw.Varint(int64(v))
			cw.Int(r)
		}
	}

	saveRing(cw, w.expiry)
	saveRing(cw, w.pending)

	rounds := make([]int, 0, len(w.byWake))
	for r := range w.byWake {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	cw.Int(len(rounds))
	for _, r := range rounds {
		cw.Int(r)
		bucket := w.byWake[r]
		cw.Int(len(bucket))
		for _, v := range bucket {
			cw.Varint(int64(v))
		}
	}

	if w.mode == feedGraph {
		cw.Int(len(w.prevEdges))
		for _, k := range w.prevEdges {
			cw.Uvarint(uint64(k))
		}
	}
}

// LoadState implements ckpt.Stater.
func (w *Window) LoadState(cr *ckpt.Reader) {
	cr.Section(tagWindow)
	if w.round != 0 {
		cr.Fail(fmt.Errorf("dyngraph: LoadState requires a fresh window, this one has observed %d rounds", w.round))
		return
	}
	t := cr.Int()
	n := cr.Int()
	round := cr.Int()
	mode := cr.Int()
	if cr.Err() != nil {
		return
	}
	switch {
	case t != w.t:
		cr.Fail(fmt.Errorf("dyngraph: checkpoint window size %d, window has %d", t, w.t))
	case n != w.n:
		cr.Fail(fmt.Errorf("dyngraph: checkpoint universe %d, window has %d", n, w.n))
	case round < 0:
		cr.Fail(fmt.Errorf("dyngraph: checkpoint has negative round %d", round))
	case mode != feedUnset && mode != feedGraph && mode != feedDelta:
		cr.Fail(fmt.Errorf("dyngraph: checkpoint has unknown feed mode %d", mode))
	}
	if cr.Err() != nil {
		return
	}
	w.round = round
	w.mode = mode

	edgeCap := n * (n - 1) / 2
	nSpans := cr.Count(edgeCap)
	if cr.Err() != nil {
		return
	}
	for i := 0; i < nSpans; i++ {
		k := graph.EdgeKey(cr.Uvarint())
		sp := edgeSpan{}
		sp.present = cr.Bool()
		sp.lastSeen = cr.Int()
		sp.streakStart = cr.Int()
		sp.inInter = cr.Bool()
		if cr.Err() != nil {
			return
		}
		if u, v := k.Nodes(); u < 0 || u >= v || int(v) >= n {
			cr.Fail(fmt.Errorf("dyngraph: checkpoint edge %v outside universe [0,%d)", k, n))
			return
		}
		w.spans[k] = sp
	}

	nAwake := cr.Count(n)
	if cr.Err() != nil {
		return
	}
	for i := 0; i < nAwake; i++ {
		v := cr.Varint()
		r := cr.Int()
		if cr.Err() != nil {
			return
		}
		if v < 0 || v >= int64(n) || r < 1 || r > round {
			cr.Fail(fmt.Errorf("dyngraph: checkpoint wake entry (%d, %d) out of range", v, r))
			return
		}
		w.wake[v] = r
	}

	w.expiry = loadRing(cr, w.t, edgeCap)
	w.pending = loadRing(cr, w.t, edgeCap)
	if cr.Err() != nil {
		return
	}

	nBuckets := cr.Count(round + 1)
	if cr.Err() != nil {
		return
	}
	for i := 0; i < nBuckets; i++ {
		r := cr.Int()
		cnt := cr.Count(n)
		if cr.Err() != nil {
			return
		}
		bucket := make([]graph.NodeID, cnt)
		for j := range bucket {
			bucket[j] = graph.NodeID(cr.Varint())
		}
		if cr.Err() != nil {
			return
		}
		w.byWake[r] = bucket
	}

	if mode == feedGraph {
		nPrev := cr.Count(edgeCap)
		if cr.Err() != nil {
			return
		}
		w.prevEdges = make([]graph.EdgeKey, nPrev)
		for i := range w.prevEdges {
			w.prevEdges[i] = graph.EdgeKey(cr.Uvarint())
		}
	}
}

// saveRing writes a t-slot edge-key ring verbatim.
func saveRing(cw *ckpt.Writer, ring [][]graph.EdgeKey) {
	cw.Int(len(ring))
	for _, slot := range ring {
		cw.Int(len(slot))
		for _, k := range slot {
			cw.Uvarint(uint64(k))
		}
	}
}

// loadRing restores a ring of exactly t slots.
func loadRing(cr *ckpt.Reader, t, edgeCap int) [][]graph.EdgeKey {
	n := cr.Count(t)
	if cr.Err() != nil {
		return nil
	}
	if n != t {
		cr.Fail(fmt.Errorf("dyngraph: checkpoint ring has %d slots, window needs %d", n, t))
		return nil
	}
	ring := make([][]graph.EdgeKey, t)
	for i := range ring {
		cnt := cr.Count(edgeCap)
		if cr.Err() != nil {
			return nil
		}
		if cnt == 0 {
			continue
		}
		slot := make([]graph.EdgeKey, cnt)
		for j := range slot {
			slot[j] = graph.EdgeKey(cr.Uvarint())
		}
		ring[i] = slot
	}
	return ring
}

var _ ckpt.Stater = (*Window)(nil)
