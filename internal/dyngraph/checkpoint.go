package dyngraph

import (
	"fmt"
	"sort"

	"dynlocal/internal/ckpt"
	"dynlocal/internal/graph"
)

// Checkpoint support: a Window serializes its full streak/ring state so
// a restored checker resumes with bit-identical window deltas. LoadState
// runs on a freshly constructed NewWindow(t, n) with the same geometry —
// t and n are configuration, validated rather than restored.

// tagWindow guards the window section of a checkpoint stream;
// tagWindowDelta guards the incremental variant used by chain records.
const (
	tagWindow      uint64 = 0x81
	tagWindowDelta uint64 = 0x82
)

// SaveState implements ckpt.Stater. The spans map is written with sorted
// keys so identical runs produce byte-identical checkpoints; the ring
// slots, wake buckets and scan-feed edge list are written verbatim —
// slot order is observable (it is the emission order of expiry/arrival
// deltas), so preserving it exactly is what keeps resumed Delta output
// bit-identical.
func (w *Window) SaveState(cw *ckpt.Writer) {
	cw.Section(tagWindow)
	cw.Int(w.t)
	cw.Int(w.n)
	cw.Int(w.round)
	cw.Int(w.mode)

	keys := make([]graph.EdgeKey, 0, len(w.spans))
	for k := range w.spans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	cw.Int(len(keys))
	for _, k := range keys {
		sp := w.spans[k]
		cw.Uvarint(uint64(k))
		cw.Bool(sp.present)
		cw.Int(sp.lastSeen)
		cw.Int(sp.streakStart)
		cw.Bool(sp.inInter)
	}

	nAwake := 0
	for _, r := range w.wake {
		if r != 0 {
			nAwake++
		}
	}
	cw.Int(nAwake)
	for v, r := range w.wake {
		if r != 0 {
			cw.Varint(int64(v))
			cw.Int(r)
		}
	}

	saveRing(cw, w.expiry)
	saveRing(cw, w.pending)

	rounds := make([]int, 0, len(w.byWake))
	for r := range w.byWake {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	cw.Int(len(rounds))
	for _, r := range rounds {
		cw.Int(r)
		bucket := w.byWake[r]
		cw.Int(len(bucket))
		for _, v := range bucket {
			cw.Varint(int64(v))
		}
	}

	if w.mode == feedGraph {
		cw.Int(len(w.prevEdges))
		for _, k := range w.prevEdges {
			cw.Uvarint(uint64(k))
		}
	}
}

// LoadState implements ckpt.Stater.
func (w *Window) LoadState(cr *ckpt.Reader) {
	cr.Section(tagWindow)
	if w.round != 0 {
		cr.Fail(fmt.Errorf("dyngraph: LoadState requires a fresh window, this one has observed %d rounds", w.round))
		return
	}
	t := cr.Int()
	n := cr.Int()
	round := cr.Int()
	mode := cr.Int()
	if cr.Err() != nil {
		return
	}
	switch {
	case t != w.t:
		cr.Fail(fmt.Errorf("dyngraph: checkpoint window size %d, window has %d", t, w.t))
	case n != w.n:
		cr.Fail(fmt.Errorf("dyngraph: checkpoint universe %d, window has %d", n, w.n))
	case round < 0:
		cr.Fail(fmt.Errorf("dyngraph: checkpoint has negative round %d", round))
	case mode != feedUnset && mode != feedGraph && mode != feedDelta:
		cr.Fail(fmt.Errorf("dyngraph: checkpoint has unknown feed mode %d", mode))
	}
	if cr.Err() != nil {
		return
	}
	w.round = round
	w.mode = mode

	edgeCap := n * (n - 1) / 2
	nSpans := cr.Count(edgeCap)
	if cr.Err() != nil {
		return
	}
	for i := 0; i < nSpans; i++ {
		k := graph.EdgeKey(cr.Uvarint())
		sp := edgeSpan{}
		sp.present = cr.Bool()
		sp.lastSeen = cr.Int()
		sp.streakStart = cr.Int()
		sp.inInter = cr.Bool()
		if cr.Err() != nil {
			return
		}
		if u, v := k.Nodes(); u < 0 || u >= v || int(v) >= n {
			cr.Fail(fmt.Errorf("dyngraph: checkpoint edge %v outside universe [0,%d)", k, n))
			return
		}
		w.spans[k] = sp
	}

	nAwake := cr.Count(n)
	if cr.Err() != nil {
		return
	}
	for i := 0; i < nAwake; i++ {
		v := cr.Varint()
		r := cr.Int()
		if cr.Err() != nil {
			return
		}
		if v < 0 || v >= int64(n) || r < 1 || r > round {
			cr.Fail(fmt.Errorf("dyngraph: checkpoint wake entry (%d, %d) out of range", v, r))
			return
		}
		w.wake[v] = r
	}

	w.expiry = loadRing(cr, w.t, edgeCap)
	w.pending = loadRing(cr, w.t, edgeCap)
	if cr.Err() != nil {
		return
	}

	nBuckets := cr.Count(round + 1)
	if cr.Err() != nil {
		return
	}
	for i := 0; i < nBuckets; i++ {
		r := cr.Int()
		cnt := cr.Count(n)
		if cr.Err() != nil {
			return
		}
		bucket := make([]graph.NodeID, cnt)
		for j := range bucket {
			bucket[j] = graph.NodeID(cr.Varint())
		}
		if cr.Err() != nil {
			return
		}
		w.byWake[r] = bucket
	}

	if mode == feedGraph {
		nPrev := cr.Count(edgeCap)
		if cr.Err() != nil {
			return
		}
		w.prevEdges = make([]graph.EdgeKey, nPrev)
		for i := range w.prevEdges {
			w.prevEdges[i] = graph.EdgeKey(cr.Uvarint())
		}
	}
}

// NoteCheckpoint records that a checkpoint record capturing the window's
// current state was durably persisted, resetting the dirty tracking so
// the next SaveDelta diffs against exactly that record. The first call
// enables tracking; windows outside a chain never pay for it. Callers
// must note every persisted chain record — on the restore side too, so a
// restored window can keep extending the same chain.
func (w *Window) NoteCheckpoint() {
	if !w.track {
		w.track = true
		w.dirtySpans = make(map[graph.EdgeKey]struct{})
		w.dirtyExpiry = make([]bool, w.t)
		w.dirtyPending = make([]bool, w.t)
		w.dirtyByWake = make(map[int]struct{})
	} else {
		clear(w.dirtySpans)
		clear(w.dirtyExpiry)
		clear(w.dirtyPending)
		clear(w.dirtyByWake)
	}
	w.dirtyWake = w.dirtyWake[:0]
}

// SaveDelta writes the window's state difference against the last record
// passed to NoteCheckpoint: only the spans, wake entries, ring slots and
// wake buckets that moved. The scan feed's previous-round edge list is
// the one O(|E_r|) exception — it turns over completely every round, so
// it is written whole; delta-fed windows (the engine-driven path) do not
// carry it at all. Tracking is not reset — the caller notes the record
// once it is durably persisted.
func (w *Window) SaveDelta(cw *ckpt.Writer) {
	cw.Section(tagWindowDelta)
	if !w.track {
		cw.Fail(fmt.Errorf("dyngraph: SaveDelta without a noted base checkpoint"))
		return
	}
	cw.Int(w.round)
	cw.Int(w.mode)

	keys := make([]graph.EdgeKey, 0, len(w.dirtySpans))
	for k := range w.dirtySpans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	cw.Int(len(keys))
	for _, k := range keys {
		cw.Uvarint(uint64(k))
		sp, ok := w.spans[k]
		cw.Bool(ok)
		if ok {
			cw.Bool(sp.present)
			cw.Int(sp.lastSeen)
			cw.Int(sp.streakStart)
			cw.Bool(sp.inInter)
		}
	}

	sort.Slice(w.dirtyWake, func(i, j int) bool { return w.dirtyWake[i] < w.dirtyWake[j] })
	cw.Int(len(w.dirtyWake))
	for _, v := range w.dirtyWake {
		cw.Varint(int64(v))
		cw.Int(w.wake[int(v)])
	}

	saveRingDelta(cw, w.expiry, w.dirtyExpiry)
	saveRingDelta(cw, w.pending, w.dirtyPending)

	rounds := make([]int, 0, len(w.dirtyByWake))
	for r := range w.dirtyByWake {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	cw.Int(len(rounds))
	for _, r := range rounds {
		cw.Int(r)
		bucket, ok := w.byWake[r]
		cw.Bool(ok)
		if ok {
			cw.Int(len(bucket))
			for _, v := range bucket {
				cw.Varint(int64(v))
			}
		}
	}

	if w.mode == feedGraph {
		cw.Int(len(w.prevEdges))
		for _, k := range w.prevEdges {
			cw.Uvarint(uint64(k))
		}
	}
}

// LoadDelta applies one delta record to a window positioned at the
// record's parent state. Chain linkage (sequence, parent fingerprint) is
// validated by the enclosing record's header at the engine layer; here
// the per-field invariants are checked — rounds move forward, the feed
// mode never flips, and every id, key and slot index stays in range.
// The window must have a noted base (LoadState + NoteCheckpoint).
func (w *Window) LoadDelta(cr *ckpt.Reader) {
	cr.Section(tagWindowDelta)
	if !w.track {
		cr.Fail(fmt.Errorf("dyngraph: LoadDelta without a restored base checkpoint"))
		return
	}
	round := cr.Int()
	mode := cr.Int()
	if cr.Err() != nil {
		return
	}
	switch {
	case round < w.round:
		cr.Fail(fmt.Errorf("dyngraph: delta round %d precedes window round %d", round, w.round))
	case mode != feedUnset && mode != feedGraph && mode != feedDelta:
		cr.Fail(fmt.Errorf("dyngraph: delta has unknown feed mode %d", mode))
	case w.mode != feedUnset && mode != w.mode:
		cr.Fail(fmt.Errorf("dyngraph: delta feed mode %d, window is pinned to %d", mode, w.mode))
	case w.mode == feedUnset && mode != feedUnset && w.round != 0:
		cr.Fail(fmt.Errorf("dyngraph: delta sets feed mode %d on an unfed window at round %d", mode, w.round))
	}
	if cr.Err() != nil {
		return
	}

	edgeCap := w.n * (w.n - 1) / 2
	nSpans := cr.Count(edgeCap)
	if cr.Err() != nil {
		return
	}
	var prevKey graph.EdgeKey
	for i := 0; i < nSpans; i++ {
		k := graph.EdgeKey(cr.Uvarint())
		exists := cr.Bool()
		if cr.Err() != nil {
			return
		}
		if i > 0 && k <= prevKey {
			cr.Fail(fmt.Errorf("dyngraph: delta span keys not strictly ascending"))
			return
		}
		prevKey = k
		if u, v := k.Nodes(); u < 0 || u >= v || int(v) >= w.n {
			cr.Fail(fmt.Errorf("dyngraph: delta span edge %v outside universe [0,%d)", k, w.n))
			return
		}
		if !exists {
			delete(w.spans, k)
			continue
		}
		sp := edgeSpan{}
		sp.present = cr.Bool()
		sp.lastSeen = cr.Int()
		sp.streakStart = cr.Int()
		sp.inInter = cr.Bool()
		if cr.Err() != nil {
			return
		}
		w.spans[k] = sp
	}

	nWake := cr.Count(w.n)
	if cr.Err() != nil {
		return
	}
	for i := 0; i < nWake; i++ {
		v := cr.Varint()
		r := cr.Int()
		if cr.Err() != nil {
			return
		}
		if v < 0 || v >= int64(w.n) || r < 1 || r > round {
			cr.Fail(fmt.Errorf("dyngraph: delta wake entry (%d, %d) out of range", v, r))
			return
		}
		if w.wake[v] != 0 && w.wake[v] != r {
			cr.Fail(fmt.Errorf("dyngraph: delta re-wakes node %d (round %d, was %d)", v, r, w.wake[v]))
			return
		}
		w.wake[v] = r
	}

	loadRingDelta(cr, w.expiry, w.t, edgeCap)
	loadRingDelta(cr, w.pending, w.t, edgeCap)
	if cr.Err() != nil {
		return
	}

	nBuckets := cr.Count(round + 1)
	if cr.Err() != nil {
		return
	}
	prevRound := -1
	for i := 0; i < nBuckets; i++ {
		r := cr.Int()
		exists := cr.Bool()
		if cr.Err() != nil {
			return
		}
		if r <= prevRound || r < 1 || r > round {
			cr.Fail(fmt.Errorf("dyngraph: delta wake bucket round %d out of order or range", r))
			return
		}
		prevRound = r
		if !exists {
			delete(w.byWake, r)
			continue
		}
		cnt := cr.Count(w.n)
		if cr.Err() != nil {
			return
		}
		bucket := make([]graph.NodeID, cnt)
		for j := range bucket {
			bucket[j] = graph.NodeID(cr.Varint())
		}
		if cr.Err() != nil {
			return
		}
		w.byWake[r] = bucket
	}

	if mode == feedGraph {
		nPrev := cr.Count(edgeCap)
		if cr.Err() != nil {
			return
		}
		prev := w.prevEdges[:0]
		for i := 0; i < nPrev; i++ {
			prev = append(prev, graph.EdgeKey(cr.Uvarint()))
		}
		if cr.Err() != nil {
			return
		}
		w.prevEdges = prev
	}

	w.round = round
	w.mode = mode
}

// saveRingDelta writes only the dirty slots of a ring, by index.
func saveRingDelta(cw *ckpt.Writer, ring [][]graph.EdgeKey, dirty []bool) {
	n := 0
	for _, d := range dirty {
		if d {
			n++
		}
	}
	cw.Int(n)
	for i, d := range dirty {
		if !d {
			continue
		}
		cw.Int(i)
		slot := ring[i]
		cw.Int(len(slot))
		for _, k := range slot {
			cw.Uvarint(uint64(k))
		}
	}
}

// loadRingDelta replaces the listed slots of a ring in place, reusing
// each slot's backing array.
func loadRingDelta(cr *ckpt.Reader, ring [][]graph.EdgeKey, t, edgeCap int) {
	n := cr.Count(t)
	if cr.Err() != nil {
		return
	}
	prev := -1
	for i := 0; i < n; i++ {
		idx := cr.Int()
		if cr.Err() != nil {
			return
		}
		if idx <= prev || idx >= t {
			cr.Fail(fmt.Errorf("dyngraph: delta ring slot %d out of order or range", idx))
			return
		}
		prev = idx
		cnt := cr.Count(edgeCap)
		if cr.Err() != nil {
			return
		}
		slot := ring[idx][:0]
		for j := 0; j < cnt; j++ {
			slot = append(slot, graph.EdgeKey(cr.Uvarint()))
		}
		if cr.Err() != nil {
			return
		}
		ring[idx] = slot
	}
}

// saveRing writes a t-slot edge-key ring verbatim.
func saveRing(cw *ckpt.Writer, ring [][]graph.EdgeKey) {
	cw.Int(len(ring))
	for _, slot := range ring {
		cw.Int(len(slot))
		for _, k := range slot {
			cw.Uvarint(uint64(k))
		}
	}
}

// loadRing restores a ring of exactly t slots.
func loadRing(cr *ckpt.Reader, t, edgeCap int) [][]graph.EdgeKey {
	n := cr.Count(t)
	if cr.Err() != nil {
		return nil
	}
	if n != t {
		cr.Fail(fmt.Errorf("dyngraph: checkpoint ring has %d slots, window needs %d", n, t))
		return nil
	}
	ring := make([][]graph.EdgeKey, t)
	for i := range ring {
		cnt := cr.Count(edgeCap)
		if cr.Err() != nil {
			return nil
		}
		if cnt == 0 {
			continue
		}
		slot := make([]graph.EdgeKey, cnt)
		for j := range slot {
			slot[j] = graph.EdgeKey(cr.Uvarint())
		}
		ring[i] = slot
	}
	return ring
}

var _ ckpt.Stater = (*Window)(nil)
