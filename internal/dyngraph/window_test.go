package dyngraph

import (
	"testing"
	"testing/quick"

	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
)

func wstream(seed uint64) *prf.Stream {
	return prf.NewStream(seed, 0, 0, prf.PurposeWorkload)
}

func allNodes(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

// directWindows computes G^∩T and G^∪T from first principles
// (Definition 2.1) given the full history of graphs (1-based rounds).
// Round 0 is the empty graph G_0 = (∅, ∅), so for r < T the intersection
// is empty and the union spans all rounds so far.
func directWindows(history []*graph.Graph, t int) (inter, union *graph.Graph) {
	r := len(history)
	n := history[0].N()
	r0 := r - t + 1
	if r0 < 1 {
		// Window reaches back to the empty round 0.
		union = graph.UnionAll(history)
		return graph.Empty(n), union
	}
	windowGraphs := history[r0-1 : r]
	return graph.IntersectAll(windowGraphs), graph.UnionAll(windowGraphs)
}

func TestWindowMatchesDefinitionDirectly(t *testing.T) {
	const n = 24
	const T = 4
	s := wstream(100)
	w := NewWindow(T, n)
	var history []*graph.Graph
	for round := 1; round <= 20; round++ {
		g := graph.GNP(n, 0.12, s)
		var wake []graph.NodeID
		if round == 1 {
			wake = allNodes(n)
		}
		w.Observe(g, wake)
		history = append(history, g)
		wantInter, wantUnion := directWindows(history, T)
		if got := w.IntersectionGraph(); !got.Equal(wantInter) {
			t.Fatalf("round %d: intersection mismatch\ngot  %s\nwant %s",
				round, got.DebugString(), wantInter.DebugString())
		}
		if got := w.UnionGraph(); !got.Equal(wantUnion) {
			t.Fatalf("round %d: union mismatch\ngot  %s\nwant %s",
				round, got.DebugString(), wantUnion.DebugString())
		}
	}
}

func TestWindowMatchesDefinitionProperty(t *testing.T) {
	f := func(seed uint16, tRaw, nRaw uint8) bool {
		T := int(tRaw%7) + 1
		n := int(nRaw%12) + 4
		s := wstream(uint64(seed))
		w := NewWindow(T, n)
		var history []*graph.Graph
		for round := 1; round <= 2*T+3; round++ {
			g := graph.GNP(n, 0.3, s)
			var wake []graph.NodeID
			if round == 1 {
				wake = allNodes(n)
			}
			w.Observe(g, wake)
			history = append(history, g)
			wantInter, wantUnion := directWindows(history, T)
			if !w.IntersectionGraph().Equal(wantInter) || !w.UnionGraph().Equal(wantUnion) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowMembershipQueries(t *testing.T) {
	w := NewWindow(3, 4)
	e := func(u, v graph.NodeID) *graph.Graph {
		return graph.FromEdges(4, []graph.EdgeKey{graph.MakeEdgeKey(u, v)})
	}
	w.Observe(e(0, 1), allNodes(4))
	// Round 1 < T: window still contains the empty round 0, so the
	// intersection is empty while the union already has the edge.
	if w.InIntersection(0, 1) || !w.InUnion(0, 1) {
		t.Fatal("round 1 membership wrong")
	}
	w.Observe(e(1, 2), nil)
	// Round 2 < T: intersection still empty.
	if w.InIntersection(0, 1) || !w.InUnion(0, 1) {
		t.Fatal("round 2: {0,1} should be union-only")
	}
	if w.InIntersection(1, 2) || !w.InUnion(1, 2) {
		t.Fatal("round 2: {1,2} present 1 of 2 rounds")
	}
	w.Observe(e(1, 2), nil)
	w.Observe(e(1, 2), nil)
	// Round 4, window = {2,3,4}: {1,2} present in all -> intersection.
	if !w.InIntersection(1, 2) {
		t.Fatal("round 4: {1,2} should be in intersection")
	}
	if w.InUnion(0, 1) {
		t.Fatal("round 4: {0,1} expired from union")
	}
	if w.InIntersection(2, 2) || w.InUnion(3, 3) {
		t.Fatal("self loops must never be members")
	}
}

func TestWindowStreakBrokenByAbsence(t *testing.T) {
	w := NewWindow(3, 3)
	edge := graph.FromEdges(3, []graph.EdgeKey{graph.MakeEdgeKey(0, 1)})
	empty := graph.Empty(3)
	w.Observe(edge, allNodes(3))
	w.Observe(empty, nil)
	w.Observe(edge, nil)
	// Present rounds 1 and 3, absent 2: union yes, intersection no.
	if w.InIntersection(0, 1) {
		t.Fatal("broken streak still in intersection")
	}
	if !w.InUnion(0, 1) {
		t.Fatal("recently present edge missing from union")
	}
	w.Observe(edge, nil)
	w.Observe(edge, nil)
	// Rounds 3,4,5 all present: back in intersection.
	if !w.InIntersection(0, 1) {
		t.Fatal("restored streak not in intersection")
	}
}

func TestWindowWakeTracking(t *testing.T) {
	const T = 3
	w := NewWindow(T, 5)
	empty := graph.Empty(5)
	w.Observe(empty, []graph.NodeID{0, 1}) // round 1
	w.Observe(empty, []graph.NodeID{2})    // round 2
	w.Observe(empty, nil)                  // round 3
	// r0 = 1: core = nodes awake since round 1.
	core := w.CoreNodes()
	if len(core) != 2 || core[0] != 0 || core[1] != 1 {
		t.Fatalf("core at round 3 = %v", core)
	}
	w.Observe(empty, nil) // round 4, r0 = 2
	if !w.InCore(2) {
		t.Fatal("node 2 should join core at round 4")
	}
	if w.InCore(4) {
		t.Fatal("never-woken node in core")
	}
	if w.AwakeSince(2) != 2 || w.AwakeSince(4) != 0 {
		t.Fatal("AwakeSince wrong")
	}
}

func TestWindowRejectsSleepingEdges(t *testing.T) {
	w := NewWindow(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for edge touching sleeping node")
		}
	}()
	w.Observe(graph.FromEdges(3, []graph.EdgeKey{graph.MakeEdgeKey(0, 2)}), []graph.NodeID{0, 1})
}

func TestWindowPurgeKeepsSemantics(t *testing.T) {
	// Run long enough to trigger several purges and verify no live edge is
	// lost and stale edges are dropped from the map.
	const n = 16
	const T = 3
	s := wstream(5)
	w := NewWindow(T, n)
	var history []*graph.Graph
	for round := 1; round <= 40; round++ {
		g := graph.GNP(n, 0.1, s)
		var wake []graph.NodeID
		if round == 1 {
			wake = allNodes(n)
		}
		w.Observe(g, wake)
		history = append(history, g)
	}
	wantInter, wantUnion := directWindows(history, T)
	if !w.IntersectionGraph().Equal(wantInter) {
		t.Fatal("intersection wrong after purges")
	}
	if !w.UnionGraph().Equal(wantUnion) {
		t.Fatal("union wrong after purges")
	}
	if len(w.spans) > 4*wantUnion.M()+4*T {
		t.Fatalf("span map not purged: %d entries for %d union edges", len(w.spans), wantUnion.M())
	}
}

func TestWindowStats(t *testing.T) {
	w := NewWindow(2, 4)
	g := graph.FromEdges(4, []graph.EdgeKey{graph.MakeEdgeKey(0, 1), graph.MakeEdgeKey(2, 3)})
	w.Observe(g, allNodes(4))
	w.Observe(graph.FromEdges(4, []graph.EdgeKey{graph.MakeEdgeKey(0, 1)}), nil)
	st := w.Stats()
	if st.Round != 2 || st.UnionEdges != 2 || st.IntersectionEdges != 1 || st.CoreNodes != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if !w.Full() {
		t.Fatal("window should be full after T rounds")
	}
}

func TestNewWindowValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for T=0")
		}
	}()
	NewWindow(0, 5)
}

// deltaMirror folds Window deltas into running sets, to check that the
// emitted events reconstruct the windowed sets exactly.
type deltaMirror struct {
	inter map[graph.EdgeKey]bool
	union map[graph.EdgeKey]bool
	core  map[graph.NodeID]bool
}

func newDeltaMirror() *deltaMirror {
	return &deltaMirror{
		inter: make(map[graph.EdgeKey]bool),
		union: make(map[graph.EdgeKey]bool),
		core:  make(map[graph.NodeID]bool),
	}
}

func (m *deltaMirror) apply(t *testing.T, d *Delta) {
	t.Helper()
	for _, k := range d.InterAdded {
		if m.inter[k] {
			t.Fatalf("round %d: inter add of present edge %v", d.Round, k)
		}
		m.inter[k] = true
	}
	for _, k := range d.InterRemoved {
		if !m.inter[k] {
			t.Fatalf("round %d: inter remove of absent edge %v", d.Round, k)
		}
		delete(m.inter, k)
	}
	for _, k := range d.UnionAdded {
		if m.union[k] {
			t.Fatalf("round %d: union add of present edge %v", d.Round, k)
		}
		m.union[k] = true
	}
	for _, k := range d.UnionRemoved {
		if !m.union[k] {
			t.Fatalf("round %d: union remove of absent edge %v", d.Round, k)
		}
		delete(m.union, k)
	}
	for _, v := range d.CoreEntered {
		if m.core[v] {
			t.Fatalf("round %d: core enter of member %d", d.Round, v)
		}
		m.core[v] = true
	}
	if len(d.CoreLeft) != 0 {
		t.Fatalf("round %d: core shrank: %v", d.Round, d.CoreLeft)
	}
}

func (m *deltaMirror) check(t *testing.T, w *Window) {
	t.Helper()
	inter, union := w.IntersectionGraph(), w.UnionGraph()
	if inter.M() != len(m.inter) || union.M() != len(m.union) {
		t.Fatalf("round %d: delta sets |∩|=%d |∪|=%d, graphs |∩|=%d |∪|=%d",
			w.Round(), len(m.inter), len(m.union), inter.M(), union.M())
	}
	for k := range m.inter {
		u, v := k.Nodes()
		if !inter.HasEdge(u, v) {
			t.Fatalf("round %d: delta-set edge %v not in intersection graph", w.Round(), k)
		}
	}
	for k := range m.union {
		u, v := k.Nodes()
		if !union.HasEdge(u, v) {
			t.Fatalf("round %d: delta-set edge %v not in union graph", w.Round(), k)
		}
	}
	core := w.CoreNodes()
	if len(core) != len(m.core) {
		t.Fatalf("round %d: delta core size %d, CoreNodes %d", w.Round(), len(m.core), len(core))
	}
	for _, v := range core {
		if !m.core[v] {
			t.Fatalf("round %d: core node %d missing from delta set", w.Round(), v)
		}
	}
}

// TestWindowDeltasReconstructSets drives ObserveDelta over a churn-style
// schedule with staggered wake-ups and checks that folding the emitted
// events reproduces the materialized window sets every round.
func TestWindowDeltasReconstructSets(t *testing.T) {
	for _, T := range []int{1, 2, 3, 5, 8} {
		const n = 24
		s := wstream(uint64(200 + T))
		w := NewWindow(T, n)
		m := newDeltaMirror()
		awake := make([]bool, n)
		for round := 1; round <= 4*T+10; round++ {
			// Wake three nodes per round until all are awake.
			var wake []graph.NodeID
			for i := 0; i < 3; i++ {
				v := graph.NodeID((round-1)*3 + i)
				if int(v) < n {
					wake = append(wake, v)
					awake[v] = true
				}
			}
			// Random graph restricted to awake nodes.
			var keys []graph.EdgeKey
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					if awake[u] && awake[v] && s.Intn(5) == 0 {
						keys = append(keys, graph.MakeEdgeKey(graph.NodeID(u), graph.NodeID(v)))
					}
				}
			}
			d := w.ObserveDelta(graph.FromSortedEdges(n, keys), wake)
			if d.Round != round {
				t.Fatalf("delta round = %d, want %d", d.Round, round)
			}
			m.apply(t, d)
			m.check(t, w)
		}
	}
}

// TestWindowDeltaSlicesSorted pins the documented ascending order of every
// delta slice.
func TestWindowDeltaSlicesSorted(t *testing.T) {
	const n = 20
	const T = 4
	s := wstream(99)
	w := NewWindow(T, n)
	sortedKeys := func(ks []graph.EdgeKey) bool {
		for i := 1; i < len(ks); i++ {
			if ks[i-1] >= ks[i] {
				return false
			}
		}
		return true
	}
	for round := 1; round <= 16; round++ {
		var wake []graph.NodeID
		if round == 1 {
			wake = allNodes(n)
		}
		d := w.ObserveDelta(graph.GNP(n, 0.25, s), wake)
		for name, ks := range map[string][]graph.EdgeKey{
			"InterAdded": d.InterAdded, "InterRemoved": d.InterRemoved,
			"UnionAdded": d.UnionAdded, "UnionRemoved": d.UnionRemoved,
		} {
			if !sortedKeys(ks) {
				t.Fatalf("round %d: %s not strictly ascending: %v", round, name, ks)
			}
		}
		for i := 1; i < len(d.CoreEntered); i++ {
			if d.CoreEntered[i-1] >= d.CoreEntered[i] {
				t.Fatalf("round %d: CoreEntered not ascending: %v", round, d.CoreEntered)
			}
		}
	}
}

func BenchmarkWindowObserve(b *testing.B) {
	const n = 2048
	s := wstream(1)
	graphs := make([]*graph.Graph, 8)
	for i := range graphs {
		graphs[i] = graph.GNP(n, 4.0/n, s)
	}
	w := NewWindow(12, n)
	w.Observe(graphs[0], allNodes(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Observe(graphs[i%len(graphs)], nil)
	}
}

func BenchmarkWindowMaterialize(b *testing.B) {
	const n = 2048
	s := wstream(2)
	w := NewWindow(12, n)
	for round := 0; round < 24; round++ {
		var wake []graph.NodeID
		if round == 0 {
			wake = allNodes(n)
		}
		w.Observe(graph.GNP(n, 4.0/n, s), wake)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.IntersectionGraph()
		_ = w.UnionGraph()
	}
}
