package dyngraph

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"dynlocal/internal/ckpt"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
)

// randomToggles draws a PRF-deterministic toggle schedule over the woken
// prefix of the universe, waking a few more nodes each round.
func randomToggles(s *deltaSchedule, seed uint64, round int) []graph.EdgeKey {
	str := prf.NewStream(seed, -2, round, prf.PurposeWorkload)
	wakeUpTo := min(s.n, 4+3*round)
	for v := 0; v < wakeUpTo; v++ {
		s.awake[v] = true
	}
	var toggles []graph.EdgeKey
	for i := 0; i < s.n/2; i++ {
		u := graph.NodeID(str.Intn(wakeUpTo))
		v := graph.NodeID(str.Intn(wakeUpTo))
		if u == v {
			continue
		}
		toggles = append(toggles, graph.MakeEdgeKey(u, v))
	}
	return toggles
}

// wakeList returns the nodes newly awake this round under randomToggles'
// staggered schedule.
func wakeList(n, round int) []graph.NodeID {
	lo, hi := 4+3*(round-1), min(n, 4+3*round)
	if round == 1 {
		lo = 0
	}
	var ws []graph.NodeID
	for v := lo; v < hi; v++ {
		ws = append(ws, graph.NodeID(v))
	}
	return ws
}

// TestWindowCheckpointRoundTrip drives a window to round k, serializes
// it, restores into a fresh window and requires every subsequent Delta,
// membership query and materialized graph to match the uninterrupted
// window — for both feed styles and window sizes including the T=1
// boundary.
func TestWindowCheckpointRoundTrip(t *testing.T) {
	const n = 32
	const rounds = 20
	for _, mode := range []string{"delta", "scan"} {
		for _, T := range []int{1, 4, 7} {
			for _, k := range []int{0, 1, 5, T, rounds - 1} {
				t.Run(fmt.Sprintf("%s/t=%d/k=%d", mode, T, k), func(t *testing.T) {
					ref := NewWindow(T, n)
					sched := newDeltaSchedule(n)
					var ckBytes []byte
					snapshot := func() []byte {
						var buf bytes.Buffer
						w := ckpt.NewWriter(&buf)
						ref.SaveState(w)
						if err := w.Close(); err != nil {
							t.Fatalf("save: %v", err)
						}
						return buf.Bytes()
					}
					if k == 0 {
						ckBytes = snapshot()
					}
					type roundData struct {
						d     Delta
						stats Stats
					}
					var tailRef []roundData
					for r := 1; r <= rounds; r++ {
						adds, removes, g := sched.round(randomToggles(sched, 7, r))
						var d *Delta
						if mode == "delta" {
							d = ref.ObserveEdgeDelta(adds, removes, wakeList(n, r))
						} else {
							d = ref.ObserveDelta(g, wakeList(n, r))
						}
						if r > k {
							tailRef = append(tailRef, roundData{copyDelta(d), ref.Stats()})
						}
						if r == k {
							ckBytes = snapshot()
						}
					}

					res := NewWindow(T, n)
					r := ckpt.NewReader(bytes.NewReader(ckBytes))
					res.LoadState(r)
					if err := r.Close(); err != nil {
						t.Fatalf("load: %v", err)
					}
					if res.Round() != k {
						t.Fatalf("restored round %d, want %d", res.Round(), k)
					}
					sched2 := newDeltaSchedule(n)
					for r := 1; r <= rounds; r++ {
						adds, removes, g := sched2.round(randomToggles(sched2, 7, r))
						if r <= k {
							continue // schedule replay only; window starts at k
						}
						var d *Delta
						if mode == "delta" {
							d = res.ObserveEdgeDelta(adds, removes, wakeList(n, r))
						} else {
							d = res.ObserveDelta(g, wakeList(n, r))
						}
						got := roundData{copyDelta(d), res.Stats()}
						want := tailRef[r-k-1]
						if !reflect.DeepEqual(got.d, want.d) {
							t.Fatalf("round %d: delta diverges\ngot  %+v\nwant %+v", r, got.d, want.d)
						}
						if got.stats != want.stats {
							t.Fatalf("round %d: stats %+v vs %+v", r, got.stats, want.stats)
						}
					}
				})
			}
		}
	}
}

// TestWindowCheckpointDeterministicBytes requires two snapshots of
// identical windows to be byte-identical.
func TestWindowCheckpointDeterministicBytes(t *testing.T) {
	const n = 24
	mk := func() []byte {
		w := NewWindow(3, n)
		sched := newDeltaSchedule(n)
		for r := 1; r <= 9; r++ {
			adds, removes, _ := sched.round(randomToggles(sched, 5, r))
			w.ObserveEdgeDelta(adds, removes, wakeList(n, r))
		}
		var buf bytes.Buffer
		cw := ckpt.NewWriter(&buf)
		w.SaveState(cw)
		if err := cw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := mk(), mk(); !bytes.Equal(a, b) {
		t.Fatalf("snapshots of identical windows differ: %d vs %d bytes", len(a), len(b))
	}
}

// TestWindowLoadStateRejects pins the restore-side validation.
func TestWindowLoadStateRejects(t *testing.T) {
	const n = 16
	w := NewWindow(3, n)
	sched := newDeltaSchedule(n)
	for r := 1; r <= 5; r++ {
		adds, removes, _ := sched.round(randomToggles(sched, 3, r))
		w.ObserveEdgeDelta(adds, removes, wakeList(n, r))
	}
	var buf bytes.Buffer
	cw := ckpt.NewWriter(&buf)
	w.SaveState(cw)
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	ck := buf.Bytes()

	load := func(dst *Window, b []byte) error {
		r := ckpt.NewReader(bytes.NewReader(b))
		dst.LoadState(r)
		if err := r.Err(); err != nil {
			return err
		}
		return r.Close()
	}
	if err := load(NewWindow(4, n), ck); err == nil {
		t.Fatal("restore into different window size succeeded")
	}
	if err := load(NewWindow(3, n+1), ck); err == nil {
		t.Fatal("restore into different universe succeeded")
	}
	used := NewWindow(3, n)
	used.ObserveEdgeDelta(nil, nil, []graph.NodeID{0, 1})
	if err := load(used, ck); err == nil {
		t.Fatal("restore into used window succeeded")
	}
	for cut := 0; cut < len(ck); cut += 13 {
		if err := load(NewWindow(3, n), ck[:cut]); err == nil {
			t.Fatalf("restore of %d-byte prefix succeeded", cut)
		}
	}
}
