package dyngraph

import (
	"math"
	"testing"
	"testing/quick"

	"dynlocal/internal/graph"
)

// directFracGraph computes G^{δ,T} from the raw history. The threshold is
// ⌈δ·T⌉ over the full window size, with the same rounding guard as the
// implementation so that decimally-exact products (0.2·15 = 3) are not
// inflated by float64 rounding; rounds before the sequence started count
// as absent (round 0 is the empty graph).
func directFracGraph(history []*graph.Graph, T int, delta float64) *graph.Graph {
	r := len(history)
	r0 := r - T + 1
	if r0 < 1 {
		r0 = 1
	}
	th := int(math.Ceil(delta*float64(T) - fracTolerance))
	if th < 1 {
		th = 1
	}
	counts := make(map[graph.EdgeKey]int)
	for _, g := range history[r0-1 : r] {
		g.EachEdge(func(u, v graph.NodeID) {
			counts[graph.MakeEdgeKey(u, v)]++
		})
	}
	b := graph.NewBuilder(history[0].N())
	for k, c := range counts {
		if c >= th {
			b.AddEdgeKey(k)
		}
	}
	return b.Graph()
}

func TestFracWindowMatchesDirect(t *testing.T) {
	const n = 20
	const T = 5
	s := wstream(77)
	w := NewFracWindow(T, n)
	var history []*graph.Graph
	for round := 1; round <= 18; round++ {
		g := graph.GNP(n, 0.2, s)
		var wake []graph.NodeID
		if round == 1 {
			wake = allNodes(n)
		}
		w.Observe(g, wake)
		history = append(history, g)
		for _, delta := range []float64{0.2, 0.5, 0.8, 1.0} {
			got := w.Graph(delta)
			want := directFracGraph(history, T, delta)
			if !got.Equal(want) {
				t.Fatalf("round %d δ=%v mismatch\ngot  %s\nwant %s",
					round, delta, got.DebugString(), want.DebugString())
			}
		}
	}
}

func TestFracWindowDeltaOneEqualsIntersection(t *testing.T) {
	f := func(seed uint16) bool {
		const n = 14
		const T = 4
		s := wstream(uint64(seed))
		fw := NewFracWindow(T, n)
		w := NewWindow(T, n)
		for round := 1; round <= 12; round++ {
			g := graph.GNP(n, 0.25, s)
			var wake []graph.NodeID
			if round == 1 {
				wake = allNodes(n)
			}
			fw.Observe(g.Clone(), wake)
			w.Observe(g, wake)
			if !fw.Graph(1.0).Equal(w.IntersectionGraph()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFracWindowSmallDeltaEqualsUnion(t *testing.T) {
	// δ small enough that threshold = 1 => union graph.
	const n = 14
	const T = 6
	s := wstream(123)
	fw := NewFracWindow(T, n)
	w := NewWindow(T, n)
	for round := 1; round <= 15; round++ {
		g := graph.GNP(n, 0.2, s)
		var wake []graph.NodeID
		if round == 1 {
			wake = allNodes(n)
		}
		fw.Observe(g.Clone(), wake)
		w.Observe(g, wake)
		if !fw.Graph(0.01).Equal(w.UnionGraph()) {
			t.Fatalf("round %d: δ→0 graph differs from union", round)
		}
	}
}

func TestFracWindowMonotoneInDelta(t *testing.T) {
	// Increasing δ can only remove edges.
	const n = 16
	const T = 5
	s := wstream(321)
	fw := NewFracWindow(T, n)
	for round := 1; round <= 10; round++ {
		var wake []graph.NodeID
		if round == 1 {
			wake = allNodes(n)
		}
		fw.Observe(graph.GNP(n, 0.3, s), wake)
	}
	deltas := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0}
	prev := fw.Graph(deltas[0])
	for _, d := range deltas[1:] {
		cur := fw.Graph(d)
		cur.EachEdge(func(u, v graph.NodeID) {
			if !prev.HasEdge(u, v) {
				t.Fatalf("δ=%v has edge {%d,%d} missing at smaller δ", d, u, v)
			}
		})
		prev = cur
	}
}

func TestFracWindowCount(t *testing.T) {
	w := NewFracWindow(4, 3)
	e := graph.FromEdges(3, []graph.EdgeKey{graph.MakeEdgeKey(0, 1)})
	empty := graph.Empty(3)
	w.Observe(e, allNodes(3))
	w.Observe(empty, nil)
	w.Observe(e, nil)
	if got := w.Count(0, 1); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	w.Observe(empty, nil)
	w.Observe(empty, nil)
	// Window covers rounds 2..5: edge present only in round 3.
	if got := w.Count(0, 1); got != 1 {
		t.Fatalf("Count after aging = %d, want 1", got)
	}
	if w.Count(1, 1) != 0 {
		t.Fatal("self loop count nonzero")
	}
}

// TestFracWindowThreshold pins ⌈δ·T⌉ for products that are exact integers
// in decimal arithmetic — where the former truncate-then-compare float
// computation inflated the threshold by one (0.2·15 = 3.0000000000000004 →
// 4) — and for true fractions, which must still round up.
func TestFracWindowThreshold(t *testing.T) {
	cases := []struct {
		t     int
		delta float64
		want  int
	}{
		// Decimally exact products: threshold must be the product itself.
		{15, 0.2, 3},
		{30, 0.1, 3},
		{16, 0.25, 4},
		{10, 0.3, 3},
		{7, 1.0, 7},
		// True fractions: round up.
		{10, 0.35, 4},
		{5, 0.5, 3},
		{3, 0.34, 2},
		{64, 0.4, 26},
		// Tiny δ clamps to 1.
		{64, 0.01, 1},
		{4, 0.1, 1},
	}
	for _, c := range cases {
		w := NewFracWindow(c.t, 2)
		if got := w.threshold(c.delta); got != c.want {
			t.Errorf("threshold(δ=%v, T=%d) = %d, want %d", c.delta, c.t, got, c.want)
		}
	}
}

// TestFracWindowExactProductKeepsEdges checks end to end that δ values
// whose product with T is decimally exact do not drop edges: with δ = 0.2
// and T = 15, an edge present in exactly 3 of the last 15 rounds must be
// in G^{0.2,15}.
func TestFracWindowExactProductKeepsEdges(t *testing.T) {
	const T = 15
	const n = 2
	w := NewFracWindow(T, n)
	e := graph.FromEdges(n, []graph.EdgeKey{graph.MakeEdgeKey(0, 1)})
	empty := graph.Empty(n)
	w.Observe(empty, allNodes(n))
	for r := 2; r <= T; r++ {
		if r <= 4 {
			w.Observe(e, nil) // present rounds 2, 3, 4 — count 3
		} else {
			w.Observe(empty, nil)
		}
	}
	if got := w.Count(0, 1); got != 3 {
		t.Fatalf("edge count = %d, want 3", got)
	}
	if !w.Graph(0.2).HasEdge(0, 1) {
		t.Fatal("edge with count 3 = 0.2·15 missing from G^{0.2,15}")
	}
	if w.Graph(0.3).HasEdge(0, 1) {
		t.Fatal("edge with count 3 < ⌈0.3·15⌉ = 5 wrongly included")
	}
}

func TestFracWindowRejectsSleepingEdges(t *testing.T) {
	w := NewFracWindow(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for edge touching sleeping node")
		}
	}()
	w.Observe(graph.FromEdges(3, []graph.EdgeKey{graph.MakeEdgeKey(0, 2)}), []graph.NodeID{0, 1})
}

func TestFracWindowValidation(t *testing.T) {
	for _, bad := range []int{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for T=%d", bad)
				}
			}()
			NewFracWindow(bad, 4)
		}()
	}
	w := NewFracWindow(4, 4)
	for _, badDelta := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for delta=%v", badDelta)
				}
			}()
			w.Graph(badDelta)
		}()
	}
}
