package dyngraph

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"dynlocal/internal/graph"
)

// FuzzDecodeTrace feeds arbitrary bytes to the trace decoder. The decoder
// must either reject the input with an error or produce a trace that is
// fully usable: replayable without panics (every edge key within the node
// universe, no self-loops) and stable under a re-encode/re-decode round
// trip.
func FuzzDecodeTrace(f *testing.F) {
	// Seed corpus: a genuine encoded trace, prefix truncations of it, and
	// the corrupt fixtures from the unit tests.
	tr, _ := buildSampleTrace(f, 3, 10, 5)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:5])
	f.Add([]byte("DYNT"))
	f.Add([]byte("NOPE"))
	f.Add(corruptTrace(1, 4, 1, 0, 1<<40))
	f.Add(corruptTrace(1, 1<<33, 0))
	f.Add(corruptTrace(1, 4, 1, 0, 2, 1<<32|2, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded ids must be in range (linear in input size).
		for i, st := range tr.rounds {
			for _, v := range st.wake {
				if int(v) < 0 || int(v) >= tr.N() {
					t.Fatalf("round %d: wake id %d outside [0,%d)", i+1, v, tr.N())
				}
			}
		}
		// Re-encode and re-decode: must succeed and agree step for step.
		var out bytes.Buffer
		if err := tr.Encode(&out); err != nil {
			t.Fatalf("re-encode of decoded trace: %v", err)
		}
		tr2, err := DecodeTrace(&out)
		if err != nil {
			t.Fatalf("re-decode of re-encoded trace: %v", err)
		}
		if tr2.N() != tr.N() || !reflect.DeepEqual(tr.rounds, tr2.rounds) {
			t.Fatalf("round trip changed trace: n %d→%d", tr.N(), tr2.N())
		}
		// Replay/GraphAt must not panic on validated input. Both are
		// O(rounds·n) by nature, so bound them: a hostile input can claim
		// ~3 bytes per empty round and a large n, and unbounded replay
		// would turn one fuzz exec quadratic and trip the hang detector.
		if tr.Rounds() > 0 && tr.Rounds()*(tr.N()+1) <= 1<<22 {
			rounds := 0
			var last *graph.Graph
			tr.Replay(func(r int, g *graph.Graph, wake []graph.NodeID) {
				rounds++
				last = g
			})
			if rounds != tr.Rounds() {
				t.Fatalf("replayed %d of %d rounds", rounds, tr.Rounds())
			}
			if !tr.GraphAt(tr.Rounds()).Equal(last) {
				t.Fatal("GraphAt(last) differs from final Replay graph")
			}
		}
	})
}

// FuzzStreamDecoder feeds arbitrary bytes to the streaming trace decoder.
// It must behave exactly like the in-memory DecodeTrace on every input —
// same accept/reject decision, same per-round deltas — and never panic or
// allocate proportionally to hostile claimed counts. The corpus seeds are
// the FuzzDecodeTrace ones: a valid stream, truncations, and the corrupt
// unit-test fixtures.
func FuzzStreamDecoder(f *testing.F) {
	tr, _ := buildSampleTrace(f, 3, 10, 5)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:5])
	f.Add([]byte("DYNT"))
	f.Add([]byte("NOPE"))
	f.Add(corruptTrace(1, 4, 1, 0, 1<<40))
	f.Add(corruptTrace(1, 1<<33, 0))
	f.Add(corruptTrace(1, 4, 1, 0, 2, 1<<32|2, 0))
	f.Add(corruptTrace(1, 4, 2, 0, 1, 1, 0, 0, 1, 1, 0))
	f.Add(corruptTrace(1, 4, 1<<40))

	f.Fuzz(func(t *testing.T, data []byte) {
		memTr, memErr := DecodeTrace(bytes.NewReader(data))

		d, err := NewStreamDecoder(bytes.NewReader(data))
		if err != nil {
			if memErr == nil {
				t.Fatalf("stream header rejected input DecodeTrace accepts: %v", err)
			}
			return
		}
		rounds := 0
		present := make(map[graph.EdgeKey]struct{})
		for {
			tr, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if memErr == nil {
					t.Fatalf("stream round %d rejected input DecodeTrace accepts: %v", rounds+1, err)
				}
				return
			}
			rounds++
			// Surviving rounds uphold the full delta contract: in-range
			// ids, strictly ascending keys, consistent add/remove.
			for _, v := range tr.Wake {
				if int(v) < 0 || int(v) >= d.N() {
					t.Fatalf("round %d: wake id %d outside [0,%d)", rounds, v, d.N())
				}
			}
			checkAscendingKeys(t, rounds, "adds", tr.Adds, d.N())
			checkAscendingKeys(t, rounds, "removes", tr.Removes, d.N())
			for _, k := range tr.Adds {
				if _, ok := present[k]; ok {
					t.Fatalf("round %d: add of present edge %v survived validation", rounds, k)
				}
				present[k] = struct{}{}
			}
			for _, k := range tr.Removes {
				if _, ok := present[k]; !ok {
					t.Fatalf("round %d: remove of absent edge %v survived validation", rounds, k)
				}
				delete(present, k)
			}
		}
		if memErr != nil {
			t.Fatalf("stream decoded input DecodeTrace rejects: %v", memErr)
		}
		if rounds != memTr.Rounds() {
			t.Fatalf("stream yielded %d rounds, DecodeTrace %d", rounds, memTr.Rounds())
		}
	})
}

func checkAscendingKeys(t *testing.T, round int, kind string, keys []graph.EdgeKey, n int) {
	t.Helper()
	for i, k := range keys {
		if i > 0 && keys[i-1] >= k {
			t.Fatalf("round %d: %s not strictly ascending", round, kind)
		}
		u, v := k.Nodes()
		if int(u) < 0 || int(v) < 0 || int(u) >= int(v) || int(v) >= n {
			t.Fatalf("round %d: %s key %v invalid for %d nodes", round, kind, k, n)
		}
	}
}
