package dyngraph

import (
	"fmt"
	"math"
	"math/bits"

	"dynlocal/internal/graph"
)

// FracWindow implements the δ-fraction window generalization proposed as
// future work in Section 7.2 of the paper: the graph G^{δ,T}_r contains the
// edges that were present in at least ⌈δ·W⌉ of the last W = min(r, T)
// observed rounds, for δ ∈ (0, 1]. δ = 1 recovers the intersection-style
// requirement "present in every round of the window" and δ → 0 approaches
// the union graph (any single appearance suffices).
//
// Presence is tracked as a per-edge rolling bitmask; the window size is
// limited to 64 rounds, which is not a practical restriction since the
// paper's windows are T = O(log n).
type FracWindow struct {
	t       int
	n       int
	round   int
	mask    map[graph.EdgeKey]uint64
	wake    []int
	scratch []graph.EdgeKey // reused by Graph materialization
}

// NewFracWindow creates a δ-fraction window of size 1 <= t <= 64.
func NewFracWindow(t, n int) *FracWindow {
	if t < 1 || t > 64 {
		panic(fmt.Sprintf("dyngraph: frac window size %d outside [1,64]", t))
	}
	return &FracWindow{t: t, n: n, mask: make(map[graph.EdgeKey]uint64), wake: make([]int, n)}
}

// T returns the window size.
func (w *FracWindow) T() int { return w.t }

// Round returns the last observed round.
func (w *FracWindow) Round() int { return w.round }

// Observe advances the window with the round graph g and newly awake nodes.
// As for Window.Observe, edges incident to nodes that have never been woken
// are rejected with a panic: the model only allows edges between awake
// nodes.
func (w *FracWindow) Observe(g *graph.Graph, wakeNow []graph.NodeID) {
	if g.N() != w.n {
		panic("dyngraph: graph node space does not match frac window")
	}
	w.round++
	for _, v := range wakeNow {
		if w.wake[v] == 0 {
			w.wake[v] = w.round
		}
	}
	// Age all known edges by one round; drop the ones that left the window
	// entirely. keep keeps the low t bits only.
	keep := ^uint64(0)
	if w.t < 64 {
		keep = (1 << uint(w.t)) - 1
	}
	for k, m := range w.mask {
		m = (m << 1) & keep
		if m == 0 {
			delete(w.mask, k)
		} else {
			w.mask[k] = m
		}
	}
	// Panic formatting lives behind the branch in panicSleepingEdge so
	// the per-edge loop stays free of fmt machinery.
	for _, k := range g.EdgeKeys() {
		u, v := k.Nodes()
		if w.wake[u] == 0 || w.wake[v] == 0 {
			panicSleepingEdge(u, v, w.round)
		}
		w.mask[k] |= 1
	}
}

// Count returns in how many of the windowed rounds the edge was present.
func (w *FracWindow) Count(u, v graph.NodeID) int {
	if u == v {
		return 0
	}
	return bits.OnesCount64(w.mask[graph.MakeEdgeKey(u, v)])
}

// fracTolerance absorbs the binary rounding of the product δ·T when
// computing ⌈δ·T⌉: products that are exact integers in decimal arithmetic
// (0.2·15 = 3) come out of float64 multiplication a few ulps high
// (3.0000000000000004) and a plain ceiling would inflate the threshold by
// one, silently dropping edges from G^{δ,T}. With T ≤ 64 the accumulated
// rounding error is below 2⁻⁴⁶, many orders of magnitude under this guard,
// while genuine fractions at the window sizes of interest (denominator
// ≤ T ≤ 64) sit at least 1/64 above the guarded integer.
const fracTolerance = 1e-9

// threshold returns the presence count required for inclusion at fraction
// delta: ⌈δ·T⌉, clamped to at least 1. The fraction is always taken over
// the full window size T; rounds before the sequence started count as
// absent (the paper's round 0 is the empty graph), so δ = 1 reproduces the
// intersection graph's empty-before-round-T behavior.
func (w *FracWindow) threshold(delta float64) int {
	th := int(math.Ceil(delta*float64(w.t) - fracTolerance))
	if th < 1 {
		th = 1
	}
	return th
}

// Graph materializes G^{δ,T}_r for the given δ ∈ (0, 1].
func (w *FracWindow) Graph(delta float64) *graph.Graph {
	if delta <= 0 || delta > 1 {
		panic(fmt.Sprintf("dyngraph: delta %v outside (0,1]", delta))
	}
	th := w.threshold(delta)
	keys := w.scratch[:0]
	for k, m := range w.mask {
		if bits.OnesCount64(m) >= th {
			keys = append(keys, k)
		}
	}
	w.scratch = keys
	return graph.FromEdges(w.n, keys)
}

// CoreNodes returns the nodes awake throughout the window, as for Window
// (empty before round T).
func (w *FracWindow) CoreNodes() []graph.NodeID {
	r0 := w.round - w.t + 1
	if r0 < 1 {
		return nil
	}
	var out []graph.NodeID
	for v := 0; v < w.n; v++ {
		if w.wake[v] != 0 && w.wake[v] <= r0 {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}
