// Package baseline implements the comparison algorithms the paper argues
// against, for experiment E9:
//
//   - GreedyRepair: the recovery-period approach (in the spirit of
//     [CHHK16]): maintain a solution for the current graph and locally
//     repair it after each change with randomized contention resolution.
//     Its repair guarantees assume changes stop while recovering; under
//     constant churn it exhibits persistent violations of the T-dynamic
//     condition — the phenomenon motivating the paper (Section 1).
//   - Restart: the strawman from Section 1.1 — restart the dynamic
//     algorithm pipeline every round WITHOUT a network-static base
//     algorithm. Always produces a T-dynamic solution, but the output can
//     change completely from round to round even on a static graph, which
//     the output-churn metric exposes.
package baseline

import (
	"dynlocal/internal/core"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

// GreedyRepairMIS maintains an MIS of the current graph with local
// repair: a node in M that becomes adjacent to another M node re-decides
// by a coin flip after one recovery round; an undominated D node becomes
// undecided; undecided nodes join M with probability 1/(degree+1) if no
// neighbor is in M, becoming M if no contending candidate.
type GreedyRepairMIS struct {
	N int
}

// Name implements engine.Algorithm.
func (g GreedyRepairMIS) Name() string { return "greedy-repair-mis" }

// NewNode implements engine.Algorithm.
func (g GreedyRepairMIS) NewNode(v graph.NodeID) engine.NodeProc {
	return &greedyNode{v: v}
}

// Message kinds of the baseline algorithms.
const (
	kindInMIS uint8 = iota + 1
	kindCandidate
)

type greedyNode struct {
	v         graph.NodeID
	out       problems.Value
	candidate bool
}

func (n *greedyNode) Start(ctx *engine.Ctx, input problems.Value) { n.out = input }

func (n *greedyNode) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	switch n.out {
	case problems.InMIS:
		return append(buf, engine.SubMsg{Kind: kindInMIS})
	case problems.Bot:
		// Candidate with a degree-independent constant probability; the
		// degree is unknown at broadcast time (baseline simplicity).
		s := ctx.Stream(prf.PurposeAux)
		n.candidate = s.Bernoulli(0.5)
		if n.candidate {
			return append(buf, engine.SubMsg{Kind: kindCandidate})
		}
	}
	return buf
}

func (n *greedyNode) Process(ctx *engine.Ctx, in []engine.Incoming, deg int) {
	misNbr := false
	candNbr := false
	for _, m := range in {
		switch m.M.Kind {
		case kindInMIS:
			misNbr = true
		case kindCandidate:
			candNbr = true
		}
	}
	switch n.out {
	case problems.InMIS:
		if misNbr {
			// Conflict repair: demote and re-decide next round.
			n.out = problems.Bot
		}
	case problems.Dominated:
		if !misNbr {
			n.out = problems.Bot
		}
	default:
		if misNbr {
			n.out = problems.Dominated
		} else if n.candidate && !candNbr {
			n.out = problems.InMIS
		}
	}
}

func (n *greedyNode) Output() problems.Value { return n.out }

// GreedyRepairColoring maintains a coloring of the current graph with
// local repair: a conflicting or out-of-range node discards its color and
// re-draws uniformly from {1, …, deg+1} minus the fixed colors it saw.
type GreedyRepairColoring struct {
	N int
}

// Name implements engine.Algorithm.
func (g GreedyRepairColoring) Name() string { return "greedy-repair-coloring" }

// NewNode implements engine.Algorithm.
func (g GreedyRepairColoring) NewNode(v graph.NodeID) engine.NodeProc {
	return &greedyColorNode{v: v}
}

const (
	kindColor uint8 = iota + 10
)

type greedyColorNode struct {
	v   graph.NodeID
	out problems.Value
}

func (n *greedyColorNode) Start(ctx *engine.Ctx, input problems.Value) { n.out = input }

func (n *greedyColorNode) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	return append(buf, engine.SubMsg{Kind: kindColor, A: int64(n.out)})
}

func (n *greedyColorNode) Process(ctx *engine.Ctx, in []engine.Incoming, deg int) {
	conflict := false
	used := make(map[int64]bool, len(in))
	for _, m := range in {
		if m.M.A != 0 {
			used[m.M.A] = true
			if m.M.A == int64(n.out) {
				conflict = true
			}
		}
	}
	limit := int64(deg + 1)
	if n.out != problems.Bot && !conflict && int64(n.out) <= limit {
		return // color still valid
	}
	// Repair: re-draw from the free portion of {1,…,deg+1}.
	free := make([]int64, 0, limit)
	for c := int64(1); c <= limit; c++ {
		if !used[c] {
			free = append(free, c)
		}
	}
	if len(free) == 0 {
		n.out = problems.Bot
		return
	}
	s := ctx.Stream(prf.PurposeAux)
	n.out = problems.Value(free[s.Intn(len(free))])
}

func (n *greedyColorNode) Output() problems.Value { return n.out }

// NewRestartMIS returns the pipelined-restart baseline for MIS: the
// Concat combiner with a ⊥-emitting network-static part. It satisfies
// Theorem 1.1(1) — T-dynamic solutions every round — but not (2): with no
// stabilizing base algorithm the output is re-randomized by each
// instance, flickering even on static graphs.
func NewRestartMIS(n int, d core.DynamicAlgorithm) *core.Concat {
	return core.NewConcat(d, BotStatic{}, n)
}

// BotStatic is the trivial "network-static" algorithm that always
// outputs ⊥ and never communicates. Its partial solution is vacuously
// valid (B.1) but it stabilizes nothing, so the combiner degenerates to
// the strawman of Section 1.1.
type BotStatic struct{}

// Name implements core.NetworkStaticAlgorithm.
func (BotStatic) Name() string { return "bot" }

// StabilizationTime implements core.NetworkStaticAlgorithm. The returned
// bound is meaningless: BotStatic stabilizes only the ⊥ output.
func (BotStatic) StabilizationTime(n int) int { return 1 }

// Alpha implements core.NetworkStaticAlgorithm.
func (BotStatic) Alpha() int { return 1 }

// NewNode implements core.NetworkStaticAlgorithm.
func (BotStatic) NewNode(v graph.NodeID) core.NodeInstance { return botInstance{} }

type botInstance struct{}

func (botInstance) Start(*engine.Ctx, problems.Value) {}
func (botInstance) Broadcast(ctx *engine.Ctx, buf []engine.SubMsg) []engine.SubMsg {
	return buf
}
func (botInstance) Process(*engine.Ctx, []engine.Incoming, int) {}
func (botInstance) Output() problems.Value                      { return problems.Bot }
