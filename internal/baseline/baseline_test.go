package baseline

import (
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/algos/mis"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
	"dynlocal/internal/verify"
)

func workload(seed uint64) *prf.Stream {
	return prf.NewStream(seed, 0, 0, prf.PurposeWorkload)
}

func TestGreedyRepairMISConvergesOnStaticGraph(t *testing.T) {
	const n = 128
	g := graph.GNP(n, 6.0/n, workload(1))
	e := engine.New(engine.Config{N: n, Seed: 2}, adversary.Static{G: g}, GreedyRepairMIS{N: n})
	if _, ok := e.RunUntil(300, func(info *engine.RoundInfo) bool {
		for _, o := range info.Outputs {
			if o == problems.Bot {
				return false
			}
		}
		return true
	}); !ok {
		t.Fatal("greedy repair did not converge on static graph")
	}
	all := adversary.AllNodes(n)
	if bad := (problems.IndependentSet{}).CheckFull(g, e.Outputs(), all); len(bad) != 0 {
		t.Fatalf("independence violated: %v", bad[0])
	}
	if bad := (problems.DominatingSet{}).CheckFull(g, e.Outputs(), all); len(bad) != 0 {
		t.Fatalf("domination violated: %v", bad[0])
	}
}

func TestGreedyRepairMISRepairsSingleChange(t *testing.T) {
	// The baseline's home turf: one change, then quiet. It must repair.
	const n = 64
	g := graph.GNP(n, 6.0/n, workload(3))
	churnThenQuiet := adversaryPhase{quietAfter: 30, inner: &adversary.Churn{Base: g, Add: 1, Del: 1, Seed: 4}}
	e := engine.New(engine.Config{N: n, Seed: 5}, &churnThenQuiet, GreedyRepairMIS{N: n})
	var lastG *graph.Graph
	//dynlint:ignore loancheck only the final round's graph is read, after Run stops playing rounds, so its pooled arena is never recycled
	e.OnRound(func(info *engine.RoundInfo) { lastG = info.Graph() })
	e.Run(90)
	final := e.Outputs()
	all := adversary.AllNodes(n)
	if bad := (problems.IndependentSet{}).CheckFull(lastG, final, all); len(bad) != 0 {
		t.Fatalf("independence not repaired: %v", bad[0])
	}
	if bad := (problems.DominatingSet{}).CheckFull(lastG, final, all); len(bad) != 0 {
		t.Fatalf("domination not repaired: %v", bad[0])
	}
}

func TestGreedyRepairColoringConvergesOnStaticGraph(t *testing.T) {
	const n = 128
	g := graph.GNP(n, 6.0/n, workload(7))
	e := engine.New(engine.Config{N: n, Seed: 8}, adversary.Static{G: g}, GreedyRepairColoring{N: n})
	e.Run(60)
	out := e.Outputs()
	all := adversary.AllNodes(n)
	if bad := (problems.ProperColoring{}).CheckFull(g, out, all); len(bad) != 0 {
		t.Fatalf("coloring conflict: %v", bad[0])
	}
	if bad := (problems.DegreeRange{}).CheckFull(g, out, all); len(bad) != 0 {
		t.Fatalf("range violation: %v", bad[0])
	}
}

func TestRestartMISIsTDynamicButUnstable(t *testing.T) {
	// The Section 1.1 strawman: valid T-dynamic output every round, but
	// flickering on a STATIC graph, in contrast to the full combiner.
	const n = 96
	g := graph.GNP(n, 6.0/n, workload(11))
	restart := NewRestartMIS(n, &mis.DMisFactory{N: n})
	e := engine.New(engine.Config{N: n, Seed: 12}, adversary.Static{G: g}, restart)
	chk := verify.NewTDynamic(problems.MIS(), restart.T1, n)
	stab := verify.NewStability(n, 2, restart.StabilityWait())
	invalid := 0
	e.OnRound(func(info *engine.RoundInfo) {
		if rep := chk.Observe(info.Graph(), info.Wake, info.Outputs); !rep.Valid() {
			invalid++
		}
		stab.Observe(info.Graph(), info.Wake, info.Outputs)
	})
	e.Run(3 * restart.T1)
	if invalid != 0 {
		t.Fatalf("restart baseline violated T-dynamic condition %d times", invalid)
	}
	// On a static graph, the full combiner's output churn is (near) zero
	// after stabilization; the restart baseline keeps flickering.
	if stab.Changes() == 0 {
		t.Fatal("restart baseline did not flicker on a static graph — baseline broken")
	}

	combined := mis.NewMIS(n)
	e2 := engine.New(engine.Config{N: n, Seed: 12}, adversary.Static{G: g}, combined)
	stab2 := verify.NewStability(n, 2, combined.StabilityWait())
	e2.OnRound(func(info *engine.RoundInfo) {
		stab2.Observe(info.Graph(), info.Wake, info.Outputs)
	})
	e2.Run(3 * restart.T1)
	if len(stab2.Violations()) != 0 {
		t.Fatalf("combiner unstable on static graph: %v", stab2.Violations()[0])
	}
	if stab2.Changes() >= stab.Changes() {
		t.Fatalf("combiner churn %d not below restart churn %d", stab2.Changes(), stab.Changes())
	}
}

func TestGreedyRepairViolatesUnderConstantChurn(t *testing.T) {
	// The paper's motivation: under constant churn the recovery-period
	// baseline keeps violating the current-graph MIS conditions in a
	// non-vanishing fraction of rounds.
	const n = 128
	base := graph.GNP(n, 6.0/n, workload(13))
	adv := &adversary.Churn{Base: base, Add: 8, Del: 8, Seed: 14}
	e := engine.New(engine.Config{N: n, Seed: 15}, adv, GreedyRepairMIS{N: n})
	violRounds := 0
	const rounds = 120
	e.OnRound(func(info *engine.RoundInfo) {
		if info.Round <= 20 {
			return // allow initial convergence
		}
		all := adversary.AllNodes(n)
		bad := (problems.IndependentSet{}).CheckFull(info.Graph(), info.Outputs, all)
		bad = append(bad, (problems.DominatingSet{}).CheckFull(info.Graph(), info.Outputs, all)...)
		if len(bad) > 0 {
			violRounds++
		}
	})
	e.Run(rounds)
	if violRounds == 0 {
		t.Fatal("greedy repair showed no violations under constant churn — experiment E9 premise broken")
	}
}

// adversaryPhase plays the inner adversary until quietAfter, then repeats
// the last topology forever. The quiet phase is an empty delta step —
// "nothing changed" — which works over both materialized and delta-native
// inners.
type adversaryPhase struct {
	inner      adversary.Adversary
	quietAfter int
}

func (a *adversaryPhase) Step(v adversary.View) adversary.Step {
	if v.Round() <= a.quietAfter {
		return a.inner.Step(v)
	}
	return adversary.Step{}
}
