package graph

import (
	"math"
	"testing"
)

func TestGNPEdgeCount(t *testing.T) {
	const n = 200
	const p = 0.1
	g := GNP(n, p, stream(7))
	expected := p * float64(n) * float64(n-1) / 2
	sd := math.Sqrt(expected * (1 - p))
	if math.Abs(float64(g.M())-expected) > 6*sd {
		t.Fatalf("GNP edge count %d far from expectation %v", g.M(), expected)
	}
}

func TestGNPExtremes(t *testing.T) {
	if GNP(10, 0, stream(1)).M() != 0 {
		t.Fatal("GNP(p=0) produced edges")
	}
	if GNP(10, 1, stream(1)).M() != 45 {
		t.Fatal("GNP(p=1) is not complete")
	}
	if GNP(10, -0.5, stream(1)).M() != 0 {
		t.Fatal("GNP(p<0) produced edges")
	}
}

func TestGNPDeterministicPerStream(t *testing.T) {
	a := GNP(50, 0.2, stream(42))
	b := GNP(50, 0.2, stream(42))
	if !a.Equal(b) {
		t.Fatal("GNP not deterministic for equal streams")
	}
	c := GNP(50, 0.2, stream(43))
	if a.Equal(c) {
		t.Fatal("GNP identical across different seeds (suspicious)")
	}
}

func TestGNPIndexDecodingCoversAllPairs(t *testing.T) {
	// The incremental linear-index decoding must reach every pair of the
	// upper triangle: the union of many dense draws is K_n. Distinctness
	// and ordering are enforced by FromSortedEdges inside GNP (it panics
	// on non-ascending keys), so coverage is the remaining property.
	const n = 9
	acc := Empty(n)
	for seed := uint64(0); seed < 50; seed++ {
		acc = Union(acc, GNP(n, 0.7, stream(seed)))
	}
	if !acc.Equal(Complete(n)) {
		t.Fatalf("dense GNP union missed pairs:\n%s", acc.DebugString())
	}
}

func TestGNMExactCount(t *testing.T) {
	g := GNM(30, 50, stream(3))
	if g.M() != 50 {
		t.Fatalf("GNM produced %d edges, want 50", g.M())
	}
	full := GNM(5, 100, stream(3))
	if full.M() != 10 {
		t.Fatalf("GNM over-capacity produced %d edges, want 10", full.M())
	}
}

func TestCompleteAndCycleAndPath(t *testing.T) {
	k := Complete(6)
	if k.M() != 15 || k.MaxDegree() != 5 {
		t.Fatalf("K6 wrong: m=%d", k.M())
	}
	c := Cycle(6)
	if c.M() != 6 {
		t.Fatalf("C6 wrong: m=%d", c.M())
	}
	for v := NodeID(0); v < 6; v++ {
		if c.Degree(v) != 2 {
			t.Fatalf("C6 degree(%d)=%d", v, c.Degree(v))
		}
	}
	p := Path(6)
	if p.M() != 5 || p.Degree(0) != 1 || p.Degree(3) != 2 {
		t.Fatal("P6 wrong")
	}
	if Cycle(2).M() != 1 {
		t.Fatal("Cycle(2) should degrade to a single edge")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("grid N = %d", g.N())
	}
	// 3x4 grid: horizontal 3*3=9, vertical 2*4=8.
	if g.M() != 17 {
		t.Fatalf("grid M = %d, want 17", g.M())
	}
	if g.Degree(0) != 2 || g.Degree(5) != 4 {
		t.Fatal("grid corner/interior degrees wrong")
	}
}

func TestCompleteBipartiteAndStar(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.M() != 12 {
		t.Fatalf("K_{3,4} m=%d", g.M())
	}
	if g.HasEdge(0, 1) || g.HasEdge(3, 4) {
		t.Fatal("intra-side edge present")
	}
	s := Star(7)
	if s.M() != 6 || s.Degree(0) != 6 {
		t.Fatal("star wrong")
	}
}

func TestRandomTree(t *testing.T) {
	g := RandomTree(64, stream(5))
	if g.M() != 63 {
		t.Fatalf("tree has %d edges", g.M())
	}
	_, count := ConnectedComponents(g)
	if count != 1 {
		t.Fatalf("tree has %d components", count)
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(4, 3)
	if g.N() != 16 {
		t.Fatalf("caterpillar N=%d", g.N())
	}
	// spine edges 3 + legs 12.
	if g.M() != 15 {
		t.Fatalf("caterpillar M=%d", g.M())
	}
	if g.Degree(0) != 4 || g.Degree(1) != 5 {
		t.Fatalf("caterpillar spine degrees wrong: %d, %d", g.Degree(0), g.Degree(1))
	}
}

func TestGeometricMatchesBruteForce(t *testing.T) {
	s := stream(9)
	pts := RandomPoints(120, s)
	const radius = 0.15
	g := Geometric(pts, radius)
	b := NewBuilder(len(pts))
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			dx := pts[i].X - pts[j].X
			dy := pts[i].Y - pts[j].Y
			if dx*dx+dy*dy <= radius*radius {
				b.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	want := b.Graph()
	if !g.Equal(want) {
		t.Fatalf("geometric graph mismatch: got m=%d want m=%d", g.M(), want.M())
	}
}

func TestGeometricZeroRadius(t *testing.T) {
	pts := RandomPoints(10, stream(2))
	if Geometric(pts, 0).M() != 0 {
		t.Fatal("zero radius produced edges")
	}
}

func BenchmarkGNP(b *testing.B) {
	s := stream(1)
	for i := 0; i < b.N; i++ {
		_ = GNP(1000, 0.01, s)
	}
}

func BenchmarkGeometric(b *testing.B) {
	pts := RandomPoints(2000, stream(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Geometric(pts, 0.03)
	}
}
