package graph

import "sort"

// Union returns the graph containing every edge of g or h. Both operands
// must share the same node space. Implemented as a linear merge of the
// two sorted edge lists.
func Union(g, h *Graph) *Graph {
	mustSameN(g, h)
	a, b := g.Edges(), h.Edges()
	out := make([]EdgeKey, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return fromSortedKeys(g.n, out)
}

// Intersection returns the graph containing the edges present in both g
// and h. Both operands must share the same node space.
func Intersection(g, h *Graph) *Graph {
	mustSameN(g, h)
	a, b := g.Edges(), h.Edges()
	min := len(a)
	if len(b) < min {
		min = len(b)
	}
	out := make([]EdgeKey, 0, min)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return fromSortedKeys(g.n, out)
}

// Difference returns the graph containing the edges of g that are not in h.
func Difference(g, h *Graph) *Graph {
	mustSameN(g, h)
	a, b := g.Edges(), h.Edges()
	out := make([]EdgeKey, 0, len(a))
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j >= len(b) || b[j] != a[i] {
			out = append(out, a[i])
		}
		i++
	}
	return fromSortedKeys(g.n, out)
}

// IntersectAll folds Intersection over a non-empty slice of graphs.
func IntersectAll(gs []*Graph) *Graph {
	if len(gs) == 0 {
		panic("graph: IntersectAll of empty slice")
	}
	acc := gs[0]
	for _, g := range gs[1:] {
		acc = Intersection(acc, g)
	}
	return acc
}

// UnionAll folds Union over a non-empty slice of graphs.
func UnionAll(gs []*Graph) *Graph {
	if len(gs) == 0 {
		panic("graph: UnionAll of empty slice")
	}
	acc := gs[0]
	for _, g := range gs[1:] {
		mustSameN(gs[0], g)
		acc = Union(acc, g)
	}
	return acc
}

// InducedSubgraph returns the graph on the same node space keeping only
// edges with both endpoints in keep.
func InducedSubgraph(g *Graph, keep []NodeID) *Graph {
	in := make([]bool, g.n)
	for _, v := range keep {
		in[v] = true
	}
	var out []EdgeKey
	g.EachEdge(func(u, v NodeID) {
		if in[u] && in[v] {
			out = append(out, MakeEdgeKey(u, v))
		}
	})
	return fromSortedKeys(g.n, out)
}

// Ball returns the set of nodes within distance radius of v (including v),
// sorted ascending. radius 0 yields {v}.
func Ball(g *Graph, v NodeID, radius int) []NodeID {
	dist := map[NodeID]int{v: 0}
	frontier := []NodeID{v}
	for d := 0; d < radius; d++ {
		var next []NodeID
		for _, u := range frontier {
			for _, w := range g.Neighbors(u) {
				if _, ok := dist[w]; !ok {
					dist[w] = d + 1
					next = append(next, w)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = next
	}
	out := make([]NodeID, 0, len(dist))
	for u := range dist {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BallFingerprint hashes the induced subgraph on the radius-ball around v,
// including the ball's membership. Two rounds in which a node's α-ball is
// topologically identical (same member set and same edges among members,
// matching "G_l[N^α(v)] = G_l'[N^α(v)]" in property B.2) produce equal
// fingerprints; unequal topologies collide with probability ~2^-64.
func BallFingerprint(g *Graph, v NodeID, radius int) uint64 {
	members := Ball(g, v, radius)
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	mix := func(x uint64) {
		h ^= x
		h *= prime
		h ^= h >> 29
	}
	in := make(map[NodeID]bool, len(members))
	for _, u := range members {
		in[u] = true
	}
	for _, u := range members {
		mix(uint64(uint32(u)) | 1<<40)
		for _, w := range g.Neighbors(u) {
			if u < w && in[w] {
				mix(uint64(MakeEdgeKey(u, w)))
			}
		}
	}
	return h
}

// BallStatic reports whether the induced radius-ball around v is identical
// in graphs a and b (exact comparison, not fingerprint).
func BallStatic(a, b *Graph, v NodeID, radius int) bool {
	ma := Ball(a, v, radius)
	mb := Ball(b, v, radius)
	if len(ma) != len(mb) {
		return false
	}
	for i := range ma {
		if ma[i] != mb[i] {
			return false
		}
	}
	in := make(map[NodeID]bool, len(ma))
	for _, u := range ma {
		in[u] = true
	}
	for _, u := range ma {
		for _, w := range a.Neighbors(u) {
			if u < w && in[w] && !b.HasEdge(u, w) {
				return false
			}
		}
		for _, w := range b.Neighbors(u) {
			if u < w && in[w] && !a.HasEdge(u, w) {
				return false
			}
		}
	}
	return true
}

// ConnectedComponents returns a component label per node (labels are
// the minimal node id in each component) and the number of components,
// counting isolated nodes as singleton components.
func ConnectedComponents(g *Graph) (label []NodeID, count int) {
	label = make([]NodeID, g.n)
	for i := range label {
		label[i] = -1
	}
	var stack []NodeID
	for v := 0; v < g.n; v++ {
		if label[v] != -1 {
			continue
		}
		count++
		root := NodeID(v)
		label[v] = root
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(u) {
				if label[w] == -1 {
					label[w] = root
					stack = append(stack, w)
				}
			}
		}
	}
	return label, count
}

// IsIndependentSet reports whether no two nodes of set are adjacent in g.
func IsIndependentSet(g *Graph, set []NodeID) bool {
	in := make(map[NodeID]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for _, v := range set {
		for _, u := range g.Neighbors(v) {
			if in[u] {
				return false
			}
		}
	}
	return true
}

// IsDominatingSet reports whether every node in universe is in set or has
// a neighbor in set.
func IsDominatingSet(g *Graph, set []NodeID, universe []NodeID) bool {
	in := make(map[NodeID]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for _, v := range universe {
		if in[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if in[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

func mustSameN(g, h *Graph) {
	if g.n != h.n {
		panic("graph: operand node spaces differ")
	}
}
