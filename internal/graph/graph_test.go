package graph

import (
	"testing"
	"testing/quick"

	"dynlocal/internal/prf"
)

func stream(seed uint64) *prf.Stream {
	return prf.NewStream(seed, 0, 0, prf.PurposeWorkload)
}

func TestMakeEdgeKeyCanonical(t *testing.T) {
	if MakeEdgeKey(3, 7) != MakeEdgeKey(7, 3) {
		t.Fatal("edge key not canonical under endpoint swap")
	}
	u, v := MakeEdgeKey(7, 3).Nodes()
	if u != 3 || v != 7 {
		t.Fatalf("Nodes() = (%d,%d), want (3,7)", u, v)
	}
}

func TestMakeEdgeKeySelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	MakeEdgeKey(4, 4)
}

func TestEdgeKeyRoundTrip(t *testing.T) {
	f := func(a, b int16) bool {
		u, v := NodeID(a&0x7fff), NodeID(b&0x7fff)
		if u == v {
			return true
		}
		x, y := MakeEdgeKey(u, v).Nodes()
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		return x == lo && y == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate under swap
	b.AddEdge(2, 3)
	if b.M() != 2 {
		t.Fatalf("M() = %d, want 2", b.M())
	}
	b.RemoveEdge(3, 2)
	if b.M() != 1 || b.HasEdge(2, 3) {
		t.Fatal("RemoveEdge failed")
	}
	g := b.Graph()
	if g.M() != 1 || !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("built graph wrong")
	}
	if g.HasEdge(0, 0) {
		t.Fatal("self loop reported present")
	}
	// Mutating the builder afterwards must not affect the built graph.
	b.AddEdge(3, 4)
	if g.M() != 1 {
		t.Fatal("built graph changed after builder mutation")
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range edge")
		}
	}()
	NewBuilder(3).AddEdge(0, 3)
}

func TestGraphDegreesAndNeighborsSorted(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(2, 5)
	b.AddEdge(2, 0)
	b.AddEdge(2, 4)
	g := b.Graph()
	if g.Degree(2) != 3 {
		t.Fatalf("Degree(2) = %d", g.Degree(2))
	}
	nb := g.Neighbors(2)
	want := []NodeID{0, 4, 5}
	for i, v := range want {
		if nb[i] != v {
			t.Fatalf("Neighbors(2) = %v, want %v", nb, want)
		}
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := GNP(40, 0.2, stream(1))
	h := FromEdges(g.N(), g.Edges())
	if !g.Equal(h) {
		t.Fatal("Edges()/FromEdges round trip failed")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := GNP(20, 0.3, stream(2))
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	// Mutating the clone's arena must not touch the original.
	if g.M() == 0 {
		t.Fatal("workload graph unexpectedly edgeless")
	}
	c.neighbors[0]++
	if g.neighbors[0] == c.neighbors[0] {
		t.Fatal("clone shares adjacency storage")
	}
}

func TestEqualDetectsDifference(t *testing.T) {
	a := Cycle(5)
	b := Path(5)
	if a.Equal(b) {
		t.Fatal("cycle equal to path")
	}
	if !a.Equal(Cycle(5)) {
		t.Fatal("cycle not equal to itself")
	}
	if a.Equal(Cycle(6)) {
		t.Fatal("different n reported equal")
	}
}

func TestUnionIntersectionDifference(t *testing.T) {
	a := FromEdges(5, []EdgeKey{MakeEdgeKey(0, 1), MakeEdgeKey(1, 2)})
	b := FromEdges(5, []EdgeKey{MakeEdgeKey(1, 2), MakeEdgeKey(3, 4)})
	u := Union(a, b)
	if u.M() != 3 || !u.HasEdge(0, 1) || !u.HasEdge(1, 2) || !u.HasEdge(3, 4) {
		t.Fatalf("union wrong: %s", u.DebugString())
	}
	i := Intersection(a, b)
	if i.M() != 1 || !i.HasEdge(1, 2) {
		t.Fatalf("intersection wrong: %s", i.DebugString())
	}
	d := Difference(a, b)
	if d.M() != 1 || !d.HasEdge(0, 1) {
		t.Fatalf("difference wrong: %s", d.DebugString())
	}
}

func TestSetOpsAlgebraProperties(t *testing.T) {
	s := stream(3)
	f := func(seedA, seedB uint16) bool {
		_ = seedA
		_ = seedB
		a := GNP(25, 0.15, s)
		b := GNP(25, 0.15, s)
		// Intersection ⊆ a, b ⊆ Union.
		i := Intersection(a, b)
		u := Union(a, b)
		ok := true
		i.EachEdge(func(x, y NodeID) {
			if !a.HasEdge(x, y) || !b.HasEdge(x, y) {
				ok = false
			}
		})
		a.EachEdge(func(x, y NodeID) {
			if !u.HasEdge(x, y) {
				ok = false
			}
		})
		// |A∪B| = |A| + |B| - |A∩B|
		if u.M() != a.M()+b.M()-i.M() {
			ok = false
		}
		// A \ B disjoint from B.
		Difference(a, b).EachEdge(func(x, y NodeID) {
			if b.HasEdge(x, y) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectAllUnionAll(t *testing.T) {
	gs := []*Graph{
		FromEdges(4, []EdgeKey{MakeEdgeKey(0, 1), MakeEdgeKey(1, 2)}),
		FromEdges(4, []EdgeKey{MakeEdgeKey(0, 1), MakeEdgeKey(2, 3)}),
		FromEdges(4, []EdgeKey{MakeEdgeKey(0, 1)}),
	}
	i := IntersectAll(gs)
	if i.M() != 1 || !i.HasEdge(0, 1) {
		t.Fatalf("IntersectAll wrong: %v", i.Edges())
	}
	u := UnionAll(gs)
	if u.M() != 3 {
		t.Fatalf("UnionAll wrong: %v", u.Edges())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub := InducedSubgraph(g, []NodeID{0, 1, 2})
	if sub.M() != 3 {
		t.Fatalf("induced K3 has %d edges", sub.M())
	}
	if sub.HasEdge(3, 4) {
		t.Fatal("induced subgraph kept excluded edge")
	}
}

func TestBallRadii(t *testing.T) {
	g := Path(7) // 0-1-2-3-4-5-6
	cases := []struct {
		r    int
		want []NodeID
	}{
		{0, []NodeID{3}},
		{1, []NodeID{2, 3, 4}},
		{2, []NodeID{1, 2, 3, 4, 5}},
		{10, []NodeID{0, 1, 2, 3, 4, 5, 6}},
	}
	for _, c := range cases {
		got := Ball(g, 3, c.r)
		if len(got) != len(c.want) {
			t.Fatalf("Ball r=%d = %v, want %v", c.r, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Ball r=%d = %v, want %v", c.r, got, c.want)
			}
		}
	}
}

func TestBallFingerprintSensitivity(t *testing.T) {
	g := Path(7)
	fp := BallFingerprint(g, 3, 2)
	// Change inside the 2-ball: must differ.
	b := NewBuilder(7)
	g.EachEdge(b.AddEdge)
	b.AddEdge(2, 4)
	if BallFingerprint(b.Graph(), 3, 2) == fp {
		t.Fatal("fingerprint insensitive to in-ball change")
	}
	// Change outside the 2-ball (edge {5,6} is at distance >2 from 3's
	// 2-ball interior edges? node 5 IS in the 2-ball, so use {0,6}).
	b2 := NewBuilder(7)
	g.EachEdge(b2.AddEdge)
	b2.AddEdge(0, 6)
	if BallFingerprint(b2.Graph(), 3, 2) != fp {
		t.Fatal("fingerprint sensitive to out-of-ball change")
	}
}

func TestBallStatic(t *testing.T) {
	g := Path(7)
	b := NewBuilder(7)
	g.EachEdge(b.AddEdge)
	b.AddEdge(0, 6) // outside 2-ball of node 3 (members 1..5, edge 0-6 not induced)
	h := b.Graph()
	if !BallStatic(g, h, 3, 2) {
		t.Fatal("out-of-ball change flagged as non-static")
	}
	b.AddEdge(2, 4) // inside
	if BallStatic(g, b.Graph(), 3, 2) {
		t.Fatal("in-ball change not detected")
	}
	// Membership change: connect 6 to 4 puts 6 within distance 2 of 3.
	b3 := NewBuilder(7)
	g.EachEdge(b3.AddEdge)
	b3.AddEdge(4, 6)
	if BallStatic(g, b3.Graph(), 3, 2) {
		t.Fatal("membership change not detected")
	}
}

func TestBallFingerprintMatchesBallStatic(t *testing.T) {
	s := stream(11)
	for trial := 0; trial < 25; trial++ {
		a := GNP(30, 0.1, s)
		b := GNP(30, 0.1, s)
		for v := NodeID(0); v < 30; v++ {
			stat := BallStatic(a, b, v, 2)
			fpEq := BallFingerprint(a, v, 2) == BallFingerprint(b, v, 2)
			if stat != fpEq {
				t.Fatalf("trial %d node %d: BallStatic=%v fingerprintEq=%v", trial, v, stat, fpEq)
			}
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(4, 5)
	g := b.Graph()
	label, count := ConnectedComponents(g)
	if count != 3 { // {0,1,2}, {3}, {4,5}
		t.Fatalf("count = %d, want 3", count)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Fatal("component {0,1,2} split")
	}
	if label[3] == label[0] || label[4] != label[5] || label[4] == label[3] {
		t.Fatal("component labels wrong")
	}
}

func TestIsIndependentAndDominating(t *testing.T) {
	g := Cycle(6)
	if !IsIndependentSet(g, []NodeID{0, 2, 4}) {
		t.Fatal("alternating set not independent")
	}
	if IsIndependentSet(g, []NodeID{0, 1}) {
		t.Fatal("adjacent pair reported independent")
	}
	all := []NodeID{0, 1, 2, 3, 4, 5}
	if !IsDominatingSet(g, []NodeID{0, 3}, all) {
		t.Fatal("{0,3} should dominate C6")
	}
	if IsDominatingSet(g, []NodeID{0}, all) {
		t.Fatal("{0} cannot dominate C6")
	}
}
