// Package graph provides the static-graph substrate for the dynamic-network
// simulator: an immutable graph in compressed-sparse-row (CSR) layout over a
// fixed node-id space, a mutable builder, set operations (union,
// intersection, difference), induced subgraphs, α-neighborhood balls with
// fingerprints for locally-static detection, and the synthetic workload
// generators used by the experiments.
//
// All graphs in this repository are simple and undirected, matching
// Definition 2.2 of the paper. Node ids are dense int32 values in [0, N)
// where N is the size of the potential-node universe V; a round graph G_r
// may touch only a subset of those ids (the awake nodes), which the engine
// tracks separately.
//
// The CSR layout packs every adjacency list into one shared arena: the
// sorted neighbors of v occupy neighbors[offsets[v]:offsets[v+1]]. Building
// a graph is two O(m) counting passes over a sorted edge-key list, and the
// offsets array doubles as the exact cumulative-degree prefix sum the
// engine uses for edge-balanced work partitioning.
//
// Every graph additionally carries its sorted edge-key list, exposed
// zero-copy as EdgeKeys: diffing two rounds' topologies is one linear
// merge (DiffSortedKeys), and Patcher maintains a current graph under
// such sorted add/remove diffs through two ping-ponged arenas — one
// block-copy merge per round instead of a counting rebuild — which is
// what makes the simulator's delta-native topology plane (adversary →
// engine → window → checker, see internal/engine) cost O(changes) per
// round rather than O(n+m).
package graph

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// NodeID identifies a node in the potential-node universe V.
type NodeID = int32

// EdgeKey packs an undirected edge {u, v} with u < v into one comparable
// 64-bit value, used as a map key by builders, sliding windows and
// adversaries. The natural uint64 order of keys is the lexicographic
// (u, v) order, which the CSR build exploits.
type EdgeKey uint64

// MakeEdgeKey builds the canonical key for the undirected edge {u, v}.
// It panics if u == v (self-loops are not part of the model).
func MakeEdgeKey(u, v NodeID) EdgeKey {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if u > v {
		u, v = v, u
	}
	return EdgeKey(uint64(uint32(u))<<32 | uint64(uint32(v)))
}

// Nodes unpacks the edge endpoints with u < v.
func (k EdgeKey) Nodes() (u, v NodeID) {
	return NodeID(uint32(k >> 32)), NodeID(uint32(k))
}

// String renders the edge as "{u,v}".
func (k EdgeKey) String() string {
	u, v := k.Nodes()
	return fmt.Sprintf("{%d,%d}", u, v)
}

// Graph is an immutable simple undirected graph in CSR layout over the
// node-id space [0, N()): offsets has length N()+1 and the sorted
// adjacency list of v is neighbors[offsets[v]:offsets[v+1]]. Alongside the
// CSR arrays every graph carries its sorted edge-key list, so diffing two
// graphs (DiffSortedKeys) and re-reading the edge set (EdgeKeys) are
// zero-copy linear operations.
type Graph struct {
	n         int
	m         int
	offsets   []int32
	neighbors []NodeID
	keys      []EdgeKey // sorted; same edge set as the CSR arrays
}

// Empty returns the edgeless graph on n node slots.
func Empty(n int) *Graph {
	return &Graph{n: n, offsets: make([]int32, n+1)}
}

// FromEdges builds a graph on n node slots from an edge list. Duplicate
// edges are collapsed; it panics on out-of-range endpoints. The input
// slice is not modified.
func FromEdges(n int, edges []EdgeKey) *Graph {
	if len(edges) == 0 {
		return Empty(n)
	}
	keys := append(make([]EdgeKey, 0, len(edges)), edges...)
	slices.Sort(keys)
	keys = slices.Compact(keys)
	return fromSortedKeys(n, keys)
}

// FromSortedEdges builds a graph from a strictly ascending edge-key list
// without sorting — the fast path for generators and windows that produce
// keys in canonical order. The input is copied (callers routinely reuse
// their key scratch across rounds; the graph must own its edge list for
// EdgeKeys to stay valid). It panics if the list is not strictly ascending
// or an endpoint is out of range.
//
//dynlint:sorted edges
func FromSortedEdges(n int, edges []EdgeKey) *Graph {
	for i := 1; i < len(edges); i++ {
		if edges[i-1] >= edges[i] {
			panic(fmt.Sprintf("graph: FromSortedEdges keys not strictly ascending at %d", i))
		}
	}
	return fromSortedKeys(n, slices.Clone(edges))
}

// fromSortedKeys assembles the CSR arrays from a sorted, deduplicated key
// list in two counting passes, taking ownership of the key slice. Because
// keys are sorted lexicographically by (u, v), filling each row's smaller
// neighbors first (pass A: row v gains u < v) and larger neighbors second
// (pass B: row u gains v > u) yields fully sorted rows with no per-row
// sort.
func fromSortedKeys(n int, keys []EdgeKey) *Graph {
	g := &Graph{n: n, m: len(keys), offsets: make([]int32, n+1), keys: keys}
	for _, k := range keys {
		u, v := k.Nodes()
		if u < 0 || int(v) >= n {
			panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, n))
		}
		if u == v {
			panic(fmt.Sprintf("graph: self-loop at node %d", u))
		}
		g.offsets[u+1]++
		g.offsets[v+1]++
	}
	for i := 0; i < n; i++ {
		g.offsets[i+1] += g.offsets[i]
	}
	g.neighbors = make([]NodeID, 2*len(keys))
	cursor := make([]int32, n)
	copy(cursor, g.offsets[:n])
	for _, k := range keys {
		u, v := k.Nodes()
		g.neighbors[cursor[v]] = u
		cursor[v]++
	}
	for _, k := range keys {
		u, v := k.Nodes()
		g.neighbors[cursor[u]] = v
		cursor[u]++
	}
	return g
}

// N returns the size of the node-id space.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int { return int(g.offsets[v+1] - g.offsets[v]) }

// CumDegree returns the sum of degrees of nodes [0, v) — the CSR offset
// of v, an O(1) lookup with CumDegree(N()) == 2·M(). The engine uses it
// to cut edge-balanced worker shards.
func (g *Graph) CumDegree(v int) int { return int(g.offsets[v]) }

// MaxDegree returns the maximum degree over all nodes (0 for edgeless).
func (g *Graph) MaxDegree() int {
	max := int32(0)
	for v := 0; v < g.n; v++ {
		if d := g.offsets[v+1] - g.offsets[v]; d > max {
			max = d
		}
	}
	return int(max)
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's arena and must not be modified.
//
//dynlint:view
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge; binary search over the sorted
// adjacency list of the lower-degree endpoint.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	a, target := g.Neighbors(u), v
	if b := g.Neighbors(v); len(b) < len(a) {
		a, target = b, u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i] >= target })
	return i < len(a) && a[i] == target
}

// EdgeKeys returns the graph's edge set as a strictly ascending edge-key
// slice without copying. The slice aliases graph-owned storage and must
// not be modified; for pooled graphs produced by a Patcher it shares the
// arena's lifetime (see Patcher). Diffing the edge sets of two graphs is a
// linear merge of their EdgeKeys views (DiffSortedKeys).
//
//dynlint:loan
//dynlint:view
//dynlint:sorted
func (g *Graph) EdgeKeys() []EdgeKey { return g.keys }

// Edges returns all edges in canonical (sorted) key order, as a fresh
// slice the caller owns.
func (g *Graph) Edges() []EdgeKey {
	out := make([]EdgeKey, 0, g.m)
	return g.AppendEdges(out)
}

// AppendEdges appends all edges in canonical key order to dst and returns
// it, letting round-loop callers reuse one buffer.
func (g *Graph) AppendEdges(dst []EdgeKey) []EdgeKey {
	return append(dst, g.keys...)
}

// EachEdge calls fn for every edge with u < v, in canonical order.
func (g *Graph) EachEdge(fn func(u, v NodeID)) {
	for _, k := range g.keys {
		u, v := k.Nodes()
		fn(u, v)
	}
}

// Clone returns a deep copy of g, owning all of its storage — the escape
// hatch for retaining a pooled Patcher graph beyond its arena lifetime.
func (g *Graph) Clone() *Graph {
	return &Graph{
		n:         g.n,
		m:         g.m,
		offsets:   slices.Clone(g.offsets),
		neighbors: slices.Clone(g.neighbors),
		keys:      slices.Clone(g.keys),
	}
}

// Equal reports whether g and h have identical node spaces and edge sets.
// The sorted key list is canonical, so equality is one slice comparison.
func (g *Graph) Equal(h *Graph) bool {
	return g.n == h.n && g.m == h.m && slices.Equal(g.keys, h.keys)
}

// String renders a compact description, e.g. "G(n=5, m=4)".
func (g *Graph) String() string {
	return fmt.Sprintf("G(n=%d, m=%d)", g.n, g.m)
}

// DebugString renders the full adjacency structure, one node per line.
// Intended for test failure output on small graphs.
func (g *Graph) DebugString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph n=%d m=%d\n", g.n, g.m)
	for u := 0; u < g.n; u++ {
		row := g.Neighbors(NodeID(u))
		if len(row) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %d:", u)
		for _, v := range row {
			fmt.Fprintf(&sb, " %d", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	edges map[EdgeKey]struct{}
}

// NewBuilder returns a builder for a graph on n node slots.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, edges: make(map[EdgeKey]struct{})}
}

// N returns the node-space size of the builder.
func (b *Builder) N() int { return b.n }

// AddEdge inserts the undirected edge {u, v}; duplicates are ignored.
// It panics on out-of-range endpoints or self-loops.
func (b *Builder) AddEdge(u, v NodeID) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	b.edges[MakeEdgeKey(u, v)] = struct{}{}
}

// AddEdgeKey inserts an edge by key.
func (b *Builder) AddEdgeKey(k EdgeKey) {
	u, v := k.Nodes()
	b.AddEdge(u, v)
}

// RemoveEdge deletes the edge {u, v} if present.
func (b *Builder) RemoveEdge(u, v NodeID) {
	delete(b.edges, MakeEdgeKey(u, v))
}

// HasEdge reports whether the builder currently contains {u, v}.
func (b *Builder) HasEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	_, ok := b.edges[MakeEdgeKey(u, v)]
	return ok
}

// M returns the current number of edges.
func (b *Builder) M() int { return len(b.edges) }

// EdgeKeys returns the current edge set in ascending order. (It was
// documented as unspecified order before dynlint's detcheck flagged the
// map-order leak; every consumer is deterministic with the sorted form.)
//
//dynlint:sorted
func (b *Builder) EdgeKeys() []EdgeKey {
	out := make([]EdgeKey, 0, len(b.edges))
	for k := range b.edges {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// Graph freezes the builder into an immutable Graph. The builder remains
// usable afterwards (subsequent mutations do not affect the built graph).
func (b *Builder) Graph() *Graph {
	keys := make([]EdgeKey, 0, len(b.edges))
	for k := range b.edges {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return fromSortedKeys(b.n, keys)
}
