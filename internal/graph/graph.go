// Package graph provides the static-graph substrate for the dynamic-network
// simulator: an immutable adjacency-list graph over a fixed node-id space,
// a mutable builder, set operations (union, intersection, difference),
// induced subgraphs, α-neighborhood balls with fingerprints for
// locally-static detection, and the synthetic workload generators used by
// the experiments.
//
// All graphs in this repository are simple and undirected, matching
// Definition 2.2 of the paper. Node ids are dense int32 values in [0, N)
// where N is the size of the potential-node universe V; a round graph G_r
// may touch only a subset of those ids (the awake nodes), which the engine
// tracks separately.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node in the potential-node universe V.
type NodeID = int32

// EdgeKey packs an undirected edge {u, v} with u < v into one comparable
// 64-bit value, used as a map key by builders, sliding windows and
// adversaries.
type EdgeKey uint64

// MakeEdgeKey builds the canonical key for the undirected edge {u, v}.
// It panics if u == v (self-loops are not part of the model).
func MakeEdgeKey(u, v NodeID) EdgeKey {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if u > v {
		u, v = v, u
	}
	return EdgeKey(uint64(uint32(u))<<32 | uint64(uint32(v)))
}

// Nodes unpacks the edge endpoints with u < v.
func (k EdgeKey) Nodes() (u, v NodeID) {
	return NodeID(uint32(k >> 32)), NodeID(uint32(k))
}

// String renders the edge as "{u,v}".
func (k EdgeKey) String() string {
	u, v := k.Nodes()
	return fmt.Sprintf("{%d,%d}", u, v)
}

// Graph is an immutable simple undirected graph with sorted adjacency
// lists over the node-id space [0, N()).
type Graph struct {
	n   int
	adj [][]NodeID
	m   int
}

// Empty returns the edgeless graph on n node slots.
func Empty(n int) *Graph {
	return &Graph{n: n, adj: make([][]NodeID, n)}
}

// FromEdges builds a graph on n node slots from an edge list. Duplicate
// edges are collapsed; it panics on out-of-range endpoints or self-loops.
func FromEdges(n int, edges []EdgeKey) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		u, v := e.Nodes()
		b.AddEdge(u, v)
	}
	return b.Graph()
}

// N returns the size of the node-id space.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree over all nodes (0 for edgeless).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// Neighbors returns the sorted adjacency list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID { return g.adj[v] }

// HasEdge reports whether {u, v} is an edge; binary search over the sorted
// adjacency list of the lower-degree endpoint.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	a, target := g.adj[u], v
	if len(g.adj[v]) < len(a) {
		a, target = g.adj[v], u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i] >= target })
	return i < len(a) && a[i] == target
}

// Edges returns all edges in canonical (sorted) key order.
func (g *Graph) Edges() []EdgeKey {
	out := make([]EdgeKey, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if NodeID(u) < v {
				out = append(out, MakeEdgeKey(NodeID(u), v))
			}
		}
	}
	return out
}

// EachEdge calls fn for every edge with u < v.
func (g *Graph) EachEdge(fn func(u, v NodeID)) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if NodeID(u) < v {
				fn(NodeID(u), v)
			}
		}
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	adj := make([][]NodeID, g.n)
	for i, a := range g.adj {
		if len(a) > 0 {
			adj[i] = append([]NodeID(nil), a...)
		}
	}
	return &Graph{n: g.n, adj: adj, m: g.m}
}

// Equal reports whether g and h have identical node spaces and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	for u := 0; u < g.n; u++ {
		a, b := g.adj[u], h.adj[u]
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// String renders a compact description, e.g. "G(n=5, m=4)".
func (g *Graph) String() string {
	return fmt.Sprintf("G(n=%d, m=%d)", g.n, g.m)
}

// DebugString renders the full adjacency structure, one node per line.
// Intended for test failure output on small graphs.
func (g *Graph) DebugString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph n=%d m=%d\n", g.n, g.m)
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %d:", u)
		for _, v := range g.adj[u] {
			fmt.Fprintf(&sb, " %d", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	edges map[EdgeKey]struct{}
}

// NewBuilder returns a builder for a graph on n node slots.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, edges: make(map[EdgeKey]struct{})}
}

// N returns the node-space size of the builder.
func (b *Builder) N() int { return b.n }

// AddEdge inserts the undirected edge {u, v}; duplicates are ignored.
// It panics on out-of-range endpoints or self-loops.
func (b *Builder) AddEdge(u, v NodeID) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	b.edges[MakeEdgeKey(u, v)] = struct{}{}
}

// AddEdgeKey inserts an edge by key.
func (b *Builder) AddEdgeKey(k EdgeKey) {
	u, v := k.Nodes()
	b.AddEdge(u, v)
}

// RemoveEdge deletes the edge {u, v} if present.
func (b *Builder) RemoveEdge(u, v NodeID) {
	delete(b.edges, MakeEdgeKey(u, v))
}

// HasEdge reports whether the builder currently contains {u, v}.
func (b *Builder) HasEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	_, ok := b.edges[MakeEdgeKey(u, v)]
	return ok
}

// M returns the current number of edges.
func (b *Builder) M() int { return len(b.edges) }

// EdgeKeys returns the current edge set in unspecified order.
func (b *Builder) EdgeKeys() []EdgeKey {
	out := make([]EdgeKey, 0, len(b.edges))
	for k := range b.edges {
		out = append(out, k)
	}
	return out
}

// Graph freezes the builder into an immutable Graph. The builder remains
// usable afterwards (subsequent mutations do not affect the built graph).
func (b *Builder) Graph() *Graph {
	deg := make([]int, b.n)
	for k := range b.edges {
		u, v := k.Nodes()
		deg[u]++
		deg[v]++
	}
	adj := make([][]NodeID, b.n)
	for i, d := range deg {
		if d > 0 {
			adj[i] = make([]NodeID, 0, d)
		}
	}
	for k := range b.edges {
		u, v := k.Nodes()
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for _, a := range adj {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	}
	return &Graph{n: b.n, adj: adj, m: len(b.edges)}
}
