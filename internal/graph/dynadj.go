package graph

import (
	"fmt"
	"sort"
)

// DynAdj is the engine-side mutable adjacency structure of the sparse
// round plane: per-node sorted neighbor rows maintained under the same
// sorted edge diffs a Patcher consumes, but in O(Σ deg(touched)) per
// Apply instead of the Patcher's O(n + m) offset-shift pass. It trades
// the CSR's shared arena (and therefore CumDegree/EdgeKeys) for strictly
// change-proportional updates: the engine walks rows and degrees of the
// active set only, and a full CSR Graph is materialized lazily — via the
// Resolver — only when an observer asks for one.
//
// Apply enforces the same delta contract as Patcher.Apply (strictly
// ascending canonical keys, adds absent, removes present, endpoints in
// the universe) and panics on violations, so a diverged topology source
// is caught at the round it diverges even when no graph is ever
// materialized.
type DynAdj struct {
	n    int
	m    int
	rows [][]NodeID
}

// NewDynAdj returns an empty dynamic adjacency over an n-node universe.
func NewDynAdj(n int) *DynAdj {
	return &DynAdj{n: n, rows: make([][]NodeID, n)}
}

// N returns the node-universe size.
func (a *DynAdj) N() int { return a.n }

// M returns the current number of edges.
func (a *DynAdj) M() int { return a.m }

// Degree returns the current degree of v.
func (a *DynAdj) Degree(v NodeID) int { return len(a.rows[v]) }

// Neighbors returns the sorted adjacency row of v. The slice aliases
// DynAdj-owned storage, is invalidated by the next Apply touching v, and
// must not be modified.
func (a *DynAdj) Neighbors(v NodeID) []NodeID { return a.rows[v] }

// insert adds u to v's sorted row, panicking if already present.
func (a *DynAdj) insert(v, u NodeID) {
	row := a.rows[v]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= u })
	if i < len(row) && row[i] == u {
		panic(fmt.Sprintf("graph: DynAdj.Apply add of present edge {%d,%d}", min(u, v), max(u, v)))
	}
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = u
	a.rows[v] = row
}

// remove deletes u from v's sorted row, panicking if absent.
func (a *DynAdj) remove(v, u NodeID) {
	row := a.rows[v]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= u })
	if i >= len(row) || row[i] != u {
		panic(fmt.Sprintf("graph: DynAdj.Apply remove of absent edge {%d,%d}", min(u, v), max(u, v)))
	}
	copy(row[i:], row[i+1:])
	a.rows[v] = row[:len(row)-1]
}

// Apply folds one sorted edge diff into the adjacency. adds and removes
// must be strictly ascending canonical edge keys with endpoints inside
// the universe; every added edge must be absent and every removed edge
// present. Cost is O(Σ deg(endpoint)) over the diff's endpoints — nothing
// scales with n or m — and zero steady-state allocations once rows have
// grown to their working capacity.
func (a *DynAdj) Apply(adds, removes []EdgeKey) {
	var last EdgeKey
	for i, k := range adds {
		if i > 0 && k <= last {
			panic("graph: DynAdj.Apply adds not strictly ascending")
		}
		last = k
		u, v := k.Nodes()
		if u < 0 || u >= v || int(v) >= a.n {
			panic(fmt.Sprintf("graph: DynAdj.Apply add %s outside universe [0,%d)", k, a.n))
		}
		a.insert(u, v)
		a.insert(v, u)
	}
	for i, k := range removes {
		if i > 0 && k <= last {
			panic("graph: DynAdj.Apply removes not strictly ascending")
		}
		last = k
		u, v := k.Nodes()
		if u < 0 || u >= v || int(v) >= a.n {
			panic(fmt.Sprintf("graph: DynAdj.Apply remove %s outside universe [0,%d)", k, a.n))
		}
		a.remove(u, v)
		a.remove(v, u)
	}
	a.m += len(adds) - len(removes)
}
