package graph

import (
	"testing"

	"dynlocal/internal/prf"
)

// togglePlan drives a deterministic random add/remove schedule over a
// node universe, tracking the exact edge set so every round's delta and
// expected graph are known.
type togglePlan struct {
	n       int
	present map[EdgeKey]bool
	keys    []EdgeKey
	s       *prf.Stream
}

func newTogglePlan(n int, seed uint64) *togglePlan {
	return &togglePlan{n: n, present: make(map[EdgeKey]bool), s: prf.NewStream(seed, 0, 0, prf.PurposeWorkload)}
}

// round toggles c random pairs and returns the sorted (adds, removes) and
// the full sorted edge list after the toggle.
func (p *togglePlan) round(c int) (adds, removes, all []EdgeKey) {
	seen := make(map[EdgeKey]bool)
	for i := 0; i < c; i++ {
		u := NodeID(p.s.Intn(p.n))
		v := NodeID(p.s.Intn(p.n))
		if u == v {
			continue
		}
		k := MakeEdgeKey(u, v)
		if seen[k] {
			continue
		}
		seen[k] = true
		if p.present[k] {
			delete(p.present, k)
			removes = append(removes, k)
		} else {
			p.present[k] = true
			adds = append(adds, k)
		}
	}
	sortKeys(adds)
	sortKeys(removes)
	p.keys = p.keys[:0]
	for k := range p.present {
		p.keys = append(p.keys, k)
	}
	sortKeys(p.keys)
	return adds, removes, p.keys
}

func sortKeys(ks []EdgeKey) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}

// TestPatcherMatchesRebuild patches through a long toggle schedule and
// compares every round against the FromSortedEdges rebuild, including the
// CSR arrays (via Neighbors) and the EdgeKeys view.
func TestPatcherMatchesRebuild(t *testing.T) {
	for _, n := range []int{1, 2, 5, 33, 200} {
		plan := newTogglePlan(n, uint64(300+n))
		p := NewPatcher(n)
		if !p.Current().Equal(Empty(n)) {
			t.Fatalf("n=%d: fresh patcher not empty", n)
		}
		for round := 1; round <= 60; round++ {
			adds, removes, all := plan.round(1 + round%7)
			got := p.Apply(adds, removes)
			want := FromSortedEdges(n, all)
			if !got.Equal(want) {
				t.Fatalf("n=%d round %d: patched graph diverged\ngot  %s\nwant %s",
					n, round, got.DebugString(), want.DebugString())
			}
			for v := 0; v < n; v++ {
				gr, wr := got.Neighbors(NodeID(v)), want.Neighbors(NodeID(v))
				if len(gr) != len(wr) {
					t.Fatalf("n=%d round %d node %d: row %v want %v", n, round, v, gr, wr)
				}
				for i := range gr {
					if gr[i] != wr[i] {
						t.Fatalf("n=%d round %d node %d: row %v want %v", n, round, v, gr, wr)
					}
				}
			}
			ek := got.EdgeKeys()
			if len(ek) != len(all) {
				t.Fatalf("n=%d round %d: EdgeKeys len %d want %d", n, round, len(ek), len(all))
			}
			for i := range ek {
				if ek[i] != all[i] {
					t.Fatalf("n=%d round %d: EdgeKeys[%d] = %v want %v", n, round, i, ek[i], all[i])
				}
			}
		}
	}
}

// TestPatcherArenaLifetime pins the double-buffer contract: the graph of
// Apply k is still intact during Apply k+1 and its arena is recycled by
// Apply k+2.
func TestPatcherArenaLifetime(t *testing.T) {
	const n = 64
	plan := newTogglePlan(n, 7)
	p := NewPatcher(n)
	var prevGraph *Graph
	var prevCopy *Graph
	for round := 1; round <= 20; round++ {
		adds, removes, _ := plan.round(5)
		g := p.Apply(adds, removes)
		if prevGraph != nil && !prevGraph.Equal(prevCopy) {
			t.Fatalf("round %d: previous round's graph corrupted while still in lifetime", round)
		}
		prevGraph, prevCopy = g, g.Clone()
	}
}

// TestPatcherNoChangeReturnsCurrent pins the empty-delta fast path.
func TestPatcherNoChangeReturnsCurrent(t *testing.T) {
	p := NewPatcher(8)
	g1 := p.Apply([]EdgeKey{MakeEdgeKey(0, 1)}, nil)
	if g2 := p.Apply(nil, nil); g2 != g1 {
		t.Fatal("no-change Apply should return the same graph")
	}
}

// TestPatcherReset adopts an external graph and patches from it.
func TestPatcherReset(t *testing.T) {
	base := GNP(40, 0.2, prf.NewStream(5, 0, 0, prf.PurposeWorkload))
	p := NewPatcher(40)
	p.Reset(base)
	if p.Current() != base {
		t.Fatal("Reset did not adopt the graph")
	}
	// Remove base's first edge, add a fresh one.
	first := base.EdgeKeys()[0]
	var add EdgeKey
	for u := NodeID(0); add == 0; u++ {
		for v := u + 1; int(v) < 40; v++ {
			if !base.HasEdge(u, v) {
				add = MakeEdgeKey(u, v)
				break
			}
		}
	}
	g := p.Apply([]EdgeKey{add}, []EdgeKey{first})
	if g.M() != base.M() || g.HasEdge(first.Nodes()) || !g.HasEdge(add.Nodes()) {
		t.Fatalf("patched-from-reset graph wrong: %s", g)
	}
	if base.HasEdge(add.Nodes()) {
		t.Fatal("Reset source graph was mutated")
	}
}

// TestPatcherPanicsOnBadDeltas pins the validation contract.
func TestPatcherPanicsOnBadDeltas(t *testing.T) {
	mk := func() *Patcher {
		p := NewPatcher(8)
		p.Apply([]EdgeKey{MakeEdgeKey(0, 1), MakeEdgeKey(2, 3)}, nil)
		return p
	}
	cases := []struct {
		name string
		run  func(p *Patcher)
	}{
		{"add-present", func(p *Patcher) { p.Apply([]EdgeKey{MakeEdgeKey(0, 1)}, nil) }},
		{"remove-absent", func(p *Patcher) { p.Apply(nil, []EdgeKey{MakeEdgeKey(4, 5)}) }},
		{"adds-unsorted", func(p *Patcher) {
			p.Apply([]EdgeKey{MakeEdgeKey(4, 5), MakeEdgeKey(1, 2)}, nil)
		}},
		{"removes-unsorted", func(p *Patcher) {
			p.Apply(nil, []EdgeKey{MakeEdgeKey(2, 3), MakeEdgeKey(0, 1)})
		}},
		{"out-of-range", func(p *Patcher) { p.Apply([]EdgeKey{MakeEdgeKey(1, 60)}, nil) }},
		{"reset-wrong-n", func(p *Patcher) { p.Reset(Empty(9)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.run(mk())
		})
	}
}

// TestDiffSortedKeys pins the linear-merge diff.
func TestDiffSortedKeys(t *testing.T) {
	plan := newTogglePlan(30, 11)
	_, _, a := plan.round(40)
	prev := append([]EdgeKey(nil), a...)
	adds, removes, cur := plan.round(15)
	gotAdds, gotRems := DiffSortedKeys(prev, cur, nil, nil)
	if len(gotAdds) != len(adds) || len(gotRems) != len(removes) {
		t.Fatalf("diff sizes: %d/%d want %d/%d", len(gotAdds), len(gotRems), len(adds), len(removes))
	}
	for i := range adds {
		if gotAdds[i] != adds[i] {
			t.Fatalf("adds[%d] = %v want %v", i, gotAdds[i], adds[i])
		}
	}
	for i := range removes {
		if gotRems[i] != removes[i] {
			t.Fatalf("removes[%d] = %v want %v", i, gotRems[i], removes[i])
		}
	}
	// Self-diff is empty; diff against nil is all-adds/all-removes.
	if a2, r2 := DiffSortedKeys(cur, cur, nil, nil); len(a2) != 0 || len(r2) != 0 {
		t.Fatal("self diff not empty")
	}
	if a3, _ := DiffSortedKeys(nil, cur, nil, nil); len(a3) != len(cur) {
		t.Fatal("diff from empty should be all adds")
	}
}

func BenchmarkPatcherApply(b *testing.B) {
	const n = 65536
	plan := newTogglePlan(n, 3)
	_, _, all := plan.round(8 * n)
	base := FromSortedEdges(n, all)
	// Pre-generate a ping-pong delta cycle so the patcher sees steady
	// small diffs.
	const cycle = 8
	type delta struct{ adds, removes []EdgeKey }
	deltas := make([]delta, 0, 2*cycle)
	for i := 0; i < cycle; i++ {
		adds, removes, _ := plan.round(64)
		deltas = append(deltas, delta{append([]EdgeKey(nil), adds...), append([]EdgeKey(nil), removes...)})
	}
	for i := cycle - 1; i >= 0; i-- {
		deltas = append(deltas, delta{deltas[i].removes, deltas[i].adds})
	}
	b.Run("patch", func(b *testing.B) {
		p := NewPatcher(n)
		p.Reset(base)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := deltas[i%len(deltas)]
			p.Apply(d.adds, d.removes)
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		keys := base.Edges()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = FromSortedEdges(n, keys)
		}
	})
}
