package graph

import (
	"slices"
	"testing"
)

// TestDynAdjTracksPatcher folds the same random diff schedule into a
// DynAdj and a Patcher and checks rows, degrees and edge counts agree
// every round.
func TestDynAdjTracksPatcher(t *testing.T) {
	const n = 64
	const rounds = 40
	adj := NewDynAdj(n)
	p := NewPatcher(n)
	cur := p.Current()
	present := make(map[EdgeKey]bool)
	rng := uint64(1)
	next := func(m int) int { // tiny deterministic LCG, enough for a schedule
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(m))
	}
	for r := 0; r < rounds; r++ {
		var adds, removes []EdgeKey
		picked := make(map[EdgeKey]bool)
		for i := 0; i < 12; i++ {
			u, v := NodeID(next(n)), NodeID(next(n))
			if u == v {
				continue
			}
			k := MakeEdgeKey(u, v)
			if picked[k] { // an edge may appear on only one side of a diff
				continue
			}
			picked[k] = true
			if present[k] {
				removes = append(removes, k)
				delete(present, k)
			} else {
				adds = append(adds, k)
				present[k] = true
			}
		}
		slices.Sort(adds)
		adds = slices.Compact(adds)
		slices.Sort(removes)
		removes = slices.Compact(removes)
		adj.Apply(adds, removes)
		cur = p.Apply(adds, removes)
		if adj.M() != cur.M() {
			t.Fatalf("round %d: DynAdj m=%d, Patcher m=%d", r, adj.M(), cur.M())
		}
		for v := NodeID(0); int(v) < n; v++ {
			if !slices.Equal(adj.Neighbors(v), cur.Neighbors(v)) {
				t.Fatalf("round %d node %d: rows diverge: %v vs %v",
					r, v, adj.Neighbors(v), cur.Neighbors(v))
			}
			if adj.Degree(v) != cur.Degree(v) {
				t.Fatalf("round %d node %d: degree %d vs %d", r, v, adj.Degree(v), cur.Degree(v))
			}
		}
	}
}

func TestDynAdjPanicsOnBadDeltas(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mk := func() *DynAdj {
		a := NewDynAdj(8)
		a.Apply([]EdgeKey{MakeEdgeKey(0, 1), MakeEdgeKey(2, 3)}, nil)
		return a
	}
	mustPanic("add present", func() { mk().Apply([]EdgeKey{MakeEdgeKey(0, 1)}, nil) })
	mustPanic("remove absent", func() { mk().Apply(nil, []EdgeKey{MakeEdgeKey(0, 2)}) })
	mustPanic("adds unsorted", func() {
		mk().Apply([]EdgeKey{MakeEdgeKey(4, 5), MakeEdgeKey(1, 2)}, nil)
	})
	mustPanic("removes unsorted", func() {
		mk().Apply(nil, []EdgeKey{MakeEdgeKey(2, 3), MakeEdgeKey(0, 1)})
	})
	mustPanic("out of universe", func() { mk().Apply([]EdgeKey{MakeEdgeKey(7, 8)}, nil) })
}
