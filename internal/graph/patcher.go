package graph

import (
	"fmt"
	"slices"
)

// DiffSortedKeys appends cur\prev to adds and prev\cur to removes and
// returns both, a single linear merge over two strictly ascending edge-key
// lists (typically two graphs' EdgeKeys views). Callers reuse the
// destination buffers across rounds by passing them re-sliced to length 0.
//
//dynlint:sorted prev cur return
func DiffSortedKeys(prev, cur, adds, removes []EdgeKey) ([]EdgeKey, []EdgeKey) {
	i, j := 0, 0
	for i < len(prev) && j < len(cur) {
		switch {
		case prev[i] < cur[j]:
			removes = append(removes, prev[i])
			i++
		case prev[i] > cur[j]:
			adds = append(adds, cur[j])
			j++
		default:
			i++
			j++
		}
	}
	removes = append(removes, prev[i:]...)
	adds = append(adds, cur[j:]...)
	//dynlint:ignore sortedcheck two-pointer merge over ascending inputs emits ascending output by construction
	return adds, removes
}

// patchArena is one generation of Patcher-owned graph storage: the CSR
// arrays plus the sorted key list, and a reusable Graph header pointing at
// them.
type patchArena struct {
	g         Graph
	offsets   []int32
	neighbors []NodeID
	keys      []EdgeKey
}

// Patcher maintains a current CSR graph under sorted edge add/remove
// deltas without the per-round counting rebuild of FromSortedEdges: Apply
// merges the diff into the spare of two pooled arenas (offsets, neighbors,
// keys) that ping-pong between rounds — untouched adjacency rows are block
// copies, touched rows a three-way merge, and the sorted key list one
// linear merge.
//
// # Ownership
//
// Graphs returned by Apply alias Patcher-owned arenas. With two arenas the
// graph returned by one Apply call stays valid through the next call and
// is recycled by the one after that: callers may hold the current and the
// previous graph (exactly what a round loop diffing consecutive rounds
// needs) and must Clone anything retained longer. A no-change Apply
// returns the current graph unchanged, which only extends lifetimes.
// Graphs adopted via Reset are caller-owned and never recycled.
type Patcher struct {
	n      int
	cur    *Graph
	flip   int
	arenas [2]patchArena

	// Per-round scratch: the (v, u) mirrors of the add/remove lists, so
	// row patches for the higher endpoint are available in sorted order.
	revAdd, revRem []EdgeKey
}

// NewPatcher creates a patcher over an n-node universe whose current graph
// is the empty graph.
func NewPatcher(n int) *Patcher {
	return &Patcher{n: n, cur: Empty(n)}
}

// N returns the node-universe size.
func (p *Patcher) N() int { return p.n }

// Current returns the current graph (the result of the last Apply/Reset,
// or the empty graph).
func (p *Patcher) Current() *Graph { return p.cur }

// Reset adopts g as the current graph, e.g. after a round in which the
// topology source handed over a fully materialized graph instead of a
// delta. g must stay valid until the next Apply reads it.
func (p *Patcher) Reset(g *Graph) {
	if g.N() != p.n {
		panic(fmt.Sprintf("graph: Patcher.Reset node space %d, want %d", g.N(), p.n))
	}
	p.cur = g
}

// mirror fills dst with the (v, u) swap of every key in keys, sorted
// ascending, reusing dst's capacity.
func mirror(keys, dst []EdgeKey) []EdgeKey {
	dst = dst[:0]
	for _, k := range keys {
		u, v := k.Nodes()
		dst = append(dst, EdgeKey(uint64(uint32(v))<<32|uint64(uint32(u))))
	}
	slices.Sort(dst)
	return dst
}

// hi returns the first (row) component of a packed key.
func hi(k EdgeKey) NodeID { return NodeID(uint32(k >> 32)) }

// lo returns the second (column) component of a packed key.
func lo(k EdgeKey) NodeID { return NodeID(uint32(k)) }

// Apply advances the current graph by one sorted delta and returns the
// new graph (see the type comment for its lifetime). adds and removes must
// be strictly ascending canonical edge keys with endpoints inside the node
// universe; every added edge must be absent from and every removed edge
// present in the current graph. Violations panic — a malformed delta means
// the topology source and the graph have diverged, and patching on would
// corrupt every downstream window. Cost is O(n + m) with block-copy
// constants plus O(c log c) for c = |adds| + |removes|, and zero
// steady-state allocations.
//
//dynlint:loan
//dynlint:sorted adds removes
func (p *Patcher) Apply(adds, removes []EdgeKey) *Graph {
	if len(adds) == 0 && len(removes) == 0 {
		return p.cur
	}
	cur := p.cur
	ar := &p.arenas[p.flip]
	p.flip ^= 1

	newM := cur.m + len(adds) - len(removes)
	if newM < 0 {
		panicBadDelta("more removals than edges")
	}

	// Key merge: cur.keys + adds - removes -> ar.keys, validating the
	// delta against the current edge set along the way.
	keys := ar.keys[:0]
	if cap(keys) < newM {
		keys = make([]EdgeKey, 0, newM+newM/4)
	}
	var lastAdd, lastRem EdgeKey
	i, a, d := 0, 0, 0
	for i < len(cur.keys) || a < len(adds) {
		if a < len(adds) && (i >= len(cur.keys) || adds[a] < cur.keys[i]) {
			k := adds[a]
			if a > 0 && k <= lastAdd {
				panicBadDelta("adds not strictly ascending")
			}
			lastAdd = k
			u, v := k.Nodes()
			if u < 0 || u >= v || int(v) >= p.n {
				panic(fmt.Sprintf("graph: Patcher.Apply add %s outside universe [0,%d)", k, p.n))
			}
			keys = append(keys, k)
			a++
			continue
		}
		k := cur.keys[i]
		if a < len(adds) && adds[a] == k {
			panic(fmt.Sprintf("graph: Patcher.Apply add of present edge %s", k))
		}
		if d < len(removes) {
			if d > 0 && removes[d] <= lastRem {
				panicBadDelta("removes not strictly ascending")
			}
			if removes[d] < k {
				panic(fmt.Sprintf("graph: Patcher.Apply remove of absent edge %s", removes[d]))
			}
			if removes[d] == k {
				lastRem = removes[d]
				d++
				i++
				continue
			}
		}
		keys = append(keys, k)
		i++
	}
	if d < len(removes) {
		panic(fmt.Sprintf("graph: Patcher.Apply remove of absent edge %s", removes[d]))
	}
	ar.keys = keys

	p.revAdd = mirror(adds, p.revAdd)
	p.revRem = mirror(removes, p.revRem)

	// Offsets: old prefix sums shifted by the cumulative per-node degree
	// delta — one pass over the node space, one comparison per delta entry.
	offs := ar.offsets
	if cap(offs) < p.n+1 {
		offs = make([]int32, p.n+1)
	}
	offs = offs[:p.n+1]
	offs[0] = 0
	{
		af, arv, rf, rrv := 0, 0, 0, 0
		shift := int32(0)
		for x := 0; x < p.n; x++ {
			id := NodeID(x)
			for af < len(adds) && hi(adds[af]) == id {
				shift++
				af++
			}
			for arv < len(p.revAdd) && hi(p.revAdd[arv]) == id {
				shift++
				arv++
			}
			for rf < len(removes) && hi(removes[rf]) == id {
				shift--
				rf++
			}
			for rrv < len(p.revRem) && hi(p.revRem[rrv]) == id {
				shift--
				rrv++
			}
			offs[x+1] = cur.offsets[x+1] + shift
		}
	}
	ar.offsets = offs

	// Neighbors: block-copy maximal runs of untouched rows (their contents
	// are unchanged, only shifted), merge-patch the touched rows.
	nbrs := ar.neighbors
	if cap(nbrs) < 2*newM {
		nbrs = make([]NodeID, 2*newM+newM/2)
	}
	nbrs = nbrs[:2*newM]
	{
		af, arv, rf, rrv := 0, 0, 0, 0
		x := 0
		for x < p.n {
			// Next row touched by any delta entry.
			nt := p.n
			if af < len(adds) && int(hi(adds[af])) < nt {
				nt = int(hi(adds[af]))
			}
			if arv < len(p.revAdd) && int(hi(p.revAdd[arv])) < nt {
				nt = int(hi(p.revAdd[arv]))
			}
			if rf < len(removes) && int(hi(removes[rf])) < nt {
				nt = int(hi(removes[rf]))
			}
			if rrv < len(p.revRem) && int(hi(p.revRem[rrv])) < nt {
				nt = int(hi(p.revRem[rrv]))
			}
			if nt > x {
				copy(nbrs[offs[x]:offs[nt]], cur.neighbors[cur.offsets[x]:cur.offsets[nt]])
				x = nt
				continue
			}
			// Patch row x: merge the old row with its added neighbors,
			// dropping the removed ones. The smaller-endpoint additions
			// come from the mirrored list (ascending, all < x), then the
			// larger-endpoint ones from the forward list (ascending, all
			// > x) — concatenated they are ascending.
			id := NodeID(x)
			row := cur.neighbors[cur.offsets[x]:cur.offsets[x+1]]
			w := offs[x]
			nextAdd := func() (NodeID, bool) {
				if arv < len(p.revAdd) && hi(p.revAdd[arv]) == id {
					return lo(p.revAdd[arv]), true
				}
				if af < len(adds) && hi(adds[af]) == id {
					return lo(adds[af]), true
				}
				return 0, false
			}
			popAdd := func() {
				if arv < len(p.revAdd) && hi(p.revAdd[arv]) == id {
					arv++
				} else {
					af++
				}
			}
			nextRem := func() (NodeID, bool) {
				if rrv < len(p.revRem) && hi(p.revRem[rrv]) == id {
					return lo(p.revRem[rrv]), true
				}
				if rf < len(removes) && hi(removes[rf]) == id {
					return lo(removes[rf]), true
				}
				return 0, false
			}
			ri := 0
			for {
				av, aok := nextAdd()
				if ri < len(row) && (!aok || row[ri] < av) {
					if rv, rok := nextRem(); rok && rv == row[ri] {
						if rrv < len(p.revRem) && hi(p.revRem[rrv]) == id {
							rrv++
						} else {
							rf++
						}
						ri++
						continue
					}
					nbrs[w] = row[ri]
					w++
					ri++
					continue
				}
				if !aok {
					break
				}
				nbrs[w] = av
				w++
				popAdd()
			}
			if w != offs[x+1] {
				panicBadDelta("row patch did not match degree delta")
			}
			x++
		}
	}
	ar.neighbors = nbrs

	ar.g = Graph{n: p.n, m: newM, offsets: offs, neighbors: nbrs, keys: keys}
	p.cur = &ar.g
	return p.cur
}

// panicBadDelta is the cold path for malformed deltas, kept out of the
// merge loops so they stay free of fmt machinery.
func panicBadDelta(msg string) {
	panic("graph: Patcher.Apply: " + msg)
}
