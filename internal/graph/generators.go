package graph

import (
	"math"

	"dynlocal/internal/prf"
)

// Generators build the synthetic workload graphs used by the experiments.
// All of them draw randomness from a prf.Stream so workloads are
// reproducible and independent of algorithm randomness. Generators that
// emit edges in canonical key order assemble the CSR graph directly via
// FromSortedEdges; the rest go through FromEdges (sort + dedup).

// GNP returns an Erdős–Rényi G(n, p) graph.
func GNP(n int, p float64, s *prf.Stream) *Graph {
	if p <= 0 {
		return Empty(n)
	}
	if p >= 1 {
		return Complete(n)
	}
	// Geometric skipping over the n(n-1)/2 potential edges: O(m) draws.
	// Linear indexes are visited strictly ascending, and the row-major
	// upper-triangle order is exactly EdgeKey order, so the (u, v)
	// decoding advances incrementally — O(m + n) total instead of a
	// prefix-sum scan per edge.
	logq := math.Log(1 - p)
	total := int64(n) * int64(n-1) / 2
	idx := int64(-1)
	keys := make([]EdgeKey, 0, int(float64(total)*p*1.1)+8)
	row := int64(0)        // current row u
	rowStart := int64(0)   // linear index of (u, u+1)
	rowLen := int64(n - 1) // edges in the current row
	for {
		u := s.Float64()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		skip := int64(math.Floor(math.Log(1-u) / logq))
		idx += 1 + skip
		if idx >= total {
			break
		}
		for idx-rowStart >= rowLen {
			rowStart += rowLen
			rowLen--
			row++
		}
		v := row + 1 + (idx - rowStart)
		keys = append(keys, MakeEdgeKey(NodeID(row), NodeID(v)))
	}
	return FromSortedEdges(n, keys)
}

// GNM returns a uniform graph with exactly m distinct edges (m capped at
// the maximum possible).
func GNM(n, m int, s *prf.Stream) *Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	have := make(map[EdgeKey]struct{}, m)
	keys := make([]EdgeKey, 0, m)
	for len(keys) < m {
		u := NodeID(s.Intn(n))
		v := NodeID(s.Intn(n))
		if u == v {
			continue
		}
		k := MakeEdgeKey(u, v)
		if _, ok := have[k]; ok {
			continue
		}
		have[k] = struct{}{}
		keys = append(keys, k)
	}
	return FromEdges(n, keys)
}

// Complete returns K_n.
func Complete(n int) *Graph {
	keys := make([]EdgeKey, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			keys = append(keys, MakeEdgeKey(NodeID(u), NodeID(v)))
		}
	}
	return FromSortedEdges(n, keys)
}

// Cycle returns C_n (n >= 3); for n < 3 it returns a path.
func Cycle(n int) *Graph {
	keys := make([]EdgeKey, 0, n)
	for i := 0; i+1 < n; i++ {
		keys = append(keys, MakeEdgeKey(NodeID(i), NodeID(i+1)))
	}
	if n >= 3 {
		keys = append(keys, MakeEdgeKey(NodeID(n-1), 0))
	}
	return FromEdges(n, keys)
}

// Path returns P_n.
func Path(n int) *Graph {
	keys := make([]EdgeKey, 0, n)
	for i := 0; i+1 < n; i++ {
		keys = append(keys, MakeEdgeKey(NodeID(i), NodeID(i+1)))
	}
	return FromSortedEdges(n, keys)
}

// Grid returns the rows×cols king-free (4-neighbor) grid graph on
// rows*cols nodes in row-major order.
func Grid(rows, cols int) *Graph {
	keys := make([]EdgeKey, 0, 2*rows*cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				keys = append(keys, MakeEdgeKey(id(r, c), id(r, c+1)))
			}
			if r+1 < rows {
				keys = append(keys, MakeEdgeKey(id(r, c), id(r+1, c)))
			}
		}
	}
	return FromSortedEdges(rows*cols, keys)
}

// CompleteBipartite returns K_{a,b} on a+b nodes (left ids first).
func CompleteBipartite(a, b int) *Graph {
	keys := make([]EdgeKey, 0, a*b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			keys = append(keys, MakeEdgeKey(NodeID(u), NodeID(a+v)))
		}
	}
	return FromSortedEdges(a+b, keys)
}

// Star returns K_{1,n-1} with node 0 as the center.
func Star(n int) *Graph {
	keys := make([]EdgeKey, 0, n-1)
	for v := 1; v < n; v++ {
		keys = append(keys, MakeEdgeKey(0, NodeID(v)))
	}
	return FromSortedEdges(n, keys)
}

// RandomTree returns a uniform random recursive tree on n nodes: node i
// attaches to a uniformly random earlier node.
func RandomTree(n int, s *prf.Stream) *Graph {
	keys := make([]EdgeKey, 0, n)
	for v := 1; v < n; v++ {
		keys = append(keys, MakeEdgeKey(NodeID(s.Intn(v)), NodeID(v)))
	}
	return FromEdges(n, keys)
}

// Caterpillar returns a path of spineLen nodes with legsPerSpine leaf
// nodes hanging off each spine node — a worst case for greedy coloring
// palettes and a classic MIS stress shape.
func Caterpillar(spineLen, legsPerSpine int) *Graph {
	n := spineLen * (1 + legsPerSpine)
	keys := make([]EdgeKey, 0, n)
	for i := 0; i+1 < spineLen; i++ {
		keys = append(keys, MakeEdgeKey(NodeID(i), NodeID(i+1)))
	}
	leg := spineLen
	for i := 0; i < spineLen; i++ {
		for j := 0; j < legsPerSpine; j++ {
			keys = append(keys, MakeEdgeKey(NodeID(i), NodeID(leg)))
			leg++
		}
	}
	return FromEdges(n, keys)
}

// Point is a 2-D coordinate in the unit square, used by the geometric
// generator and the mobility example.
type Point struct{ X, Y float64 }

// RandomPoints draws n uniform points in the unit square.
func RandomPoints(n int, s *prf.Stream) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: s.Float64(), Y: s.Float64()}
	}
	return pts
}

// Geometric returns the unit-disk graph connecting points at Euclidean
// distance <= radius. Uses a uniform grid bucket index so construction is
// near-linear for constant expected degree.
func Geometric(pts []Point, radius float64) *Graph {
	n := len(pts)
	if radius <= 0 {
		return Empty(n)
	}
	cell := radius
	cols := int(1/cell) + 1
	bucket := make(map[int][]NodeID)
	key := func(p Point) int {
		cx := int(p.X / cell)
		cy := int(p.Y / cell)
		return cy*cols + cx
	}
	for i, p := range pts {
		bucket[key(p)] = append(bucket[key(p)], NodeID(i))
	}
	r2 := radius * radius
	var keys []EdgeKey
	for i, p := range pts {
		cx := int(p.X / cell)
		cy := int(p.Y / cell)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				for _, j := range bucket[(cy+dy)*cols+(cx+dx)] {
					if j <= NodeID(i) {
						continue
					}
					q := pts[j]
					ddx, ddy := p.X-q.X, p.Y-q.Y
					if ddx*ddx+ddy*ddy <= r2 {
						keys = append(keys, MakeEdgeKey(NodeID(i), j))
					}
				}
			}
		}
	}
	return FromEdges(n, keys)
}
