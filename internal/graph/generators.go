package graph

import (
	"math"

	"dynlocal/internal/prf"
)

// Generators build the synthetic workload graphs used by the experiments.
// All of them draw randomness from a prf.Stream so workloads are
// reproducible and independent of algorithm randomness.

// GNP returns an Erdős–Rényi G(n, p) graph.
func GNP(n int, p float64, s *prf.Stream) *Graph {
	b := NewBuilder(n)
	if p <= 0 {
		return b.Graph()
	}
	if p >= 1 {
		return Complete(n)
	}
	// Geometric skipping over the n(n-1)/2 potential edges: O(m) draws.
	logq := math.Log(1 - p)
	total := int64(n) * int64(n-1) / 2
	idx := int64(-1)
	for {
		u := s.Float64()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		skip := int64(math.Floor(math.Log(1-u) / logq))
		idx += 1 + skip
		if idx >= total {
			break
		}
		u32, v32 := edgeFromIndex(idx, n)
		b.AddEdge(u32, v32)
	}
	return b.Graph()
}

// edgeFromIndex maps a linear index in [0, n(n-1)/2) to the edge (u, v)
// with u < v in row-major order of the strict upper triangle.
func edgeFromIndex(idx int64, n int) (NodeID, NodeID) {
	// Row u owns (n-1-u) edges. Find u by solving the prefix sum.
	u := int64(0)
	remaining := idx
	rowLen := int64(n - 1)
	for remaining >= rowLen {
		remaining -= rowLen
		u++
		rowLen--
	}
	v := u + 1 + remaining
	return NodeID(u), NodeID(v)
}

// GNM returns a uniform graph with exactly m distinct edges (m capped at
// the maximum possible).
func GNM(n, m int, s *prf.Stream) *Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	b := NewBuilder(n)
	for b.M() < m {
		u := NodeID(s.Intn(n))
		v := NodeID(s.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Graph()
}

// Complete returns K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	return b.Graph()
}

// Cycle returns C_n (n >= 3); for n < 3 it returns a path.
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	if n >= 3 {
		b.AddEdge(NodeID(n-1), 0)
	}
	return b.Graph()
}

// Path returns P_n.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	return b.Graph()
}

// Grid returns the rows×cols king-free (4-neighbor) grid graph on
// rows*cols nodes in row-major order.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Graph()
}

// CompleteBipartite returns K_{a,b} on a+b nodes (left ids first).
func CompleteBipartite(a, b int) *Graph {
	bld := NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			bld.AddEdge(NodeID(u), NodeID(a+v))
		}
	}
	return bld.Graph()
}

// Star returns K_{1,n-1} with node 0 as the center.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, NodeID(v))
	}
	return b.Graph()
}

// RandomTree returns a uniform random recursive tree on n nodes: node i
// attaches to a uniformly random earlier node.
func RandomTree(n int, s *prf.Stream) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(NodeID(s.Intn(v)), NodeID(v))
	}
	return b.Graph()
}

// Caterpillar returns a path of spineLen nodes with legsPerSpine leaf
// nodes hanging off each spine node — a worst case for greedy coloring
// palettes and a classic MIS stress shape.
func Caterpillar(spineLen, legsPerSpine int) *Graph {
	n := spineLen * (1 + legsPerSpine)
	b := NewBuilder(n)
	for i := 0; i+1 < spineLen; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	leg := spineLen
	for i := 0; i < spineLen; i++ {
		for j := 0; j < legsPerSpine; j++ {
			b.AddEdge(NodeID(i), NodeID(leg))
			leg++
		}
	}
	return b.Graph()
}

// Point is a 2-D coordinate in the unit square, used by the geometric
// generator and the mobility example.
type Point struct{ X, Y float64 }

// RandomPoints draws n uniform points in the unit square.
func RandomPoints(n int, s *prf.Stream) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: s.Float64(), Y: s.Float64()}
	}
	return pts
}

// Geometric returns the unit-disk graph connecting points at Euclidean
// distance <= radius. Uses a uniform grid bucket index so construction is
// near-linear for constant expected degree.
func Geometric(pts []Point, radius float64) *Graph {
	n := len(pts)
	b := NewBuilder(n)
	if radius <= 0 {
		return b.Graph()
	}
	cell := radius
	cols := int(1/cell) + 1
	bucket := make(map[int][]NodeID)
	key := func(p Point) int {
		cx := int(p.X / cell)
		cy := int(p.Y / cell)
		return cy*cols + cx
	}
	for i, p := range pts {
		bucket[key(p)] = append(bucket[key(p)], NodeID(i))
	}
	r2 := radius * radius
	for i, p := range pts {
		cx := int(p.X / cell)
		cy := int(p.Y / cell)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				for _, j := range bucket[(cy+dy)*cols+(cx+dx)] {
					if j <= NodeID(i) {
						continue
					}
					q := pts[j]
					ddx, ddy := p.X-q.X, p.Y-q.Y
					if ddx*ddx+ddy*ddy <= r2 {
						b.AddEdge(NodeID(i), j)
					}
				}
			}
		}
	}
	return b.Graph()
}
