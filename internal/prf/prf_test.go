package prf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBlockDeterministic(t *testing.T) {
	a := Block(42, 7, 3, PurposeLubyAlpha)
	b := Block(42, 7, 3, PurposeLubyAlpha)
	if a != b {
		t.Fatalf("Block not deterministic: %x != %x", a, b)
	}
}

func TestBlockKeySeparation(t *testing.T) {
	base := Block(42, 7, 3, PurposeLubyAlpha)
	cases := map[string]uint64{
		"seed":    Block(43, 7, 3, PurposeLubyAlpha),
		"node":    Block(42, 8, 3, PurposeLubyAlpha),
		"round":   Block(42, 7, 4, PurposeLubyAlpha),
		"purpose": Block(42, 7, 3, PurposeCandidate),
	}
	for name, v := range cases {
		if v == base {
			t.Errorf("changing %s did not change block", name)
		}
	}
}

func TestStreamSequenceDistinct(t *testing.T) {
	s := NewStream(1, 2, 3, PurposeAux)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		v := s.Uint64()
		if seen[v] {
			t.Fatalf("duplicate block at position %d", i)
		}
		seen[v] = true
	}
}

func TestStreamIndependentOfOtherStreams(t *testing.T) {
	// Interleaved consumption must equal isolated consumption.
	a1 := NewStream(9, 1, 1, PurposeAux)
	b1 := NewStream(9, 2, 1, PurposeAux)
	var seqA1, seqB1 []uint64
	for i := 0; i < 16; i++ {
		seqA1 = append(seqA1, a1.Uint64())
		seqB1 = append(seqB1, b1.Uint64())
	}
	a2 := NewStream(9, 1, 1, PurposeAux)
	b2 := NewStream(9, 2, 1, PurposeAux)
	for i := 0; i < 16; i++ {
		if got := a2.Uint64(); got != seqA1[i] {
			t.Fatalf("stream A diverged at %d", i)
		}
	}
	for i := 0; i < 16; i++ {
		if got := b2.Uint64(); got != seqB1[i] {
			t.Fatalf("stream B diverged at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(5, 0, 0, PurposeAux)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	// Chi-square over 16 buckets, 160k samples. Threshold is generous
	// (df=15, p≈1e-6) — this is a smoke test for gross bias.
	const buckets = 16
	const samples = 160000
	var count [buckets]int
	s := NewStream(12345, 3, 9, PurposeAux)
	for i := 0; i < samples; i++ {
		count[int(s.Float64()*buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range count {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 60 {
		t.Fatalf("chi-square too large: %v (counts %v)", chi2, count)
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewStream(7, 7, 7, PurposeAux)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of bounds", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewStream(1, 1, 1, PurposeAux).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	s := NewStream(99, 1, 1, PurposeAux)
	const n = 7
	const samples = 70000
	var count [n]int
	for i := 0; i < samples; i++ {
		count[s.Intn(n)]++
	}
	expected := float64(samples) / n
	for i, c := range count {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, expected)
		}
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	s := NewStream(3, 3, 3, PurposeAux)
	if s.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	if s.Bernoulli(-0.5) {
		t.Error("Bernoulli(-0.5) returned true")
	}
	if !s.Bernoulli(1.5) {
		t.Error("Bernoulli(1.5) returned false")
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := NewStream(31, 4, 2, PurposeCandidate)
	const p = 0.25
	const samples = 100000
	hits := 0
	for i := 0; i < samples; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / samples
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) frequency %v", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewStream(8, 8, 8, PurposeAux)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpPositiveAndMeanish(t *testing.T) {
	s := NewStream(17, 1, 1, PurposeAux)
	const lambda = 2.0
	sum := 0.0
	const samples = 50000
	for i := 0; i < samples; i++ {
		v := s.Exp(lambda)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / samples
	if math.Abs(mean-1/lambda) > 0.02 {
		t.Fatalf("Exp mean %v, want ~%v", mean, 1/lambda)
	}
}

func TestParetoSupportAndMean(t *testing.T) {
	s := NewStream(19, 1, 1, PurposeAux)
	const alpha = 3.0 // mean exists and is alpha/(alpha-1) = 1.5
	sum := 0.0
	const samples = 200000
	for i := 0; i < samples; i++ {
		v := s.Pareto(alpha)
		if v < 1 {
			t.Fatalf("Pareto returned %v < 1 (scale is 1)", v)
		}
		sum += v
	}
	mean := sum / samples
	if want := alpha / (alpha - 1); math.Abs(mean-want) > 0.05 {
		t.Fatalf("Pareto(%v) mean %v, want ~%v", alpha, mean, want)
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// P[X > x] = x^(-alpha): with alpha = 1.1 the tail is fat enough that
	// 100k draws should comfortably exceed 100 at least once, while the
	// bulk stays near 1 (median 2^(1/alpha) < 2).
	s := NewStream(23, 1, 1, PurposeAux)
	const alpha = 1.1
	const samples = 100000
	big, small := 0, 0
	for i := 0; i < samples; i++ {
		v := s.Pareto(alpha)
		if v > 100 {
			big++
		}
		if v < 2 {
			small++
		}
	}
	if big == 0 {
		t.Fatal("no draw exceeded 100 — tail not heavy")
	}
	if small < samples/3 {
		t.Fatalf("only %d of %d draws below 2 — bulk misplaced", small, samples)
	}
}

func TestAlphaWordMatchesStreamFirstUint(t *testing.T) {
	// The clairvoyant adversary's winner prediction compares AlphaWord
	// values; they must equal the first Uint64 of the node's stream.
	f := func(seed uint64, node int32, round uint16) bool {
		r := int(round)
		want := NewStream(seed, node, r, PurposeLubyAlpha).Uint64()
		return AlphaWord(seed, node, r, PurposeLubyAlpha) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAlphaMatchesStreamFirstFloat(t *testing.T) {
	// The clairvoyant adversary (E13) depends on Alpha predicting the first
	// Float64 of the node's PurposeLubyAlpha stream exactly.
	f := func(seed uint64, node int32, round uint16) bool {
		r := int(round)
		want := NewStream(seed, node, r, PurposeLubyAlpha).Float64()
		got := Alpha(seed, node, r, PurposeLubyAlpha)
		return want == got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveChangesPurposeOnly(t *testing.T) {
	s := NewStream(11, 5, 6, PurposeTentativeColor)
	d := s.Derive(PurposeCandidate)
	if d.seed != s.seed || d.node != s.node || d.round != s.round {
		t.Fatal("Derive changed coordinates other than purpose")
	}
	if d.purpose != PurposeCandidate {
		t.Fatal("Derive did not change purpose")
	}
	if d.Uint64() == NewStream(11, 5, 6, PurposeTentativeColor).Uint64() {
		t.Fatal("derived stream equals parent stream")
	}
}

func TestAvalancheOnNode(t *testing.T) {
	// Flipping one bit of the node id should flip ~32 of 64 output bits.
	diffBits := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		a := Block(100, int32(i), 5, PurposeAux)
		b := Block(100, int32(i)^1, 5, PurposeAux)
		x := a ^ b
		for x != 0 {
			diffBits += int(x & 1)
			x >>= 1
		}
	}
	mean := float64(diffBits) / trials
	if mean < 28 || mean > 36 {
		t.Fatalf("poor avalanche: mean differing bits %v", mean)
	}
}

func BenchmarkBlock(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Block(42, int32(i), i, PurposeAux)
	}
	_ = sink
}

func BenchmarkStreamFloat64(b *testing.B) {
	s := NewStream(42, 1, 1, PurposeAux)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Float64()
	}
	_ = sink
}

func TestCursorResume(t *testing.T) {
	// A stream restored from its cursor must continue bit-identically:
	// draw k values, snapshot the cursor, and check the next draws match
	// an uninterrupted reference stream at every prefix length k.
	for k := 0; k < 20; k++ {
		ref := NewStream(77, 3, 9, PurposeAdversary)
		for i := 0; i < k; i++ {
			ref.Uint64()
		}
		cur := ref.Cursor()
		if cur != uint64(k) {
			t.Fatalf("Cursor after %d draws = %d", k, cur)
		}
		resumed := NewStream(77, 3, 9, PurposeAdversary)
		resumed.SetCursor(cur)
		for i := 0; i < 8; i++ {
			if got, want := resumed.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("k=%d draw %d: resumed %#x, reference %#x", k, i, got, want)
			}
		}
	}
}

func TestCursorSurvivesRejectionSampling(t *testing.T) {
	// Intn consumes a variable number of blocks via rejection sampling;
	// the cursor must account for every consumed block, not just accepted
	// draws.
	s := NewStream(5, 1, 2, PurposeAux)
	for i := 0; i < 100; i++ {
		s.Intn(3)
	}
	resumed := NewStream(5, 1, 2, PurposeAux)
	resumed.SetCursor(s.Cursor())
	for i := 0; i < 10; i++ {
		if got, want := resumed.Intn(1000), s.Intn(1000); got != want {
			t.Fatalf("draw %d after resume: %d != %d", i, got, want)
		}
	}
}
