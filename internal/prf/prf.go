// Package prf provides deterministic pseudo-random streams keyed by
// (seed, node, round, purpose).
//
// The dynamic-network model of Bamberger, Kuhn and Maus requires that
// "the algorithm can use fresh randomness in every round" (Section 2).
// Instead of drawing from a stateful generator, every random decision in
// this repository is a pure function of a master seed, the node identifier,
// the engine round and a purpose tag. This gives three properties the
// reproduction depends on:
//
//  1. Bit-reproducibility: a run is identical for any worker count and any
//     goroutine schedule, because no RNG state is shared or advanced
//     concurrently.
//  2. Obliviousness control: a ρ-oblivious adversary simply is not handed
//     the seed; the adaptive-offline ("clairvoyant") adversary of the remark
//     after Lemma 5.2 is handed the same PRF and can therefore compute the
//     exact random values the nodes will draw, which is precisely the
//     adversary the paper's remark describes.
//  3. Replay: recorded traces can be re-verified without storing random
//     tapes.
//
// The mixing function is the SplitMix64 finalizer, a well-studied 64-bit
// avalanche permutation; statistical quality is verified in the tests.
package prf

import "math"

// Purpose tags separate independent random decisions made by the same node
// in the same round. Each algorithm uses its own tags so that composed
// algorithms (e.g. Concat running SColor plus many DColor instances) draw
// independent values.
type Purpose uint64

// Reserved purpose tags. Concat instances offset these by InstanceStride
// per dynamic-algorithm instance.
const (
	PurposeTentativeColor Purpose = 1 // DColor/SColor/Basic tentative color index
	PurposeLubyAlpha      Purpose = 2 // DMis random number alpha_v
	PurposeCandidate      Purpose = 3 // SMis candidacy coin
	PurposeAux            Purpose = 4 // miscellaneous (baselines, adversaries)
	PurposeAdversary      Purpose = 5 // adversary-owned randomness
	PurposeWorkload       Purpose = 6 // workload/generator randomness
)

// InstanceStride separates purpose spaces of concurrently running algorithm
// instances inside the combiner. Instance i uses tag p + i*InstanceStride.
const InstanceStride Purpose = 64

const (
	mixGamma  = 0x9e3779b97f4a7c15 // golden-ratio increment of SplitMix64
	mixMulA   = 0xbf58476d1ce4e5b9
	mixMulB   = 0x94d049bb133111eb
	keyNode   = 0xd6e8feb86659fd93
	keyRound  = 0xa5a5a5a5a5a5a5a5
	keyStream = 0xc2b2ae3d27d4eb4f
)

// mix64 is the SplitMix64 output permutation.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * mixMulA
	z = (z ^ (z >> 27)) * mixMulB
	return z ^ (z >> 31)
}

// Block derives the 64-bit PRF block for the given key tuple. It is the
// single primitive everything else is built on.
func Block(seed uint64, node int32, round int, purpose Purpose) uint64 {
	z := seed + mixGamma
	z = mix64(z ^ (uint64(uint32(node)) * keyNode))
	z = mix64(z ^ (uint64(round) * keyRound))
	z = mix64(z ^ uint64(purpose)*keyStream)
	return z
}

// Stream is a cheap value-type iterator over the PRF block sequence for a
// fixed (seed, node, round, purpose) tuple. The zero value is not valid;
// construct with NewStream. A Stream may be consumed by at most one
// goroutine, but distinct Streams never contend.
type Stream struct {
	seed    uint64
	node    int32
	round   int
	purpose Purpose
	ctr     uint64
}

// NewStream returns a stream positioned at the first block of the tuple.
func NewStream(seed uint64, node int32, round int, purpose Purpose) *Stream {
	return &Stream{seed: seed, node: node, round: round, purpose: purpose}
}

// Make is the value-typed variant of NewStream for hot paths: the returned
// Stream lives on the caller's stack, avoiding a heap allocation per
// (node, round) draw.
func Make(seed uint64, node int32, round int, purpose Purpose) Stream {
	return Stream{seed: seed, node: node, round: round, purpose: purpose}
}

// Derive returns a sub-stream for a different purpose sharing the stream's
// (seed, node, round) coordinates.
func (s *Stream) Derive(p Purpose) *Stream {
	return NewStream(s.seed, s.node, s.round, p)
}

// Cursor returns the stream's position: the number of blocks consumed
// so far. Together with the (seed, node, round, purpose) key — which the
// holder knows statically — it is the stream's complete state, so a
// checkpointed component can persist just the cursor and resume its
// stream bit-identically with SetCursor.
func (s *Stream) Cursor() uint64 { return s.ctr }

// SetCursor repositions the stream to an absolute block position, as
// previously observed via Cursor.
func (s *Stream) SetCursor(c uint64) { s.ctr = c }

// Uint64 returns the next 64-bit block.
func (s *Stream) Uint64() uint64 {
	v := mix64(Block(s.seed, s.node, s.round, s.purpose) + s.ctr*mixGamma)
	s.ctr++
	return v
}

// Float64 returns the next value uniform in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// The modulo bias at n « 2^64 is below 2^-40 and irrelevant here, but the
// implementation still uses rejection sampling to keep distribution tests
// exact.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("prf: Intn with non-positive n")
	}
	un := uint64(n)
	max := (^uint64(0) / un) * un // largest multiple of n below 2^64
	for {
		v := s.Uint64()
		if v < max {
			return int(v % un)
		}
	}
}

// Bool returns the next fair coin flip.
func (s *Stream) Bool() bool { return s.Uint64()&1 == 1 }

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) via Fisher-Yates.
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Exp returns an exponentially distributed value with rate lambda.
func (s *Stream) Exp(lambda float64) float64 {
	u := s.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) / lambda
}

// Pareto returns a Pareto(alpha)-distributed value with scale 1 via
// inverse-transform sampling: X = (1-U)^(-1/alpha), so X ≥ 1 and
// P[X > x] = x^(-alpha). Heavy-tailed for small alpha (infinite variance
// below 2, infinite mean below 1) — the standard model for P2P session
// lengths.
func (s *Stream) Pareto(alpha float64) float64 {
	u := s.Float64()
	// Guard against division by zero at u == 1 (Float64 is in [0,1), but
	// keep the guard symmetric with Exp's).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return math.Pow(1-u, -1/alpha)
}

// Alpha returns the canonical DMis random number for the tuple. Exposed as
// a named helper so the clairvoyant adversary (experiment E13) provably
// computes the same value the node will draw; see the remark after
// Lemma 5.2.
func Alpha(seed uint64, node int32, round int, purpose Purpose) float64 {
	return float64(AlphaWord(seed, node, round, purpose)>>11) / (1 << 53)
}

// AlphaWord returns the raw 64-bit word underlying Alpha — the exact
// value DMis compares (it breaks the astronomically rare ties by node
// id). The clairvoyant adversary uses this form so its winner prediction
// is bit-exact.
func AlphaWord(seed uint64, node int32, round int, purpose Purpose) uint64 {
	return mix64(Block(seed, node, round, purpose) + 0) // ctr == 0
}
