package experiments

import (
	"runtime"
	"time"

	"dynlocal/internal/adversary"
	"dynlocal/internal/algos/mis"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
)

// ScalingResult is one cell of E15: engine throughput.
type ScalingResult struct {
	N             int
	Workers       int
	Rounds        int
	Seconds       float64
	RoundsPerSec  float64
	NodeRoundsSec float64
}

// E15EngineScaling measures rounds/second of the combined MIS algorithm
// for an n sweep at 1 worker and at GOMAXPROCS workers.
func E15EngineScaling(p Params) []ScalingResult {
	seed := p.seed()
	ns := []int{1024, 4096, 16384}
	rounds := 40
	if p.Quick {
		ns = []int{1024, 4096}
		rounds = 15
	}
	var out []ScalingResult
	for _, n := range ns {
		base := graph.GNP(n, 8.0/float64(n), workloadStream(seed+uint64(n)))
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			adv := &adversary.Churn{Base: base, Add: n / 64, Del: n / 64, Seed: seed + 1}
			e := engine.New(engine.Config{N: n, Seed: seed + 2, Workers: workers}, adv, mis.NewMIS(n))
			startT := time.Now()
			e.Run(rounds)
			dur := time.Since(startT).Seconds()
			res := ScalingResult{N: n, Workers: workers, Rounds: rounds, Seconds: dur}
			if dur > 0 {
				res.RoundsPerSec = float64(rounds) / dur
				res.NodeRoundsSec = float64(rounds) * float64(n) / dur
			}
			out = append(out, res)
		}
	}
	return out
}
