package experiments

import (
	"dynlocal/internal/adversary"
	"dynlocal/internal/algos/coloring"
	"dynlocal/internal/algos/mis"
	"dynlocal/internal/baseline"
	"dynlocal/internal/core"
	"dynlocal/internal/dyngraph"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
	"dynlocal/internal/stats"
	"dynlocal/internal/verify"
)

// DecayResult is the outcome of E5 (Lemma 5.2): the measured 2-round
// decay factor of the undecided-undecided edge count under oblivious
// adversaries, against the 2/3 bound.
type DecayResult struct {
	Adversary AdversaryKind
	N         int
	Samples   int
	MeanDecay float64
	P90Decay  float64
	Bound     float64
}

// E05MISEdgeDecay measures E[|E(H_{r+2})|]/|E(H_r)| for DMis.
func E05MISEdgeDecay(p Params) []DecayResult {
	n := 1024
	if p.Quick {
		n = 512
	}
	seed := p.seed()
	var out []DecayResult
	for _, kind := range []AdversaryKind{AdvStatic, AdvChurn, AdvMarkov} {
		var ratios []float64
		for trial := 0; trial < p.trials(); trial++ {
			tseed := seed + uint64(trial)*911
			base := graph.GNP(n, 16.0/float64(n), workloadStream(tseed))
			adv := makeAdversary(kind, base, tseed+1)
			e := engine.New(engine.Config{N: n, Seed: tseed + 2}, adv, mis.NewDynamic(n))
			// H lives on DMis's communication graph: the intersection of
			// all graphs since start. Lemma 5.2 bounds E[H_{r+2}] against
			// H_r for every r, so overlapping 2-round pairs are valid
			// samples; pairs with small H_r are skipped (the ratio is
			// meaningless near exhaustion).
			var inter *graph.Graph
			var hs []int
			e.OnRound(func(info *engine.RoundInfo) {
				if inter == nil {
					// Clone: the round-1 graph is pooled and inter is
					// read on every later round.
					inter = info.Graph().Clone()
				} else {
					inter = graph.Intersection(inter, info.Graph())
				}
				hs = append(hs, undecidedEdgeCount(inter, info.Outputs))
			})
			e.Run(24)
			for r := 0; r+2 < len(hs); r++ {
				if hs[r] >= 30 {
					ratios = append(ratios, float64(hs[r+2])/float64(hs[r]))
				}
			}
		}
		s := stats.Summarize(ratios)
		out = append(out, DecayResult{
			Adversary: kind, N: n, Samples: s.Count,
			MeanDecay: s.Mean, P90Decay: s.P90, Bound: mis.ExpectedDecayBound,
		})
	}
	return out
}

func undecidedEdgeCount(g *graph.Graph, out []problems.Value) int {
	count := 0
	g.EachEdge(func(u, v graph.NodeID) {
		if out[u] == problems.Bot && out[v] == problems.Bot {
			count++
		}
	})
	return count
}

// StaticBallResult is the outcome of E7 (Lemma 5.6): rounds until a node
// with a static 2-neighborhood is decided by SMis, under churn elsewhere,
// for a sweep of n.
type StaticBallResult struct {
	N              int
	DecideRounds   stats.Summary // per protected node
	ChangesAfter   int           // output changes after decision (must be 0)
	UndecidedAtEnd int           // protected nodes never decided (should be 0)
}

// E07SMisStaticBall measures SMis's locally-static behavior.
func E07SMisStaticBall(p Params) []StaticBallResult {
	seed := p.seed()
	var out []StaticBallResult
	for _, n := range p.nSweep() {
		var decideRounds []float64
		changesAfter := 0
		undecided := 0
		for trial := 0; trial < p.trials(); trial++ {
			tseed := seed + uint64(trial)*313 + uint64(n)
			base := graph.GNP(n, 6.0/float64(n), workloadStream(tseed))
			protected := []graph.NodeID{graph.NodeID(n / 5), graph.NodeID(n / 2), graph.NodeID(4 * n / 5)}
			adv := &adversary.LocalStatic{
				Inner:     &adversary.Churn{Base: base, Add: n / 24, Del: n / 24, Seed: tseed + 1},
				Base:      base,
				Protected: protected,
				Alpha:     2,
			}
			e := engine.New(engine.Config{N: n, Seed: tseed + 2}, adv, mis.NewNetworkStatic(n))
			decidedAt := make(map[graph.NodeID]int)
			prevOut := make([]problems.Value, len(protected))
			changed := make([]bool, len(protected))
			e.OnRound(func(info *engine.RoundInfo) {
				for i, v := range protected {
					if _, done := decidedAt[v]; !done && info.Outputs[v] != problems.Bot {
						decidedAt[v] = info.Round
					}
					// Lemma 5.6: the output must never change while the
					// 2-ball stays static (it is frozen for the whole run).
					if prevOut[i] != problems.Bot && info.Outputs[v] != prevOut[i] {
						changed[i] = true
					}
					prevOut[i] = info.Outputs[v]
				}
			})
			e.Run(4 * mis.DefaultMISWindow(n))
			for i, v := range protected {
				if r, done := decidedAt[v]; done {
					decideRounds = append(decideRounds, float64(r))
				} else {
					undecided++
				}
				if changed[i] {
					changesAfter++
				}
			}
		}
		out = append(out, StaticBallResult{
			N: n, DecideRounds: stats.Summarize(decideRounds),
			ChangesAfter: changesAfter, UndecidedAtEnd: undecided,
		})
	}
	return out
}

// EndToEndResult is one cell of E8 (Theorem 1.1 / Corollaries 1.2+1.3).
type EndToEndResult struct {
	Problem       string
	Adversary     AdversaryKind
	N             int
	Window        int
	Rounds        int
	InvalidRounds int // must be 0
	Violations    int
}

// E08ConcatEndToEnd verifies the combined algorithms produce T-dynamic
// solutions in every round across the adversary suite.
func E08ConcatEndToEnd(p Params) []EndToEndResult {
	n := p.size(256, 128)
	seed := p.seed()
	var out []EndToEndResult
	kinds := []AdversaryKind{AdvStatic, AdvChurn, AdvMarkov, AdvFlip}
	for _, prob := range []string{"coloring", "mis"} {
		for _, kind := range kinds {
			base := graph.GNP(n, 6.0/float64(n), workloadStream(seed+uint64(len(out))))
			var combined *core.Concat
			var pc problems.PC
			if prob == "coloring" {
				combined = coloring.NewColoring(n)
				pc = problems.Coloring()
			} else {
				combined = mis.NewMIS(n)
				pc = problems.MIS()
			}
			adv := makeAdversary(kind, base, seed+77+uint64(len(out)))
			e := engine.New(engine.Config{N: n, Seed: seed + 99}, adv, combined)
			chk := verify.NewTDynamic(pc, combined.T1, n)
			res := EndToEndResult{Problem: prob, Adversary: kind, N: n, Window: combined.T1}
			e.OnRound(func(info *engine.RoundInfo) {
				rep := chk.Feed(info.Delta())
				if !rep.Valid() {
					res.InvalidRounds++
					res.Violations += len(rep.PackingViolations) + len(rep.CoverViolations) + rep.BotCore
				}
			})
			res.Rounds = 3 * combined.T1
			e.Run(res.Rounds)
			out = append(out, res)
		}
	}
	return out
}

// BaselineResult is one cell of E9: validity and stability of the
// combined algorithm vs the recovery baseline vs the restart strawman,
// under a churn-rate sweep.
type BaselineResult struct {
	Algorithm     string
	ChurnPerRound int
	InvalidFrac   float64 // fraction of (post-warmup) rounds violating T-dynamic MIS
	OutputChurn   float64 // output changes per node per round after warm-up
}

// E09Baselines sweeps churn intensity for the three MIS maintainers.
func E09Baselines(p Params) []BaselineResult {
	n := 256
	if p.Quick {
		n = 128
	}
	seed := p.seed()
	churns := []int{0, 2, 4, 8, 16, 32}
	if p.Quick {
		churns = []int{0, 4, 16}
	}
	var out []BaselineResult
	window := mis.DefaultMISWindow(n)
	rounds := 3 * window

	type algoCase struct {
		name string
		mk   func() engine.Algorithm
	}
	cases := []algoCase{
		{"combined", func() engine.Algorithm { return mis.NewMIS(n) }},
		{"greedy-repair", func() engine.Algorithm { return baseline.GreedyRepairMIS{N: n} }},
		{"restart", func() engine.Algorithm { return baseline.NewRestartMIS(n, &mis.DMisFactory{N: n}) }},
	}
	for _, c := range churns {
		for _, ac := range cases {
			base := graph.GNP(n, 6.0/float64(n), workloadStream(seed+uint64(c)))
			var adv adversary.Adversary
			if c == 0 {
				adv = adversary.Static{G: base}
			} else {
				adv = &adversary.Churn{Base: base, Add: c, Del: c, Seed: seed + uint64(c) + 1}
			}
			e := engine.New(engine.Config{N: n, Seed: seed + 7}, adv, ac.mk())
			chk := verify.NewTDynamic(problems.MIS(), window, n)
			warmup := 2 * window
			invalid, counted := 0, 0
			changes := 0
			e.OnRound(func(info *engine.RoundInfo) {
				rep := chk.Feed(info.Delta())
				if info.Round > warmup {
					counted++
					if !rep.Valid() {
						invalid++
					}
					// The engine's round-delta feed is exactly the
					// round-over-round output diff.
					changes += len(info.Changed)
				}
			})
			e.Run(rounds)
			res := BaselineResult{Algorithm: ac.name, ChurnPerRound: c}
			if counted > 0 {
				res.InvalidFrac = float64(invalid) / float64(counted)
				res.OutputChurn = float64(changes) / float64(counted) / float64(n)
			}
			out = append(out, res)
		}
	}
	return out
}

// WindowSweepResult is one cell of E10: the effect of the window size T
// on validity (too small: the dynamic algorithm cannot finish; large
// enough: zero violations; larger: weaker guarantee but still valid).
type WindowSweepResult struct {
	Window        int
	DefaultWindow int
	InvalidFrac   float64
	BotCoreRounds int
}

// stormAdversary realizes the paper's window lower-bound argument
// (Section 1.1): it plays the empty graph for `clear` rounds — flushing
// every sliding window — and then a fixed graph for `hold` rounds. At the
// T-th round after a storm the window contains only the new graph, so a
// valid T-dynamic solution must be a from-scratch solution of the static
// problem computed in T rounds; any T below the static solving time must
// produce invalid rounds.
type stormAdversary struct {
	g     *graph.Graph
	clear int
	hold  int
}

func (s stormAdversary) Step(v adversary.View) adversary.Step {
	st := adversary.Step{}
	if v.Round() == 1 {
		st.Wake = adversary.AllNodes(s.g.N())
	}
	phase := (v.Round() - 1) % (s.clear + s.hold)
	if phase < s.clear {
		st.G = graph.Empty(s.g.N())
	} else {
		st.G = s.g
	}
	return st
}

// E10WindowSweep runs the combined coloring at several window sizes
// against the storm adversary.
func E10WindowSweep(p Params) []WindowSweepResult {
	n := 256
	if p.Quick {
		n = 128
	}
	seed := p.seed()
	def := coloring.DefaultColoringWindow(n)
	windows := []int{2, 4, def / 2, def, 2 * def}
	var out []WindowSweepResult
	for _, T := range windows {
		if T < 2 {
			T = 2
		}
		base := graph.GNP(n, 6.0/float64(n), workloadStream(seed+uint64(T)))
		d := &coloring.DColorFactory{N: n, Window: T}
		s := &coloring.SColorFactory{N: n}
		combined := core.NewConcat(d, s, n)
		adv := stormAdversary{g: base, clear: def, hold: 3 * def}
		e := engine.New(engine.Config{N: n, Seed: seed + 11}, adv, combined)
		chk := verify.NewTDynamic(problems.Coloring(), T, n)
		invalid, counted, botRounds := 0, 0, 0
		warmup := 2 * def
		e.OnRound(func(info *engine.RoundInfo) {
			rep := chk.Feed(info.Delta())
			if info.Round > warmup {
				counted++
				if !rep.Valid() {
					invalid++
				}
				if rep.BotCore > 0 {
					botRounds++
				}
			}
		})
		e.Run(warmup + 4*(def+3*def))
		res := WindowSweepResult{Window: T, DefaultWindow: def, BotCoreRounds: botRounds}
		if counted > 0 {
			res.InvalidFrac = float64(invalid) / float64(counted)
		}
		out = append(out, res)
	}
	return out
}

// DeltaWindowResult is one cell of E11 (Section 7.2 future work): the
// δ-fraction window interpolating between union and intersection.
type DeltaWindowResult struct {
	Delta     float64
	MeanEdges float64 // edges of G^{δ,T} averaged over rounds
	Conflicts int     // equal-color pairs across G^{δ,T} edges (coloring)
}

// E11DeltaWindows measures edge counts and conflicts of δ-windows under
// an edge-Markov adversary with the combined coloring output.
func E11DeltaWindows(p Params) []DeltaWindowResult {
	n := 256
	if p.Quick {
		n = 128
	}
	seed := p.seed()
	base := graph.GNP(n, 8.0/float64(n), workloadStream(seed))
	combined := coloring.NewColoring(n)
	T := combined.T1
	if T > 64 {
		T = 64
	}
	deltas := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
	adv := &adversary.EdgeMarkov{Footprint: base, POn: 0.1, POff: 0.1, Seed: seed + 1}
	e := engine.New(engine.Config{N: n, Seed: seed + 2}, adv, combined)
	fw := dyngraph.NewFracWindow(T, n)
	edgeSums := make([]float64, len(deltas))
	conflicts := make([]int, len(deltas))
	rounds := 0
	warmup := 2 * combined.T1
	e.OnRound(func(info *engine.RoundInfo) {
		fw.Observe(info.Graph(), info.Wake)
		if info.Round <= warmup {
			return
		}
		rounds++
		for i, d := range deltas {
			g := fw.Graph(d)
			edgeSums[i] += float64(g.M())
			g.EachEdge(func(u, v graph.NodeID) {
				if info.Outputs[u] != problems.Bot && info.Outputs[u] == info.Outputs[v] {
					conflicts[i]++
				}
			})
		}
	})
	e.Run(warmup + 40)
	var out []DeltaWindowResult
	for i, d := range deltas {
		res := DeltaWindowResult{Delta: d, Conflicts: conflicts[i]}
		if rounds > 0 {
			res.MeanEdges = edgeSums[i] / float64(rounds)
		}
		out = append(out, res)
	}
	return out
}

// MessageBitsResult is one cell of E12: measured message sizes per
// algorithm against the poly log n remark of Section 2.
type MessageBitsResult struct {
	Algorithm  string
	N          int
	BitsPerMsg float64
	Log2N      float64
}

// E12MessageBits measures mean encoded bits per message over an n sweep.
func E12MessageBits(p Params) []MessageBitsResult {
	seed := p.seed()
	var out []MessageBitsResult
	for _, n := range p.nSweep() {
		base := graph.GNP(n, 8.0/float64(n), workloadStream(seed+uint64(n)))
		logBits := 2*ceilLog2n(n) + 4
		for _, algoCase := range []struct {
			name string
			mk   engine.Algorithm
		}{
			{"coloring", coloring.NewColoring(n)},
			{"mis", mis.NewMIS(n)},
			// The explicit poly log n regime of the Section 2 remark:
			// DMis random words truncated to 2⌈log₂n⌉+4 bits.
			{"mis-logbits", core.NewConcat(
				&mis.DMisFactory{N: n, AlphaBits: logBits},
				&mis.SMisFactory{N: n}, n)},
		} {
			adv := &adversary.Churn{Base: base, Add: n / 32, Del: n / 32, Seed: seed + 5}
			e := engine.New(engine.Config{N: n, Seed: seed + 6}, adv, algoCase.mk)
			var bits, msgs int64
			e.OnRound(func(info *engine.RoundInfo) {
				bits += info.Bits
				msgs += int64(info.Messages)
			})
			e.Run(20)
			res := MessageBitsResult{Algorithm: algoCase.name, N: n, Log2N: log2(n)}
			if msgs > 0 {
				res.BitsPerMsg = float64(bits) / float64(msgs)
			}
			out = append(out, res)
		}
	}
	return out
}

func log2(n int) float64 {
	l := 0.0
	for x := 1; x < n; x *= 2 {
		l++
	}
	return l
}

func ceilLog2n(n int) int { return int(log2(n + 1)) }

// ClairvoyantResult is the outcome of E13 (remark after Lemma 5.2).
type ClairvoyantResult struct {
	N                    int
	ObliviousDominated   int // dominated nodes under the oblivious adversary
	ObliviousMISSize     int
	ObliviousRounds      int
	ClairvoyantDominated int // must be 0: every mark edge burned
	ClairvoyantMISSize   int // degenerates to n
	ClairvoyantRounds    int
	EdgesBurned          int
	BaseViolations       int // independence violations of the degenerate M w.r.t. the footprint
}

// E13Clairvoyant compares DMis under a 2-oblivious static adversary and
// under the seed-reading adaptive-offline adversary.
func E13Clairvoyant(p Params) ClairvoyantResult {
	n := 256
	if p.Quick {
		n = 128
	}
	seed := p.seed()
	g := graph.GNP(n, 10.0/float64(n), workloadStream(seed))
	res := ClairvoyantResult{N: n}

	e1 := engine.New(engine.Config{N: n, Seed: seed + 1}, adversary.Static{G: g}, mis.NewLuby(n))
	res.ObliviousRounds, _ = e1.RunUntil(1000, func(info *engine.RoundInfo) bool {
		return allDecided(info.Outputs)
	})
	for _, out := range e1.Outputs() {
		switch out {
		case problems.Dominated:
			res.ObliviousDominated++
		case problems.InMIS:
			res.ObliviousMISSize++
		}
	}

	staller := &adversary.LubyStaller{Base: g, Seed: seed + 1, Purpose: prf.PurposeLubyAlpha}
	e2 := engine.New(engine.Config{N: n, Seed: seed + 1, OutputLag: 1}, staller, mis.NewDynamic(n))
	res.ClairvoyantRounds, _ = e2.RunUntil(1000, func(info *engine.RoundInfo) bool {
		return allDecided(info.Outputs)
	})
	for _, out := range e2.Outputs() {
		switch out {
		case problems.Dominated:
			res.ClairvoyantDominated++
		case problems.InMIS:
			res.ClairvoyantMISSize++
		}
	}
	res.EdgesBurned = staller.Deleted
	res.BaseViolations = len((problems.IndependentSet{}).CheckFull(g, e2.Outputs(), adversary.AllNodes(n)))
	return res
}

// AsyncWakeupResult is one cell of E14.
type AsyncWakeupResult struct {
	Schedule      string
	N             int
	Rounds        int
	InvalidRounds int // must be 0
	FinalCore     int
}

// E14AsyncWakeup verifies the guarantees under staggered and random
// wake-up schedules for both problems.
func E14AsyncWakeup(p Params) []AsyncWakeupResult {
	n := 256
	if p.Quick {
		n = 128
	}
	seed := p.seed()
	var out []AsyncWakeupResult
	schedules := []struct {
		name  string
		sched []int
	}{
		{"staggered-8", adversary.StaggeredSchedule(n, 8)},
		{"uniform-40", adversary.UniformRandomSchedule(n, 40, seed+9)},
	}
	for _, sc := range schedules {
		for _, prob := range []string{"coloring", "mis"} {
			base := graph.GNP(n, 6.0/float64(n), workloadStream(seed+3))
			var combined *core.Concat
			var pc problems.PC
			if prob == "coloring" {
				combined = coloring.NewColoring(n)
				pc = problems.Coloring()
			} else {
				combined = mis.NewMIS(n)
				pc = problems.MIS()
			}
			adv := &adversary.Wakeup{
				Inner:    &adversary.Churn{Base: base, Add: 4, Del: 4, Seed: seed + 4},
				Schedule: sc.sched,
			}
			e := engine.New(engine.Config{N: n, Seed: seed + 5}, adv, combined)
			chk := verify.NewTDynamic(pc, combined.T1, n)
			res := AsyncWakeupResult{Schedule: sc.name + "/" + prob, N: n}
			var lastCore int
			e.OnRound(func(info *engine.RoundInfo) {
				rep := chk.Feed(info.Delta())
				if !rep.Valid() {
					res.InvalidRounds++
				}
				lastCore = rep.CoreNodes
			})
			res.Rounds = n/8 + 3*combined.T1
			e.Run(res.Rounds)
			res.FinalCore = lastCore
			out = append(out, res)
		}
	}
	return out
}
