package experiments

import (
	"testing"
)

// The experiment suite doubles as the paper's evaluation; these tests run
// every experiment in Quick mode and assert the paper-predicted shapes,
// so `go test` certifies the whole reproduction end to end.

func quick() Params { return Params{Quick: true, Seed: 12345} }

func TestE01DColorConvergenceShape(t *testing.T) {
	res := E01DColorConvergence(quick())
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range res.Points {
		if pt.Rounds.Max >= float64(4*pt.Window) {
			t.Fatalf("n=%d %s: convergence censored at %v (window %d)",
				pt.N, pt.Adversary, pt.Rounds.Max, pt.Window)
		}
		if pt.Rounds.Mean >= float64(pt.Window) {
			t.Fatalf("n=%d %s: mean rounds %v exceeds window %d",
				pt.N, pt.Adversary, pt.Rounds.Mean, pt.Window)
		}
	}
	// O(log n) shape: the log fit should describe the static series well
	// and the slope should be a small constant.
	if res.Fit.R2 < 0.5 {
		t.Fatalf("log fit R² = %v — convergence not log-shaped", res.Fit.R2)
	}
	if res.Fit.Slope > 6 {
		t.Fatalf("log fit slope %v too steep for O(log n)", res.Fit.Slope)
	}
}

func TestE02ConflictResolution(t *testing.T) {
	res := E02ConflictResolution(quick())
	if res.Injected == 0 {
		t.Fatal("no conflicts injected — experiment ineffective")
	}
	if res.StaleConflictRound != 0 {
		t.Fatalf("%d conflicts on intersection edges (must be 0)", res.StaleConflictRound)
	}
	if res.Unresolved != 0 {
		t.Fatalf("%d conflicts unresolved after T rounds", res.Unresolved)
	}
	if res.ResolutionRounds.Count > 0 && res.ResolutionRounds.Max > float64(res.Window) {
		t.Fatalf("max resolution %v exceeds window %d", res.ResolutionRounds.Max, res.Window)
	}
}

func TestE03LocalStability(t *testing.T) {
	for _, res := range E03LocalStability(quick()) {
		if res.ProtectedChanges != 0 {
			t.Fatalf("%s: %d protected-node changes after stabilization", res.Problem, res.ProtectedChanges)
		}
		if res.ProtectedBot != 0 {
			t.Fatalf("%s: %d protected nodes still ⊥", res.Problem, res.ProtectedBot)
		}
		if res.UnprotectedChanges == 0 {
			t.Fatalf("%s: churn did not move unprotected nodes — freeze too broad", res.Problem)
		}
	}
}

func TestE04ColoringProgress(t *testing.T) {
	for _, res := range E04ColoringProgress(quick()) {
		if res.SlowRounds == 0 {
			t.Fatalf("%s: no slow rounds observed", res.Algorithm)
		}
		if res.EmpiricalProb < res.Bound {
			t.Fatalf("%s: progress probability %.4f below Lemma 4.3 bound %.4f",
				res.Algorithm, res.EmpiricalProb, res.Bound)
		}
	}
}

func TestE05MISEdgeDecay(t *testing.T) {
	for _, res := range E05MISEdgeDecay(quick()) {
		if res.Samples < 4 {
			t.Fatalf("%s: too few decay samples (%d)", res.Adversary, res.Samples)
		}
		if res.MeanDecay > res.Bound {
			t.Fatalf("%s: mean decay %.3f above Lemma 5.2 bound %.3f",
				res.Adversary, res.MeanDecay, res.Bound)
		}
	}
}

func TestE06DMisConvergenceShape(t *testing.T) {
	res := E06DMisConvergence(quick())
	for _, pt := range res.Points {
		if pt.Rounds.Mean >= float64(pt.Window) {
			t.Fatalf("n=%d %s: mean rounds %v exceeds window %d",
				pt.N, pt.Adversary, pt.Rounds.Mean, pt.Window)
		}
	}
	// Luby's round count concentrates so hard that over the narrow quick
	// sweep the regression is mostly noise; assert the slope bound (the
	// growth per doubling of n must be a small constant — consistent with
	// O(log n), wildly inconsistent with any polynomial) and leave the
	// R² shape check to the full sweep in cmd/experiments.
	if res.Fit.Slope > 8 {
		t.Fatalf("log fit slope %v too steep for O(log n)", res.Fit.Slope)
	}
}

func TestE07SMisStaticBall(t *testing.T) {
	for _, res := range E07SMisStaticBall(quick()) {
		if res.UndecidedAtEnd != 0 {
			t.Fatalf("n=%d: %d protected nodes never decided", res.N, res.UndecidedAtEnd)
		}
		if res.ChangesAfter != 0 {
			t.Fatalf("n=%d: %d output changes in static 2-balls", res.N, res.ChangesAfter)
		}
	}
}

func TestE08ConcatEndToEnd(t *testing.T) {
	for _, res := range E08ConcatEndToEnd(quick()) {
		if res.InvalidRounds != 0 {
			t.Fatalf("%s/%s: %d invalid rounds (%d violations)",
				res.Problem, res.Adversary, res.InvalidRounds, res.Violations)
		}
	}
}

func TestE09BaselinesShape(t *testing.T) {
	results := E09Baselines(quick())
	byAlgo := map[string]map[int]BaselineResult{}
	for _, r := range results {
		if byAlgo[r.Algorithm] == nil {
			byAlgo[r.Algorithm] = map[int]BaselineResult{}
		}
		byAlgo[r.Algorithm][r.ChurnPerRound] = r
	}
	// Combined: always valid.
	for c, r := range byAlgo["combined"] {
		if r.InvalidFrac != 0 {
			t.Fatalf("combined invalid at churn %d: %v", c, r.InvalidFrac)
		}
	}
	// Greedy repair: valid when static, violating under high churn.
	if byAlgo["greedy-repair"][0].InvalidFrac > 0.05 {
		t.Fatalf("greedy-repair invalid on static graph: %v", byAlgo["greedy-repair"][0].InvalidFrac)
	}
	maxChurn := 0
	for c := range byAlgo["greedy-repair"] {
		if c > maxChurn {
			maxChurn = c
		}
	}
	if byAlgo["greedy-repair"][maxChurn].InvalidFrac == 0 {
		t.Fatal("greedy-repair never violated under max churn — E9 premise broken")
	}
	// Restart: valid but churning outputs on a static graph.
	if byAlgo["restart"][0].InvalidFrac != 0 {
		t.Fatalf("restart invalid: %v", byAlgo["restart"][0].InvalidFrac)
	}
	if byAlgo["restart"][0].OutputChurn <= byAlgo["combined"][0].OutputChurn {
		t.Fatalf("restart churn %v not above combined churn %v on static graph",
			byAlgo["restart"][0].OutputChurn, byAlgo["combined"][0].OutputChurn)
	}
}

func TestE10WindowSweepShape(t *testing.T) {
	results := E10WindowSweep(quick())
	var tooSmallInvalid, defaultInvalid, doubleInvalid float64
	for _, r := range results {
		if r.Window == 2 {
			tooSmallInvalid = r.InvalidFrac
		}
		if r.Window == r.DefaultWindow {
			defaultInvalid = r.InvalidFrac
		}
		if r.Window == 2*r.DefaultWindow {
			doubleInvalid = r.InvalidFrac
		}
	}
	if tooSmallInvalid == 0 {
		t.Fatal("T=2 produced no violations under storms — window lower bound not visible")
	}
	if defaultInvalid != 0 {
		t.Fatalf("default window invalid fraction %v", defaultInvalid)
	}
	if doubleInvalid != 0 {
		t.Fatalf("double window invalid fraction %v (larger T must stay valid)", doubleInvalid)
	}
}

func TestE11DeltaWindowsMonotone(t *testing.T) {
	results := E11DeltaWindows(quick())
	for i := 1; i < len(results); i++ {
		if results[i].MeanEdges > results[i-1].MeanEdges+1e-9 {
			t.Fatalf("edge count not monotone in δ: %v -> %v",
				results[i-1].MeanEdges, results[i].MeanEdges)
		}
	}
	last := results[len(results)-1]
	if last.Delta != 1.0 {
		t.Fatal("last delta should be 1.0")
	}
	if last.Conflicts != 0 {
		t.Fatalf("δ=1 (intersection) has %d conflicts — packing guarantee broken", last.Conflicts)
	}
}

func TestE12MessageBitsPolylog(t *testing.T) {
	for _, res := range E12MessageBits(quick()) {
		if res.BitsPerMsg <= 0 {
			t.Fatalf("%s n=%d: no bits accounted", res.Algorithm, res.N)
		}
		// Coloring messages are Θ(log n); MIS alpha messages are a
		// 64-bit constant plus kind. Everything must stay well below
		// log²n + 70 (a generous poly log envelope).
		if res.BitsPerMsg > res.Log2N*res.Log2N+70 {
			t.Fatalf("%s n=%d: %.1f bits/msg outside poly log envelope",
				res.Algorithm, res.N, res.BitsPerMsg)
		}
	}
}

func TestE13Clairvoyant(t *testing.T) {
	res := E13Clairvoyant(quick())
	if res.ObliviousDominated == 0 {
		t.Fatal("oblivious run dominated nobody")
	}
	if res.ClairvoyantDominated != 0 {
		t.Fatalf("clairvoyant run dominated %d nodes (want 0)", res.ClairvoyantDominated)
	}
	if res.ClairvoyantMISSize != res.N {
		t.Fatalf("clairvoyant M size %d, want degenerate %d", res.ClairvoyantMISSize, res.N)
	}
	if res.ObliviousMISSize >= res.N/2 {
		t.Fatalf("oblivious MIS size %d suspiciously large", res.ObliviousMISSize)
	}
	if res.EdgesBurned == 0 || res.BaseViolations == 0 {
		t.Fatal("adversary did not visibly attack")
	}
}

func TestE14AsyncWakeup(t *testing.T) {
	for _, res := range E14AsyncWakeup(quick()) {
		if res.InvalidRounds != 0 {
			t.Fatalf("%s: %d invalid rounds", res.Schedule, res.InvalidRounds)
		}
		if res.FinalCore != res.N {
			t.Fatalf("%s: final core %d, want %d", res.Schedule, res.FinalCore, res.N)
		}
	}
}

func TestE15EngineScalingRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiment in -short mode")
	}
	for _, res := range E15EngineScaling(Params{Quick: true, Seed: 1}) {
		if res.RoundsPerSec <= 0 {
			t.Fatalf("n=%d workers=%d: no throughput measured", res.N, res.Workers)
		}
	}
}
