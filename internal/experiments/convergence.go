package experiments

import (
	"sync/atomic"

	"dynlocal/internal/adversary"
	"dynlocal/internal/algos/coloring"
	"dynlocal/internal/algos/mis"
	"dynlocal/internal/core"
	"dynlocal/internal/dyngraph"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/stats"
	"dynlocal/internal/verify"
)

// E01DColorConvergence reproduces Lemma 4.4 / Corollary 1.2's T = O(log n):
// rounds until DColor colors every node, for a sweep of n and adversaries,
// with a log₂ n fit of the static series.
func E01DColorConvergence(p Params) ConvergenceResult {
	return runConvergence(p, "dcolor",
		func(n int) engine.Algorithm { return coloring.NewDynamic(n) },
		coloring.DefaultColoringWindow,
		[]AdversaryKind{AdvStatic, AdvChurn, AdvMarkov})
}

// E06DMisConvergence reproduces Lemma 5.4 / Corollary 1.3's T = O(log n)
// for DMis.
func E06DMisConvergence(p Params) ConvergenceResult {
	return runConvergence(p, "dmis",
		func(n int) engine.Algorithm { return mis.NewDynamic(n) },
		mis.DefaultMISWindow,
		[]AdversaryKind{AdvStatic, AdvChurn, AdvMarkov})
}

// ConflictResolutionResult is the outcome of E2 (Corollary 1.2's
// guarantee: conflicts caused by newly inserted edges are resolved within
// T rounds, and never exist against intersection-graph neighbors).
type ConflictResolutionResult struct {
	N                  int
	Window             int
	Injected           int
	ResolutionRounds   stats.Summary // rounds from injection to distinct colors
	Unresolved         int           // conflicts still live at horizon (should be 0)
	StaleConflictRound int           // rounds with conflicts on G^∩T edges (must be 0)
}

// E02ConflictResolution injects edges between equal-colored nodes and
// measures how long the conflicts live.
func E02ConflictResolution(p Params) ConflictResolutionResult {
	n := 512
	if p.Quick {
		n = 256
	}
	seed := p.seed()
	base := graph.GNP(n, 8.0/float64(n), workloadStream(seed))
	combined := coloring.NewColoring(n)
	inj := &adversary.ConflictInjector{
		Inner:    adversary.Static{G: base},
		Rate:     2,
		MinRound: 2 * combined.T1, // let the pipeline warm up first
		Seed:     seed + 1,
	}
	e := engine.New(engine.Config{N: n, Seed: seed + 2}, inj, combined)
	res := ConflictResolutionResult{N: n, Window: combined.T1}

	resolved := make(map[graph.EdgeKey]int) // edge -> resolution round
	window := dyngraph.NewWindow(combined.T1, n)
	var durations []float64
	e.OnRound(func(info *engine.RoundInfo) {
		window.Observe(info.Graph(), info.Wake)
		// Track resolution of injected conflicts.
		for _, in := range inj.Injections {
			if _, done := resolved[in.Edge]; done {
				continue
			}
			u, v := in.Edge.Nodes()
			if info.Outputs[u] != info.Outputs[v] {
				resolved[in.Edge] = info.Round
				durations = append(durations, float64(info.Round-in.Round))
			}
		}
		// Stale conflicts: equal colors across an intersection edge.
		for _, ck := range verify.ConflictEdges(info.Graph(), info.Outputs) {
			u, v := ck.Nodes()
			if window.InIntersection(u, v) {
				res.StaleConflictRound++
			}
		}
	})
	e.Run(6 * combined.T1)
	res.Injected = len(inj.Injections)
	res.ResolutionRounds = stats.Summarize(durations)
	for _, in := range inj.Injections {
		if _, done := resolved[in.Edge]; !done && in.Round+combined.T1 < e.Round() {
			res.Unresolved++
		}
	}
	return res
}

// StabilityResult is the outcome of E3 (Theorem 1.1(2) / Corollaries'
// locally-static guarantee).
type StabilityResult struct {
	Problem            string
	N                  int
	Wait               int // T1+T2
	ProtectedNodes     int
	ProtectedChanges   int // output changes of protected nodes after Wait (must be 0)
	ProtectedBot       int // protected nodes still ⊥ at the end (must be 0)
	UnprotectedChanges int // contrast: churn does move the rest
}

// E03LocalStability freezes the α-ball of selected nodes under global
// churn and verifies their outputs pin down within T1+T2 rounds.
func E03LocalStability(p Params) []StabilityResult {
	n := 384
	if p.Quick {
		n = 192
	}
	seed := p.seed()
	var out []StabilityResult

	run := func(label string, combined *core.Concat) {
		base := graph.GNP(n, 6.0/float64(n), workloadStream(seed))
		protected := []graph.NodeID{graph.NodeID(n / 7), graph.NodeID(n / 2), graph.NodeID(n - 3)}
		adv := &adversary.LocalStatic{
			Inner:     &adversary.Churn{Base: base, Add: n / 24, Del: n / 24, Seed: seed + 1},
			Base:      base,
			Protected: protected,
			Alpha:     combined.Alpha(),
		}
		e := engine.New(engine.Config{N: n, Seed: seed + 2}, adv, combined)
		wait := combined.StabilityWait()
		res := StabilityResult{Problem: label, N: n, Wait: wait, ProtectedNodes: len(protected)}
		isProtected := make([]bool, n)
		for _, v := range protected {
			isProtected[v] = true
		}
		prev := make([]int64, n)
		e.OnRound(func(info *engine.RoundInfo) {
			for v := 0; v < n; v++ {
				cur := int64(info.Outputs[v])
				if info.Round > wait && cur != prev[v] {
					if isProtected[v] {
						res.ProtectedChanges++
					} else {
						res.UnprotectedChanges++
					}
				}
				prev[v] = cur
			}
		})
		e.Run(wait + 60)
		for _, v := range protected {
			if prev[v] == 0 {
				res.ProtectedBot++
			}
		}
		out = append(out, res)
	}

	run("coloring", coloring.NewColoring(n))
	run("mis", mis.NewMIS(n))
	return out
}

// ProgressResult is the outcome of E4 (Lemma 4.3 / 6.1): the empirical
// per-round coloring probability in rounds where the palette did not
// shrink by 1/4, against the 1/64 bound.
type ProgressResult struct {
	Algorithm     string
	SlowRounds    int     // node-rounds without a 1/4 palette shrink
	SlowColored   int     // of those, node got colored
	EmpiricalProb float64 // SlowColored / SlowRounds
	Bound         float64 // 1/64
}

// E04ColoringProgress instruments Basic (static graph) and DColor (churn)
// and measures the Lemma 4.3 progress guarantee.
func E04ColoringProgress(p Params) []ProgressResult {
	n := 512
	if p.Quick {
		n = 256
	}
	seed := p.seed()
	var results []ProgressResult

	measure := func(name string, probe *progressCounters, alg engine.Algorithm, adv adversary.Adversary) {
		e := engine.New(engine.Config{N: n, Seed: seed + 5}, adv, alg)
		e.Run(30)
		slow := int(probe.slow.Load())
		colored := int(probe.colored.Load())
		prob := 0.0
		if slow > 0 {
			prob = float64(colored) / float64(slow)
		}
		results = append(results, ProgressResult{
			Algorithm: name, SlowRounds: slow, SlowColored: colored,
			EmpiricalProb: prob, Bound: 1.0 / 64,
		})
	}

	baseStatic := graph.GNP(n, 12.0/float64(n), workloadStream(seed))
	probe1 := &progressCounters{}
	basic := &coloring.BasicFactory{N: n, Probe: probe1.observe}
	measure("basic/static", probe1, core.Single{Label: "basic", Factory: func(v graph.NodeID) core.NodeInstance {
		return basic.NewNode(v)
	}}, adversary.Static{G: baseStatic})

	probe2 := &progressCounters{}
	dcol := &coloring.DColorFactory{N: n, Probe: probe2.observe}
	measure("dcolor/churn", probe2, core.Single{Label: "dcolor", Factory: func(v graph.NodeID) core.NodeInstance {
		return dcol.NewNode(v)
	}}, &adversary.Churn{Base: baseStatic, Add: n / 32, Del: n / 32, Seed: seed + 3})

	return results
}

type progressCounters struct {
	slow    atomic.Int64
	colored atomic.Int64
}

func (c *progressCounters) observe(ev coloring.Event) {
	if !ev.WasUncolored || ev.PaletteBefore == 0 {
		return
	}
	if 4*ev.Removed >= ev.PaletteBefore {
		return // palette shrank by >= 1/4: the "fast" branch of the lemma
	}
	c.slow.Add(1)
	if ev.GotColored {
		c.colored.Add(1)
	}
}
