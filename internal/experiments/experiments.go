// Package experiments implements the reproduction of every quantitative
// claim in the paper as the experiment battery E01–E15:
//
//	E01 DColor convergence (O(log n) shape)     E09 baselines vs churn sweep
//	E02 conflict-edge resolution time           E10 window-size sweep
//	E03 locally-static stability (Thm 1.1(2))   E11 window edge counts
//	E04 coloring progress probability           E12 message bits (poly log n remark)
//	E05 MIS edge decay (Lemma 5.2)              E13 clairvoyant adversary
//	E06 DMis convergence                        E14 async wake-up schedules
//	E07 SMis static-ball decision (Lemma 5.6)   E15 engine scaling
//
// Each experiment is a pure function from Params to a structured result;
// cmd/experiments renders them as tables and the root bench harness
// re-runs them under testing.B (see ARCHITECTURE.md for the claim↔code
// map). All randomness is seeded, so every reported number is
// reproducible; every guarantee-shaped cell is routed through the
// checkers of internal/verify, so the tables are machine-checked, not
// just measured.
package experiments

import (
	"dynlocal/internal/adversary"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
	"dynlocal/internal/stats"
)

// Params tunes experiment scale.
type Params struct {
	// Quick shrinks node counts and trial counts (used by benches and
	// smoke tests).
	Quick bool
	// Seed keys all workloads and algorithm randomness.
	Seed uint64
	// N overrides the node count of single-size experiments (0 = default).
	N int
	// NSweep overrides the node-count sweep of sweep experiments
	// (nil = default).
	NSweep []int
	// Trials overrides the per-cell trial count (0 = default).
	Trials int
}

func (p Params) seed() uint64 {
	if p.Seed == 0 {
		return 0xD15EA5E
	}
	return p.Seed
}

// nSweep returns the node-count sweep for convergence experiments.
func (p Params) nSweep() []int {
	if p.NSweep != nil {
		return p.NSweep
	}
	if p.Quick {
		return []int{128, 256, 512}
	}
	return []int{128, 256, 512, 1024, 2048, 4096}
}

func (p Params) trials() int {
	if p.Trials > 0 {
		return p.Trials
	}
	if p.Quick {
		return 3
	}
	return 7
}

// size resolves a single-size experiment's node count, honoring the N
// override.
func (p Params) size(full, quick int) int {
	if p.N > 0 {
		return p.N
	}
	if p.Quick {
		return quick
	}
	return full
}

func workloadStream(seed uint64) *prf.Stream {
	return prf.NewStream(seed, 0, 0, prf.PurposeWorkload)
}

func allDecided(out []problems.Value) bool {
	for _, v := range out {
		if v == problems.Bot {
			return false
		}
	}
	return true
}

// AdversaryKind selects a workload adversary in sweeps.
type AdversaryKind string

// Adversary kinds used across experiments.
const (
	AdvStatic AdversaryKind = "static"
	AdvChurn  AdversaryKind = "churn"
	AdvMarkov AdversaryKind = "edge-markov"
	AdvFlip   AdversaryKind = "alternator"
)

// makeAdversary builds the named adversary over a base graph whose churn
// intensity scales mildly with n.
func makeAdversary(kind AdversaryKind, base *graph.Graph, seed uint64) adversary.Adversary {
	n := base.N()
	switch kind {
	case AdvStatic:
		return adversary.Static{G: base}
	case AdvChurn:
		k := n / 32
		if k < 2 {
			k = 2
		}
		return &adversary.Churn{Base: base, Add: k, Del: k, Seed: seed}
	case AdvMarkov:
		return &adversary.EdgeMarkov{Footprint: base, POn: 0.05, POff: 0.05, Seed: seed}
	case AdvFlip:
		s := workloadStream(seed)
		other := graph.GNP(n, float64(base.M())*2/(float64(n)*float64(n-1)), s)
		return adversary.Alternator{A: base, B: graph.Union(base, other), Period: 3}
	default:
		panic("unknown adversary kind: " + string(kind))
	}
}

// ConvergencePoint is one (n, adversary) cell of a convergence sweep.
type ConvergencePoint struct {
	N         int
	Adversary AdversaryKind
	Rounds    stats.Summary // rounds until all nodes produced output
	Window    int           // default window T(n) for reference
}

// ConvergenceResult is the outcome of E1/E6.
type ConvergenceResult struct {
	Algorithm string
	Points    []ConvergencePoint
	// Fit is rounds vs log₂ n for the static adversary: the paper's
	// O(log n) claim shows as a good linear fit in log n.
	Fit stats.LinearFit
}

// runConvergence measures rounds-to-all-output for an algorithm factory.
func runConvergence(p Params, name string, algoFor func(n int) engine.Algorithm,
	window func(n int) int, kinds []AdversaryKind) ConvergenceResult {
	res := ConvergenceResult{Algorithm: name}
	var fitNs []int
	var fitRounds []float64
	for _, kind := range kinds {
		for _, n := range p.nSweep() {
			var rounds []float64
			for trial := 0; trial < p.trials(); trial++ {
				seed := p.seed() + uint64(trial)*1000 + uint64(n)
				base := graph.GNP(n, 8.0/float64(n), workloadStream(seed))
				adv := makeAdversary(kind, base, seed+1)
				e := engine.New(engine.Config{N: n, Seed: seed + 2}, adv, algoFor(n))
				r, ok := e.RunUntil(4*window(n), func(info *engine.RoundInfo) bool {
					return allDecided(info.Outputs)
				})
				if !ok {
					r = 4 * window(n) // censored; shows up as an outlier
				}
				rounds = append(rounds, float64(r))
			}
			res.Points = append(res.Points, ConvergencePoint{
				N: n, Adversary: kind, Rounds: stats.Summarize(rounds), Window: window(n),
			})
			if kind == AdvStatic {
				fitNs = append(fitNs, n)
				fitRounds = append(fitRounds, stats.Mean(rounds))
			}
		}
	}
	res.Fit = stats.FitLogN(fitNs, fitRounds)
	return res
}
