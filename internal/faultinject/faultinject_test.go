package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"slices"
	"testing"

	"dynlocal/internal/adversary"
	"dynlocal/internal/algos/coloring"
	"dynlocal/internal/algos/mis"
	"dynlocal/internal/core"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
)

const (
	matrixN      = 128
	matrixRounds = 48
)

// matrixAdversaries builds the three adversary families of the crash
// matrix: bounded edge churn, Markov edge flapping and peer-to-peer node
// churn with a scheduled mass departure — together they exercise every
// Checkpointer implementation.
func matrixAdversaries() map[string]func() adversary.Adversary {
	n := matrixN
	return map[string]func() adversary.Adversary{
		"churn": func() adversary.Adversary {
			base := graph.GNP(n, 6.0/float64(n), prf.NewStream(101, 0, 0, prf.PurposeWorkload))
			return &adversary.Churn{Base: base, Add: 10, Del: 10, Seed: 41}
		},
		"edgemarkov": func() adversary.Adversary {
			fp := graph.GNP(n, 8.0/float64(n), prf.NewStream(103, 0, 0, prf.PurposeWorkload))
			return &adversary.EdgeMarkov{Footprint: fp, POn: 0.7, POff: 0.1, Seed: 43}
		},
		"p2p": func() adversary.Adversary {
			return &adversary.P2PChurn{
				N: n, Init: n / 3, JoinPerRound: 3, Degree: 3,
				SessionMin: 6, RejoinDelay: 3, Seed: 47,
				Events: []adversary.MassDeparture{{Round: 17, Frac: 0.25}},
			}
		},
	}
}

func matrixAlgos() map[string]struct {
	mk func(n int) *core.Concat
	pc problems.PC
} {
	return map[string]struct {
		mk func(n int) *core.Concat
		pc problems.PC
	}{
		"mis":      {func(n int) *core.Concat { return mis.NewMIS(n) }, problems.MIS()},
		"coloring": {func(n int) *core.Concat { return coloring.NewColoring(n) }, problems.Coloring()},
	}
}

// TestCrashResumeEquivalence is the acceptance matrix of the checkpoint
// plane: for every adversary × algorithm cell, one uninterrupted
// reference run records all 48 rounds; each sampled crash round k then
// simulates a kill-and-restart — fresh engine, checker and adversary
// restored from the checkpoint — under worker counts 1 and 4, and every
// remaining round must match the reference bit for bit (outputs, wake,
// changed sets, topology deltas, message/bit accounting, T-dynamic
// verdicts and final checker totals).
func TestCrashResumeEquivalence(t *testing.T) {
	crashpoints := []int{1, 7, 19, 33, matrixRounds - 1}
	if testing.Short() {
		crashpoints = []int{7, 33}
	}
	for advName, mkAdv := range matrixAdversaries() {
		for algoName, al := range matrixAlgos() {
			s := Scenario{
				Name: advName + "/" + algoName, N: matrixN, Rounds: matrixRounds,
				Seed: 11, Workers: 3,
				NewAlgo: al.mk, Problem: al.pc, NewAdv: mkAdv,
				Crashpoints: crashpoints,
			}
			t.Run(s.Name, func(t *testing.T) {
				ref, err := RunReference(s)
				if err != nil {
					t.Fatal(err)
				}
				if len(ref.Records) != matrixRounds {
					t.Fatalf("reference recorded %d rounds, want %d", len(ref.Records), matrixRounds)
				}
				for _, k := range crashpoints {
					for _, workers := range []int{1, 4} {
						t.Run(fmt.Sprintf("k=%d/w=%d", k, workers), func(t *testing.T) {
							if err := VerifyResume(s, ref, k, workers); err != nil {
								t.Fatal(err)
							}
						})
						// The same crash, surviving only the incremental
						// chain prefix ending at k: base record at the
						// first crashpoint, one delta per later one.
						t.Run(fmt.Sprintf("chain/k=%d/w=%d", k, workers), func(t *testing.T) {
							if err := VerifyResumeChain(s, ref, k, workers); err != nil {
								t.Fatal(err)
							}
						})
					}
				}
			})
		}
	}
}

// TestCrashResumeDense covers the dense round walk and per-node inputs
// once — the plane's other engine configuration axis.
func TestCrashResumeDense(t *testing.T) {
	const n = 64
	// MIS checkpoints validate every value against the problem domain, so
	// the input vector sticks to {⊥, InMIS, Dominated}.
	input := make([]problems.Value, n)
	for i := range input {
		input[i] = problems.Value(i % 3)
	}
	s := Scenario{
		Name: "dense", N: n, Rounds: 20, Seed: 29, Workers: 2, Dense: true, Input: input,
		NewAlgo: func(n int) *core.Concat { return mis.NewMIS(n) },
		Problem: problems.MIS(),
		NewAdv: func() adversary.Adversary {
			base := graph.GNP(n, 5.0/float64(n), prf.NewStream(31, 0, 0, prf.PurposeWorkload))
			return &adversary.Churn{Base: base, Add: 5, Del: 5, Seed: 37}
		},
		Crashpoints: []int{4, 13},
	}
	ref, err := RunReference(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range s.Crashpoints {
		for _, workers := range []int{1, 4} {
			if err := VerifyResume(s, ref, k, workers); err != nil {
				t.Fatal(err)
			}
			if err := VerifyResumeChain(s, ref, k, workers); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestFaultWriter pins the injector itself: pass-through below the
// limit, short write crossing it, hard failure beyond it.
func TestFaultWriter(t *testing.T) {
	var sink bytes.Buffer
	fw := &FaultWriter{W: &sink, Limit: 10}
	if n, err := fw.Write([]byte("0123456")); n != 7 || err != nil {
		t.Fatalf("write below limit: (%d, %v)", n, err)
	}
	if n, err := fw.Write([]byte("789abc")); n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("write crossing limit: (%d, %v), want (3, ErrInjected)", n, err)
	}
	if n, err := fw.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("write past limit: (%d, %v), want (0, ErrInjected)", n, err)
	}
	if sink.String() != "0123456789" {
		t.Fatalf("sink holds %q, want the 10-byte prefix", sink.String())
	}
	if fw.Written() != 10 {
		t.Fatalf("Written() = %d, want 10", fw.Written())
	}
}

// TestCheckpointMidWriteCrash kills the checkpoint itself: the write
// fails partway at every sampled byte limit. Checkpoint must surface the
// error, the torn prefix must never restore, and the run that survived
// the failed snapshot must continue bit-identically to a run that never
// attempted one.
func TestCheckpointMidWriteCrash(t *testing.T) {
	const n = 64
	const rounds = 16
	const k = 7
	mkAdv := func() adversary.Adversary {
		base := graph.GNP(n, 5.0/float64(n), prf.NewStream(53, 0, 0, prf.PurposeWorkload))
		return &adversary.Churn{Base: base, Add: 6, Del: 6, Seed: 59}
	}
	run := func(crashLimits []int) []problems.Value {
		e := engine.New(engine.Config{N: n, Seed: 17, Workers: 2}, mkAdv(), mis.NewMIS(n))
		for r := 1; r <= rounds; r++ {
			e.Step()
			if r == k {
				for _, limit := range crashLimits {
					var sink bytes.Buffer
					fw := &FaultWriter{W: &sink, Limit: limit}
					if err := e.Checkpoint(fw); !errors.Is(err, ErrInjected) {
						t.Fatalf("limit %d: Checkpoint returned %v, want ErrInjected", limit, err)
					}
					torn := sink.Bytes()
					e2 := engine.New(engine.Config{N: n, Seed: 17, Workers: 2}, mkAdv(), mis.NewMIS(n))
					if err := e2.Restore(bytes.NewReader(torn)); err == nil {
						t.Fatalf("limit %d: restoring the %d-byte torn prefix succeeded", limit, len(torn))
					}
				}
			}
		}
		return slices.Clone(e.Outputs())
	}

	// Size a healthy checkpoint to pick limits tearing the header, the
	// node states and the final CRC trailer.
	var whole bytes.Buffer
	{
		e := engine.New(engine.Config{N: n, Seed: 17, Workers: 2}, mkAdv(), mis.NewMIS(n))
		e.Run(k)
		if err := e.Checkpoint(&whole); err != nil {
			t.Fatal(err)
		}
	}
	size := whole.Len()
	limits := []int{0, 3, size / 4, size / 2, size - 1}

	clean := run(nil)
	crashed := run(limits)
	if !slices.Equal(clean, crashed) {
		t.Fatal("failed checkpoint attempts perturbed the run")
	}
}

// TestVerifyResumeDetectsDivergence makes sure the harness itself can
// fail: resuming against a reference from a different seed must report a
// divergence, not silently pass.
func TestVerifyResumeDetectsDivergence(t *testing.T) {
	mk := func(seed uint64) Scenario {
		return Scenario{
			Name: "diverge", N: 48, Rounds: 12, Seed: seed, Workers: 1,
			NewAlgo: func(n int) *core.Concat { return mis.NewMIS(n) },
			Problem: problems.MIS(),
			NewAdv: func() adversary.Adversary {
				base := graph.GNP(48, 5.0/48.0, prf.NewStream(61, 0, 0, prf.PurposeWorkload))
				return &adversary.Churn{Base: base, Add: 4, Del: 4, Seed: 67}
			},
			Crashpoints: []int{5},
		}
	}
	refA, err := RunReference(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	refB, err := RunReference(mk(2))
	if err != nil {
		t.Fatal(err)
	}
	// Splice B's checkpoint under A's records: the resumed run plays
	// seed-2 state against seed-1 history.
	refA.Checkpoints[5] = refB.Checkpoints[5]
	if err := VerifyResume(mk(2), refA, 5, 1); err == nil {
		t.Fatal("resume against a mismatched reference passed")
	}
}
