// Package faultinject is the crash harness pinning the checkpoint/resume
// plane: it kills simulated runs at arbitrary round barriers (and mid-
// checkpoint, via failing writers), restores fresh processes from the
// surviving bytes and proves the resumed run is bit-identical to an
// uninterrupted one — outputs, accounting, RoundInfo deltas and
// T-dynamic verdicts, across adversaries, algorithms and worker counts.
// Both checkpoint formats are covered: standalone full snapshots
// (VerifyResume) and every prefix of the incremental base+delta chain
// (VerifyResumeChain).
//
// The package is a library of error-returning drivers so the same
// scenarios run under `go test -race` locally and as the crash-resume
// equivalence job in CI; the tests in this package supply the matrix.
package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"slices"

	"dynlocal/internal/adversary"
	"dynlocal/internal/ckpt"
	"dynlocal/internal/core"
	"dynlocal/internal/engine"
	"dynlocal/internal/problems"
	"dynlocal/internal/verify"
)

// ErrInjected is the failure a FaultWriter injects once its byte budget
// is exhausted, standing in for ENOSPC or a power cut mid-write.
var ErrInjected = errors.New("faultinject: injected write failure")

// FaultWriter passes through to W until Limit bytes have been written,
// then fails every subsequent write. The write crossing the limit is a
// short write: the prefix up to the limit reaches W — exactly the torn
// state a crash leaves on disk.
type FaultWriter struct {
	W     io.Writer
	Limit int
	n     int
}

// Written returns how many bytes reached the underlying writer.
func (f *FaultWriter) Written() int { return f.n }

func (f *FaultWriter) Write(p []byte) (int, error) {
	if f.n >= f.Limit {
		return 0, ErrInjected
	}
	if f.n+len(p) > f.Limit {
		k, err := f.W.Write(p[:f.Limit-f.n])
		f.n += k
		if err != nil {
			return k, err
		}
		return k, ErrInjected
	}
	k, err := f.W.Write(p)
	f.n += k
	return k, err
}

// Scenario describes one crash-resume equivalence experiment: a full run
// of Rounds rounds, checkpointed at every round in Crashpoints, each
// checkpoint then resumed in a fresh process image and replayed to the
// end under possibly different worker counts.
type Scenario struct {
	Name   string
	N      int
	Rounds int
	Seed   uint64
	// Workers is the reference run's parallelism.
	Workers int
	// NewAlgo builds a fresh algorithm instance (reference and every
	// resume get their own — a real restart constructs from scratch).
	NewAlgo func(n int) *core.Concat
	// Problem is the packing/covering decomposition the checker verifies.
	Problem problems.PC
	// NewAdv builds a fresh configured adversary; mutable state is
	// carried by the checkpoint, not the constructor.
	NewAdv func() adversary.Adversary
	// Crashpoints are the rounds to checkpoint at (0 < k < Rounds).
	Crashpoints []int
	// Dense switches the engine to the dense round walk.
	Dense bool
	// Input is the optional per-node input vector.
	Input []problems.Value
}

func (s Scenario) config(workers int) engine.Config {
	return engine.Config{N: s.N, Seed: s.Seed, Workers: workers, Dense: s.Dense, Input: s.Input}
}

// Record is one round of observable behavior: the retained RoundInfo
// (outputs, wake, output/topology deltas, message/bit accounting) and
// the checker's verdict for the round.
type Record struct {
	Info   *engine.RoundInfo
	Report verify.TDynamicReport
}

// Reference is an uninterrupted run's full observable history plus the
// checkpoint bytes taken at each crashpoint — both as standalone full
// snapshots and as the growing incremental chain.
type Reference struct {
	Records     []Record // Records[r-1] describes round r
	Checkpoints map[int][]byte
	// ChainPrefixes[k] holds the incremental chain bytes — magic, full
	// base record, then one delta per earlier crashpoint — up to and
	// including the record taken at round k: exactly the file a crash
	// right after that record's fsync leaves behind.
	ChainPrefixes map[int][]byte
	Totals        [5]int64
}

func copyReport(r verify.TDynamicReport) verify.TDynamicReport {
	r.PackingViolations = slices.Clone(r.PackingViolations)
	r.CoverViolations = slices.Clone(r.CoverViolations)
	return r
}

func totals(c *verify.TDynamic) [5]int64 {
	rounds, invalid, packing, cover, bot := c.Totals()
	return [5]int64{int64(rounds), int64(invalid), int64(packing), int64(cover), int64(bot)}
}

// snapshot writes the composed engine+checker checkpoint stream — the
// same layout cmd/dynsim records — and returns its bytes.
func snapshot(e *engine.Engine, chk *verify.TDynamic) ([]byte, error) {
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	e.CheckpointTo(w)
	chk.SaveState(w)
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// restore reads a composed engine+checker stream back into a fresh pair.
func restore(ck []byte, e *engine.Engine, chk *verify.TDynamic) error {
	r := ckpt.NewReader(bytes.NewReader(ck))
	e.RestoreFrom(r)
	chk.LoadState(r)
	if err := r.Err(); err != nil {
		return err
	}
	return r.Close()
}

// chainRecord composes one chain record — the full base when base is
// set, else a delta against the previous record — appends it to the
// chain, and notes it on both the engine and the checker so the next
// delta diffs against it.
func chainRecord(chain *bytes.Buffer, e *engine.Engine, chk *verify.TDynamic, base bool) error {
	var rec bytes.Buffer
	w := ckpt.NewWriter(&rec)
	if base {
		e.CheckpointTo(w)
		chk.SaveState(w)
	} else {
		e.CheckpointDeltaTo(w)
		chk.SaveDelta(w)
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := ckpt.AppendChainRecord(chain, rec.Bytes()); err != nil {
		return err
	}
	if base {
		e.NoteCheckpointBase(w.Sum32())
	} else {
		e.NoteCheckpoint(w.Sum32())
	}
	chk.NoteCheckpoint()
	return nil
}

// restoreChain applies a chain prefix into a fresh engine+checker pair —
// the internal-layer mirror of the facade's ReadCheckpointChain.
func restoreChain(prefix []byte, e *engine.Engine, chk *verify.TDynamic) error {
	cr := ckpt.NewChainReader(bytes.NewReader(prefix))
	first := true
	for {
		rec, err := cr.Next()
		if err == io.EOF {
			if first {
				return errors.New("empty chain")
			}
			return chk.FinishChain()
		}
		if err != nil {
			return err
		}
		rr := ckpt.NewReader(bytes.NewReader(rec))
		if first {
			e.RestoreFrom(rr)
			chk.LoadState(rr)
		} else {
			e.RestoreDeltaFrom(rr)
			chk.LoadDelta(rr)
		}
		if err := rr.Err(); err != nil {
			return err
		}
		if err := rr.Close(); err != nil {
			return err
		}
		if first {
			e.NoteCheckpointBase(rr.Sum32())
		} else {
			e.NoteCheckpoint(rr.Sum32())
		}
		chk.NoteCheckpoint()
		first = false
	}
}

// RunReference plays the uninterrupted run, recording every round and
// checkpointing at each crashpoint — a standalone full snapshot plus one
// record of the incremental chain (the base at the first crashpoint,
// deltas after), so every chain position has its crash-surviving prefix.
func RunReference(s Scenario) (*Reference, error) {
	algo := s.NewAlgo(s.N)
	e := engine.New(s.config(s.Workers), s.NewAdv(), algo)
	chk := verify.NewTDynamic(s.Problem, algo.T1, s.N)
	ref := &Reference{Checkpoints: make(map[int][]byte), ChainPrefixes: make(map[int][]byte)}
	e.OnRound(func(info *engine.RoundInfo) {
		rep := copyReport(chk.Feed(info.Delta()))
		ref.Records = append(ref.Records, Record{Info: info.Retain(), Report: rep})
	})
	var chain bytes.Buffer
	for r := 1; r <= s.Rounds; r++ {
		e.Step()
		if slices.Contains(s.Crashpoints, r) {
			ck, err := snapshot(e, chk)
			if err != nil {
				return nil, fmt.Errorf("checkpoint at round %d: %w", r, err)
			}
			ref.Checkpoints[r] = ck
			base := len(ref.ChainPrefixes) == 0
			if base {
				if err := ckpt.WriteChainMagic(&chain); err != nil {
					return nil, err
				}
			}
			if err := chainRecord(&chain, e, chk, base); err != nil {
				return nil, fmt.Errorf("chain record at round %d: %w", r, err)
			}
			ref.ChainPrefixes[r] = slices.Clone(chain.Bytes())
		}
	}
	ref.Totals = totals(chk)
	return ref, nil
}

// VerifyResume simulates the crash at round k: a fresh engine, checker
// and adversary are restored from the checkpoint the dying run left
// behind, replayed to the end under the given worker count, and every
// observable of every remaining round is compared bit-identically
// against the uninterrupted reference.
func VerifyResume(s Scenario, ref *Reference, k, workers int) error {
	ck, ok := ref.Checkpoints[k]
	if !ok {
		return fmt.Errorf("no checkpoint at round %d", k)
	}
	algo := s.NewAlgo(s.N)
	e := engine.New(s.config(workers), s.NewAdv(), algo)
	chk := verify.NewTDynamic(s.Problem, algo.T1, s.N)
	if err := restore(ck, e, chk); err != nil {
		return fmt.Errorf("restore at round %d: %w", k, err)
	}
	return replayCompare(s, ref, e, chk, k)
}

// VerifyResumeChain simulates the crash that leaves only the incremental
// chain prefix ending at round k on disk: a fresh engine, checker and
// adversary replay the whole prefix — the base plus every delta up to k
// — through the chain reader, then play to the end under the given
// worker count, compared bit-identically against the reference.
func VerifyResumeChain(s Scenario, ref *Reference, k, workers int) error {
	prefix, ok := ref.ChainPrefixes[k]
	if !ok {
		return fmt.Errorf("no chain record at round %d", k)
	}
	algo := s.NewAlgo(s.N)
	e := engine.New(s.config(workers), s.NewAdv(), algo)
	chk := verify.NewTDynamic(s.Problem, algo.T1, s.N)
	if err := restoreChain(prefix, e, chk); err != nil {
		return fmt.Errorf("chain restore at round %d: %w", k, err)
	}
	return replayCompare(s, ref, e, chk, k)
}

// replayCompare plays a restored run to the end, comparing every
// remaining round's observables and the final checker totals against the
// uninterrupted reference.
func replayCompare(s Scenario, ref *Reference, e *engine.Engine, chk *verify.TDynamic, k int) error {
	if e.Round() != k {
		return fmt.Errorf("restored engine at round %d, want %d", e.Round(), k)
	}
	var fail error
	e.OnRound(func(info *engine.RoundInfo) {
		if fail != nil {
			return
		}
		rep := copyReport(chk.Feed(info.Delta()))
		want := ref.Records[info.Round-1]
		if err := compareRound(want, Record{Info: info, Report: rep}); err != nil {
			fail = fmt.Errorf("resume at %d, round %d: %w", k, info.Round, err)
		}
	})
	for e.Round() < s.Rounds {
		e.Step()
		if fail != nil {
			return fail
		}
	}
	if got := totals(chk); got != ref.Totals {
		return fmt.Errorf("resume at %d: checker totals %v, want %v", k, got, ref.Totals)
	}
	return nil
}

// compareRound checks every observable of a round: the full delta plane,
// the accounting and the T-dynamic verdict.
func compareRound(want, got Record) error {
	wi, gi := want.Info, got.Info
	switch {
	case !slices.Equal(wi.Wake, gi.Wake):
		return fmt.Errorf("wake sets diverge: %v vs %v", wi.Wake, gi.Wake)
	case !slices.Equal(wi.Outputs, gi.Outputs):
		return errors.New("output snapshots diverge")
	case !slices.Equal(wi.Changed, gi.Changed):
		return fmt.Errorf("changed sets diverge: %v vs %v", wi.Changed, gi.Changed)
	case !slices.Equal(wi.EdgeAdds, gi.EdgeAdds):
		return errors.New("edge adds diverge")
	case !slices.Equal(wi.EdgeRemoves, gi.EdgeRemoves):
		return errors.New("edge removes diverge")
	case wi.Messages != gi.Messages:
		return fmt.Errorf("message accounting diverges: %d vs %d", wi.Messages, gi.Messages)
	case wi.Bits != gi.Bits:
		return fmt.Errorf("bit accounting diverges: %d vs %d", wi.Bits, gi.Bits)
	case !reflect.DeepEqual(want.Report, got.Report):
		return fmt.Errorf("T-dynamic verdicts diverge:\nwant %+v\ngot  %+v", want.Report, got.Report)
	}
	return nil
}
