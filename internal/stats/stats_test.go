package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("P%.2f = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		sorted := append([]float64(nil), raw...)
		for i := range sorted {
			sorted[i] = math.Abs(float64(int64(sorted[i]*100) % 1000))
		}
		// simple insertion sort to avoid importing sort twice
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			v := Percentile(sorted, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	fit := FitLinear(x, y)
	if math.Abs(fit.Slope-2) > 1e-9 || math.Abs(fit.Intercept-3) > 1e-9 || fit.R2 < 0.9999 {
		t.Fatalf("fit = %+v", fit)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if fit := FitLinear([]float64{1}, []float64{2}); !math.IsNaN(fit.Slope) {
		t.Fatal("single-point fit should be NaN")
	}
	if fit := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); !math.IsNaN(fit.Slope) {
		t.Fatal("vertical fit should be NaN")
	}
}

func TestFitLogN(t *testing.T) {
	ns := []int{128, 256, 512, 1024, 2048}
	y := make([]float64, len(ns))
	for i, n := range ns {
		y[i] = 3*math.Log2(float64(n)) + 1
	}
	fit := FitLogN(ns, y)
	if math.Abs(fit.Slope-3) > 1e-9 || fit.R2 < 0.9999 {
		t.Fatalf("log fit = %+v", fit)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean should be NaN")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("n", "rounds", "ratio")
	tb.AddRow(128, 14, 0.6667)
	tb.AddRow(1024, 21, 123.456)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "n ") || !strings.Contains(lines[0], "rounds") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "0.667") {
		t.Fatalf("float formatting wrong: %q", lines[2])
	}
	if !strings.Contains(lines[3], "123.5") {
		t.Fatalf("large float formatting wrong: %q", lines[3])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x,y", 2)
	var buf bytes.Buffer
	tb.CSV(&buf)
	want := "a,b\n\"x,y\",2\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 1, 2, 3, 10}, 3)
	total := 0
	for _, b := range h.Buckets {
		total += b
	}
	if total != 5 {
		t.Fatalf("histogram lost samples: %v", h.Buckets)
	}
	if h.Buckets[0] != 4 { // 1,1,2,3 in [1,4)
		t.Fatalf("buckets = %v", h.Buckets)
	}
	var buf bytes.Buffer
	h.Render(&buf)
	if !strings.Contains(buf.String(), "#") {
		t.Fatal("histogram bars missing")
	}
	empty := NewHistogram(nil, 4)
	if len(empty.Buckets) != 0 {
		t.Fatal("empty histogram should have no buckets")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 4)
	if h.Buckets[0] != 3 {
		t.Fatalf("degenerate histogram wrong: %v", h.Buckets)
	}
}
