// Package stats provides the small statistics and reporting toolkit used
// by the experiment harness: summary statistics, percentiles, linear
// regression against log₂ n (the shape test for the paper's O(log n)
// bounds), fixed-width table rendering and CSV output.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual aggregate statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary; it returns the zero value for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(varSum / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 0.5)
	s.P90 = Percentile(sorted, 0.9)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (0 <= p <= 1) of an ascending-sorted
// sample using linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (NaN for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// LinearFit is a least-squares fit y = Slope·x + Intercept with the
// coefficient of determination R².
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear computes the least-squares line through (x, y) pairs.
func FitLinear(x, y []float64) LinearFit {
	n := float64(len(x))
	if len(x) != len(y) || len(x) < 2 {
		return LinearFit{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return LinearFit{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	slope := (n*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / n
	// R² = 1 - SS_res/SS_tot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range x {
		pred := slope*x[i] + intercept
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}
}

// FitLogN fits y = a·log₂(n) + b — the shape test for the paper's
// O(log n) round bounds: a sub-logarithmic or logarithmic growth shows as
// a good fit with moderate slope, anything super-logarithmic as a poor
// fit or exploding residuals at the top end.
func FitLogN(ns []int, y []float64) LinearFit {
	x := make([]float64, len(ns))
	for i, n := range ns {
		x[i] = math.Log2(float64(n))
	}
	return FitLinear(x, y)
}

// Table renders aligned fixed-width tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; each cell is rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	io.WriteString(w, sb.String()) //nolint:errcheck // best-effort reporting
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.header)
	for _, row := range t.rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			io.WriteString(w, ",") //nolint:errcheck
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		io.WriteString(w, c) //nolint:errcheck
	}
	io.WriteString(w, "\n") //nolint:errcheck
}

// Histogram bins a sample into equal-width buckets for quick text
// rendering of distributions (e.g. conflict-resolution times in E2).
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
}

// NewHistogram bins xs into k equal-width buckets spanning [min, max].
func NewHistogram(xs []float64, k int) Histogram {
	if len(xs) == 0 || k < 1 {
		return Histogram{}
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	h := Histogram{Lo: lo, Hi: hi, Buckets: make([]int, k)}
	span := hi - lo
	for _, x := range xs {
		var idx int
		if span > 0 {
			idx = int(float64(k) * (x - lo) / span)
		}
		if idx >= k {
			idx = k - 1
		}
		h.Buckets[idx]++
	}
	return h
}

// Render writes the histogram as text bars.
func (h Histogram) Render(w io.Writer) {
	if len(h.Buckets) == 0 {
		return
	}
	max := 0
	for _, b := range h.Buckets {
		if b > max {
			max = b
		}
	}
	span := h.Hi - h.Lo
	for i, b := range h.Buckets {
		lo := h.Lo + span*float64(i)/float64(len(h.Buckets))
		hi := h.Lo + span*float64(i+1)/float64(len(h.Buckets))
		bar := 0
		if max > 0 {
			bar = b * 40 / max
		}
		fmt.Fprintf(w, "%8.1f-%-8.1f %6d %s\n", lo, hi, b, strings.Repeat("#", bar))
	}
}
