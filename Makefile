# Development entry points; CI (.github/workflows/ci.yml) runs the same
# targets.

GO ?= go

.PHONY: all build test race bench fmt fmt-check vet docscheck check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Determinism under the race detector with sharded workers.
race:
	$(GO) test -race -short ./...

# Full bench suite; writes BENCH_<date>.json in the repo root.
bench:
	scripts/bench.sh

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Docs gate: package comments everywhere, markdown links resolve.
docscheck:
	$(GO) run ./scripts/docscheck

check: build fmt-check vet docscheck test
