# Development entry points; CI (.github/workflows/ci.yml) runs the same
# targets.

GO ?= go

.PHONY: all build test race bench fmt fmt-check vet lint docscheck apicheck check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Determinism under the race detector with sharded workers.
race:
	$(GO) test -race -short ./...

# Full bench suite; writes BENCH_<date>.json in the repo root.
bench:
	scripts/bench.sh

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Contract gate: loan, determinism and sortedness analyzers over the
# whole tree, tests included. See docs/linting.md for the annotation
# grammar and suppression rules.
lint:
	$(GO) run ./scripts/dynlint ./...

# Docs gate: package comments everywhere, markdown links resolve.
docscheck:
	$(GO) run ./scripts/docscheck

# API gate: the exported surface of package dynlocal must match the
# checked-in snapshot. After an intentional change:
#   go run ./scripts/apicheck -update
apicheck:
	$(GO) run ./scripts/apicheck

check: build fmt-check vet lint docscheck apicheck test
